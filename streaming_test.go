package monoclass_test

import (
	"math"
	"math/rand"
	"testing"

	"monoclass"
	"monoclass/internal/testutil"
)

func TestStreamingThresholdEmpty(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := monoclass.NewStreamingThreshold(rand.New(rand.NewSource(1)))
	if s.Len() != 0 {
		t.Fatalf("empty stream has Len %d", s.Len())
	}
	h, werr := s.Best()
	if werr != 0 {
		t.Errorf("empty stream best error = %g, want 0", werr)
	}
	if !math.IsInf(h.Tau, -1) {
		t.Errorf("empty stream threshold = %g, want -Inf (all-positive)", h.Tau)
	}
	if got := s.Err(3.5); got != 0 {
		t.Errorf("Err on empty stream = %g, want 0", got)
	}
}

// TestStreamingMatchesBatch: after EVERY prefix of a shuffled weighted
// stream, Best must agree with the batch BestThreshold1D on the
// materialized observations, and Err must agree with a direct
// evaluation at thresholds below, between, at, and above the data.
func TestStreamingMatchesBatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(42))
	s := monoclass.NewStreamingThreshold(rng)
	var seen monoclass.WeightedSet
	for i := 0; i < 120; i++ {
		x := float64(rng.Intn(25)) // collisions exercise weight coalescing
		label := monoclass.Negative
		if rng.Float64() < 0.5+x/60 { // noisy increasing trend
			label = monoclass.Positive
		}
		w := []float64{0.5, 1, 2, 3.25}[rng.Intn(4)]
		s.Observe(x, label, w)
		seen = append(seen, monoclass.WeightedPoint{P: monoclass.Point{x}, Label: label, Weight: w})

		_, wantErr := monoclass.BestThreshold1D(seen)
		got, gotErr := s.Best()
		if math.Abs(gotErr-wantErr) > 1e-9 {
			t.Fatalf("prefix %d: streaming best error %g, batch %g", i+1, gotErr, wantErr)
		}
		// The streaming threshold must achieve its claimed error.
		if direct := monoclass.WErr(seen, got); math.Abs(direct-gotErr) > 1e-9 {
			t.Fatalf("prefix %d: threshold %g evaluates to %g, claimed %g", i+1, got.Tau, direct, gotErr)
		}
		// x and x±0.5 probe exactly-at, between, and boundary thresholds
		// around the newest observation.
		for _, tau := range []float64{-1, 0, 3, 12.5, 24, 30, x, x - 0.5, x + 0.5} {
			want := monoclass.WErr(seen, monoclass.Threshold1D{Tau: tau})
			if math.Abs(s.Err(tau)-want) > 1e-9 {
				t.Fatalf("prefix %d: Err(%g) = %g, direct %g", i+1, tau, s.Err(tau), want)
			}
		}
	}
}

// TestStreamingLenCountsDistinct: Len reports distinct observed values,
// not observations.
func TestStreamingLenCountsDistinct(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := monoclass.NewStreamingThreshold(rand.New(rand.NewSource(3)))
	for i := 0; i < 10; i++ {
		s.Observe(float64(i%4), monoclass.Positive, 1)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d after 10 observations of 4 distinct values, want 4", s.Len())
	}
}

// TestStreamingSeedIndependence: the rng drives tree balancing only;
// Best AND the full Err curve must be bit-identical across 5 seeds.
func TestStreamingSeedIndependence(t *testing.T) {
	testutil.CheckGoroutines(t)
	taus := []float64{-1, 0, 2.5, 6, 11, 14}
	type result struct {
		h    monoclass.Threshold1D
		werr float64
		errs [6]float64
	}
	build := func(seed int64) result {
		s := monoclass.NewStreamingThreshold(rand.New(rand.NewSource(seed)))
		data := rand.New(rand.NewSource(99))
		for i := 0; i < 60; i++ {
			label := monoclass.Negative
			if data.Intn(2) == 1 {
				label = monoclass.Positive
			}
			s.Observe(float64(data.Intn(12)), label, 1+float64(data.Intn(3)))
		}
		var r result
		r.h, r.werr = s.Best()
		for i, tau := range taus {
			r.errs[i] = s.Err(tau)
		}
		return r
	}
	want := build(1)
	for _, seed := range []int64{7, 1 << 30, -4, 99, 20260804} {
		if got := build(seed); got != want {
			t.Errorf("seed %d: results differ from seed 1: %+v vs %+v", seed, got, want)
		}
	}
}
