package monoclass_test

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"monoclass"
	"monoclass/internal/testutil"
)

// countingClassifier wraps a threshold and counts Classify calls, so
// the batch tests can confirm every point was visited exactly once
// even when the work fans out across goroutines.
type countingClassifier struct {
	tau   float64
	calls atomic.Int64
}

func (c *countingClassifier) Classify(p monoclass.Point) monoclass.Label {
	c.calls.Add(1)
	if p[0] >= c.tau {
		return monoclass.Positive
	}
	return monoclass.Negative
}

func TestClassifyBatchEmpty(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &countingClassifier{tau: 0}
	out := monoclass.ClassifyBatch(h, nil)
	if len(out) != 0 {
		t.Fatalf("batch over nil points returned %d labels", len(out))
	}
	out = monoclass.ClassifyBatch(h, []monoclass.Point{})
	if len(out) != 0 {
		t.Fatalf("batch over empty slice returned %d labels", len(out))
	}
	if c := h.calls.Load(); c != 0 {
		t.Fatalf("classifier called %d times on empty input", c)
	}
}

func TestClassifyBatchSingle(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := &countingClassifier{tau: 5}
	out := monoclass.ClassifyBatch(h, []monoclass.Point{{7}})
	if len(out) != 1 || out[0] != monoclass.Positive {
		t.Fatalf("batch = %v, want [Positive]", out)
	}
	if c := h.calls.Load(); c != 1 {
		t.Fatalf("classifier called %d times for one point", c)
	}
}

// TestClassifyBatchMatchesSequential: the parallel fan-out must be a
// pure reordering of work — positionally identical to a sequential
// loop, with exactly one call per point.
func TestClassifyBatchMatchesSequential(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 17, 256, 1001} {
		pts := make([]monoclass.Point, n)
		for i := range pts {
			pts[i] = monoclass.Point{rng.Float64() * 10}
		}
		h := &countingClassifier{tau: 5}
		got := monoclass.ClassifyBatch(h, pts)
		if c := h.calls.Load(); c != int64(n) {
			t.Fatalf("n=%d: classifier called %d times", n, c)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d labels", n, len(got))
		}
		for i, p := range pts {
			if want := h.Classify(p); got[i] != want {
				t.Fatalf("n=%d: label[%d] = %v, sequential gives %v", n, i, got[i], want)
			}
		}
	}
}

// TestClassifyBatchAnchorSet: the library's own classifier type through
// the batch path, against point-by-point classification.
func TestClassifyBatchAnchorSet(t *testing.T) {
	testutil.CheckGoroutines(t)
	h, err := monoclass.NewAnchorSet(2, []monoclass.Point{{1, 3}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	pts := []monoclass.Point{{0, 0}, {1, 3}, {2, 2}, {3, 1}, {4, 4}, {1, 2}, {0, 5}}
	got := monoclass.ClassifyBatch(h, pts)
	for i, p := range pts {
		if want := h.Classify(p); got[i] != want {
			t.Errorf("label[%d] = %v, want %v", i, got[i], want)
		}
	}
}
