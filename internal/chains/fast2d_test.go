package chains

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func TestDecompose2DMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		pts := randPoints(rng, n, 2, 6)
		fast := Decompose2D(pts)
		checkDecomposition(t, pts, fast)
		slow := DecomposeGeneric(pts)
		if fast.Width != slow.Width {
			t.Fatalf("trial %d: fast width %d != generic %d", trial, fast.Width, slow.Width)
		}
	}
}

func TestDecompose2DContinuousCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		}
		dec := Decompose2D(pts)
		checkDecomposition(t, pts, dec)
		if got := Width2D(pts); got != dec.Width {
			t.Fatalf("trial %d: width mismatch %d vs %d", trial, dec.Width, got)
		}
	}
}

func TestDecompose2DEdgeCases(t *testing.T) {
	if dec := Decompose2D(nil); dec.Width != 0 {
		t.Error("empty should be width 0")
	}
	one := []geom.Point{{3, 4}}
	dec := Decompose2D(one)
	checkDecomposition(t, one, dec)
	if dec.Width != 1 {
		t.Error("single point width 1")
	}
	// Duplicates stack onto one chain.
	dup := []geom.Point{{1, 1}, {1, 1}, {1, 1}}
	dec = Decompose2D(dup)
	checkDecomposition(t, dup, dec)
	if dec.Width != 1 {
		t.Errorf("duplicates width %d, want 1", dec.Width)
	}
}

func TestDecompose2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decompose2D([]geom.Point{{1, 2, 3}})
}

func TestDecompose1D(t *testing.T) {
	pts := []geom.Point{{5}, {1}, {3}}
	dec := Decompose1D(pts)
	checkDecomposition(t, pts, dec)
	if dec.Width != 1 {
		t.Errorf("width %d, want 1", dec.Width)
	}
	if dec := Decompose1D(nil); dec.Width != 0 {
		t.Error("empty should be width 0")
	}
}

func TestDecomposeDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// All dimensions must produce valid decompositions through the
	// dispatching entry point.
	for _, d := range []int{1, 2, 3, 4} {
		pts := randPoints(rng, 30, d, 5)
		dec := Decompose(pts)
		checkDecomposition(t, pts, dec)
		if want := DecomposeGeneric(pts).Width; dec.Width != want {
			t.Errorf("d=%d: dispatch width %d != generic %d", d, dec.Width, want)
		}
	}
}

func TestDecompose2DLargeScale(t *testing.T) {
	// The fast path must handle 200k points comfortably.
	rng := rand.New(rand.NewSource(73))
	n := 200000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	dec := Decompose2D(pts)
	if err := ValidateDecomposition(pts, dec.Chains); err != nil {
		t.Fatal(err)
	}
	if err := ValidateAntichain(pts, dec.Antichain); err != nil {
		t.Fatal(err)
	}
	if dec.Width != Width2D(pts) {
		t.Errorf("width mismatch at scale")
	}
}
