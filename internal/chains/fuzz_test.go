package chains

import (
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// decodePoints interprets fuzz bytes as a point set on a small integer
// grid: the first byte fixes the dimension (1..4), then every d bytes
// form one point with coordinates in 0..7 (small grid → dense ties and
// duplicates, the regime where kernel and scalar paths can disagree).
func decodePoints(data []byte) []geom.Point {
	if len(data) < 1 {
		return nil
	}
	d := 1 + int(data[0])%4
	body := data[1:]
	n := len(body) / d
	if n > 24 {
		n = 24
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, d)
		for k := 0; k < d; k++ {
			p[k] = float64(body[i*d+k] % 8)
		}
		pts[i] = p
	}
	return pts
}

// FuzzDecomposeKernelVsScalar feeds arbitrary small point sets to the
// bit-packed decomposition kernel (now warm-started) and its scalar
// oracle: both must produce valid minimum chain decompositions of
// identical width, the warm-started width must be bit-identical to a
// cold Hopcroft–Karp run, and the width must match the independent
// Width computation.
func FuzzDecomposeKernelVsScalar(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4})                   // 1-d chain
	f.Add([]byte{1, 0, 7, 1, 6, 2, 5, 3, 4})       // 2-d antichain
	f.Add([]byte{1, 2, 2, 2, 2, 2, 2, 1, 1, 3, 3}) // 2-d with duplicates
	f.Add([]byte{3, 1, 1, 1, 1, 2, 2, 2, 2})       // 4-d comparable pair
	f.Add([]byte{2})                               // empty
	// Warm-start-path seeds: shapes that drive the seed/certificate
	// machinery — cert fires on the pure chain and pure antichain,
	// duplicates force index-tiebreak DAG edges in the greedy seed,
	// and the mixed grid leaves a seed-to-optimum augmentation gap.
	f.Add([]byte{2, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})                   // 3-d total chain → cert early exit
	f.Add([]byte{2, 0, 7, 0, 1, 6, 1, 2, 5, 2, 3, 4, 3})             // 3-d antichain → cert early exit
	f.Add([]byte{2, 5, 5, 5, 5, 5, 5, 5, 5, 5, 0, 0, 0})             // 3-d duplicates → tiebreak seed edges
	f.Add([]byte{2, 1, 0, 2, 0, 1, 2, 2, 2, 0, 1, 1, 1, 0, 2, 1})    // 3-d mixed → augmentation gap
	f.Add([]byte{3, 3, 0, 0, 3, 0, 3, 3, 0, 3, 0, 3, 3, 1, 1, 1, 1}) // 4-d near-antichain with one chain link
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := decodePoints(data)
		if pts == nil {
			return
		}
		kernel := DecomposeGeneric(pts)
		scalar := DecomposeGenericScalar(pts)
		if len(kernel.Chains) != len(scalar.Chains) {
			t.Fatalf("kernel width %d, scalar width %d", len(kernel.Chains), len(scalar.Chains))
		}
		if w := Width(pts); w != len(kernel.Chains) {
			t.Fatalf("decomposition width %d, Width() says %d", len(kernel.Chains), w)
		}
		if err := ValidateDecomposition(pts, kernel.Chains); err != nil {
			t.Fatalf("kernel decomposition invalid: %v", err)
		}
		if err := ValidateDecomposition(pts, scalar.Chains); err != nil {
			t.Fatalf("scalar decomposition invalid: %v", err)
		}
		if len(pts) > 0 {
			m := domgraph.Build(pts)
			cold := DecomposeMatrixCold(pts, m)
			warm, st := DecomposeMatrixStats(pts, m)
			if warm.Width != cold.Width {
				t.Fatalf("warm width %d, cold width %d", warm.Width, cold.Width)
			}
			if st.Augmentations != st.SeedChains-st.Width {
				t.Fatalf("%d augmentations for seed %d -> width %d", st.Augmentations, st.SeedChains, st.Width)
			}
			if err := ValidateDecomposition(pts, warm.Chains); err != nil {
				t.Fatalf("warm decomposition invalid: %v", err)
			}
		}
	})
}
