package chains

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func randPoints(rng *rand.Rand, n, d, gridSize int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(gridSize))
		}
		pts[i] = p
	}
	return pts
}

// bruteWidth computes the maximum antichain size by exhaustive subset
// search (n <= ~18).
func bruteWidth(pts []geom.Point) int {
	n := len(pts)
	best := 0
	for mask := 1; mask < 1<<n; mask++ {
		var members []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				members = append(members, i)
			}
		}
		ok := true
		for a := 0; a < len(members) && ok; a++ {
			for b := a + 1; b < len(members); b++ {
				pi, pj := pts[members[a]], pts[members[b]]
				if pi.Equal(pj) || geom.Comparable(pi, pj) {
					ok = false
					break
				}
			}
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

func checkDecomposition(t *testing.T, pts []geom.Point, dec Decomposition) {
	t.Helper()
	if err := ValidateDecomposition(pts, dec.Chains); err != nil {
		t.Fatal(err)
	}
	if err := ValidateAntichain(pts, dec.Antichain); err != nil {
		t.Fatal(err)
	}
	if dec.Width != len(dec.Chains) || dec.Width != len(dec.Antichain) {
		t.Fatalf("Width %d, chains %d, antichain %d must agree",
			dec.Width, len(dec.Chains), len(dec.Antichain))
	}
}

func TestDecomposeEmptyAndSingle(t *testing.T) {
	dec := Decompose(nil)
	if dec.Width != 0 || len(dec.Chains) != 0 {
		t.Error("empty set should have width 0")
	}
	dec = Decompose([]geom.Point{{1, 2}})
	checkDecomposition(t, []geom.Point{{1, 2}}, dec)
	if dec.Width != 1 {
		t.Errorf("single point width %d, want 1", dec.Width)
	}
}

func TestDecomposeTotalOrder(t *testing.T) {
	// A 1-D set is totally ordered: one chain.
	pts := []geom.Point{{3}, {1}, {4}, {1.5}, {9}}
	dec := Decompose(pts)
	checkDecomposition(t, pts, dec)
	if dec.Width != 1 {
		t.Errorf("width %d, want 1", dec.Width)
	}
}

func TestDecomposePureAntichain(t *testing.T) {
	// Points on an anti-diagonal: pairwise incomparable.
	pts := []geom.Point{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	dec := Decompose(pts)
	checkDecomposition(t, pts, dec)
	if dec.Width != 5 {
		t.Errorf("width %d, want 5", dec.Width)
	}
}

func TestDecomposeDuplicatePoints(t *testing.T) {
	// Duplicates are mutually comparable and must chain up.
	pts := []geom.Point{{1, 1}, {1, 1}, {1, 1}, {0, 2}}
	dec := Decompose(pts)
	checkDecomposition(t, pts, dec)
	if dec.Width != 2 {
		t.Errorf("width %d, want 2", dec.Width)
	}
}

func TestDecomposeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(10)
		d := 1 + rng.Intn(3)
		pts := randPoints(rng, n, d, 4)
		dec := Decompose(pts)
		checkDecomposition(t, pts, dec)
		if want := bruteWidth(pts); dec.Width != want {
			t.Fatalf("trial %d: width %d, want %d (pts %v)", trial, dec.Width, want, pts)
		}
	}
}

func TestWidth2DMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(40)
		pts := randPoints(rng, n, 2, 8)
		if got, want := Width2D(pts), Decompose(pts).Width; got != want {
			t.Fatalf("trial %d: Width2D %d != Decompose %d", trial, got, want)
		}
	}
	if Width2D(nil) != 0 {
		t.Error("empty Width2D should be 0")
	}
}

func TestWidth2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Width2D([]geom.Point{{1, 2, 3}})
}

func TestWidthDispatch(t *testing.T) {
	if Width(nil) != 0 {
		t.Error("empty width should be 0")
	}
	pts2 := []geom.Point{{0, 1}, {1, 0}}
	if Width(pts2) != 2 {
		t.Error("2-D dispatch wrong")
	}
	pts3 := []geom.Point{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}
	if Width(pts3) != 3 {
		t.Error("3-D dispatch wrong")
	}
}

func TestGreedyDecomposeValidButPossiblyWider(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	sawWider := false
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(30)
		d := 2 + rng.Intn(2)
		pts := randPoints(rng, n, d, 6)
		chains := GreedyDecompose(pts)
		if err := ValidateDecomposition(pts, chains); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		w := Decompose(pts).Width
		if len(chains) < w {
			t.Fatalf("trial %d: greedy produced %d chains below width %d", trial, len(chains), w)
		}
		if len(chains) > w {
			sawWider = true
		}
	}
	if !sawWider {
		t.Log("greedy matched the optimum on every trial (unusual but not wrong)")
	}
	if GreedyDecompose(nil) != nil {
		t.Error("empty greedy should be nil")
	}
}

func TestValidateDecompositionCatchesErrors(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 0}}
	cases := [][][]int{
		{{0, 1}},            // misses point 2
		{{0, 1}, {1}, {2}},  // duplicates point 1
		{{1, 0}, {2}},       // not ascending (1 dominates 0, listed descending)
		{{0, 2, 1}},         // 1 does not dominate 2
		{{0}, {}, {1}, {2}}, // empty chain
		{{0, 7}, {1}, {2}},  // out of range
	}
	for i, c := range cases {
		if err := ValidateDecomposition(pts, c); err == nil {
			t.Errorf("case %d: invalid decomposition accepted", i)
		}
	}
	if err := ValidateDecomposition(pts, [][]int{{0, 1}, {2}}); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
}

func TestValidateAntichainCatchesComparable(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 0}}
	if err := ValidateAntichain(pts, []int{0, 1}); err == nil {
		t.Error("comparable pair accepted")
	}
	if err := ValidateAntichain(pts, []int{1, 2}); err != nil {
		t.Errorf("valid antichain rejected: %v", err)
	}
}

// Dilworth sanity at scale: decomposing a set built as k interleaved
// chains of length m has width exactly k when the chains are offset to
// be pairwise incomparable.
func TestDecomposePlantedChains(t *testing.T) {
	const k, m = 7, 20
	var pts []geom.Point
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			// Chain c ascends in both coordinates; distinct chains are
			// separated so that cross-chain points stay incomparable.
			pts = append(pts, geom.Point{
				float64(c*1000 + i),
				float64((k-1-c)*1000 + i),
			})
		}
	}
	dec := Decompose(pts)
	checkDecomposition(t, pts, dec)
	if dec.Width != k {
		t.Errorf("width %d, want %d", dec.Width, k)
	}
	for _, chain := range dec.Chains {
		if len(chain) != m {
			t.Errorf("chain length %d, want %d", len(chain), m)
		}
	}
}
