// Package chains implements chain decompositions of point sets under
// the dominance order, the substrate behind Lemma 6 of the paper:
//
//	Given a set P of n points in R^d, a chain decomposition of P with
//	exactly w chains (w = dominance width) is computable in
//	O(dn² + n^2.5) time.
//
// The construction follows the paper's appendix: build the dominance
// DAG, reduce minimum vertex-disjoint path cover to maximum bipartite
// matching (the DAG is transitively closed, so path cover = chain
// cover), and solve the matching with Hopcroft–Karp. Dilworth's theorem
// guarantees the chain count equals the maximum antichain size, and a
// maximum antichain is extracted from a König minimum vertex cover as a
// certificate.
package chains

import (
	"fmt"
	"math/bits"
	"sort"

	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/matching"
)

// Decomposition is the result of decomposing a point set into chains.
type Decomposition struct {
	// Chains partitions the point indices; each chain is sorted in
	// ascending dominance order (every point dominates all points
	// before it in its chain).
	Chains [][]int
	// Width is the dominance width w of the set; always len(Chains).
	Width int
	// Antichain is a maximum antichain of exactly Width points,
	// certifying (by Dilworth) that no decomposition has fewer chains.
	Antichain []int
}

// dominanceEdge reports whether the DAG has the edge i -> j, meaning
// point i sits above point j. The tiebreak for coordinate-equal
// points (duplicates chain up by index rather than forming cycles) is
// defined once, in the dominance kernel, and shared with the
// bit-packed builder.
func dominanceEdge(pts []geom.Point, i, j int) bool {
	return domgraph.DominanceEdge(pts, i, j)
}

// Decompose computes a minimum chain decomposition of pts together
// with a maximum antichain. Dimensions 1 and 2 dispatch to O(n log n)
// fast paths; higher dimensions use the paper's generic
// O(dn² + n^2.5) matching construction (DecomposeGeneric).
func Decompose(pts []geom.Point) Decomposition {
	if len(pts) == 0 {
		return Decomposition{}
	}
	switch len(pts[0]) {
	case 1:
		return Decompose1D(pts)
	case 2:
		return Decompose2D(pts)
	default:
		return DecomposeGeneric(pts)
	}
}

// DecomposeStats reports how a matrix decomposition reached its
// minimum chain cover; the warm-start conformance check and the
// prepare-stage instrumentation (problem.PrepareStats) consume it.
type DecomposeStats struct {
	// SeedChains is the chain count of the warm-start cover the
	// matching was seeded from (0 on a cold start of a non-empty set
	// means the seed left every point in its own chain).
	SeedChains int
	// Width is the final minimum chain count.
	Width int
	// Augmentations is the number of Hopcroft–Karp augmenting paths
	// applied on top of the seed — exactly SeedChains − Width when
	// seeded, the paper-adjacent width-bounded work claim.
	Augmentations int
	// Phases is the number of BFS layerings run, including the final
	// empty one; 0 when the antichain certificate skipped matching
	// entirely.
	Phases int
	// CertEarlyExit reports that a maximum antichain of size equal to
	// the seed's chain count proved the seed optimal with zero
	// matching phases.
	CertEarlyExit bool
}

// DecomposeGeneric is the Lemma 6 construction for any dimension:
// dominance DAG, minimum path cover via Hopcroft–Karp, maximum
// antichain via König. The DAG is built as a bit-packed matrix by the
// domgraph kernel (parallel, 64 pairs per word op) and the matching
// runs directly on the packed rows; the asymptotics stay
// O(dn² + n^2.5) time and O(n²) bits of space, with the constant cut
// by the word width.
func DecomposeGeneric(pts []geom.Point) Decomposition {
	if len(pts) == 0 {
		return Decomposition{}
	}
	return DecomposeMatrix(pts, domgraph.Build(pts))
}

// DecomposeMatrix is DecomposeGeneric on a prebuilt dominance matrix,
// for callers (passive, audit, problem) that reuse one kernel build
// across several stages. m must have been built from pts.
//
// The matching is warm-started: a first-fit greedy chain cover is
// built directly on the packed DAG rows (O(n²/64) word scans, no
// scalar dominance tests) and handed to Hopcroft–Karp as the seed, so
// only coverSize − width augmentations remain instead of O(√n) phases
// over an empty matching. When the seed's chain bottoms or tops
// already form an antichain of matching size, that certificate proves
// the seed optimal and the matching is skipped outright.
func DecomposeMatrix(pts []geom.Point, m *domgraph.Matrix) Decomposition {
	dec, _ := DecomposeMatrixStats(pts, m)
	return dec
}

// DecomposeMatrixStats is DecomposeMatrix plus the warm-start work
// counters.
func DecomposeMatrixStats(pts []geom.Point, m *domgraph.Matrix) (Decomposition, DecomposeStats) {
	n := checkMatrix(pts, m)
	if n == 0 {
		return Decomposition{}, DecomposeStats{}
	}
	return decomposeSeeded(m, greedySeedBitset(pts, m))
}

// DecomposeMatrixSeeded is DecomposeMatrix warm-started from a
// caller-supplied chain cover instead of the built-in greedy one. The
// cover must partition [0, n) into valid dominance chains (ascending);
// consecutive pairs that are not DAG edges (coordinate-equal points
// listed against the index tiebreak) are skipped, which only weakens
// the seed, never the result. Any valid cover converges to the same
// minimum width.
func DecomposeMatrixSeeded(pts []geom.Point, m *domgraph.Matrix, cover [][]int) (Decomposition, DecomposeStats) {
	n := checkMatrix(pts, m)
	if n == 0 {
		return Decomposition{}, DecomposeStats{}
	}
	seedL := make([]int, n)
	for i := range seedL {
		seedL[i] = -1
	}
	seen := make([]bool, n)
	covered := 0
	for _, chain := range cover {
		for k, idx := range chain {
			if idx < 0 || idx >= n || seen[idx] {
				panic(fmt.Sprintf("chains: seed cover is not a partition (index %d)", idx))
			}
			seen[idx] = true
			covered++
			if k > 0 && m.Edge(idx, chain[k-1]) {
				seedL[idx] = chain[k-1]
			}
		}
	}
	if covered != n {
		panic(fmt.Sprintf("chains: seed cover holds %d of %d points", covered, n))
	}
	return decomposeSeeded(m, seedL)
}

// DecomposeMatrixCold is the pre-warm-start construction — empty
// initial matching, full Hopcroft–Karp phase schedule. It is the
// oracle for the decompose-warmstart-vs-cold conformance check and
// the baseline of the warm-start benchmarks.
func DecomposeMatrixCold(pts []geom.Point, m *domgraph.Matrix) Decomposition {
	n := checkMatrix(pts, m)
	if n == 0 {
		return Decomposition{}
	}
	dec, _ := decomposeSeeded(m, nil)
	return dec
}

func checkMatrix(pts []geom.Point, m *domgraph.Matrix) int {
	n := m.N()
	if n != len(pts) {
		panic(fmt.Sprintf("chains: matrix covers %d points, input has %d", n, len(pts)))
	}
	return n
}

// greedySeedBitset builds a first-fit greedy chain cover directly on
// the packed DAG rows, returned in matching form: seedL[u] = the point
// directly below u in its chain, or -1 at a chain bottom. Points are
// processed in ascending coordinate-sum order (the same linear
// extension GreedyDecompose uses) and attached above the first current
// chain top their DAG row covers — one AND per word against the
// running top bitset, so the whole cover costs O(n²/64) word
// operations instead of GreedyDecompose's O(d·n·w) scalar tests.
// Validity needs no ordering assumption: every link is a real DAG
// edge, so the matching always decodes into disjoint ascending chains.
func greedySeedBitset(pts []geom.Point, m *domgraph.Matrix) []int {
	n := m.N()
	order := sumLexOrder(pts)
	seedL := make([]int, n)
	for i := range seedL {
		seedL[i] = -1
	}
	tops := make([]uint64, (n+63)/64)
	for _, idx := range order {
		row := m.DAGRow(idx)
		for w, bw := range row {
			if cand := bw & tops[w]; cand != 0 {
				v := w<<6 + bits.TrailingZeros64(cand)
				seedL[idx] = v
				tops[w] &^= 1 << uint(v&63) // v is no longer a top
				break
			}
		}
		tops[idx>>6] |= 1 << uint(idx&63) // idx tops its chain either way
	}
	return seedL
}

// decomposeSeeded finishes the Lemma 6 construction from a seed
// matching (nil = cold): certificate attempt, Hopcroft–Karp, chain
// walk, König antichain.
func decomposeSeeded(m *domgraph.Matrix, seedL []int) (Decomposition, DecomposeStats) {
	n := m.N()
	var st DecomposeStats

	if seedL != nil {
		seedSize := 0
		for _, v := range seedL {
			if v != -1 {
				seedSize++
			}
		}
		st.SeedChains = n - seedSize
		// Optimality certificate: the seed's c chains are minimum iff
		// some antichain has c points (Dilworth). The chain bottoms and
		// chain tops are the natural candidates — one point per chain,
		// free on the left resp. right side of the matching — and each
		// costs only an O(c·n/64) incomparability check. A hit skips
		// Hopcroft–Karp entirely; a miss costs nothing beyond the
		// single certifying BFS the matching would run anyway.
		for _, anti := range [2][]int{seedBottoms(seedL), seedTops(seedL, n)} {
			if !m.IsAntichain(anti) {
				continue
			}
			st.Width = st.SeedChains
			st.CertEarlyExit = true
			mm := matchingFromSeed(seedL, n, seedSize)
			chainSets := chainsFromMatching(mm, n)
			sort.Ints(anti)
			return Decomposition{Chains: chainSets, Width: len(chainSets), Antichain: anti}, st
		}
	}

	// Bipartite reduction for minimum path cover: left copy u matched
	// to right copy v encodes using DAG edge u -> v (u directly above v
	// in its chain). Cover size = n - |matching|. The kernel's DAG
	// rows are adopted as the packed adjacency without copying.
	b := matching.BitsetFromRows(n, n, m.DAGBits())
	mm, mst := matching.MaxMatchingBitsetWarm(b, seedL)
	st.Phases, st.Augmentations = mst.Phases, mst.Augmentations

	chainSets := chainsFromMatching(mm, n)
	st.Width = len(chainSets)

	// König: complement of a minimum vertex cover is a maximum
	// independent set; a point outside the cover on both sides has no
	// incident DAG edge inside the independent set, i.e. the selected
	// points are pairwise incomparable — a maximum antichain.
	coverL, coverR := matching.MinVertexCoverBitset(b, mm)
	var anti []int
	for i := 0; i < n; i++ {
		if !coverL[i] && !coverR[i] {
			anti = append(anti, i)
		}
	}
	if len(anti) != len(chainSets) {
		panic(fmt.Sprintf("chains: antichain size %d != chain count %d", len(anti), len(chainSets)))
	}
	if !m.IsAntichain(anti) {
		panic("chains: extracted certificate is not an antichain")
	}
	sort.Ints(anti)
	return Decomposition{Chains: chainSets, Width: len(chainSets), Antichain: anti}, st
}

// seedBottoms returns the chain bottoms of a seed matching: left
// copies with nothing below them.
func seedBottoms(seedL []int) []int {
	var bottoms []int
	for u, v := range seedL {
		if v == -1 {
			bottoms = append(bottoms, u)
		}
	}
	return bottoms
}

// seedTops returns the chain tops: right copies with nothing above
// them.
func seedTops(seedL []int, n int) []int {
	below := make([]bool, n)
	for _, v := range seedL {
		if v != -1 {
			below[v] = true
		}
	}
	var tops []int
	for v := 0; v < n; v++ {
		if !below[v] {
			tops = append(tops, v)
		}
	}
	return tops
}

// matchingFromSeed materializes a full Matching from a seed the
// certificate proved optimal, without touching Hopcroft–Karp.
func matchingFromSeed(seedL []int, n, size int) matching.Matching {
	matchL := make([]int, n)
	matchR := make([]int, n)
	for i := range matchR {
		matchR[i] = -1
	}
	copy(matchL, seedL)
	for u, v := range seedL {
		if v != -1 {
			matchR[v] = u
		}
	}
	return matching.Matching{MatchLeft: matchL, MatchRight: matchR, Size: size}
}

// chainsFromMatching walks chains from their maximal elements (right
// copies left unmatched: nothing sits above them).
func chainsFromMatching(mm matching.Matching, n int) [][]int {
	chainSets := make([][]int, 0, n-mm.Size)
	for v := 0; v < n; v++ {
		if mm.MatchRight[v] != -1 {
			continue // some point sits directly above v
		}
		var desc []int
		for u := v; u != -1; u = mm.MatchLeft[u] {
			desc = append(desc, u)
		}
		// desc runs top-down; chains are reported in ascending order.
		for l, r := 0, len(desc)-1; l < r; l, r = l+1, r-1 {
			desc[l], desc[r] = desc[r], desc[l]
		}
		chainSets = append(chainSets, desc)
	}
	if len(chainSets) != n-mm.Size {
		panic(fmt.Sprintf("chains: built %d chains, expected %d", len(chainSets), n-mm.Size))
	}
	return chainSets
}

// DecomposeGenericScalar is the pre-kernel Lemma 6 construction —
// adjacency lists built with one scalar dominance test per ordered
// pair, slice-based Hopcroft–Karp. It is kept as the cross-check
// oracle for the kernel path (tests assert identical widths and valid
// certificates) and as the baseline of BenchmarkDecomposeGeneric.
func DecomposeGenericScalar(pts []geom.Point) Decomposition {
	n := len(pts)
	if n == 0 {
		return Decomposition{}
	}
	b := matching.NewBipartite(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dominanceEdge(pts, i, j) {
				b.AddEdge(i, j)
			}
		}
	}
	m := matching.MaxMatching(b)

	chains := make([][]int, 0, n-m.Size)
	for v := 0; v < n; v++ {
		if m.MatchRight[v] != -1 {
			continue
		}
		var desc []int
		for u := v; u != -1; u = m.MatchLeft[u] {
			desc = append(desc, u)
		}
		for l, r := 0, len(desc)-1; l < r; l, r = l+1, r-1 {
			desc[l], desc[r] = desc[r], desc[l]
		}
		chains = append(chains, desc)
	}
	if len(chains) != n-m.Size {
		panic(fmt.Sprintf("chains: built %d chains, expected %d", len(chains), n-m.Size))
	}

	coverL, coverR := matching.MinVertexCover(b, m)
	var anti []int
	for i := 0; i < n; i++ {
		if !coverL[i] && !coverR[i] {
			anti = append(anti, i)
		}
	}
	if len(anti) != len(chains) {
		panic(fmt.Sprintf("chains: antichain size %d != chain count %d", len(anti), len(chains)))
	}
	sort.Ints(anti)
	return Decomposition{Chains: chains, Width: len(chains), Antichain: anti}
}

// Width returns the dominance width of pts: the size of its largest
// antichain, equivalently the minimum number of chains covering it.
func Width(pts []geom.Point) int {
	if len(pts) == 0 {
		return 0
	}
	if len(pts[0]) == 2 {
		return Width2D(pts)
	}
	return Decompose(pts).Width
}

// Width2D computes the dominance width of a 2-D point set in
// O(n log n) time: after sorting by (x asc, y asc), a maximum antichain
// is exactly a longest strictly-decreasing subsequence of y values
// (two 2-D points are incomparable iff one is strictly left of and
// strictly above the other; equal-x points are always comparable).
func Width2D(pts []geom.Point) int {
	n := len(pts)
	if n == 0 {
		return 0
	}
	if len(pts[0]) != 2 {
		panic(fmt.Sprintf("chains: Width2D on %d-dimensional points", len(pts[0])))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	// Longest strictly decreasing subsequence of y == longest strictly
	// increasing subsequence of -y, via patience sorting.
	tails := make([]float64, 0, n) // tails[k] = max(-y) achievable ending a length-k+1 subsequence... (min tail)
	for _, idx := range order {
		v := -pts[idx][1]
		// Find first tail >= v (strict increase required).
		lo, hi := 0, len(tails)
		for lo < hi {
			mid := (lo + hi) / 2
			if tails[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(tails) {
			tails = append(tails, v)
		} else {
			tails[lo] = v
		}
	}
	return len(tails)
}

// GreedyDecompose is the classic first-fit heuristic: points are
// processed in a linear extension of dominance (sorted by coordinate
// sum, ties broken lexicographically) and appended to the first chain
// whose current top they dominate. It uses O(dn·w') time after sorting
// but may emit more than w chains; it exists as the ablation baseline
// for E8 showing why the matching-based construction matters.
func GreedyDecompose(pts []geom.Point) [][]int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	order := sumLexOrder(pts)
	var chains [][]int
	for _, idx := range order {
		placed := false
		for c := range chains {
			top := chains[c][len(chains[c])-1]
			if geom.Dominates(pts[idx], pts[top]) {
				chains[c] = append(chains[c], idx)
				placed = true
				break
			}
		}
		if !placed {
			chains = append(chains, []int{idx})
		}
	}
	return chains
}

// sumLexOrder returns point indices sorted into a linear extension of
// dominance: ascending coordinate sum, ties broken lexicographically,
// then by index. GreedyDecompose and the warm-start seed builder share
// it so both first-fit covers process points identically.
func sumLexOrder(pts []geom.Point) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		sa, sb := 0.0, 0.0
		for k := range pa {
			sa += pa[k]
			sb += pb[k]
		}
		if sa != sb {
			return sa < sb
		}
		for k := range pa {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return order[a] < order[b]
	})
	return order
}

// ValidateDecomposition checks that chains is a partition of [0, n)
// into dominance chains (ascending). It returns a descriptive error on
// the first violation; nil means valid. Tests and the experiment
// harness call it after every decomposition.
func ValidateDecomposition(pts []geom.Point, chains [][]int) error {
	seen := make([]bool, len(pts))
	total := 0
	for ci, chain := range chains {
		if len(chain) == 0 {
			return fmt.Errorf("chains: chain %d is empty", ci)
		}
		for k, idx := range chain {
			if idx < 0 || idx >= len(pts) {
				return fmt.Errorf("chains: chain %d contains out-of-range index %d", ci, idx)
			}
			if seen[idx] {
				return fmt.Errorf("chains: point %d appears twice", idx)
			}
			seen[idx] = true
			total++
			if k > 0 && !geom.Dominates(pts[idx], pts[chain[k-1]]) {
				return fmt.Errorf("chains: chain %d not ascending at position %d", ci, k)
			}
		}
	}
	if total != len(pts) {
		return fmt.Errorf("chains: cover %d of %d points", total, len(pts))
	}
	return nil
}

// ValidateAntichain checks that the given indices are pairwise
// incomparable points of pts.
func ValidateAntichain(pts []geom.Point, anti []int) error {
	for a := 0; a < len(anti); a++ {
		for b := a + 1; b < len(anti); b++ {
			i, j := anti[a], anti[b]
			if geom.Comparable(pts[i], pts[j]) {
				return fmt.Errorf("chains: antichain members %d and %d are comparable", i, j)
			}
		}
	}
	return nil
}
