package chains

import (
	"fmt"
	"sort"

	"monoclass/internal/geom"
)

// Decompose1D decomposes a totally ordered (1-D) point set: a single
// chain sorted by coordinate, with any one point as the maximum
// antichain.
func Decompose1D(pts []geom.Point) Decomposition {
	n := len(pts)
	if n == 0 {
		return Decomposition{}
	}
	chain := make([]int, n)
	for i := range chain {
		chain[i] = i
	}
	sort.Slice(chain, func(a, b int) bool { return pts[chain[a]][0] < pts[chain[b]][0] })
	return Decomposition{Chains: [][]int{chain}, Width: 1, Antichain: []int{chain[0]}}
}

// Decompose2D computes a minimum chain decomposition of a 2-D point
// set in O(n log n) time by patience sorting, instead of the generic
// O(dn² + n^2.5) matching construction. Points are processed in
// (x asc, y asc) order; each goes to the leftmost pile whose top has
// y >= its own y (equivalently the classic patience rule on v = -y),
// so every pile is a dominance chain. The pile count equals the length
// of the longest strictly-decreasing-y subsequence — the maximum
// antichain — which back-pointers recover as the certificate.
func Decompose2D(pts []geom.Point) Decomposition {
	n := len(pts)
	if n == 0 {
		return Decomposition{}
	}
	if len(pts[0]) != 2 {
		panic(fmt.Sprintf("chains: Decompose2D on %d-dimensional points", len(pts[0])))
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})

	var (
		piles [][]int          // pile i = chain members in placement order
		tops  []float64        // v = -y of each pile's top; ascending across piles
		ptr   = make([]int, n) // back-pointer to a point on the previous pile, or -1
	)
	for _, idx := range order {
		v := -pts[idx][1]
		// Leftmost pile whose top >= v.
		lo, hi := 0, len(tops)
		for lo < hi {
			mid := (lo + hi) / 2
			if tops[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(tops) {
			piles = append(piles, nil)
			tops = append(tops, 0)
		}
		if lo > 0 {
			prev := piles[lo-1]
			ptr[idx] = prev[len(prev)-1]
		} else {
			ptr[idx] = -1
		}
		piles[lo] = append(piles[lo], idx)
		tops[lo] = v
	}

	// Antichain: walk back-pointers from the top of the last pile.
	anti := make([]int, 0, len(piles))
	last := piles[len(piles)-1]
	for cur := last[len(last)-1]; cur != -1; cur = ptr[cur] {
		anti = append(anti, cur)
	}
	if len(anti) != len(piles) {
		panic(fmt.Sprintf("chains: antichain walk length %d != pile count %d", len(anti), len(piles)))
	}
	sort.Ints(anti)
	return Decomposition{Chains: piles, Width: len(piles), Antichain: anti}
}
