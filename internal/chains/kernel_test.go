package chains

import (
	"math/rand"
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

func randomKernelPoints(rng *rand.Rand, n, d, gridSide int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(gridSide))
		}
		pts[i] = p
	}
	return pts
}

// TestDecomposeGenericMatchesScalar: the bitset path and the scalar
// oracle must agree on the width and both must produce valid
// decompositions and antichain certificates, across dimensions and
// duplicate-heavy grids.
func TestDecomposeGenericMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 15; trial++ {
			n := 1 + rng.Intn(100)
			pts := randomKernelPoints(rng, n, d, 2+rng.Intn(5))
			fast := DecomposeGeneric(pts)
			slow := DecomposeGenericScalar(pts)
			if fast.Width != slow.Width {
				t.Fatalf("d=%d n=%d: bitset width %d != scalar width %d", d, n, fast.Width, slow.Width)
			}
			for name, dec := range map[string]Decomposition{"bitset": fast, "scalar": slow} {
				if err := ValidateDecomposition(pts, dec.Chains); err != nil {
					t.Fatalf("d=%d n=%d %s: %v", d, n, name, err)
				}
				if err := ValidateAntichain(pts, dec.Antichain); err != nil {
					t.Fatalf("d=%d n=%d %s: %v", d, n, name, err)
				}
				if len(dec.Antichain) != dec.Width {
					t.Fatalf("d=%d n=%d %s: antichain %d != width %d", d, n, name, len(dec.Antichain), dec.Width)
				}
			}
		}
	}
}

// TestDecomposeMatrixReuse: a prebuilt matrix must give the same
// result as the one-shot entry point.
func TestDecomposeMatrixReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := randomKernelPoints(rng, 80, 4, 4)
	m := domgraph.Build(pts)
	a := DecomposeMatrix(pts, m)
	b := DecomposeGeneric(pts)
	if a.Width != b.Width {
		t.Fatalf("width %d != %d", a.Width, b.Width)
	}
	if err := ValidateDecomposition(pts, a.Chains); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeMatrixSizeMismatchPanics(t *testing.T) {
	pts := randomKernelPoints(rand.New(rand.NewSource(23)), 10, 2, 3)
	m := domgraph.Build(pts[:9])
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	DecomposeMatrix(pts, m)
}

// BenchmarkDecomposeGeneric compares the scalar Lemma 6 construction
// with the kernel-backed path at the acceptance scale (n=4096, d=4).
func BenchmarkDecomposeGeneric(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Point, 4096)
	for i := range pts {
		p := make(geom.Point, 4)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dec := DecomposeGenericScalar(pts); dec.Width == 0 {
				b.Fatal("zero width")
			}
		}
	})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if dec := DecomposeGeneric(pts); dec.Width == 0 {
				b.Fatal("zero width")
			}
		}
	})
}
