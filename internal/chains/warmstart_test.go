package chains

import (
	"math/rand"
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// plantedWidth builds a point set of exact width w: w parallel chains
// of length chainLen, separated so that points on different chains are
// never comparable (each chain gets a private high coordinate slot
// pattern), shuffled.
func plantedWidth(rng *rand.Rand, w, chainLen, d int) ([]geom.Point, int) {
	var pts []geom.Point
	for c := 0; c < w; c++ {
		for s := 0; s < chainLen; s++ {
			p := make(geom.Point, d)
			// Incomparable across chains: coordinate 0 rises with the
			// chain id while coordinate 1 falls; remaining coords rise
			// along the chain.
			p[0] = float64(c*1000 + s)
			p[1] = float64((w-c)*1000 + s)
			for k := 2; k < d; k++ {
				p[k] = float64(s)
			}
			pts = append(pts, p)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts, w
}

// TestWarmWidthMatchesCold: the warm-started decomposition must land
// on exactly the cold Hopcroft–Karp width, with a valid chain cover
// and antichain certificate, over random instances of several shapes.
func TestWarmWidthMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(80)
		d := 3 + rng.Intn(3)
		pts := randPoints(rng, n, d, 12)
		m := domgraph.Build(pts)
		cold := DecomposeMatrixCold(pts, m)
		warm, st := DecomposeMatrixStats(pts, m)
		if warm.Width != cold.Width {
			t.Fatalf("trial %d: warm width %d, cold width %d", trial, warm.Width, cold.Width)
		}
		if st.Width != warm.Width {
			t.Fatalf("trial %d: stats width %d != decomposition width %d", trial, st.Width, warm.Width)
		}
		if err := ValidateDecomposition(pts, warm.Chains); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := ValidateAntichain(pts, warm.Antichain); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(warm.Antichain) != warm.Width {
			t.Fatalf("trial %d: certificate size %d != width %d", trial, len(warm.Antichain), warm.Width)
		}
		if st.Augmentations != st.SeedChains-st.Width {
			t.Fatalf("trial %d: %d augmentations for seed %d -> width %d", trial, st.Augmentations, st.SeedChains, st.Width)
		}
	}
}

// TestSeededAnyCoverConverges: seeding from any valid chain cover —
// the scalar greedy cover, a permuted variant, and the adversarially
// wide all-singletons cover — must converge to the cold width.
func TestSeededAnyCoverConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(70)
		d := 3 + rng.Intn(2)
		pts := randPoints(rng, n, d, 12)
		m := domgraph.Build(pts)
		cold := DecomposeMatrixCold(pts, m)

		greedy := GreedyDecompose(pts)
		permuted := make([][]int, len(greedy))
		copy(permuted, greedy)
		rng.Shuffle(len(permuted), func(i, j int) { permuted[i], permuted[j] = permuted[j], permuted[i] })
		singletons := make([][]int, n)
		for i := 0; i < n; i++ {
			singletons[i] = []int{i}
		}

		for name, cover := range map[string][][]int{
			"greedy": greedy, "permuted": permuted, "singletons": singletons,
		} {
			dec, st := DecomposeMatrixSeeded(pts, m, cover)
			if dec.Width != cold.Width {
				t.Fatalf("trial %d %s: width %d, cold %d", trial, name, dec.Width, cold.Width)
			}
			if err := ValidateDecomposition(pts, dec.Chains); err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if st.Augmentations > st.SeedChains-dec.Width {
				t.Fatalf("trial %d %s: %d augmentations exceed seed gap %d",
					trial, name, st.Augmentations, st.SeedChains-dec.Width)
			}
		}
	}
}

// TestAugmentationsBoundPlanted pins the width-bounded work claim on
// planted-width instances: augmentations == seedChains − w exactly,
// and the greedy-seeded gap stays far below n (the quantity the cold
// O(√n)-phase schedule is bounded by).
func TestAugmentationsBoundPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 4, 16} {
		pts, want := plantedWidth(rng, w, 24, 4)
		m := domgraph.Build(pts)
		dec, st := DecomposeMatrixStats(pts, m)
		if dec.Width != want {
			t.Fatalf("w=%d: width %d, planted %d", w, dec.Width, want)
		}
		if st.Augmentations != st.SeedChains-want {
			t.Fatalf("w=%d: %d augmentations, seed gap %d", w, st.Augmentations, st.SeedChains-want)
		}
		if !st.CertEarlyExit && st.Phases > st.Augmentations+1 {
			t.Fatalf("w=%d: %d phases exceed augmentations+1 = %d", w, st.Phases, st.Augmentations+1)
		}
	}
}

// TestCertEarlyExitOnAntichain: a pure antichain decomposes into n
// singleton chains whose bottoms are the whole set — the certificate
// must fire and skip Hopcroft–Karp outright (zero phases).
func TestCertEarlyExitOnAntichain(t *testing.T) {
	n := 48
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(n - i), float64((i * 7) % n)}
	}
	m := domgraph.Build(pts)
	dec, st := DecomposeMatrixStats(pts, m)
	if dec.Width != n {
		t.Fatalf("antichain width %d, want %d", dec.Width, n)
	}
	if !st.CertEarlyExit {
		t.Fatalf("certificate did not fire on a pure antichain (stats %+v)", st)
	}
	if st.Phases != 0 || st.Augmentations != 0 {
		t.Fatalf("early exit still ran matching: %+v", st)
	}
	if err := ValidateAntichain(pts, dec.Antichain); err != nil {
		t.Fatal(err)
	}
}

// TestCertEarlyExitOnChain: a single total chain has one chain bottom,
// trivially an antichain of size 1 == chain count — certificate fires.
func TestCertEarlyExitOnChain(t *testing.T) {
	n := 40
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{float64(i), float64(i), float64(i)}
	}
	m := domgraph.Build(pts)
	dec, st := DecomposeMatrixStats(pts, m)
	if dec.Width != 1 || !st.CertEarlyExit {
		t.Fatalf("total chain: width %d, stats %+v", dec.Width, st)
	}
	if err := ValidateDecomposition(pts, dec.Chains); err != nil {
		t.Fatal(err)
	}
}

// TestWarmMatchesScalarOracle cross-checks the full warm pipeline
// against the scalar pre-kernel construction on mixed instances with
// duplicates (index-tiebreak DAG edges) and shared coordinates.
func TestWarmMatchesScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		pts := randPoints(rng, n, 3, 12)
		// Inject duplicates to exercise the i>j tiebreak edges.
		for k := 0; k < n/5; k++ {
			pts[rng.Intn(n)] = append(geom.Point(nil), pts[rng.Intn(n)]...)
		}
		m := domgraph.Build(pts)
		warm := DecomposeMatrix(pts, m)
		scalar := DecomposeGenericScalar(pts)
		if warm.Width != scalar.Width {
			t.Fatalf("trial %d: warm width %d, scalar width %d", trial, warm.Width, scalar.Width)
		}
		if err := ValidateDecomposition(pts, warm.Chains); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSeededRejectsNonPartition: malformed covers must panic.
func TestSeededRejectsNonPartition(t *testing.T) {
	pts := randPoints(rand.New(rand.NewSource(1)), 6, 3, 12)
	m := domgraph.Build(pts)
	for name, cover := range map[string][][]int{
		"dup":          {{0, 1}, {1, 2}, {3}, {4}, {5}},
		"out-of-range": {{0}, {1}, {2}, {3}, {4}, {6}},
		"missing":      {{0}, {1}, {2}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			DecomposeMatrixSeeded(pts, m, cover)
		}()
	}
}
