package classidx

import (
	"fmt"
	"math"

	"monoclass/internal/geom"
)

// ClassifyBatchInto classifies every point of pts into dst, which must
// have the same length; dst[i] is always the label of pts[i]. It
// panics on length or dimension mismatches.
//
// The kernel is a run-adaptive sweep over the first dimension: the
// dimension-0 rank is carried from point to point, galloping forward
// over ascending runs (advanceRank) and restarting with a binary
// search bounded by the previous rank on descents (boundedRank). A
// sorted batch therefore pays O(1) amortized per point on the swept
// dimension, while an adversarial ordering degrades to the plain
// per-point binary search — never worse than calling Classify in a
// loop, with no internal sorting, reordering, or allocation. Safe for
// concurrent use: all state is local.
func (ix *Index) ClassifyBatchInto(dst []geom.Label, pts []geom.Point) {
	if len(dst) != len(pts) {
		panic(fmt.Sprintf("classidx: dst length %d != batch length %d", len(dst), len(pts)))
	}
	for i, p := range pts {
		if len(p) != ix.dim {
			panic(fmt.Sprintf("classidx: batch point %d has dimension %d, want %d", i, len(p), ix.dim))
		}
	}
	switch ix.kind {
	case layoutEmpty:
		for i := range dst {
			dst[i] = geom.Negative
		}
	case layout1D:
		for i, p := range pts {
			dst[i] = label(!(p[0] < ix.tau))
		}
	case layoutTiny:
		for i, p := range pts {
			dst[i] = ix.classifyTiny(p)
		}
	case layout2D:
		ix.sweep2D(dst, pts)
	default:
		ix.sweepBits(dst, pts)
	}
}

// sweep2D walks the batch while the staircase rank follows the
// dimension-0 key; each point then costs one rank update plus one y
// comparison.
func (ix *Index) sweep2D(dst []geom.Label, pts []geom.Point) {
	r := len(ix.xs) // rank of +Inf: every anchor x is <= it
	prev := math.Inf(1)
	for i, p := range pts {
		x := p[0]
		if x >= prev {
			r = advanceRank(ix.xs, r, x)
		} else {
			r = boundedRank(ix.xs, r, x)
		}
		prev = x
		dst[i] = label(r > 0 && !(p[1] < ix.ys[r-1]))
	}
}

// sweepBits carries the dimension-0 rank across the batch and
// intersects the remaining dimensions per point, exactly as
// classifyBits does.
func (ix *Index) sweepBits(dst []geom.Label, pts []geom.Point) {
	// Row pointers under intersection; stack buffer for realistic
	// dimensionalities, so the sweep does not allocate.
	var rbuf [16][]uint64
	rowsBuf := rbuf[:0]
	if ix.dim > len(rbuf) {
		rowsBuf = make([][]uint64, 0, ix.dim)
	}
	r0 := len(ix.coords[0])
	prev := math.Inf(1)
	for i, p := range pts {
		x := p[0]
		if x >= prev {
			r0 = advanceRank(ix.coords[0], r0, x)
		} else {
			r0 = boundedRank(ix.coords[0], r0, x)
		}
		prev = x
		if r0 == 0 {
			dst[i] = geom.Negative
			continue
		}
		rows := rowsBuf[:0]
		if r0 < ix.m {
			rows = append(rows, ix.prefixRow(0, r0))
		}
		negative := false
		for k := 1; k < ix.dim; k++ {
			r := ix.rank(k, p[k])
			if r == 0 {
				negative = true
				break
			}
			if r == ix.m {
				continue
			}
			rows = append(rows, ix.prefixRow(k, r))
		}
		if negative {
			dst[i] = geom.Negative
			continue
		}
		dst[i] = label(anyCommonBit(rows, ix.words))
	}
}

// advanceRank returns the upper-bound rank of x in cs, searching
// forward from a previous rank `from` (valid when x is at least the
// key that produced `from`). Galloping keeps the cost O(log gap) per
// point — O(1) amortized over an ascending run that spans the anchors
// densely — instead of a full binary search.
func advanceRank(cs []float64, from int, x float64) int {
	if math.IsNaN(x) {
		return len(cs)
	}
	if from >= len(cs) || cs[from] > x {
		return from
	}
	// cs[from] <= x: gallop to bracket the boundary, then bisect.
	lo, step := from, 1
	for lo+step < len(cs) && cs[lo+step] <= x {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(cs) {
		hi = len(cs)
	}
	lo++
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// boundedRank returns the upper-bound rank of x in cs, given that the
// rank is known to be at most hi (x is below the key whose rank was
// hi, and ranks are monotone in the key). NaN is checked first: it
// reaches this path through a failed >= comparison but ranks past
// every anchor, outside the [0, hi] window.
func boundedRank(cs []float64, hi int, x float64) int {
	if math.IsNaN(x) {
		return len(cs)
	}
	lo := 0
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
