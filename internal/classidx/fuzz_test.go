package classidx

import (
	"math"
	"testing"

	"monoclass/internal/geom"
)

// decodeFuzzCoord maps one byte to a coordinate. The low nibble
// reserves codes for the values that stress the comparison semantics —
// -Inf (the ConstPositive bottom anchor), +Inf, and NaN — and spreads
// the rest over a small integer grid so duplicates and ties are dense.
func decodeFuzzCoord(b byte) float64 {
	switch v := b & 0x0f; v {
	case 0:
		return math.Inf(-1)
	case 1:
		return math.Inf(1)
	case 2:
		return math.NaN()
	default:
		return float64(v) - 8 // -5 .. 7
	}
}

// decodeFuzzInstance interprets fuzz bytes as (dimension, anchor set,
// query set): byte 0 fixes d in 1..5, byte 1 the anchor count, and the
// rest packs anchors then queries, d bytes per point. Anchors are fed
// to Build raw — no antichain requirement — so the fuzzer also probes
// the 2-D re-pruning fallback and redundant-anchor handling.
func decodeFuzzInstance(data []byte) (d int, anchors, queries []geom.Point) {
	if len(data) < 2 {
		return 0, nil, nil
	}
	d = 1 + int(data[0])%5
	na := int(data[1]) % 24
	body := data[2:]
	if len(body) < na*d {
		return 0, nil, nil
	}
	decode := func(rows []byte, n int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := 0; i < n; i++ {
			p := make(geom.Point, d)
			for k := 0; k < d; k++ {
				p[k] = decodeFuzzCoord(rows[i*d+k])
			}
			pts[i] = p
		}
		return pts
	}
	anchors = decode(body, na)
	rest := body[na*d:]
	nq := len(rest) / d
	if nq > 24 {
		nq = 24
	}
	queries = decode(rest, nq)
	return d, anchors, queries
}

// FuzzClassifyIndexedVsScalar feeds arbitrary anchor sets and query
// points (NaN, ±Inf, duplicates included) to every index layout and
// requires exact agreement with the literal scalar anchor scan, both
// point-by-point and through the batch kernel.
func FuzzClassifyIndexedVsScalar(f *testing.F) {
	// 2-D staircase with an interior query and an all-NaN query.
	f.Add([]byte{1, 3, 15, 11, 13, 13, 11, 15, 12, 12, 2, 2})
	// 3-D bottom anchor (-Inf everywhere) against NaN and grid queries.
	f.Add([]byte{2, 1, 0, 0, 0, 2, 2, 2, 12, 12, 12})
	// 1-D with +Inf anchor (constant negative in effect) and duplicates.
	f.Add([]byte{0, 2, 1, 9, 9, 8, 2})
	// Non-antichain 2-D anchors: forces the re-pruning fallback.
	f.Add([]byte{1, 4, 10, 10, 12, 12, 10, 12, 12, 10, 11, 11})
	// Enough 3-D anchors to cross tinyAnchors into the bit matrix.
	big := []byte{2, 20}
	for i := 0; i < 20*3; i++ {
		big = append(big, byte(3+i%13))
	}
	big = append(big, 12, 2, 0, 7, 7, 7)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, anchors, queries := decodeFuzzInstance(data)
		if d == 0 {
			return
		}
		ix := Build(d, anchors)
		for _, a := range anchors {
			queries = append(queries, a) // exact anchor hits
		}
		for _, q := range queries {
			if got, want := ix.Classify(q), scalarClassify(anchors, q); got != want {
				t.Fatalf("d=%d m=%d: Classify(%v) = %v, scalar says %v", d, len(anchors), q, got, want)
			}
		}
		dst := make([]geom.Label, len(queries))
		ix.ClassifyBatchInto(dst, queries)
		for i, q := range queries {
			if want := scalarClassify(anchors, q); dst[i] != want {
				t.Fatalf("d=%d m=%d: batch[%d] (%v) = %v, scalar says %v", d, len(anchors), i, q, dst[i], want)
			}
		}
	})
}
