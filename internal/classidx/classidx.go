// Package classidx is the indexed anchor-classification engine: the
// serving-hot-path replacement for the linear anchor scan of
// classifier.AnchorSet. An Index is built once from an anchor
// antichain, is immutable afterwards, and is safe for any number of
// concurrent readers — exactly the lifecycle of a model snapshot in
// the hot-swap registry.
//
// Classification semantics are bit-for-bit those of the scalar scan
// (geom.Dominates over every anchor): a query x is positive iff for
// some anchor a, no coordinate of x is strictly below the matching
// coordinate of a. Note the form "!(x[k] < a[k])" rather than
// "x[k] >= a[k]": IEEE comparisons make the two differ on NaN inputs
// (a NaN query coordinate passes every anchor, because NaN < v is
// false), and the scalar oracle — which the conformance harness holds
// this package to — implements the first form. Anchor coordinates may
// be -Inf (the constant-positive classifier's bottom anchor) or +Inf;
// NaN anchor coordinates are normalized to -Inf at build time, which
// is observationally identical ("!(x < NaN)" and "!(x < -Inf)" are
// both always true).
//
// Three layouts cover the dimension spectrum (see DESIGN.md §10):
//
//   - d = 1: the pruned antichain is a single minimum, so Classify is
//     one comparison against that threshold.
//   - d = 2: anchors sorted by x form a staircase — the antichain
//     property makes y strictly decreasing — so one binary search on x
//     and one comparison on y decide the query.
//   - d >= 3: a bit-packed anchor matrix in the internal/domgraph
//     idiom. For every dimension k the anchors are sorted on
//     coordinate k and the prefix sets "anchors among the r smallest
//     in dimension k" are materialized as bitsets, 64 anchors per
//     word. A classify binary-searches each dimension for its rank,
//     then ANDs the d prefix rows word by word, early-exiting on the
//     first non-zero word (some anchor survived every dimension) or on
//     a zero rank (no anchor survives that dimension at all). Tiny
//     anchor sets (m <= tinyAnchors) skip the machinery for a flat
//     column-blocked scan that beats it on constant factors.
//
// The batch kernel (ClassifyBatchInto) sorts the micro-batch along
// dimension 0 and sweeps that dimension's rank with a galloping
// pointer, so the dominance work of the first dimension is shared
// across the whole batch; remaining dimensions fall back to per-point
// binary search. Scratch comes from a sync.Pool, so steady-state batch
// classification performs zero allocations.
package classidx

import (
	"fmt"
	"math"
	"sort"

	"monoclass/internal/geom"
	"monoclass/internal/skyline"
)

// tinyAnchors is the anchor count below which (for d >= 3) a flat scan
// beats the bit-matrix on constant factors; see BenchmarkTinyCrossover.
const tinyAnchors = 16

// layout discriminates the index representations.
type layout uint8

const (
	layoutEmpty layout = iota // no anchors: constant negative
	layout1D                  // single threshold
	layout2D                  // staircase
	layoutTiny                // flat scan, d >= 3, few anchors
	layoutBits                // prefix-bitset matrix, d >= 3
)

// Index is an immutable classification index over one anchor
// antichain. Build it once (NewAnchorSet does), then read from any
// number of goroutines.
type Index struct {
	dim  int
	m    int
	kind layout

	// layout1D: the smallest anchor coordinate.
	tau float64

	// layout2D: the staircase, xs strictly ascending, ys strictly
	// descending (parallel slices).
	xs, ys []float64

	// layoutTiny: anchors flattened row-major (m × dim), NaN→-Inf.
	flat []float64

	// layoutBits: per dimension, the anchor coordinates sorted
	// ascending and the (m+1) prefix bitsets laid out flat —
	// prefix[k][r*words : (r+1)*words] holds the anchors whose
	// dimension-k coordinate is among the r smallest (ties resolved by
	// sort position, but every run of equal coordinates is wholly
	// inside or outside a queried prefix because ranks come from
	// upper-bound searches).
	words  int
	coords [][]float64
	prefix [][]uint64
}

// Build constructs the index for anchors of dimension dim. The anchors
// should form an antichain (classifier.NewAnchorSet prunes before
// building); Build verifies the property where its layouts rely on it
// and re-prunes to the minimal antichain when handed a non-antichain,
// so the result always matches the scalar scan over the given anchors.
// The anchor slices are copied — the caller keeps ownership.
func Build(dim int, anchors []geom.Point) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("classidx: dimension %d must be positive", dim))
	}
	for i, a := range anchors {
		if len(a) != dim {
			panic(fmt.Sprintf("classidx: anchor %d has dimension %d, want %d", i, len(a), dim))
		}
	}
	ix := &Index{dim: dim, m: len(anchors)}
	if ix.m == 0 {
		ix.kind = layoutEmpty
		return ix
	}
	switch {
	case dim == 1:
		ix.build1D(anchors)
	case dim == 2:
		ix.build2D(anchors)
	case ix.m <= tinyAnchors:
		ix.buildTiny(anchors)
	default:
		ix.buildBits(anchors)
	}
	return ix
}

// Dim returns the dimensionality the index classifies.
func (ix *Index) Dim() int { return ix.dim }

// Anchors returns how many anchors the index holds (after any
// defensive re-pruning).
func (ix *Index) Anchors() int { return ix.m }

// normCoord maps NaN anchor coordinates to -Inf; the two are
// indistinguishable under the "!(x < a)" test.
func normCoord(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return v
}

// build1D: the minimal anchors of a 1-D set collapse to the smallest
// value, so the whole index is one threshold. (Pruning makes this a
// single anchor, but Build tolerates unpruned input for free here.)
func (ix *Index) build1D(anchors []geom.Point) {
	ix.kind = layout1D
	ix.tau = normCoord(anchors[0][0])
	for _, a := range anchors[1:] {
		if v := normCoord(a[0]); v < ix.tau {
			ix.tau = v
		}
	}
}

// build2D lays the anchors out as a staircase: sorted by x ascending,
// an antichain has y strictly descending. If the sorted sequence is
// not strictly monotone the input was not an antichain (or contained
// duplicates / NaN-induced comparabilities); re-prune the normalized
// coordinates to their minimal points — which classify identically —
// and rebuild. The pruned set is always a strict staircase, so the
// recursion runs at most once.
func (ix *Index) build2D(anchors []geom.Point) {
	ix.kind = layout2D
	ix.m = len(anchors)
	ix.xs = make([]float64, len(anchors))
	ix.ys = make([]float64, len(anchors))
	order := make([]int, len(anchors))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := anchors[order[a]], anchors[order[b]]
		if xa, xb := normCoord(pa[0]), normCoord(pb[0]); xa != xb {
			return xa < xb
		}
		return normCoord(pa[1]) < normCoord(pb[1])
	})
	staircase := true
	for i, idx := range order {
		ix.xs[i] = normCoord(anchors[idx][0])
		ix.ys[i] = normCoord(anchors[idx][1])
		if i > 0 && (ix.xs[i] <= ix.xs[i-1] || ix.ys[i] >= ix.ys[i-1]) {
			staircase = false
		}
	}
	if !staircase {
		ix.build2D(normMinimal2D(anchors))
	}
}

// normMinimal2D prunes to minimal points under normalized (NaN→-Inf)
// coordinates. Normalizing first matters: a raw NaN behaves like -Inf
// as an anchor (right operand of the dominance comparison) but like
// +Inf as a left operand, so pruning un-normalized anchors could drop
// a non-redundant one.
func normMinimal2D(anchors []geom.Point) []geom.Point {
	norm := make([]geom.Point, len(anchors))
	for i, a := range anchors {
		norm[i] = geom.Point{normCoord(a[0]), normCoord(a[1])}
	}
	return skyline.Filter(norm, skyline.Minimal(norm))
}

// buildTiny flattens the anchors row-major for a cache-friendly scan.
func (ix *Index) buildTiny(anchors []geom.Point) {
	ix.kind = layoutTiny
	ix.flat = make([]float64, ix.m*ix.dim)
	for j, a := range anchors {
		for k, v := range a {
			ix.flat[j*ix.dim+k] = normCoord(v)
		}
	}
}

// buildBits materializes, per dimension, the sorted coordinates and
// all m+1 prefix bitsets, O(d·m²/64) words of memory and work.
func (ix *Index) buildBits(anchors []geom.Point) {
	ix.kind = layoutBits
	m, d := ix.m, ix.dim
	ix.words = (m + 63) / 64
	ix.coords = make([][]float64, d)
	ix.prefix = make([][]uint64, d)
	order := make([]int, m)
	for k := 0; k < d; k++ {
		for i := range order {
			order[i] = i
		}
		kk := k
		sort.Slice(order, func(a, b int) bool {
			return normCoord(anchors[order[a]][kk]) < normCoord(anchors[order[b]][kk])
		})
		cs := make([]float64, m)
		pre := make([]uint64, (m+1)*ix.words)
		for r, j := range order {
			cs[r] = normCoord(anchors[j][kk])
			row := pre[(r+1)*ix.words : (r+2)*ix.words]
			copy(row, pre[r*ix.words:(r+1)*ix.words])
			row[j>>6] |= 1 << uint(j&63)
		}
		ix.coords[k] = cs
		ix.prefix[k] = pre
	}
}

// prefixRow returns the bitset of anchors whose dimension-k coordinate
// is among the r smallest.
func (ix *Index) prefixRow(k, r int) []uint64 {
	return ix.prefix[k][r*ix.words : (r+1)*ix.words]
}

// rank returns how many anchors pass the dimension-k test for query
// coordinate x — the upper-bound position of x in the sorted
// coordinates, with NaN passing everything.
func (ix *Index) rank(k int, x float64) int {
	if math.IsNaN(x) {
		return ix.m
	}
	cs := ix.coords[k]
	lo, hi := 0, len(cs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Classify returns the label of p: positive iff p dominates some
// anchor. It panics on dimension mismatch, like the scalar scan.
func (ix *Index) Classify(p geom.Point) geom.Label {
	if len(p) != ix.dim {
		panic(fmt.Sprintf("classidx: Index(dim %d) applied to %d-dimensional point", ix.dim, len(p)))
	}
	switch ix.kind {
	case layoutEmpty:
		return geom.Negative
	case layout1D:
		return label(!(p[0] < ix.tau))
	case layout2D:
		r := ix.rank2D(p[0])
		return label(r > 0 && !(p[1] < ix.ys[r-1]))
	case layoutTiny:
		return ix.classifyTiny(p)
	default:
		return ix.classifyBits(p)
	}
}

// label converts a dominance verdict to a geom.Label.
func label(positive bool) geom.Label {
	if positive {
		return geom.Positive
	}
	return geom.Negative
}

// rank2D is the staircase upper bound: how many anchors pass the x
// test (NaN passes all).
func (ix *Index) rank2D(x float64) int {
	if math.IsNaN(x) {
		return len(ix.xs)
	}
	lo, hi := 0, len(ix.xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.xs[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// classifyTiny is the flat scan: the scalar loop over normalized
// coordinates, kept for small anchor counts where it wins on constant
// factors.
func (ix *Index) classifyTiny(p geom.Point) geom.Label {
	d := ix.dim
	for j := 0; j < ix.m; j++ {
		row := ix.flat[j*d : (j+1)*d]
		ok := true
		for k, a := range row {
			if p[k] < a {
				ok = false
				break
			}
		}
		if ok {
			return geom.Positive
		}
	}
	return geom.Negative
}

// classifyBits intersects the per-dimension prefix rows word by word.
// A rank of 0 in any dimension is an immediate negative; dimensions at
// full rank (every anchor passes — NaN queries, +Inf queries, -Inf
// anchor columns) drop out of the AND entirely.
func (ix *Index) classifyBits(p geom.Point) geom.Label {
	var rbuf [16][]uint64
	rows := rbuf[:0]
	if ix.dim > len(rbuf) {
		rows = make([][]uint64, 0, ix.dim)
	}
	for k := 0; k < ix.dim; k++ {
		r := ix.rank(k, p[k])
		if r == 0 {
			return geom.Negative
		}
		if r == ix.m {
			continue
		}
		rows = append(rows, ix.prefixRow(k, r))
	}
	return label(anyCommonBit(rows, ix.words))
}

// anyCommonBit reports whether the AND of the rows has any set bit;
// no rows means every anchor survived.
func anyCommonBit(rows [][]uint64, words int) bool {
	if len(rows) == 0 {
		return true
	}
	first := rows[0]
	for w := 0; w < words; w++ {
		v := first[w]
		for _, row := range rows[1:] {
			v &= row[w]
		}
		if v != 0 {
			return true
		}
	}
	return false
}
