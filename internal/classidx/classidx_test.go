package classidx

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"monoclass/internal/geom"
	"monoclass/internal/skyline"
)

// scalarClassify is the oracle: the literal anchor scan with the exact
// "!(p[k] < a[k])" comparison of geom.Dominates.
func scalarClassify(anchors []geom.Point, p geom.Point) geom.Label {
	for _, a := range anchors {
		ok := true
		for k := range a {
			if p[k] < a[k] {
				ok = false
				break
			}
		}
		if ok {
			return geom.Positive
		}
	}
	return geom.Negative
}

// specials are the coordinate values that exercise every comparison
// edge: finite, infinite, NaN, and denormal-scale magnitudes.
var specials = []float64{math.Inf(-1), math.Inf(1), math.NaN(), 0, -0.0, 1, -1, 1e308, -1e308, 5e-324}

// randomCoord draws a coordinate that is special with probability ~1/4.
func randomCoord(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return specials[rng.Intn(len(specials))]
	}
	return math.Floor(rng.Float64()*16) - 8 // small grid: dense ties
}

// randomAntichain draws random points (with special coordinates and
// duplicates) and prunes them to their minimal antichain.
func randomAntichain(rng *rand.Rand, n, d int) []geom.Point {
	raw := make([]geom.Point, n)
	for i := range raw {
		p := make(geom.Point, d)
		for k := range p {
			v := randomCoord(rng)
			if math.IsNaN(v) {
				v = math.Inf(-1) // anchors: NaN is normalized anyway; keep oracle simple
			}
			p[k] = v
		}
		raw[i] = p
	}
	return skyline.Filter(raw, skyline.Minimal(raw))
}

// randomQuery draws a query point, NaN and infinities included.
func randomQuery(rng *rand.Rand, d int) geom.Point {
	p := make(geom.Point, d)
	for k := range p {
		p[k] = randomCoord(rng)
	}
	return p
}

// TestClassifyMatchesScalar is the main differential: across every
// layout (d = 1, 2, tiny d >= 3, bit-matrix d >= 3), Classify and
// ClassifyBatchInto must agree with the scalar scan on queries that
// include NaN, ±Inf, exact anchor coordinates, and duplicates.
func TestClassifyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(6)
		n := rng.Intn(80)
		if trial%7 == 0 {
			n = rng.Intn(200) // push past tinyAnchors into the bit matrix
		}
		anchors := randomAntichain(rng, n, d)
		ix := Build(d, anchors)

		queries := make([]geom.Point, 0, 64)
		for i := 0; i < 48; i++ {
			queries = append(queries, randomQuery(rng, d))
		}
		for _, a := range anchors {
			if len(queries) >= 64 {
				break
			}
			queries = append(queries, a.Clone()) // exact anchor hits
		}

		for _, q := range queries {
			got, want := ix.Classify(q), scalarClassify(anchors, q)
			if got != want {
				t.Fatalf("trial %d (d=%d, m=%d): Classify(%v) = %v, scalar says %v",
					trial, d, len(anchors), q, got, want)
			}
		}

		dst := make([]geom.Label, len(queries))
		ix.ClassifyBatchInto(dst, queries)
		for i, q := range queries {
			if want := scalarClassify(anchors, q); dst[i] != want {
				t.Fatalf("trial %d (d=%d, m=%d): batch[%d] (%v) = %v, scalar says %v",
					trial, d, len(anchors), i, q, dst[i], want)
			}
		}
	}
}

// TestNaNAnchorNormalization: a NaN anchor coordinate behaves exactly
// like -Inf under the scalar comparison, and the index must reproduce
// that.
func TestNaNAnchorNormalization(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		anchor := make(geom.Point, d)
		for k := range anchor {
			anchor[k] = 1
		}
		anchor[0] = math.NaN()
		anchors := []geom.Point{anchor}
		ix := Build(d, anchors)
		q := make(geom.Point, d)
		for k := range q {
			q[k] = 2
		}
		q[0] = -1e308 // far below any finite coordinate: only NaN/-Inf pass
		if got, want := ix.Classify(q), scalarClassify(anchors, q); got != want {
			t.Errorf("d=%d: NaN-anchor Classify = %v, scalar says %v", d, got, want)
		}
	}
}

// TestBottomAnchor: the ConstPositive bottom anchor (-Inf everywhere)
// classifies everything positive — including all-NaN queries.
func TestBottomAnchor(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		bottom := make(geom.Point, d)
		nan := make(geom.Point, d)
		for k := range bottom {
			bottom[k] = math.Inf(-1)
			nan[k] = math.NaN()
		}
		ix := Build(d, []geom.Point{bottom})
		for _, q := range []geom.Point{bottom.Clone(), nan, make(geom.Point, d)} {
			if ix.Classify(q) != geom.Positive {
				t.Errorf("d=%d: bottom anchor failed to classify %v positive", d, q)
			}
		}
	}
}

// TestEmptyIndex: no anchors is the constant-negative classifier.
func TestEmptyIndex(t *testing.T) {
	ix := Build(3, nil)
	if ix.Classify(geom.Point{1, 2, 3}) != geom.Negative {
		t.Error("empty index classified positive")
	}
	dst := make([]geom.Label, 2)
	dst[0], dst[1] = geom.Positive, geom.Positive
	ix.ClassifyBatchInto(dst, []geom.Point{{0, 0, 0}, {1, 1, 1}})
	if dst[0] != geom.Negative || dst[1] != geom.Negative {
		t.Error("empty index batch left positives in dst")
	}
}

// TestBuildDeterministic: the same anchors always produce a bitwise
// identical index — the property snapshot replication and cross-check
// harnesses rely on.
func TestBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(5)
		anchors := randomAntichain(rng, 10+rng.Intn(120), d)
		a := Build(d, anchors)
		b := Build(d, anchors)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d (d=%d, m=%d): Build is not deterministic", trial, d, len(anchors))
		}
	}
}

// TestBatchEveryPermutation: for every permutation of a small batch,
// batch output stays positionally aligned with the scalar result of
// the same slot — the rank carried across the sweep must reset
// correctly on every ascent/descent pattern.
func TestBatchEveryPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 4} {
		anchors := randomAntichain(rng, 60, d)
		ix := Build(d, anchors)
		base := make([]geom.Point, 6)
		for i := range base {
			base[i] = randomQuery(rng, d)
		}
		want := make([]geom.Label, len(base))
		for i, q := range base {
			want[i] = scalarClassify(anchors, q)
		}
		perm := make([]int, len(base))
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		pts := make([]geom.Point, len(base))
		dst := make([]geom.Label, len(base))
		rec = func(k int) {
			if k == len(perm) {
				for i, src := range perm {
					pts[i] = base[src]
				}
				ix.ClassifyBatchInto(dst, pts)
				for i, src := range perm {
					if dst[i] != want[src] {
						t.Fatalf("d=%d perm %v: slot %d = %v, want %v", d, perm, i, dst[i], want[src])
					}
				}
				return
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	}
}

// TestBatchZeroAllocs: steady-state batch classification must not
// allocate, for every layout that serving traffic can reach.
func TestBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name string
		d, n int
	}{
		{"1d", 1, 4}, {"2d-staircase", 2, 64}, {"tiny-3d", 3, 8}, {"bits-3d", 3, 200}, {"bits-5d", 5, 200},
	} {
		anchors := randomAntichain(rng, tc.n, tc.d)
		ix := Build(tc.d, anchors)
		pts := make([]geom.Point, 32)
		for i := range pts {
			pts[i] = randomQuery(rng, tc.d)
		}
		dst := make([]geom.Label, len(pts))
		ix.ClassifyBatchInto(dst, pts) // warm the scratch pool
		allocs := testing.AllocsPerRun(50, func() {
			ix.ClassifyBatchInto(dst, pts)
		})
		if allocs != 0 {
			t.Errorf("%s: ClassifyBatchInto allocates %.1f times per batch, want 0", tc.name, allocs)
		}
	}
}

// TestBatchPanics: misaligned dst and wrong-dimension points must
// panic exactly like the scalar path.
func TestBatchPanics(t *testing.T) {
	ix := Build(2, []geom.Point{{0, 0}})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		ix.ClassifyBatchInto(make([]geom.Label, 1), []geom.Point{{1, 1}, {2, 2}})
	})
	mustPanic("dimension mismatch", func() {
		ix.ClassifyBatchInto(make([]geom.Label, 1), []geom.Point{{1, 2, 3}})
	})
	mustPanic("classify dimension mismatch", func() { ix.Classify(geom.Point{1}) })
}

// TestAdvanceRank pins the galloping upper-bound search against the
// straightforward linear scan.
func TestAdvanceRank(t *testing.T) {
	cs := []float64{math.Inf(-1), -2, -2, 0, 0, 0, 1, 5, 5, math.Inf(1)}
	linear := func(x float64) int {
		if math.IsNaN(x) {
			return len(cs)
		}
		r := 0
		for _, c := range cs {
			if c <= x {
				r++
			}
		}
		return r
	}
	queries := []float64{math.Inf(-1), -3, -2, -1, 0, 0.5, 1, 4, 5, 6, math.Inf(1), math.NaN()}
	for _, x := range queries {
		want := linear(x)
		for from := 0; from <= want; from++ {
			if got := advanceRank(cs, from, x); got != want {
				t.Errorf("advanceRank(from=%d, %v) = %d, want %d", from, x, got, want)
			}
		}
		for hi := want; hi <= len(cs); hi++ {
			if got := boundedRank(cs, hi, x); got != want {
				t.Errorf("boundedRank(hi=%d, %v) = %d, want %d", hi, x, got, want)
			}
		}
	}
	// NaN through boundedRank: reached via a failed >= comparison, but
	// its rank lies past every window.
	if got := boundedRank(cs, 3, math.NaN()); got != len(cs) {
		t.Errorf("boundedRank(hi=3, NaN) = %d, want %d", got, len(cs))
	}
}
