package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
	"monoclass/internal/passive"
	"monoclass/internal/problem"
)

func almostEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// traceStep mutates both the updater and a mirror multiset with one
// random delta: ~60% inserts from a small grid (dense in duplicates),
// ~40% deletes of a random live point. It returns the mirror.
func traceStep(t *testing.T, rng *rand.Rand, u *Updater, mirror geom.WeightedSet, dim int) geom.WeightedSet {
	t.Helper()
	if len(mirror) == 0 || rng.Intn(5) < 3 {
		p := make(geom.Point, dim)
		for i := range p {
			p[i] = float64(rng.Intn(6))
		}
		wp := geom.WeightedPoint{P: p, Label: geom.Label(rng.Intn(2)), Weight: float64(1 + rng.Intn(4))}
		if err := u.Apply(Delta{Op: OpInsert, Point: wp.P, Label: wp.Label, Weight: wp.Weight}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		return append(mirror, wp)
	}
	k := rng.Intn(len(mirror))
	victim := mirror[k]
	if err := u.Apply(Delta{Op: OpDelete, Point: victim.P, Label: victim.Label}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// The updater deletes the FIFO-first (point, label) match; mirror
	// the same rule so multiset weights stay aligned.
	for i, wp := range mirror {
		if wp.Label == victim.Label && wp.P.Equal(victim.P) {
			return append(mirror[:i], mirror[i+1:]...)
		}
	}
	t.Fatalf("mirror desync: %v not found", victim)
	return nil
}

// retrain solves the mirror multiset from scratch on the same
// matrix-adopting problem route the updater uses, with a cold
// workspace — the differential baseline.
func retrain(t *testing.T, mirror geom.WeightedSet) passive.Solution {
	t.Helper()
	pts := make([]geom.Point, len(mirror))
	for i := range mirror {
		pts[i] = mirror[i].P
	}
	cold := maxflow.NewWorkspace()
	p, err := problem.Adopt(mirror, domgraph.Build(pts))
	if err != nil {
		t.Fatalf("retrain: %v", err)
	}
	sol, err := p.SolveWith(problem.SolveOptions{
		Solver: func(g *maxflow.Network) maxflow.Result { return maxflow.SolveWith(cold, g) },
	})
	if err != nil {
		t.Fatalf("retrain: %v", err)
	}
	return sol
}

// TestIncrementalVsRetrain1000 is the headline differential: a
// 1200-step random insert/delete trace with RebuildEvery=1 (every
// delta exact), holding the incremental state to full-retrain
// equality after every single delta — same optimal weighted error,
// same assignment (bit-identical networks force a unique solver
// trajectory), and a maintained werr that matches an independent
// rescore of the model over the live multiset.
func TestIncrementalVsRetrain1000(t *testing.T) {
	const dim, steps = 3, 1200
	rng := rand.New(rand.NewSource(1))
	u, err := NewUpdater(dim, nil, Config{RebuildEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mirror geom.WeightedSet
	for step := 0; step < steps; step++ {
		mirror = traceStep(t, rng, u, mirror, dim)
		if len(mirror) == 0 {
			continue
		}
		// Cheap invariants every step; the expensive retrain on a
		// schedule that still covers hundreds of states.
		live := u.Live()
		if len(live) != len(mirror) {
			t.Fatalf("step %d: live size %d, mirror %d", step, len(live), len(mirror))
		}
		if got := geom.WErr(live, u.Model().Classify); !almostEq(got, u.WErr()) {
			t.Fatalf("step %d: maintained werr %g, rescore %g", step, u.WErr(), got)
		}
		if u.DriftBound() != 0 {
			t.Fatalf("step %d: drift %g after exact solve", step, u.DriftBound())
		}
		if step < 200 || step%7 == 0 {
			sol := retrain(t, mirror)
			if !almostEq(sol.WErr, u.WErr()) {
				t.Fatalf("step %d: incremental werr %g, retrain %g", step, u.WErr(), sol.WErr)
			}
			for i := range live {
				if got := u.Model().Classify(live[i].P); got != sol.Assignment[i] {
					t.Fatalf("step %d: point %d label %v, retrain %v", step, i, got, sol.Assignment[i])
				}
			}
		}
	}
	if s := u.Stats(); s.ExactSolves < steps {
		t.Errorf("RebuildEvery=1 ran %d exact solves over %d deltas", s.ExactSolves, steps)
	}
}

// TestInterimDriftBound runs the production policy (periodic rebuilds,
// interim grafts between them) and checks the drift invariant at every
// step: maintained werr equals a model rescore, never exceeds the
// retrain optimum plus DriftBound, and collapses to the exact optimum
// on Resolve.
func TestInterimDriftBound(t *testing.T) {
	const dim, steps = 3, 600
	rng := rand.New(rand.NewSource(2))
	u, err := NewUpdater(dim, nil, Config{RebuildEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	var mirror geom.WeightedSet
	for step := 0; step < steps; step++ {
		mirror = traceStep(t, rng, u, mirror, dim)
		if len(mirror) == 0 {
			continue
		}
		live := u.Live()
		if got := geom.WErr(live, u.Model().Classify); !almostEq(got, u.WErr()) {
			t.Fatalf("step %d: maintained werr %g, rescore %g", step, u.WErr(), got)
		}
		if step%11 == 0 {
			sol := retrain(t, mirror)
			if u.WErr() > sol.WErr+u.DriftBound()+1e-9 {
				t.Fatalf("step %d: werr %g exceeds k* %g + drift %g", step, u.WErr(), sol.WErr, u.DriftBound())
			}
		}
	}
	if err := u.Resolve(); err != nil {
		t.Fatal(err)
	}
	sol := retrain(t, mirror)
	if !almostEq(sol.WErr, u.WErr()) {
		t.Fatalf("after Resolve: werr %g, retrain %g", u.WErr(), sol.WErr)
	}
	s := u.Stats()
	if s.InterimAdoptions == 0 {
		t.Error("production policy never adopted an interim model")
	}
	if s.ExactSolves >= uint64(steps) {
		t.Errorf("RebuildEvery=8 ran %d exact solves over %d deltas", s.ExactSolves, steps)
	}
}

// TestMaxDriftForcesRebuild checks the weight-budget trigger: with a
// tiny MaxDrift every delta forces an exact solve even though
// RebuildEvery is huge.
func TestMaxDriftForcesRebuild(t *testing.T) {
	u, err := NewUpdater(2, nil, Config{RebuildEvery: 1 << 30, MaxDrift: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		err := u.Apply(Delta{Op: OpInsert, Point: geom.Point{float64(i), 1}, Label: geom.Positive, Weight: 1})
		if err != nil {
			t.Fatal(err)
		}
		if u.DriftBound() != 0 {
			t.Fatalf("delta %d: drift %g, want forced rebuild", i, u.DriftBound())
		}
	}
	if s := u.Stats(); s.ExactSolves < 10 {
		t.Errorf("MaxDrift ran only %d exact solves", s.ExactSolves)
	}
}

func TestUpdaterValidation(t *testing.T) {
	u, err := NewUpdater(2, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Delta{
		{Op: OpInsert, Point: geom.Point{1}, Label: geom.Positive, Weight: 1},            // wrong dim
		{Op: OpInsert, Point: geom.Point{1, math.NaN()}, Label: geom.Positive, Weight: 1}, // NaN coord
		{Op: OpInsert, Point: geom.Point{1, 2}, Label: 7, Weight: 1},                     // bad label
		{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: 0},         // zero weight
		{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: -3},        // negative
		{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: math.Inf(1)},
		{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: math.NaN()},
		{Op: Op(9), Point: geom.Point{1, 2}},       // unknown op
		{Op: OpDelete, Point: geom.Point{1}},       // wrong dim
		{Op: OpDelete, Point: geom.Point{1, 2}, Label: 5}, // bad label
	}
	for i, d := range bad {
		if err := u.Apply(d); err == nil {
			t.Errorf("bad delta %d accepted", i)
		}
	}
	if u.Live() != nil && len(u.Live()) != 0 {
		t.Error("rejected deltas mutated the live set")
	}
	// Delete of an absent (point, label) pair: ErrNotFound, and a
	// label mismatch is a miss even when the coordinates exist.
	if err := u.Apply(Delta{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := u.Apply(Delta{Op: OpDelete, Point: geom.Point{1, 2}, Label: geom.Negative}); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete with wrong label: %v, want ErrNotFound", err)
	}
	if err := u.Apply(Delta{Op: OpDelete, Point: geom.Point{9, 9}, Label: geom.Positive}); !errors.Is(err, ErrNotFound) {
		t.Errorf("delete of absent point: %v, want ErrNotFound", err)
	}
	// NaN delete targets can never match (inserts reject NaN).
	if err := u.Apply(Delta{Op: OpDelete, Point: geom.Point{math.NaN(), 2}, Label: geom.Positive}); !errors.Is(err, ErrNotFound) {
		t.Errorf("NaN delete: %v, want ErrNotFound", err)
	}
}

// TestDuplicateFIFO inserts the same (point, label) twice with
// different weights and checks deletes consume occurrences FIFO.
func TestDuplicateFIFO(t *testing.T) {
	u, err := NewUpdater(1, nil, Config{RebuildEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{1}
	for _, w := range []float64{5, 3} {
		if err := u.Apply(Delta{Op: OpInsert, Point: p, Label: geom.Positive, Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Apply(Delta{Op: OpDelete, Point: p, Label: geom.Positive, Weight: 99}); err != nil {
		t.Fatal(err)
	}
	live := u.Live()
	if len(live) != 1 || live[0].Weight != 3 {
		t.Fatalf("after FIFO delete: %v, want the weight-3 copy", live)
	}
}

// TestEmptyAfterDeletes drains the multiset completely: werr drops to
// 0, the previous model keeps serving, and learning can resume.
func TestEmptyAfterDeletes(t *testing.T) {
	initial := geom.WeightedSet{
		{P: geom.Point{1, 1}, Label: geom.Positive, Weight: 2},
		{P: geom.Point{2, 2}, Label: geom.Negative, Weight: 1},
	}
	u, err := NewUpdater(2, initial, Config{RebuildEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if u.WErr() != 1 {
		t.Fatalf("initial werr %g, want 1", u.WErr())
	}
	for _, wp := range initial {
		if err := u.Apply(Delta{Op: OpDelete, Point: wp.P, Label: wp.Label}); err != nil {
			t.Fatal(err)
		}
	}
	if u.WErr() != 0 || len(u.Live()) != 0 {
		t.Fatalf("after draining: werr %g live %d", u.WErr(), len(u.Live()))
	}
	if u.Model() == nil {
		t.Fatal("model yanked on empty multiset")
	}
	if err := u.Apply(Delta{Op: OpInsert, Point: geom.Point{0, 0}, Label: geom.Positive, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if got := u.Model().Classify(geom.Point{5, 5}); got != geom.Positive {
		t.Fatalf("relearned model misclassifies: %v", got)
	}
}

// TestPublishGate wires a rejecting publisher and checks rejections
// are counted while the internal model still advances.
func TestPublishGate(t *testing.T) {
	rejections := 0
	u, err := NewUpdater(1, nil, Config{
		RebuildEvery: 1,
		Publish: func(m *classifier.AnchorSet) error {
			rejections++
			return errors.New("audit says no")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Apply(Delta{Op: OpInsert, Point: geom.Point{1}, Label: geom.Positive, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	s := u.Stats()
	if s.PublishRejects == 0 || rejections == 0 {
		t.Fatalf("publish rejection not counted: stats=%+v calls=%d", s, rejections)
	}
	if got := u.Model().Classify(geom.Point{2}); got != geom.Positive {
		t.Error("internal model did not advance past a publish rejection")
	}
}

// TestNewUpdaterRejectsBadInitial covers constructor validation.
func TestNewUpdaterRejectsBadInitial(t *testing.T) {
	if _, err := NewUpdater(0, nil, Config{}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewUpdater(2, nil, Config{RebuildEvery: -1}); err == nil {
		t.Error("negative RebuildEvery accepted")
	}
	if _, err := NewUpdater(2, nil, Config{MaxDrift: -1}); err == nil {
		t.Error("negative MaxDrift accepted")
	}
	bad := geom.WeightedSet{{P: geom.Point{math.NaN(), 1}, Label: geom.Positive, Weight: 1}}
	if _, err := NewUpdater(2, bad, Config{}); err == nil {
		t.Error("NaN initial point accepted")
	}
}
