package online

import (
	"errors"
	"math"
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// decodeTrace turns fuzz bytes into a bounded delta trace. Byte 0
// picks the dimension (1–3), byte 1 the rebuild cadence (1–8); then
// each delta is an opcode byte (bit 0: insert/delete, bit 1: label)
// followed by dim coordinate bytes and, for inserts, a weight byte.
// Coordinate 255 decodes to NaN and 254 to +Inf so the fuzzer reaches
// the intake validation paths; everything else lands on a small grid
// (0–7) dense in duplicates and dominance ties.
func decodeTrace(data []byte) (dim, rebuildEvery int, trace []Delta) {
	if len(data) < 2 {
		return 1, 1, nil
	}
	dim = 1 + int(data[0])%3
	rebuildEvery = 1 + int(data[1])%8
	const maxSteps = 256
	i := 2
	for i < len(data) && len(trace) < maxSteps {
		op := data[i]
		i++
		p := make(geom.Point, dim)
		for k := 0; k < dim; k++ {
			var c byte
			if i < len(data) {
				c = data[i]
				i++
			}
			switch c {
			case 255:
				p[k] = math.NaN()
			case 254:
				p[k] = math.Inf(1)
			default:
				p[k] = float64(c % 8)
			}
		}
		label := geom.Label((op >> 1) & 1)
		if op&1 == 0 {
			w := 1.0
			if i < len(data) {
				w = float64(1 + data[i]%4)
				i++
			}
			trace = append(trace, Delta{Op: OpInsert, Point: p, Label: label, Weight: w})
		} else {
			trace = append(trace, Delta{Op: OpDelete, Point: p, Label: label})
		}
	}
	return dim, rebuildEvery, trace
}

// FuzzOnlineTrace drives the updater with arbitrary decoded traces and
// checks it never panics, rejects only what the intake contract
// rejects, keeps its maintained werr equal to an independent model
// rescore, and — after a forced exact re-solve — matches a full
// retrain on the surviving multiset, with the patched dominance
// structure bit-identical to the scalar oracle's.
func FuzzOnlineTrace(f *testing.F) {
	// Duplicates and dominance ties on a 2-D grid.
	f.Add([]byte{1, 0, 0, 1, 1, 2, 0, 1, 1, 2, 2, 3, 3, 1, 0, 1, 1})
	// Delete of an absent point, then of a present one.
	f.Add([]byte{0, 3, 1, 5, 0, 5, 2, 1, 5})
	// NaN and +Inf coordinates through validation.
	f.Add([]byte{2, 1, 0, 255, 1, 1, 2, 0, 254, 254, 7, 1})
	// All deletes against an empty updater.
	f.Add([]byte{1, 2, 1, 1, 1, 3, 3, 2, 1, 7, 7, 2})
	// Insert-heavy churn crossing the interim-adoption path.
	f.Add([]byte{2, 7, 0, 1, 1, 1, 2, 2, 2, 2, 0, 3, 3, 3, 2, 0, 0, 1, 0, 4, 4, 4, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		dim, rebuildEvery, trace := decodeTrace(data)
		if len(trace) == 0 {
			return
		}
		u, err := NewUpdater(dim, nil, Config{RebuildEvery: rebuildEvery})
		if err != nil {
			t.Fatalf("NewUpdater: %v", err)
		}
		for i, d := range trace {
			err := u.Apply(d)
			if err != nil {
				// Only contract rejections are allowed: malformed inserts
				// (validation) and deletes with no live match.
				if d.Op == OpDelete && errors.Is(err, ErrNotFound) {
					continue
				}
				if d.Op == OpInsert && u.Validate(d) != nil {
					continue
				}
				t.Fatalf("step %d: unexpected error for %+v: %v", i, d, err)
			}
			if i%16 == 0 {
				checkRescore(t, u, i)
			}
		}
		checkRescore(t, u, len(trace))

		// The incrementally patched dominance structure must match the
		// scalar oracle on the surviving points.
		live := u.dyn.LivePoints()
		if diff := domgraph.Diff(u.dyn.Snapshot(), domgraph.BuildNaive(live)); diff != "" {
			t.Fatalf("patched dominance structure diverges from oracle: %s", diff)
		}

		// Forced exact re-solve lands on the retrain optimum.
		if err := u.Resolve(); err != nil {
			t.Fatalf("resolve: %v", err)
		}
		mirror := geom.WeightedSet(u.Live())
		if len(mirror) == 0 {
			return
		}
		sol := retrain(t, mirror)
		if !almostEq(u.WErr(), sol.WErr) {
			t.Fatalf("after resolve: incremental werr %g, retrain optimum %g (live %d)",
				u.WErr(), sol.WErr, len(mirror))
		}
	})
}

// checkRescore asserts the maintained werr equals rescoring the
// published model over the live multiset — the updater's core
// invariant.
func checkRescore(t *testing.T, u *Updater, step int) {
	t.Helper()
	model := u.Model()
	var want float64
	for _, wp := range u.Live() {
		if model.Classify(wp.P) != wp.Label {
			want += wp.Weight
		}
	}
	if !almostEq(u.WErr(), want) {
		t.Fatalf("step %d: maintained werr %g, rescored %g", step, u.WErr(), want)
	}
}
