package online

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/testutil"
)

// TestPipelineDrainEquivalence pushes a random trace through the
// asynchronous pipeline, closes it (lossless drain), and checks the
// end state matches applying the same deltas synchronously.
func TestPipelineDrainEquivalence(t *testing.T) {
	testutil.CheckGoroutines(t)
	const dim, steps = 2, 500
	mkTrace := func(rng *rand.Rand) []Delta {
		var ds []Delta
		live := 0
		for i := 0; i < steps; i++ {
			p := geom.Point{float64(rng.Intn(5)), float64(rng.Intn(5))}
			if live > 0 && rng.Intn(3) == 0 {
				// May miss (wrong label or already-consumed point) — the
				// pipeline must survive those as soft errors.
				ds = append(ds, Delta{Op: OpDelete, Point: p, Label: geom.Label(rng.Intn(2))})
				live--
			} else {
				ds = append(ds, Delta{Op: OpInsert, Point: p, Label: geom.Label(rng.Intn(2)), Weight: float64(1 + rng.Intn(3))})
				live++
			}
		}
		return ds
	}
	trace := mkTrace(rand.New(rand.NewSource(11)))

	sync, err := NewUpdater(dim, nil, Config{RebuildEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range trace {
		if err := sync.Apply(d); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}

	async, err := NewUpdater(dim, nil, Config{RebuildEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(async, PipelineConfig{QueueCap: 64, MaxBatch: 8})
	for _, d := range trace {
		for {
			err := p.Enqueue(d)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				t.Fatal(err)
			}
			time.Sleep(100 * time.Microsecond) // back off and retry, as a client would
		}
	}
	p.Close()

	// Coalescing changes when rebuilds fire relative to interim grafts,
	// so models may differ mid-policy — but the live multisets must be
	// identical, and after a forced exact solve on each, the optima and
	// assignments must agree.
	sl, al := sync.Live(), async.Live()
	if len(sl) != len(al) {
		t.Fatalf("live sizes differ: sync %d, async %d", len(sl), len(al))
	}
	for i := range sl {
		if !sl[i].P.Equal(al[i].P) || sl[i].Label != al[i].Label || sl[i].Weight != al[i].Weight {
			t.Fatalf("live point %d differs: %v vs %v", i, sl[i], al[i])
		}
	}
	if err := sync.Resolve(); err != nil {
		t.Fatal(err)
	}
	if err := async.Resolve(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(sync.WErr(), async.WErr()) {
		t.Fatalf("optima differ after drain: sync %g, async %g", sync.WErr(), async.WErr())
	}
	ss, as := sync.Stats(), async.Stats()
	if ss.Inserts != as.Inserts || ss.Deletes+ss.DeleteMisses != as.Deletes+as.DeleteMisses {
		t.Fatalf("delta accounting differs: sync %+v, async %+v", ss, as)
	}
}

// TestPipelineBackpressure blocks the worker inside a publish gate,
// fills the bounded queue, and checks Enqueue fails fast with
// ErrQueueFull instead of blocking — the batcher discipline.
func TestPipelineBackpressure(t *testing.T) {
	testutil.CheckGoroutines(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	u, err := NewUpdater(1, nil, Config{
		RebuildEvery: 1, // publish on every delta
		Publish: func(*classifier.AnchorSet) error {
			select {
			case entered <- struct{}{}:
				// First publish (the test is listening): wedge until
				// released. Later publishes find no listener and skip.
				<-release
			default:
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(u, PipelineConfig{QueueCap: 2, MaxBatch: 1})
	ins := func(x float64) Delta {
		return Delta{Op: OpInsert, Point: geom.Point{x}, Label: geom.Positive, Weight: 1}
	}
	if err := p.Enqueue(ins(0)); err != nil {
		t.Fatal(err)
	}
	<-entered // worker is now wedged inside the publish gate
	if err := p.Enqueue(ins(1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(ins(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(ins(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity enqueue: %v, want ErrQueueFull", err)
	}
	close(release)
	p.Close()
	if got := u.Stats().Inserts; got != 3 {
		t.Fatalf("drained %d inserts, want 3", got)
	}
	if err := p.Enqueue(ins(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestPipelineEnqueueBatch covers the all-or-nothing validation and
// partial-acceptance contract.
func TestPipelineEnqueueBatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	u, err := NewUpdater(2, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(u, PipelineConfig{})
	defer p.Close()
	good := Delta{Op: OpInsert, Point: geom.Point{1, 2}, Label: geom.Positive, Weight: 1}
	bad := Delta{Op: OpInsert, Point: geom.Point{1}, Label: geom.Positive, Weight: 1}
	n, err := p.EnqueueBatch([]Delta{good, bad, good})
	var be *BatchError
	if n != 0 || !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("EnqueueBatch = (%d, %v), want (0, BatchError{Index: 1})", n, err)
	}
	if n, err := p.EnqueueBatch([]Delta{good, good}); n != 2 || err != nil {
		t.Fatalf("EnqueueBatch = (%d, %v), want (2, nil)", n, err)
	}
}
