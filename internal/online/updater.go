// Package online turns the static passive solver into an incremental
// learning pipeline (ROADMAP item 2, DESIGN.md §11): an Updater
// accepts labeled-point deltas (insert/delete), patches the dominance
// structure in place through domgraph.Dynamic instead of rebuilding
// the O(dn²) relation, warm-starts exact re-solves from a persistent
// maxflow.Workspace, and between exact solves maintains a cheap
// interim model whose weighted error is provably within DriftBound of
// optimal.
//
// The correctness contract, enforced differentially by the
// conformance checks and FuzzOnlineTrace: at every step the
// maintained weighted error equals geom.WErr of the current model
// over the live multiset, immediately after an exact solve the model
// is bit-equal to a full retrain with the same dominance matrix, and
// at all times werr ≤ k* + DriftBound, where k* is the optimum of the
// live multiset.
//
// The drift bound is the invariant that makes interim models sound
// (Tao, "Monotone Classification with Relative Approximations"):
// inserting a point of weight w raises k* by at most w and raises the
// maintained werr by at most w; deleting lowers both by at most w.
// Either way the gap werr − k* grows by at most the delta's weight,
// and interim adoptions only shrink werr while leaving k* fixed. So
// summing delta weights since the last exact solve bounds the
// suboptimality of whatever model is currently published.
package online

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"monoclass/internal/classifier"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
	"monoclass/internal/problem"
)

// Op is a delta kind.
type Op uint8

const (
	// OpInsert adds one weighted labeled point to the live multiset.
	OpInsert Op = iota
	// OpDelete removes one previously inserted point, matched by
	// coordinates and label (FIFO among duplicates); Weight is ignored.
	OpDelete
)

// String returns the wire name of the op ("insert"/"delete").
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Delta is one insert or delete of a weighted labeled point.
type Delta struct {
	Op     Op
	Point  geom.Point
	Label  geom.Label
	Weight float64 // insert only; ignored on delete
}

// ErrNotFound is returned by Apply for a delete whose (point, label)
// pair has no live occurrence.
var ErrNotFound = errors.New("online: delete target not in live set")

// Config tunes an Updater.
type Config struct {
	// RebuildEvery triggers an exact warm-started re-solve after this
	// many applied deltas (default 64). 1 means every delta is exact —
	// the differential-testing mode.
	RebuildEvery int
	// MaxDrift forces an exact re-solve whenever DriftBound would
	// exceed it, regardless of RebuildEvery (0 = no weight cap). It is
	// the knob that turns the drift invariant into a hard quality
	// budget: the published model's werr never exceeds k* + MaxDrift.
	MaxDrift float64
	// DisableInterim turns off the cheap anchor-graft models between
	// exact solves; the previous exact model is served unchanged until
	// the next rebuild.
	DisableInterim bool
	// Publish, when non-nil, is called with every new model (exact or
	// interim) under the updater lock. The serving layer wires it to
	// Registry.Swap so the existing SpotAudit/HoldoutAudit gates vet
	// each promotion; a rejection is counted in Stats but the updater
	// keeps its internal model — the next exact solve re-offers.
	Publish func(*classifier.AnchorSet) error
}

// StatsSnapshot is a point-in-time copy of the updater counters,
// serialized into the /stats endpoint.
type StatsSnapshot struct {
	Inserts          uint64  `json:"inserts"`
	Deletes          uint64  `json:"deletes"`
	DeleteMisses     uint64  `json:"delete_misses"`
	ExactSolves      uint64  `json:"exact_solves"`
	InterimAdoptions uint64  `json:"interim_adoptions"`
	PublishRejects   uint64  `json:"publish_rejects"`
	Compactions      uint64  `json:"compactions"`
	ApplyErrors      uint64  `json:"apply_errors"`
	Live             int     `json:"live"`
	WErr             float64 `json:"werr"`
	DriftBound       float64 `json:"drift_bound"`
	SinceExact       int     `json:"since_exact"`
}

// Updater maintains an optimal (or drift-bounded near-optimal)
// monotone classifier over a mutating weighted multiset. All methods
// are safe for concurrent use; mutations serialize on one mutex while
// Model/WErr/Stats readers take it only briefly.
type Updater struct {
	mu  sync.Mutex
	cfg Config
	dim int

	dyn *domgraph.Dynamic
	// Parallel per-slot arrays (tombstoned slots keep stale entries
	// until the next Compact, exactly like dyn's own rows).
	labels  []geom.Label
	weights []float64
	// assign is the current model's value on each slot — maintained so
	// werr never needs an O(n·m) rescore. Invariant: for every live
	// slot i, assign[i] == model.Classify(point i), and werr is the
	// total weight of live slots with assign[i] != labels[i].
	assign []geom.Label

	ws   *maxflow.Workspace // persistent warm-start scratch for exact solves
	prob *problem.Problem   // prepared at the last exact solve; see Problem
	model *classifier.AnchorSet
	werr  float64
	drift float64 // Σ delta weights since last exact solve
	since int     // deltas since last exact solve

	stats struct {
		inserts, deletes, deleteMisses       uint64
		exactSolves, interims, publishRejcts uint64
		compactions, applyErrors             uint64
	}
}

// NewUpdater builds an updater over the initial multiset (which may
// be empty) and runs one exact solve without publishing — the caller
// seeds the registry with the returned Model itself.
func NewUpdater(dim int, initial geom.WeightedSet, cfg Config) (*Updater, error) {
	return newUpdater(dim, initial, nil, cfg)
}

// NewUpdaterFromProblem builds an updater seeded from a prepared
// Problem over the initial multiset: when the Problem holds a dense
// matrix its bits are adopted directly, so warm-starting an online
// pipeline from a trained-and-audited Problem skips the O(dn²)
// relation rebuild entirely.
func NewUpdaterFromProblem(p *problem.Problem, cfg Config) (*Updater, error) {
	return newUpdater(p.Dim(), p.WeightedSet(), p, cfg)
}

func newUpdater(dim int, initial geom.WeightedSet, seed *problem.Problem, cfg Config) (*Updater, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("online: dimension %d must be positive", dim)
	}
	if cfg.RebuildEvery < 0 {
		return nil, fmt.Errorf("online: RebuildEvery %d must be non-negative", cfg.RebuildEvery)
	}
	if cfg.RebuildEvery == 0 {
		cfg.RebuildEvery = 64
	}
	if cfg.MaxDrift < 0 || math.IsNaN(cfg.MaxDrift) {
		return nil, fmt.Errorf("online: MaxDrift %g must be non-negative", cfg.MaxDrift)
	}
	u := &Updater{cfg: cfg, dim: dim, ws: maxflow.NewWorkspace()}
	pts := make([]geom.Point, len(initial))
	for i, wp := range initial {
		if err := validateInsert(dim, wp.P, wp.Label, wp.Weight); err != nil {
			return nil, fmt.Errorf("online: initial point %d: %w", i, err)
		}
		pts[i] = wp.P
	}
	var dyn *domgraph.Dynamic
	var err error
	if seed != nil && seed.Matrix() != nil && seed.N() == len(initial) {
		// A dense prepared Problem over the same points already paid
		// for the relation — adopt its bits instead of rebuilding.
		dyn, err = domgraph.NewDynamicFromMatrix(dim, pts, seed.Matrix())
	} else {
		dyn, err = domgraph.NewDynamic(dim, pts)
	}
	if err != nil {
		return nil, err
	}
	u.dyn = dyn
	u.labels = make([]geom.Label, len(initial))
	u.weights = make([]float64, len(initial))
	u.assign = make([]geom.Label, len(initial))
	for i, wp := range initial {
		u.labels[i] = wp.Label
		u.weights[i] = wp.Weight
	}
	u.model = classifier.ConstNegative(dim)
	if err := u.resolveLocked(false); err != nil {
		return nil, err
	}
	return u, nil
}

// validateInsert holds the stateless part of delta validation, shared
// by NewUpdater, Apply, and the pipeline's synchronous intake check.
// NaN coordinates are rejected outright: geom.Dominates makes a NaN
// point mutually dominant with everything it meets, which breaks both
// the Section 5.1 construction and the kernel/naive builder agreement
// the conformance suite relies on. ±Inf is fine.
func validateInsert(dim int, p geom.Point, l geom.Label, w float64) error {
	if len(p) != dim {
		return fmt.Errorf("point has dimension %d, want %d", len(p), dim)
	}
	for i, v := range p {
		if math.IsNaN(v) {
			return fmt.Errorf("coordinate %d is NaN", i)
		}
	}
	if !l.Valid() {
		return fmt.Errorf("label %d is not binary", l)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("weight %g must be positive and finite", w)
	}
	return nil
}

// Validate checks a delta without applying it: everything Apply would
// reject except delete-target existence, which depends on state the
// queue hasn't drained yet. The pipeline runs this at intake so
// malformed requests fail synchronously with a 400 instead of dying
// silently inside the worker.
func (u *Updater) Validate(d Delta) error {
	switch d.Op {
	case OpInsert:
		return u.validateInsertErr(d)
	case OpDelete:
		if len(d.Point) != u.dim {
			return fmt.Errorf("online: point has dimension %d, want %d", len(d.Point), u.dim)
		}
		if !d.Label.Valid() {
			return fmt.Errorf("online: label %d is not binary", d.Label)
		}
		return nil
	default:
		return fmt.Errorf("online: unknown op %d", d.Op)
	}
}

func (u *Updater) validateInsertErr(d Delta) error {
	if err := validateInsert(u.dim, d.Point, d.Label, d.Weight); err != nil {
		return fmt.Errorf("online: %w", err)
	}
	return nil
}

// Apply applies one delta and runs the rebuild policy: an exact
// warm-started re-solve when the delta count reaches RebuildEvery or
// the drift bound exceeds MaxDrift, a constant-work interim model
// graft otherwise. On error the live multiset is unchanged.
func (u *Updater) Apply(d Delta) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.applyLocked(d)
}

// ApplyBatch applies deltas in order under one lock hold, stopping at
// the first error. It returns how many were applied.
func (u *Updater) ApplyBatch(ds []Delta) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for i, d := range ds {
		if err := u.applyLocked(d); err != nil {
			return i, err
		}
	}
	return len(ds), nil
}

func (u *Updater) applyLocked(d Delta) error {
	if err := u.Validate(d); err != nil {
		u.stats.applyErrors++
		return err
	}
	var w float64
	switch d.Op {
	case OpInsert:
		if _, err := u.dyn.Insert(d.Point); err != nil {
			u.stats.applyErrors++
			return fmt.Errorf("online: %w", err)
		}
		u.labels = append(u.labels, d.Label)
		u.weights = append(u.weights, d.Weight)
		pred := u.model.Classify(d.Point)
		u.assign = append(u.assign, pred)
		if pred != d.Label {
			u.werr += d.Weight
		}
		w = d.Weight
		u.stats.inserts++
	case OpDelete:
		slot := u.findLocked(d.Point, d.Label)
		if slot < 0 {
			u.stats.deleteMisses++
			return ErrNotFound
		}
		if u.assign[slot] != u.labels[slot] {
			u.werr -= u.weights[slot]
		}
		w = u.weights[slot]
		u.dyn.Delete(slot)
		u.stats.deletes++
	}
	u.drift += w
	u.since++

	if u.since >= u.cfg.RebuildEvery || (u.cfg.MaxDrift > 0 && u.drift > u.cfg.MaxDrift) {
		return u.resolveLocked(true)
	}
	if !u.cfg.DisableInterim && d.Op == OpInsert {
		u.tryInterimLocked()
	}
	return nil
}

// findLocked returns the lowest live slot whose point and label match
// (FIFO among duplicates), or -1. NaN coordinates never match because
// inserts reject them and Equal is IEEE-strict.
func (u *Updater) findLocked(p geom.Point, l geom.Label) int {
	for i := 0; i < u.dyn.Slots(); i++ {
		if u.dyn.Alive(i) && u.labels[i] == l && u.dyn.Point(i).Equal(p) {
			return i
		}
	}
	return -1
}

// tryInterimLocked grafts the just-inserted point onto the anchor set
// when that strictly lowers werr. The candidate model differs from
// the current one exactly on the live points dominating the new point
// that were classified Negative (anchors only ever grow the positive
// region), so the error delta is computable from one bit-matrix
// column walk — no flow solve, no rescore. Deletes and already-correct
// inserts leave the model alone; mis-classified Negative inserts have
// no anchor-graft analogue (shrinking the positive region is not
// expressible by adding anchors) and simply wait for the next rebuild.
func (u *Updater) tryInterimLocked() {
	slot := u.dyn.Slots() - 1 // the point applyLocked just inserted
	if u.labels[slot] != geom.Positive || u.assign[slot] == geom.Positive {
		return
	}
	var errDelta float64
	for i := 0; i < u.dyn.Slots(); i++ {
		if !u.dyn.Alive(i) || u.assign[i] != geom.Negative || !u.dyn.Dominates(i, slot) {
			continue
		}
		if u.labels[i] == geom.Negative {
			errDelta += u.weights[i]
		} else {
			errDelta -= u.weights[i]
		}
	}
	if errDelta >= 0 {
		return
	}
	anchors := u.model.Anchors()
	cand := make([]geom.Point, len(anchors), len(anchors)+1)
	copy(cand, anchors)
	cand = append(cand, u.dyn.Point(slot))
	next, err := classifier.NewAnchorSet(u.dim, cand)
	if err != nil {
		// Cannot happen for finite non-NaN anchors; treat as a skipped
		// optimization rather than a failed delta.
		u.stats.applyErrors++
		return
	}
	for i := 0; i < u.dyn.Slots(); i++ {
		if u.dyn.Alive(i) && u.assign[i] == geom.Negative && u.dyn.Dominates(i, slot) {
			u.assign[i] = geom.Positive
		}
	}
	u.werr += errDelta
	u.model = next
	u.stats.interims++
	u.publishLocked()
}

// Resolve forces an exact warm-started re-solve (and publication)
// regardless of the rebuild policy.
func (u *Updater) Resolve() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.resolveLocked(true)
}

// resolveLocked compacts the dynamic matrix, adopts the live multiset
// and its patched matrix into a problem.Problem, and re-solves that
// with the persistent workspace before installing the exact model.
// The adopted matrix view carries the same bits a fresh domgraph.Build
// over the live points would produce, so a retrain with
// Options{Matrix: Build(live)} constructs a bit-identical network and
// must return the identical assignment.
func (u *Updater) resolveLocked(publish bool) error {
	if u.dyn.Dead() > 0 {
		u.stats.compactions++
	}
	remap := u.dyn.Compact()
	labels := make([]geom.Label, len(remap))
	weights := make([]float64, len(remap))
	for ni, oi := range remap {
		labels[ni] = u.labels[oi]
		weights[ni] = u.weights[oi]
	}
	u.labels, u.weights = labels, weights

	n := u.dyn.Live()
	if n == 0 {
		// Empty multiset: every model has werr 0; keep serving the
		// current one rather than yanking it to a constant.
		u.assign = u.assign[:0]
		u.prob = nil
		u.werr, u.drift, u.since = 0, 0, 0
		u.stats.exactSolves++
		return nil
	}
	lws := make(geom.WeightedSet, n)
	for i := 0; i < n; i++ {
		lws[i] = geom.WeightedPoint{P: u.dyn.Point(i), Label: u.labels[i], Weight: u.weights[i]}
	}
	prob, err := problem.Adopt(lws, u.dyn.MatrixView())
	if err != nil {
		u.stats.applyErrors++
		return fmt.Errorf("online: exact re-solve: %w", err)
	}
	sol, err := prob.SolveWith(problem.SolveOptions{
		Solver: func(g *maxflow.Network) maxflow.Result { return maxflow.SolveWith(u.ws, g) },
	})
	if err != nil {
		u.stats.applyErrors++
		return fmt.Errorf("online: exact re-solve: %w", err)
	}
	u.prob = prob
	u.model = sol.Classifier
	u.assign = sol.Assignment
	u.werr = sol.WErr
	u.drift, u.since = 0, 0
	u.stats.exactSolves++
	if publish {
		u.publishLocked()
	}
	return nil
}

func (u *Updater) publishLocked() {
	if u.cfg.Publish == nil {
		return
	}
	if err := u.cfg.Publish(u.model); err != nil {
		u.stats.publishRejcts++
	}
}

// Dim returns the dimensionality of the point space.
func (u *Updater) Dim() int { return u.dim }

// Problem returns the prepared Problem adopted at the last exact
// solve, or nil before the first non-empty solve. It shares storage
// with the updater's live matrix, so it is a snapshot valid only until
// the next applied delta — use it immediately (serving gates do) and
// do not retain it across mutations.
func (u *Updater) Problem() *problem.Problem {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.prob
}

// Model returns the current model (exact or interim). The returned
// AnchorSet is immutable.
func (u *Updater) Model() *classifier.AnchorSet {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.model
}

// WErr returns the maintained weighted error of Model over Live.
func (u *Updater) WErr() float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.werr
}

// DriftBound returns the proven bound on WErr − k*: the total weight
// of deltas applied since the last exact solve. Zero right after a
// rebuild.
func (u *Updater) DriftBound() float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.drift
}

// Live returns a copy of the live multiset in slot (insertion) order —
// the exact point list the next exact solve will train on.
func (u *Updater) Live() geom.WeightedSet {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make(geom.WeightedSet, 0, u.dyn.Live())
	for i := 0; i < u.dyn.Slots(); i++ {
		if u.dyn.Alive(i) {
			out = append(out, geom.WeightedPoint{P: u.dyn.Point(i).Clone(), Label: u.labels[i], Weight: u.weights[i]})
		}
	}
	return out
}

// Stats returns a snapshot of the updater counters.
func (u *Updater) Stats() StatsSnapshot {
	u.mu.Lock()
	defer u.mu.Unlock()
	return StatsSnapshot{
		Inserts:          u.stats.inserts,
		Deletes:          u.stats.deletes,
		DeleteMisses:     u.stats.deleteMisses,
		ExactSolves:      u.stats.exactSolves,
		InterimAdoptions: u.stats.interims,
		PublishRejects:   u.stats.publishRejcts,
		Compactions:      u.stats.compactions,
		ApplyErrors:      u.stats.applyErrors,
		Live:             u.dyn.Live(),
		WErr:             u.werr,
		DriftBound:       u.drift,
		SinceExact:       u.since,
	}
}
