package online

import (
	"errors"
	"sync"
)

// Pipeline errors surfaced to callers (mapped to HTTP statuses by the
// serving layer: ErrQueueFull → 429, ErrClosed → 503).
var (
	// ErrQueueFull means the bounded delta queue was full; the caller
	// should back off and retry.
	ErrQueueFull = errors.New("online: learn queue full")
	// ErrClosed means the pipeline has begun (or finished) shutdown.
	ErrClosed = errors.New("online: pipeline closed")
)

// PipelineConfig tunes the asynchronous delta intake. The zero value
// gets defaults from normalize.
type PipelineConfig struct {
	// QueueCap bounds the intake queue; Enqueue fails fast with
	// ErrQueueFull beyond it (default 1024).
	QueueCap int
	// MaxBatch caps how many queued deltas the worker coalesces into
	// one ApplyBatch lock hold (default 256). Coalescing matters under
	// bursts: the rebuild policy counts deltas, not batches, so one
	// long lock hold applies many cheap patches between exact solves
	// instead of paying lock churn per delta.
	MaxBatch int
}

func (c *PipelineConfig) normalize() {
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
}

// Pipeline is the asynchronous front of an Updater: a bounded delta
// queue drained by one worker goroutine that coalesces bursts,
// mirroring the classify batcher's backpressure discipline (fail-fast
// intake, lossless drain on Close). One worker is the right number —
// deltas serialize on the updater mutex anyway, and a single drainer
// preserves arrival order, which delete-matching (FIFO among
// duplicates) depends on.
type Pipeline struct {
	u    *Updater
	cfg  PipelineConfig
	done chan struct{}

	queue chan Delta
	// mu guards the Enqueue-vs-Close race: Enqueue sends on queue only
	// while closed=false under the read lock, so Close can safely
	// close the channel under the write lock.
	mu     sync.RWMutex
	closed bool
}

// NewPipeline starts the worker goroutine over u.
func NewPipeline(u *Updater, cfg PipelineConfig) *Pipeline {
	cfg.normalize()
	p := &Pipeline{
		u:     u,
		cfg:   cfg,
		queue: make(chan Delta, cfg.QueueCap),
		done:  make(chan struct{}),
	}
	go p.worker()
	return p
}

// Updater returns the updater this pipeline feeds.
func (p *Pipeline) Updater() *Updater { return p.u }

// QueueDepth reports how many deltas are waiting (a gauge for /stats).
func (p *Pipeline) QueueDepth() int { return len(p.queue) }

// QueueCap reports the bounded queue's capacity.
func (p *Pipeline) QueueCap() int { return p.cfg.QueueCap }

// Enqueue validates d synchronously (so malformed requests fail at
// intake with a useful error, not silently inside the worker) and
// queues it for asynchronous application. It fails fast with
// ErrQueueFull at capacity and ErrClosed after Close. Delete-target
// existence is NOT checked here — it depends on queued-but-unapplied
// state — so a delete of an absent point is accepted and later counted
// as a delete miss in the updater stats.
func (p *Pipeline) Enqueue(d Delta) error {
	if err := p.u.Validate(d); err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queue <- d:
		return nil
	default:
		return ErrQueueFull
	}
}

// EnqueueBatch validates every delta first (all-or-nothing on
// validation), then queues them in order until the queue fills. It
// returns how many were accepted; err is ErrQueueFull or ErrClosed
// when accepted < len(ds).
func (p *Pipeline) EnqueueBatch(ds []Delta) (int, error) {
	for i, d := range ds {
		if err := p.u.Validate(d); err != nil {
			return 0, &BatchError{Index: i, Err: err}
		}
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return 0, ErrClosed
	}
	for i, d := range ds {
		select {
		case p.queue <- d:
		default:
			return i, ErrQueueFull
		}
	}
	return len(ds), nil
}

// BatchError reports which delta of an EnqueueBatch failed validation.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying validation error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// Close stops intake and drains: every delta already queued is still
// applied before Close returns. Safe to call more than once.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	// No Enqueue can be sending now (they check closed under RLock
	// while holding the send), so closing queue is safe; the worker
	// drains the buffered remainder before exiting.
	close(p.queue)
	<-p.done
}

// worker drains the queue: block for a first delta, greedily coalesce
// whatever else is already queued (up to MaxBatch), apply under one
// lock hold. Soft per-delta failures (delete misses, racing
// validation) skip the offending delta and continue — they are
// counted in the updater stats, never fatal to the stream.
func (p *Pipeline) worker() {
	defer close(p.done)
	batch := make([]Delta, 0, p.cfg.MaxBatch)
	for {
		first, ok := <-p.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
	fill:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case d, ok := <-p.queue:
				if !ok {
					break fill
				}
				batch = append(batch, d)
			default:
				break fill
			}
		}
		rest := batch
		for len(rest) > 0 {
			n, err := p.u.ApplyBatch(rest)
			if err == nil {
				break
			}
			rest = rest[n+1:] // skip the failed delta, keep the stream alive
		}
	}
}
