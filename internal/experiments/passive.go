package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"monoclass/internal/core"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// randomWeightedSet builds a Problem-2 instance from the planted
// generator with random integer weights.
func randomWeightedSet(rng *rand.Rand, n int, noise float64) geom.WeightedSet {
	lab := dataset.Planted(rng, dataset.PlantedParams{N: n, D: 2, Noise: noise})
	ws := make(geom.WeightedSet, len(lab))
	for i, lp := range lab {
		ws[i] = geom.WeightedPoint{P: lp.P, Label: lp.Label, Weight: float64(1 + rng.Intn(9))}
	}
	return ws
}

// PassiveRuntime is E5: the Theorem 4 solver runs in polynomial time
// while the naive subset-enumeration solver explodes exponentially;
// both agree exactly where the naive solver can run.
func PassiveRuntime(cfg Config) Table {
	flowSizes := []int{500, 1000, 2000, 4000, 8000}
	naiveSizes := []int{10, 14, 18, 20}
	if cfg.Quick {
		flowSizes = []int{500, 1000}
		naiveSizes = []int{10, 14}
	}
	t := Table{
		ID:      "E5",
		Title:   "passive solver runtime: Theorem 4 (flow, sparse vs dense graph) vs naive 2^n enumeration",
		Columns: []string{"n", "flow (sparse)", "flow (dense)", "naive", "agree"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))

	// Head-to-head on small instances.
	for _, n := range naiveSizes {
		ws := randomWeightedSet(rng, n, 0.3)
		start := time.Now()
		flow, err := passive.Solve(ws, passive.Options{})
		if err != nil {
			panic(err)
		}
		flowTime := time.Since(start)
		start = time.Now()
		dense, err := passive.Solve(ws, passive.Options{Dense: true})
		if err != nil {
			panic(err)
		}
		denseTime := time.Since(start)
		start = time.Now()
		naive, err := passive.NaiveSolve(ws)
		if err != nil {
			panic(err)
		}
		naiveTime := time.Since(start)
		agree := "yes"
		if flow.WErr != naive.WErr || dense.WErr != naive.WErr {
			agree = fmt.Sprintf("NO (%g/%g vs %g)", flow.WErr, dense.WErr, naive.WErr)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(n), flowTime.String(), denseTime.String(), naiveTime.String(), agree,
		})
	}
	// Flow solver at scale: the sparse graph everywhere, the literal
	// dense graph as far as it is practical.
	for _, n := range flowSizes {
		ws := randomWeightedSet(rng, n, 0.1)
		start := time.Now()
		sparse, err := passive.Solve(ws, passive.Options{})
		if err != nil {
			panic(err)
		}
		sparseTime := time.Since(start)
		denseTime := "-"
		agree := "-"
		if n <= 4000 {
			start = time.Now()
			dense, err := passive.Solve(ws, passive.Options{Dense: true})
			if err != nil {
				panic(err)
			}
			denseTime = time.Since(start).String()
			agree = "yes"
			if dense.WErr != sparse.WErr {
				agree = fmt.Sprintf("NO (%g vs %g)", sparse.WErr, dense.WErr)
			}
		}
		t.Rows = append(t.Rows, []string{fmtInt(n), sparseTime.String(), denseTime, "-", agree})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 4): Problem 2 solves in O(dn²) + T_maxflow(n); the naive solver (§1.2) is exponential and already struggles near n=20.",
		"'dense' is the paper's literal construction (one ∞ edge per dominating pair, Θ(n²)); 'sparse' is this implementation's equivalent O(n·w)-edge reachability network (internal/passive/sparse.go). Optima always agree.",
	)
	return t
}

// MaxflowSolvers is E9: every registered max-flow implementation
// agrees on the passive-classification networks, with the expected
// performance ordering.
func MaxflowSolvers(cfg Config) Table {
	sizes := []int{1000, 2000, 4000}
	if cfg.Quick {
		sizes = []int{500, 1000}
	}
	names := maxflow.SolverNames()
	impls := maxflow.Solvers()
	t := Table{
		ID:      "E9",
		Title:   "max-flow solver comparison on passive-classification instances",
		Columns: append(append([]string{"n"}, names...), "values agree"),
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	for _, n := range sizes {
		ws := randomWeightedSet(rng, n, 0.2)
		times := make([]time.Duration, len(names))
		vals := make([]float64, len(names))
		for i, name := range names {
			start := time.Now()
			sol, err := passive.Solve(ws, passive.Options{Solver: passive.FlowSolver(impls[name])})
			if err != nil {
				panic(err)
			}
			times[i] = time.Since(start)
			vals[i] = sol.WErr
		}
		agree := "yes"
		for i := 1; i < len(vals); i++ {
			if vals[i] != vals[0] {
				agree = fmt.Sprintf("NO %v", vals)
			}
		}
		row := []string{fmtInt(n)}
		for _, d := range times {
			row = append(row, d.String())
		}
		t.Rows = append(t.Rows, append(row, agree))
	}
	t.Notes = append(t.Notes,
		"Claim (§2): any max-flow algorithm serves Theorem 4; the paper cites Goldberg–Tarjan push-relabel at O(V³). All registered implementations must return identical optima.",
		"pushrelabelhl (highest-label + global relabeling on the CSR arc pool, DESIGN.md §8) is the default; dinic-legacy is the pre-CSR adjacency baseline.",
	)
	return t
}

// EndToEndPhases is E10: Theorem 3's cost decomposition — chain
// decomposition, probing, passive solve on Σ — measured per phase.
func EndToEndPhases(cfg Config) Table {
	sizes := []int{20000, 60000, 120000}
	if cfg.Quick {
		sizes = []int{10000, 20000}
	}
	const (
		w   = 8
		eps = 0.5
	)
	t := Table{
		ID:      "E10",
		Title:   fmt.Sprintf("end-to-end phase timing (w=%d, ε=%g)", w, eps),
		Columns: []string{"n", "decompose", "probe", "solve(Σ)", "|Σ| (coalesced)", "probes"},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: 0.05})
		pts := make([]geom.Point, len(lab))
		for i, lp := range lab {
			pts[i] = lp.P
		}
		in := oracle.InstrumentLabeled(lab)
		res, err := core.ActiveLearn(pts, in.O, core.PracticalParams(eps, 0.05), rng)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(n),
			res.Timing.Decompose.String(),
			res.Timing.Probe.String(),
			res.Timing.Solve.String(),
			fmtInt(len(res.Sigma)),
			fmtInt(res.Probes),
		})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 3): total CPU is Õ(dn² + n^2.5 + w/ε²) + T_prob2(d, N) with N = |Σ| ≪ n; the passive solve runs on the small sample, not the input.",
		"The 2-D decomposition fast path runs in O(n log n); the generic Lemma 6 construction is measured separately in E8.",
	)
	return t
}
