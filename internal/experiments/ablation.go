package experiments

import (
	"fmt"
	"math/rand"

	"monoclass/internal/chains"
	"monoclass/internal/core"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// ChainAblation is A1: how much the chain count of the decomposition
// matters. The active algorithm stays correct with any valid
// decomposition, but its probing cost scales with the number of
// chains. We degrade the optimal decomposition deliberately by
// splitting every chain into k contiguous pieces (still a valid
// decomposition, with k·w chains) and measure the probing penalty —
// quantifying why Lemma 6's exactly-w construction is the right
// design choice.
func ChainAblation(cfg Config) Table {
	n := 120000
	trials := 3
	if cfg.Quick {
		n = 20000
		trials = 1
	}
	const (
		w     = 4
		eps   = 0.5
		noise = 0.05
	)
	t := Table{
		ID:      "A1",
		Title:   fmt.Sprintf("ablation: probing cost vs chain count (n=%d, true w=%d, ε=%g)", n, w, eps),
		Columns: []string{"split factor", "chains", "probes (mean)", "vs optimal"},
	}
	var base float64
	for _, split := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(split)))
		var sum float64
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: noise})
			pts := make([]geom.Point, len(lab))
			for i, lp := range lab {
				pts[i] = lp.P
			}
			dec := splitChains(coreDecompose(pts), split)
			in := oracle.InstrumentLabeled(lab)
			if _, err := core.ActiveLearnChains(pts, in.O, core.PracticalParams(eps, 0.05), rng, dec); err != nil {
				panic(err)
			}
			sum += float64(in.DistinctProbes())
		}
		mean := sum / float64(trials)
		if split == 1 {
			base = mean
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(split), fmtInt(split * w), fmtF(mean), fmt.Sprintf("%.2fx", mean/base),
		})
	}
	t.Notes = append(t.Notes,
		"The probing bound is O((#chains/ε²)·polylog): a decomposition with k·w chains pays roughly k× the probes of the minimum one (slightly less, as shorter chains recurse fewer levels). Every run remains (1+ε)-correct — only the cost degrades.",
	)
	return t
}

// coreDecompose returns the minimum chain decomposition's chains.
func coreDecompose(pts []geom.Point) [][]int {
	return chains.Decompose(pts).Chains
}

// splitChains cuts every chain into k contiguous pieces.
func splitChains(chains [][]int, k int) [][]int {
	if k <= 1 {
		return chains
	}
	var out [][]int
	for _, chain := range chains {
		size := (len(chain) + k - 1) / k
		if size == 0 {
			size = 1
		}
		for lo := 0; lo < len(chain); lo += size {
			hi := lo + size
			if hi > len(chain) {
				hi = len(chain)
			}
			out = append(out, chain[lo:hi])
		}
	}
	return out
}
