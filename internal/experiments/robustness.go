package experiments

import (
	"fmt"
	"math/rand"

	"monoclass/internal/core"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
	"monoclass/internal/stats"
)

// OracleNoiseRobustness is E12: failure injection on the probing
// channel. The paper's model assumes the oracle reveals true labels;
// here each reveal is flipped independently (sticky per point) with
// probability ρ, as a fallible annotator would. The learner cannot
// beat the information it receives — the reference line is the best
// monotone classifier fit to the corrupted labels — but it must
// degrade gracefully: stay monotone, stay within budget, and track
// the corrupted-optimum curve rather than collapse.
func OracleNoiseRobustness(cfg Config) Table {
	n := 30000
	trials := 3
	if cfg.Quick {
		n = 8000
		trials = 1
	}
	const (
		w   = 5
		eps = 0.5
	)
	t := Table{
		ID:      "E12",
		Title:   fmt.Sprintf("oracle label-noise robustness (n=%d, w=%d, ε=%g, %d trials)", n, w, eps, trials),
		Columns: []string{"flip prob ρ", "probes (mean)", "err vs true labels / n", "corrupted-optimum / n"},
	}
	for _, rho := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(rho*1000)))
		var probes, errFrac, corruptFrac []float64
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: 0})
			pts := make([]geom.Point, len(lab))
			for i, lp := range lab {
				pts[i] = lp.P
			}
			noisy := oracle.NewNoisy(oracle.FromLabeled(lab), rho, rng)
			cache := oracle.NewCaching(noisy)
			res, err := core.ActiveLearn(pts, cache, core.PracticalParams(eps, 0.05), rng)
			if err != nil {
				panic(err)
			}
			probes = append(probes, float64(res.Probes))
			errFrac = append(errFrac, float64(geom.Err(lab, res.Classifier.Classify))/float64(n))

			// Reference: the optimal monotone fit to the corrupted
			// labels (reveal everything through the same noisy oracle).
			ws := make(geom.WeightedSet, n)
			for i := range pts {
				l, err := cache.Probe(i)
				if err != nil {
					panic(err)
				}
				ws[i] = geom.WeightedPoint{P: pts[i], Label: l, Weight: 1}
			}
			sol, err := passive.Solve(ws, passive.Options{})
			if err != nil {
				panic(err)
			}
			corruptFrac = append(corruptFrac, float64(geom.Err(lab, sol.Classifier.Classify))/float64(n))
		}
		t.Rows = append(t.Rows, []string{
			fmtF(rho), fmtF(stats.Mean(probes)), fmtF(stats.Mean(errFrac)), fmtF(stats.Mean(corruptFrac)),
		})
	}
	t.Notes = append(t.Notes,
		"Failure injection beyond the paper's model: the oracle lies with probability ρ. The learner's error tracks the corrupted-optimum line (what an exact learner would achieve on the same lies) instead of collapsing; monotonicity and the probe budget are unaffected.",
	)
	return t
}
