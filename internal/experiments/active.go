package experiments

import (
	"fmt"
	"math/rand"

	"monoclass/internal/baselines"
	"monoclass/internal/core"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
	"monoclass/internal/stats"
)

// activeRun executes the core active algorithm once on a labeled set
// and reports (distinct probes, error of the returned classifier).
func activeRun(lab []geom.LabeledPoint, eps float64, rng *rand.Rand) (probes int, errP int, err error) {
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	in := oracle.InstrumentLabeled(lab)
	res, e := core.ActiveLearn(pts, in.O, core.PracticalParams(eps, 0.05), rng)
	if e != nil {
		return 0, 0, e
	}
	return in.DistinctProbes(), geom.Err(lab, res.Classifier.Classify), nil
}

// ProbingVsN is E1: Theorem 2's probing cost grows polylogarithmically
// in n at fixed width and ε, against the Θ(n) FullProbe baseline.
func ProbingVsN(cfg Config) Table {
	sizes := []int{8000, 16000, 32000, 64000, 128000}
	trials := 3
	if cfg.Quick {
		sizes = []int{4000, 8000}
		trials = 1
	}
	const (
		w   = 8
		eps = 0.5
	)
	t := Table{
		ID:      "E1",
		Title:   fmt.Sprintf("active probing cost vs n (w=%d, ε=%g, noise=0.05)", w, eps),
		Columns: []string{"n", "probes (mean)", "probes/n", "FullProbe"},
	}
	var ns, ps []float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var probeCounts []float64
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: 0.05})
			probes, _, err := activeRun(lab, eps, rng)
			if err != nil {
				panic(err)
			}
			probeCounts = append(probeCounts, float64(probes))
		}
		mean := stats.Mean(probeCounts)
		ns = append(ns, float64(n))
		ps = append(ps, mean)
		t.Rows = append(t.Rows, []string{
			fmtInt(n), fmtF(mean), fmtF(mean / float64(n)), fmtInt(n),
		})
	}
	slope := stats.LogLogSlope(ns, ps)
	t.Notes = append(t.Notes,
		"Claim (Thm 2): probes = O((w/ε²)·log n·log(n/w)) — polylog in n, so probes/n must fall towards 0 while FullProbe stays Θ(n).",
		fmt.Sprintf("Fitted log-log slope of probes vs n: %.2f (1.0 would be linear; polylog growth fits well below 0.5 at scale).", slope),
	)
	return t
}

// ProbingVsWidth is E2: probing cost scales with the dominance width w
// at fixed n and ε.
func ProbingVsWidth(cfg Config) Table {
	widths := []int{2, 4, 8, 16, 32}
	n := 120000
	trials := 3
	if cfg.Quick {
		widths = []int{2, 4, 8}
		n = 20000
		trials = 1
	}
	const eps = 1.0
	t := Table{
		ID:      "E2",
		Title:   fmt.Sprintf("active probing cost vs dominance width w (n=%d, ε=%g)", n, eps),
		Columns: []string{"w", "probes (mean)", "probes/w"},
	}
	var wsX, ps []float64
	for _, w := range widths {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
		var probeCounts []float64
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: 0.05})
			probes, _, err := activeRun(lab, eps, rng)
			if err != nil {
				panic(err)
			}
			probeCounts = append(probeCounts, float64(probes))
		}
		mean := stats.Mean(probeCounts)
		wsX = append(wsX, float64(w))
		ps = append(ps, mean)
		t.Rows = append(t.Rows, []string{fmtInt(w), fmtF(mean), fmtF(mean / float64(w))})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 2): probes grow linearly in w (each chain pays its own polylog sample); probes/w should be near-flat, dipping slightly as chains shorten (log(n/w) factor).",
		fmt.Sprintf("Fitted log-log slope of probes vs w: %.2f (1.0 = exactly linear).", stats.LogLogSlope(wsX, ps)),
	)
	return t
}

// ProbingVsEpsilon is E3: probing cost scales as 1/ε².
func ProbingVsEpsilon(cfg Config) Table {
	epss := []float64{1, 0.7, 0.5, 0.35, 0.25}
	n := 120000
	trials := 3
	if cfg.Quick {
		epss = []float64{1, 0.5}
		n = 20000
		trials = 1
	}
	const w = 4
	t := Table{
		ID:      "E3",
		Title:   fmt.Sprintf("active probing cost vs ε (n=%d, w=%d)", n, w),
		Columns: []string{"ε", "probes (mean)", "probes·ε²"},
	}
	var invEps, ps []float64
	for _, eps := range epss {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(eps*1000)))
		var probeCounts []float64
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: 0.05})
			probes, _, err := activeRun(lab, eps, rng)
			if err != nil {
				panic(err)
			}
			probeCounts = append(probeCounts, float64(probes))
		}
		mean := stats.Mean(probeCounts)
		invEps = append(invEps, 1/eps)
		ps = append(ps, mean)
		t.Rows = append(t.Rows, []string{fmtF(eps), fmtF(mean), fmtF(mean * eps * eps)})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 2): probes ∝ 1/ε², so probes·ε² should be near-constant until the exhaustive cap (probes ≤ n) bites.",
		fmt.Sprintf("Fitted log-log slope of probes vs 1/ε: %.2f (2.0 = exactly quadratic).", stats.LogLogSlope(invEps, ps)),
	)
	return t
}

// ApproximationQuality is E4: the returned classifier's error stays
// within (1+ε)·k* with high probability across noise levels.
func ApproximationQuality(cfg Config) Table {
	noises := []float64{0.05, 0.1, 0.2}
	n := 6000
	trials := 15
	if cfg.Quick {
		noises = []float64{0.1}
		n = 2000
		trials = 4
	}
	const (
		w   = 5
		eps = 0.5
	)
	t := Table{
		ID:      "E4",
		Title:   fmt.Sprintf("approximation quality err_P(ĥ)/k* (n=%d, w=%d, ε=%g, %d trials/row)", n, w, eps, trials),
		Columns: []string{"noise", "mean ratio", "p95 ratio", "max ratio", "frac ≤ 1+ε"},
	}
	for _, noise := range noises {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(noise*1000)))
		var ratios []float64
		within := 0
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: noise})
			ld := geom.LabeledDataset{Points: lab}
			kstar, err := passive.OptimalError(ld.Weighted())
			if err != nil {
				panic(err)
			}
			if kstar == 0 {
				continue
			}
			_, errP, err := activeRun(lab, eps, rng)
			if err != nil {
				panic(err)
			}
			ratio := float64(errP) / kstar
			ratios = append(ratios, ratio)
			if ratio <= 1+eps+1e-9 {
				within++
			}
		}
		s := stats.Summarize(ratios)
		t.Rows = append(t.Rows, []string{
			fmtF(noise), fmtF(s.Mean), fmtF(s.P95), fmtF(s.Max),
			fmtF(float64(within) / float64(len(ratios))),
		})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 2): err_P(ĥ) ≤ (1+ε)·k* with probability ≥ 1-δ; the final column is the empirical success rate (δ=0.05 here).",
		"k* is computed exactly per trial by the Theorem 4 passive solver on the full labels.",
	)
	return t
}

// BaselineComparison is E7: ours vs FullProbe vs UniformERM vs RBS on
// the same width-controlled inputs, matched by the oracle interface.
// Two noise regimes are reported: at high noise k* is large and any
// reasonable learner looks fine; at low noise k* ≪ n and the
// multiplicative-vs-additive separation the paper argues for becomes
// visible.
func BaselineComparison(cfg Config) Table {
	n := 60000
	trials := 5
	noises := []float64{0.1, 0.005}
	if cfg.Quick {
		n = 12000
		trials = 2
		noises = []float64{0.05}
	}
	const (
		w   = 8
		eps = 0.5
	)
	t := Table{
		ID:      "E7",
		Title:   fmt.Sprintf("method comparison (n=%d, w=%d, ε=%g, %d trials/regime)", n, w, eps, trials),
		Columns: []string{"noise", "method", "probes (mean)", "err/k* (mean)", "err/k* (max)"},
	}

	order := []string{"ActiveLearn (ours)", "RBS (Tao'18-style)", "UniformERM (matched probes)", "FullProbe"}
	for _, noise := range noises {
		type agg struct{ probes, ratios []float64 }
		results := map[string]*agg{}
		for _, name := range order {
			results[name] = &agg{}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 7 + int64(noise*10000)))
		for trial := 0; trial < trials; trial++ {
			lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: noise})
			pts := make([]geom.Point, len(lab))
			for i, lp := range lab {
				pts[i] = lp.P
			}
			ld := geom.LabeledDataset{Points: lab}
			kstar, err := passive.OptimalError(ld.Weighted())
			if err != nil {
				panic(err)
			}
			if kstar == 0 {
				continue
			}
			record := func(name string, probes int, errP int) {
				results[name].probes = append(results[name].probes, float64(probes))
				results[name].ratios = append(results[name].ratios, float64(errP)/kstar)
			}

			in := oracle.InstrumentLabeled(lab)
			res, err := core.ActiveLearn(pts, in.O, core.PracticalParams(eps, 0.05), rng)
			if err != nil {
				panic(err)
			}
			ourProbes := in.DistinctProbes()
			record("ActiveLearn (ours)", ourProbes, geom.Err(lab, res.Classifier.Classify))

			rbs, err := baselines.RBS(pts, oracle.FromLabeled(lab), rng)
			if err != nil {
				panic(err)
			}
			record("RBS (Tao'18-style)", rbs.Probes, geom.Err(lab, rbs.Classifier.Classify))

			erm, err := baselines.UniformERM(pts, oracle.FromLabeled(lab), ourProbes, rng)
			if err != nil {
				panic(err)
			}
			record("UniformERM (matched probes)", erm.Probes, geom.Err(lab, erm.Classifier.Classify))

			full, err := baselines.FullProbe(pts, oracle.FromLabeled(lab))
			if err != nil {
				panic(err)
			}
			record("FullProbe", full.Probes, geom.Err(lab, full.Classifier.Classify))
		}
		for _, name := range order {
			a := results[name]
			t.Rows = append(t.Rows, []string{
				fmtF(noise), name, fmtF(stats.Mean(a.probes)), fmtF(stats.Mean(a.ratios)), fmtF(stats.Max(a.ratios)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"Claims (§1.2): ours reaches (1+ε)k* with polylog-in-n probes; RBS reaches ≈2k* with fewer probes; UniformERM at the same probe budget carries an additive εn-style error — harmless when k* is large (high noise) but a much worse ratio when k* ≪ n (low noise); FullProbe is exact at Θ(n) probes.",
	)
	return t
}
