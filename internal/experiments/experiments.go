// Package experiments implements the reproduction harness: one driver
// per experiment in DESIGN.md §2.2 (E1–E10) plus the two worked-figure
// checks (F1, F2). Each driver generates its workload, runs the
// algorithms under test, and returns a Table whose rows are the series
// the paper's claims predict. cmd/benchtab prints the tables;
// bench_test.go wraps the drivers as Go benchmarks; EXPERIMENTS.md
// records claimed-vs-measured.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all randomness; equal seeds give identical tables.
	Seed int64
	// Quick shrinks input sizes and trial counts so the whole suite
	// runs in seconds (used by tests and benchmark iterations); the
	// full-scale run is the default for cmd/benchtab.
	Quick bool
}

// Table is one experiment's output.
type Table struct {
	ID      string   // experiment id, e.g. "E1"
	Title   string   // human-readable description
	Columns []string // column headers
	Rows    [][]string
	Notes   []string // claim statements, fitted exponents, caveats
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Runner is an experiment driver.
type Runner func(Config) Table

// registry maps experiment ids to drivers.
var registry = map[string]Runner{
	"E1":  ProbingVsN,
	"E2":  ProbingVsWidth,
	"E3":  ProbingVsEpsilon,
	"E4":  ApproximationQuality,
	"E5":  PassiveRuntime,
	"E6":  LowerBoundTradeoff,
	"E7":  BaselineComparison,
	"E8":  ChainDecomposition,
	"E9":  MaxflowSolvers,
	"E10": EndToEndPhases,
	"E11": QuantizationTradeoff,
	"E12": OracleNoiseRobustness,
	"E13": RBSExpectation,
	"F1":  Figure1Check,
	"F2":  Figure2Check,
	"A1":  ChainAblation,
}

// IDs returns all experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	rank := func(id string) int {
		switch id[0] {
		case 'F': // figure checks first
			return 0
		case 'E': // theorem experiments next
			return 1
		default: // ablations last
			return 2
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if ra, rb := rank(ids[a]), rank(ids[b]); ra != rb {
			return ra < rb
		}
		var na, nb int
		fmt.Sscanf(ids[a][1:], "%d", &na)
		fmt.Sscanf(ids[b][1:], "%d", &nb)
		return na < nb
	})
	return ids
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg), nil
}

// All executes every experiment in order.
func All(cfg Config) []Table {
	var out []Table
	for _, id := range IDs() {
		t, _ := Run(id, cfg)
		out = append(out, t)
	}
	return out
}

// fmtInt renders an integer column value.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }

// fmtF renders a float column value with sensible precision.
func fmtF(v float64) string { return fmt.Sprintf("%.3g", v) }
