package experiments

import (
	"fmt"
	"math/rand"

	"monoclass/internal/baselines"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
	"monoclass/internal/stats"
)

// RBSExpectation is E13: the prior work's guarantee shape. Tao'18
// bounds its algorithm's error only *in expectation* (≈2k*), which the
// paper contrasts with Theorem 2's high-probability bound. This
// driver measures the RBS reconstruction's error-ratio distribution
// over many independent runs on one fixed input: the mean should sit
// near or below 2, while the upper tail (p95/max) drifts far above —
// exactly the weakness a with-high-probability guarantee removes.
func RBSExpectation(cfg Config) Table {
	n := 20000
	trials := 60
	if cfg.Quick {
		n = 4000
		trials = 12
	}
	const w = 4
	t := Table{
		ID:      "E13",
		Title:   fmt.Sprintf("RBS error-ratio distribution over %d runs (n=%d, w=%d)", trials, n, w),
		Columns: []string{"noise", "mean ratio", "median", "p95", "max", "mean probes"},
	}
	for _, noise := range []float64{0.02, 0.1} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(noise*1000)))
		lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: noise})
		pts := make([]geom.Point, len(lab))
		for i, lp := range lab {
			pts[i] = lp.P
		}
		ld := geom.LabeledDataset{Points: lab}
		kstar, err := passive.OptimalError(ld.Weighted())
		if err != nil {
			panic(err)
		}
		if kstar == 0 {
			continue
		}
		var ratios, probes []float64
		for trial := 0; trial < trials; trial++ {
			out, err := baselines.RBS(pts, oracle.FromLabeled(lab), rng)
			if err != nil {
				panic(err)
			}
			ratios = append(ratios, float64(geom.Err(lab, out.Classifier.Classify))/kstar)
			probes = append(probes, float64(out.Probes))
		}
		s := stats.Summarize(ratios)
		t.Rows = append(t.Rows, []string{
			fmtF(noise), fmtF(s.Mean), fmtF(s.Median), fmtF(s.P95), fmtF(s.Max), fmtF(stats.Mean(probes)),
		})
	}
	t.Notes = append(t.Notes,
		"Claim (§1.2): the prior 2-approximation holds only in expectation. The mean ratio behaves; the tail (p95/max) does not — the gap Theorem 2's high-probability guarantee closes (compare E7, where ours never exceeded 1.0 across regimes).",
		"RBS is the Tao'18-style reconstruction (DESIGN.md §2.3); the tail behaviour, not the exact constants, is the reproduced claim.",
	)
	return t
}
