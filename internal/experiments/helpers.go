package experiments

import (
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

// optimalIntError computes k* of a unit-weight set as an integer.
func optimalIntError(ws geom.WeightedSet) int {
	k, err := passive.OptimalError(ws)
	if err != nil {
		panic(err)
	}
	return int(k + 0.5)
}

// mustSolve runs the passive solver, panicking on error (harness
// inputs are known-good).
func mustSolve(ws geom.WeightedSet) passive.Solution {
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		panic(err)
	}
	return sol
}

// werrOfPaperH evaluates §1.1's unweighted-optimal classifier h (all
// black points to 1 except p1; whites p11 and p15 to 1) on the
// weighted Figure 1(b) input.
func werrOfPaperH(ws geom.WeightedSet) float64 {
	lab := dataset.Figure1()
	assign := make(map[string]geom.Label, len(lab))
	for i, lp := range lab {
		label := lp.Label
		switch i {
		case 0: // p1 -> 0
			label = geom.Negative
		case 10, 14: // p11, p15 -> 1
			label = geom.Positive
		}
		assign[lp.P.String()] = label
	}
	var sum float64
	for _, wp := range ws {
		if assign[wp.P.String()] != wp.Label {
			sum += wp.Weight
		}
	}
	return sum
}
