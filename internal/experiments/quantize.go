package experiments

import (
	"fmt"
	"math/rand"

	"monoclass/internal/chains"
	"monoclass/internal/core"
	"monoclass/internal/em"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
	"monoclass/internal/quantize"
)

// QuantizationTradeoff is E11: on entity-matching similarity points —
// the paper's motivating workload, where raw continuous scores make
// the dominance width large — measure how score quantization trades
// labeling cost (width, probes) against the accuracy floor (k*).
// This experiment extends the paper: Theorem 2's w-dependence makes
// the knob's existence a direct corollary, but the paper does not
// evaluate it.
func QuantizationTradeoff(cfg Config) Table {
	pairsTotal := 12000
	entities := 2400
	if cfg.Quick {
		pairsTotal = 2500
		entities = 600
	}
	const eps = 1.0
	t := Table{
		ID:      "E11",
		Title:   fmt.Sprintf("quantization tradeoff on entity-matching points (%d pairs, ε=%g)", pairsTotal, eps),
		Columns: []string{"levels", "width", "k*", "probes", "probes/n", "err/k*"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	recs := em.GenerateCorpus(rng, em.CorpusParams{
		Entities:         entities,
		RecordsPerEntity: 2,
		TitleTokens:      3,
		TypoRate:         0.4,
		TokenDropRate:    0.3,
		PriceJitter:      0.3,
	})
	pairs := em.SamplePairs(rng, recs, em.PairParams{
		MatchPairs:    pairsTotal / 4,
		NonMatchPairs: pairsTotal - pairsTotal/4,
	})
	lab := em.ToPoints(recs, pairs)
	raw := make([]geom.Point, len(lab))
	for i, lp := range lab {
		raw[i] = lp.P
	}

	for _, levels := range []int{0, 20, 10, 5, 3} {
		pts := raw
		if levels > 0 {
			pts = quantize.Uniform(raw, levels)
		}
		qlab := make([]geom.LabeledPoint, len(lab))
		ws := make(geom.WeightedSet, len(lab))
		for i := range lab {
			qlab[i] = geom.LabeledPoint{P: pts[i], Label: lab[i].Label}
			ws[i] = geom.WeightedPoint{P: pts[i], Label: lab[i].Label, Weight: 1}
		}
		// One generic (4-D) decomposition per level, shared by the
		// width report, the k* solve, and the active run.
		dec := chains.Decompose(pts)
		width := dec.Width
		sol, err := passive.Solve(ws, passive.Options{Chains: dec.Chains})
		if err != nil {
			panic(err)
		}
		kstar := sol.WErr

		in := oracle.InstrumentLabeled(qlab)
		res, err := core.ActiveLearnChains(pts, in.O, core.PracticalParams(eps, 0.05), rng, dec.Chains)
		if err != nil {
			panic(err)
		}
		errP := float64(geom.Err(qlab, res.Classifier.Classify))
		ratio := "-"
		if kstar > 0 {
			ratio = fmtF(errP / kstar)
		}
		levelLabel := "raw"
		if levels > 0 {
			levelLabel = fmtInt(levels)
		}
		t.Rows = append(t.Rows, []string{
			levelLabel, fmtInt(width), fmtF(kstar),
			fmtInt(in.DistinctProbes()),
			fmtF(float64(in.DistinctProbes()) / float64(len(pts))),
			ratio,
		})
	}
	t.Notes = append(t.Notes,
		"Coarser grids shrink the dominance width (so probing cost falls per Thm 2) while k* — the best achievable error on the snapped points — creeps up: a deliberate accuracy-for-labels exchange.",
		"Extension experiment: implied by the paper's w-dependence but not evaluated there.",
	)
	return t
}
