package experiments

import (
	"strings"
	"testing"
)

// quickCfg runs every driver at reduced scale.
var quickCfg = Config{Seed: 1, Quick: true}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "A1"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", quickCfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	md := tab.Markdown()
	for _, frag := range []string{"### X — demo", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
}

// Each figure check must report an all-"yes" match column: these are
// the paper's exact worked-example values.
func TestFigureChecksAllMatch(t *testing.T) {
	for _, id := range []string{"F1", "F2"} {
		tab, err := Run(id, quickCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[len(row)-1] != "yes" {
				t.Errorf("%s: row %v does not match the paper", id, row)
			}
		}
	}
}

// E6's measured game must match the closed form on every row.
func TestLowerBoundRowsMatchPrediction(t *testing.T) {
	tab := LowerBoundTradeoff(quickCfg)
	for _, row := range tab.Rows {
		if strings.Contains(row[3], "MISMATCH") {
			t.Errorf("row %v: measured cost disagrees with Lemma 19's closed form", row)
		}
	}
}

// Every driver must run to completion at quick scale and produce a
// non-empty, well-formed table.
func TestAllDriversQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, tab := range All(quickCfg) {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
		}
		if tab.Markdown() == "" {
			t.Errorf("%s: empty markdown", tab.ID)
		}
	}
}

// E9's solver-agreement column must never report a mismatch.
func TestMaxflowSolversAgreeColumn(t *testing.T) {
	tab := MaxflowSolvers(quickCfg)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Errorf("solver disagreement: %v", row)
		}
	}
}

// E5's agreement column must be yes wherever the naive solver ran.
func TestPassiveRuntimeAgreement(t *testing.T) {
	tab := PassiveRuntime(quickCfg)
	for _, row := range tab.Rows {
		if agree := row[len(row)-1]; agree != "-" && agree != "yes" {
			t.Errorf("solver disagreement: %v", row)
		}
	}
}

// Determinism: the same seed must reproduce the same table.
func TestDeterministicTables(t *testing.T) {
	a := LowerBoundTradeoff(quickCfg)
	b := LowerBoundTradeoff(quickCfg)
	if a.Markdown() != b.Markdown() {
		t.Error("same-seed tables differ")
	}
}
