package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"monoclass/internal/chains"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
)

// ChainDecomposition is E8: the Lemma 6 construction yields exactly w
// chains within its O(dn² + n^2.5) budget; the 2-D fast path agrees
// with it; the greedy heuristic needs more chains (the ablation
// motivating the matching-based construction).
func ChainDecomposition(cfg Config) Table {
	genericSizes := []int{500, 1000, 2000}
	fastSizes := []int{100000, 400000}
	trials := 1
	if cfg.Quick {
		genericSizes = []int{200, 500}
		fastSizes = []int{20000}
	}
	t := Table{
		ID:      "E8",
		Title:   "chain decomposition: generic Lemma 6 vs 2-D fast path vs greedy",
		Columns: []string{"d", "n", "generic time", "fast time", "w", "greedy chains"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	for _, d := range []int{2, 3, 4} {
		for _, n := range genericSizes {
			for trial := 0; trial < trials; trial++ {
				lab := dataset.Planted(rng, dataset.PlantedParams{N: n, D: d, Noise: 0})
				pts := make([]geom.Point, len(lab))
				for i, lp := range lab {
					pts[i] = lp.P
				}
				start := time.Now()
				gen := chains.DecomposeGeneric(pts)
				genTime := time.Since(start)
				fastTime := "-"
				w := gen.Width
				if d == 2 {
					start = time.Now()
					fast := chains.Decompose2D(pts)
					fastTime = time.Since(start).String()
					if fast.Width != gen.Width {
						fastTime += " (WIDTH MISMATCH)"
					}
				}
				greedy := chains.GreedyDecompose(pts)
				t.Rows = append(t.Rows, []string{
					fmtInt(d), fmtInt(n), genTime.String(), fastTime, fmtInt(w), fmtInt(len(greedy)),
				})
			}
		}
	}
	// Fast path alone at scale (2-D).
	for _, n := range fastSizes {
		lab := dataset.Planted(rng, dataset.PlantedParams{N: n, D: 2, Noise: 0})
		pts := make([]geom.Point, len(lab))
		for i, lp := range lab {
			pts[i] = lp.P
		}
		start := time.Now()
		fast := chains.Decompose2D(pts)
		t.Rows = append(t.Rows, []string{
			"2", fmtInt(n), "-", time.Since(start).String(), fmtInt(fast.Width), "-",
		})
	}
	t.Notes = append(t.Notes,
		"Claim (Lemma 6): a decomposition with exactly w chains in O(dn² + n^2.5) time; every row's w is certified by a maximum antichain of the same size inside the implementation.",
		"Greedy first-fit is a valid decomposition but may exceed w — the gap is why the matching-based construction (and hence the probing bound's w factor) matters.",
	)
	return t
}

// Figure1Check is F1: regenerate the Figure 1(a) facts.
func Figure1Check(Config) Table {
	t := Table{
		ID:      "F1",
		Title:   "Figure 1(a) worked example — paper value vs regenerated",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	lab := dataset.Figure1()
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}

	add := func(name string, paper, measured int) {
		match := "yes"
		if paper != measured {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{name, fmtInt(paper), fmtInt(measured), match})
	}

	ld := geom.LabeledDataset{Points: lab}
	kstar := optimalIntError(ld.Weighted())
	add("optimal error k*", 3, kstar)

	dec := chains.Decompose(pts)
	add("dominance width w", 6, dec.Width)
	add("max antichain size", 6, len(dec.Antichain))

	paperChains := dataset.Figure1Chains()
	validChains := 0
	if chains.ValidateDecomposition(pts, paperChains) == nil {
		validChains = 1
	}
	add("paper's 6-chain decomposition valid (1=yes)", 1, validChains)

	paperAnti := dataset.Figure1Antichain()
	validAnti := 0
	if chains.ValidateAntichain(pts, paperAnti) == nil {
		validAnti = 1
	}
	add("paper's antichain {p10,p11,p12,p13,p14,p16} valid (1=yes)", 1, validAnti)

	t.Notes = append(t.Notes,
		"The paper gives Figure 1 as a poset diagram; internal/dataset.Figure1 realizes it with concrete coordinates satisfying every stated fact (see that file's doc comment).",
	)
	return t
}

// Figure2Check is F2: regenerate the Figure 1(b)/Figure 2 weighted
// optimum through the max-flow construction.
func Figure2Check(Config) Table {
	t := Table{
		ID:      "F2",
		Title:   "Figure 1(b) + Figure 2 weighted example — paper value vs regenerated",
		Columns: []string{"quantity", "paper", "measured", "match"},
	}
	ws := dataset.Figure1Weighted()
	sol := mustSolve(ws)

	add := func(name string, paper, measured string) {
		match := "yes"
		if paper != measured {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{name, paper, measured, match})
	}
	add("optimal weighted error", "104", fmtF(sol.WErr))
	add("contending points |P^con|", "10", fmtInt(sol.Stats.Contending))

	// The optimal classifier maps exactly {p10, p12, p16} to 1.
	var positives []string
	for i, a := range sol.Assignment {
		if a == geom.Positive {
			positives = append(positives, fmt.Sprintf("p%d", i+1))
		}
	}
	add("points mapped to 1", "[p10 p12 p16]", fmt.Sprintf("%v", positives))

	// The example's non-optimal classifier h has weighted error 220.
	hErr := werrOfPaperH(ws)
	add("w-err of §1.1's unweighted-optimal h", "220", fmtF(hErr))
	t.Notes = append(t.Notes,
		"Claim (§5.1): the min-weight cut-edge set has weight 104 and consists of the five sink-side edges of p1, p4, p9, p13, p14 — i.e. exactly those five points are mis-classified.",
	)
	return t
}
