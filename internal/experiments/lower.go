package experiments

import (
	"fmt"

	"monoclass/internal/lowerbound"
)

// LowerBoundTradeoff is E6: replay the Lemma 19 game on the Section 6
// hard family, verifying the measured cost/accuracy tradeoff against
// the closed forms, and exhibit the Ω(n) average-cost consequence of
// Theorem 1.
func LowerBoundTradeoff(cfg Config) Table {
	n := 1000
	if cfg.Quick {
		n = 200
	}
	t := Table{
		ID:      "E6",
		Title:   fmt.Sprintf("lower-bound game on the §6 family (n=%d, family size %d)", n, n),
		Columns: []string{"budget ℓ", "non-optimal count", "measured cost", "predicted cost", "avg cost/instance", "accurate (≤ n/3 wrong)"},
	}
	budgets := []int{0, n / 8, n / 6, n / 4, n / 3, n / 2}
	for _, l := range budgets {
		order := make([]int, l)
		for j := range order {
			order[j] = j + 1
		}
		res := lowerbound.RunGame(n, lowerbound.PairProbeStrategy{Order: order})
		pred := lowerbound.PredictedCost(n, l)
		accurate := "no"
		if res.NonOptCount <= n/3 {
			accurate = "yes"
		}
		match := fmtInt(pred)
		if res.TotalCost != pred {
			match = fmt.Sprintf("%d (MISMATCH)", pred)
		}
		t.Rows = append(t.Rows, []string{
			fmtInt(l),
			fmtInt(res.NonOptCount),
			fmtInt(res.TotalCost),
			match,
			fmtF(float64(res.TotalCost) / float64(n)),
			accurate,
		})
	}
	t.Notes = append(t.Notes,
		"Claim (Thm 1 / Lemma 19): any strategy wrong on ≤ n/3 of the family needs budget ℓ ≥ n/6, hence total cost nℓ-ℓ²+ℓ = Ω(n²) — Ω(n) probes per instance on average. Rows with 'accurate = yes' must show avg cost Ω(n).",
		"Measured cost counts pair-probes (the empowered model of the proof, one probe reveals a pair); the paper states the same tradeoff in single-point probes, doubling each term.",
	)
	return t
}
