package oracle

import (
	"errors"
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func labels(vals ...int) []geom.Label {
	out := make([]geom.Label, len(vals))
	for i, v := range vals {
		out[i] = geom.Label(v)
	}
	return out
}

func TestStatic(t *testing.T) {
	s := NewStatic(labels(0, 1, 1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, want := range labels(0, 1, 1) {
		got, err := s.Probe(i)
		if err != nil || got != want {
			t.Errorf("Probe(%d) = %v, %v; want %v", i, got, err, want)
		}
	}
	if _, err := s.Probe(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := s.Probe(3); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestStaticCopiesInput(t *testing.T) {
	src := labels(0, 1)
	s := NewStatic(src)
	src[0] = 1
	if got, _ := s.Probe(0); got != geom.Negative {
		t.Error("Static aliases caller's slice")
	}
}

func TestFromLabeled(t *testing.T) {
	pts := []geom.LabeledPoint{
		{P: geom.Point{1}, Label: geom.Positive},
		{P: geom.Point{2}, Label: geom.Negative},
	}
	s := FromLabeled(pts)
	if got, _ := s.Probe(0); got != geom.Positive {
		t.Error("FromLabeled label 0 wrong")
	}
	if got, _ := s.Probe(1); got != geom.Negative {
		t.Error("FromLabeled label 1 wrong")
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewStatic(labels(0, 1)))
	if c.Probes() != 0 {
		t.Fatal("fresh counter nonzero")
	}
	c.Probe(0)
	c.Probe(0) // repeats count
	c.Probe(1)
	if c.Probes() != 3 {
		t.Errorf("Probes = %d, want 3", c.Probes())
	}
	if _, err := c.Probe(9); err == nil {
		t.Error("error not propagated")
	}
	if c.Probes() != 3 {
		t.Error("failed probe must not count")
	}
	c.Reset()
	if c.Probes() != 0 {
		t.Error("Reset failed")
	}
	if c.Len() != 2 {
		t.Error("Len not forwarded")
	}
}

func TestCaching(t *testing.T) {
	counting := NewCounting(NewStatic(labels(0, 1, 1)))
	c := NewCaching(counting)
	c.Probe(1)
	c.Probe(1)
	c.Probe(1)
	if counting.Probes() != 1 {
		t.Errorf("inner probes = %d, want 1 (cache must absorb repeats)", counting.Probes())
	}
	if c.Distinct() != 1 {
		t.Errorf("Distinct = %d, want 1", c.Distinct())
	}
	if l, ok := c.Known(1); !ok || l != geom.Positive {
		t.Error("Known(1) wrong")
	}
	if _, ok := c.Known(0); ok {
		t.Error("Known(0) should be unset")
	}
	if _, err := c.Probe(42); err == nil {
		t.Error("error not propagated")
	}
	if c.Len() != 3 {
		t.Error("Len not forwarded")
	}
}

func TestBudgeted(t *testing.T) {
	b := NewBudgeted(NewStatic(labels(0, 1, 1, 0)), 2)
	if b.Remaining() != 2 {
		t.Fatal("Remaining wrong")
	}
	if _, err := b.Probe(0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Probe(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Probe(2); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected ErrBudgetExhausted, got %v", err)
	}
	if b.Remaining() != 0 {
		t.Error("Remaining should be 0")
	}
	// A failing inner probe must not consume budget.
	b2 := NewBudgeted(NewStatic(labels(0)), 5)
	b2.Probe(77)
	if b2.Remaining() != 5 {
		t.Error("failed probe consumed budget")
	}
	if b.Len() != 4 {
		t.Error("Len not forwarded")
	}
}

func TestNoisySticky(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNoisy(NewStatic(labels(0, 0, 0, 0, 0, 0, 0, 0)), 0.5, rng)
	first := make([]geom.Label, n.Len())
	for i := 0; i < n.Len(); i++ {
		l, err := n.Probe(i)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = l
	}
	for i := 0; i < n.Len(); i++ {
		l, _ := n.Probe(i)
		if l != first[i] {
			t.Fatalf("point %d answered inconsistently", i)
		}
	}
}

func TestNoisyFlipRate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const size = 20000
	base := make([]geom.Label, size)
	n := NewNoisy(NewStatic(base), 0.25, rng)
	flips := 0
	for i := 0; i < size; i++ {
		l, _ := n.Probe(i)
		if l == geom.Positive {
			flips++
		}
	}
	if frac := float64(flips) / size; frac < 0.22 || frac > 0.28 {
		t.Errorf("flip fraction %g far from 0.25", frac)
	}
	if _, err := n.Probe(-1); err == nil {
		t.Error("error not propagated")
	}
}

func TestNoisyPanicsOnBadProb(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNoisy(NewStatic(nil), 1.5, rand.New(rand.NewSource(1)))
}

func TestInstrumented(t *testing.T) {
	in := Instrument(labels(0, 1, 0, 1))
	in.O.Probe(0)
	in.O.Probe(0)
	in.O.Probe(3)
	if in.DistinctProbes() != 2 {
		t.Errorf("DistinctProbes = %d, want 2", in.DistinctProbes())
	}
	if in.RawDraws() != 2 {
		t.Errorf("RawDraws = %d, want 2 (cache sits above the counter)", in.RawDraws())
	}
	pts := []geom.LabeledPoint{{P: geom.Point{1}, Label: geom.Positive}}
	in2 := InstrumentLabeled(pts)
	if l, err := in2.O.Probe(0); err != nil || l != geom.Positive {
		t.Error("InstrumentLabeled wrong")
	}
}

func TestMajorityReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const size = 5000
	truth := make([]geom.Label, size)
	for i := range truth {
		truth[i] = geom.Label(i % 2)
	}
	// A single annotator at 30% flip rate errs ~30% of the time; a
	// 5-way majority errs ~16%; 9-way ~10%.
	errRate := func(k int) float64 {
		m := NewMajority(NewStatic(truth), 0.3, k, rng)
		wrong := 0
		for i := 0; i < size; i++ {
			l, err := m.Probe(i)
			if err != nil {
				t.Fatal(err)
			}
			if l != truth[i] {
				wrong++
			}
		}
		if m.AnnotationsUsed() != size*k {
			t.Fatalf("k=%d: annotations = %d, want %d", k, m.AnnotationsUsed(), size*k)
		}
		return float64(wrong) / size
	}
	e1, e5, e9 := errRate(1), errRate(5), errRate(9)
	if !(e1 > e5 && e5 > e9) {
		t.Errorf("majority voting should reduce error: %g, %g, %g", e1, e5, e9)
	}
	if e9 > 0.13 {
		t.Errorf("9-way majority error %g too high", e9)
	}
}

func TestMajorityCachesAndValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewMajority(NewStatic(labels(0, 1)), 0.5, 3, rng)
	first, err := m.Probe(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if l, _ := m.Probe(0); l != first {
			t.Fatal("majority answer changed on re-probe")
		}
	}
	if m.AnnotationsUsed() != 3 {
		t.Errorf("annotations = %d, want 3 (cache must absorb re-probes)", m.AnnotationsUsed())
	}
	if _, err := m.Probe(99); err == nil {
		t.Error("error not propagated")
	}
	if m.Len() != 2 {
		t.Error("Len not forwarded")
	}
	for i, f := range []func(){
		func() { NewMajority(NewStatic(nil), 0.5, 2, rng) },
		func() { NewMajority(NewStatic(nil), 0.5, 0, rng) },
		func() { NewMajority(NewStatic(nil), 1.5, 3, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
