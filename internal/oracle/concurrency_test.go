package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"monoclass/internal/geom"
)

// TestIsConcurrentSafe pins down which wrapper stacks advertise
// concurrency safety: the standard static/counting/caching stack does;
// anything containing a stateful rng-driven layer (Noisy, Majority) or
// a plain budget counter does not, and neither does a foreign Oracle
// that never opted in.
func TestIsConcurrentSafe(t *testing.T) {
	static := NewStatic(labels(0, 1, 0))
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		o    Oracle
		want bool
	}{
		{"static", static, true},
		{"counting(static)", NewCounting(static), true},
		{"caching(static)", NewCaching(static), true},
		{"caching(counting(static))", NewCaching(NewCounting(static)), true},
		{"counting(caching(static))", NewCounting(NewCaching(static)), true},
		{"instrumented", Instrument(labels(0, 1)).O, true},
		{"noisy", NewNoisy(static, 0.1, rng), false},
		{"budgeted", NewBudgeted(static, 5), false},
		{"majority", NewMajority(static, 0.1, 3, rng), false},
		{"counting(noisy)", NewCounting(NewNoisy(static, 0.1, rng)), false},
		{"caching(budgeted)", NewCaching(NewBudgeted(static, 5)), false},
	}
	for _, c := range cases {
		if got := IsConcurrentSafe(c.o); got != c.want {
			t.Errorf("%s: IsConcurrentSafe = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCountingConcurrent hammers the atomic probe counter from many
// goroutines; run under -race this also proves the counter introduces
// no data race of its own.
func TestCountingConcurrent(t *testing.T) {
	const n, goroutines, rounds = 128, 8, 200
	c := NewCounting(NewStatic(make([]geom.Label, n)))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := c.Probe((g*rounds + r) % n); err != nil {
					t.Error(err)
					return
				}
				c.Probe(-1) // failed probes must not count
			}
		}(g)
	}
	wg.Wait()
	if got := c.Probes(); got != goroutines*rounds {
		t.Errorf("Probes = %d, want %d", got, goroutines*rounds)
	}
	c.Reset()
	if c.Probes() != 0 {
		t.Error("Reset failed")
	}
}

// TestCachingConcurrentSingleFlight probes a small index set from many
// goroutines through Caching(Counting(Static)) and asserts the paper's
// probe accounting survives the concurrency: every point reaches the
// inner oracle exactly once, no matter how many goroutines race on it.
func TestCachingConcurrentSingleFlight(t *testing.T) {
	const n, goroutines, rounds = 64, 8, 500
	truth := make([]geom.Label, n)
	for i := range truth {
		truth[i] = geom.Label(i % 2)
	}
	counting := NewCounting(NewStatic(truth))
	c := NewCaching(counting)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(n)
				l, err := c.Probe(i)
				if err != nil {
					t.Error(err)
					return
				}
				if l != truth[i] {
					t.Errorf("Probe(%d) = %v, want %v", i, l, truth[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := counting.Probes(); got != c.Distinct() {
		t.Errorf("inner probes %d != distinct %d: single-flight broken", got, c.Distinct())
	}
	if c.Distinct() > n {
		t.Errorf("Distinct = %d > n = %d", c.Distinct(), n)
	}
	for i := 0; i < n; i++ {
		if l, ok := c.Known(i); ok && l != truth[i] {
			t.Errorf("Known(%d) = %v, want %v", i, l, truth[i])
		}
	}
}

// TestCachingConcurrentErrors: failed inner probes must neither poison
// the cache nor count as reveals, even under concurrency.
func TestCachingConcurrentErrors(t *testing.T) {
	c := NewCaching(NewStatic(labels(0, 1)))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				if _, err := c.Probe(99); err == nil {
					t.Error("out-of-range probe succeeded")
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Distinct() != 0 {
		t.Errorf("Distinct = %d after only failed probes", c.Distinct())
	}
	if _, ok := c.Known(99); ok {
		t.Error("failed probe cached")
	}
}
