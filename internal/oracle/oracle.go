// Package oracle implements the label-probing model of Problem 1: all
// labels are hidden initially, and an algorithm pays unit cost to
// reveal the label of a point. In the paper's motivating applications
// the oracle is a human annotator; here it is programmatic over a
// synthetic ground truth, which preserves the probe-accounting
// semantics exactly (see DESIGN.md §2.3).
//
// Oracles are layered: a base oracle holds the hidden labels; wrappers
// add probe counting, caching (repeat probes of one point are free, as
// a revealed label stays revealed), budgets, and label noise for
// failure-injection tests.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"monoclass/internal/geom"
)

// ErrBudgetExhausted is returned by a budgeted oracle once its probe
// allowance is spent.
var ErrBudgetExhausted = errors.New("oracle: probe budget exhausted")

// Oracle reveals point labels by index into the input set P.
type Oracle interface {
	// Probe reveals the label of point i. The error is non-nil only
	// for out-of-range indices or exhausted budgets.
	Probe(i int) (geom.Label, error)
	// Len returns the size of the underlying point set.
	Len() int
}

// ConcurrentSafe is implemented by oracles that can report whether
// concurrent Probe calls are safe. Wrappers answer by asking the
// oracle they wrap, so safety propagates through a whole stack:
// Caching over Counting over Static is safe end to end, while any
// stack containing e.g. a Noisy layer is not. Callers that fan probes
// across goroutines (core.runChainsParallel) consult IsConcurrentSafe
// and fall back to external locking when the answer is no.
type ConcurrentSafe interface {
	Oracle
	// ConcurrencySafe reports whether Probe may be called from
	// multiple goroutines without external synchronization.
	ConcurrencySafe() bool
}

// IsConcurrentSafe reports whether o is declared safe for concurrent
// probing. Oracles that do not implement ConcurrentSafe are assumed
// unsafe.
func IsConcurrentSafe(o Oracle) bool {
	cs, ok := o.(ConcurrentSafe)
	return ok && cs.ConcurrencySafe()
}

// Static is the base oracle: an in-memory slice of hidden labels.
type Static struct {
	labels []geom.Label
}

// NewStatic builds a base oracle over the given ground-truth labels.
func NewStatic(labels []geom.Label) *Static {
	cp := make([]geom.Label, len(labels))
	copy(cp, labels)
	return &Static{labels: cp}
}

// FromLabeled builds a base oracle hiding the labels of a labeled set.
func FromLabeled(pts []geom.LabeledPoint) *Static {
	labels := make([]geom.Label, len(pts))
	for i, lp := range pts {
		labels[i] = lp.Label
	}
	return &Static{labels: labels}
}

// Probe implements Oracle.
func (s *Static) Probe(i int) (geom.Label, error) {
	if i < 0 || i >= len(s.labels) {
		return 0, fmt.Errorf("oracle: index %d out of range [0,%d)", i, len(s.labels))
	}
	return s.labels[i], nil
}

// Len implements Oracle.
func (s *Static) Len() int { return len(s.labels) }

// ConcurrencySafe implements ConcurrentSafe: the label slice is
// immutable after construction.
func (s *Static) ConcurrencySafe() bool { return true }

// Counting wraps an oracle and counts probes. Every Probe call that
// reaches the wrapped oracle increments the counter, including repeat
// probes of the same index; combine with Caching to count distinct
// points instead. The counter is atomic, so Counting adds no
// concurrency hazard of its own (see ConcurrencySafe).
type Counting struct {
	inner  Oracle
	probes atomic.Int64
}

// NewCounting wraps inner with a probe counter.
func NewCounting(inner Oracle) *Counting { return &Counting{inner: inner} }

// Probe implements Oracle.
func (c *Counting) Probe(i int) (geom.Label, error) {
	l, err := c.inner.Probe(i)
	if err == nil {
		c.probes.Add(1)
	}
	return l, err
}

// Len implements Oracle.
func (c *Counting) Len() int { return c.inner.Len() }

// Probes returns the number of successful probes so far.
func (c *Counting) Probes() int { return int(c.probes.Load()) }

// Reset zeroes the probe counter.
func (c *Counting) Reset() { c.probes.Store(0) }

// ConcurrencySafe implements ConcurrentSafe: counting itself is
// atomic, so the stack is safe iff the wrapped oracle is.
func (c *Counting) ConcurrencySafe() bool { return IsConcurrentSafe(c.inner) }

// cacheShards is the number of independent lock stripes in Caching.
// Probes of different shards proceed fully in parallel; within a
// shard, a miss holds the lock across the inner probe so each point
// is revealed exactly once (single-flight), preserving the paper's
// probe accounting under concurrency.
const cacheShards = 32

type cacheShard struct {
	mu    sync.RWMutex
	known map[int]geom.Label
}

// Caching wraps an oracle and remembers revealed labels, so probing the
// same point again costs nothing downstream. This matches the paper's
// semantics: a probe "reveals" a label, and a revealed label needs no
// second reveal. Distinct() reports how many distinct points have been
// revealed. The cache is sharded across lock stripes, so concurrent
// probing scales; see ConcurrencySafe for when the whole stack is safe.
type Caching struct {
	inner  Oracle
	shards [cacheShards]cacheShard
}

// NewCaching wraps inner with a reveal cache.
func NewCaching(inner Oracle) *Caching {
	c := &Caching{inner: inner}
	for s := range c.shards {
		c.shards[s].known = make(map[int]geom.Label)
	}
	return c
}

func (c *Caching) shard(i int) *cacheShard {
	return &c.shards[uint(i)%cacheShards]
}

// Probe implements Oracle.
func (c *Caching) Probe(i int) (geom.Label, error) {
	sh := c.shard(i)
	sh.mu.RLock()
	l, ok := sh.known[i]
	sh.mu.RUnlock()
	if ok {
		return l, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if l, ok := sh.known[i]; ok {
		return l, nil // revealed while waiting for the write lock
	}
	l, err := c.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	sh.known[i] = l
	return l, nil
}

// Len implements Oracle.
func (c *Caching) Len() int { return c.inner.Len() }

// ConcurrencySafe implements ConcurrentSafe. The sharded cache
// serializes same-shard misses but lets different shards reach the
// wrapped oracle simultaneously, so the stack is safe iff the wrapped
// oracle is.
func (c *Caching) ConcurrencySafe() bool { return IsConcurrentSafe(c.inner) }

// Distinct returns the number of distinct points revealed so far.
func (c *Caching) Distinct() int {
	total := 0
	for s := range c.shards {
		sh := &c.shards[s]
		sh.mu.RLock()
		total += len(sh.known)
		sh.mu.RUnlock()
	}
	return total
}

// Known returns the revealed label of point i, if any.
func (c *Caching) Known(i int) (geom.Label, bool) {
	sh := c.shard(i)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	l, ok := sh.known[i]
	return l, ok
}

// Budgeted wraps an oracle and fails with ErrBudgetExhausted after the
// given number of successful probes. Used by examples and by tests that
// inject probe-budget failures.
type Budgeted struct {
	inner  Oracle
	budget int
	used   int
}

// NewBudgeted wraps inner with a probe budget.
func NewBudgeted(inner Oracle, budget int) *Budgeted {
	return &Budgeted{inner: inner, budget: budget}
}

// Probe implements Oracle.
func (b *Budgeted) Probe(i int) (geom.Label, error) {
	if b.used >= b.budget {
		return 0, ErrBudgetExhausted
	}
	l, err := b.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	b.used++
	return l, nil
}

// Len implements Oracle.
func (b *Budgeted) Len() int { return b.inner.Len() }

// Remaining returns the number of probes still allowed.
func (b *Budgeted) Remaining() int { return b.budget - b.used }

// Noisy wraps an oracle and flips each revealed label independently
// with probability flipProb. Flips are sticky: once flipped (or not), a
// point answers consistently on re-probes, as a real noisy annotator's
// recorded answer would. Used for failure injection: algorithms should
// degrade gracefully, not crash, under label noise.
type Noisy struct {
	inner    Oracle
	flipProb float64
	rng      *rand.Rand
	decided  map[int]geom.Label
}

// NewNoisy wraps inner with sticky label noise driven by rng.
func NewNoisy(inner Oracle, flipProb float64, rng *rand.Rand) *Noisy {
	if flipProb < 0 || flipProb > 1 {
		panic(fmt.Sprintf("oracle: flip probability %g outside [0,1]", flipProb))
	}
	return &Noisy{inner: inner, flipProb: flipProb, rng: rng, decided: make(map[int]geom.Label)}
}

// Probe implements Oracle.
func (n *Noisy) Probe(i int) (geom.Label, error) {
	if l, ok := n.decided[i]; ok {
		return l, nil
	}
	l, err := n.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	if n.rng.Float64() < n.flipProb {
		l ^= 1
	}
	n.decided[i] = l
	return l, nil
}

// Len implements Oracle.
func (n *Noisy) Len() int { return n.inner.Len() }

// Majority wraps a noisy oracle and asks k independent annotators per
// point, returning the majority label — the standard crowdsourcing
// countermeasure to annotator noise. Each Probe of a fresh point costs
// k probes of the inner oracle (the repeated-labeling budget trade);
// answers are cached so a point is only voted on once.
type Majority struct {
	base     Oracle
	flipProb float64
	k        int
	rng      *rand.Rand
	decided  map[int]geom.Label
}

// NewMajority builds a k-annotator majority oracle over ground truth
// served by base, where each simulated annotator independently flips
// the true label with probability flipProb. k must be odd and
// positive so votes cannot tie.
func NewMajority(base Oracle, flipProb float64, k int, rng *rand.Rand) *Majority {
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("oracle: annotator count %d must be odd and positive", k))
	}
	if flipProb < 0 || flipProb > 1 {
		panic(fmt.Sprintf("oracle: flip probability %g outside [0,1]", flipProb))
	}
	return &Majority{base: base, flipProb: flipProb, k: k, rng: rng, decided: make(map[int]geom.Label)}
}

// Probe implements Oracle.
func (m *Majority) Probe(i int) (geom.Label, error) {
	if l, ok := m.decided[i]; ok {
		return l, nil
	}
	truth, err := m.base.Probe(i)
	if err != nil {
		return 0, err
	}
	votes := 0
	for a := 0; a < m.k; a++ {
		l := truth
		if m.rng.Float64() < m.flipProb {
			l ^= 1
		}
		if l == geom.Positive {
			votes++
		}
	}
	out := geom.Negative
	if votes > m.k/2 {
		out = geom.Positive
	}
	m.decided[i] = out
	return out, nil
}

// Len implements Oracle.
func (m *Majority) Len() int { return m.base.Len() }

// AnnotationsUsed returns the total annotator judgments consumed so
// far (k per distinct probed point).
func (m *Majority) AnnotationsUsed() int { return len(m.decided) * m.k }

// Instrumented bundles the standard measurement stack used by every
// experiment: base labels -> counting (raw draws) -> caching (distinct
// reveals). Algorithms probe through O; the harness reads both
// counters.
type Instrumented struct {
	O        *Caching
	counting *Counting
}

// Instrument builds the standard stack over ground-truth labels.
func Instrument(labels []geom.Label) *Instrumented {
	counting := NewCounting(NewStatic(labels))
	return &Instrumented{O: NewCaching(counting), counting: counting}
}

// InstrumentLabeled is Instrument over a labeled point set.
func InstrumentLabeled(pts []geom.LabeledPoint) *Instrumented {
	labels := make([]geom.Label, len(pts))
	for i, lp := range pts {
		labels[i] = lp.Label
	}
	return Instrument(labels)
}

// DistinctProbes returns the number of distinct points revealed — the
// paper's probing cost.
func (in *Instrumented) DistinctProbes() int { return in.O.Distinct() }

// RawDraws returns the number of oracle calls that reached the ground
// truth (with-replacement duplicates excluded by the cache layer, so
// RawDraws == DistinctProbes here; kept separate for clarity and for
// stacks built without caching).
func (in *Instrumented) RawDraws() int { return in.counting.Probes() }
