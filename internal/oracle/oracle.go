// Package oracle implements the label-probing model of Problem 1: all
// labels are hidden initially, and an algorithm pays unit cost to
// reveal the label of a point. In the paper's motivating applications
// the oracle is a human annotator; here it is programmatic over a
// synthetic ground truth, which preserves the probe-accounting
// semantics exactly (see DESIGN.md §2.3).
//
// Oracles are layered: a base oracle holds the hidden labels; wrappers
// add probe counting, caching (repeat probes of one point are free, as
// a revealed label stays revealed), budgets, and label noise for
// failure-injection tests.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"

	"monoclass/internal/geom"
)

// ErrBudgetExhausted is returned by a budgeted oracle once its probe
// allowance is spent.
var ErrBudgetExhausted = errors.New("oracle: probe budget exhausted")

// Oracle reveals point labels by index into the input set P.
type Oracle interface {
	// Probe reveals the label of point i. The error is non-nil only
	// for out-of-range indices or exhausted budgets.
	Probe(i int) (geom.Label, error)
	// Len returns the size of the underlying point set.
	Len() int
}

// Static is the base oracle: an in-memory slice of hidden labels.
type Static struct {
	labels []geom.Label
}

// NewStatic builds a base oracle over the given ground-truth labels.
func NewStatic(labels []geom.Label) *Static {
	cp := make([]geom.Label, len(labels))
	copy(cp, labels)
	return &Static{labels: cp}
}

// FromLabeled builds a base oracle hiding the labels of a labeled set.
func FromLabeled(pts []geom.LabeledPoint) *Static {
	labels := make([]geom.Label, len(pts))
	for i, lp := range pts {
		labels[i] = lp.Label
	}
	return &Static{labels: labels}
}

// Probe implements Oracle.
func (s *Static) Probe(i int) (geom.Label, error) {
	if i < 0 || i >= len(s.labels) {
		return 0, fmt.Errorf("oracle: index %d out of range [0,%d)", i, len(s.labels))
	}
	return s.labels[i], nil
}

// Len implements Oracle.
func (s *Static) Len() int { return len(s.labels) }

// Counting wraps an oracle and counts probes. Every Probe call that
// reaches the wrapped oracle increments the counter, including repeat
// probes of the same index; combine with Caching to count distinct
// points instead.
type Counting struct {
	inner  Oracle
	probes int
}

// NewCounting wraps inner with a probe counter.
func NewCounting(inner Oracle) *Counting { return &Counting{inner: inner} }

// Probe implements Oracle.
func (c *Counting) Probe(i int) (geom.Label, error) {
	l, err := c.inner.Probe(i)
	if err == nil {
		c.probes++
	}
	return l, err
}

// Len implements Oracle.
func (c *Counting) Len() int { return c.inner.Len() }

// Probes returns the number of successful probes so far.
func (c *Counting) Probes() int { return c.probes }

// Reset zeroes the probe counter.
func (c *Counting) Reset() { c.probes = 0 }

// Caching wraps an oracle and remembers revealed labels, so probing the
// same point again costs nothing downstream. This matches the paper's
// semantics: a probe "reveals" a label, and a revealed label needs no
// second reveal. Distinct() reports how many distinct points have been
// revealed.
type Caching struct {
	inner Oracle
	known map[int]geom.Label
}

// NewCaching wraps inner with a reveal cache.
func NewCaching(inner Oracle) *Caching {
	return &Caching{inner: inner, known: make(map[int]geom.Label)}
}

// Probe implements Oracle.
func (c *Caching) Probe(i int) (geom.Label, error) {
	if l, ok := c.known[i]; ok {
		return l, nil
	}
	l, err := c.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	c.known[i] = l
	return l, nil
}

// Len implements Oracle.
func (c *Caching) Len() int { return c.inner.Len() }

// Distinct returns the number of distinct points revealed so far.
func (c *Caching) Distinct() int { return len(c.known) }

// Known returns the revealed label of point i, if any.
func (c *Caching) Known(i int) (geom.Label, bool) {
	l, ok := c.known[i]
	return l, ok
}

// Budgeted wraps an oracle and fails with ErrBudgetExhausted after the
// given number of successful probes. Used by examples and by tests that
// inject probe-budget failures.
type Budgeted struct {
	inner  Oracle
	budget int
	used   int
}

// NewBudgeted wraps inner with a probe budget.
func NewBudgeted(inner Oracle, budget int) *Budgeted {
	return &Budgeted{inner: inner, budget: budget}
}

// Probe implements Oracle.
func (b *Budgeted) Probe(i int) (geom.Label, error) {
	if b.used >= b.budget {
		return 0, ErrBudgetExhausted
	}
	l, err := b.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	b.used++
	return l, nil
}

// Len implements Oracle.
func (b *Budgeted) Len() int { return b.inner.Len() }

// Remaining returns the number of probes still allowed.
func (b *Budgeted) Remaining() int { return b.budget - b.used }

// Noisy wraps an oracle and flips each revealed label independently
// with probability flipProb. Flips are sticky: once flipped (or not), a
// point answers consistently on re-probes, as a real noisy annotator's
// recorded answer would. Used for failure injection: algorithms should
// degrade gracefully, not crash, under label noise.
type Noisy struct {
	inner    Oracle
	flipProb float64
	rng      *rand.Rand
	decided  map[int]geom.Label
}

// NewNoisy wraps inner with sticky label noise driven by rng.
func NewNoisy(inner Oracle, flipProb float64, rng *rand.Rand) *Noisy {
	if flipProb < 0 || flipProb > 1 {
		panic(fmt.Sprintf("oracle: flip probability %g outside [0,1]", flipProb))
	}
	return &Noisy{inner: inner, flipProb: flipProb, rng: rng, decided: make(map[int]geom.Label)}
}

// Probe implements Oracle.
func (n *Noisy) Probe(i int) (geom.Label, error) {
	if l, ok := n.decided[i]; ok {
		return l, nil
	}
	l, err := n.inner.Probe(i)
	if err != nil {
		return 0, err
	}
	if n.rng.Float64() < n.flipProb {
		l ^= 1
	}
	n.decided[i] = l
	return l, nil
}

// Len implements Oracle.
func (n *Noisy) Len() int { return n.inner.Len() }

// Majority wraps a noisy oracle and asks k independent annotators per
// point, returning the majority label — the standard crowdsourcing
// countermeasure to annotator noise. Each Probe of a fresh point costs
// k probes of the inner oracle (the repeated-labeling budget trade);
// answers are cached so a point is only voted on once.
type Majority struct {
	base     Oracle
	flipProb float64
	k        int
	rng      *rand.Rand
	decided  map[int]geom.Label
}

// NewMajority builds a k-annotator majority oracle over ground truth
// served by base, where each simulated annotator independently flips
// the true label with probability flipProb. k must be odd and
// positive so votes cannot tie.
func NewMajority(base Oracle, flipProb float64, k int, rng *rand.Rand) *Majority {
	if k <= 0 || k%2 == 0 {
		panic(fmt.Sprintf("oracle: annotator count %d must be odd and positive", k))
	}
	if flipProb < 0 || flipProb > 1 {
		panic(fmt.Sprintf("oracle: flip probability %g outside [0,1]", flipProb))
	}
	return &Majority{base: base, flipProb: flipProb, k: k, rng: rng, decided: make(map[int]geom.Label)}
}

// Probe implements Oracle.
func (m *Majority) Probe(i int) (geom.Label, error) {
	if l, ok := m.decided[i]; ok {
		return l, nil
	}
	truth, err := m.base.Probe(i)
	if err != nil {
		return 0, err
	}
	votes := 0
	for a := 0; a < m.k; a++ {
		l := truth
		if m.rng.Float64() < m.flipProb {
			l ^= 1
		}
		if l == geom.Positive {
			votes++
		}
	}
	out := geom.Negative
	if votes > m.k/2 {
		out = geom.Positive
	}
	m.decided[i] = out
	return out, nil
}

// Len implements Oracle.
func (m *Majority) Len() int { return m.base.Len() }

// AnnotationsUsed returns the total annotator judgments consumed so
// far (k per distinct probed point).
func (m *Majority) AnnotationsUsed() int { return len(m.decided) * m.k }

// Instrumented bundles the standard measurement stack used by every
// experiment: base labels -> counting (raw draws) -> caching (distinct
// reveals). Algorithms probe through O; the harness reads both
// counters.
type Instrumented struct {
	O        *Caching
	counting *Counting
}

// Instrument builds the standard stack over ground-truth labels.
func Instrument(labels []geom.Label) *Instrumented {
	counting := NewCounting(NewStatic(labels))
	return &Instrumented{O: NewCaching(counting), counting: counting}
}

// InstrumentLabeled is Instrument over a labeled point set.
func InstrumentLabeled(pts []geom.LabeledPoint) *Instrumented {
	labels := make([]geom.Label, len(pts))
	for i, lp := range pts {
		labels[i] = lp.Label
	}
	return Instrument(labels)
}

// DistinctProbes returns the number of distinct points revealed — the
// paper's probing cost.
func (in *Instrumented) DistinctProbes() int { return in.O.Distinct() }

// RawDraws returns the number of oracle calls that reached the ground
// truth (with-replacement duplicates excluded by the cache layer, so
// RawDraws == DistinctProbes here; kept separate for clarity and for
// stacks built without caching).
func (in *Instrumented) RawDraws() int { return in.counting.Probes() }
