package maxflow

// Dinic computes a maximum flow using Dinic's algorithm: repeat BFS
// level graphs and DFS blocking flows with current-arc iteration over
// the CSR pool. It runs in O(V²E) in general. The network is consumed
// (its residual capacities are mutated); Clone first to keep the
// original, or Reset to solve again.
func Dinic(g *Network) Result {
	g.prepare()
	level := make([]int32, g.n)
	iter := make([]int32, g.n) // current arc per vertex, absolute CSR index
	queue := make([]int32, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[g.source] = 0
		queue = append(queue[:0], int32(g.source))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
				v := g.arcTo[a]
				if g.arcCap[a] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[g.sink] >= 0
	}

	sink := int32(g.sink)
	var dfs func(u int32, limit float64) float64
	dfs = func(u int32, limit float64) float64 {
		if u == sink {
			return limit
		}
		for ; iter[u] < g.arcStart[u+1]; iter[u]++ {
			a := iter[u]
			v := g.arcTo[a]
			if g.arcCap[a] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := limit
			if g.arcCap[a] < pushed {
				pushed = g.arcCap[a]
			}
			got := dfs(v, pushed)
			if got > 0 {
				g.arcCap[a] -= got
				g.arcCap[g.arcRev[a]] += got
				return got
			}
		}
		level[u] = -1 // dead end for the rest of this phase
		return 0
	}

	var value float64
	limit := g.finiteSum + 1 // exceeds any achievable augmentation
	for bfs() {
		copy(iter, g.arcStart[:g.n])
		for {
			got := dfs(int32(g.source), limit)
			if got <= 0 {
				break
			}
			value += got
		}
	}
	return Result{Value: value, g: g}
}
