package maxflow

// Dinic computes a maximum flow using Dinic's algorithm: repeat BFS
// level graphs and DFS blocking flows. It runs in O(V²E) in general and
// is the default solver for the passive-classification networks. The
// network is consumed (its residual capacities are mutated); Clone
// first to keep the original.
func Dinic(g *Network) Result {
	g.prepare()
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[g.source] = 0
		queue = queue[:0]
		queue = append(queue, g.source)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, a := range g.adj[u] {
				v := g.to[a]
				if g.cap[a] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[g.sink] >= 0
	}

	var dfs func(u int, limit float64) float64
	dfs = func(u int, limit float64) float64 {
		if u == g.sink {
			return limit
		}
		for ; iter[u] < len(g.adj[u]); iter[u]++ {
			a := g.adj[u][iter[u]]
			v := g.to[a]
			if g.cap[a] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := limit
			if g.cap[a] < pushed {
				pushed = g.cap[a]
			}
			got := dfs(v, pushed)
			if got > 0 {
				g.cap[a] -= got
				g.cap[a^1] += got
				return got
			}
		}
		level[u] = -1 // dead end for the rest of this phase
		return 0
	}

	var value float64
	limit := g.finiteSum + 1 // exceeds any achievable augmentation
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			got := dfs(g.source, limit)
			if got <= 0 {
				break
			}
			value += got
		}
	}
	return Result{Value: value, g: g}
}
