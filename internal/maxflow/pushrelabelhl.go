package maxflow

// This file implements the practical Goldberg–Tarjan configuration:
// highest-label vertex selection over height-indexed buckets, periodic
// global relabeling by backward BFS from the sink, and the gap
// heuristic (when a height level below n empties, everything stranded
// above it is provably cut off from the sink and jumps straight to
// n+1). Together with the CSR arc pool these are the heuristics that
// take push-relabel from its textbook O(V³) behavior to the fastest
// known practical max-flow family; the passive-classification networks
// of Theorem 4 — long chain gadgets behind ∞-capacity reachability
// edges — lean on the gap heuristic especially hard, because once the
// cut saturates, the excess trapped behind it would otherwise climb
// past n one relabel at a time.

// hlRelabelWorkConst is the constant charged to the global-relabel
// work counter per relabel operation, on top of the scanned degree;
// the counter approximates wasted label drift, and a backward BFS
// costs O(n + m), so exceeding the work limit = 24n + 2m amortizes
// each global rebuild against several times its own cost (hi_pr-style
// accounting, with the trigger backed off ~8× from hi_pr's classic
// 6n + m/2 because the gap heuristic — which hi_pr's trigger predates
// leaning on this heavily — already absorbs the stranded-excess climbs
// that frequent rebuilds used to paper over; measured on the passive
// benchmark family, end-to-end time improves steadily as the trigger
// is backed off, flattening out around the 8× setting and turning
// back up past ~16×).
const (
	hlRelabelWorkConst = 12
	hlWorkScaleN       = 48
	hlWorkScaleM       = 4
)

// PushRelabelHL computes a maximum flow with highest-label
// push-relabel and periodic global relabeling, allocating a fresh
// Workspace. Batch callers should reuse one Workspace via SolveWith
// (zero steady-state allocations) or use PushRelabelHLPooled. The
// network is consumed; Clone first to keep the original, or Reset to
// solve again.
func PushRelabelHL(g *Network) Result {
	return SolveWith(NewWorkspace(), g)
}

// SolveWith computes a maximum flow of g with the highest-label
// engine, using ws for every piece of solver scratch. Re-solving
// same-sized networks with one workspace performs no allocations.
// ws.Stats is overwritten with this solve's operation counts.
func SolveWith(ws *Workspace, g *Network) Result {
	g.prepare()
	n := g.n
	ws.ensure(n)
	ws.Stats = WorkspaceStats{}
	height, excess, cur := ws.height, ws.excess, ws.cur
	bucket, next, count := ws.bucket, ws.next, ws.count
	lnext, lprev, lhead := ws.lnext, ws.lprev, ws.lhead
	arcStart, arcTo, arcRev, arcCap := g.arcStart, g.arcTo, g.arcRev, g.arcCap
	src, snk := int32(g.source), int32(g.sink)

	for i := 0; i < n; i++ {
		excess[i] = 0
	}
	// Initial preflow: saturate every arc out of the source.
	for a := arcStart[src]; a < arcStart[src+1]; a++ {
		c := arcCap[a]
		if c <= 0 {
			continue
		}
		arcCap[a] = 0
		arcCap[arcRev[a]] += c
		excess[arcTo[a]] += c
		excess[src] -= c
	}

	// Exact initial distances; also builds the buckets.
	highest := hlGlobalRelabel(g, ws)
	work := 0
	workLimit := hlWorkScaleN*n + hlWorkScaleM*len(arcTo)
	maxH := int32(2 * n)

	for highest >= 0 {
		u := bucket[highest]
		if u < 0 {
			highest--
			continue
		}
		bucket[highest] = next[u]
		h := height[u]
		if int(h) != highest {
			// The entry went stale when a gap lift raised u while it
			// was parked here; move it to its true bucket.
			next[u] = bucket[h]
			bucket[h] = u
			if int(h) > highest {
				highest = int(h)
			}
			continue
		}
		end := arcStart[u+1]
		for excess[u] > 0 {
			if cur[u] == end {
				// Out of admissible arcs: relabel to one above the
				// lowest residual neighbor.
				minH := maxH
				for a := arcStart[u]; a < end; a++ {
					if arcCap[a] > 0 && height[arcTo[a]] < minH {
						minH = height[arcTo[a]]
					}
				}
				if minH == maxH {
					// A vertex with positive excess received a push, so
					// its reverse arc has positive residual capacity;
					// unreachable on a consistent network.
					panic("maxflow: relabel found no residual arc")
				}
				ws.Stats.Relabels++
				work += int(end-arcStart[u]) + hlRelabelWorkConst
				oldH := h
				height[u] = minH + 1
				cur[u] = arcStart[u]
				h = height[u]
				count[oldH]--
				count[h]++
				// Move u to its new layer list.
				if lprev[u] >= 0 {
					lnext[lprev[u]] = lnext[u]
				} else {
					lhead[oldH] = lnext[u]
				}
				if lnext[u] >= 0 {
					lprev[lnext[u]] = lprev[u]
				}
				lprev[u] = -1
				lnext[u] = lhead[h]
				if lhead[h] >= 0 {
					lprev[lhead[h]] = u
				}
				lhead[h] = u
				if int(h) < n && h > ws.dMax {
					ws.dMax = h
				}
				if count[oldH] == 0 && int(oldH) < n {
					// Gap: no vertex is left at oldH, so nothing above
					// it can step down to the sink any more. The common
					// case — a lone chain vertex climbing through its
					// own levels — strands only u itself, which jumps
					// straight to n+1 in O(1) and keeps discharging.
					// A genuinely populated region is lifted by walking
					// its layer lists (O(lifted vertices)); active
					// vertices parked in buckets at pre-lift heights
					// relocate lazily when popped. ws.dMax (a stale
					// upper bound on the tallest sub-n height) keeps
					// the emptiness scan to a handful of levels.
					others := int(h) < n && count[h] > 1
					for gh := oldH + 1; !others && gh <= ws.dMax; gh++ {
						others = gh != h && count[gh] > 0
					}
					switch {
					case others:
						hlGap(g, ws, oldH)
						if int(height[u]) > highest {
							highest = int(height[u])
						}
						h = height[u]
						continue
					case int(h) < n:
						count[h]--
						// u leaves layer h for layer n+1.
						if lprev[u] >= 0 {
							lnext[lprev[u]] = lnext[u]
						} else {
							lhead[h] = lnext[u]
						}
						if lnext[u] >= 0 {
							lprev[lnext[u]] = lprev[u]
						}
						height[u] = int32(n + 1)
						h = height[u]
						count[h]++
						lprev[u] = -1
						lnext[u] = lhead[h]
						if lhead[h] >= 0 {
							lprev[lhead[h]] = u
						}
						lhead[h] = u
						ws.Stats.Gaps++
						continue
					default:
						continue
					}
				}
				if work >= workLimit {
					// Recompute exact labels; the rebuild re-buckets
					// every excess-carrying vertex, including u.
					work = 0
					highest = hlGlobalRelabel(g, ws)
					break
				}
				// u is now the highest active vertex; keep discharging.
				continue
			}
			a := cur[u]
			v := arcTo[a]
			if arcCap[a] > 0 && h == height[v]+1 {
				amt := excess[u]
				if arcCap[a] < amt {
					amt = arcCap[a]
				}
				arcCap[a] -= amt
				arcCap[arcRev[a]] += amt
				wasIdle := excess[v] == 0
				excess[u] -= amt
				excess[v] += amt
				ws.Stats.Pushes++
				if wasIdle && v != src && v != snk {
					hv := height[v]
					next[v] = bucket[hv]
					bucket[hv] = v
					// After a relabel u may sit above the old maximum,
					// so a fresh activation can too.
					if int(hv) > highest {
						highest = int(hv)
					}
				}
			} else {
				cur[u]++
			}
		}
	}
	return Result{Value: excess[snk], g: g}
}

// hlGlobalRelabel assigns every vertex its exact residual distance to
// the sink (backward BFS), then labels the sink-unreachable remainder
// n + its exact residual distance to the source — every vertex
// carrying excess has a residual path back to the source, so all
// active vertices are labeled by one of the two phases; anything left
// is inert and parks at 2n. Exact distances are valid labels and
// never lie below the current (valid) ones, so heights stay
// monotone. The buckets and current-arc cursors are rebuilt from
// scratch; the return value is the highest active height, -1 when no
// vertex is active.
func hlGlobalRelabel(g *Network, ws *Workspace) int {
	n := g.n
	src, snk := int32(g.source), int32(g.sink)
	height, queue := ws.height, ws.queue
	unreached := int32(2 * n)
	for i := 0; i < n; i++ {
		height[i] = unreached
	}
	height[snk] = 0
	height[src] = int32(n)

	// Phase 1: distance to the sink. Vertex w reaches u along the
	// residual arc rev(a) whenever that arc has capacity left.
	queue[0] = snk
	qh, qt := 0, 1
	for qh < qt {
		u := queue[qh]
		qh++
		du := height[u] + 1
		for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
			w := g.arcTo[a]
			if height[w] == unreached && g.arcCap[g.arcRev[a]] > 0 {
				height[w] = du
				queue[qt] = w
				qt++
			}
		}
	}
	// Phase 2: n + distance to the source for the rest.
	queue[0] = src
	qh, qt = 0, 1
	for qh < qt {
		u := queue[qh]
		qh++
		du := height[u] + 1
		for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
			w := g.arcTo[a]
			if height[w] == unreached && g.arcCap[g.arcRev[a]] > 0 {
				height[w] = du
				queue[qt] = w
				qt++
			}
		}
	}

	copy(ws.cur, g.arcStart[:n])
	count, lnext, lprev, lhead := ws.count, ws.lnext, ws.lprev, ws.lhead
	for h := range count {
		count[h] = 0
		lhead[h] = -1
	}
	ws.dMax = 0
	for v := int32(0); v < int32(n); v++ {
		if v == src || v == snk {
			continue
		}
		h := height[v]
		count[h]++
		lprev[v] = -1
		lnext[v] = lhead[h]
		if lhead[h] >= 0 {
			lprev[lhead[h]] = v
		}
		lhead[h] = v
		if h < int32(n) && h > ws.dMax {
			ws.dMax = h
		}
	}
	ws.Stats.GlobalRelabels++
	return hlRebucket(g, ws)
}

// hlRebucket rebuilds the height-indexed active buckets from the
// current heights and excesses, returning the highest active height
// (-1 when no vertex is active).
func hlRebucket(g *Network, ws *Workspace) int {
	src, snk := int32(g.source), int32(g.sink)
	bucket, next, height := ws.bucket, ws.next, ws.height
	for h := range bucket {
		bucket[h] = -1
	}
	highest := -1
	for v := int32(0); v < int32(g.n); v++ {
		if v == src || v == snk || ws.excess[v] <= 0 {
			continue
		}
		h := height[v]
		next[v] = bucket[h]
		bucket[h] = v
		if int(h) > highest {
			highest = int(h)
		}
	}
	return highest
}

// hlGap applies the gap heuristic: height level gapH (< n) just
// emptied, and since residual heights drop by at most one per arc, no
// vertex above the gap can reach the sink any more. Every vertex with
// gapH < height < n jumps to n+1 — the label it would eventually earn
// one relabel at a time — with its current-arc cursor reset, exactly
// as a relabel would. The layer lists make this O(lifted vertices +
// levels walked) rather than O(n). Active buckets are NOT rebuilt:
// lifted vertices keep their stale entries and relocate when popped.
func hlGap(g *Network, ws *Workspace, gapH int32) {
	n := int32(g.n)
	lift := n + 1
	height, count := ws.height, ws.count
	lnext, lprev, lhead := ws.lnext, ws.lprev, ws.lhead
	for gh := gapH + 1; gh <= ws.dMax; gh++ {
		v := lhead[gh]
		if v < 0 {
			continue
		}
		for v >= 0 {
			nxt := lnext[v]
			count[gh]--
			count[lift]++
			height[v] = lift
			ws.cur[v] = g.arcStart[v]
			lprev[v] = -1
			lnext[v] = lhead[lift]
			if lhead[lift] >= 0 {
				lprev[lhead[lift]] = v
			}
			lhead[lift] = v
			v = nxt
		}
		lhead[gh] = -1
	}
	// Levels above the gap are now empty, so the tallest sub-n height
	// is at most one below it.
	ws.dMax = gapH - 1
	ws.Stats.Gaps++
}
