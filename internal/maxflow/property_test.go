package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNetwork draws a small random instance.
func randomNetwork(rng *rand.Rand) *Network {
	n := 3 + rng.Intn(8)
	g := New(n, 0, n-1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < 0.35 {
				g.AddEdge(u, v, float64(1+rng.Intn(12)))
			}
		}
	}
	return g
}

// Property (testing/quick): max-flow min-cut duality — the flow value
// equals the extracted cut-edge-set weight, and every solver agrees
// with Dinic on the same instance.
func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	property := func() bool {
		g := randomNetwork(rng)
		r := Dinic(g.Clone())
		if math.Abs(r.Value-r.CutWeight()) > 1e-9 {
			return false
		}
		for _, solver := range []func(*Network) Result{PushRelabel, EdmondsKarp, CapacityScaling} {
			if math.Abs(solver(g.Clone()).Value-r.Value) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): adding an edge never decreases the max
// flow (capacity monotonicity).
func TestQuickMaxFlowMonotoneInEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	property := func() bool {
		g := randomNetwork(rng)
		before := Dinic(g.Clone()).Value
		u := rng.Intn(g.NumVertices())
		v := rng.Intn(g.NumVertices())
		if u == v || u == g.Sink() || v == g.Source() {
			return true
		}
		g.AddEdge(u, v, float64(1+rng.Intn(10)))
		after := Dinic(g).Value
		return after >= before-1e-9
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): scaling every capacity by c > 0 scales the
// max flow by exactly c.
func TestQuickMaxFlowCapacityScalingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	property := func() bool {
		n := 3 + rng.Intn(8)
		c := 1 + rng.Float64()*9
		g1 := New(n, 0, n-1)
		g2 := New(n, 0, n-1)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.35 {
					w := float64(1 + rng.Intn(12))
					g1.AddEdge(u, v, w)
					g2.AddEdge(u, v, w*c)
				}
			}
		}
		v1 := Dinic(g1).Value
		v2 := Dinic(g2).Value
		return math.Abs(v2-v1*c) < 1e-6
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
