package maxflow

import (
	"math"
	"testing"
)

// decodeNetwork interprets fuzz bytes as a network: the first byte
// fixes the vertex count (2..10, source 0, sink n-1), then each
// (u, v, cap) triple adds an edge. Capacity byte 255 encodes +Inf,
// covering the unbounded contract; self-loops are skipped.
func decodeNetwork(data []byte) *Network {
	if len(data) < 1 {
		return nil
	}
	n := 2 + int(data[0])%9
	g := New(n, 0, n-1)
	edges := 0
	for i := 1; i+2 < len(data) && edges < 64; i += 3 {
		u := int(data[i]) % n
		v := int(data[i+1]) % n
		if u == v {
			continue
		}
		cap := float64(data[i+2] % 16)
		if data[i+2] == 255 {
			cap = math.Inf(1)
		}
		g.AddEdge(u, v, cap)
		edges++
	}
	return g
}

// FuzzMaxflowSolversAgree runs all four solvers on an arbitrary
// decoded network and requires exact agreement on the flow value and
// boundedness, plus min-cut duality with no infinite edge in the cut
// (Lemma 18) on bounded instances.
func FuzzMaxflowSolversAgree(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5})                                     // single edge s->t
	f.Add([]byte{1, 0, 1, 4, 1, 2, 255, 0, 2, 1})                 // infinite middle edge
	f.Add([]byte{0, 0, 1, 255})                                   // infinite s->t: unbounded
	f.Add([]byte{2, 0, 1, 9, 0, 2, 4, 1, 3, 2, 2, 3, 8, 1, 2, 1}) // diamond with cross edge
	f.Add([]byte{4})                                              // no edges: zero flow
	// 10-vertex bottleneck chain with a unit outlet: 14 units of
	// preflow must drain back to the source, exercising the gap-lift
	// drain path in PushRelabelHL.
	f.Add([]byte{8, 0, 1, 15, 1, 2, 15, 2, 3, 15, 3, 4, 15, 4, 5, 15, 5, 6, 15, 6, 7, 15, 7, 8, 15, 8, 9, 1})
	// Two parallel bottleneck chains: every height level stays
	// populated while trapped excess climbs, so the drain exercises
	// relabel climbs and the periodic global-relabel trigger instead
	// of gap lifts.
	f.Add([]byte{8, 0, 2, 15, 2, 3, 15, 3, 4, 15, 4, 9, 1, 0, 5, 15, 5, 6, 15, 6, 7, 15, 7, 9, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeNetwork(data)
		if g == nil {
			return
		}
		ref := Dinic(g.Clone())
		for name, solve := range Solvers() {
			r := solve(g.Clone())
			if r.IsInfinite() != ref.IsInfinite() {
				t.Fatalf("%s: infinite=%v, dinic says %v", name, r.IsInfinite(), ref.IsInfinite())
			}
			if r.IsInfinite() {
				continue
			}
			if math.Abs(r.Value-ref.Value) > 1e-9 {
				t.Fatalf("%s: value %g, dinic %g", name, r.Value, ref.Value)
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("%s: CutEdges panicked (Lemma 18 violated): %v", name, p)
					}
				}()
				if w := r.CutWeight(); math.Abs(w-r.Value) > 1e-9 {
					t.Fatalf("%s: cut weight %g != flow value %g", name, w, r.Value)
				}
			}()
		}
	})
}
