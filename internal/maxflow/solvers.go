package maxflow

// Solver is the common signature of every max-flow implementation in
// this package. All of them consume the network they are given; Clone
// first to keep the original, or Reset it to solve again.
type Solver func(*Network) Result

// SolverNames lists the implementations in a fixed, deterministic
// order, so differential tests and reports enumerate them stably.
// "pushrelabelhl" is the default engine (highest-label + global
// relabeling); "pushrelabelhl-pooled" is the same engine drawing its
// workspace from a sync.Pool; "dinic-legacy" is the pre-CSR adjacency
// baseline kept as an oracle and benchmark yardstick.
func SolverNames() []string {
	return []string{
		"dinic",
		"pushrelabelhl",
		"pushrelabelhl-pooled",
		"pushrelabel",
		"edmondskarp",
		"capacityscaling",
		"dinic-legacy",
	}
}

// Solvers maps each name from SolverNames to its implementation. The
// implementations are deliberately redundant — same contract,
// different algorithms — and the conformance harness holds them to
// bit-level agreement on flow value and cut validity.
func Solvers() map[string]Solver {
	return map[string]Solver{
		"dinic":                Dinic,
		"pushrelabelhl":        PushRelabelHL,
		"pushrelabelhl-pooled": PushRelabelHLPooled,
		"pushrelabel":          PushRelabel,
		"edmondskarp":          EdmondsKarp,
		"capacityscaling":      CapacityScaling,
		"dinic-legacy":         DinicLegacy,
	}
}
