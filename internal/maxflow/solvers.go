package maxflow

// Solver is the common signature of every max-flow implementation in
// this package. All four consume the network they are given; Clone
// first to keep the original.
type Solver func(*Network) Result

// SolverNames lists the implementations in a fixed, deterministic
// order, so differential tests and reports enumerate them stably.
func SolverNames() []string {
	return []string{"dinic", "pushrelabel", "edmondskarp", "capacityscaling"}
}

// Solvers maps each name from SolverNames to its implementation. The
// four are deliberately redundant — same contract, different
// algorithms — and the conformance harness holds them to bit-level
// agreement on flow value and cut validity.
func Solvers() map[string]Solver {
	return map[string]Solver{
		"dinic":           Dinic,
		"pushrelabel":     PushRelabel,
		"edmondskarp":     EdmondsKarp,
		"capacityscaling": CapacityScaling,
	}
}
