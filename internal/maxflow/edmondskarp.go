package maxflow

// EdmondsKarp computes a maximum flow by repeatedly augmenting along a
// shortest (fewest-edge) path found by BFS; O(VE²). It exists as an
// independently simple reference implementation that the faster
// solvers are cross-checked against in tests and benchmarks.
func EdmondsKarp(g *Network) Result {
	g.prepare()
	parentArc := make([]int32, g.n)
	visited := make([]bool, g.n)
	queue := make([]int, 0, g.n)

	var value float64
	for {
		for i := range visited {
			visited[i] = false
		}
		visited[g.source] = true
		queue = queue[:0]
		queue = append(queue, g.source)
		found := false
		for head := 0; head < len(queue) && !found; head++ {
			u := queue[head]
			for _, a := range g.adj[u] {
				v := g.to[a]
				if g.cap[a] <= 0 || visited[v] {
					continue
				}
				visited[v] = true
				parentArc[v] = a
				if v == g.sink {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			break
		}
		// Bottleneck along the recorded path.
		bottleneck := g.finiteSum + 1
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			if g.cap[a] < bottleneck {
				bottleneck = g.cap[a]
			}
			v = g.to[a^1]
		}
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			g.cap[a] -= bottleneck
			g.cap[a^1] += bottleneck
			v = g.to[a^1]
		}
		value += bottleneck
	}
	return Result{Value: value, g: g}
}
