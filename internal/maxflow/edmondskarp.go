package maxflow

// EdmondsKarp computes a maximum flow by repeatedly augmenting along a
// shortest (fewest-edge) path found by BFS; O(VE²). It exists as an
// independently simple reference implementation that the faster
// solvers are cross-checked against in tests and benchmarks.
func EdmondsKarp(g *Network) Result {
	g.prepare()
	parentArc := make([]int32, g.n)
	visited := make([]bool, g.n)
	queue := make([]int32, 0, g.n)

	var value float64
	for {
		for i := range visited {
			visited[i] = false
		}
		visited[g.source] = true
		queue = append(queue[:0], int32(g.source))
		found := false
		for head := 0; head < len(queue) && !found; head++ {
			u := queue[head]
			for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
				v := g.arcTo[a]
				if g.arcCap[a] <= 0 || visited[v] {
					continue
				}
				visited[v] = true
				parentArc[v] = a
				if int(v) == g.sink {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			break
		}
		// Bottleneck along the recorded path.
		bottleneck := g.finiteSum + 1
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			if g.arcCap[a] < bottleneck {
				bottleneck = g.arcCap[a]
			}
			v = int(g.arcTo[g.arcRev[a]])
		}
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			g.arcCap[a] -= bottleneck
			g.arcCap[g.arcRev[a]] += bottleneck
			v = int(g.arcTo[g.arcRev[a]])
		}
		value += bottleneck
	}
	return Result{Value: value, g: g}
}
