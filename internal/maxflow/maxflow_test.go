package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

type solver struct {
	name string
	run  func(*Network) Result
}

// solvers enumerates every registered implementation, so each test in
// this file automatically covers solvers added to the registry.
var solvers = func() []solver {
	impls := Solvers()
	var out []solver
	for _, name := range SolverNames() {
		out = append(out, solver{name, impls[name]})
	}
	return out
}()

// classic CLRS-style example with known max flow 23.
func clrsNetwork() *Network {
	g := New(6, 0, 5)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	return g
}

func TestSolversOnClassicExample(t *testing.T) {
	for _, s := range solvers {
		r := s.run(clrsNetwork())
		if r.Value != 23 {
			t.Errorf("%s: Value = %g, want 23", s.name, r.Value)
		}
		if got := r.CutWeight(); got != 23 {
			t.Errorf("%s: CutWeight = %g, want 23", s.name, got)
		}
	}
}

func TestSingleEdge(t *testing.T) {
	for _, s := range solvers {
		g := New(2, 0, 1)
		id := g.AddEdge(0, 1, 7.5)
		r := s.run(g)
		if r.Value != 7.5 {
			t.Errorf("%s: Value = %g, want 7.5", s.name, r.Value)
		}
		if r.Flow(id) != 7.5 {
			t.Errorf("%s: Flow = %g, want 7.5", s.name, r.Flow(id))
		}
	}
}

func TestDisconnected(t *testing.T) {
	for _, s := range solvers {
		g := New(4, 0, 3)
		g.AddEdge(0, 1, 5)
		g.AddEdge(2, 3, 5) // no path source -> sink
		r := s.run(g)
		if r.Value != 0 {
			t.Errorf("%s: Value = %g, want 0", s.name, r.Value)
		}
		if len(r.CutEdges()) != 0 {
			t.Errorf("%s: cut should be empty on disconnected instance", s.name)
		}
	}
}

func TestInfiniteMiddleEdge(t *testing.T) {
	// source -cap 3-> a -inf-> b -cap 2-> sink: flow 2, cut = {b->sink}.
	for _, s := range solvers {
		g := New(4, 0, 3)
		g.AddEdge(0, 1, 3)
		mid := g.AddEdge(1, 2, math.Inf(1))
		last := g.AddEdge(2, 3, 2)
		r := s.run(g)
		if r.Value != 2 {
			t.Errorf("%s: Value = %g, want 2", s.name, r.Value)
		}
		if r.IsInfinite() {
			t.Errorf("%s: finite instance flagged infinite", s.name)
		}
		cut := r.CutEdges()
		if len(cut) != 1 || cut[0].ID != last {
			t.Errorf("%s: cut = %v, want only edge %d", s.name, cut, last)
		}
		if r.Flow(mid) != 2 {
			t.Errorf("%s: middle edge flow = %g, want 2", s.name, r.Flow(mid))
		}
	}
}

func TestUnboundedInstanceDetected(t *testing.T) {
	for _, s := range solvers {
		g := New(3, 0, 2)
		g.AddEdge(0, 1, math.Inf(1))
		g.AddEdge(1, 2, math.Inf(1))
		g.AddEdge(0, 2, 1)
		r := s.run(g)
		if !r.IsInfinite() {
			t.Errorf("%s: unbounded instance not detected", s.name)
		}
	}
}

func TestCutEdgesPanicsOnUnbounded(t *testing.T) {
	g := New(3, 0, 2)
	g.AddEdge(0, 1, math.Inf(1))
	g.AddEdge(1, 2, math.Inf(1))
	r := Dinic(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic cutting an unbounded instance")
		}
	}()
	r.CutEdges()
}

func TestParallelAndAntiparallelEdges(t *testing.T) {
	for _, s := range solvers {
		g := New(3, 0, 2)
		g.AddEdge(0, 1, 2)
		g.AddEdge(0, 1, 3) // parallel
		g.AddEdge(1, 0, 5) // antiparallel, unusable
		g.AddEdge(1, 2, 4)
		r := s.run(g)
		if r.Value != 4 {
			t.Errorf("%s: Value = %g, want 4", s.name, r.Value)
		}
	}
}

func TestFlowConservationAndCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		g := New(n, 0, n-1)
		type e struct {
			id   int
			u, v int
			cap  float64
		}
		var edges []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.35 {
					c := float64(rng.Intn(10) + 1)
					id := g.AddEdge(u, v, c)
					edges = append(edges, e{id, u, v, c})
				}
			}
		}
		for _, s := range solvers {
			r := s.run(g.Clone())
			net := make([]float64, n)
			for _, ed := range edges {
				f := r.Flow(ed.id)
				if f < -1e-9 || f > ed.cap+1e-9 {
					t.Fatalf("%s trial %d: flow %g outside [0,%g]", s.name, trial, f, ed.cap)
				}
				net[ed.u] -= f
				net[ed.v] += f
			}
			for v := 1; v < n-1; v++ {
				if math.Abs(net[v]) > 1e-9 {
					t.Fatalf("%s trial %d: conservation violated at %d (%g)", s.name, trial, v, net[v])
				}
			}
			if math.Abs(net[n-1]-r.Value) > 1e-9 {
				t.Fatalf("%s trial %d: sink inflow %g != value %g", s.name, trial, net[n-1], r.Value)
			}
		}
	}
}

func TestSolversAgreeOnRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(12)
		g := New(n, 0, n-1)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					g.AddEdge(u, v, float64(rng.Intn(20)+1))
				}
			}
		}
		var vals []float64
		for _, s := range solvers {
			r := s.run(g.Clone())
			vals = append(vals, r.Value)
			// Max-flow min-cut: cut weight equals flow value.
			if math.Abs(r.CutWeight()-r.Value) > 1e-9 {
				t.Fatalf("%s trial %d: cut %g != flow %g", s.name, trial, r.CutWeight(), r.Value)
			}
			side := r.SourceSide()
			if !side[0] || side[n-1] {
				t.Fatalf("%s trial %d: source side misplaced", s.name, trial)
			}
		}
		for i := 1; i < len(vals); i++ {
			if math.Abs(vals[i]-vals[0]) > 1e-9 {
				t.Fatalf("trial %d: solver disagreement %v", trial, vals)
			}
		}
	}
}

func TestCutEdgesDisconnect(t *testing.T) {
	// Removing the cut-edge set must disconnect source from sink
	// (definition of a cut-edge set, Lemma 8).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(8)
		g := New(n, 0, n-1)
		type e struct{ u, v, id int }
		var edges []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					id := g.AddEdge(u, v, float64(rng.Intn(9)+1))
					edges = append(edges, e{u, v, id})
				}
			}
		}
		r := Dinic(g.Clone())
		removed := map[int]bool{}
		for _, c := range r.CutEdges() {
			removed[c.ID] = true
		}
		// BFS on original edges minus the cut set.
		adj := make([][]int, n)
		for _, ed := range edges {
			if !removed[ed.id] {
				adj[ed.u] = append(adj[ed.u], ed.v)
			}
		}
		seen := make([]bool, n)
		seen[0] = true
		stack := []int{0}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		if seen[n-1] {
			t.Fatalf("trial %d: cut-edge set does not disconnect", trial)
		}
	}
}

func TestConstructionPanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(1, 0, 0) },
		func() { New(3, 0, 0) },
		func() { New(3, -1, 2) },
		func() { New(3, 0, 3) },
		func() { g := New(2, 0, 1); g.AddEdge(0, 2, 1) },
		func() { g := New(2, 0, 1); g.AddEdge(-1, 1, 1) },
		func() { g := New(2, 0, 1); g.AddEdge(0, 1, -2) },
		func() { g := New(2, 0, 1); g.AddEdge(0, 1, math.NaN()) },
		func() {
			g := New(2, 0, 1)
			g.AddEdge(0, 1, 1)
			Dinic(g)
			g.AddEdge(0, 1, 1)
		},
		func() {
			g := New(2, 0, 1)
			g.AddEdge(0, 1, 1)
			Dinic(g).Flow(5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	g := clrsNetwork()
	cp := g.Clone()
	Dinic(g) // mutates g
	r := Dinic(cp)
	if r.Value != 23 {
		t.Errorf("clone was corrupted by solving the original: %g", r.Value)
	}
}

func TestAccessors(t *testing.T) {
	g := New(5, 1, 3)
	g.AddEdge(1, 2, 1)
	if g.NumVertices() != 5 || g.NumEdges() != 1 || g.Source() != 1 || g.Sink() != 3 {
		t.Error("accessors wrong")
	}
}

func TestLargeLayeredNetwork(t *testing.T) {
	// A deep layered network exercises Dinic phases and push-relabel
	// relabeling at moderate scale.
	const layers, width = 30, 10
	n := 2 + layers*width
	src, snk := 0, n-1
	vid := func(l, i int) int { return 1 + l*width + i }
	rng := rand.New(rand.NewSource(3))
	build := func() *Network {
		g := New(n, src, snk)
		for i := 0; i < width; i++ {
			g.AddEdge(src, vid(0, i), float64(rng.Intn(5)+1))
			g.AddEdge(vid(layers-1, i), snk, float64(rng.Intn(5)+1))
		}
		for l := 0; l+1 < layers; l++ {
			for i := 0; i < width; i++ {
				for j := 0; j < width; j++ {
					if rng.Float64() < 0.3 {
						g.AddEdge(vid(l, i), vid(l+1, j), float64(rng.Intn(5)+1))
					}
				}
			}
		}
		return g
	}
	g := build()
	var base float64
	for i, s := range solvers {
		r := s.run(g.Clone())
		if i == 0 {
			base = r.Value
			continue
		}
		if math.Abs(r.Value-base) > 1e-9 {
			t.Fatalf("%s disagrees: %g vs %g", s.name, r.Value, base)
		}
	}
}
