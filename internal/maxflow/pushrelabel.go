package maxflow

// PushRelabel computes a maximum flow with the Goldberg–Tarjan
// push-relabel method [14] using FIFO vertex selection and the gap
// heuristic, the O(V³) algorithm the paper plugs into Theorem 4's
// T_maxflow(n) term. The network is consumed; Clone first to keep the
// original.
func PushRelabel(g *Network) Result {
	g.prepare()
	n := g.n
	height := make([]int, n)
	excess := make([]float64, n)
	current := make([]int, n)
	inQueue := make([]bool, n)
	count := make([]int, 2*n+1) // vertices per height, for the gap heuristic

	push := func(a int32, amount float64) {
		g.cap[a] -= amount
		g.cap[a^1] += amount
	}

	queue := make([]int, 0, n)
	enqueue := func(v int) {
		if !inQueue[v] && v != g.source && v != g.sink && excess[v] > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	// Initialization: the source sits at height n and saturates all
	// its outgoing arcs, creating the initial preflow.
	height[g.source] = n
	count[0] = n - 1
	count[n]++
	for _, a := range g.adj[g.source] {
		if g.cap[a] <= 0 {
			continue
		}
		amount := g.cap[a]
		v := g.to[a]
		push(a, amount)
		excess[v] += amount
		excess[g.source] -= amount
		enqueue(v)
	}

	// gap lifts every vertex stranded above an empty height level
	// straight past n; such vertices can only return flow to the
	// source, never reach the sink again.
	gap := func(h int) {
		for v := 0; v < n; v++ {
			if v == g.source || height[v] <= h || height[v] >= n {
				continue
			}
			count[height[v]]--
			height[v] = n + 1
			count[height[v]]++
			current[v] = 0
		}
	}

	relabel := func(u int) {
		minH := 2 * n // a vertex with excess always has a residual arc
		for _, a := range g.adj[u] {
			if g.cap[a] > 0 && height[g.to[a]] < minH {
				minH = height[g.to[a]]
			}
		}
		if minH == 2*n {
			// A vertex with positive excess received a push, so its
			// reverse arc has positive residual capacity; this branch
			// is unreachable on a consistent network.
			panic("maxflow: relabel found no residual arc")
		}
		old := height[u]
		count[old]--
		height[u] = minH + 1 // <= 2n-1+1, within the count array
		count[height[u]]++
		current[u] = 0
		if count[old] == 0 && old < n {
			gap(old)
		}
	}

	discharge := func(u int) {
		for excess[u] > 0 {
			if current[u] == len(g.adj[u]) {
				relabel(u)
				continue
			}
			a := g.adj[u][current[u]]
			v := g.to[a]
			if g.cap[a] > 0 && height[u] == height[v]+1 {
				amount := excess[u]
				if g.cap[a] < amount {
					amount = g.cap[a]
				}
				push(a, amount)
				excess[u] -= amount
				excess[v] += amount
				enqueue(v)
			} else {
				current[u]++
			}
		}
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		discharge(u)
	}
	return Result{Value: excess[g.sink], g: g}
}
