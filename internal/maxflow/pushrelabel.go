package maxflow

// PushRelabel computes a maximum flow with the Goldberg–Tarjan
// push-relabel method [14] using FIFO vertex selection and the gap
// heuristic, the O(V³) algorithm the paper plugs into Theorem 4's
// T_maxflow(n) term. The active queue is a fixed-size ring buffer (at
// most n-2 vertices are ever queued at once), so dequeuing is O(1)
// with no head-shift reslicing. For the heuristically stronger
// highest-label variant see PushRelabelHL. The network is consumed;
// Clone first to keep the original.
func PushRelabel(g *Network) Result {
	g.prepare()
	n := g.n
	height := make([]int32, n)
	excess := make([]float64, n)
	current := make([]int32, n) // current arc, absolute CSR index
	inQueue := make([]bool, n)
	count := make([]int32, 2*n+1) // vertices per height, for the gap heuristic
	copy(current, g.arcStart[:n])

	push := func(a int32, amount float64) {
		g.arcCap[a] -= amount
		g.arcCap[g.arcRev[a]] += amount
	}

	// FIFO active set as a ring buffer: inQueue caps occupancy at n.
	ring := make([]int32, n)
	ringHead, ringLen := 0, 0
	enqueue := func(v int32) {
		if !inQueue[v] && int(v) != g.source && int(v) != g.sink && excess[v] > 0 {
			inQueue[v] = true
			ring[(ringHead+ringLen)%n] = v
			ringLen++
		}
	}

	// Initialization: the source sits at height n and saturates all
	// its outgoing arcs, creating the initial preflow.
	src := int32(g.source)
	height[src] = int32(n)
	count[0] = int32(n - 1)
	count[n]++
	for a := g.arcStart[src]; a < g.arcStart[src+1]; a++ {
		if g.arcCap[a] <= 0 {
			continue
		}
		amount := g.arcCap[a]
		v := g.arcTo[a]
		push(a, amount)
		excess[v] += amount
		excess[src] -= amount
		enqueue(v)
	}

	// gap lifts every vertex stranded above an empty height level
	// straight past n; such vertices can only return flow to the
	// source, never reach the sink again.
	gap := func(h int32) {
		for v := int32(0); v < int32(n); v++ {
			if v == src || height[v] <= h || height[v] >= int32(n) {
				continue
			}
			count[height[v]]--
			height[v] = int32(n + 1)
			count[height[v]]++
			current[v] = g.arcStart[v]
		}
	}

	relabel := func(u int32) {
		minH := int32(2 * n) // a vertex with excess always has a residual arc
		for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
			if g.arcCap[a] > 0 && height[g.arcTo[a]] < minH {
				minH = height[g.arcTo[a]]
			}
		}
		if minH == int32(2*n) {
			// A vertex with positive excess received a push, so its
			// reverse arc has positive residual capacity; this branch
			// is unreachable on a consistent network.
			panic("maxflow: relabel found no residual arc")
		}
		old := height[u]
		count[old]--
		height[u] = minH + 1 // <= 2n-1+1, within the count array
		count[height[u]]++
		current[u] = g.arcStart[u]
		if count[old] == 0 && old < int32(n) {
			gap(old)
		}
	}

	discharge := func(u int32) {
		for excess[u] > 0 {
			if current[u] == g.arcStart[u+1] {
				relabel(u)
				continue
			}
			a := current[u]
			v := g.arcTo[a]
			if g.arcCap[a] > 0 && height[u] == height[v]+1 {
				amount := excess[u]
				if g.arcCap[a] < amount {
					amount = g.arcCap[a]
				}
				push(a, amount)
				excess[u] -= amount
				excess[v] += amount
				enqueue(v)
			} else {
				current[u]++
			}
		}
	}

	for ringLen > 0 {
		u := ring[ringHead]
		ringHead = (ringHead + 1) % n
		ringLen--
		inQueue[u] = false
		discharge(u)
	}
	return Result{Value: excess[g.sink], g: g}
}
