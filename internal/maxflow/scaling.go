package maxflow

// CapacityScaling computes a maximum flow by capacity-scaled
// augmentation, the classic O(E² log C) member of the scaling family
// the paper's reference [13] (Goldberg–Rao) descends from: starting
// from a threshold Δ near the largest capacity, it repeatedly
// augments only along paths whose residual bottleneck is at least Δ,
// halving Δ once no such path remains. Each phase needs O(E)
// augmentations, so large flows converge in far fewer augmentations
// than plain Ford–Fulkerson/Edmonds–Karp on high-capacity networks.
// The network is consumed; Clone first to keep the original.
func CapacityScaling(g *Network) Result {
	g.prepare()
	// Largest finite capacity bounds the starting threshold.
	maxCap := 0.0
	for _, c := range g.arcCap {
		if c > maxCap {
			maxCap = c
		}
	}
	parentArc := make([]int32, g.n)
	visited := make([]bool, g.n)
	queue := make([]int32, 0, g.n)

	// augmentAtLeast finds one source-sink path of bottleneck >= delta
	// (DFS-free BFS variant) and augments along it; reports success.
	augmentAtLeast := func(delta float64) (float64, bool) {
		for i := range visited {
			visited[i] = false
		}
		visited[g.source] = true
		queue = append(queue[:0], int32(g.source))
		found := false
		for head := 0; head < len(queue) && !found; head++ {
			u := queue[head]
			for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
				v := g.arcTo[a]
				if visited[v] || g.arcCap[a] < delta {
					continue
				}
				visited[v] = true
				parentArc[v] = a
				if int(v) == g.sink {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
		if !found {
			return 0, false
		}
		bottleneck := g.finiteSum + 1
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			if g.arcCap[a] < bottleneck {
				bottleneck = g.arcCap[a]
			}
			v = int(g.arcTo[g.arcRev[a]])
		}
		for v := g.sink; v != g.source; {
			a := parentArc[v]
			g.arcCap[a] -= bottleneck
			g.arcCap[g.arcRev[a]] += bottleneck
			v = int(g.arcTo[g.arcRev[a]])
		}
		return bottleneck, true
	}

	var value float64
	delta := 1.0
	for delta*2 <= maxCap {
		delta *= 2
	}
	for {
		for {
			got, ok := augmentAtLeast(delta)
			if !ok {
				break
			}
			value += got
		}
		// Capacities are real-valued, so the scaling loop cannot stop
		// at Δ = 1 as in the integral analysis; once Δ undercuts the
		// smallest positive residual, a final exact phase (Δ = 0+)
		// finishes the flow à la Edmonds–Karp.
		if delta <= smallestPositiveResidual(g)/2 || delta < 1e-12 {
			for {
				got, ok := augmentAtLeast(1e-300)
				if !ok {
					break
				}
				value += got
			}
			break
		}
		delta /= 2
	}
	return Result{Value: value, g: g}
}

// smallestPositiveResidual scans the residual capacities for the
// smallest positive value (returns +∞ when all are zero — then the
// network is saturated and any Δ terminates).
func smallestPositiveResidual(g *Network) float64 {
	min := g.finiteSum + 1
	for _, c := range g.arcCap {
		if c > 0 && c < min {
			min = c
		}
	}
	return min
}
