package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

// feasibilityNetwork draws a random instance, recording every edge so
// the flow can be audited from outside the solver; withInf sprinkles
// in infinite capacities.
type feasEdge struct {
	id   int
	u, v int
	cap  float64
	inf  bool
}

func feasibilityNetwork(rng *rand.Rand, withInf bool) (*Network, []feasEdge) {
	n := 4 + rng.Intn(10)
	g := New(n, 0, n-1)
	var edges []feasEdge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() >= 0.35 {
				continue
			}
			c := float64(1 + rng.Intn(12))
			if withInf && rng.Intn(7) == 0 {
				c = math.Inf(1)
			}
			id := g.AddEdge(u, v, c)
			edges = append(edges, feasEdge{id: id, u: u, v: v, cap: c, inf: math.IsInf(c, 1)})
		}
	}
	return g, edges
}

// TestFlowFeasibilityAllSolvers reconstructs the full flow of every
// registered solver from Flow(id) alone and asserts it is feasible:
// each edge within [0, capacity], conservation at every internal
// vertex, and source/sink net flow equal to Value; bounded instances
// additionally satisfy min-cut duality.
func TestFlowFeasibilityAllSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(4021))
	for trial := 0; trial < 60; trial++ {
		g, edges := feasibilityNetwork(rng, trial%2 == 1)
		for _, s := range solvers {
			r := s.run(g.Clone())
			n := g.NumVertices()
			net := make([]float64, n)
			for _, e := range edges {
				f := r.Flow(e.id)
				if f < -1e-9 {
					t.Fatalf("%s trial %d: edge %d carries negative flow %g", s.name, trial, e.id, f)
				}
				if !e.inf && f > e.cap+1e-9 {
					t.Fatalf("%s trial %d: edge %d flow %g exceeds capacity %g", s.name, trial, e.id, f, e.cap)
				}
				net[e.u] -= f
				net[e.v] += f
			}
			for v := 0; v < n; v++ {
				want := 0.0
				switch v {
				case g.Source():
					want = -r.Value
				case g.Sink():
					want = r.Value
				}
				if math.Abs(net[v]-want) > 1e-9 {
					t.Fatalf("%s trial %d: vertex %d violates conservation: net %g, want %g",
						s.name, trial, v, net[v], want)
				}
			}
			if r.IsInfinite() {
				continue
			}
			if w := r.CutWeight(); math.Abs(w-r.Value) > 1e-9 {
				t.Fatalf("%s trial %d: cut weight %g != flow value %g", s.name, trial, w, r.Value)
			}
		}
	}
}

// TestAddEdgeAfterSolvePanicsAllSolvers holds every registered solver
// to the arc-pool finalization contract: once any of them has run,
// the CSR layout is frozen and AddEdge must panic.
func TestAddEdgeAfterSolvePanicsAllSolvers(t *testing.T) {
	for _, s := range solvers {
		g := New(3, 0, 2)
		g.AddEdge(0, 1, 2)
		g.AddEdge(1, 2, 3)
		s.run(g)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: AddEdge after solving did not panic", s.name)
				}
			}()
			g.AddEdge(0, 2, 1)
		}()
	}
}

// TestResetResolves solves, resets, and solves again with a different
// solver: the instance must be fully restored, including Flow queries.
func TestResetResolves(t *testing.T) {
	for _, s := range solvers {
		g := clrsNetwork()
		if v := Dinic(g).Value; v != 23 {
			t.Fatalf("first solve: %g", v)
		}
		g.Reset()
		r := s.run(g)
		if r.Value != 23 {
			t.Errorf("%s after Reset: Value = %g, want 23", s.name, r.Value)
		}
		if w := r.CutWeight(); w != 23 {
			t.Errorf("%s after Reset: CutWeight = %g, want 23", s.name, w)
		}
	}
}
