package maxflow

import "sync"

// WorkspaceStats counts the operations of the most recent
// Workspace-backed solve; useful for tuning and for tests that need to
// observe heuristic behavior (e.g. that a global relabel fired).
type WorkspaceStats struct {
	Pushes         int64
	Relabels       int64
	GlobalRelabels int64 // includes the initial exact-distance labeling
	Gaps           int64 // gap-heuristic events (emptied height level)
}

// Workspace holds every piece of solver scratch the highest-label
// push-relabel engine needs — height labels, excess, current-arc
// cursors, the height-indexed active buckets, and the BFS queue used
// by global relabeling. A Workspace grows monotonically and is reused
// across solves via SolveWith, so batch, streaming, and conformance
// workloads re-solve with zero steady-state allocations. A Workspace
// is not safe for concurrent use; use one per goroutine (or
// PushRelabelHLPooled, which draws from a sync.Pool).
type Workspace struct {
	height []int32   // height label per vertex
	excess []float64 // preflow excess per vertex
	cur    []int32   // current arc per vertex, absolute CSR index
	next   []int32   // intrusive singly-linked bucket chains
	bucket []int32   // head of the active list per height, -1 when empty
	count  []int32   // vertices per height, for the gap heuristic
	lnext  []int32   // doubly-linked all-vertex layer lists, by height
	lprev  []int32   // (gap lifts walk a layer instead of every vertex)
	lhead  []int32   // head of the layer list per height, -1 when empty
	queue  []int32   // scratch for the global-relabel BFS
	dMax   int32     // stale upper bound on the max height below n

	// Stats describes the most recent SolveWith call.
	Stats WorkspaceStats
}

// NewWorkspace returns an empty workspace; it sizes itself to the
// first network it solves and grows only when a larger one arrives.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the scratch slices for an n-vertex network without
// allocating when current capacity suffices.
func (ws *Workspace) ensure(n int) {
	if n <= cap(ws.height) && 2*n+1 <= cap(ws.bucket) && 2*n+2 <= cap(ws.count) && 2*n+2 <= cap(ws.lhead) {
		ws.height = ws.height[:n]
		ws.excess = ws.excess[:n]
		ws.cur = ws.cur[:n]
		ws.next = ws.next[:n]
		ws.queue = ws.queue[:n]
		ws.lnext = ws.lnext[:n]
		ws.lprev = ws.lprev[:n]
		ws.bucket = ws.bucket[:2*n+1]
		ws.count = ws.count[:2*n+2]
		ws.lhead = ws.lhead[:2*n+2]
		return
	}
	ws.height = make([]int32, n)
	ws.excess = make([]float64, n)
	ws.cur = make([]int32, n)
	ws.next = make([]int32, n)
	ws.queue = make([]int32, n)
	ws.lnext = make([]int32, n)
	ws.lprev = make([]int32, n)
	ws.bucket = make([]int32, 2*n+1)
	ws.count = make([]int32, 2*n+2)
	ws.lhead = make([]int32, 2*n+2)
}

// hlPool backs PushRelabelHLPooled: workspaces are recycled across
// calls so steady-state batch solving does not allocate scratch.
var hlPool = sync.Pool{New: func() any { return NewWorkspace() }}

// PushRelabelHLPooled is PushRelabelHL drawing its workspace from a
// process-wide sync.Pool: the registry-facing, allocation-avoiding
// variant used as the passive solver's default. Callers that want the
// per-solve Stats should hold their own Workspace and use SolveWith.
func PushRelabelHLPooled(g *Network) Result {
	ws := hlPool.Get().(*Workspace)
	r := SolveWith(ws, g)
	hlPool.Put(ws)
	return r
}
