// Package maxflow implements the max-flow / min-cut substrate of
// Section 2 and Section 5 of the paper: Dinic's algorithm, two
// Goldberg–Tarjan push-relabel variants (FIFO with the gap heuristic,
// and highest-label with periodic global relabeling — the practical
// workhorse), Edmonds–Karp and capacity scaling as independently
// simple references, plus extraction of a minimum-weight cut-edge set
// via the residual reachability construction in the proof of Lemma 8.
//
// The residual graph lives in a compressed-sparse-row (CSR) arc pool:
// prepare() finalizes the added edges into flat arrays where every
// vertex's arcs are contiguous (arcStart[u]..arcStart[u+1]), so the
// hot loops of every solver — and of SourceSide — walk sequential
// memory instead of chasing a slice-of-slices adjacency. A Workspace
// (see workspace.go) makes repeated solves allocation-free.
//
// Capacities are float64 and may be math.Inf(1); infinite capacities
// are internally replaced by a finite value exceeding every possible
// cut weight, which never changes a (finite) min cut. Lemma 18 of the
// paper guarantees that the passive-classification networks never cut
// such an edge, and CutEdges verifies this at runtime.
package maxflow

import (
	"fmt"
	"math"
)

// Network is a flow network over vertices 0..n-1 with designated
// source and sink. AddEdge records edges into flat per-edge arrays;
// the first solve finalizes them into the CSR arc pool (prepare), and
// arcs are addressed by their CSR index from then on. Each edge
// contributes a forward arc and a reverse arc (arcRev maps between
// them); residual capacities live in arcCap.
type Network struct {
	n            int
	source, sink int

	// Per-edge ingestion arrays, in AddEdge order (edge id = index).
	eu, ev    []int32   // endpoints
	ecap      []float64 // capacity as given (may be +Inf)
	einf      []bool    // added with cap = +Inf
	finiteSum float64   // sum of finite capacities

	// CSR arc pool, built by prepare. Arc a has target arcTo[a],
	// residual capacity arcCap[a], and reverse arc arcRev[a]; the arcs
	// of vertex u are arcStart[u]..arcStart[u+1].
	prepared bool
	huge     float64 // finiteSum + 1: stands in for +Inf
	arcStart []int32 // len n+1
	arcTo    []int32 // len 2·NumEdges
	arcRev   []int32
	arcCap   []float64
	edgeArc  []int32 // edge id -> its forward arc
}

// New creates a network with n vertices, a source, and a sink. Source
// and sink must be distinct in-range vertices.
func New(n, source, sink int) *Network {
	if n < 2 {
		panic(fmt.Sprintf("maxflow: need at least 2 vertices, got %d", n))
	}
	if source < 0 || source >= n || sink < 0 || sink >= n || source == sink {
		panic(fmt.Sprintf("maxflow: bad source/sink %d/%d for n=%d", source, sink, n))
	}
	return &Network{n: n, source: source, sink: sink}
}

// NumVertices returns the number of vertices.
func (g *Network) NumVertices() int { return g.n }

// NumEdges returns the number of added (forward) edges.
func (g *Network) NumEdges() int { return len(g.eu) }

// Source returns the source vertex.
func (g *Network) Source() int { return g.source }

// Sink returns the sink vertex.
func (g *Network) Sink() int { return g.sink }

// AddEdge adds a directed edge u -> v with the given capacity, which
// must be non-negative and may be +Inf. It returns an edge identifier
// usable with Flow and in CutEdge reports. Adding edges after a solver
// has run panics.
func (g *Network) AddEdge(u, v int, capacity float64) int {
	if g.prepared {
		panic("maxflow: AddEdge after solving")
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range for n=%d", u, v, g.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("maxflow: invalid capacity %g", capacity))
	}
	id := len(g.eu)
	inf := math.IsInf(capacity, 1)
	if !inf {
		g.finiteSum += capacity
	}
	g.eu = append(g.eu, int32(u))
	g.ev = append(g.ev, int32(v))
	g.ecap = append(g.ecap, capacity)
	g.einf = append(g.einf, inf)
	return id
}

// prepare finalizes the edge list into the CSR arc pool. Infinite
// capacities become finiteSum + 1, a value larger than the weight of
// any cut made of finite edges, so they can never participate in a
// minimum cut and arithmetic stays finite. Within a vertex, arcs keep
// AddEdge order, so solver traversal is deterministic.
func (g *Network) prepare() {
	if g.prepared {
		return
	}
	g.huge = g.finiteSum + 1
	m := len(g.eu)
	g.arcStart = make([]int32, g.n+1)
	for i := 0; i < m; i++ {
		g.arcStart[g.eu[i]+1]++
		g.arcStart[g.ev[i]+1]++
	}
	for v := 0; v < g.n; v++ {
		g.arcStart[v+1] += g.arcStart[v]
	}
	g.arcTo = make([]int32, 2*m)
	g.arcRev = make([]int32, 2*m)
	g.arcCap = make([]float64, 2*m)
	g.edgeArc = make([]int32, m)
	next := make([]int32, g.n)
	copy(next, g.arcStart[:g.n])
	for i := 0; i < m; i++ {
		u, v := g.eu[i], g.ev[i]
		a := next[u]
		next[u]++
		b := next[v]
		next[v]++
		g.arcTo[a] = v
		g.arcTo[b] = u
		g.arcRev[a] = b
		g.arcRev[b] = a
		g.arcCap[a] = g.preparedCap(i)
		g.arcCap[b] = 0
		g.edgeArc[i] = a
	}
	g.prepared = true
}

// preparedCap is edge i's capacity after infinity finitization.
func (g *Network) preparedCap(i int) float64 {
	if g.einf[i] {
		return g.huge
	}
	return g.ecap[i]
}

// Reset restores every residual capacity to its original value so the
// same instance can be solved again (e.g. by a different solver, or
// after Workspace-backed batch re-solves) without reallocating or
// rebuilding the CSR pool. It is a no-op before the first solve.
func (g *Network) Reset() {
	if !g.prepared {
		return
	}
	for i := range g.edgeArc {
		a := g.edgeArc[i]
		g.arcCap[a] = g.preparedCap(i)
		g.arcCap[g.arcRev[a]] = 0
	}
}

// Clone returns a deep copy of the network in its current state, so
// several solvers can run on the same instance.
func (g *Network) Clone() *Network {
	cp := &Network{
		n: g.n, source: g.source, sink: g.sink,
		eu:        append([]int32(nil), g.eu...),
		ev:        append([]int32(nil), g.ev...),
		ecap:      append([]float64(nil), g.ecap...),
		einf:      append([]bool(nil), g.einf...),
		finiteSum: g.finiteSum,
		prepared:  g.prepared,
		huge:      g.huge,
	}
	if g.prepared {
		cp.arcStart = append([]int32(nil), g.arcStart...)
		cp.arcTo = append([]int32(nil), g.arcTo...)
		cp.arcRev = append([]int32(nil), g.arcRev...)
		cp.arcCap = append([]float64(nil), g.arcCap...)
		cp.edgeArc = append([]int32(nil), g.edgeArc...)
	}
	return cp
}

// Result is the outcome of a max-flow computation. It retains the
// residual network for flow queries and min-cut extraction.
type Result struct {
	// Value is the maximum flow value.
	Value float64
	g     *Network
}

// Flow returns the amount of flow carried by the edge with the given
// identifier (as returned by AddEdge).
func (r Result) Flow(edgeID int) float64 {
	if edgeID < 0 || edgeID >= len(r.g.edgeArc) {
		panic(fmt.Sprintf("maxflow: edge id %d out of range", edgeID))
	}
	return r.g.preparedCap(edgeID) - r.g.arcCap[r.g.edgeArc[edgeID]]
}

// IsInfinite reports whether the instance admits unbounded flow, i.e.
// some source-sink path consists only of infinite-capacity edges. In
// that case Value is a finite surrogate and no finite min cut exists.
func (r Result) IsInfinite() bool { return r.Value > r.g.finiteSum }

// SourceSide returns the source side V_src of a minimum cut: the set of
// vertices reachable from the source in the residual network. Together
// with its complement it forms the minimum source-sink cut of Lemma 7.
func (r Result) SourceSide() []bool {
	g := r.g
	reach := make([]bool, g.n)
	reach[g.source] = true
	queue := make([]int32, 1, g.n)
	queue[0] = int32(g.source)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for a := g.arcStart[u]; a < g.arcStart[u+1]; a++ {
			if g.arcCap[a] <= 0 {
				continue
			}
			v := g.arcTo[a]
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// CutEdge describes one member of the minimum cut-edge set.
type CutEdge struct {
	ID       int     // edge identifier from AddEdge
	From, To int     // endpoints
	Capacity float64 // original capacity
}

// CutEdges returns a minimum-weight cut-edge set (Lemma 8): the
// original edges leaving the residual source side. Its total capacity
// equals Value by max-flow min-cut. CutEdges panics if an
// infinite-capacity edge would be cut, which can only happen on
// instances with unbounded flow (check IsInfinite first).
func (r Result) CutEdges() []CutEdge {
	side := r.SourceSide()
	var out []CutEdge
	for i := range r.g.eu {
		u, v := r.g.eu[i], r.g.ev[i]
		if side[u] && !side[v] {
			if r.g.einf[i] {
				panic("maxflow: minimum cut uses an infinite-capacity edge (unbounded instance)")
			}
			out = append(out, CutEdge{ID: i, From: int(u), To: int(v), Capacity: r.g.ecap[i]})
		}
	}
	return out
}

// CutWeight returns the total capacity of CutEdges.
func (r Result) CutWeight() float64 {
	var sum float64
	for _, e := range r.CutEdges() {
		sum += e.Capacity
	}
	return sum
}
