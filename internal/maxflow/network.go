// Package maxflow implements the max-flow / min-cut substrate of
// Section 2 and Section 5 of the paper. It provides three solvers —
// Dinic's algorithm, Goldberg–Tarjan FIFO push-relabel (the O(V³)
// algorithm the paper cites), and Edmonds–Karp as a simple reference —
// plus extraction of a minimum-weight cut-edge set via the residual
// reachability construction in the proof of Lemma 8.
//
// Capacities are float64 and may be math.Inf(1); infinite capacities
// are internally replaced by a finite value exceeding every possible
// cut weight, which never changes a (finite) min cut. Lemma 18 of the
// paper guarantees that the passive-classification networks never cut
// such an edge, and CutEdges verifies this at runtime.
package maxflow

import (
	"fmt"
	"math"
)

// Network is a flow network over vertices 0..n-1 with designated
// source and sink. Edges are stored as residual arc pairs: arcs 2k and
// 2k+1 are mutual reverses.
type Network struct {
	n            int
	source, sink int
	to           []int     // arc target
	cap          []float64 // remaining residual capacity
	orig         []float64 // original capacity (0 for pure reverse arcs)
	infinite     []bool    // whether the arc was added with cap = +Inf
	adj          [][]int32 // adjacency: arc indices per vertex
	finiteSum    float64   // sum of finite original capacities
	prepared     bool
}

// New creates a network with n vertices, a source, and a sink. Source
// and sink must be distinct in-range vertices.
func New(n, source, sink int) *Network {
	if n < 2 {
		panic(fmt.Sprintf("maxflow: need at least 2 vertices, got %d", n))
	}
	if source < 0 || source >= n || sink < 0 || sink >= n || source == sink {
		panic(fmt.Sprintf("maxflow: bad source/sink %d/%d for n=%d", source, sink, n))
	}
	return &Network{n: n, source: source, sink: sink, adj: make([][]int32, n)}
}

// NumVertices returns the number of vertices.
func (g *Network) NumVertices() int { return g.n }

// NumEdges returns the number of added (forward) edges.
func (g *Network) NumEdges() int { return len(g.to) / 2 }

// Source returns the source vertex.
func (g *Network) Source() int { return g.source }

// Sink returns the sink vertex.
func (g *Network) Sink() int { return g.sink }

// AddEdge adds a directed edge u -> v with the given capacity, which
// must be non-negative and may be +Inf. It returns an edge identifier
// usable with Flow and in CutEdge reports. Adding edges after a solver
// has run panics.
func (g *Network) AddEdge(u, v int, capacity float64) int {
	if g.prepared {
		panic("maxflow: AddEdge after solving")
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range for n=%d", u, v, g.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("maxflow: invalid capacity %g", capacity))
	}
	id := len(g.to) / 2
	inf := math.IsInf(capacity, 1)
	if !inf {
		g.finiteSum += capacity
	}
	g.to = append(g.to, v, u)
	g.cap = append(g.cap, capacity, 0)
	g.orig = append(g.orig, capacity, 0)
	g.infinite = append(g.infinite, inf, false)
	g.adj[u] = append(g.adj[u], int32(2*id))
	g.adj[v] = append(g.adj[v], int32(2*id+1))
	return id
}

// prepare replaces infinite capacities by finiteSum + 1, a value larger
// than the weight of any cut made of finite edges, so they can never
// participate in a minimum cut and arithmetic stays finite.
func (g *Network) prepare() {
	if g.prepared {
		return
	}
	huge := g.finiteSum + 1
	for a := range g.cap {
		if g.infinite[a] {
			g.cap[a] = huge
			g.orig[a] = huge
		}
	}
	g.prepared = true
}

// Clone returns a deep copy of the network in its current state, so
// several solvers can run on the same instance.
func (g *Network) Clone() *Network {
	cp := &Network{
		n: g.n, source: g.source, sink: g.sink,
		to:        append([]int(nil), g.to...),
		cap:       append([]float64(nil), g.cap...),
		orig:      append([]float64(nil), g.orig...),
		infinite:  append([]bool(nil), g.infinite...),
		adj:       make([][]int32, g.n),
		finiteSum: g.finiteSum,
		prepared:  g.prepared,
	}
	for v := range g.adj {
		cp.adj[v] = append([]int32(nil), g.adj[v]...)
	}
	return cp
}

// Result is the outcome of a max-flow computation. It retains the
// residual network for flow queries and min-cut extraction.
type Result struct {
	// Value is the maximum flow value.
	Value float64
	g     *Network
}

// Flow returns the amount of flow carried by the edge with the given
// identifier (as returned by AddEdge).
func (r Result) Flow(edgeID int) float64 {
	a := 2 * edgeID
	if a < 0 || a >= len(r.g.to) {
		panic(fmt.Sprintf("maxflow: edge id %d out of range", edgeID))
	}
	return r.g.orig[a] - r.g.cap[a]
}

// IsInfinite reports whether the instance admits unbounded flow, i.e.
// some source-sink path consists only of infinite-capacity edges. In
// that case Value is a finite surrogate and no finite min cut exists.
func (r Result) IsInfinite() bool { return r.Value > r.g.finiteSum }

// SourceSide returns the source side V_src of a minimum cut: the set of
// vertices reachable from the source in the residual network. Together
// with its complement it forms the minimum source-sink cut of Lemma 7.
func (r Result) SourceSide() []bool {
	reach := make([]bool, r.g.n)
	reach[r.g.source] = true
	queue := []int{r.g.source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range r.g.adj[u] {
			if r.g.cap[a] <= 0 {
				continue
			}
			v := r.g.to[a]
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// CutEdge describes one member of the minimum cut-edge set.
type CutEdge struct {
	ID       int     // edge identifier from AddEdge
	From, To int     // endpoints
	Capacity float64 // original capacity
}

// CutEdges returns a minimum-weight cut-edge set (Lemma 8): the
// original edges leaving the residual source side. Its total capacity
// equals Value by max-flow min-cut. CutEdges panics if an
// infinite-capacity edge would be cut, which can only happen on
// instances with unbounded flow (check IsInfinite first).
func (r Result) CutEdges() []CutEdge {
	side := r.SourceSide()
	var out []CutEdge
	for a := 0; a < len(r.g.to); a += 2 {
		u, v := r.g.to[a+1], r.g.to[a]
		if side[u] && !side[v] {
			if r.g.infinite[a] {
				panic("maxflow: minimum cut uses an infinite-capacity edge (unbounded instance)")
			}
			out = append(out, CutEdge{ID: a / 2, From: u, To: v, Capacity: r.g.orig[a]})
		}
	}
	return out
}

// CutWeight returns the total capacity of CutEdges.
func (r Result) CutWeight() float64 {
	var sum float64
	for _, e := range r.CutEdges() {
		sum += e.Capacity
	}
	return sum
}
