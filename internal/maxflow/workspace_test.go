package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

// bottleneckChain builds source -> v1 -> ... -> vk -> sink with wide
// interior capacities and a unit outlet, so almost all of the initial
// preflow must drain back to the source. With a single chain the gap
// heuristic short-circuits the drain (every level empties as its one
// vertex climbs), so this exercises the gap path, not the periodic
// global relabel.
func bottleneckChain(k int) *Network {
	g := New(k+2, 0, k+1)
	g.AddEdge(0, 1, 100)
	for i := 1; i < k; i++ {
		g.AddEdge(i, i+1, 100)
	}
	g.AddEdge(k, k+1, 1)
	return g
}

// parallelBottleneck builds p disjoint bottleneck chains of length k
// sharing one source and sink. Every height level holds one vertex per
// chain, so no level ever empties while trapped excess climbs — the
// gap heuristic stays silent and the drain has to grind out unit
// relabels until the work counter forces a periodic global relabel,
// whose exact labels then finish the drain at once.
func parallelBottleneck(p, k int) *Network {
	g := New(2+p*k, 0, 1)
	for c := 0; c < p; c++ {
		base := 2 + c*k
		g.AddEdge(0, base, 100)
		for i := 0; i < k-1; i++ {
			g.AddEdge(base+i, base+i+1, 100)
		}
		g.AddEdge(base+k-1, 1, 1)
	}
	return g
}

// TestGlobalRelabelTriggered drives the highest-label engine past its
// work budget: beyond the initial exact-distance labeling, at least
// one periodic global relabel must fire, and the answer must agree
// with Dinic.
func TestGlobalRelabelTriggered(t *testing.T) {
	g := parallelBottleneck(4, 64)
	ws := NewWorkspace()
	r := SolveWith(ws, g.Clone())
	if r.Value != 4 {
		t.Fatalf("Value = %g, want 4", r.Value)
	}
	if ws.Stats.GlobalRelabels < 2 {
		t.Errorf("GlobalRelabels = %d, want >= 2 (initial + periodic)", ws.Stats.GlobalRelabels)
	}
	if ws.Stats.Pushes == 0 || ws.Stats.Relabels == 0 {
		t.Errorf("stats not recorded: %+v", ws.Stats)
	}
	if ref := Dinic(g); math.Abs(ref.Value-r.Value) > 1e-9 {
		t.Errorf("disagrees with Dinic: %g vs %g", r.Value, ref.Value)
	}
}

// TestGapHeuristicTriggered pins the complementary heuristic: on a
// single bottleneck chain the drain must ride gap lifts, not relabel
// climbs — and still agree with Dinic.
func TestGapHeuristicTriggered(t *testing.T) {
	g := bottleneckChain(64)
	ws := NewWorkspace()
	r := SolveWith(ws, g.Clone())
	if r.Value != 1 {
		t.Fatalf("Value = %g, want 1", r.Value)
	}
	if ws.Stats.Gaps == 0 {
		t.Errorf("Gaps = 0, want > 0: %+v", ws.Stats)
	}
	if ref := Dinic(g); math.Abs(ref.Value-r.Value) > 1e-9 {
		t.Errorf("disagrees with Dinic: %g vs %g", r.Value, ref.Value)
	}
}

// TestWorkspaceReuseAcrossSizes solves a shrinking and growing
// sequence of random networks with one workspace, checking each
// result against Dinic: stale scratch from a previous (larger or
// smaller) solve must never leak into the next one.
func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	ws := NewWorkspace()
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(24)
		g := New(n, 0, n-1)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.3 {
					c := float64(1 + rng.Intn(15))
					if rng.Intn(9) == 0 {
						c = math.Inf(1)
					}
					g.AddEdge(u, v, c)
				}
			}
		}
		got := SolveWith(ws, g.Clone())
		want := Dinic(g)
		if got.IsInfinite() != want.IsInfinite() {
			t.Fatalf("trial %d (n=%d): boundedness %v vs %v", trial, n, got.IsInfinite(), want.IsInfinite())
		}
		if !got.IsInfinite() && math.Abs(got.Value-want.Value) > 1e-9 {
			t.Fatalf("trial %d (n=%d): value %g, Dinic %g", trial, n, got.Value, want.Value)
		}
	}
}

// passiveStyleNetwork mimics the Theorem 4 topology at small scale:
// bipartite weighted source/sink edges plus ∞ reachability edges.
func passiveStyleNetwork(rng *rand.Rand, half int) *Network {
	n := 2 + 2*half
	g := New(n, 0, 1)
	for i := 0; i < half; i++ {
		g.AddEdge(0, 2+i, float64(1+rng.Intn(9)))
		g.AddEdge(2+half+i, 1, float64(1+rng.Intn(9)))
	}
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			if rng.Float64() < 0.3 {
				g.AddEdge(2+i, 2+half+j, math.Inf(1))
			}
		}
	}
	return g
}

// TestSolveWithZeroAllocsOnResolve is the allocation-free re-solve
// contract: once the workspace and the CSR pool are warm, Reset +
// SolveWith must not allocate at all.
func TestSolveWithZeroAllocsOnResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := passiveStyleNetwork(rng, 40)
	ws := NewWorkspace()
	SolveWith(ws, g) // warm the workspace and finalize the CSR pool
	allocs := testing.AllocsPerRun(50, func() {
		g.Reset()
		SolveWith(ws, g)
	})
	if allocs != 0 {
		t.Errorf("Reset+SolveWith allocates %v times per op, want 0", allocs)
	}
}

// BenchmarkWorkspaceResolve is the workspace re-solve benchmark wired
// into BENCH_maxflow.json: b.ReportAllocs must show 0 allocs/op.
func BenchmarkWorkspaceResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := passiveStyleNetwork(rng, 256)
	ws := NewWorkspace()
	SolveWith(ws, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reset()
		SolveWith(ws, g)
	}
}
