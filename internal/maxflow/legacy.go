package maxflow

// DinicLegacy is the pre-CSR Dinic implementation, retained — like
// domgraph.BuildNaive and chains.DecomposeGenericScalar — as an
// in-tree baseline and differential oracle. It materializes the old
// slice-of-slices adjacency (one []int32 of arc indices per vertex)
// and walks it exactly as the original engine did, so benchmarks can
// measure what the pointer-chasing layout cost; the arc data itself
// still lives in the CSR arrays, which only flatters the baseline.
// The network is consumed; Clone first to keep the original.
func DinicLegacy(g *Network) Result {
	g.prepare()
	adj := make([][]int32, g.n)
	for i, a := range g.edgeArc {
		adj[g.eu[i]] = append(adj[g.eu[i]], a)
		adj[g.ev[i]] = append(adj[g.ev[i]], g.arcRev[a])
	}
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[g.source] = 0
		queue = append(queue[:0], g.source)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, a := range adj[u] {
				v := g.arcTo[a]
				if g.arcCap[a] > 0 && level[v] < 0 {
					level[v] = level[u] + 1
					queue = append(queue, int(v))
				}
			}
		}
		return level[g.sink] >= 0
	}

	var dfs func(u int, limit float64) float64
	dfs = func(u int, limit float64) float64 {
		if u == g.sink {
			return limit
		}
		for ; iter[u] < len(adj[u]); iter[u]++ {
			a := adj[u][iter[u]]
			v := g.arcTo[a]
			if g.arcCap[a] <= 0 || level[v] != level[u]+1 {
				continue
			}
			pushed := limit
			if g.arcCap[a] < pushed {
				pushed = g.arcCap[a]
			}
			got := dfs(int(v), pushed)
			if got > 0 {
				g.arcCap[a] -= got
				g.arcCap[g.arcRev[a]] += got
				return got
			}
		}
		level[u] = -1 // dead end for the rest of this phase
		return 0
	}

	var value float64
	limit := g.finiteSum + 1 // exceeds any achievable augmentation
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			got := dfs(g.source, limit)
			if got <= 0 {
				break
			}
			value += got
		}
	}
	return Result{Value: value, g: g}
}
