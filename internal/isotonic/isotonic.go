// Package isotonic implements weighted isotonic regression by the
// pool-adjacent-violators algorithm (PAVA), under squared (L2) and
// absolute (L1) loss.
//
// It is the bridge between this library and the mainstream
// "monotone/isotonic classifier" toolbox (e.g. scikit-learn's
// IsotonicRegression): one-dimensional monotone classification with
// 0/1 labels is exactly L1 isotonic regression restricted to binary
// fitted values, so FitL1's total loss on binary data must equal the
// optimal threshold error of classifier.BestThreshold1D — a
// cross-validation the tests perform. Beyond validation, the fits are
// useful in their own right for calibrating continuous match scores
// monotonically.
package isotonic

import (
	"fmt"
	"sort"
)

// Point is one observation: position X, response Y, positive weight W.
type Point struct {
	X, Y, W float64
}

// validate checks the input and returns it sorted by X (stable for
// ties, which PAVA handles as adjacent observations).
func validate(pts []Point) ([]Point, error) {
	for i, p := range pts {
		if p.W <= 0 {
			return nil, fmt.Errorf("isotonic: weight %g at %d must be positive", p.W, i)
		}
	}
	out := append([]Point(nil), pts...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].X < out[b].X })
	return out, nil
}

// FitL2 computes the non-decreasing fit minimizing Σ w·(f - y)²,
// returning fitted values aligned with pts sorted by X (the returned
// xs give the sorted positions). Classic mean-pooling PAVA, O(n) after
// sorting.
func FitL2(pts []Point) (xs, fitted []float64, err error) {
	sorted, err := validate(pts)
	if err != nil {
		return nil, nil, err
	}
	n := len(sorted)
	if n == 0 {
		return nil, nil, nil
	}
	type block struct {
		sumWY, sumW float64
		count       int
	}
	blocks := make([]block, 0, n)
	for _, p := range sorted {
		blocks = append(blocks, block{sumWY: p.W * p.Y, sumW: p.W, count: 1})
		// Pool while the last block's mean undercuts its predecessor.
		for len(blocks) >= 2 {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			if prev.sumWY/prev.sumW <= last.sumWY/last.sumW {
				break
			}
			merged := block{
				sumWY: prev.sumWY + last.sumWY,
				sumW:  prev.sumW + last.sumW,
				count: prev.count + last.count,
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	xs = make([]float64, n)
	fitted = make([]float64, n)
	i := 0
	for _, b := range blocks {
		mean := b.sumWY / b.sumW
		for k := 0; k < b.count; k++ {
			xs[i] = sorted[i].X
			fitted[i] = mean
			i++
		}
	}
	return xs, fitted, nil
}

// FitL1 computes a non-decreasing fit minimizing Σ w·|f - y|,
// returning fitted values aligned with pts sorted by X. PAVA with
// weighted-median pooling (lower medians, so results are
// deterministic); block merges recompute medians from the pooled
// members, O(n² log n) worst case — isotonic fits here back
// validation and calibration, not hot paths.
func FitL1(pts []Point) (xs, fitted []float64, err error) {
	sorted, err := validate(pts)
	if err != nil {
		return nil, nil, err
	}
	n := len(sorted)
	if n == 0 {
		return nil, nil, nil
	}
	type block struct {
		members []Point
		median  float64
	}
	blocks := make([]block, 0, n)
	for _, p := range sorted {
		blocks = append(blocks, block{members: []Point{p}, median: p.Y})
		for len(blocks) >= 2 {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			if prev.median <= last.median {
				break
			}
			merged := block{members: append(append([]Point(nil), prev.members...), last.members...)}
			merged.median = weightedLowerMedian(merged.members)
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	xs = make([]float64, n)
	fitted = make([]float64, n)
	i := 0
	for _, b := range blocks {
		for range b.members {
			xs[i] = sorted[i].X
			fitted[i] = b.median
			i++
		}
	}
	return xs, fitted, nil
}

// weightedLowerMedian returns the smallest y such that the weight of
// members with value <= y reaches half the total.
func weightedLowerMedian(members []Point) float64 {
	ys := append([]Point(nil), members...)
	sort.Slice(ys, func(a, b int) bool { return ys[a].Y < ys[b].Y })
	var total float64
	for _, p := range ys {
		total += p.W
	}
	var acc float64
	for _, p := range ys {
		acc += p.W
		if acc >= total/2 {
			return p.Y
		}
	}
	return ys[len(ys)-1].Y
}

// LossL1 evaluates Σ w·|f - y| for a fit aligned with pts sorted by X.
func LossL1(pts []Point, fitted []float64) (float64, error) {
	sorted, err := validate(pts)
	if err != nil {
		return 0, err
	}
	if len(fitted) != len(sorted) {
		return 0, fmt.Errorf("isotonic: fit length %d != %d points", len(fitted), len(sorted))
	}
	var sum float64
	for i, p := range sorted {
		d := fitted[i] - p.Y
		if d < 0 {
			d = -d
		}
		sum += p.W * d
	}
	return sum, nil
}

// LossL2 evaluates Σ w·(f - y)² for a fit aligned with pts sorted by X.
func LossL2(pts []Point, fitted []float64) (float64, error) {
	sorted, err := validate(pts)
	if err != nil {
		return 0, err
	}
	if len(fitted) != len(sorted) {
		return 0, fmt.Errorf("isotonic: fit length %d != %d points", len(fitted), len(sorted))
	}
	var sum float64
	for i, p := range sorted {
		d := fitted[i] - p.Y
		sum += p.W * d * d
	}
	return sum, nil
}
