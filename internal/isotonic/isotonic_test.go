package isotonic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

func checkMonotone(t *testing.T, fitted []float64) {
	t.Helper()
	for i := 1; i < len(fitted); i++ {
		if fitted[i] < fitted[i-1]-1e-12 {
			t.Fatalf("fit not monotone at %d: %v", i, fitted)
		}
	}
}

func TestFitL2Known(t *testing.T) {
	pts := []Point{{X: 1, Y: 1, W: 1}, {X: 2, Y: 3, W: 1}, {X: 3, Y: 2, W: 1}}
	_, fit, err := FitL2(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 2.5}
	for i := range want {
		if math.Abs(fit[i]-want[i]) > 1e-12 {
			t.Fatalf("fit = %v, want %v", fit, want)
		}
	}
}

func TestFitAlreadyMonotone(t *testing.T) {
	pts := []Point{{X: 1, Y: 1, W: 2}, {X: 2, Y: 2, W: 1}, {X: 3, Y: 5, W: 3}}
	for name, f := range map[string]func([]Point) ([]float64, []float64, error){"L2": FitL2, "L1": FitL1} {
		_, fit, err := f(pts)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			if fit[i] != p.Y {
				t.Fatalf("%s: monotone input changed: %v", name, fit)
			}
		}
	}
}

func TestFitsAreMonotoneOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.NormFloat64(), W: rng.Float64() + 0.1}
		}
		for name, f := range map[string]func([]Point) ([]float64, []float64, error){"L2": FitL2, "L1": FitL1} {
			xs, fit, err := f(pts)
			if err != nil {
				t.Fatal(err)
			}
			checkMonotone(t, fit)
			if !sort.Float64sAreSorted(xs) {
				t.Fatalf("%s: xs not sorted", name)
			}
		}
	}
}

// No random monotone candidate may beat the PAVA fits.
func TestFitsOptimalAgainstRandomCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(15)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(i), Y: float64(rng.Intn(6)), W: float64(1 + rng.Intn(4))}
		}
		_, fitL2, err := FitL2(pts)
		if err != nil {
			t.Fatal(err)
		}
		lossL2, _ := LossL2(pts, fitL2)
		_, fitL1, err := FitL1(pts)
		if err != nil {
			t.Fatal(err)
		}
		lossL1, _ := LossL1(pts, fitL1)
		for probe := 0; probe < 200; probe++ {
			cand := make([]float64, n)
			v := rng.NormFloat64() * 3
			for i := range cand {
				v += rng.Float64() * 2 // non-decreasing by construction
				cand[i] = v
			}
			if l, _ := LossL2(pts, cand); l < lossL2-1e-9 {
				t.Fatalf("trial %d: candidate beats PAVA-L2 (%g < %g)", trial, l, lossL2)
			}
			if l, _ := LossL1(pts, cand); l < lossL1-1e-9 {
				t.Fatalf("trial %d: candidate beats PAVA-L1 (%g < %g)", trial, l, lossL1)
			}
		}
	}
}

// Exact DP cross-check for L1: an optimal monotone fit exists whose
// values come from the observed ys; DP over (position, value index).
func TestFitL1MatchesExactDP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(12)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(i), Y: float64(rng.Intn(5)), W: float64(1 + rng.Intn(4))}
		}
		_, fit, err := FitL1(pts)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := LossL1(pts, fit)

		// DP: values = sorted distinct ys.
		var vals []float64
		seen := map[float64]bool{}
		for _, p := range pts {
			if !seen[p.Y] {
				seen[p.Y] = true
				vals = append(vals, p.Y)
			}
		}
		sort.Float64s(vals)
		const inf = math.MaxFloat64
		prev := make([]float64, len(vals))
		for j, v := range vals {
			prev[j] = pts[0].W * math.Abs(v-pts[0].Y)
		}
		for i := 1; i < n; i++ {
			cur := make([]float64, len(vals))
			best := inf
			for j, v := range vals {
				if prev[j] < best {
					best = prev[j]
				}
				cur[j] = best + pts[i].W*math.Abs(v-pts[i].Y)
			}
			prev = cur
		}
		want := inf
		for _, l := range prev {
			if l < want {
				want = l
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: PAVA-L1 loss %g != DP optimum %g (pts %v)", trial, got, want, pts)
		}
	}
}

// On binary labels with distinct positions, the L1 isotonic optimum
// equals the optimal monotone threshold error — the bridge between
// isotonic regression and 1-D monotone classification.
func TestFitL1BinaryEqualsBestThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		perm := rng.Perm(200)
		pts := make([]Point, n)
		ws := make(geom.WeightedSet, n)
		for i := range pts {
			x := float64(perm[i]) // distinct positions
			y := float64(rng.Intn(2))
			w := float64(1 + rng.Intn(5))
			pts[i] = Point{X: x, Y: y, W: w}
			ws[i] = geom.WeightedPoint{P: geom.Point{x}, Label: geom.Label(int(y)), Weight: w}
		}
		_, fit, err := FitL1(pts)
		if err != nil {
			t.Fatal(err)
		}
		isoLoss, _ := LossL1(pts, fit)
		_, thrLoss := classifier.BestThreshold1D(ws)
		if math.Abs(isoLoss-thrLoss) > 1e-9 {
			t.Fatalf("trial %d: isotonic %g != threshold %g", trial, isoLoss, thrLoss)
		}
		// Binary medians keep the fit binary.
		for _, v := range fit {
			if v != 0 && v != 1 {
				t.Fatalf("trial %d: non-binary fitted value %g", trial, v)
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Point{{X: 1, Y: 1, W: 0}}
	if _, _, err := FitL2(bad); err == nil {
		t.Error("zero weight accepted by FitL2")
	}
	if _, _, err := FitL1(bad); err == nil {
		t.Error("zero weight accepted by FitL1")
	}
	good := []Point{{X: 1, Y: 1, W: 1}}
	if _, err := LossL1(good, []float64{1, 2}); err == nil {
		t.Error("fit length mismatch accepted")
	}
	if _, err := LossL2(good, nil); err == nil {
		t.Error("fit length mismatch accepted")
	}
	if _, err := LossL1(bad, []float64{1}); err == nil {
		t.Error("invalid points accepted by LossL1")
	}
}

func TestEmptyInput(t *testing.T) {
	xs, fit, err := FitL2(nil)
	if err != nil || xs != nil || fit != nil {
		t.Error("empty L2 fit mishandled")
	}
	xs, fit, err = FitL1(nil)
	if err != nil || xs != nil || fit != nil {
		t.Error("empty L1 fit mishandled")
	}
}
