package quantize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

func randPts(rng *rand.Rand, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// Quantization must preserve dominance: p ⪰ q ⟹ Q(p) ⪰ Q(q).
func TestQuantizersPreserveDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		pts := randPts(rng, 2+rng.Intn(20), 2)
		for _, q := range [][]geom.Point{Uniform(pts, 1+rng.Intn(6)), ByQuantiles(pts, 1+rng.Intn(6))} {
			for i := range pts {
				for j := range pts {
					if i != j && geom.Dominates(pts[i], pts[j]) && !geom.Dominates(q[i], q[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformBasics(t *testing.T) {
	pts := []geom.Point{{0, 0}, {0.49, 1}, {0.51, 0.2}, {1, 0.8}}
	q := Uniform(pts, 2)
	// Grid {0, 0.5, 1} per dimension.
	want := []geom.Point{{0, 0}, {0.5, 1}, {0.5, 0.2}, {1, 0.8}}
	for i := range want {
		if q[i][0] != want[i][0] {
			t.Errorf("point %d: x = %g, want %g", i, q[i][0], want[i][0])
		}
	}
	// Input untouched.
	if pts[1][0] != 0.49 {
		t.Error("Uniform mutated its input")
	}
	if Uniform(nil, 3) != nil {
		t.Error("empty input should give nil")
	}
	// Constant dimension survives (span 0).
	flat := []geom.Point{{5, 1}, {5, 2}}
	qf := Uniform(flat, 4)
	if qf[0][0] != 5 || qf[1][0] != 5 {
		t.Error("constant dimension distorted")
	}
}

func TestByQuantilesBasics(t *testing.T) {
	pts := []geom.Point{{1}, {2}, {3}, {4}, {100}}
	q := ByQuantiles(pts, 2)
	// Buckets: [1, 3) -> 1, [3, ∞) -> 3.
	want := []float64{1, 1, 3, 3, 3}
	for i := range want {
		if q[i][0] != want[i] {
			t.Errorf("point %d: %g, want %g", i, q[i][0], want[i])
		}
	}
	if ByQuantiles(nil, 2) != nil {
		t.Error("empty input should give nil")
	}
}

func TestQuantizePanics(t *testing.T) {
	for i, f := range []func(){
		func() { Uniform([]geom.Point{{1}}, 0) },
		func() { ByQuantiles([]geom.Point{{1}}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Quantization must not increase the dominance width.
func TestQuantizationReducesWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 400, 2)
	w0 := chains.Width(pts)
	for _, lv := range []int{16, 8, 4, 2} {
		wq := chains.Width(Uniform(pts, lv))
		if wq > w0 {
			t.Errorf("levels=%d: width grew %d -> %d", lv, w0, wq)
		}
	}
	// Coarse quantization should collapse the width substantially.
	if wq := chains.Width(Uniform(pts, 2)); wq >= w0/2 {
		t.Errorf("levels=2: width %d not well below original %d", wq, w0)
	}
}

func TestComposedMonotoneAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 200, 2)
	q := Uniform(pts, 4)
	h := classifier.MustAnchorSet(2, []geom.Point{q[0], q[1]})
	// The batch Uniform grid depends on the batch's min/max, so the
	// pointwise quantizer for composition must be fixed up front.
	fixed := func(p geom.Point) geom.Point {
		out := make(geom.Point, len(p))
		for k, v := range p {
			out[k] = float64(int(v*4)) / 4
		}
		return out
	}
	wrapped := Composed{Inner: h, Quant: fixed}
	if ok, p, qq := classifier.IsMonotoneOn(pts, wrapped); !ok {
		t.Errorf("composed classifier not monotone: %v vs %v", p, qq)
	}
}

// The tradeoff sweep reports shrinking width and non-decreasing k* as
// levels coarsen.
func TestTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var lab []geom.LabeledPoint
	for i := 0; i < 300; i++ {
		p := geom.Point{rng.Float64(), rng.Float64()}
		label := geom.Negative
		if p[0]+p[1] > 1 {
			label = geom.Positive
		}
		if rng.Float64() < 0.05 {
			label ^= 1
		}
		lab = append(lab, geom.LabeledPoint{P: p, Label: label})
	}
	stats, err := Tradeoff(lab, []int{32, 8, 2}, passive.OptimalError)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d stats", len(stats))
	}
	if !(stats[0].Width >= stats[1].Width && stats[1].Width >= stats[2].Width) {
		t.Errorf("width not non-increasing: %+v", stats)
	}
	if stats[2].KStar < stats[0].KStar {
		t.Errorf("coarser grid should not reduce k*: %+v", stats)
	}
}
