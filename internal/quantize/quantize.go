// Package quantize provides score-quantization preprocessing for
// active monotone classification. Theorem 2 prices the labeling
// budget at O((w/ε²)·polylog), and continuous similarity scores
// produce wide posets (few comparable pairs, large w). Snapping each
// coordinate to a small grid collapses the width — often by an order
// of magnitude — at the cost of merging points the classifier can no
// longer distinguish, i.e. a (usually small) increase in the best
// achievable error k*. The Tradeoff helper quantifies exactly that
// exchange so callers can pick a level deliberately.
//
// Quantization is monotone coordinate-wise, so it preserves dominance:
// p ⪰ q implies Q(p) ⪰ Q(q). A classifier trained on the quantized
// space is composed with Q at prediction time and therefore remains a
// monotone classifier on the original space.
package quantize

import (
	"fmt"
	"math"
	"sort"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

// Uniform snaps every coordinate to the grid {0, 1/levels, ...,
// 1}-scaled to the coordinate's [min, max] range: value v maps to
// round((v-min)/(max-min)·levels)/levels·(max-min)+min. It returns a
// new point slice; the input is untouched. levels must be at least 1.
func Uniform(pts []geom.Point, levels int) []geom.Point {
	if levels < 1 {
		panic(fmt.Sprintf("quantize: levels %d must be at least 1", levels))
	}
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	mins := make([]float64, d)
	maxs := make([]float64, d)
	for k := 0; k < d; k++ {
		mins[k] = math.Inf(1)
		maxs[k] = math.Inf(-1)
	}
	for _, p := range pts {
		for k, v := range p {
			if v < mins[k] {
				mins[k] = v
			}
			if v > maxs[k] {
				maxs[k] = v
			}
		}
	}
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		q := make(geom.Point, d)
		for k, v := range p {
			span := maxs[k] - mins[k]
			if span == 0 {
				q[k] = mins[k]
				continue
			}
			q[k] = math.Round((v-mins[k])/span*float64(levels))/float64(levels)*span + mins[k]
		}
		out[i] = q
	}
	return out
}

// ByQuantiles snaps every coordinate to one of `levels` empirical
// quantile buckets (each bucket is represented by its lower quantile
// value), which adapts the grid to the data distribution: dense score
// regions receive finer resolution than Uniform gives them.
func ByQuantiles(pts []geom.Point, levels int) []geom.Point {
	if levels < 1 {
		panic(fmt.Sprintf("quantize: levels %d must be at least 1", levels))
	}
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	// Per dimension: sorted values -> bucket boundaries.
	boundaries := make([][]float64, d)
	vals := make([]float64, len(pts))
	for k := 0; k < d; k++ {
		for i, p := range pts {
			vals[i] = p[k]
		}
		sort.Float64s(vals)
		bs := make([]float64, 0, levels)
		for b := 0; b < levels; b++ {
			bs = append(bs, vals[b*len(vals)/levels])
		}
		boundaries[k] = bs
	}
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		q := make(geom.Point, d)
		for k, v := range p {
			bs := boundaries[k]
			// Largest boundary <= v (first boundary is the minimum).
			lo := sort.SearchFloat64s(bs, v)
			if lo == len(bs) || bs[lo] > v {
				lo--
			}
			q[k] = bs[lo]
		}
		out[i] = q
	}
	return out
}

// Composed wraps a classifier trained on quantized points so it
// accepts raw points: prediction quantizes first. The wrapper is
// monotone whenever the inner classifier is, because both quantizers
// are coordinate-wise monotone maps.
type Composed struct {
	Inner classifier.Classifier
	Quant func(geom.Point) geom.Point
}

// Classify implements classifier.Classifier.
func (c Composed) Classify(p geom.Point) geom.Label { return c.Inner.Classify(c.Quant(p)) }

// LevelStats summarizes the effect of one quantization level.
type LevelStats struct {
	Levels int
	Width  int     // dominance width after quantization
	KStar  float64 // optimal error achievable on the quantized points
}

// Tradeoff evaluates a sweep of quantization levels on a labeled set,
// reporting the width reduction and the cost in optimal error.
// kstarFn computes the optimal error of a weighted set (callers pass
// the passive solver; injected to avoid an import cycle).
func Tradeoff(lab []geom.LabeledPoint, levels []int, kstarFn func(geom.WeightedSet) (float64, error)) ([]LevelStats, error) {
	var out []LevelStats
	for _, lv := range levels {
		pts := make([]geom.Point, len(lab))
		for i, lp := range lab {
			pts[i] = lp.P
		}
		qpts := Uniform(pts, lv)
		ws := make(geom.WeightedSet, len(lab))
		for i := range lab {
			ws[i] = geom.WeightedPoint{P: qpts[i], Label: lab[i].Label, Weight: 1}
		}
		kstar, err := kstarFn(ws)
		if err != nil {
			return nil, err
		}
		out = append(out, LevelStats{Levels: lv, Width: chains.Width(qpts), KStar: kstar})
	}
	return out, nil
}
