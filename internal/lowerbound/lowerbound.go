// Package lowerbound implements the Section 6 construction behind
// Theorem 1: a family P of n one-dimensional inputs on the points
// {1, ..., n} such that any algorithm returning an optimal monotone
// classifier on more than 2/3 of the family must spend Ω(n) probes on
// average. Experiment E6 replays the proof as a measurement: the
// pair-probing strategies of Lemma 19 trace the exact
// cost-vs-accuracy tradeoff the proof derives.
package lowerbound

import (
	"fmt"
	"math"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// Kind distinguishes the two anomaly types of the family.
type Kind uint8

// The two input kinds of Section 6.1.
const (
	Kind00 Kind = iota // P_00(i): pair (2i-1, 2i) labeled (0, 0)
	Kind11             // P_11(i): pair (2i-1, 2i) labeled (1, 1)
)

// Instance is one input of the family: the points are always
// {1, ..., n}; only the labels differ.
type Instance struct {
	N    int  // even input size
	Kind Kind // which anomaly
	I    int  // anomaly pair index, 1-based in [1, n/2]
}

// Points returns the shared point set {1, 2, ..., n} in order.
func Points(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{float64(i + 1)}
	}
	return pts
}

// Labels materializes the instance's label vector: by default odd
// points carry 1 and even points 0; the anomaly pair (2I-1, 2I) is
// overridden to (0,0) for Kind00 or (1,1) for Kind11.
func (ins Instance) Labels() []geom.Label {
	labels := make([]geom.Label, ins.N)
	for i := range labels {
		if (i+1)%2 == 1 {
			labels[i] = geom.Positive
		}
	}
	switch ins.Kind {
	case Kind00:
		labels[2*ins.I-2] = geom.Negative // point 2I-1
	case Kind11:
		labels[2*ins.I-1] = geom.Positive // point 2I
	}
	return labels
}

// OptimalError returns the minimum monotone-classifier error on any
// family instance: n/2 - 1 (every normal pair forces one error; the
// all-0 or all-1 classifier achieves it).
func OptimalError(n int) int { return n/2 - 1 }

// Family enumerates all n instances: P_00(1..n/2) then P_11(1..n/2).
// n must be even and at least 4.
func Family(n int) []Instance {
	if n < 4 || n%2 != 0 {
		panic(fmt.Sprintf("lowerbound: family size %d must be even and >= 4", n))
	}
	out := make([]Instance, 0, n)
	for i := 1; i <= n/2; i++ {
		out = append(out, Instance{N: n, Kind: Kind00, I: i})
	}
	for i := 1; i <= n/2; i++ {
		out = append(out, Instance{N: n, Kind: Kind11, I: i})
	}
	return out
}

// IsOptimal reports whether the 1-D threshold classifier h is optimal
// for the instance, i.e. errs on exactly OptimalError(n) points.
func (ins Instance) IsOptimal(h classifier.Threshold1D) bool {
	labels := ins.Labels()
	pts := Points(ins.N)
	errs := 0
	for i := range pts {
		if h.Classify(pts[i]) != labels[i] {
			errs++
		}
	}
	return errs == OptimalError(ins.N)
}

// GameResult aggregates a strategy's performance over the family.
type GameResult struct {
	NonOptCount int // inputs where the output classifier is non-optimal
	TotalCost   int // total pair-probes across the family
}

// PairProbeStrategy is the empowered deterministic algorithm of
// Lemma 19: it probes whole pairs in a fixed order x_1, ..., x_ℓ
// (1-based pair indices); finding the anomaly lets it answer
// optimally, otherwise it outputs the fixed all-negative classifier
// h_det (τ = n, optimal for every 00-input but non-optimal for
// unprobed 11-inputs).
type PairProbeStrategy struct {
	Order []int // pair indices to probe, each in [1, n/2]
}

// Play runs the strategy on one instance and returns the number of
// pair-probes spent and whether the returned classifier is optimal.
func (s PairProbeStrategy) Play(ins Instance) (cost int, optimal bool) {
	labels := ins.Labels()
	for j, pair := range s.Order {
		a := labels[2*pair-2] // point 2·pair-1
		b := labels[2*pair-1] // point 2·pair
		if a == b {
			// Anomaly caught: the algorithm knows the entire input.
			// All-1 is optimal for a 11-input, all-0 for a 00-input.
			return j + 1, true
		}
	}
	// No anomaly found: output h_det = all-negative (τ = n).
	h := classifier.Threshold1D{Tau: float64(ins.N)}
	return len(s.Order), ins.IsOptimal(h)
}

// RunGame plays the strategy against every instance of the family.
func RunGame(n int, s PairProbeStrategy) GameResult {
	var res GameResult
	for _, ins := range Family(n) {
		cost, optimal := s.Play(ins)
		res.TotalCost += cost
		if !optimal {
			res.NonOptCount++
		}
	}
	return res
}

// PredictedCost returns the closed-form total pair-probe cost of a
// Lemma-19 strategy with budget ℓ on the size-n family:
//
//	2ℓ·(n/2-ℓ) + 2·Σ_{j=1..ℓ} j = nℓ - ℓ² + ℓ
//
// (unprobed inputs cost ℓ each; the probed pair x_j is caught at step
// j on both of its inputs). The paper states the same quantity in
// single-point probes, which doubles every term; the tradeoff shape is
// identical.
func PredictedCost(n, l int) int { return n*l - l*l + l }

// PredictedNonOpt returns the closed-form non-optimal count of the
// canonical strategy with budget ℓ: the strategy errs on exactly the
// n/2-ℓ unprobed 11-inputs (Eq. (33) with equality).
func PredictedNonOpt(n, l int) int { return n/2 - l }

// Oracle builds a probing oracle for the instance so that general
// active algorithms (e.g. the core algorithm or baselines) can be run
// against the hard family, point by point.
func (ins Instance) Oracle() *oracle.Static { return oracle.NewStatic(ins.Labels()) }

// NoCommonOptimum verifies Lemma 21 computationally for a given n and
// pair index i: it returns true when no threshold classifier is
// optimal for both P_00(i) and P_11(i).
func NoCommonOptimum(n, i int) bool {
	p00 := Instance{N: n, Kind: Kind00, I: i}
	p11 := Instance{N: n, Kind: Kind11, I: i}
	taus := []float64{math.Inf(-1)}
	for v := 1; v <= n; v++ {
		taus = append(taus, float64(v))
	}
	for _, tau := range taus {
		h := classifier.Threshold1D{Tau: tau}
		if p00.IsOptimal(h) && p11.IsOptimal(h) {
			return false
		}
	}
	return true
}
