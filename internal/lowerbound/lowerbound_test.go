package lowerbound

import (
	"math"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

func TestLabels(t *testing.T) {
	ins := Instance{N: 8, Kind: Kind00, I: 2}
	got := ins.Labels()
	// Default: 1,0,1,0,1,0,1,0 — anomaly flips point 3 (index 2) to 0.
	want := []geom.Label{1, 0, 0, 0, 1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("P00(2) labels = %v, want %v", got, want)
		}
	}
	ins = Instance{N: 8, Kind: Kind11, I: 3}
	got = ins.Labels()
	// Anomaly sets point 6 (index 5) to 1.
	want = []geom.Label{1, 0, 1, 0, 1, 1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("P11(3) labels = %v, want %v", got, want)
		}
	}
}

// The optimal monotone error on every family instance must be exactly
// n/2 - 1 (verified against the exact passive solver).
func TestOptimalErrorMatchesSolver(t *testing.T) {
	const n = 12
	pts := Points(n)
	for _, ins := range Family(n) {
		labels := ins.Labels()
		ws := make(geom.WeightedSet, n)
		for i := range pts {
			ws[i] = geom.WeightedPoint{P: pts[i], Label: labels[i], Weight: 1}
		}
		kstar, err := passive.OptimalError(ws)
		if err != nil {
			t.Fatal(err)
		}
		if int(kstar) != OptimalError(n) {
			t.Fatalf("%+v: k* = %g, want %d", ins, kstar, OptimalError(n))
		}
	}
}

func TestFamilySizeAndValidation(t *testing.T) {
	fam := Family(10)
	if len(fam) != 10 {
		t.Errorf("family size %d, want 10", len(fam))
	}
	count00 := 0
	for _, ins := range fam {
		if ins.Kind == Kind00 {
			count00++
		}
	}
	if count00 != 5 {
		t.Errorf("%d 00-inputs, want 5", count00)
	}
	for _, bad := range []int{3, 7, 2, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Family(%d) should panic", bad)
				}
			}()
			Family(bad)
		}()
	}
}

// Lemma 21: no classifier is optimal for both P00(i) and P11(i).
func TestLemma21NoCommonOptimum(t *testing.T) {
	for _, n := range []int{4, 8, 14} {
		for i := 1; i <= n/2; i++ {
			if !NoCommonOptimum(n, i) {
				t.Errorf("n=%d i=%d: a common optimum exists, contradicting Lemma 21", n, i)
			}
		}
	}
}

// The measured game must match the closed-form cost and accuracy of
// Lemma 19 exactly, for every budget ℓ.
func TestRunGameMatchesClosedForm(t *testing.T) {
	const n = 40
	for l := 0; l <= n/2; l++ {
		order := make([]int, l)
		for j := range order {
			order[j] = j + 1
		}
		res := RunGame(n, PairProbeStrategy{Order: order})
		if res.TotalCost != PredictedCost(n, l) {
			t.Errorf("ℓ=%d: cost %d, predicted %d", l, res.TotalCost, PredictedCost(n, l))
		}
		if res.NonOptCount != PredictedNonOpt(n, l) {
			t.Errorf("ℓ=%d: nonopt %d, predicted %d", l, res.NonOptCount, PredictedNonOpt(n, l))
		}
	}
}

// The quantitative heart of Theorem 1: any pair-probing budget that
// achieves nonoptcnt <= n/3 forces total cost Ω(n²), i.e. Ω(n) per
// instance.
func TestLowerBoundTradeoff(t *testing.T) {
	const n = 200
	for l := 0; l <= n/2; l++ {
		nonopt := PredictedNonOpt(n, l)
		cost := PredictedCost(n, l)
		if nonopt <= n/3 {
			// ℓ >= n/2 - n/3 = n/6, so cost >= n·n/6 - (n/6)² ~ 5n²/36.
			if cost < n*n/8 {
				t.Errorf("ℓ=%d: accurate strategy with cost %d < n²/8", l, cost)
			}
			if avg := float64(cost) / float64(n); avg < float64(n)/8 {
				t.Errorf("ℓ=%d: average cost %g not Ω(n)", l, avg)
			}
		}
	}
}

func TestPlayCatchesAnomaly(t *testing.T) {
	ins := Instance{N: 8, Kind: Kind11, I: 2}
	// Probing pair 2 first catches the anomaly at cost 1, optimally.
	cost, optimal := PairProbeStrategy{Order: []int{2, 1, 3}}.Play(ins)
	if cost != 1 || !optimal {
		t.Errorf("cost=%d optimal=%v, want 1/true", cost, optimal)
	}
	// Probing other pairs first pays for each miss.
	cost, optimal = PairProbeStrategy{Order: []int{1, 3, 2}}.Play(ins)
	if cost != 3 || !optimal {
		t.Errorf("cost=%d optimal=%v, want 3/true", cost, optimal)
	}
	// Never probing the anomaly: h_det is all-negative, which is
	// non-optimal exactly on 11-inputs.
	cost, optimal = PairProbeStrategy{Order: []int{1, 3}}.Play(ins)
	if cost != 2 || optimal {
		t.Errorf("cost=%d optimal=%v, want 2/false", cost, optimal)
	}
	ins00 := Instance{N: 8, Kind: Kind00, I: 2}
	_, optimal = PairProbeStrategy{Order: []int{1}}.Play(ins00)
	if !optimal {
		t.Error("all-negative h_det must be optimal for 00-inputs")
	}
}

func TestIsOptimal(t *testing.T) {
	ins := Instance{N: 8, Kind: Kind00, I: 1}
	// All-negative (tau >= 8) is optimal for 00-inputs.
	if !ins.IsOptimal(classifier.Threshold1D{Tau: 8}) {
		t.Error("all-negative should be optimal for P00")
	}
	// All-positive errs on the n/2+1 zeros of a 00-input.
	if ins.IsOptimal(classifier.Threshold1D{Tau: math.Inf(-1)}) {
		t.Error("all-positive should be non-optimal for P00")
	}
	ins11 := Instance{N: 8, Kind: Kind11, I: 1}
	if !ins11.IsOptimal(classifier.Threshold1D{Tau: math.Inf(-1)}) {
		t.Error("all-positive should be optimal for P11")
	}
}

func TestInstanceOracle(t *testing.T) {
	ins := Instance{N: 4, Kind: Kind00, I: 1}
	o := ins.Oracle()
	if o.Len() != 4 {
		t.Fatal("oracle size wrong")
	}
	labels := ins.Labels()
	for i := 0; i < 4; i++ {
		got, err := o.Probe(i)
		if err != nil || got != labels[i] {
			t.Fatalf("oracle label %d wrong", i)
		}
	}
}

func TestPoints(t *testing.T) {
	pts := Points(3)
	if len(pts) != 3 || pts[0][0] != 1 || pts[2][0] != 3 {
		t.Error("Points wrong")
	}
}
