package core

import (
	"math/rand"
	"sync"
	"testing"

	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// ActiveLearn's parallel chain fan-out must be deterministic given the
// seed, independent of goroutine scheduling.
func TestActiveLearnParallelDeterminism(t *testing.T) {
	lab := dataset.WidthControlled(rand.New(rand.NewSource(3)), dataset.WidthParams{N: 8000, W: 8, Noise: 0.1})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	run := func() geom.WeightedSet {
		res, err := ActiveLearn(pts, oracle.FromLabeled(lab), PracticalParams(0.5, 0.05), rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Sigma
	}
	a := run()
	for attempt := 0; attempt < 3; attempt++ {
		b := run()
		if len(a) != len(b) {
			t.Fatalf("non-deterministic Σ size: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if !a[i].P.Equal(b[i].P) || a[i].Label != b[i].Label || a[i].Weight != b[i].Weight {
				t.Fatalf("non-deterministic Σ at %d", i)
			}
		}
	}
}

// A stateful oracle shared across chains must not race; the race
// detector (go test -race) exercises this path.
func TestActiveLearnParallelWithStatefulOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 6000, W: 12, Noise: 0.05})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	in := oracle.InstrumentLabeled(lab)
	if _, err := ActiveLearn(pts, in.O, PracticalParams(1, 0.05), rng); err != nil {
		t.Fatal(err)
	}
	if in.DistinctProbes() == 0 || in.DistinctProbes() > len(pts) {
		t.Errorf("probe accounting wrong under parallelism: %d", in.DistinctProbes())
	}
}

// An oracle stack that does not advertise concurrency safety (Noisy
// keeps an unguarded rng and map) must still work through the parallel
// fan-out: runChainsParallel wraps it in lockedOracle. The race
// detector proves the fallback actually serializes.
func TestActiveLearnParallelUnsafeOracleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 4000, W: 10, Noise: 0})
	pts := make([]geom.Point, len(lab))
	truth := make([]geom.Label, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
		truth[i] = lp.Label
	}
	noisy := oracle.NewNoisy(oracle.NewStatic(truth), 0.05, rand.New(rand.NewSource(12)))
	if oracle.IsConcurrentSafe(noisy) {
		t.Fatal("Noisy must not advertise concurrency safety")
	}
	if _, err := ActiveLearn(pts, noisy, PracticalParams(1, 0.05), rng); err != nil {
		t.Fatal(err)
	}
}

func TestLockedOracleConcurrency(t *testing.T) {
	labels := make([]geom.Label, 100)
	counting := oracle.NewCounting(oracle.NewStatic(labels))
	locked := &lockedOracle{inner: counting}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := locked.Probe(i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counting.Probes() != 800 {
		t.Errorf("probes = %d, want 800", counting.Probes())
	}
	if locked.Len() != 100 {
		t.Error("Len not forwarded")
	}
}
