package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/sampling"
)

// WeightedLabel is one element of the fully-labeled weighted sample Σ
// (Section 3.5): a probed input point (by oracle index) together with
// its revealed label and the weight assigned by the level that sampled
// it.
type WeightedLabel struct {
	Item   int // index into the input set P
	Label  geom.Label
	Weight float64
}

// Run1D executes the Section 3 algorithm on a totally ordered subset
// of the input: items[i] is an oracle index and keys[i] its position
// on the 1-D axis; keys must be sorted in non-decreasing order (chain
// runs use the position index itself, so keys are strictly
// increasing). It returns the weighted sample Σ; by Lemma 13 the
// framework's estimate f(h^τ) equals w-err_Σ(h^τ) for every threshold
// classifier, and by (8)–(10) minimizing w-err_Σ yields a
// (1+ε)-approximate threshold with probability 1-δ.
//
// The probing cost is O((1/ε²)·log m·log(m/δ)) oracle calls for
// m = len(items) (Lemma 9); calls are made through o, so wrap it with
// the oracle package's instrumentation to measure.
func Run1D(o oracle.Oracle, items []int, keys []float64, par Params, rng *rand.Rand) ([]WeightedLabel, error) {
	if err := par.validate(); err != nil {
		return nil, err
	}
	if len(items) != len(keys) {
		return nil, fmt.Errorf("core: %d items but %d keys", len(items), len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("core: keys not sorted at position %d", i)
		}
	}
	if len(items) == 0 {
		return nil, nil
	}
	r := &run1d{
		o:     o,
		items: items,
		keys:  keys,
		par:   par,
		rng:   rng,
		depth: maxDepth(len(items)),
	}
	if par.exhaustive() {
		return r.probeAll(0, len(items))
	}
	return r.recurse(0, len(items), 1)
}

// run1d carries the shared state of one Run1D invocation. Levels
// operate on contiguous slices [lo, hi) of the key-sorted items.
type run1d struct {
	o     oracle.Oracle
	items []int
	keys  []float64
	par   Params
	rng   *rand.Rand
	depth int // precomputed recursion bound h
}

// probeAll reveals every label in [lo, hi) and returns them as an
// exact (weight-1) sample: the base case of Section 3.2 and the
// fallback whenever sampling cannot beat exhaustive probing.
func (r *run1d) probeAll(lo, hi int) ([]WeightedLabel, error) {
	out := make([]WeightedLabel, 0, hi-lo)
	for i := lo; i < hi; i++ {
		label, err := r.o.Probe(r.items[i])
		if err != nil {
			return nil, fmt.Errorf("core: probing item %d: %w", r.items[i], err)
		}
		out = append(out, WeightedLabel{Item: r.items[i], Label: label, Weight: 1})
	}
	return out, nil
}

// levelSampleSize returns the Lemma-5 sample size for one estimator at
// a level of population m: absolute error φ·m on a count estimate with
// per-estimator failure probability δ/(2h(m+1)), union-bounded over
// the m+1 effective thresholds and the 2h estimators of the run.
func (r *run1d) levelSampleSize(m int) int {
	phi := r.par.Epsilon / r.par.PhiDivisor
	deltaLevel := r.par.Delta / (2 * float64(r.depth) * float64(m+1))
	if deltaLevel >= 1 {
		deltaLevel = 0.5
	}
	return sampling.SampleSize(phi, deltaLevel, 1, r.par.SampleConstant)
}

// sampledErr evaluates the scaled empirical error function
// g(h^τ) = (pop/|S|)·err_S(h^τ) on a probed sample, for all candidate
// thresholds, and locates the region where g < bar.
type sampledErr struct {
	// sorted distinct sample keys and, for each, the g value on the
	// half-open interval starting at that key.
	starts   []float64
	vals     []float64
	atNegInf float64 // g value on (-inf, starts[0])
}

// buildSampledErr probes the with-replacement sample draws (indices
// into [lo, hi)) and assembles the step function g.
func (r *run1d) buildSampledErr(lo int, draws []int, pop int) (sampledErr, error) {
	type obs struct {
		key   float64
		label geom.Label
	}
	observations := make([]obs, len(draws))
	for i, rel := range draws {
		idx := lo + rel
		label, err := r.o.Probe(r.items[idx])
		if err != nil {
			return sampledErr{}, fmt.Errorf("core: probing item %d: %w", r.items[idx], err)
		}
		observations[i] = obs{key: r.keys[idx], label: label}
	}
	sort.Slice(observations, func(i, j int) bool { return observations[i].key < observations[j].key })

	scale := float64(pop) / float64(len(draws))
	// At τ = -inf every sample point is classified 1: the error is the
	// number of label-0 observations. Sweeping τ right past a key
	// flips that key's observations to predicted 0.
	errNow := 0
	for _, ob := range observations {
		if ob.label == geom.Negative {
			errNow++
		}
	}
	se := sampledErr{atNegInf: float64(errNow) * scale}
	for i := 0; i < len(observations); {
		j := i
		for j < len(observations) && observations[j].key == observations[i].key {
			if observations[j].label == geom.Positive {
				errNow++
			} else {
				errNow--
			}
			j++
		}
		se.starts = append(se.starts, observations[i].key)
		se.vals = append(se.vals, float64(errNow)*scale)
		i = j
	}
	return se, nil
}

// qualifyingRange finds the span of thresholds where g < bar:
// alpha is the smallest such threshold (possibly -Inf) and hiSup the
// supremum key after the last qualifying interval (possibly +Inf).
// found is false when no threshold qualifies.
func (se sampledErr) qualifyingRange(bar float64) (alpha, hiSup float64, found bool) {
	alpha = math.Inf(1)
	hiSup = math.Inf(-1)
	if se.atNegInf < bar {
		alpha = math.Inf(-1)
		found = true
		if len(se.starts) > 0 {
			hiSup = se.starts[0]
		} else {
			hiSup = math.Inf(1)
		}
	}
	for i, v := range se.vals {
		if v >= bar {
			continue
		}
		found = true
		if se.starts[i] < alpha {
			alpha = se.starts[i]
		}
		if i+1 < len(se.starts) {
			if se.starts[i+1] > hiSup {
				hiSup = se.starts[i+1]
			}
		} else {
			hiSup = math.Inf(1)
		}
	}
	return alpha, hiSup, found
}

// emitTrace reports one level to the installed tracer, if any.
func (r *run1d) emitTrace(tr LevelTrace) {
	if r.par.Trace != nil {
		r.par.Trace(tr)
	}
}

// recurse implements one level of the Section 3.2 framework on the
// population [lo, hi).
func (r *run1d) recurse(lo, hi, level int) ([]WeightedLabel, error) {
	m := hi - lo
	if m == 0 {
		return nil, nil
	}
	// Base case |P| <= 7 (and a depth guard: the recursion provably
	// shrinks by 5/8 per level when the estimates hold, so exceeding
	// the precomputed bound means an estimate failed; exhaustive
	// probing restores exactness on the residual population).
	if m <= r.par.BaseCase || level > r.depth {
		r.emitTrace(LevelTrace{Depth: level, Size: m, Exhaustive: true})
		return r.probeAll(lo, hi)
	}
	t := r.levelSampleSize(m)
	if t >= m {
		// Sampling cannot beat revealing every label.
		r.emitTrace(LevelTrace{Depth: level, Size: m, SampleSize: t, Exhaustive: true})
		return r.probeAll(lo, hi)
	}

	// g1: scaled empirical error from sample S1 of the population.
	s1 := sampling.WithReplacement(r.rng, m, t)
	g1, err := r.buildSampledErr(lo, s1, m)
	if err != nil {
		return nil, err
	}
	// The level bar |P|·(1/4 - φ) of Section 3.2, with φ = ε/PhiDivisor.
	bar := float64(m) * (0.25 - r.par.Epsilon/r.par.PhiDivisor)
	alpha, hiSup, found := g1.qualifyingRange(bar)

	if !found {
		// α and β do not exist: f = g1, Σ = S1 with weight m/|S1|.
		r.emitTrace(LevelTrace{Depth: level, Size: m, SampleSize: t})
		return r.collectSample(lo, s1, float64(m)/float64(len(s1)))
	}

	// P' = points with key in [alpha, hiSup); contiguous because the
	// items are key-sorted.
	pLo := lo + sort.SearchFloat64s(r.keys[lo:hi], alpha)
	pHi := lo + sort.SearchFloat64s(r.keys[lo:hi], hiSup)
	if pHi-pLo >= m {
		// No shrink: an estimate must have failed (Lemma 10 bounds
		// |P'| by 5/8·|P| otherwise). Fall back to exactness.
		r.emitTrace(LevelTrace{
			Depth: level, Size: m, SampleSize: t, Exhaustive: true,
			BandFound: true, Alpha: alpha, HiSup: hiSup,
		})
		return r.probeAll(lo, hi)
	}
	r.emitTrace(LevelTrace{
		Depth: level, Size: m, SampleSize: t,
		BandFound: true, Alpha: alpha, HiSup: hiSup, NextSize: pHi - pLo,
	})

	// g2: scaled empirical error over P \ P' via sample S2; its
	// contribution to Σ carries weight |P\P'|/|S2|.
	rest := m - (pHi - pLo)
	var sigma []WeightedLabel
	if rest > 0 {
		t2 := t
		if t2 >= rest {
			// Exhaust the complement exactly (weight 1).
			exact, err := r.probeAll(lo, pLo)
			if err != nil {
				return nil, err
			}
			sigma = append(sigma, exact...)
			exact, err = r.probeAll(pHi, hi)
			if err != nil {
				return nil, err
			}
			sigma = append(sigma, exact...)
		} else {
			draws := sampling.WithReplacement(r.rng, rest, t2)
			// Map relative draw positions onto the two complement
			// segments [lo, pLo) and [pHi, hi).
			leftLen := pLo - lo
			abs := make([]int, len(draws))
			for i, d := range draws {
				if d < leftLen {
					abs[i] = d // relative to lo
				} else {
					abs[i] = (pHi - lo) + (d - leftLen)
				}
			}
			part, err := r.collectSample(lo, abs, float64(rest)/float64(len(draws)))
			if err != nil {
				return nil, err
			}
			sigma = append(sigma, part...)
		}
	}

	// Recurse on P'.
	inner, err := r.recurse(pLo, pHi, level+1)
	if err != nil {
		return nil, err
	}
	return append(sigma, inner...), nil
}

// collectSample probes the draws (relative to lo) and returns them as
// Σ entries with the given weight.
func (r *run1d) collectSample(lo int, draws []int, weight float64) ([]WeightedLabel, error) {
	out := make([]WeightedLabel, 0, len(draws))
	for _, rel := range draws {
		idx := lo + rel
		label, err := r.o.Probe(r.items[idx])
		if err != nil {
			return nil, fmt.Errorf("core: probing item %d: %w", r.items[idx], err)
		}
		out = append(out, WeightedLabel{Item: r.items[idx], Label: label, Weight: weight})
	}
	return out, nil
}
