package core

import (
	"math/rand"
	"runtime"
	"sync"

	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// runChainsParallel executes the Section 3 sampler on every chain,
// fanning the independent per-chain runs across CPU cores. The result
// is deterministic regardless of scheduling: each chain receives its
// own rand.Rand seeded from the master generator before any goroutine
// starts, and Σ parts are concatenated in chain order.
//
// Oracle stacks that advertise concurrency safety (see
// oracle.ConcurrentSafe — the standard static/counting/caching stack
// qualifies) are probed directly from all workers; anything else is
// serialized behind a mutex as a conservative fallback.
func runChainsParallel(o oracle.Oracle, chainSets [][]int, par Params, rng *rand.Rand) ([]WeightedLabel, error) {
	// Derive per-chain seeds up front so the master generator is
	// consumed identically whatever the worker count.
	seeds := make([]int64, len(chainSets))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	shared := o
	if !oracle.IsConcurrentSafe(o) {
		shared = &lockedOracle{inner: o}
	}
	parts := make([][]WeightedLabel, len(chainSets))
	errs := make([]error, len(chainSets))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(chainSets) {
		workers = len(chainSets)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				chain := chainSets[c]
				keys := make([]float64, len(chain))
				for i := range chain {
					keys[i] = float64(i) // chain position is the 1-D axis
				}
				parts[c], errs[c] = Run1D(shared, chain, keys, par, rand.New(rand.NewSource(seeds[c])))
			}
		}()
	}
	for c := range chainSets {
		next <- c
	}
	close(next)
	wg.Wait()

	var sigma []WeightedLabel
	for c := range chainSets {
		if errs[c] != nil {
			return nil, errs[c]
		}
		sigma = append(sigma, parts[c]...)
	}
	return sigma, nil
}

// lockedOracle makes any oracle safe for concurrent probing.
type lockedOracle struct {
	mu    sync.Mutex
	inner oracle.Oracle
}

// Probe implements oracle.Oracle.
func (l *lockedOracle) Probe(i int) (geom.Label, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Probe(i)
}

// Len implements oracle.Oracle.
func (l *lockedOracle) Len() int { return l.inner.Len() }
