package core

import "math"

// LevelTrace records one recursion level of the Section 3 framework,
// exposing the quantities its analysis reasons about: the population
// size, the Lemma-5 sample size, whether the level fell back to
// exhaustive probing, the located band [Alpha, HiSup), and the size of
// the surviving population P'. Lemma 10 predicts
// NextSize <= ceil(5/8 · Size) whenever the estimates held.
type LevelTrace struct {
	Depth      int     // recursion depth, 1-based
	Size       int     // |P| at this level
	SampleSize int     // Lemma-5 sample size t for each estimator
	Exhaustive bool    // level probed everything (base case, t >= |P|, or guard)
	BandFound  bool    // α/β existed (recursion continued)
	Alpha      float64 // band start (valid when BandFound)
	HiSup      float64 // band supremum (valid when BandFound)
	NextSize   int     // |P'| (0 when the recursion stopped here)
}

// Tracer receives one LevelTrace per recursion level, in execution
// order. Install via Params.Trace; nil means no tracing. Chain runs of
// the multi-dimensional algorithm each produce their own level
// sequence (identified by monotonically restarting Depth).
//
// Tracing is a diagnostic hook: it must not mutate anything. When the
// multi-dimensional pipeline fans chains across goroutines, the
// tracer is invoked concurrently; installers must synchronize.
type Tracer func(LevelTrace)

// shrinkBound returns the Lemma 10 bound ceil(5/8 · m) on |P'|.
func shrinkBound(m int) int {
	return int(math.Ceil(5.0 / 8.0 * float64(m)))
}
