package core

import (
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

func split(lab []geom.LabeledPoint) ([]geom.Point, *oracle.Static) {
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	return pts, oracle.FromLabeled(lab)
}

func TestActiveLearnFigure1(t *testing.T) {
	lab := dataset.Figure1()
	pts, o := split(lab)
	rng := rand.New(rand.NewSource(21))
	// Theory params at n=16 degrade to exhaustive probing, which is
	// exact: the result must be an optimal classifier with error 3.
	res, err := ActiveLearn(pts, o, TheoryParams(0.5, 0.01), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 6 {
		t.Errorf("width = %d, want 6", res.Width)
	}
	if got := geom.Err(lab, res.Classifier.Classify); got != 3 {
		t.Errorf("err_P = %d, want the optimum 3", got)
	}
	if res.Probes != 16 {
		t.Errorf("probes = %d, want 16 (exhaustive at this size)", res.Probes)
	}
}

func TestActiveLearnNoiselessMultiDim(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 400, D: 3, Noise: 0})
	pts, o := split(lab)
	res, err := ActiveLearn(pts, o, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	// k* = 0: Theorem 2 promises an optimal classifier whp.
	if got := geom.Err(lab, res.Classifier.Classify); got != 0 {
		t.Errorf("err_P = %d, want 0 on a monotone-consistent input", got)
	}
	if ok, p, q := classifier.IsMonotoneOn(pts, res.Classifier); !ok {
		t.Errorf("returned classifier not monotone: %v vs %v", p, q)
	}
}

func TestActiveLearnApproximationOnWidthControlled(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const eps = 0.5
	var ratios []float64
	for trial := 0; trial < 6; trial++ {
		lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 4000, W: 5, Noise: 0.08})
		pts, o := split(lab)
		ld := geom.LabeledDataset{Points: lab}
		kstar, err := passive.OptimalError(ld.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if kstar == 0 {
			continue
		}
		res, err := ActiveLearn(pts, o, PracticalParams(eps, 0.05), rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Width != 5 {
			t.Fatalf("trial %d: width %d, want 5", trial, res.Width)
		}
		got := float64(geom.Err(lab, res.Classifier.Classify))
		ratios = append(ratios, got/kstar)
	}
	if len(ratios) == 0 {
		t.Fatal("no usable trials")
	}
	var sum, worst float64
	for _, r := range ratios {
		sum += r
		if r > worst {
			worst = r
		}
	}
	if mean := sum / float64(len(ratios)); mean > 1+eps {
		t.Errorf("mean error ratio %g exceeds 1+ε = %g (ratios %v)", mean, 1+eps, ratios)
	}
	if worst > 1+2*eps {
		t.Errorf("worst error ratio %g far beyond 1+ε (ratios %v)", worst, ratios)
	}
}

func TestActiveLearnProbesScaleWithWidthNotSize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 30000
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: 3, Noise: 0.05})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	in := oracle.InstrumentLabeled(lab)
	res, err := ActiveLearn(pts, in.O, PracticalParams(1, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes >= n/3 {
		t.Errorf("probes = %d on n = %d, w = 3: expected clearly sublinear", res.Probes, n)
	}
	if res.Probes != in.DistinctProbes() {
		t.Errorf("Result.Probes %d disagrees with oracle instrumentation %d", res.Probes, in.DistinctProbes())
	}
}

func TestActiveLearnSigmaMinimizer(t *testing.T) {
	// The returned classifier must minimize w-err over Σ: no threshold
	// or random anchor classifier may beat it on Σ.
	rng := rand.New(rand.NewSource(37))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 800, D: 2, Noise: 0.1})
	pts, o := split(lab)
	res, err := ActiveLearn(pts, o, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := geom.WErr(res.Sigma, res.Classifier.Classify); got != res.SigmaWErr {
		t.Fatalf("SigmaWErr %g but classifier achieves %g on Σ", res.SigmaWErr, got)
	}
	for probe := 0; probe < 60; probe++ {
		anchors := make([]geom.Point, 1+rng.Intn(3))
		for a := range anchors {
			anchors[a] = geom.Point{rng.Float64(), rng.Float64()}
		}
		h := classifier.MustAnchorSet(2, anchors)
		if got := geom.WErr(res.Sigma, h.Classify); got < res.SigmaWErr-1e-9 {
			t.Fatalf("random classifier beats the Σ-minimizer: %g < %g", got, res.SigmaWErr)
		}
	}
}

func TestActiveLearnValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ActiveLearn(nil, oracle.NewStatic(nil), PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("empty input accepted")
	}
	pts := []geom.Point{{1, 2}}
	if _, err := ActiveLearn(pts, oracle.NewStatic(nil), PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("oracle size mismatch accepted")
	}
	if _, err := ActiveLearn(pts, oracle.NewStatic([]geom.Label{0}), PracticalParams(0.5, 0), rng); err == nil {
		t.Error("invalid delta accepted")
	}
}

func TestActiveLearnBudgetErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 500, D: 2, Noise: 0})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	budgeted := oracle.NewBudgeted(oracle.FromLabeled(lab), 5)
	if _, err := ActiveLearn(pts, budgeted, PracticalParams(0.5, 0.05), rng); err == nil {
		t.Error("budget exhaustion not propagated")
	}
}

func TestActiveLearn1DInputViaChains(t *testing.T) {
	// d = 1 flows through the same pipeline: one chain.
	rng := rand.New(rand.NewSource(43))
	lab := dataset.Uniform1D(rng, 500, 0.5, 0)
	pts, o := split(lab)
	res, err := ActiveLearn(pts, o, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 1 {
		t.Errorf("1-D width = %d, want 1", res.Width)
	}
	if got := geom.Err(lab, res.Classifier.Classify); got != 0 {
		t.Errorf("noiseless 1-D err = %d, want 0", got)
	}
}

func TestActiveLearnTimingPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 300, D: 2, Noise: 0.05})
	pts, o := split(lab)
	res, err := ActiveLearn(pts, o, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Decompose <= 0 || res.Timing.Probe <= 0 || res.Timing.Solve <= 0 {
		t.Errorf("timings not populated: %+v", res.Timing)
	}
}
