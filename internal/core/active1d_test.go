package core

import (
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// make1D builds a sorted 1-D instance: items, keys, and the oracle.
func make1D(pts []geom.LabeledPoint) (items []int, keys []float64, o *oracle.Static) {
	items = make([]int, len(pts))
	keys = make([]float64, len(pts))
	for i := range pts {
		items[i] = i
		keys[i] = pts[i].P[0]
	}
	sortByKeys(items, keys)
	return items, keys, oracle.FromLabeled(pts)
}

func TestRun1DExhaustiveMode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := dataset.Uniform1D(rng, 50, 0.5, 0.2)
	items, keys, o := make1D(pts)
	sigma, err := Run1D(o, items, keys, TheoryParams(0, 0.1), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 50 {
		t.Fatalf("exhaustive Σ has %d entries, want 50", len(sigma))
	}
	seen := map[int]bool{}
	for _, wl := range sigma {
		if wl.Weight != 1 {
			t.Fatalf("exhaustive weight %g, want 1", wl.Weight)
		}
		if wl.Label != pts[wl.Item].Label {
			t.Fatalf("item %d label mismatch", wl.Item)
		}
		seen[wl.Item] = true
	}
	if len(seen) != 50 {
		t.Fatal("exhaustive Σ must cover every point")
	}
}

func TestRun1DInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := oracle.NewStatic([]geom.Label{0, 1})
	if _, err := Run1D(o, []int{0, 1}, []float64{1}, PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Run1D(o, []int{0, 1}, []float64{2, 1}, PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("unsorted keys accepted")
	}
	if _, err := Run1D(o, nil, nil, PracticalParams(0.5, 0.1), rng); err != nil {
		t.Error("empty input should succeed with empty Σ")
	}
	bad := PracticalParams(0.5, 0)
	if _, err := Run1D(o, []int{0}, []float64{1}, bad, rng); err == nil {
		t.Error("delta=0 accepted")
	}
	bad = PracticalParams(0.5, 0.1)
	bad.PhiDivisor = 2
	if _, err := Run1D(o, []int{0}, []float64{1}, bad, rng); err == nil {
		t.Error("tiny phi divisor accepted")
	}
	bad = PracticalParams(0.5, 0.1)
	bad.SampleConstant = 0
	if _, err := Run1D(o, []int{0}, []float64{1}, bad, rng); err == nil {
		t.Error("zero sample constant accepted")
	}
	bad = PracticalParams(0.5, 0.1)
	bad.BaseCase = 0
	if _, err := Run1D(o, []int{0}, []float64{1}, bad, rng); err == nil {
		t.Error("zero base case accepted")
	}
	bad = PracticalParams(math.NaN(), 0.1)
	if _, err := Run1D(o, []int{0}, []float64{1}, bad, rng); err == nil {
		t.Error("NaN epsilon accepted")
	}
}

// Σ's total weight always equals the population size: the base case
// and exhaustive branches contribute weight 1 per point; a sampling
// level contributes |pop|/t per draw across t draws.
func TestRun1DSigmaTotalWeightInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 8, 100, 1000, 5000} {
		pts := dataset.Uniform1D(rng, n, 0.4, 0.15)
		items, keys, o := make1D(pts)
		sigma, err := Run1D(o, items, keys, PracticalParams(1, 0.1), rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, wl := range sigma {
			if wl.Weight <= 0 {
				t.Fatalf("n=%d: non-positive weight %g", n, wl.Weight)
			}
			if wl.Label != pts[wl.Item].Label {
				t.Fatalf("n=%d: Σ label disagrees with ground truth at %d", n, wl.Item)
			}
			sum += wl.Weight
		}
		if math.Abs(sum-float64(n)) > 1e-6*float64(n) {
			t.Errorf("n=%d: Σ total weight %g, want %d", n, sum, n)
		}
	}
}

func TestRun1DPropagatesOracleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := dataset.Uniform1D(rng, 200, 0.5, 0)
	items, keys, _ := make1D(pts)
	budgeted := oracle.NewBudgeted(oracle.FromLabeled(pts), 10)
	if _, err := Run1D(budgeted, items, keys, PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("budget exhaustion not propagated")
	}
}

func TestLearn1DNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lab := dataset.Uniform1D(rng, 3000, 0.6, 0)
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	h, sigma, err := Learn1D(pts, oracle.FromLabeled(lab), PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("empty Σ")
	}
	// k* = 0, so with high probability the returned classifier is
	// exactly optimal: zero error on P.
	if got := geom.Err(lab, h.Classify); got != 0 {
		t.Errorf("noiseless error = %d, want 0 (k* = 0 case of Theorem 2)", got)
	}
}

func TestLearn1DApproximationGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const (
		n     = 4000
		eps   = 0.5
		noise = 0.1
	)
	var ratios []float64
	for trial := 0; trial < 12; trial++ {
		lab := dataset.Uniform1D(rng, n, 0.5, noise)
		pts := make([]geom.Point, len(lab))
		for i, lp := range lab {
			pts[i] = lp.P
		}
		ld := geom.LabeledDataset{Points: lab}
		_, kstar := classifier.BestThreshold1D(ld.Weighted())
		if kstar <= 0 {
			continue
		}
		in := oracle.InstrumentLabeled(lab)
		h, _, err := Learn1D(pts, in.O, PracticalParams(eps, 0.05), rng)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(geom.Err(lab, h.Classify))
		ratios = append(ratios, got/kstar)
		if in.DistinctProbes() > n {
			t.Fatalf("trial %d: probed more than n points", trial)
		}
	}
	if len(ratios) == 0 {
		t.Fatal("no usable trials")
	}
	var worst, sum float64
	for _, r := range ratios {
		sum += r
		if r > worst {
			worst = r
		}
	}
	if mean := sum / float64(len(ratios)); mean > 1+eps {
		t.Errorf("mean error ratio %g exceeds 1+ε = %g", mean, 1+eps)
	}
	if worst > 1+2*eps {
		t.Errorf("worst error ratio %g far beyond 1+ε = %g", worst, 1+eps)
	}
}

func TestLearn1DProbesSublinearAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 60000
	lab := dataset.Uniform1D(rng, n, 0.5, 0.05)
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	in := oracle.InstrumentLabeled(lab)
	_, _, err := Learn1D(pts, in.O, PracticalParams(1, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if probes := in.DistinctProbes(); probes >= n/2 {
		t.Errorf("probes = %d on n = %d: expected clearly sublinear", probes, n)
	}
}

func TestLearn1DValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h, sigma, err := Learn1D(nil, oracle.NewStatic(nil), PracticalParams(0.5, 0.1), rng)
	if err != nil || len(sigma) != 0 || !math.IsInf(h.Tau, -1) {
		t.Error("empty input mishandled")
	}
	pts2 := []geom.Point{{1, 2}}
	if _, _, err := Learn1D(pts2, oracle.NewStatic([]geom.Label{0}), PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("2-D point accepted by Learn1D")
	}
	pts := []geom.Point{{1}}
	if _, _, err := Learn1D(pts, oracle.NewStatic(nil), PracticalParams(0.5, 0.1), rng); err == nil {
		t.Error("oracle size mismatch accepted")
	}
}

func TestRun1DDeterministicGivenSeed(t *testing.T) {
	lab := dataset.Uniform1D(rand.New(rand.NewSource(3)), 2000, 0.5, 0.1)
	items, keys, o := make1D(lab)
	run := func() []WeightedLabel {
		s, err := Run1D(o, items, keys, PracticalParams(0.7, 0.1), rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic Σ size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic Σ at %d", i)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	if maxDepth(0) != 1 || maxDepth(1) != 1 {
		t.Error("degenerate depths wrong")
	}
	// 5/8 shrinkage from n must reach 1 within maxDepth(n) levels.
	for _, n := range []int{2, 10, 1000, 1 << 20} {
		m := float64(n)
		for i := 0; i < maxDepth(n); i++ {
			m *= 5.0 / 8.0
		}
		if m > 1 {
			t.Errorf("maxDepth(%d) too shallow", n)
		}
	}
}
