package core

import (
	"math/rand"
	"sync"
	"testing"

	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// The trace must expose the Lemma 10 behaviour: whenever a level found
// its band and recursed, the surviving population is at most
// ceil(5/8·|P|) — the paper's geometric shrinkage — in the
// overwhelming majority of levels (the bound is itself a
// high-probability statement).
func TestTraceLemma10Shrinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	lab := dataset.Uniform1D(rng, 50000, 0.5, 0.1)
	items, keys, o := make1D(lab)
	var traces []LevelTrace
	par := PracticalParams(0.5, 0.05)
	par.Trace = func(tr LevelTrace) { traces = append(traces, tr) }
	if _, err := Run1D(o, items, keys, par, rng); err != nil {
		t.Fatal(err)
	}
	if len(traces) < 3 {
		t.Fatalf("expected a multi-level recursion, got %d levels", len(traces))
	}
	recursions, violations := 0, 0
	for i, tr := range traces {
		if tr.Size <= 0 {
			t.Fatalf("level %d: non-positive size", i)
		}
		if tr.Depth != i+1 {
			t.Fatalf("level %d: depth %d out of order", i, tr.Depth)
		}
		if tr.BandFound && !tr.Exhaustive {
			recursions++
			if tr.NextSize > shrinkBound(tr.Size) {
				violations++
			}
			if tr.NextSize <= 0 || tr.NextSize >= tr.Size {
				t.Fatalf("level %d: NextSize %d out of range for Size %d", i, tr.NextSize, tr.Size)
			}
			if tr.Alpha >= tr.HiSup {
				t.Fatalf("level %d: degenerate band [%g, %g)", i, tr.Alpha, tr.HiSup)
			}
			// The next level's size must agree with this one's NextSize.
			if i+1 < len(traces) && traces[i+1].Size != tr.NextSize {
				t.Fatalf("level %d: NextSize %d but next level has %d", i, tr.NextSize, traces[i+1].Size)
			}
		}
	}
	if recursions == 0 {
		t.Fatal("no recursive levels traced")
	}
	if violations > recursions/4 {
		t.Errorf("Lemma 10 shrinkage violated on %d of %d levels", violations, recursions)
	}
	// The deepest level always resolves exhaustively (base case or
	// sample-size cap).
	last := traces[len(traces)-1]
	if !last.Exhaustive && last.BandFound {
		t.Error("recursion ended on a non-terminal trace")
	}
}

// Tracing through the parallel multi-dimensional pipeline must be
// race-safe when the installer synchronizes.
func TestTraceParallelPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 20000, W: 6, Noise: 0.05})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	var mu sync.Mutex
	perChainRoots := 0
	par := PracticalParams(0.5, 0.05)
	par.Trace = func(tr LevelTrace) {
		mu.Lock()
		defer mu.Unlock()
		if tr.Depth == 1 {
			perChainRoots++
		}
	}
	if _, err := ActiveLearn(pts, oracle.FromLabeled(lab), par, rng); err != nil {
		t.Fatal(err)
	}
	if perChainRoots != 6 {
		t.Errorf("traced %d chain roots, want 6 (one per chain)", perChainRoots)
	}
}

func TestShrinkBound(t *testing.T) {
	if shrinkBound(8) != 5 || shrinkBound(1000) != 625 || shrinkBound(1) != 1 {
		t.Error("shrinkBound arithmetic wrong")
	}
}
