package core

import (
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
)

// TestEpsilonComparisonProperty verifies Lemma 14's guarantee
// directly: for the collected sample Σ and any two threshold
// classifiers h, h' on a 1-D input,
//
//	w-err_Σ(h) <= w-err_Σ(h')  implies  err_P(h) <= (1+ε)·err_P(h'),
//
// with high probability over the run. We draw many random threshold
// pairs and count violations; at δ = 0.05 the property should hold on
// essentially every pair (the guarantee is uniform over all of
// H_mono, so spot-checking pairs is strictly weaker than the claim).
func TestEpsilonComparisonProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	const (
		n   = 20000
		eps = 0.5
	)
	lab := dataset.Uniform1D(rng, n, 0.5, 0.1)
	pts := make([]geom.Point, n)
	for i, lp := range lab {
		pts[i] = lp.P
	}
	_, sigma, err := Learn1D(pts, oracle.FromLabeled(lab), PracticalParams(eps, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("empty Σ")
	}

	errOnP := func(tau float64) float64 {
		h := classifier.Threshold1D{Tau: tau}
		return float64(geom.Err(lab, h.Classify))
	}
	errOnSigma := func(tau float64) float64 {
		h := classifier.Threshold1D{Tau: tau}
		return geom.WErr(sigma, h.Classify)
	}

	violations, checked := 0, 0
	for trial := 0; trial < 500; trial++ {
		x := rng.Float64()
		y := rng.Float64()
		sx, sy := errOnSigma(x), errOnSigma(y)
		px, py := errOnP(x), errOnP(y)
		// Orient so that x is the Σ-preferred threshold.
		if sx > sy {
			x, y = y, x
			px, py = py, px
		}
		checked++
		if px > (1+eps)*py+1e-9 {
			violations++
			t.Logf("violation: τ=%g preferred on Σ but err_P %g > (1+ε)·%g", x, px, py)
		}
	}
	if violations > checked/50 {
		t.Errorf("ε-comparison property violated on %d of %d threshold pairs", violations, checked)
	}
	// The -Inf threshold (all positive) participates in H_mono(P) too.
	sNeg, pNeg := errOnSigma(math.Inf(-1)), errOnP(math.Inf(-1))
	sMid, pMid := errOnSigma(0.5), errOnP(0.5)
	if sMid <= sNeg && pMid > (1+eps)*pNeg+1e-9 {
		t.Error("ε-comparison violated against the -Inf threshold")
	}
}
