package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// Result is the outcome of the active algorithm.
type Result struct {
	// Classifier is the learned monotone classifier, total on R^d.
	Classifier *classifier.AnchorSet
	// Sigma is the fully-labeled weighted sample Σ = ∪ Σ_i of
	// Lemma 14; the classifier minimizes w-err_Σ over all monotone
	// classifiers (Theorem 3's reduction to Problem 2).
	Sigma geom.WeightedSet
	// SigmaWErr is w-err_Σ(Classifier), the minimized surrogate.
	SigmaWErr float64
	// Width is the dominance width w of the input.
	Width int
	// Probes is the number of distinct points probed when the oracle
	// was instrumented by this call (see ActiveLearn); -1 otherwise.
	Probes int
	// Timing breaks down the phases of Theorem 3's cost.
	Timing Timing
}

// Timing records wall-clock per phase of the pipeline.
type Timing struct {
	Decompose time.Duration // chain decomposition (Lemma 6)
	Probe     time.Duration // per-chain 1-D runs (Section 3)
	Solve     time.Duration // passive solve on Σ (Theorem 4)
}

// ActiveLearn runs the full Theorem 2+3 pipeline on the unlabeled
// point set pts against a label oracle:
//
//  1. decompose pts into w chains (Lemma 6);
//  2. run the Section 3 sampler on each chain with failure budget
//     Delta/w, collecting Σ = ∪ Σ_i;
//  3. solve passive weighted classification on Σ (Theorem 4) to find
//     the monotone classifier minimizing w-err_Σ.
//
// With probability at least 1-Delta the result is (1+ε)-approximate:
// err_P(h) <= (1+ε)·k*. The expected probing cost is
// O((w/ε²)·log n·log(n/w)).
//
// The supplied oracle is wrapped in a reveal cache so that repeat
// draws of one point cost a single probe; Result.Probes reports the
// distinct-probe count.
func ActiveLearn(pts []geom.Point, o oracle.Oracle, par Params, rng *rand.Rand) (Result, error) {
	return ActiveLearnChains(pts, o, par, rng, nil)
}

// ActiveLearnChains is ActiveLearn with a caller-supplied chain
// decomposition (each chain a slice of point indices in ascending
// dominance order, jointly partitioning the input). Passing nil
// computes the minimum decomposition as usual. A suboptimal
// decomposition (more chains than the dominance width) is still
// correct — every chain run keeps its per-chain guarantee — but pays
// proportionally more probes, which the greedy-vs-matching ablation
// (experiment A1) quantifies.
func ActiveLearnChains(pts []geom.Point, o oracle.Oracle, par Params, rng *rand.Rand, chainSets [][]int) (Result, error) {
	if err := par.validate(); err != nil {
		return Result{}, err
	}
	if len(pts) == 0 {
		return Result{}, fmt.Errorf("core: empty input set")
	}
	if o.Len() != len(pts) {
		return Result{}, fmt.Errorf("core: oracle covers %d points, input has %d", o.Len(), len(pts))
	}
	cache := oracle.NewCaching(o)

	start := time.Now()
	var dec chains.Decomposition
	if chainSets == nil {
		dec = chains.Decompose(pts)
	} else {
		if err := chains.ValidateDecomposition(pts, chainSets); err != nil {
			return Result{}, fmt.Errorf("core: supplied decomposition invalid: %w", err)
		}
		dec = chains.Decomposition{Chains: chainSets, Width: len(chainSets)}
	}
	var res Result
	res.Width = dec.Width
	res.Timing.Decompose = time.Since(start)

	// Split the failure budget evenly over the w per-chain runs (the
	// paper uses δ = 1/(w·n²) per chain to reach 1 - 1/n² overall).
	chainPar := par
	chainPar.Delta = par.Delta / float64(dec.Width)

	start = time.Now()
	sigma, err := runChainsParallel(cache, dec.Chains, chainPar, rng)
	if err != nil {
		return Result{}, err
	}
	res.Timing.Probe = time.Since(start)
	res.Probes = cache.Distinct()

	// Materialize Σ as a weighted point set and solve Problem 2 on it.
	ws := make(geom.WeightedSet, len(sigma))
	for i, wl := range sigma {
		ws[i] = geom.WeightedPoint{P: pts[wl.Item], Label: wl.Label, Weight: wl.Weight}
	}
	ws = ws.Coalesce()

	start = time.Now()
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return Result{}, fmt.Errorf("core: passive solve on Σ: %w", err)
	}
	res.Timing.Solve = time.Since(start)
	res.Classifier = sol.Classifier
	res.Sigma = ws
	res.SigmaWErr = sol.WErr
	return res, nil
}

// Learn1D is the Lemma 9 entry point for one-dimensional inputs: it
// runs the Section 3 sampler directly on the coordinate axis and
// returns the threshold classifier minimizing w-err_Σ, together with
// Σ itself.
func Learn1D(pts []geom.Point, o oracle.Oracle, par Params, rng *rand.Rand) (classifier.Threshold1D, geom.WeightedSet, error) {
	if err := par.validate(); err != nil {
		return classifier.Threshold1D{}, nil, err
	}
	if len(pts) == 0 {
		return classifier.Threshold1D{Tau: math.Inf(-1)}, nil, nil
	}
	for i, p := range pts {
		if len(p) != 1 {
			return classifier.Threshold1D{}, nil, fmt.Errorf("core: point %d is %d-dimensional, want 1", i, len(p))
		}
	}
	if o.Len() != len(pts) {
		return classifier.Threshold1D{}, nil, fmt.Errorf("core: oracle covers %d points, input has %d", o.Len(), len(pts))
	}
	cache := oracle.NewCaching(o)

	items := make([]int, len(pts))
	for i := range items {
		items[i] = i
	}
	keys := make([]float64, len(pts))
	for i, p := range pts {
		keys[i] = p[0]
	}
	sortByKeys(items, keys)

	sigma, err := Run1D(cache, items, keys, par, rng)
	if err != nil {
		return classifier.Threshold1D{}, nil, err
	}
	ws := make(geom.WeightedSet, len(sigma))
	for i, wl := range sigma {
		ws[i] = geom.WeightedPoint{P: pts[wl.Item], Label: wl.Label, Weight: wl.Weight}
	}
	ws = ws.Coalesce()
	h, _ := classifier.BestThreshold1D(ws)
	return h, ws, nil
}

// sortByKeys sorts items and keys jointly by ascending key, keeping
// input order for equal keys.
func sortByKeys(items []int, keys []float64) {
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	newItems := make([]int, len(items))
	newKeys := make([]float64, len(keys))
	for i, j := range idx {
		newItems[i] = items[j]
		newKeys[i] = keys[j]
	}
	copy(items, newItems)
	copy(keys, newKeys)
}
