// Package core implements the paper's primary contribution: the active
// monotone-classification algorithm of Theorems 2 and 3.
//
// Section 3 (active1d.go) builds, for a totally ordered point sequence,
// a fully-labeled weighted sample Σ whose weighted error function
// w-err_Σ tracks err_P up to a (1 ± ε/4) factor plus a shared unknown
// offset Δ — the ε-comparison property. Section 4 (multidim.go) runs
// that machinery on each chain of a minimum chain decomposition and
// feeds the union of the per-chain samples to the passive solver of
// Theorem 4, yielding a (1+ε)-approximate monotone classifier with
// O((w/ε²)·log n·log(n/w)) probes, with high probability.
package core

import (
	"fmt"
	"math"
)

// Params configures the active algorithm. The paper's analysis fixes
// the sampling constants (Lemma 5's multiplier 3 and the φ = ε/256
// absolute-error target); those values are astronomically conservative
// in practice, so they are exposed here. TheoryParams reproduces the
// paper verbatim; PracticalParams keeps the same asymptotic form with
// constants small enough to show the probing-cost separation at
// laptop-scale n (see DESIGN.md §2.3). Whenever a level's sample size
// reaches the level's population, the algorithm probes exhaustively
// and returns exact error counts, so smaller constants can only
// degrade the approximation guarantee, never correctness of the
// mechanics.
type Params struct {
	// Epsilon is the approximation slack: the returned classifier's
	// error is at most (1+Epsilon)·k* with high probability. Values
	// are clamped to (0, 1] as in Theorem 2; Epsilon <= 0 requests
	// exhaustive probing (exact optimum, n probes).
	Epsilon float64
	// Delta is the allowed failure probability of the whole run.
	Delta float64
	// SampleConstant is Lemma 5's multiplicative constant (paper: 3).
	SampleConstant float64
	// PhiDivisor sets the absolute-error target φ = Epsilon/PhiDivisor
	// for the g1/g2 estimators (paper: 256).
	PhiDivisor float64
	// BaseCase is the recursion cutoff below which a level is probed
	// exhaustively (paper: 7).
	BaseCase int
	// Trace, when non-nil, receives one LevelTrace per recursion
	// level — a diagnostic window onto the Section 3 framework (see
	// Tracer). It must be safe for concurrent calls when used with
	// the multi-dimensional pipeline.
	Trace Tracer
}

// TheoryParams returns the paper's exact parameterization.
func TheoryParams(epsilon, delta float64) Params {
	return Params{
		Epsilon:        epsilon,
		Delta:          delta,
		SampleConstant: 3,
		PhiDivisor:     256,
		BaseCase:       7,
	}
}

// PracticalParams returns a parameterization with the same asymptotic
// probing cost but constants sized for experiments: φ = ε/8 and a
// Lemma-5 constant of 0.15. The looser constants widen the paper's
// guaranteed approximation slack by a constant factor; experiment E4
// verifies empirically that the (1+ε) bound still holds at these
// settings.
func PracticalParams(epsilon, delta float64) Params {
	return Params{
		Epsilon:        epsilon,
		Delta:          delta,
		SampleConstant: 0.15,
		PhiDivisor:     8,
		BaseCase:       7,
	}
}

// validate normalizes and checks the parameters.
func (p *Params) validate() error {
	if math.IsNaN(p.Epsilon) {
		return fmt.Errorf("core: epsilon is NaN")
	}
	if p.Epsilon > 1 {
		p.Epsilon = 1
	}
	if p.Delta <= 0 || p.Delta > 1 {
		return fmt.Errorf("core: delta %g outside (0,1]", p.Delta)
	}
	if p.SampleConstant <= 0 {
		return fmt.Errorf("core: sample constant %g must be positive", p.SampleConstant)
	}
	if p.PhiDivisor < 8 {
		// φ = Epsilon/PhiDivisor must stay below the 1/4 threshold in
		// the level bar |P|·(1/4 - φ); divisor 8 keeps φ <= 1/8.
		return fmt.Errorf("core: phi divisor %g must be at least 8", p.PhiDivisor)
	}
	if p.BaseCase < 1 {
		return fmt.Errorf("core: base case %d must be at least 1", p.BaseCase)
	}
	return nil
}

// exhaustive reports whether the parameters request exact probing.
func (p Params) exhaustive() bool { return p.Epsilon <= 0 }

// maxDepth returns the recursion depth bound h: each level shrinks the
// population to at most 5/8 of its size (Lemma 10), so h = O(log n).
func maxDepth(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n))/math.Log(8.0/5.0))) + 1
}
