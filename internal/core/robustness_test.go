package core

import (
	"math/rand"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// ActiveLearnChains must accept any valid decomposition and reject
// invalid ones.
func TestActiveLearnChainsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 2000, W: 4, Noise: 0})
	pts, o := split(lab)
	greedy := chains.GreedyDecompose(pts)
	res, err := ActiveLearnChains(pts, o, PracticalParams(0.5, 0.05), rng, greedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != len(greedy) {
		t.Errorf("width reported %d, want chain count %d", res.Width, len(greedy))
	}
	if got := geom.Err(lab, res.Classifier.Classify); got != 0 {
		t.Errorf("noiseless err = %d, want 0 even with a suboptimal decomposition", got)
	}
}

func TestActiveLearnChainsRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 100, W: 2, Noise: 0})
	pts, o := split(lab)
	// A decomposition that misses points.
	bad := [][]int{{0, 1}}
	if _, err := ActiveLearnChains(pts, o, PracticalParams(0.5, 0.05), rng, bad); err == nil {
		t.Error("incomplete decomposition accepted")
	}
}

// Failure injection: a noisy oracle (inconsistent with the true
// labels) must not break the algorithm — the result is still a valid
// monotone classifier, and probing stays within n.
func TestActiveLearnUnderLabelNoiseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 5000, W: 4, Noise: 0})
	pts, base := split(lab)
	noisy := oracle.NewNoisy(base, 0.3, rng)
	counting := oracle.NewCounting(noisy)
	res, err := ActiveLearn(pts, counting, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, p, q := classifier.IsMonotoneOn(pts, res.Classifier); !ok {
		t.Errorf("classifier not monotone under label noise: %v vs %v", p, q)
	}
	if counting.Probes() > len(pts) {
		t.Errorf("probed %d > n=%d despite caching", counting.Probes(), len(pts))
	}
}

// Degenerate inputs must not trip the pipeline.
func TestActiveLearnDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// All points identical.
	pts := make([]geom.Point, 50)
	labels := make([]geom.Label, 50)
	for i := range pts {
		pts[i] = geom.Point{1, 1}
		labels[i] = geom.Label(i % 2)
	}
	res, err := ActiveLearn(pts, oracle.NewStatic(labels), PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 1 {
		t.Errorf("identical points: width %d, want 1", res.Width)
	}
	// Single point.
	res, err = ActiveLearn(pts[:1], oracle.NewStatic(labels[:1]), PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classifier.Classify(geom.Point{1, 1}) != labels[0] {
		t.Error("single point mis-learned")
	}
	// All same label.
	allPos := make([]geom.Label, 50)
	for i := range allPos {
		allPos[i] = geom.Positive
	}
	res, err = ActiveLearn(pts, oracle.NewStatic(allPos), PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classifier.Classify(geom.Point{1, 1}) != geom.Positive {
		t.Error("constant-positive input mis-learned")
	}
}

// Property: across random small instances, the active learner at
// exhaustive settings (theory params force probe-all at these sizes)
// always returns an exactly optimal classifier — Theorem 2 with the
// failure probability driven to zero by exhaustiveness.
func TestActiveLearnExhaustiveAlwaysOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(15)
		lab := make([]geom.LabeledPoint, n)
		for i := range lab {
			lab[i] = geom.LabeledPoint{
				P:     geom.Point{float64(rng.Intn(5)), float64(rng.Intn(5))},
				Label: geom.Label(rng.Intn(2)),
			}
		}
		pts, o := split(lab)
		res, err := ActiveLearn(pts, o, TheoryParams(0.5, 0.05), rng)
		if err != nil {
			t.Fatal(err)
		}
		ld := geom.LabeledDataset{Points: lab}
		naive, err := naiveOptimal(ld.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if got := geom.Err(lab, res.Classifier.Classify); float64(got) != naive {
			t.Fatalf("trial %d: err %d != optimum %g", trial, got, naive)
		}
	}
}

// naiveOptimal computes k* via the exponential reference solver.
func naiveOptimal(ws geom.WeightedSet) (float64, error) {
	sol, err := passive.NaiveSolve(ws)
	if err != nil {
		return 0, err
	}
	return sol.WErr, nil
}

// The inverted chain (k* = n/2) keeps every threshold's error near
// |P|/2, so the α/β band never forms and the recursion terminates at
// depth 1 — the framework's "no dip" branch. The learner must still
// return a valid (1+ε)-approximate classifier.
func TestActiveLearnOnLabelInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	lab := dataset.LabelInversion(10000)
	pts, o := split(lab)
	res, err := ActiveLearn(pts, o, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	errP := geom.Err(lab, res.Classifier.Classify)
	if float64(errP) > 1.5*5000 {
		t.Errorf("err = %d exceeds (1+ε)·k* = 7500", errP)
	}
}

// A pure antichain degenerates to per-point chains: the algorithm
// probes everything (w = n) and returns the exact optimum k* = 0.
func TestActiveLearnOnAntiDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	lab := dataset.AntiDiagonal(rng, 400)
	pts, base := split(lab)
	counting := oracle.NewCounting(base)
	res, err := ActiveLearn(pts, counting, PracticalParams(0.5, 0.05), rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Width != 400 {
		t.Errorf("width = %d, want 400", res.Width)
	}
	if got := geom.Err(lab, res.Classifier.Classify); got != 0 {
		t.Errorf("err = %d, want 0 (any antichain labeling is consistent)", got)
	}
}
