package em

import (
	"fmt"
	"math/rand"
	"strings"

	"monoclass/internal/geom"
)

// Record is a product-style record: the unit of matching.
type Record struct {
	EntityID int     // ground-truth entity; hidden from learners
	Title    string  // product title (token sequence)
	Brand    string  // brand token
	Price    float64 // numeric attribute
}

// CorpusParams configures GenerateCorpus.
type CorpusParams struct {
	Entities         int     // number of distinct entities
	RecordsPerEntity int     // duplicates per entity (>= 1)
	TitleTokens      int     // tokens per clean title
	TypoRate         float64 // per-token corruption probability
	TokenDropRate    float64 // per-token drop probability
	PriceJitter      float64 // relative price perturbation amplitude
}

// DefaultCorpusParams returns a moderately noisy configuration.
func DefaultCorpusParams() CorpusParams {
	return CorpusParams{
		Entities:         100,
		RecordsPerEntity: 2,
		TitleTokens:      6,
		TypoRate:         0.15,
		TokenDropRate:    0.1,
		PriceJitter:      0.05,
	}
}

var (
	vocabulary = []string{
		"ultra", "pro", "max", "mini", "classic", "wireless", "portable",
		"steel", "carbon", "nylon", "leather", "black", "silver", "red",
		"camera", "speaker", "keyboard", "monitor", "charger", "router",
		"bottle", "backpack", "lamp", "blender", "kettle", "drill",
		"series", "edition", "model", "bundle", "pack", "kit",
	}
	brands = []string{
		"acme", "globex", "initech", "umbrella", "stark", "wayne",
		"wonka", "tyrell", "hooli", "aperture",
	}
	typoAlphabet = "abcdefghijklmnopqrstuvwxyz"
)

// GenerateCorpus produces Entities·RecordsPerEntity records: each
// entity gets one clean prototype and noisy duplicates derived from it
// by token drops, typos, and price jitter.
func GenerateCorpus(rng *rand.Rand, p CorpusParams) []Record {
	if p.Entities <= 0 || p.RecordsPerEntity <= 0 || p.TitleTokens <= 0 {
		panic(fmt.Sprintf("em: bad corpus params %+v", p))
	}
	var out []Record
	for e := 0; e < p.Entities; e++ {
		tokens := make([]string, p.TitleTokens, p.TitleTokens+1)
		for i := range tokens {
			tokens[i] = vocabulary[rng.Intn(len(vocabulary))]
		}
		// Every entity carries a distinctive alphanumeric model code,
		// as real product listings do ("kettle pro x0042"); it is the
		// high-selectivity token realistic blocking keys come from,
		// and it is perturbed like any other token in duplicates.
		tokens = append(tokens, fmt.Sprintf("%c%04d", 'a'+rune(e%26), e))
		brand := brands[rng.Intn(len(brands))]
		price := 10 + rng.Float64()*490
		for r := 0; r < p.RecordsPerEntity; r++ {
			rec := Record{
				EntityID: e,
				Title:    strings.Join(tokens, " "),
				Brand:    brand,
				Price:    price,
			}
			if r > 0 { // keep one clean prototype per entity
				rec = perturb(rng, rec, p)
			}
			out = append(out, rec)
		}
	}
	return out
}

// perturb derives a noisy duplicate of a record.
func perturb(rng *rand.Rand, rec Record, p CorpusParams) Record {
	tokens := strings.Fields(rec.Title)
	var kept []string
	for _, tok := range tokens {
		if len(tokens) > 1 && rng.Float64() < p.TokenDropRate {
			continue
		}
		if rng.Float64() < p.TypoRate {
			tok = typo(rng, tok)
		}
		kept = append(kept, tok)
	}
	if len(kept) == 0 {
		kept = tokens[:1]
	}
	out := rec
	out.Title = strings.Join(kept, " ")
	out.Price = rec.Price * (1 + (rng.Float64()*2-1)*p.PriceJitter)
	return out
}

// typo applies one random character edit to a token.
func typo(rng *rand.Rand, tok string) string {
	runes := []rune(tok)
	if len(runes) == 0 {
		return tok
	}
	pos := rng.Intn(len(runes))
	c := rune(typoAlphabet[rng.Intn(len(typoAlphabet))])
	switch rng.Intn(3) {
	case 0: // substitute
		runes[pos] = c
		return string(runes)
	case 1: // insert
		return string(runes[:pos]) + string(c) + string(runes[pos:])
	default: // delete
		if len(runes) == 1 {
			return string(c)
		}
		return string(runes[:pos]) + string(runes[pos+1:])
	}
}

// Pair is a candidate record pair with its ground-truth match label.
type Pair struct {
	A, B  int // record indices
	Match bool
}

// PairParams configures SamplePairs.
type PairParams struct {
	MatchPairs    int // matching pairs to emit (same entity)
	NonMatchPairs int // non-matching pairs to emit
}

// SamplePairs draws labeled candidate pairs from the corpus: matches
// are two distinct records of one entity; non-matches two records of
// different entities. It panics when the corpus cannot supply matches
// (fewer than two records of any entity) and MatchPairs > 0.
func SamplePairs(rng *rand.Rand, recs []Record, p PairParams) []Pair {
	byEntity := make(map[int][]int)
	for i, r := range recs {
		byEntity[r.EntityID] = append(byEntity[r.EntityID], i)
	}
	var multi []int
	for e, members := range byEntity {
		if len(members) >= 2 {
			multi = append(multi, e)
		}
	}
	if p.MatchPairs > 0 && len(multi) == 0 {
		panic("em: no entity has two records; cannot sample match pairs")
	}
	if p.NonMatchPairs > 0 && len(byEntity) < 2 {
		panic("em: need at least two entities for non-match pairs")
	}
	// Deterministic entity order for reproducibility (map iteration is
	// randomized).
	sortInts(multi)
	entityIDs := make([]int, 0, len(byEntity))
	for e := range byEntity {
		entityIDs = append(entityIDs, e)
	}
	sortInts(entityIDs)

	var out []Pair
	for k := 0; k < p.MatchPairs; k++ {
		e := multi[rng.Intn(len(multi))]
		members := byEntity[e]
		i := rng.Intn(len(members))
		j := rng.Intn(len(members) - 1)
		if j >= i {
			j++
		}
		out = append(out, Pair{A: members[i], B: members[j], Match: true})
	}
	for k := 0; k < p.NonMatchPairs; k++ {
		e1 := entityIDs[rng.Intn(len(entityIDs))]
		e2 := e1
		for e2 == e1 {
			e2 = entityIDs[rng.Intn(len(entityIDs))]
		}
		m1 := byEntity[e1]
		m2 := byEntity[e2]
		out = append(out, Pair{A: m1[rng.Intn(len(m1))], B: m2[rng.Intn(len(m2))], Match: false})
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Similarities computes the d = 4 similarity scores of a record pair:
// 3-gram Jaccard of titles, normalized Levenshtein of titles, token
// cosine of titles plus brands, and numeric price similarity. Every
// score is in [0, 1] and higher means more similar, as the monotone
// model requires.
func Similarities(a, b Record) geom.Point {
	return geom.Point{
		JaccardQGramSim(a.Title, b.Title, 3),
		LevenshteinSim(a.Title, b.Title),
		TokenCosineSim(a.Title+" "+a.Brand, b.Title+" "+b.Brand),
		NumericSim(a.Price, b.Price),
	}
}

// ToPoints maps pairs to the labeled similarity points of Section 1.1:
// P = { p_{x,y} | (x,y) ∈ S }, label 1 for matches.
func ToPoints(recs []Record, pairs []Pair) []geom.LabeledPoint {
	out := make([]geom.LabeledPoint, len(pairs))
	for i, pr := range pairs {
		label := geom.Negative
		if pr.Match {
			label = geom.Positive
		}
		out[i] = geom.LabeledPoint{P: Similarities(recs[pr.A], recs[pr.B]), Label: label}
	}
	return out
}
