package em

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func TestGenerateCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultCorpusParams()
	recs := GenerateCorpus(rng, p)
	if len(recs) != p.Entities*p.RecordsPerEntity {
		t.Fatalf("len = %d, want %d", len(recs), p.Entities*p.RecordsPerEntity)
	}
	perEntity := map[int]int{}
	for _, r := range recs {
		perEntity[r.EntityID]++
		if r.Title == "" || r.Brand == "" || r.Price <= 0 {
			t.Fatalf("degenerate record %+v", r)
		}
	}
	for e, c := range perEntity {
		if c != p.RecordsPerEntity {
			t.Errorf("entity %d has %d records", e, c)
		}
	}
}

func TestGenerateCorpusPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, p := range []CorpusParams{
		{Entities: 0, RecordsPerEntity: 1, TitleTokens: 1},
		{Entities: 1, RecordsPerEntity: 0, TitleTokens: 1},
		{Entities: 1, RecordsPerEntity: 1, TitleTokens: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			GenerateCorpus(rng, p)
		}()
	}
}

func TestSamplePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := GenerateCorpus(rng, DefaultCorpusParams())
	pairs := SamplePairs(rng, recs, PairParams{MatchPairs: 40, NonMatchPairs: 60})
	if len(pairs) != 100 {
		t.Fatalf("len = %d, want 100", len(pairs))
	}
	matches := 0
	for _, pr := range pairs {
		if pr.A == pr.B {
			t.Fatal("self-pair emitted")
		}
		same := recs[pr.A].EntityID == recs[pr.B].EntityID
		if same != pr.Match {
			t.Fatalf("pair label %v but entities same=%v", pr.Match, same)
		}
		if pr.Match {
			matches++
		}
	}
	if matches != 40 {
		t.Errorf("matches = %d, want 40", matches)
	}
}

func TestSamplePairsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Single-record entities cannot supply matches.
	solo := GenerateCorpus(rng, CorpusParams{Entities: 5, RecordsPerEntity: 1, TitleTokens: 3})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for match pairs without duplicates")
			}
		}()
		SamplePairs(rng, solo, PairParams{MatchPairs: 1})
	}()
	// One entity cannot supply non-matches.
	one := GenerateCorpus(rng, CorpusParams{Entities: 1, RecordsPerEntity: 2, TitleTokens: 3})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-match pairs with one entity")
			}
		}()
		SamplePairs(rng, one, PairParams{NonMatchPairs: 1})
	}()
}

func TestSimilaritiesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recs := GenerateCorpus(rng, DefaultCorpusParams())
	p := Similarities(recs[0], recs[1])
	if len(p) != 4 {
		t.Fatalf("dim = %d, want 4", len(p))
	}
	for i, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("score %d = %g outside [0,1]", i, v)
		}
	}
	// A record is maximally similar to itself.
	self := Similarities(recs[0], recs[0])
	for i, v := range self {
		if v != 1 {
			t.Errorf("self-similarity %d = %g, want 1", i, v)
		}
	}
}

func TestToPointsSeparation(t *testing.T) {
	// Matching pairs must on average score higher than non-matching
	// pairs on every similarity dimension — the premise that makes the
	// monotone model sensible.
	rng := rand.New(rand.NewSource(5))
	recs := GenerateCorpus(rng, DefaultCorpusParams())
	pairs := SamplePairs(rng, recs, PairParams{MatchPairs: 200, NonMatchPairs: 200})
	pts := ToPoints(recs, pairs)
	if len(pts) != 400 {
		t.Fatal("wrong size")
	}
	var sumMatch, sumNon [4]float64
	var nMatch, nNon int
	for _, lp := range pts {
		if lp.Label == geom.Positive {
			nMatch++
			for k, v := range lp.P {
				sumMatch[k] += v
			}
		} else {
			nNon++
			for k, v := range lp.P {
				sumNon[k] += v
			}
		}
	}
	for k := 0; k < 4; k++ {
		mMean := sumMatch[k] / float64(nMatch)
		nMean := sumNon[k] / float64(nNon)
		if mMean <= nMean {
			t.Errorf("dimension %d: match mean %g <= non-match mean %g", k, mMean, nMean)
		}
	}
}
