package em

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
		{"héllo", "hello", 1}, // unicode-aware
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Edit distance is a metric: symmetric and triangle inequality.
func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randStr := func() string {
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	sym := func() bool {
		a, b := randStr(), randStr()
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	tri := func() bool {
		a, b, c := randStr(), randStr(), randStr()
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	identity := func() bool {
		a := randStr()
		return Levenshtein(a, a) == 0
	}
	cfg := &quick.Config{MaxCount: 2000}
	for name, f := range map[string]func() bool{"symmetry": sym, "triangle": tri, "identity": identity} {
		if err := quick.Check(func() bool { return f() }, cfg); err != nil {
			t.Errorf("%s violated: %v", name, err)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("empty strings sim = %g, want 1", got)
	}
	if got := LevenshteinSim("abcd", "abcd"); got != 1 {
		t.Errorf("identical sim = %g, want 1", got)
	}
	if got := LevenshteinSim("abcd", "wxyz"); got != 0 {
		t.Errorf("disjoint sim = %g, want 0", got)
	}
	if got := LevenshteinSim("abcd", "abce"); got != 0.75 {
		t.Errorf("sim = %g, want 0.75", got)
	}
}

func TestQGrams(t *testing.T) {
	g := QGrams("banana", 2)
	if g["an"] != 2 || g["na"] != 2 || g["ba"] != 1 {
		t.Errorf("bigram counts wrong: %v", g)
	}
	short := QGrams("ab", 3)
	if short["ab"] != 1 || len(short) != 1 {
		t.Errorf("short-string grams wrong: %v", short)
	}
	if len(QGrams("", 2)) != 0 {
		t.Error("empty string should have no grams")
	}
}

func TestQGramsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QGrams("abc", 0)
}

func TestJaccardQGramSim(t *testing.T) {
	if got := JaccardQGramSim("", "", 3); got != 1 {
		t.Errorf("empty sim = %g, want 1", got)
	}
	if got := JaccardQGramSim("hello", "hello", 3); got != 1 {
		t.Errorf("identical sim = %g, want 1", got)
	}
	if got := JaccardQGramSim("aaaa", "zzzz", 2); got != 0 {
		t.Errorf("disjoint sim = %g, want 0", got)
	}
	got := JaccardQGramSim("night", "nacht", 2)
	if got <= 0 || got >= 1 {
		t.Errorf("partial sim = %g, want in (0,1)", got)
	}
}

func TestTokenCosineSim(t *testing.T) {
	if got := TokenCosineSim("", ""); got != 1 {
		t.Errorf("empty sim = %g, want 1", got)
	}
	if got := TokenCosineSim("red blue", "Red Blue"); math.Abs(got-1) > 1e-12 {
		t.Errorf("case-insensitive identical sim = %g, want 1", got)
	}
	if got := TokenCosineSim("red blue", "green yellow"); got != 0 {
		t.Errorf("disjoint sim = %g, want 0", got)
	}
	if got := TokenCosineSim("red blue", ""); got != 0 {
		t.Errorf("one-empty sim = %g, want 0", got)
	}
	got := TokenCosineSim("red blue", "red green")
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half-overlap sim = %g, want 0.5", got)
	}
}

func TestNumericSim(t *testing.T) {
	if NumericSim(5, 5) != 1 || NumericSim(0, 0) != 1 {
		t.Error("equal values should be fully similar")
	}
	if got := NumericSim(0, 10); got != 0 {
		t.Errorf("sim(0,10) = %g, want 0", got)
	}
	if got := NumericSim(10, 30); got != 0.5 {
		t.Errorf("sim(10,30) = %g, want 0.5", got)
	}
}

// All similarities must land in [0, 1] on arbitrary inputs.
func TestSimilaritiesRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	words := []string{"", "a", "ab", "alpha beta", "gamma", "x y z"}
	f := func() bool {
		a := words[rng.Intn(len(words))]
		b := words[rng.Intn(len(words))]
		va, vb := rng.Float64()*100, rng.Float64()*100
		for _, s := range []float64{
			LevenshteinSim(a, b),
			JaccardQGramSim(a, b, 3),
			TokenCosineSim(a, b),
			NumericSim(va, vb),
		} {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
