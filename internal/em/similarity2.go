package em

import (
	"strings"
)

// Additional string similarity metrics: Jaro, Jaro–Winkler and
// Monge–Elkan, the other standard members of the record-linkage
// toolbox. All return values in [0, 1], higher = more similar, so any
// of them can serve as a monotone-classification dimension.

// JaroSim computes the Jaro similarity of a and b: the classic
// matching-window metric (matches within half the longer length,
// transposition-discounted). Two empty strings are fully similar.
func JaroSim(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Transpositions: matched characters out of order.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinklerSim boosts Jaro similarity by the length of the common
// prefix (up to 4 runes) with the standard scaling factor 0.1.
func JaroWinklerSim(a, b string) float64 {
	j := JaroSim(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	s := j + float64(prefix)*0.1*(1-j)
	if s > 1 {
		return 1
	}
	return s
}

// MongeElkanSim is the token-level hybrid metric: for each token of a,
// the best inner similarity against b's tokens, averaged; symmetrized
// by taking the mean of both directions. The inner metric is
// Jaro–Winkler. Token-less strings are fully similar to each other and
// fully dissimilar to non-empty ones.
func MongeElkanSim(a, b string) float64 {
	ta := strings.Fields(strings.ToLower(a))
	tb := strings.Fields(strings.ToLower(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return (mongeElkanDirected(ta, tb) + mongeElkanDirected(tb, ta)) / 2
}

func mongeElkanDirected(ta, tb []string) float64 {
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := JaroWinklerSim(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(ta))
}

// ExtendedSimilarities computes a 6-dimensional similarity vector for
// a record pair: the 4 metrics of Similarities plus Jaro–Winkler and
// Monge–Elkan on the titles.
func ExtendedSimilarities(a, b Record) []float64 {
	base := Similarities(a, b)
	out := make([]float64, 0, 6)
	out = append(out, base...)
	out = append(out, JaroWinklerSim(a.Title, b.Title), MongeElkanSim(a.Title, b.Title))
	return out
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
