package em

import (
	"fmt"
	"sort"
	"strings"
)

// Blocking: real entity-resolution systems never score all O(N²)
// record pairs; a cheap blocking stage proposes candidate pairs that
// share surface evidence, and only candidates are scored and labeled.
// This file implements the classic token/q-gram inverted-index
// blocker, so the learning pipeline can run on realistically skewed
// candidate sets instead of ground-truth-balanced samples.

// BlockingParams configures BlockPairs.
type BlockingParams struct {
	// QGram is the gram size for title keys (0 disables gram keys).
	QGram int
	// UseTokens adds whole lowercase title tokens and the brand as
	// blocking keys.
	UseTokens bool
	// MinSharedKeys is the number of distinct keys two records must
	// share to become a candidate pair (>= 1).
	MinSharedKeys int
	// MaxKeyFrequency drops keys occurring in more than this many
	// records (stop-key suppression; 0 means no limit). Without it,
	// one ubiquitous token pairs everything with everything.
	MaxKeyFrequency int
}

// DefaultBlockingParams returns a standard configuration: token,
// token-pair and 3-gram keys, one shared non-stop key required, stop
// keys above 5% of the corpus suppressed (so single common tokens
// never pair the whole corpus; selective token-pair and rare-gram
// matches drive candidates).
func DefaultBlockingParams(corpusSize int) BlockingParams {
	return BlockingParams{
		QGram:           3,
		UseTokens:       true,
		MinSharedKeys:   1,
		MaxKeyFrequency: corpusSize/20 + 2,
	}
}

// blockingKeys extracts the key set of one record.
func blockingKeys(r Record, p BlockingParams) []string {
	seen := map[string]bool{}
	var keys []string
	add := func(k string) {
		if k != "" && !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if p.UseTokens {
		tokens := strings.Fields(strings.ToLower(r.Title))
		for _, tok := range tokens {
			add("t:" + tok)
		}
		// Adjacent token pairs: far more selective than single tokens
		// (which degenerate into stop keys on small vocabularies) and
		// robust to one typo elsewhere in the title.
		for i := 0; i+1 < len(tokens); i++ {
			add("p:" + tokens[i] + " " + tokens[i+1])
		}
		add("b:" + strings.ToLower(r.Brand))
	}
	if p.QGram > 0 {
		for g := range QGrams(strings.ToLower(r.Title), p.QGram) {
			add("g:" + g)
		}
	}
	return keys
}

// BlockPairs proposes candidate pairs: records sharing at least
// MinSharedKeys non-stop blocking keys. Pairs are returned with their
// ground-truth match labels filled in (the labels exist in the corpus;
// whether an algorithm may read them is the probing model's concern).
// Output is deterministic: pairs sorted by (A, B).
func BlockPairs(recs []Record, p BlockingParams) ([]Pair, error) {
	if p.MinSharedKeys < 1 {
		return nil, fmt.Errorf("em: MinSharedKeys %d must be at least 1", p.MinSharedKeys)
	}
	if p.QGram == 0 && !p.UseTokens {
		return nil, fmt.Errorf("em: blocking needs at least one key source")
	}
	// Inverted index: key -> record ids.
	index := map[string][]int{}
	for i, r := range recs {
		for _, k := range blockingKeys(r, p) {
			index[k] = append(index[k], i)
		}
	}
	// Count shared keys per pair, skipping stop keys.
	shared := map[[2]int]int{}
	for _, members := range index {
		if p.MaxKeyFrequency > 0 && len(members) > p.MaxKeyFrequency {
			continue
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				if i > j {
					i, j = j, i
				}
				shared[[2]int{i, j}]++
			}
		}
	}
	var out []Pair
	for key, count := range shared {
		if count < p.MinSharedKeys {
			continue
		}
		out = append(out, Pair{
			A:     key[0],
			B:     key[1],
			Match: recs[key[0]].EntityID == recs[key[1]].EntityID,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out, nil
}

// BlockingQuality reports recall and size of a candidate set: the
// fraction of true duplicate pairs the blocker retained, and the
// candidate-to-record ratio (the scoring workload it creates).
type BlockingQuality struct {
	Candidates int
	TruePairs  int     // duplicate pairs in the corpus
	Caught     int     // duplicate pairs among candidates
	Recall     float64 // Caught / TruePairs (1 when TruePairs is 0)
	PairRatio  float64 // Candidates per record
}

// EvaluateBlocking measures a candidate set against the corpus ground
// truth.
func EvaluateBlocking(recs []Record, pairs []Pair) BlockingQuality {
	byEntity := map[int]int{}
	for _, r := range recs {
		byEntity[r.EntityID]++
	}
	truePairs := 0
	for _, c := range byEntity {
		truePairs += c * (c - 1) / 2
	}
	caught := 0
	for _, pr := range pairs {
		if pr.Match {
			caught++
		}
	}
	q := BlockingQuality{
		Candidates: len(pairs),
		TruePairs:  truePairs,
		Caught:     caught,
		Recall:     1,
	}
	if truePairs > 0 {
		q.Recall = float64(caught) / float64(truePairs)
	}
	if len(recs) > 0 {
		q.PairRatio = float64(len(pairs)) / float64(len(recs))
	}
	return q
}
