package em

import (
	"math"
	"math/rand"
	"testing"
)

func TestBlockPairsBasics(t *testing.T) {
	recs := []Record{
		{EntityID: 0, Title: "ultra wireless speaker", Brand: "acme", Price: 10},
		{EntityID: 0, Title: "ultra wireless speakr", Brand: "acme", Price: 10}, // typo duplicate
		{EntityID: 1, Title: "carbon steel kettle", Brand: "globex", Price: 40},
	}
	pairs, err := BlockPairs(recs, BlockingParams{QGram: 3, UseTokens: true, MinSharedKeys: 2})
	if err != nil {
		t.Fatal(err)
	}
	foundDup := false
	for _, pr := range pairs {
		if pr.A == 0 && pr.B == 1 {
			foundDup = true
			if !pr.Match {
				t.Error("duplicate pair mislabeled")
			}
		}
		if pr.A >= pr.B {
			t.Error("pairs must be ordered A < B")
		}
	}
	if !foundDup {
		t.Error("blocker missed the near-duplicate pair")
	}
}

func TestBlockPairsValidation(t *testing.T) {
	recs := []Record{{Title: "a"}}
	if _, err := BlockPairs(recs, BlockingParams{QGram: 3, MinSharedKeys: 0}); err == nil {
		t.Error("MinSharedKeys 0 accepted")
	}
	if _, err := BlockPairs(recs, BlockingParams{MinSharedKeys: 1}); err == nil {
		t.Error("no key sources accepted")
	}
}

func TestBlockPairsStopKeySuppression(t *testing.T) {
	// Every record shares the token "common"; without stop-key
	// suppression that alone would pair everything.
	var recs []Record
	for i := 0; i < 30; i++ {
		recs = append(recs, Record{
			EntityID: i,
			Title:    "common",
			Brand:    "acme",
			Price:    1,
		})
	}
	all, err := BlockPairs(recs, BlockingParams{UseTokens: true, MinSharedKeys: 1})
	if err != nil {
		t.Fatal(err)
	}
	suppressed, err := BlockPairs(recs, BlockingParams{UseTokens: true, MinSharedKeys: 1, MaxKeyFrequency: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 30*29/2 {
		t.Errorf("unsuppressed candidates = %d, want all pairs", len(all))
	}
	if len(suppressed) != 0 {
		t.Errorf("suppressed candidates = %d, want 0", len(suppressed))
	}
}

func TestBlockPairsOnCorpusRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := GenerateCorpus(rng, CorpusParams{
		Entities:         300,
		RecordsPerEntity: 2,
		TitleTokens:      5,
		TypoRate:         0.15,
		TokenDropRate:    0.1,
		PriceJitter:      0.05,
	})
	pairs, err := BlockPairs(recs, DefaultBlockingParams(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	q := EvaluateBlocking(recs, pairs)
	if q.TruePairs != 300 {
		t.Fatalf("TruePairs = %d, want 300", q.TruePairs)
	}
	// Mild perturbations: token/q-gram blocking should catch nearly
	// every duplicate while proposing far fewer than all O(N²) pairs.
	if q.Recall < 0.95 {
		t.Errorf("blocking recall %.3f too low", q.Recall)
	}
	allPairs := len(recs) * (len(recs) - 1) / 2
	if q.Candidates >= allPairs/4 {
		t.Errorf("blocking kept %d of %d pairs: not selective", q.Candidates, allPairs)
	}
}

func TestBlockPairsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	recs := GenerateCorpus(rng, DefaultCorpusParams())
	a, err := BlockPairs(recs, DefaultBlockingParams(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BlockPairs(recs, DefaultBlockingParams(len(recs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("non-deterministic candidate count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic candidate order")
		}
	}
}

func TestEvaluateBlockingDegenerate(t *testing.T) {
	q := EvaluateBlocking(nil, nil)
	if q.Recall != 1 || q.PairRatio != 0 {
		t.Errorf("degenerate quality wrong: %+v", q)
	}
}

func TestJaroSim(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"a", "", 0},
		{"same", "same", 1},
		{"martha", "marhta", 0.9444444444444445},
		{"dixon", "dicksonx", 0.7666666666666666},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := JaroSim(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JaroSim(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerSim(t *testing.T) {
	// The shared prefix "mar" boosts the score above plain Jaro.
	j := JaroSim("martha", "marhta")
	jw := JaroWinklerSim("martha", "marhta")
	if jw <= j {
		t.Errorf("Jaro-Winkler %v should exceed Jaro %v on shared prefixes", jw, j)
	}
	if math.Abs(jw-0.9611111111111111) > 1e-12 {
		t.Errorf("JaroWinklerSim(martha, marhta) = %v", jw)
	}
	if JaroWinklerSim("same", "same") != 1 {
		t.Error("identical should be 1")
	}
}

func TestMongeElkanSim(t *testing.T) {
	if MongeElkanSim("", "") != 1 {
		t.Error("empty-empty should be 1")
	}
	if MongeElkanSim("a b", "") != 0 {
		t.Error("empty-vs-nonempty should be 0")
	}
	if MongeElkanSim("red speaker", "speaker red") != 1 {
		t.Error("token order must not matter for exact token sets")
	}
	partial := MongeElkanSim("ultra wireless speaker", "ultra wireles speaker")
	if partial <= 0.9 || partial > 1 {
		t.Errorf("near-duplicate Monge-Elkan = %v, want just below 1", partial)
	}
}

// All new metrics stay within [0, 1] and are symmetric.
func TestNewMetricsRangeAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"", "a", "ab", "alpha beta", "gamma delta epsilon", "x"}
	for trial := 0; trial < 2000; trial++ {
		a := words[rng.Intn(len(words))]
		b := words[rng.Intn(len(words))]
		for name, f := range map[string]func(string, string) float64{
			"jaro": JaroSim, "jw": JaroWinklerSim, "me": MongeElkanSim,
		} {
			s1, s2 := f(a, b), f(b, a)
			if s1 < 0 || s1 > 1 || math.IsNaN(s1) {
				t.Fatalf("%s(%q,%q) = %v out of range", name, a, b, s1)
			}
			if math.Abs(s1-s2) > 1e-12 {
				t.Fatalf("%s not symmetric on (%q,%q): %v vs %v", name, a, b, s1, s2)
			}
		}
	}
}

func TestExtendedSimilarities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	recs := GenerateCorpus(rng, DefaultCorpusParams())
	v := ExtendedSimilarities(recs[0], recs[1])
	if len(v) != 6 {
		t.Fatalf("dim = %d, want 6", len(v))
	}
	for i, s := range v {
		if s < 0 || s > 1 {
			t.Errorf("score %d = %v out of range", i, s)
		}
	}
	self := ExtendedSimilarities(recs[0], recs[0])
	for i, s := range self {
		if s != 1 {
			t.Errorf("self-similarity %d = %v, want 1", i, s)
		}
	}
}
