// Package em provides an entity-matching substrate: synthetic records
// with noisy duplicates, real string-similarity metrics, and the
// pair-to-point pipeline of Section 1.1 of the paper
// (p_{x,y} = (sim_1(x,y), ..., sim_d(x,y)), label 1 iff x and y refer
// to the same entity). Real entity-matching corpora are proprietary;
// this simulation exercises the same code path — similarity-score
// points whose labels are only approximately monotone — with
// controllable difficulty (see DESIGN.md §2.3).
package em

import (
	"math"
	"strings"
)

// Levenshtein computes the edit distance between a and b with the
// classic O(|a|·|b|) dynamic program (unit insert/delete/substitute
// costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim converts edit distance to a similarity in [0, 1]:
// 1 - dist/max(|a|, |b|); two empty strings are fully similar.
func LevenshteinSim(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// QGrams returns the multiset of q-grams of s as a count map. Strings
// shorter than q yield the whole string as a single gram.
func QGrams(s string, q int) map[string]int {
	if q <= 0 {
		panic("em: q must be positive")
	}
	grams := make(map[string]int)
	runes := []rune(s)
	if len(runes) < q {
		if len(runes) > 0 {
			grams[string(runes)]++
		}
		return grams
	}
	for i := 0; i+q <= len(runes); i++ {
		grams[string(runes[i:i+q])]++
	}
	return grams
}

// JaccardQGramSim is the Jaccard similarity of the q-gram multisets of
// a and b: Σ min(countA, countB) / Σ max(countA, countB). Two empty
// strings are fully similar.
func JaccardQGramSim(a, b string, q int) float64 {
	ga, gb := QGrams(a, q), QGrams(b, q)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	inter, union := 0, 0
	for g, ca := range ga {
		cb := gb[g]
		if cb < ca {
			inter += cb
			union += ca
		} else {
			inter += ca
			union += cb
		}
	}
	for g, cb := range gb {
		if _, ok := ga[g]; !ok {
			union += cb
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TokenCosineSim is the cosine similarity of the whitespace-token
// count vectors of a and b. Two token-less strings are fully similar.
func TokenCosineSim(a, b string) float64 {
	ta := tokenCounts(a)
	tb := tokenCounts(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	var dot, na, nb float64
	for tok, ca := range ta {
		na += float64(ca) * float64(ca)
		if cb, ok := tb[tok]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	for _, cb := range tb {
		nb += float64(cb) * float64(cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	s := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if s > 1-1e-9 { // snap float rounding on either side of 1
		return 1
	}
	return s
}

func tokenCounts(s string) map[string]int {
	out := make(map[string]int)
	for _, tok := range strings.Fields(s) {
		out[strings.ToLower(tok)]++
	}
	return out
}

// NumericSim maps two non-negative numbers to a similarity in [0, 1]:
// 1 - |a-b| / (|a| + |b|), with equal values (including both zero)
// fully similar.
func NumericSim(a, b float64) float64 {
	if a == b {
		return 1
	}
	den := math.Abs(a) + math.Abs(b)
	if den == 0 {
		return 1
	}
	s := 1 - math.Abs(a-b)/den
	if s < 0 {
		return 0
	}
	return s
}
