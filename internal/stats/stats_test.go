package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %g, want %g", got, 32.0/7)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %g", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should yield NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Error("Min/Max wrong")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-element quantile wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

// Quantile must be monotone in q and bounded by [Min, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		q1, q2 := rng.Float64(), rng.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2+1e-12 && v1 >= Min(xs)-1e-12 && v2 <= Max(xs)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, rng)
	if !(lo < 10 && 10 < hi) {
		t.Errorf("CI [%g, %g] should contain the true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Errorf("CI [%g, %g] suspiciously wide", lo, hi)
	}
	l1, h1 := BootstrapCI([]float64{5}, 0.95, 10, rng)
	if l1 != 5 || h1 != 5 {
		t.Error("single-observation CI should collapse to the value")
	}
	l0, h0 := BootstrapCI(nil, 0.95, 10, rng)
	if !math.IsNaN(l0) || !math.IsNaN(h0) {
		t.Error("empty CI should be NaN")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = 3 x^2 exactly -> slope 2.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if got := LogLogSlope(xs, ys); !almost(got, 2, 1e-9) {
		t.Errorf("slope = %g, want 2", got)
	}
	// Non-positive points are skipped.
	if got := LogLogSlope([]float64{-1, 1, 2}, []float64{1, 1, 2}); !almost(got, 1, 1e-9) {
		t.Errorf("slope with skipped point = %g, want 1", got)
	}
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Error("underdetermined fit should be NaN")
	}
	if !math.IsNaN(LogLogSlope([]float64{2, 2}, []float64{1, 3})) {
		t.Error("vertical fit should be NaN")
	}
}

func TestLogLogSlopePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogLogSlope([]float64{1, 2}, []float64{1})
}
