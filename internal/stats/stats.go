// Package stats supplies the small statistical toolkit used by the
// experiment harness: summary statistics, quantiles, bootstrap
// confidence intervals, and log-log slope fitting for verifying
// asymptotic growth rates.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN when
// len(xs) < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// slice and panics for q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics the harness reports for a
// series of trial measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P25:    Quantile(xs, 0.25),
		Median: Median(xs),
		P75:    Quantile(xs, 0.75),
		P95:    Quantile(xs, 0.95),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// BootstrapCI estimates a two-sided confidence interval for the mean of
// xs at the given level (e.g. 0.95) using the percentile bootstrap with
// rounds resamples drawn via rng. It returns (lo, hi). For fewer than
// two observations it returns the single value (or NaNs) as both ends.
func BootstrapCI(xs []float64, level float64, rounds int, rng *rand.Rand) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	means := make([]float64, rounds)
	buf := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		means[r] = Mean(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}

// LogLogSlope fits err = a * x^b by least squares on (log x, log y) and
// returns the exponent b. Pairs with non-positive coordinates are
// skipped. It returns NaN when fewer than two usable pairs remain. The
// harness uses it to check growth rates (e.g. probing cost vs 1/ε
// should fit slope ≈ 2).
func LogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: mismatched series lengths")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	mx, my := Mean(lx), Mean(ly)
	var num, den float64
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
