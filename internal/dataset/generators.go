package dataset

import (
	"fmt"
	"math/rand"

	"monoclass/internal/geom"
)

// PlantedParams configures Planted.
type PlantedParams struct {
	N     int     // number of points
	D     int     // dimensionality
	Noise float64 // independent label-flip probability in [0, 1)
}

// Planted generates n points uniform in [0,1]^d labeled by the
// monotone ground truth h*(x) = 1 iff Σx[i] > d/2, then flips each
// label independently with probability Noise. The optimal error k* of
// the result is therefore ~Noise·n (exactly the number of flips that
// remain "fixable", computed by the passive solver when needed), and
// Noise = 0 yields a monotone-consistent set with k* = 0.
func Planted(rng *rand.Rand, p PlantedParams) []geom.LabeledPoint {
	if p.N < 0 || p.D <= 0 {
		panic(fmt.Sprintf("dataset: bad planted params %+v", p))
	}
	if p.Noise < 0 || p.Noise >= 1 {
		panic(fmt.Sprintf("dataset: noise %g outside [0,1)", p.Noise))
	}
	out := make([]geom.LabeledPoint, p.N)
	for i := range out {
		pt := make(geom.Point, p.D)
		sum := 0.0
		for k := range pt {
			pt[k] = rng.Float64()
			sum += pt[k]
		}
		label := geom.Negative
		if sum > float64(p.D)/2 {
			label = geom.Positive
		}
		if rng.Float64() < p.Noise {
			label ^= 1
		}
		out[i] = geom.LabeledPoint{P: pt, Label: label}
	}
	return out
}

// WidthParams configures WidthControlled.
type WidthParams struct {
	N     int     // total number of points (distributed over chains)
	W     int     // exact dominance width = number of chains
	Noise float64 // label-flip probability in [0, 1)
}

// WidthControlled generates a 2-D set whose dominance width is exactly
// W. It builds W chains of ~N/W points each; chain c ascends in both
// coordinates inside the block x ∈ [c·B, c·B+B), y ∈ [(W-1-c)·B, ...),
// so any two points in different chains are incomparable (larger x
// always comes with smaller y). Within chain c, labels follow a random
// threshold position (points above the threshold are positive), then
// flip with probability Noise.
//
// Every point of chain c is incomparable with every point of any other
// chain, so each chain is a maximal comparable component: the width is
// exactly W (one point per chain forms an antichain; W chains cover).
func WidthControlled(rng *rand.Rand, p WidthParams) []geom.LabeledPoint {
	if p.W <= 0 || p.N < p.W {
		panic(fmt.Sprintf("dataset: need N >= W >= 1, got N=%d W=%d", p.N, p.W))
	}
	if p.Noise < 0 || p.Noise >= 1 {
		panic(fmt.Sprintf("dataset: noise %g outside [0,1)", p.Noise))
	}
	out := make([]geom.LabeledPoint, 0, p.N)
	base := p.N / p.W
	extra := p.N % p.W
	// Block size leaves room for the longest chain's strictly
	// increasing offsets.
	block := float64(base + 2)
	for c := 0; c < p.W; c++ {
		length := base
		if c < extra {
			length++
		}
		threshold := rng.Intn(length + 1) // positions >= threshold are positive
		xBase := float64(c) * block
		yBase := float64(p.W-1-c) * block
		off := 0.0
		for i := 0; i < length; i++ {
			// Strictly increasing offsets keep the chain strict and
			// stay inside the block.
			off += (0.1 + 0.9*rng.Float64()) * (block - off - 1) / float64(length-i+1)
			pt := geom.Point{xBase + off, yBase + off}
			label := geom.Negative
			if i >= threshold {
				label = geom.Positive
			}
			if rng.Float64() < p.Noise {
				label ^= 1
			}
			out = append(out, geom.LabeledPoint{P: pt, Label: label})
		}
	}
	// Shuffle so algorithms cannot exploit generation order.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Uniform1D generates n 1-D points uniform in [0,1] labeled positive
// above tau, with independent flip probability noise.
func Uniform1D(rng *rand.Rand, n int, tau, noise float64) []geom.LabeledPoint {
	if n < 0 {
		panic(fmt.Sprintf("dataset: negative size %d", n))
	}
	if noise < 0 || noise >= 1 {
		panic(fmt.Sprintf("dataset: noise %g outside [0,1)", noise))
	}
	out := make([]geom.LabeledPoint, n)
	for i := range out {
		x := rng.Float64()
		label := geom.Negative
		if x > tau {
			label = geom.Positive
		}
		if rng.Float64() < noise {
			label ^= 1
		}
		out[i] = geom.LabeledPoint{P: geom.Point{x}, Label: label}
	}
	return out
}
