package dataset

import (
	"fmt"
	"math/rand"

	"monoclass/internal/geom"
)

// Adversarial generators: inputs that stress specific components, used
// by tests and the hardening benches.

// NoisyChain generates a single maximal-length chain (width 1) in 2-D
// — the diagonal — with threshold labels flipped at the given rate.
// It is the worst case for the paper's literal dense flow network
// (Θ(n²) dominating pairs, nearly all contending at moderate noise)
// and the best case for this implementation's sparse one (O(n) edges).
func NoisyChain(rng *rand.Rand, n int, noise float64) []geom.LabeledPoint {
	if n < 0 {
		panic(fmt.Sprintf("dataset: negative size %d", n))
	}
	if noise < 0 || noise >= 1 {
		panic(fmt.Sprintf("dataset: noise %g outside [0,1)", noise))
	}
	threshold := n / 2
	out := make([]geom.LabeledPoint, n)
	for i := range out {
		label := geom.Negative
		if i >= threshold {
			label = geom.Positive
		}
		if rng.Float64() < noise {
			label ^= 1
		}
		out[i] = geom.LabeledPoint{P: geom.Point{float64(i), float64(i)}, Label: label}
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// AntiDiagonal generates a pure antichain (width n) in 2-D with
// independent random labels: every point is its own chain, so the
// active algorithm degenerates to exhaustive probing — the regime
// Theorem 2's w-dependence predicts no savings for — and every
// labeling is monotone-consistent (k* = 0).
func AntiDiagonal(rng *rand.Rand, n int) []geom.LabeledPoint {
	if n < 0 {
		panic(fmt.Sprintf("dataset: negative size %d", n))
	}
	out := make([]geom.LabeledPoint, n)
	for i := range out {
		out[i] = geom.LabeledPoint{
			P:     geom.Point{float64(i), float64(n - 1 - i)},
			Label: geom.Label(rng.Intn(2)),
		}
	}
	return out
}

// LabelInversion generates the all-inverted chain: the bottom half of
// a single chain labeled positive and the top half negative — the
// maximum-k* input (k* = n/2: whatever the classifier does, half the
// chain disagrees). It stresses the g1/g2 estimators in the regime
// where every threshold's error is near |P|/2 and the α/β band never
// forms.
func LabelInversion(n int) []geom.LabeledPoint {
	if n < 0 {
		panic(fmt.Sprintf("dataset: negative size %d", n))
	}
	out := make([]geom.LabeledPoint, n)
	for i := range out {
		label := geom.Positive
		if i >= n/2 {
			label = geom.Negative
		}
		out[i] = geom.LabeledPoint{P: geom.Point{float64(i), float64(i)}, Label: label}
	}
	return out
}
