package dataset

import (
	"math/rand"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

func rawPoints(lab []geom.LabeledPoint) []geom.Point {
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	return pts
}

func TestNoisyChainStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lab := NoisyChain(rng, 500, 0.2)
	if len(lab) != 500 {
		t.Fatalf("len = %d", len(lab))
	}
	if w := chains.Width(rawPoints(lab)); w != 1 {
		t.Errorf("width = %d, want 1 (single chain)", w)
	}
	// Noiseless chain is monotone-consistent.
	clean := NoisyChain(rng, 300, 0)
	if geom.MonotoneViolations(clean) != 0 {
		t.Error("noiseless chain has violations")
	}
	ld := geom.LabeledDataset{Points: lab}
	kstar, err := passive.OptimalError(ld.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if kstar <= 0 || kstar > 0.3*500 {
		t.Errorf("k* = %g implausible for 20%% noise", kstar)
	}
}

func TestAntiDiagonalStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lab := AntiDiagonal(rng, 200)
	if w := chains.Width(rawPoints(lab)); w != 200 {
		t.Errorf("width = %d, want 200 (pure antichain)", w)
	}
	// Any labeling of an antichain is monotone-consistent: k* = 0.
	ld := geom.LabeledDataset{Points: lab}
	kstar, err := passive.OptimalError(ld.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if kstar != 0 {
		t.Errorf("k* = %g, want 0 on an antichain", kstar)
	}
}

func TestLabelInversionMaxError(t *testing.T) {
	lab := LabelInversion(100)
	ld := geom.LabeledDataset{Points: lab}
	kstar, err := passive.OptimalError(ld.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if kstar != 50 {
		t.Errorf("k* = %g, want n/2 = 50 on the inverted chain", kstar)
	}
}

func TestAdversarialPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, f := range []func(){
		func() { NoisyChain(rng, -1, 0) },
		func() { NoisyChain(rng, 5, 1) },
		func() { AntiDiagonal(rng, -1) },
		func() { LabelInversion(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
