package dataset

import (
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

// TestFigure1OptimalErrorIsThree reproduces the headline claim of
// Figure 1(a): the minimum error k* over all monotone classifiers is 3.
func TestFigure1OptimalErrorIsThree(t *testing.T) {
	pts := Figure1()
	ld := geom.LabeledDataset{Points: pts}
	sol, err := passive.Solve(ld.Weighted(), passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.WErr != 3 {
		t.Fatalf("k* = %g, paper says 3", sol.WErr)
	}
	// Cross-check with the exponential reference solver.
	naive, err := passive.NaiveSolve(ld.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	if naive.WErr != 3 {
		t.Fatalf("naive k* = %g, paper says 3", naive.WErr)
	}
}

// TestFigure1OptimalClassifierShape verifies Section 1.1's description
// of an optimal classifier: all black points mapped to 1 except p1,
// all white points mapped to 0 except p11 and p15 (unit weights).
func TestFigure1OptimalClassifierShape(t *testing.T) {
	pts := Figure1()
	ld := geom.LabeledDataset{Points: pts}
	sol, err := passive.Solve(ld.Weighted(), passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mis := map[int]bool{}
	for i, lp := range pts {
		if sol.Assignment[i] != lp.Label {
			mis[i] = true
		}
	}
	want := map[int]bool{0: true, 10: true, 14: true} // p1, p11, p15
	if len(mis) != len(want) {
		t.Fatalf("mis-classified set %v, want {p1,p11,p15}", mis)
	}
	for i := range want {
		if !mis[i] {
			t.Errorf("point p%d should be mis-classified", i+1)
		}
	}
}

// TestFigure1Width reproduces Section 1.2: the dominance width is 6,
// witnessed by the stated antichain, and the stated 6-chain
// decomposition is valid.
func TestFigure1Width(t *testing.T) {
	pts := Figure1()
	raw := make([]geom.Point, len(pts))
	for i, lp := range pts {
		raw[i] = lp.P
	}
	dec := chains.Decompose(raw)
	if dec.Width != 6 {
		t.Fatalf("width = %d, paper says 6", dec.Width)
	}
	if got := chains.Width2D(raw); got != 6 {
		t.Fatalf("Width2D = %d, paper says 6", got)
	}
	if err := chains.ValidateAntichain(raw, Figure1Antichain()); err != nil {
		t.Fatalf("paper's antichain invalid on fixture: %v", err)
	}
	if err := chains.ValidateDecomposition(raw, Figure1Chains()); err != nil {
		t.Fatalf("paper's chain decomposition invalid on fixture: %v", err)
	}
	if got := len(Figure1Antichain()); got != 6 {
		t.Fatalf("stated antichain has %d members, want 6", got)
	}
}

// TestFigure1ContendingSets reproduces Figure 2(a): the contending
// point sets.
func TestFigure1ContendingSets(t *testing.T) {
	pts := Figure1()
	negWant := map[int]bool{}
	for _, i := range Figure1ContendingNegative() {
		negWant[i] = true
	}
	posWant := map[int]bool{}
	for _, i := range Figure1ContendingPositive() {
		posWant[i] = true
	}
	for i := range pts {
		contending := false
		for j := range pts {
			if i == j || pts[i].Label == pts[j].Label {
				continue
			}
			if pts[i].Label == geom.Negative && geom.Dominates(pts[i].P, pts[j].P) {
				contending = true
			}
			if pts[i].Label == geom.Positive && geom.Dominates(pts[j].P, pts[i].P) {
				contending = true
			}
		}
		want := negWant[i] || posWant[i]
		if contending != want {
			t.Errorf("p%d: contending = %v, paper says %v", i+1, contending, want)
		}
	}
}

// TestFigure1WeightedOptimum reproduces Figure 1(b) + Figure 2(b): the
// optimal weighted error is 104, and the optimal classifier maps
// exactly {p10, p12, p16} to 1.
func TestFigure1WeightedOptimum(t *testing.T) {
	ws := Figure1Weighted()
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.WErr != 104 {
		t.Fatalf("optimal weighted error = %g, paper says 104", sol.WErr)
	}
	naive, err := passive.NaiveSolve(ws)
	if err != nil {
		t.Fatal(err)
	}
	if naive.WErr != 104 {
		t.Fatalf("naive optimal weighted error = %g, paper says 104", naive.WErr)
	}
	posWant := map[int]bool{9: true, 11: true, 15: true} // p10, p12, p16
	for i := range ws {
		got := sol.Assignment[i] == geom.Positive
		if got != posWant[i] {
			t.Errorf("p%d: assigned %v, paper's h' assigns %v", i+1, sol.Assignment[i], posWant[i])
		}
	}
	// The five mis-classified points are p1, p4, p9, p13, p14 with
	// weights 100+1+1+1+1 = 104 (the cut-edge set of Figure 2(b)).
	var sum float64
	for i, wp := range ws {
		if sol.Assignment[i] != wp.Label {
			sum += wp.Weight
		}
	}
	if sum != 104 {
		t.Fatalf("mis-classified weight %g, want 104", sum)
	}
}

// TestFigure1WeightedExampleClassifiers checks the two concrete
// classifiers discussed in Section 1.1 on the weighted input: the
// unweighted-optimal h has weighted error 220, while h' achieves 104.
func TestFigure1WeightedExampleClassifiers(t *testing.T) {
	ws := Figure1Weighted()
	pts := Figure1()
	// h: every black to 1 except p1; whites p11 and p15 to 1.
	h := func(p geom.Point) geom.Label {
		for i, lp := range pts {
			if lp.P.Equal(p) {
				switch i {
				case 0: // p1 -> 0
					return geom.Negative
				case 10, 14: // p11, p15 -> 1
					return geom.Positive
				default:
					return lp.Label
				}
			}
		}
		t.Fatalf("unknown point %v", p)
		return 0
	}
	if got := geom.WErr(ws, h); got != 220 {
		t.Errorf("w-err(h) = %g, paper says 220", got)
	}
	// h': exactly p10, p12, p16 to 1.
	hPrime := func(p geom.Point) geom.Label {
		for _, i := range []int{9, 11, 15} {
			if pts[i].P.Equal(p) {
				return geom.Positive
			}
		}
		return geom.Negative
	}
	if got := geom.WErr(ws, hPrime); got != 104 {
		t.Errorf("w-err(h') = %g, paper says 104", got)
	}
}
