package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

func TestPlantedNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := Planted(rng, PlantedParams{N: 200, D: 3, Noise: 0})
	if len(pts) != 200 {
		t.Fatalf("len = %d", len(pts))
	}
	if got := geom.MonotoneViolations(pts); got != 0 {
		t.Errorf("noiseless planted set has %d monotone violations", got)
	}
	for _, lp := range pts {
		if len(lp.P) != 3 {
			t.Fatal("wrong dimension")
		}
		for _, c := range lp.P {
			if c < 0 || c >= 1 {
				t.Fatalf("coordinate %g outside [0,1)", c)
			}
		}
	}
}

func TestPlantedNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := Planted(rng, PlantedParams{N: 400, D: 2, Noise: 0.2})
	ld := geom.LabeledDataset{Points: pts}
	kstar, err := passive.OptimalError(ld.Weighted())
	if err != nil {
		t.Fatal(err)
	}
	// With 20% noise the optimum must be positive but below the noise
	// count itself.
	if kstar <= 0 {
		t.Error("noisy planted set should not be monotone-consistent")
	}
	if kstar > 0.35*400 {
		t.Errorf("k* = %g suspiciously high for 20%% noise", kstar)
	}
}

func TestPlantedPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, f := range []func(){
		func() { Planted(rng, PlantedParams{N: -1, D: 2}) },
		func() { Planted(rng, PlantedParams{N: 1, D: 0}) },
		func() { Planted(rng, PlantedParams{N: 1, D: 2, Noise: 1}) },
		func() { WidthControlled(rng, WidthParams{N: 3, W: 5}) },
		func() { WidthControlled(rng, WidthParams{N: 5, W: 0}) },
		func() { WidthControlled(rng, WidthParams{N: 5, W: 2, Noise: -0.1}) },
		func() { Uniform1D(rng, -1, 0.5, 0) },
		func() { Uniform1D(rng, 5, 0.5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWidthControlledExactWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range []int{1, 2, 5, 13} {
		pts := WidthControlled(rng, WidthParams{N: 130, W: w, Noise: 0.1})
		if len(pts) != 130 {
			t.Fatalf("w=%d: len = %d", w, len(pts))
		}
		raw := make([]geom.Point, len(pts))
		for i, lp := range pts {
			raw[i] = lp.P
		}
		if got := chains.Width2D(raw); got != w {
			t.Errorf("w=%d: measured width %d", w, got)
		}
	}
}

func TestWidthControlledNoiselessConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := WidthControlled(rng, WidthParams{N: 80, W: 4, Noise: 0})
	if got := geom.MonotoneViolations(pts); got != 0 {
		t.Errorf("noiseless width-controlled set has %d violations", got)
	}
}

func TestUniform1D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := Uniform1D(rng, 300, 0.5, 0)
	if len(pts) != 300 {
		t.Fatal("wrong size")
	}
	for _, lp := range pts {
		want := geom.Negative
		if lp.P[0] > 0.5 {
			want = geom.Positive
		}
		if lp.Label != want {
			t.Fatal("noiseless labels must follow the threshold")
		}
	}
	noisy := Uniform1D(rng, 2000, 0.5, 0.3)
	flips := 0
	for _, lp := range noisy {
		want := geom.Negative
		if lp.P[0] > 0.5 {
			want = geom.Positive
		}
		if lp.Label != want {
			flips++
		}
	}
	if frac := float64(flips) / 2000; frac < 0.25 || frac > 0.35 {
		t.Errorf("flip fraction %g far from 0.3", frac)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ws := Figure1Weighted()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ws) {
		t.Fatalf("round trip length %d != %d", len(got), len(ws))
	}
	for i := range ws {
		if !got[i].P.Equal(ws[i].P) || got[i].Label != ws[i].Label || got[i].Weight != ws[i].Weight {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got[i], ws[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",            // too few columns
		"1,2,0,1\n3,4,0\n", // inconsistent dimensions
		"x,0,1\n",          // bad coordinate
		"1,2,7,1\n",        // bad label
		"1,2,0,zero\n",     // bad weight
		"1,2,0,-5\n",       // non-positive weight
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
	empty, err := ReadCSV(strings.NewReader(""))
	if err != nil || len(empty) != 0 {
		t.Error("empty CSV should parse to empty set")
	}
}
