// Package dataset provides synthetic input generators and fixtures for
// monotone classification, including an exact realization of the
// paper's Figure 1 worked example and the workload generators behind
// experiments E1–E7 (see DESIGN.md).
package dataset

import "monoclass/internal/geom"

// Figure1 reconstructs the 16-point 2-D input set of Figure 1(a) of
// the paper. The paper gives the poset structure rather than numeric
// coordinates; the coordinates below realize every stated fact, all of
// which are asserted by tests in this package and the experiment
// harness:
//
//   - labels: black (1) = {p1,p4,p9,p10,p12,p13,p14,p16}, the rest white (0);
//   - the optimal error k* is 3, achieved by mapping all black points
//     to 1 except p1 and all white points to 0 except p11 and p15;
//   - the dominance width is 6, witnessed by the antichain
//     {p10,p11,p12,p13,p14,p16};
//   - C1={p1,p2,p3,p4,p10}, C2={p11}, C3={p5,p9,p12}, C4={p16},
//     C5={p13}, C6={p6,p7,p8,p14,p15} is a valid 6-chain decomposition;
//   - the contending sets of Figure 2(a) are P0^con={p2,p3,p5,p11,p15}
//     and P1^con={p1,p4,p9,p13,p14};
//   - with the Figure 1(b) weights, the optimal weighted error is 104
//     and the optimal classifier maps exactly {p10,p12,p16} to 1.
//
// The returned slice is 0-indexed: index i holds the paper's point
// p_{i+1}.
func Figure1() []geom.LabeledPoint {
	const b, w = geom.Positive, geom.Negative
	return []geom.LabeledPoint{
		{P: geom.Point{2, 4}, Label: b},   // p1
		{P: geom.Point{2, 5}, Label: w},   // p2
		{P: geom.Point{3, 7}, Label: w},   // p3
		{P: geom.Point{4, 9}, Label: b},   // p4
		{P: geom.Point{5, 4}, Label: w},   // p5
		{P: geom.Point{9, 1}, Label: w},   // p6
		{P: geom.Point{11, 2}, Label: w},  // p7
		{P: geom.Point{13, 3}, Label: w},  // p8
		{P: geom.Point{6, 10}, Label: b},  // p9
		{P: geom.Point{4, 16}, Label: b},  // p10
		{P: geom.Point{6, 14}, Label: w},  // p11
		{P: geom.Point{8, 12}, Label: b},  // p12
		{P: geom.Point{13, 8}, Label: b},  // p13
		{P: geom.Point{15, 6}, Label: b},  // p14
		{P: geom.Point{16, 9}, Label: w},  // p15
		{P: geom.Point{11, 11}, Label: b}, // p16
	}
}

// Figure1Weighted applies the Figure 1(b) weights to the Figure 1
// point set: p1 carries weight 100, p11 and p15 weight 60, and every
// other point weight 1.
func Figure1Weighted() geom.WeightedSet {
	pts := Figure1()
	ws := make(geom.WeightedSet, len(pts))
	for i, lp := range pts {
		w := 1.0
		switch i {
		case 0: // p1
			w = 100
		case 10, 14: // p11, p15
			w = 60
		}
		ws[i] = geom.WeightedPoint{P: lp.P, Label: lp.Label, Weight: w}
	}
	return ws
}

// Figure1Chains returns the chain decomposition C1..C6 stated in
// Section 2 of the paper, as 0-based indices in ascending dominance
// order.
func Figure1Chains() [][]int {
	return [][]int{
		{0, 1, 2, 3, 9},   // C1 = p1 <= p2 <= p3 <= p4 <= p10
		{10},              // C2 = p11
		{4, 8, 11},        // C3 = p5 <= p9 <= p12
		{15},              // C4 = p16
		{12},              // C5 = p13
		{5, 6, 7, 13, 14}, // C6 = p6 <= p7 <= p8 <= p14 <= p15
	}
}

// Figure1Antichain returns the maximum antichain named in Section 1.2:
// {p10, p11, p12, p13, p14, p16}, as 0-based indices.
func Figure1Antichain() []int { return []int{9, 10, 11, 12, 13, 15} }

// Figure1ContendingNegative returns P0^con of Figure 2(a): the
// contending label-0 points {p2, p3, p5, p11, p15}, as 0-based indices.
func Figure1ContendingNegative() []int { return []int{1, 2, 4, 10, 14} }

// Figure1ContendingPositive returns P1^con of Figure 2(a): the
// contending label-1 points {p1, p4, p9, p13, p14}, as 0-based indices.
func Figure1ContendingPositive() []int { return []int{0, 3, 8, 12, 13} }
