package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and everything it accepts must round-trip losslessly.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2,0,1\n3,4,1,2\n")
	f.Add("")
	f.Add("1,2,0\n")
	f.Add("x,y,z\n")
	f.Add("-1e300,2,1,0.5\n")
	f.Add("1,2,0,1\n1,2\n")
	var sample bytes.Buffer
	WriteCSV(&sample, Figure1Weighted())
	f.Add(sample.String())
	f.Fuzz(func(t *testing.T, data string) {
		ws, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := ws.Validate(); err != nil {
			t.Fatalf("accepted set fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ws); err != nil {
			t.Fatalf("accepted set fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(ws) {
			t.Fatalf("round trip length %d != %d", len(back), len(ws))
		}
		for i := range ws {
			if !back[i].P.Equal(ws[i].P) || back[i].Label != ws[i].Label || back[i].Weight != ws[i].Weight {
				t.Fatalf("round trip row %d mismatch", i)
			}
		}
	})
}
