package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"monoclass/internal/geom"
)

// WriteCSV writes a weighted labeled set as CSV rows of the form
//
//	x1,x2,...,xd,label,weight
//
// with no header. The column count is d+2 for every row.
func WriteCSV(w io.Writer, ws geom.WeightedSet) error {
	cw := csv.NewWriter(w)
	for i, wp := range ws {
		row := make([]string, 0, len(wp.P)+2)
		for _, c := range wp.P {
			row = append(row, strconv.FormatFloat(c, 'g', -1, 64))
		}
		row = append(row, wp.Label.String())
		row = append(row, strconv.FormatFloat(wp.Weight, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses rows written by WriteCSV. Every row must have the
// same column count (at least 3: one coordinate, label, weight);
// labels must be 0 or 1 and weights positive.
func ReadCSV(r io.Reader) (geom.WeightedSet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	var out geom.WeightedSet
	dim := -1
	line := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line++
		if len(row) < 3 {
			return nil, fmt.Errorf("dataset: line %d has %d columns, need at least 3", line, len(row))
		}
		d := len(row) - 2
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("dataset: line %d has %d coordinates, want %d", line, d, dim)
		}
		pt := make(geom.Point, d)
		for k := 0; k < d; k++ {
			v, err := strconv.ParseFloat(row[k], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %d: %w", line, k+1, err)
			}
			pt[k] = v
		}
		labelInt, err := strconv.Atoi(row[d])
		if err != nil || (labelInt != 0 && labelInt != 1) {
			return nil, fmt.Errorf("dataset: line %d: invalid label %q", line, row[d])
		}
		weight, err := strconv.ParseFloat(row[d+1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: invalid weight %q", line, row[d+1])
		}
		wp := geom.WeightedPoint{P: pt, Label: geom.Label(labelInt), Weight: weight}
		if err := wp.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, wp)
	}
	return out, nil
}
