// Package audit inspects a labeled weighted dataset before training:
// how far it is from monotone-consistency, where its weight mass sits,
// and the structural quantities (dominance width, chain profile) that
// determine what the paper's algorithms will cost on it. The CLI's
// `monoclass audit` subcommand prints the report.
package audit

import (
	"fmt"
	"math"
	"strings"

	"monoclass/internal/geom"
	"monoclass/internal/problem"
)

// Report is the result of auditing one dataset.
type Report struct {
	N   int // points
	Dim int // dimensionality

	Positives int // label-1 count
	Negatives int // label-0 count

	WeightTotal float64
	WeightMin   float64
	WeightMax   float64

	// DuplicateConflicts counts coordinate-equal point groups carrying
	// both labels — irreducible error sources: any classifier must
	// mis-classify the lighter side of each group.
	DuplicateConflicts int

	// ViolationPairs counts ordered dominance pairs (label-0 over
	// label-1); zero means a perfect monotone classifier exists.
	ViolationPairs int

	// KStar is the optimal weighted error (Theorem 4), and
	// KStarFraction its share of the total weight.
	KStar         float64
	KStarFraction float64

	// Width is the dominance width; ChainLenMin/Max profile the
	// minimum chain decomposition — short chains mean the active
	// algorithm degenerates towards exhaustive probing.
	Width       int
	ChainLenMin int
	ChainLenMax int

	// Contending counts the points involved in at least one violation
	// (the |P^con| of Section 5).
	Contending int
}

// Audit computes a full report, preparing a throwaway Problem
// internally (auto matrix mode). Callers who already hold a prepared
// Problem — or will train on the same points next — use AuditProblem
// and pay the dominance build once.
func Audit(ws geom.WeightedSet) (Report, error) {
	if len(ws) == 0 {
		return Report{}, fmt.Errorf("audit: empty dataset")
	}
	p, err := problem.Prepare(ws, problem.Options{})
	if err != nil {
		return Report{}, err
	}
	return AuditProblem(p)
}

// AuditProblem computes the report from a prepared Problem: the
// violation count, decomposition profile, and optimum all come out of
// the shared artifact, so nothing is re-derived from raw points. On a
// Problem with an inexact (greedy) decomposition, Width is that
// cover's chain count — an upper bound on the dominance width.
func AuditProblem(p *problem.Problem) (Report, error) {
	ws := p.WeightedSet()
	r := Report{
		N:         p.N(),
		Dim:       p.Dim(),
		WeightMin: math.Inf(1),
		WeightMax: math.Inf(-1),
	}
	for _, wp := range ws {
		if wp.Label == geom.Positive {
			r.Positives++
		} else {
			r.Negatives++
		}
		r.WeightTotal += wp.Weight
		if wp.Weight < r.WeightMin {
			r.WeightMin = wp.Weight
		}
		if wp.Weight > r.WeightMax {
			r.WeightMax = wp.Weight
		}
	}

	// Duplicate conflicts: coordinate-equal groups with both labels.
	type groupInfo struct{ pos, neg bool }
	groups := make(map[string]*groupInfo, len(ws))
	for _, wp := range ws {
		key := wp.P.String()
		g := groups[key]
		if g == nil {
			g = &groupInfo{}
			groups[key] = g
		}
		if wp.Label == geom.Positive {
			g.pos = true
		} else {
			g.neg = true
		}
	}
	for _, g := range groups {
		if g.pos && g.neg {
			r.DuplicateConflicts++
		}
	}

	r.ViolationPairs = p.Violations()

	dec := p.Decomposition()
	r.Width = dec.Width
	r.ChainLenMin, r.ChainLenMax = p.N(), 0
	for _, c := range dec.Chains {
		if len(c) < r.ChainLenMin {
			r.ChainLenMin = len(c)
		}
		if len(c) > r.ChainLenMax {
			r.ChainLenMax = len(c)
		}
	}

	// Optimum and contending count via the prepared Theorem 4 network.
	sol, err := p.Solve()
	if err != nil {
		return Report{}, err
	}
	r.KStar = sol.WErr
	r.KStarFraction = sol.WErr / r.WeightTotal
	r.Contending = sol.Stats.Contending
	return r, nil
}

// String renders the report for terminals.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "points:               %d (dim %d)\n", r.N, r.Dim)
	fmt.Fprintf(&b, "labels:               %d positive / %d negative\n", r.Positives, r.Negatives)
	fmt.Fprintf(&b, "weights:              total %g, min %g, max %g\n", r.WeightTotal, r.WeightMin, r.WeightMax)
	fmt.Fprintf(&b, "duplicate conflicts:  %d point groups with both labels\n", r.DuplicateConflicts)
	fmt.Fprintf(&b, "violation pairs:      %d (0 means perfectly monotone-consistent)\n", r.ViolationPairs)
	fmt.Fprintf(&b, "contending points:    %d (|P^con| of Thm 4)\n", r.Contending)
	fmt.Fprintf(&b, "optimal error k*:     %g (%.2f%% of total weight)\n", r.KStar, 100*r.KStarFraction)
	fmt.Fprintf(&b, "dominance width:      %d (active probing scales with this)\n", r.Width)
	fmt.Fprintf(&b, "chain lengths:        min %d, max %d over %d chains\n", r.ChainLenMin, r.ChainLenMax, r.Width)
	return b.String()
}
