package audit

import (
	"fmt"
	"sort"
	"strings"

	"monoclass/internal/geom"
	"monoclass/internal/skyline"
)

// HasseDOT renders the Hasse diagram (transitive reduction of the
// dominance order) of a labeled point set as Graphviz DOT: positive
// points are filled black, negative points white; an edge points from
// the dominating point down to a covered point. Intended for small
// sets (it refuses more than 400 points); the paper's Figure 1 renders
// directly from the Figure1 fixture.
//
// Coordinate-equal points are collapsed into one node listing all
// their indices (equal points are mutually dominant, which a Hasse
// diagram cannot draw).
func HasseDOT(pts []geom.LabeledPoint) (string, error) {
	if len(pts) == 0 {
		return "", fmt.Errorf("audit: empty point set")
	}
	if len(pts) > 400 {
		return "", fmt.Errorf("audit: Hasse rendering limited to 400 points, got %d", len(pts))
	}

	// Collapse coordinate-equal points.
	type nodeInfo struct {
		point   geom.Point
		members []int
		pos     bool
		neg     bool
	}
	index := map[string]int{}
	var nodes []*nodeInfo
	for i, lp := range pts {
		key := lp.P.String()
		j, ok := index[key]
		if !ok {
			j = len(nodes)
			index[key] = j
			nodes = append(nodes, &nodeInfo{point: lp.P})
		}
		nodes[j].members = append(nodes[j].members, i)
		if lp.Label == geom.Positive {
			nodes[j].pos = true
		} else {
			nodes[j].neg = true
		}
	}

	// Covering edges: u covers v when v is maximal among the points u
	// strictly dominates.
	var edges [][2]int
	for u, nu := range nodes {
		var dominated []geom.Point
		var which []int
		for v, nv := range nodes {
			if u != v && geom.StrictlyDominates(nu.point, nv.point) {
				dominated = append(dominated, nv.point)
				which = append(which, v)
			}
		}
		if len(dominated) == 0 {
			continue
		}
		for _, k := range skyline.Maximal(dominated) {
			edges = append(edges, [2]int{u, which[k]})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})

	var b strings.Builder
	b.WriteString("digraph hasse {\n")
	b.WriteString("  rankdir=BT;\n") // dominated below, dominating above
	b.WriteString("  node [shape=circle, fontsize=10];\n")
	for i, n := range nodes {
		label := fmt.Sprintf("p%d", n.members[0]+1)
		if len(n.members) > 1 {
			parts := make([]string, len(n.members))
			for k, m := range n.members {
				parts[k] = fmt.Sprintf("p%d", m+1)
			}
			label = strings.Join(parts, ",")
		}
		style := "filled, solid"
		fill := "white"
		fontcolor := "black"
		switch {
		case n.pos && n.neg:
			fill = "gray"
		case n.pos:
			fill = "black"
			fontcolor = "white"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", style=\"%s\", fillcolor=\"%s\", fontcolor=\"%s\"];\n",
			i, label, style, fill, fontcolor)
	}
	for _, e := range edges {
		// rankdir=BT draws the arrow upward from covered to covering.
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e[1], e[0])
	}
	b.WriteString("}\n")
	return b.String(), nil
}
