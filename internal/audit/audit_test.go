package audit

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"monoclass/internal/dataset"
	"monoclass/internal/geom"
)

func TestAuditFigure1(t *testing.T) {
	ws := dataset.Figure1Weighted()
	r, err := Audit(ws)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 16 || r.Dim != 2 {
		t.Errorf("N/Dim = %d/%d", r.N, r.Dim)
	}
	if r.Positives != 8 || r.Negatives != 8 {
		t.Errorf("labels %d/%d, want 8/8", r.Positives, r.Negatives)
	}
	if r.WeightTotal != 233 { // 13·1 + 100 + 2·60
		t.Errorf("WeightTotal = %g, want 233", r.WeightTotal)
	}
	if r.KStar != 104 {
		t.Errorf("KStar = %g, want 104", r.KStar)
	}
	if r.Width != 6 {
		t.Errorf("Width = %d, want 6", r.Width)
	}
	if r.Contending != 10 {
		t.Errorf("Contending = %d, want 10", r.Contending)
	}
	if r.DuplicateConflicts != 0 {
		t.Errorf("DuplicateConflicts = %d, want 0", r.DuplicateConflicts)
	}
	if r.ViolationPairs == 0 {
		t.Error("Figure 1 has violations; audit found none")
	}
	out := r.String()
	for _, frag := range []string{"points:", "k*", "dominance width"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestAuditCleanAndConflicted(t *testing.T) {
	clean := geom.WeightedSet{
		{P: geom.Point{0, 0}, Label: geom.Negative, Weight: 1},
		{P: geom.Point{1, 1}, Label: geom.Positive, Weight: 2},
	}
	r, err := Audit(clean)
	if err != nil {
		t.Fatal(err)
	}
	if r.ViolationPairs != 0 || r.KStar != 0 || r.Contending != 0 {
		t.Errorf("clean set mis-audited: %+v", r)
	}
	conflicted := geom.WeightedSet{
		{P: geom.Point{1, 1}, Label: geom.Negative, Weight: 3},
		{P: geom.Point{1, 1}, Label: geom.Positive, Weight: 5},
	}
	r, err = Audit(conflicted)
	if err != nil {
		t.Fatal(err)
	}
	if r.DuplicateConflicts != 1 {
		t.Errorf("DuplicateConflicts = %d, want 1", r.DuplicateConflicts)
	}
	if r.KStar != 3 {
		t.Errorf("KStar = %g, want 3 (lighter side of the conflict)", r.KStar)
	}
}

func TestAuditErrors(t *testing.T) {
	if _, err := Audit(nil); err == nil {
		t.Error("empty set accepted")
	}
	bad := geom.WeightedSet{{P: geom.Point{1}, Label: geom.Positive, Weight: -1}}
	if _, err := Audit(bad); err == nil {
		t.Error("invalid weight accepted")
	}
}

func TestHasseDOTFigure1(t *testing.T) {
	dot, err := HasseDOT(dataset.Figure1())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"digraph hasse", "p1", "p16", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
	// The Hasse diagram of Figure 1 must contain the chain C1's
	// covering edges: p1 -> p2 (p2 covers p1).
	if !strings.Contains(dot, "n0 -> n1;") {
		t.Errorf("expected covering edge p1 -> p2 in:\n%s", dot)
	}
	// Transitive edge p1 -> p10 must NOT appear (p10 covers p4, not p1).
	if strings.Contains(dot, "n0 -> n9;") {
		t.Error("transitive edge leaked into the Hasse diagram")
	}
}

func TestHasseDOTCollapsesDuplicates(t *testing.T) {
	pts := []geom.LabeledPoint{
		{P: geom.Point{1, 1}, Label: geom.Positive},
		{P: geom.Point{1, 1}, Label: geom.Negative},
		{P: geom.Point{0, 0}, Label: geom.Negative},
	}
	dot, err := HasseDOT(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, `label="p1,p2"`) {
		t.Errorf("duplicates not collapsed:\n%s", dot)
	}
	if !strings.Contains(dot, `fillcolor="gray"`) {
		t.Errorf("mixed-label node not gray:\n%s", dot)
	}
}

func TestHasseDOTLimits(t *testing.T) {
	if _, err := HasseDOT(nil); err == nil {
		t.Error("empty set accepted")
	}
	big := make([]geom.LabeledPoint, 401)
	for i := range big {
		big[i] = geom.LabeledPoint{P: geom.Point{float64(i)}, Label: geom.Negative}
	}
	if _, err := HasseDOT(big); err == nil {
		t.Error("oversized set accepted")
	}
}

// Covering edges must reconstruct the full dominance relation via
// transitivity: reachability in the Hasse DAG == strict dominance.
func TestHasseReachabilityEqualsDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		pts := make([]geom.LabeledPoint, n)
		seen := map[string]bool{}
		for i := range pts {
			for {
				p := geom.Point{float64(rng.Intn(5)), float64(rng.Intn(5))}
				if !seen[p.String()] {
					seen[p.String()] = true
					pts[i] = geom.LabeledPoint{P: p, Label: geom.Label(rng.Intn(2))}
					break
				}
			}
		}
		dot, err := HasseDOT(pts)
		if err != nil {
			t.Fatal(err)
		}
		// Parse edges back out: an arrow "nA -> nB" is drawn upward,
		// meaning B covers A; record the downward adjacency B -> A.
		down := make([][]int, n)
		for _, line := range strings.Split(dot, "\n") {
			line = strings.TrimSpace(line)
			var a, b int
			if cnt, err := fmt.Sscanf(line, "n%d -> n%d;", &a, &b); err == nil && cnt == 2 {
				down[b] = append(down[b], a)
			}
		}
		reach := func(u, v int) bool {
			stack := []int{u}
			visited := make([]bool, n)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == v {
					return true
				}
				if visited[x] {
					continue
				}
				visited[x] = true
				stack = append(stack, down[x]...)
			}
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				want := geom.StrictlyDominates(pts[u].P, pts[v].P)
				if got := reach(u, v); got != want {
					t.Fatalf("trial %d: reach(%d,%d)=%v but dominance=%v\n%s", trial, u, v, got, want, dot)
				}
			}
		}
	}
}
