package classifier

import (
	"bytes"
	"strings"
	"testing"

	"monoclass/internal/geom"
)

// FuzzReadModel feeds arbitrary bytes to the model loader: it must
// never panic, and any accepted model must re-serialize and reload to
// an equivalent classifier.
func FuzzReadModel(f *testing.F) {
	var sample bytes.Buffer
	WriteModel(&sample, MustAnchorSet(2, []geom.Point{{1, 2}, {0, 5}}))
	f.Add(sample.String())
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[["+inf","-inf"]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":1,"anchors":[]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, data string) {
		h, err := ReadModel(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, h); err != nil {
			t.Fatalf("accepted model fails to serialize: %v", err)
		}
		back, err := ReadModel(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Dim() != h.Dim() || len(back.Anchors()) != len(h.Anchors()) {
			t.Fatal("round trip changed the model shape")
		}
	})
}
