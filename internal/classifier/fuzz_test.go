package classifier

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"monoclass/internal/geom"
)

// figure1ModelJSON is the golden serialization of the Figure 1 optimal
// classifier (internal/conformance/testdata/figure1-model.golden.json).
const figure1ModelJSON = `{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[[4,16],[8,12],[11,11]]}`

// FuzzModelRoundTrip attacks model (de)serialization fidelity: for any
// input bytes the loader either errors cleanly (never panics) or
// accepts a model that save→reload reproduces exactly — same shape AND
// the same classification on probe points derived from the anchors
// (each anchor, nudged below, nudged above, and mixed across anchors),
// where infinities and extreme magnitudes make naive float printing
// lossy.
func FuzzModelRoundTrip(f *testing.F) {
	// Seed corpus: the Figure 1 golden model, valid edge cases, and
	// truncated / malformed / type-confused / hostile variants.
	f.Add(figure1ModelJSON)
	f.Add(figure1ModelJSON[:len(figure1ModelJSON)/2]) // truncated mid-anchor
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[["-inf","-inf"]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":3,"anchors":[[1e308,-1e308,5e-324]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[[4,16],[4,16]]}`)
	f.Add(`{"format":"monoclass-anchors","version":2,"dim":1,"anchors":[[0]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[[1,"nan"]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[[1],[2,3]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":-1,"anchors":[]}`)
	f.Add(`{"format":"evil","version":1,"dim":1,"anchors":[[0]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":1,"anchors":{"0":[1]}}`)
	f.Add(`[{"format":"monoclass-anchors"}]`)
	f.Add("\x00\xff\xfe")
	f.Add(strings.Repeat("[", 64))
	f.Fuzz(func(t *testing.T, data string) {
		h, err := ReadModel(strings.NewReader(data))
		if err != nil {
			return // rejected cleanly — that's fine; panics fail the fuzz run
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, h); err != nil {
			t.Fatalf("accepted model fails to serialize: %v", err)
		}
		back, err := ReadModel(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected:\n%s\nerror: %v", buf.String(), err)
		}
		if back.Dim() != h.Dim() {
			t.Fatalf("round trip changed dim %d → %d", h.Dim(), back.Dim())
		}
		ha, ba := h.Anchors(), back.Anchors()
		if len(ba) != len(ha) {
			t.Fatalf("round trip changed anchor count %d → %d", len(ha), len(ba))
		}
		for _, p := range probePoints(ha, h.Dim()) {
			if got, want := back.Classify(p), h.Classify(p); got != want {
				t.Fatalf("round trip changed Classify(%v): %v → %v", p, want, got)
			}
		}
	})
}

// probePoints derives classification probes from the anchors: each
// anchor itself (boundary, inclusive), each anchor nudged just below /
// above per coordinate, and coordinate-wise mixes of anchor pairs.
func probePoints(anchors []geom.Point, dim int) []geom.Point {
	probes := []geom.Point{make(geom.Point, dim)} // origin
	for _, a := range anchors {
		probes = append(probes, a)
		for k := range a {
			lo, hi := append(geom.Point(nil), a...), append(geom.Point(nil), a...)
			lo[k] = math.Nextafter(lo[k], math.Inf(-1))
			hi[k] = math.Nextafter(hi[k], math.Inf(1))
			probes = append(probes, lo, hi)
		}
	}
	for i := 0; i+1 < len(anchors) && i < 4; i++ {
		mix := append(geom.Point(nil), anchors[i]...)
		for k := range mix {
			if k%2 == 1 {
				mix[k] = anchors[i+1][k]
			}
		}
		probes = append(probes, mix)
	}
	return probes
}

// FuzzReadModel feeds arbitrary bytes to the model loader: it must
// never panic, and any accepted model must re-serialize and reload to
// an equivalent classifier.
func FuzzReadModel(f *testing.F) {
	var sample bytes.Buffer
	WriteModel(&sample, MustAnchorSet(2, []geom.Point{{1, 2}, {0, 5}}))
	f.Add(sample.String())
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[["+inf","-inf"]]}`)
	f.Add(`{"format":"monoclass-anchors","version":1,"dim":1,"anchors":[]}`)
	f.Add(`{}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, data string) {
		h, err := ReadModel(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteModel(&buf, h); err != nil {
			t.Fatalf("accepted model fails to serialize: %v", err)
		}
		back, err := ReadModel(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Dim() != h.Dim() || len(back.Anchors()) != len(h.Anchors()) {
			t.Fatal("round trip changed the model shape")
		}
	})
}
