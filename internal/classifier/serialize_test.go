package classifier

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"monoclass/internal/geom"
)

func TestModelRoundTrip(t *testing.T) {
	h := MustAnchorSet(3, []geom.Point{{1, 2, 3}, {0, 5, 1}})
	var buf bytes.Buffer
	if err := WriteModel(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != 3 || len(back.Anchors()) != len(h.Anchors()) {
		t.Fatalf("shape mismatch after round trip: %v", back)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
		if h.Classify(p) != back.Classify(p) {
			t.Fatalf("classification changed at %v", p)
		}
	}
}

func TestModelRoundTripInfinities(t *testing.T) {
	h := ConstPositive(2)
	var buf bytes.Buffer
	if err := WriteModel(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"-inf"`) {
		t.Errorf("infinite anchor not encoded symbolically:\n%s", buf.String())
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classify(geom.Point{-1e300, -1e300}) != geom.Positive {
		t.Error("constant-positive classifier lost in round trip")
	}
}

func TestModelRoundTripEmpty(t *testing.T) {
	h := ConstNegative(4)
	var buf bytes.Buffer
	if err := WriteModel(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classify(geom.Point{9, 9, 9, 9}) != geom.Negative {
		t.Error("constant-negative classifier lost in round trip")
	}
}

func TestReadModelRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"format":"other","version":1,"dim":2}`,
		`{"format":"monoclass-anchors","version":9,"dim":2}`,
		`{"format":"monoclass-anchors","version":1,"dim":2,"anchors":[[1]]}`,     // wrong anchor dim
		`{"format":"monoclass-anchors","version":1,"dim":0,"anchors":[]}`,        // bad dim
		`{"format":"monoclass-anchors","version":1,"dim":1,"anchors":[["huh"]]}`, // bad coord string
		`{"format":"monoclass-anchors","version":1,"dim":1,"anchors":[[{}]]}`,    // bad coord type
	}
	for i, c := range cases {
		if _, err := ReadModel(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed model accepted", i)
		}
	}
}

func TestReadModelPrunesRedundantAnchors(t *testing.T) {
	in := `{"format":"monoclass-anchors","version":1,"dim":2,
	        "anchors":[[1,1],[2,2],[1,1]]}`
	h, err := ReadModel(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Anchors()) != 1 {
		t.Errorf("anchors = %d, want 1 after pruning", len(h.Anchors()))
	}
}
