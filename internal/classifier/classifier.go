// Package classifier provides the monotone classifier representations
// used throughout the library.
//
// A classifier is a total function h : R^d -> {0,1}. It is monotone
// when h(p) >= h(q) whenever p dominates q (Section 1.1). Two concrete
// families cover everything the paper needs:
//
//   - Threshold1D: the 1-D form of Eq. (6), h(p) = 1 iff p > τ. Every
//     monotone classifier on R is of this form.
//   - AnchorSet: h(x) = 1 iff x dominates one of a finite set of
//     "anchor" points. Every monotone classifier restricted to a finite
//     point set P is realized by some anchor set (take the minimal
//     points mapped to 1), so this family is the canonical output
//     representation of both the passive and the active algorithms.
package classifier

import (
	"fmt"
	"math"
	"sort"

	"monoclass/internal/classidx"
	"monoclass/internal/geom"
	"monoclass/internal/skyline"
)

// Classifier is a total binary classifier on R^d.
type Classifier interface {
	// Classify returns the predicted label of p.
	Classify(p geom.Point) geom.Label
}

// BatchClassifier is a Classifier with a vectorized entry point.
// ClassifyBatchInto fills dst[i] with the label of pts[i]; dst and pts
// must have equal length. Implementations are safe for concurrent use.
type BatchClassifier interface {
	Classifier
	ClassifyBatchInto(dst []geom.Label, pts []geom.Point)
}

// Func adapts a Classifier to the geom.ClassifyFunc form consumed by
// the error functionals.
func Func(h Classifier) geom.ClassifyFunc { return h.Classify }

// Threshold1D is the one-dimensional monotone classifier h^τ of
// Eq. (6): h(p) = 1 iff p[0] > Tau. Tau = -Inf yields the constant-1
// classifier; Tau = +Inf the constant-0 classifier.
type Threshold1D struct {
	Tau float64
}

// Classify implements Classifier. It panics on points that are not
// one-dimensional.
func (t Threshold1D) Classify(p geom.Point) geom.Label {
	if len(p) != 1 {
		panic(fmt.Sprintf("classifier: Threshold1D applied to %d-dimensional point", len(p)))
	}
	if p[0] > t.Tau {
		return geom.Positive
	}
	return geom.Negative
}

// String formats the classifier.
func (t Threshold1D) String() string { return fmt.Sprintf("h^{τ=%g}", t.Tau) }

// AnchorSet is the anchor-based monotone classifier: Classify(x) = 1
// iff x dominates (or equals) one of the anchors. The zero value (no
// anchors) is the constant-0 classifier.
//
// Every AnchorSet built through NewAnchorSet carries an immutable
// classification index (internal/classidx) constructed once at build
// time: sorted fast paths in 1-D/2-D and a bit-packed anchor matrix
// for d >= 3. The index is read-only after construction, so an
// AnchorSet is safe for concurrent use.
type AnchorSet struct {
	anchors []geom.Point
	dim     int
	idx     *classidx.Index
}

// NewAnchorSet builds an anchor classifier over points of dimension
// dim. Redundant anchors (those dominating another anchor) are pruned,
// so Anchors() returns an antichain of minimal positive points.
func NewAnchorSet(dim int, anchors []geom.Point) (*AnchorSet, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("classifier: dimension %d must be positive", dim)
	}
	for i, a := range anchors {
		if len(a) != dim {
			return nil, fmt.Errorf("classifier: anchor %d has dimension %d, want %d", i, len(a), dim)
		}
	}
	pruned := pruneToMinimal(anchors)
	return &AnchorSet{anchors: pruned, dim: dim, idx: classidx.Build(dim, pruned)}, nil
}

// MustAnchorSet is NewAnchorSet that panics on error.
func MustAnchorSet(dim int, anchors []geom.Point) *AnchorSet {
	a, err := NewAnchorSet(dim, anchors)
	if err != nil {
		panic(err)
	}
	return a
}

// ConstNegative returns the constant-0 classifier in dimension dim.
func ConstNegative(dim int) *AnchorSet { return MustAnchorSet(dim, nil) }

// ConstPositive returns the constant-1 classifier in dimension dim,
// realized by a single anchor at (-Inf, ..., -Inf).
func ConstPositive(dim int) *AnchorSet {
	bottom := make(geom.Point, dim)
	for i := range bottom {
		bottom[i] = math.Inf(-1)
	}
	return MustAnchorSet(dim, []geom.Point{bottom})
}

// pruneToMinimal removes every anchor that strictly dominates another
// anchor and deduplicates coordinate-equal anchors, leaving the minimal
// elements (an antichain). An anchor classifier only depends on the
// minimal anchors, since dominating a non-minimal anchor implies
// dominating a minimal one below it. The skyline package supplies the
// frontier (O(n log n) in 2-D).
func pruneToMinimal(anchors []geom.Point) []geom.Point {
	var out []geom.Point
	for _, idx := range skyline.Minimal(anchors) {
		out = append(out, anchors[idx].Clone())
	}
	return out
}

// Classify implements Classifier through the prebuilt index. The
// zero-value AnchorSet (no index) falls back to the scalar scan.
func (a *AnchorSet) Classify(p geom.Point) geom.Label {
	if a.idx != nil {
		return a.idx.Classify(p)
	}
	return a.ClassifyScalar(p)
}

// ClassifyScalar is the literal anchor scan — the reference semantics
// the indexed paths must reproduce. The conformance harness uses it as
// the differential oracle; hot paths should call Classify instead.
func (a *AnchorSet) ClassifyScalar(p geom.Point) geom.Label {
	if len(p) != a.dim {
		panic(fmt.Sprintf("classifier: AnchorSet(dim %d) applied to %d-dimensional point", a.dim, len(p)))
	}
	for _, anchor := range a.anchors {
		if geom.Dominates(p, anchor) {
			return geom.Positive
		}
	}
	return geom.Negative
}

// ClassifyBatchInto implements BatchClassifier: dst[i] receives the
// label of pts[i]. The batch kernel sorts the batch internally and
// shares dominance work across it, with zero steady-state allocations.
func (a *AnchorSet) ClassifyBatchInto(dst []geom.Label, pts []geom.Point) {
	if a.idx != nil {
		a.idx.ClassifyBatchInto(dst, pts)
		return
	}
	if len(dst) != len(pts) {
		panic(fmt.Sprintf("classifier: dst length %d != batch length %d", len(dst), len(pts)))
	}
	for i, p := range pts {
		dst[i] = a.ClassifyScalar(p)
	}
}

// Anchors returns the minimal anchor points. The caller must not
// modify the returned slices.
func (a *AnchorSet) Anchors() []geom.Point { return a.anchors }

// Dim returns the dimensionality of the classifier's domain.
func (a *AnchorSet) Dim() int { return a.dim }

// String summarizes the classifier.
func (a *AnchorSet) String() string {
	return fmt.Sprintf("AnchorSet(dim=%d, %d anchors)", a.dim, len(a.anchors))
}

// FromAssignment builds the anchor classifier induced by a label
// assignment over a finite point set: the anchors are the minimal
// points assigned 1. It fails when the assignment itself violates
// monotonicity on pts (a 0-assigned point dominating a 1-assigned
// point), because then no monotone extension agrees with it.
func FromAssignment(pts []geom.Point, assign []geom.Label) (*AnchorSet, error) {
	if len(pts) != len(assign) {
		return nil, fmt.Errorf("classifier: %d points but %d labels", len(pts), len(assign))
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("classifier: empty assignment (dimension unknown)")
	}
	dim := len(pts[0])
	var pos []geom.Point
	for i, p := range pts {
		switch assign[i] {
		case geom.Positive:
			pos = append(pos, p)
		case geom.Negative:
		default:
			return nil, fmt.Errorf("classifier: invalid label %d at index %d", assign[i], i)
		}
	}
	h, err := NewAnchorSet(dim, pos)
	if err != nil {
		return nil, err
	}
	// The anchor extension classifies p positive iff p dominates some
	// 1-assigned point; verify it reproduces the assignment (exactly
	// the monotone-consistency condition).
	for i, p := range pts {
		if h.Classify(p) != assign[i] {
			return nil, fmt.Errorf("classifier: assignment is not monotone-consistent at point %d (%v)", i, p)
		}
	}
	return h, nil
}

// IsMonotoneOn audits monotonicity of an arbitrary classifier over a
// finite probe set: for every ordered pair p ⪰ q it checks
// h(p) >= h(q). It returns the first violating pair, or ok = true.
// Cost is O(d·n²); intended for tests and validation, not hot paths.
func IsMonotoneOn(pts []geom.Point, h Classifier) (ok bool, p, q geom.Point) {
	labels := make([]geom.Label, len(pts))
	for i, pt := range pts {
		labels[i] = h.Classify(pt)
	}
	for i := range pts {
		if labels[i] != geom.Negative {
			continue
		}
		for j := range pts {
			if labels[j] != geom.Positive || i == j {
				continue
			}
			if geom.Dominates(pts[i], pts[j]) {
				return false, pts[i], pts[j]
			}
		}
	}
	return true, nil, nil
}

// BestThreshold1D computes, by exhaustive scan over the effective
// classifier set H_mono(P) of Eq. (7), a threshold minimizing the
// weighted error on a 1-D weighted set. It is the exact passive solver
// for d = 1 and runs in O(n log n). Ties are broken towards the
// smallest threshold, preferring -Inf.
func BestThreshold1D(ws geom.WeightedSet) (Threshold1D, float64) {
	if len(ws) == 0 {
		return Threshold1D{Tau: math.Inf(-1)}, 0
	}
	sorted := append(geom.WeightedSet(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].P[0] < sorted[j].P[0] })

	// err(τ) = weight of positives with p <= τ + weight of negatives
	// with p > τ. Start at τ = -Inf: all points predicted 1, so the
	// error is the total negative weight. Sweeping τ rightwards past a
	// point flips its prediction to 0: positives start costing,
	// negatives stop.
	var errNow float64
	for _, wp := range sorted {
		if wp.Label == geom.Negative {
			errNow += wp.Weight
		}
	}
	bestTau := math.Inf(-1)
	bestErr := errNow
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].P[0] == sorted[i].P[0] {
			if sorted[j].Label == geom.Positive {
				errNow += sorted[j].Weight
			} else {
				errNow -= sorted[j].Weight
			}
			j++
		}
		if errNow < bestErr {
			bestErr = errNow
			bestTau = sorted[i].P[0]
		}
		i = j
	}
	return Threshold1D{Tau: bestTau}, bestErr
}
