package classifier

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"monoclass/internal/geom"
)

// modelFile is the on-disk JSON representation of a monotone
// classifier. Version guards future format changes; infinities (used
// by the constant-positive classifier's bottom anchor) are encoded as
// strings because JSON has no literal for them.
type modelFile struct {
	Format  string       `json:"format"`  // always "monoclass-anchors"
	Version int          `json:"version"` // currently 1
	Dim     int          `json:"dim"`
	Anchors [][]jsonCoor `json:"anchors"`
}

// jsonCoor wraps a coordinate so ±Inf survive the round trip.
type jsonCoor struct {
	value float64
}

// MarshalJSON implements json.Marshaler.
func (c jsonCoor) MarshalJSON() ([]byte, error) {
	switch {
	case math.IsInf(c.value, -1):
		return []byte(`"-inf"`), nil
	case math.IsInf(c.value, 1):
		return []byte(`"+inf"`), nil
	default:
		return json.Marshal(c.value)
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *jsonCoor) UnmarshalJSON(data []byte) error {
	var f float64
	if err := json.Unmarshal(data, &f); err == nil {
		c.value = f
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("classifier: invalid coordinate %s", data)
	}
	switch s {
	case "-inf":
		c.value = math.Inf(-1)
	case "+inf":
		c.value = math.Inf(1)
	default:
		return fmt.Errorf("classifier: invalid coordinate string %q", s)
	}
	return nil
}

// WriteModel serializes the anchor classifier as versioned JSON.
func WriteModel(w io.Writer, h *AnchorSet) error {
	mf := modelFile{Format: "monoclass-anchors", Version: 1, Dim: h.Dim()}
	for _, a := range h.Anchors() {
		row := make([]jsonCoor, len(a))
		for i, v := range a {
			row[i] = jsonCoor{value: v}
		}
		mf.Anchors = append(mf.Anchors, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(mf)
}

// ReadModel deserializes a classifier written by WriteModel,
// validating format, version, and anchor dimensionality.
func ReadModel(r io.Reader) (*AnchorSet, error) {
	var mf modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("classifier: decoding model: %w", err)
	}
	if mf.Format != "monoclass-anchors" {
		return nil, fmt.Errorf("classifier: unknown model format %q", mf.Format)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("classifier: unsupported model version %d", mf.Version)
	}
	anchors := make([]geom.Point, len(mf.Anchors))
	for i, row := range mf.Anchors {
		p := make(geom.Point, len(row))
		for k, c := range row {
			if math.IsNaN(c.value) {
				return nil, fmt.Errorf("classifier: anchor %d has NaN coordinate", i)
			}
			p[k] = c.value
		}
		anchors[i] = p
	}
	return NewAnchorSet(mf.Dim, anchors)
}
