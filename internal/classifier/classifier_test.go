package classifier

import (
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func TestThreshold1D(t *testing.T) {
	h := Threshold1D{Tau: 2}
	if h.Classify(geom.Point{3}) != geom.Positive {
		t.Error("3 > 2 should be positive")
	}
	if h.Classify(geom.Point{2}) != geom.Negative {
		t.Error("boundary must be negative (strict >)")
	}
	if h.Classify(geom.Point{1}) != geom.Negative {
		t.Error("1 should be negative")
	}
	allPos := Threshold1D{Tau: math.Inf(-1)}
	if allPos.Classify(geom.Point{-1e18}) != geom.Positive {
		t.Error("-Inf threshold should classify everything positive")
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestThreshold1DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Threshold1D{}.Classify(geom.Point{1, 2})
}

func TestAnchorSetBasics(t *testing.T) {
	h := MustAnchorSet(2, []geom.Point{{1, 1}})
	cases := []struct {
		p    geom.Point
		want geom.Label
	}{
		{geom.Point{1, 1}, geom.Positive}, // equal to anchor
		{geom.Point{2, 1}, geom.Positive},
		{geom.Point{0, 5}, geom.Negative},
		{geom.Point{0, 0}, geom.Negative},
	}
	for _, c := range cases {
		if got := h.Classify(c.p); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if h.Dim() != 2 {
		t.Error("Dim wrong")
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestAnchorSetPruning(t *testing.T) {
	h := MustAnchorSet(2, []geom.Point{
		{1, 1},
		{2, 2}, // dominates (1,1): redundant
		{1, 1}, // duplicate: dropped
		{0, 3}, // incomparable: kept
	})
	if got := len(h.Anchors()); got != 2 {
		t.Errorf("anchors after pruning = %d, want 2", got)
	}
	// Pruning must not change the classification anywhere.
	full := MustAnchorSet(2, []geom.Point{{1, 1}, {2, 2}, {1, 1}, {0, 3}})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := geom.Point{rng.Float64() * 4, rng.Float64() * 4}
		if h.Classify(p) != full.Classify(p) {
			t.Fatalf("pruning changed classification at %v", p)
		}
	}
}

func TestConstClassifiers(t *testing.T) {
	neg := ConstNegative(3)
	pos := ConstPositive(3)
	pts := []geom.Point{{0, 0, 0}, {-1e9, 5, 2}, {1e9, 1e9, 1e9}}
	for _, p := range pts {
		if neg.Classify(p) != geom.Negative {
			t.Errorf("ConstNegative(%v) wrong", p)
		}
		if pos.Classify(p) != geom.Positive {
			t.Errorf("ConstPositive(%v) wrong", p)
		}
	}
}

func TestNewAnchorSetErrors(t *testing.T) {
	if _, err := NewAnchorSet(0, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewAnchorSet(2, []geom.Point{{1}}); err == nil {
		t.Error("anchor dimension mismatch accepted")
	}
}

func TestAnchorSetClassifyPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConstNegative(2).Classify(geom.Point{1})
}

func TestAnchorSetIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	anchors := []geom.Point{{1, 3}, {3, 1}, {2, 2}}
	h := MustAnchorSet(2, anchors)
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = geom.Point{float64(rng.Intn(6)), float64(rng.Intn(6))}
	}
	if ok, p, q := IsMonotoneOn(pts, h); !ok {
		t.Errorf("AnchorSet violated monotonicity: h(%v)=0 but h(%v)=1 with %v ⪰ %v", p, q, p, q)
	}
}

type rogueClassifier struct{}

// Classify is deliberately non-monotone: positive iff x+y is even.
func (rogueClassifier) Classify(p geom.Point) geom.Label {
	if int(p[0]+p[1])%2 == 0 {
		return geom.Positive
	}
	return geom.Negative
}

func TestIsMonotoneOnDetectsViolation(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {1, 1}}
	ok, p, q := IsMonotoneOn(pts, rogueClassifier{})
	if ok {
		t.Fatal("non-monotone classifier passed the audit")
	}
	if !geom.Dominates(p, q) {
		t.Error("reported violation pair is not a dominance pair")
	}
}

func TestFromAssignment(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {2, 0}, {0, 2}}
	assign := []geom.Label{0, 1, 0, 1}
	h, err := FromAssignment(pts, assign)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if h.Classify(p) != assign[i] {
			t.Errorf("point %d: classified %v, want %v", i, h.Classify(p), assign[i])
		}
	}
	// (3,3) dominates the positive (1,1): must be positive.
	if h.Classify(geom.Point{3, 3}) != geom.Positive {
		t.Error("extension not monotone upward")
	}
}

func TestFromAssignmentRejectsInconsistent(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}}
	// (1,1) assigned 0 while dominated (0,0) assigned 1: impossible.
	if _, err := FromAssignment(pts, []geom.Label{1, 0}); err == nil {
		t.Error("non-monotone assignment accepted")
	}
	if _, err := FromAssignment(pts, []geom.Label{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromAssignment(nil, nil); err == nil {
		t.Error("empty assignment accepted")
	}
	if _, err := FromAssignment(pts, []geom.Label{0, 9}); err == nil {
		t.Error("invalid label accepted")
	}
}

func TestBestThreshold1DExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ws := make(geom.WeightedSet, n)
		for i := range ws {
			ws[i] = geom.WeightedPoint{
				P:      geom.Point{float64(rng.Intn(8))},
				Label:  geom.Label(rng.Intn(2)),
				Weight: float64(1 + rng.Intn(5)),
			}
		}
		h, got := BestThreshold1D(ws)
		// Exhaustive check over the effective classifier set.
		best := math.Inf(1)
		taus := []float64{math.Inf(-1)}
		for _, wp := range ws {
			taus = append(taus, wp.P[0])
		}
		for _, tau := range taus {
			e := geom.WErr(ws, Threshold1D{Tau: tau}.Classify)
			if e < best {
				best = e
			}
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: BestThreshold1D err %g, want %g", trial, got, best)
		}
		if e := geom.WErr(ws, h.Classify); math.Abs(e-got) > 1e-9 {
			t.Fatalf("trial %d: reported err %g but classifier achieves %g", trial, got, e)
		}
	}
}

func TestBestThreshold1DEmptyAndPure(t *testing.T) {
	h, e := BestThreshold1D(nil)
	if e != 0 || !math.IsInf(h.Tau, -1) {
		t.Error("empty set should yield the all-positive classifier at zero error")
	}
	pure := geom.WeightedSet{
		{P: geom.Point{1}, Label: geom.Positive, Weight: 1},
		{P: geom.Point{2}, Label: geom.Positive, Weight: 1},
	}
	h, e = BestThreshold1D(pure)
	if e != 0 {
		t.Errorf("pure positive set: err %g, want 0", e)
	}
	if h.Classify(geom.Point{1}) != geom.Positive {
		t.Error("pure positive set: classifier must accept all points")
	}
	pureNeg := geom.WeightedSet{
		{P: geom.Point{1}, Label: geom.Negative, Weight: 1},
	}
	_, e = BestThreshold1D(pureNeg)
	if e != 0 {
		t.Errorf("pure negative set: err %g, want 0", e)
	}
}

func TestBestThreshold1DDuplicateCoordinates(t *testing.T) {
	// Points sharing a coordinate must flip together during the sweep.
	ws := geom.WeightedSet{
		{P: geom.Point{1}, Label: geom.Negative, Weight: 5},
		{P: geom.Point{1}, Label: geom.Positive, Weight: 1},
		{P: geom.Point{2}, Label: geom.Positive, Weight: 3},
	}
	h, e := BestThreshold1D(ws)
	// tau=1: errors = pos at 1 (w=1). tau=-inf: neg at 1 (w=5).
	// tau=2: 1 + 3 = 4.
	if e != 1 || h.Tau != 1 {
		t.Errorf("got tau=%g err=%g, want tau=1 err=1", h.Tau, e)
	}
}

func TestFuncAdapter(t *testing.T) {
	pts := []geom.LabeledPoint{
		{P: geom.Point{0}, Label: geom.Negative},
		{P: geom.Point{5}, Label: geom.Positive},
	}
	if geom.Err(pts, Func(Threshold1D{Tau: 2})) != 0 {
		t.Error("Func adapter broken")
	}
}
