// Package domgraph is the shared dominance kernel: a bit-packed
// representation of the pairwise dominance relation of a point set,
// 64 points per machine word, built once and consumed by every
// super-linear stage of the pipeline — the Lemma 6 chain decomposition
// (internal/chains), the Theorem 4 passive min-cut network
// (internal/passive), and the dataset audit (internal/audit).
//
// Two relations are materialized side by side:
//
//   - the raw closure ⪰ ("dom"): bit j of row i is set iff
//     pts[i] ⪰ pts[j], including i == j (a point dominates itself) and
//     both directions for coordinate-equal points;
//   - the DAG relation ("dag"): the strict order used for chain
//     decomposition, where coordinate-equal points are ordered by index
//     (see DominanceEdge) so duplicates chain up instead of forming
//     cycles, and self-loops are excluded.
//
// The builder never tests point pairs individually. Since
// p ⪰ q  ⇔  ∀k: p[k] >= q[k], the closure row of p is the word-wise
// AND over dimensions of the "coordinate-k at most p[k]" bitsets.
// Each per-dimension bitset family is produced by one sweep over the
// points in ascending coordinate order, growing a running bitset, so
// the whole closure costs O(d·n²/64) word operations plus d sorts —
// 64 pairs per instruction instead of one geom.Dominates call per
// pair. Sweeps run in parallel across row blocks: a short sequential
// pre-pass snapshots the running bitset at block boundaries, then a
// GOMAXPROCS-sized worker pool replays each block independently.
// Every worker writes disjoint rows, so the build is race-free by
// construction.
//
// On top of the packed rows the package offers word-level kernels:
// popcount-based violation counting and contending-point extraction
// (the |P^con| of Section 5), and an O(k·n/64) antichain check.
package domgraph

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"monoclass/internal/geom"
)

// Matrix is the bit-packed dominance relation of one point set. It is
// immutable after Build and safe for concurrent readers.
type Matrix struct {
	n     int
	words int // words per row: ceil(n/64)
	dom   []uint64
	dag   []uint64
}

// DominanceEdge is the single definition of the chain-decomposition
// DAG edge i -> j: point i strictly sits above point j under the
// dominance order, with coordinate-equal points ordered by index
// (higher index above lower) so duplicates form a chain rather than a
// cycle; the relation stays transitive. chains and the kernel builder
// both use exactly this rule.
func DominanceEdge(pts []geom.Point, i, j int) bool {
	if i == j {
		return false
	}
	if !geom.Dominates(pts[i], pts[j]) {
		return false
	}
	if pts[i].Equal(pts[j]) {
		return i > j
	}
	return true
}

// Build constructs the matrix with a worker pool sized to
// runtime.GOMAXPROCS. The points must be dimensionally consistent
// (geom.Dominates panics otherwise).
func Build(pts []geom.Point) *Matrix {
	return build(pts, runtime.GOMAXPROCS(0))
}

// BuildNaive is the scalar reference builder: one geom.Dominates call
// per ordered pair, no bit-parallel sweeps, no concurrency. It is the
// cross-check oracle for tests and the baseline for the kernel
// benchmarks.
func BuildNaive(pts []geom.Point) *Matrix {
	n := len(pts)
	m := newMatrix(n)
	for i := 0; i < n; i++ {
		domRow := m.dom[i*m.words : (i+1)*m.words]
		dagRow := m.dag[i*m.words : (i+1)*m.words]
		for j := 0; j < n; j++ {
			if i == j {
				domRow[j>>6] |= 1 << uint(j&63)
				continue
			}
			if !geom.Dominates(pts[i], pts[j]) {
				continue
			}
			domRow[j>>6] |= 1 << uint(j&63)
			if DominanceEdge(pts, i, j) {
				dagRow[j>>6] |= 1 << uint(j&63)
			}
		}
	}
	return m
}

func newMatrix(n int) *Matrix {
	m := &Matrix{n: n, words: (n + 63) / 64}
	m.dom = make([]uint64, n*m.words)
	m.dag = make([]uint64, n*m.words)
	return m
}

// rowsPerBlock is the unit of parallel work: one block of rows per
// worker dispatch, with one boundary snapshot per block.
const rowsPerBlock = 256

func build(pts []geom.Point, workers int) *Matrix {
	n := len(pts)
	m := newMatrix(n)
	if n == 0 {
		return m
	}
	if workers < 1 {
		workers = 1
	}
	if len(pts[0]) == 0 {
		// Zero-dimensional points vacuously all dominate each other.
		full := make([]uint64, m.words)
		for j := 0; j < n; j++ {
			full[j>>6] |= 1 << uint(j&63)
		}
		for i := 0; i < n; i++ {
			copy(m.dom[i*m.words:(i+1)*m.words], full)
		}
	} else {
		m.fillClosure(pts, workers)
	}
	m.fillDAG(pts, workers)
	return m
}

// parallelBlocks runs fn(block) for every block index on a worker
// pool. fn instances must touch disjoint data.
func parallelBlocks(numBlocks, workers int, fn func(blk int)) {
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		for b := 0; b < numBlocks; b++ {
			fn(b)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				fn(b)
			}
		}()
	}
	for b := 0; b < numBlocks; b++ {
		next <- b
	}
	close(next)
	wg.Wait()
}

// fillClosure fills the ⪰ rows: for each dimension k, points are
// visited in ascending k-coordinate order while a running bitset
// accumulates every point whose k-coordinate is at most the current
// one (ties included, so the relation stays reflexive); the visit
// intersects the running bitset into the point's row. After all d
// sweeps a row holds exactly the AND of its d "at most me" sets — its
// dominated set.
func (m *Matrix) fillClosure(pts []geom.Point, workers int) {
	n, words, d := m.n, m.words, len(pts[0])
	numBlocks := (n + rowsPerBlock - 1) / rowsPerBlock

	order := make([]int, n)
	run := make([]uint64, words)
	seeds := make([]uint64, numBlocks*words)
	ptrs := make([]int, numBlocks)

	for k := 0; k < d; k++ {
		for i := range order {
			order[i] = i
		}
		kk := k
		sort.Slice(order, func(a, b int) bool { return pts[order[a]][kk] < pts[order[b]][kk] })

		// Sequential pre-pass: replay the sweep cheaply (bit sets only)
		// to snapshot the running bitset and candidate pointer at each
		// block boundary.
		for w := range run {
			run[w] = 0
		}
		ptr := 0
		for pos := 0; pos < n; pos++ {
			if pos%rowsPerBlock == 0 {
				b := pos / rowsPerBlock
				copy(seeds[b*words:(b+1)*words], run)
				ptrs[b] = ptr
			}
			c := pts[order[pos]][k]
			for ptr < n && pts[order[ptr]][k] <= c {
				j := order[ptr]
				run[j>>6] |= 1 << uint(j&63)
				ptr++
			}
		}

		// Parallel phase: each block replays its slice of the sweep
		// from the boundary snapshot and folds the running bitset into
		// its rows (copy on the first dimension, AND afterwards).
		parallelBlocks(numBlocks, workers, func(blk int) {
			local := make([]uint64, words)
			copy(local, seeds[blk*words:(blk+1)*words])
			ptr := ptrs[blk]
			lo, hi := blk*rowsPerBlock, (blk+1)*rowsPerBlock
			if hi > n {
				hi = n
			}
			for pos := lo; pos < hi; pos++ {
				i := order[pos]
				c := pts[i][k]
				for ptr < n && pts[order[ptr]][k] <= c {
					j := order[ptr]
					local[j>>6] |= 1 << uint(j&63)
					ptr++
				}
				row := m.dom[i*words : (i+1)*words]
				if k == 0 {
					copy(row, local)
				} else {
					for w := range row {
						row[w] &= local[w]
					}
				}
			}
		})
	}
}

// fillDAG derives the DAG rows from the closure: clear self-loops,
// then break the mutual edges of coordinate-equal groups down to the
// high-index -> low-index direction (DominanceEdge's tiebreak).
// Mutual dominance implies coordinate equality, so the only bits to
// fix live inside exact-duplicate groups.
func (m *Matrix) fillDAG(pts []geom.Point, workers int) {
	n, words := m.n, m.words
	numBlocks := (n + rowsPerBlock - 1) / rowsPerBlock
	parallelBlocks(numBlocks, workers, func(blk int) {
		lo, hi := blk*rowsPerBlock, (blk+1)*rowsPerBlock
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := m.dag[i*words : (i+1)*words]
			copy(row, m.dom[i*words:(i+1)*words])
			row[i>>6] &^= 1 << uint(i&63)
		}
	})

	mask := make([]uint64, words)
	for _, g := range duplicateGroups(pts) {
		// Walk members from highest to lowest index; mask holds the
		// higher members, whose bits must leave the current row.
		for t := len(g) - 1; t >= 0; t-- {
			i := g[t]
			if t < len(g)-1 {
				row := m.dag[i*words : (i+1)*words]
				for w := range row {
					row[w] &^= mask[w]
				}
			}
			mask[i>>6] |= 1 << uint(i&63)
		}
		for _, i := range g {
			mask[i>>6] &^= 1 << uint(i&63)
		}
	}
}

// duplicateGroups returns the index groups of coordinate-equal points
// (only groups of size >= 2), each sorted ascending.
func duplicateGroups(pts []geom.Point) [][]int {
	n := len(pts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		for k := range pa {
			if pa[k] != pb[k] {
				return pa[k] < pb[k]
			}
		}
		return false
	})
	var groups [][]int
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && pts[order[hi]].Equal(pts[order[lo]]) {
			hi++
		}
		if hi-lo > 1 {
			g := append([]int(nil), order[lo:hi]...)
			sort.Ints(g)
			groups = append(groups, g)
		}
		lo = hi
	}
	return groups
}

// N returns the number of points.
func (m *Matrix) N() int { return m.n }

// Words returns the number of 64-bit words per row.
func (m *Matrix) Words() int { return m.words }

// Dominates reports pts[i] ⪰ pts[j] (reflexive; true in both
// directions for coordinate-equal points).
func (m *Matrix) Dominates(i, j int) bool {
	return m.dom[i*m.words+j>>6]>>(uint(j)&63)&1 == 1
}

// Edge reports the chain-DAG edge i -> j (see DominanceEdge).
func (m *Matrix) Edge(i, j int) bool {
	return m.dag[i*m.words+j>>6]>>(uint(j)&63)&1 == 1
}

// Equal reports whether points i and j are coordinate-equal, read off
// the closure (mutual dominance).
func (m *Matrix) Equal(i, j int) bool {
	return m.Dominates(i, j) && m.Dominates(j, i)
}

// DomRow returns row i of the ⪰ closure. The slice aliases the
// matrix; callers must not modify it.
func (m *Matrix) DomRow(i int) []uint64 {
	return m.dom[i*m.words : (i+1)*m.words]
}

// DAGRow returns row i of the DAG relation, aliasing the matrix.
func (m *Matrix) DAGRow(i int) []uint64 {
	return m.dag[i*m.words : (i+1)*m.words]
}

// DAGBits returns the flat row-major DAG bitset (n rows × Words()
// words), aliasing the matrix. It is the adjacency input for
// matching.BitsetFromRows; callers must treat it as read-only.
func (m *Matrix) DAGBits() []uint64 { return m.dag }

// labelMask packs the positions carrying label l into a bitset.
func (m *Matrix) labelMask(labels []geom.Label, l geom.Label) []uint64 {
	if len(labels) != m.n {
		panic(fmt.Sprintf("domgraph: %d labels for %d points", len(labels), m.n))
	}
	mask := make([]uint64, m.words)
	for i, li := range labels {
		if li == l {
			mask[i>>6] |= 1 << uint(i&63)
		}
	}
	return mask
}

// CountViolations counts ordered pairs (i, j) with pts[i] ⪰ pts[j],
// label(i) = 0 and label(j) = 1 — the popcount kernel behind
// geom.MonotoneViolations. Zero means a perfect monotone classifier
// exists.
func (m *Matrix) CountViolations(labels []geom.Label) int {
	pos := m.labelMask(labels, geom.Positive)
	count := 0
	for i, l := range labels {
		if l != geom.Negative {
			continue
		}
		row := m.DomRow(i)
		for w, bitsW := range row {
			count += bits.OnesCount64(bitsW & pos[w])
		}
	}
	return count
}

// ViolationParties marks every point involved in at least one
// violating pair: label-0 points dominating some label-1 point and
// label-1 points dominated by some label-0 point. This is exactly the
// contending set P^con of Section 5.1, extracted in O(n²/64) word
// operations.
func (m *Matrix) ViolationParties(labels []geom.Label) []bool {
	pos := m.labelMask(labels, geom.Positive)
	hit := make([]uint64, m.words) // union of dominated label-1 points
	out := make([]bool, m.n)
	for i, l := range labels {
		if l != geom.Negative {
			continue
		}
		row := m.DomRow(i)
		any := false
		for w, bitsW := range row {
			v := bitsW & pos[w]
			if v != 0 {
				hit[w] |= v
				any = true
			}
		}
		if any {
			out[i] = true
		}
	}
	for w, bitsW := range hit {
		for bitsW != 0 {
			j := w<<6 + bits.TrailingZeros64(bitsW)
			bitsW &= bitsW - 1
			out[j] = true
		}
	}
	return out
}

// IsAntichain reports whether the given point indices are pairwise
// incomparable, in O(len(idx) · n/64) word operations. Duplicate
// indices in idx make it trivially false (a point is comparable to
// itself through another slot).
func (m *Matrix) IsAntichain(idx []int) bool {
	mask := make([]uint64, m.words)
	dup := false
	for _, i := range idx {
		if mask[i>>6]>>(uint(i)&63)&1 == 1 {
			dup = true
		}
		mask[i>>6] |= 1 << uint(i&63)
	}
	if dup {
		return false
	}
	// Every comparable pair i ⪰ j inside the set shows up on row i
	// (both orientations are covered because every member is scanned).
	for _, i := range idx {
		row := m.DomRow(i)
		self := i >> 6
		for w, bitsW := range row {
			v := bitsW & mask[w]
			if w == self {
				v &^= 1 << uint(i&63)
			}
			if v != 0 {
				return false
			}
		}
	}
	return true
}

// Diff compares two matrices bit for bit and describes the first
// difference, or returns "" when they are identical. It is the
// differential-testing primitive the conformance harness uses to hold
// Build and BuildNaive to exact agreement.
func Diff(a, b *Matrix) string {
	if a.n != b.n {
		return fmt.Sprintf("point counts differ: %d vs %d", a.n, b.n)
	}
	for i := 0; i < a.n; i++ {
		for w, wa := range a.DomRow(i) {
			if wb := b.DomRow(i)[w]; wa != wb {
				j := w<<6 + bits.TrailingZeros64(wa^wb)
				return fmt.Sprintf("closure bit (%d,%d): %v vs %v", i, j, a.Dominates(i, j), b.Dominates(i, j))
			}
		}
		for w, wa := range a.DAGRow(i) {
			if wb := b.DAGRow(i)[w]; wa != wb {
				j := w<<6 + bits.TrailingZeros64(wa^wb)
				return fmt.Sprintf("dag bit (%d,%d): %v vs %v", i, j, a.Edge(i, j), b.Edge(i, j))
			}
		}
	}
	return ""
}

// CountEdges returns the number of DAG edges (a measure of poset
// density, popcounted word-wise).
func (m *Matrix) CountEdges() int {
	count := 0
	for _, w := range m.dag {
		count += bits.OnesCount64(w)
	}
	return count
}
