package domgraph

import (
	"fmt"
	"math/bits"

	"monoclass/internal/geom"
)

// Dynamic is a mutable dominance matrix for online workloads: the
// bit-packed closure and DAG relations of Build, maintained under
// point insertions and deletions instead of being rebuilt from
// scratch.
//
//   - Insert appends a point as the highest slot and patches one row
//     (the new point's dominated set, O(n·d) scalar tests packed into
//     words) plus one column bit per existing row — O(n·d) total,
//     against the O(d·n²/64) of a full Build.
//   - Delete tombstones a slot: its bits stay in place but the slot is
//     excluded from live views. Compact drops tombstoned slots and
//     remaps the surviving bits, restoring the dense layout; callers
//     amortize it over many deletes.
//
// The DAG tiebreak for coordinate-equal points is DominanceEdge's
// index order. Because Insert always appends at the highest slot and
// Compact preserves relative order, slot order always equals the
// index order of the live point list, so a compacted Dynamic is
// bit-for-bit identical to Build over its live points — the property
// tests hold it to that with Diff against BuildNaive.
//
// A Dynamic is not safe for concurrent use; callers serialize access
// (internal/online wraps it in the updater's mutex).
type Dynamic struct {
	dim   int
	pts   []geom.Point // one per slot, insertion order; tombstoned slots keep their point
	alive []bool
	dead  int
	words int // words per row: ceil(slots/64), kept tight so views are Build-compatible
	dom   []uint64
	dag   []uint64
}

// NewDynamic builds a dynamic matrix over the initial points (which
// may be empty) using the parallel kernel builder. dim must be
// positive; every initial and inserted point must carry exactly dim
// coordinates.
func NewDynamic(dim int, pts []geom.Point) (*Dynamic, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("domgraph: dimension %d must be positive", dim)
	}
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("domgraph: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	d := &Dynamic{dim: dim}
	if len(pts) == 0 {
		return d, nil
	}
	m := Build(pts)
	d.pts = make([]geom.Point, len(pts))
	for i, p := range pts {
		d.pts[i] = p.Clone()
	}
	d.alive = make([]bool, len(pts))
	for i := range d.alive {
		d.alive[i] = true
	}
	d.words = m.words
	d.dom = append([]uint64(nil), m.dom...)
	d.dag = append([]uint64(nil), m.dag...)
	return d, nil
}

// NewDynamicFromMatrix builds a dynamic matrix over pts adopting an
// already-built relation m (deep-copied), skipping the O(d·n²/64)
// kernel build. m must be Build(pts) — the same points in the same
// order; only the shape is validated here, the bits are trusted.
// problem-prepared training uses this to hand its matrix to the online
// updater without a rebuild.
func NewDynamicFromMatrix(dim int, pts []geom.Point, m *Matrix) (*Dynamic, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("domgraph: dimension %d must be positive", dim)
	}
	if m.N() != len(pts) {
		return nil, fmt.Errorf("domgraph: matrix covers %d points, want %d", m.N(), len(pts))
	}
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("domgraph: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	d := &Dynamic{dim: dim}
	if len(pts) == 0 {
		return d, nil
	}
	d.pts = make([]geom.Point, len(pts))
	for i, p := range pts {
		d.pts[i] = p.Clone()
	}
	d.alive = make([]bool, len(pts))
	for i := range d.alive {
		d.alive[i] = true
	}
	d.words = m.words
	d.dom = append([]uint64(nil), m.dom...)
	d.dag = append([]uint64(nil), m.dag...)
	return d, nil
}

// Dim returns the dimensionality of the point set.
func (d *Dynamic) Dim() int { return d.dim }

// Slots returns the number of slots, tombstoned ones included.
func (d *Dynamic) Slots() int { return len(d.pts) }

// Live returns the number of live (non-tombstoned) slots.
func (d *Dynamic) Live() int { return len(d.pts) - d.dead }

// Dead returns the number of tombstoned slots awaiting compaction.
func (d *Dynamic) Dead() int { return d.dead }

// Alive reports whether slot i is live.
func (d *Dynamic) Alive(i int) bool { return d.alive[i] }

// Point returns the point in slot i (live or tombstoned). The caller
// must not modify the returned slice.
func (d *Dynamic) Point(i int) geom.Point { return d.pts[i] }

// Dominates reports pts[i] ⪰ pts[j] over slots (tombstoned slots keep
// answering; callers filter by Alive).
func (d *Dynamic) Dominates(i, j int) bool {
	return d.dom[i*d.words+(j>>6)]>>(uint(j)&63)&1 == 1
}

// Insert appends p as a new live slot and patches the matrix: the new
// row is p's dominated set, and every existing row gains the new
// column bit where it dominates p. Coordinate-equal duplicates follow
// DominanceEdge's index tiebreak: the new (highest) slot chains above
// every older equal slot. Returns the new slot index.
func (d *Dynamic) Insert(p geom.Point) (int, error) {
	if len(p) != d.dim {
		return 0, fmt.Errorf("domgraph: inserted point has dimension %d, want %d", len(p), d.dim)
	}
	n := len(d.pts)
	newWords := (n + 1 + 63) / 64
	if newWords != d.words {
		d.relayout(newWords)
	}
	w := d.words
	d.pts = append(d.pts, p.Clone())
	d.alive = append(d.alive, true)
	d.dom = append(d.dom, make([]uint64, w)...)
	d.dag = append(d.dag, make([]uint64, w)...)

	domRow := d.dom[n*w : (n+1)*w]
	dagRow := d.dag[n*w : (n+1)*w]
	colWord, colBit := n>>6, uint64(1)<<uint(n&63)
	for j := 0; j < n; j++ {
		dj := geom.Dominates(d.pts[n], d.pts[j])
		if dj {
			domRow[j>>6] |= 1 << uint(j&63)
			// New slot has the highest index, so the equal-point
			// tiebreak always keeps the edge new -> old.
			dagRow[j>>6] |= 1 << uint(j&63)
		}
		if geom.Dominates(d.pts[j], p) {
			d.dom[j*w+colWord] |= colBit
			if !dj || !d.pts[j].Equal(p) {
				// Old slot's edge to the new one exists only for strict
				// dominance: for equal points the old index is lower,
				// so DominanceEdge(old, new) is false.
				d.dag[j*w+colWord] |= colBit
			}
		}
	}
	// Self bit: reflexive in the closure, never in the DAG.
	domRow[colWord] |= colBit
	return n, nil
}

// Delete tombstones slot i. It reports false when the slot is already
// tombstoned or out of range. The slot's bits stay in place until
// Compact.
func (d *Dynamic) Delete(i int) bool {
	if i < 0 || i >= len(d.pts) || !d.alive[i] {
		return false
	}
	d.alive[i] = false
	d.dead++
	return true
}

// relayout rewrites the matrix with newWords words per row (row
// stride change when the slot count crosses a 64 boundary).
func (d *Dynamic) relayout(newWords int) {
	n := len(d.pts)
	dom := make([]uint64, 0, (n+64)*newWords)
	dag := make([]uint64, 0, (n+64)*newWords)
	dom = dom[:n*newWords]
	dag = dag[:n*newWords]
	for i := 0; i < n; i++ {
		copy(dom[i*newWords:], d.dom[i*d.words:(i+1)*d.words])
		copy(dag[i*newWords:], d.dag[i*d.words:(i+1)*d.words])
	}
	d.dom, d.dag, d.words = dom, dag, newWords
}

// Compact drops tombstoned slots, remapping the surviving rows and
// columns so live slots occupy 0..Live()-1 in their original relative
// order. It returns the old slot index of each new slot (identity
// when nothing was dead), so callers can remap parallel arrays.
func (d *Dynamic) Compact() []int {
	n := len(d.pts)
	newToOld := make([]int, 0, n-d.dead)
	oldToNew := make([]int, n)
	for i := 0; i < n; i++ {
		if d.alive[i] {
			oldToNew[i] = len(newToOld)
			newToOld = append(newToOld, i)
		} else {
			oldToNew[i] = -1
		}
	}
	if d.dead == 0 {
		return newToOld
	}
	a := len(newToOld)
	words := (a + 63) / 64
	dom := make([]uint64, a*words)
	dag := make([]uint64, a*words)
	pts := make([]geom.Point, a)
	for ni, oi := range newToOld {
		pts[ni] = d.pts[oi]
		compactRow(dom[ni*words:(ni+1)*words], d.dom[oi*d.words:(oi+1)*d.words], oldToNew)
		compactRow(dag[ni*words:(ni+1)*words], d.dag[oi*d.words:(oi+1)*d.words], oldToNew)
	}
	d.pts = pts
	d.alive = make([]bool, a)
	for i := range d.alive {
		d.alive[i] = true
	}
	d.dead = 0
	d.words, d.dom, d.dag = words, dom, dag
	return newToOld
}

// compactRow copies the bits of src whose columns survive into dst at
// their remapped positions, iterating set bits (dominance rows are
// sparse after deletions of dense regions, and compaction is
// amortized over many deletes).
func compactRow(dst, src []uint64, oldToNew []int) {
	for w, word := range src {
		for word != 0 {
			j := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if nj := oldToNew[j]; nj >= 0 {
				dst[nj>>6] |= 1 << uint(nj&63)
			}
		}
	}
}

// MatrixView returns the live matrix as a read-only *Matrix sharing
// this Dynamic's storage — zero-copy input for chains.DecomposeMatrix
// and the passive solver. It requires a compacted state (no
// tombstones); the view is invalidated by the next mutation.
func (d *Dynamic) MatrixView() *Matrix {
	if d.dead > 0 {
		panic(fmt.Sprintf("domgraph: MatrixView with %d tombstoned slots; Compact first", d.dead))
	}
	n := len(d.pts)
	return &Matrix{n: n, words: d.words, dom: d.dom[:n*d.words], dag: d.dag[:n*d.words]}
}

// Snapshot returns a compacted deep copy of the live matrix without
// mutating the Dynamic — the differential-testing hook: it must equal
// Build (and BuildNaive) over LivePoints, bit for bit, under Diff.
func (d *Dynamic) Snapshot() *Matrix {
	n := len(d.pts)
	oldToNew := make([]int, n)
	live := 0
	for i := 0; i < n; i++ {
		if d.alive[i] {
			oldToNew[i] = live
			live++
		} else {
			oldToNew[i] = -1
		}
	}
	m := newMatrix(live)
	ni := 0
	for i := 0; i < n; i++ {
		if !d.alive[i] {
			continue
		}
		compactRow(m.dom[ni*m.words:(ni+1)*m.words], d.dom[i*d.words:(i+1)*d.words], oldToNew)
		compactRow(m.dag[ni*m.words:(ni+1)*m.words], d.dag[i*d.words:(i+1)*d.words], oldToNew)
		ni++
	}
	return m
}

// LivePoints returns the live points in slot order — the point list a
// freshly built matrix over this Dynamic's state corresponds to. The
// caller must not modify the returned points.
func (d *Dynamic) LivePoints() []geom.Point {
	out := make([]geom.Point, 0, d.Live())
	for i, p := range d.pts {
		if d.alive[i] {
			out = append(out, p)
		}
	}
	return out
}
