package domgraph

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

func benchPoints(n, d int) []geom.Point {
	rng := rand.New(rand.NewSource(42))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// BenchmarkDominanceKernel compares the scalar reference builder with
// the bit-packed parallel builder at the acceptance scale (n=4096,
// d=4). cmd/benchtab -domkernel records the same comparison as JSON.
func BenchmarkDominanceKernel(b *testing.B) {
	pts := benchPoints(4096, 4)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BuildNaive(pts)
		}
	})
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Build(pts)
		}
	})
}
