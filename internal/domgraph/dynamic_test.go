package domgraph

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

// gridPoint draws coordinates from a small integer grid so traces are
// dense in duplicates, coordinate-equal points, and comparable pairs —
// the cases where the DAG tiebreak and the column patch can go wrong.
func gridPoint(rng *rand.Rand, dim int) geom.Point {
	p := make(geom.Point, dim)
	for i := range p {
		p[i] = float64(rng.Intn(4))
	}
	return p
}

// checkAgainstNaive holds the Dynamic's live matrix to exact bit
// agreement with the scalar oracle over its live points.
func checkAgainstNaive(t *testing.T, d *Dynamic, step int) {
	t.Helper()
	want := BuildNaive(d.LivePoints())
	if diff := Diff(d.Snapshot(), want); diff != "" {
		t.Fatalf("step %d (live=%d): snapshot != BuildNaive: %s", step, d.Live(), diff)
	}
}

func TestDynamicInsertMatchesNaive(t *testing.T) {
	for dim := 1; dim <= 4; dim++ {
		rng := rand.New(rand.NewSource(int64(100 + dim)))
		d, err := NewDynamic(dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		// 150 inserts crosses the 64- and 128-slot word boundaries, so
		// the relayout path runs twice.
		for i := 0; i < 150; i++ {
			if _, err := d.Insert(gridPoint(rng, dim)); err != nil {
				t.Fatal(err)
			}
			if i < 10 || i%10 == 0 || i >= 148 {
				checkAgainstNaive(t, d, i)
			}
		}
	}
}

func TestDynamicInsertThenDeleteIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	initial := make([]geom.Point, 70)
	for i := range initial {
		initial[i] = gridPoint(rng, 3)
	}
	d, err := NewDynamic(3, initial)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		before := d.Snapshot()
		slot, err := d.Insert(gridPoint(rng, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !d.Delete(slot) {
			t.Fatalf("step %d: Delete(%d) = false", step, slot)
		}
		if diff := Diff(d.Snapshot(), before); diff != "" {
			t.Fatalf("step %d: insert-then-delete changed the live matrix: %s", step, diff)
		}
	}
}

func TestDynamicRandomTrace(t *testing.T) {
	for dim := 1; dim <= 4; dim++ {
		rng := rand.New(rand.NewSource(int64(9000 + dim)))
		d, err := NewDynamic(dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 400; step++ {
			if d.Live() == 0 || rng.Intn(3) != 0 {
				if _, err := d.Insert(gridPoint(rng, dim)); err != nil {
					t.Fatal(err)
				}
			} else {
				// Delete a random live slot.
				k := rng.Intn(d.Live())
				for i := 0; i < d.Slots(); i++ {
					if !d.Alive(i) {
						continue
					}
					if k == 0 {
						if !d.Delete(i) {
							t.Fatalf("step %d: Delete(%d) = false on live slot", step, i)
						}
						break
					}
					k--
				}
			}
			if step%20 == 0 {
				checkAgainstNaive(t, d, step)
			}
			if step%100 == 99 {
				// Compaction must preserve the live matrix and leave a
				// view identical to a fresh Build.
				before := d.Snapshot()
				remap := d.Compact()
				if len(remap) != d.Live() || d.Dead() != 0 {
					t.Fatalf("step %d: Compact left live=%d dead=%d remap=%d", step, d.Live(), d.Dead(), len(remap))
				}
				if diff := Diff(d.Snapshot(), before); diff != "" {
					t.Fatalf("step %d: Compact changed the live matrix: %s", step, diff)
				}
				if diff := Diff(d.MatrixView(), Build(d.LivePoints())); diff != "" {
					t.Fatalf("step %d: MatrixView != Build: %s", step, diff)
				}
			}
		}
	}
}

func TestDynamicDominatesMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d, err := NewDynamic(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := d.Insert(gridPoint(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < d.Slots(); i++ {
		for j := 0; j < d.Slots(); j++ {
			want := geom.Dominates(d.Point(i), d.Point(j))
			if got := d.Dominates(i, j); got != want {
				t.Fatalf("Dominates(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDynamicMatrixViewRequiresCompact(t *testing.T) {
	d, err := NewDynamic(1, []geom.Point{{1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	d.Delete(0)
	defer func() {
		if recover() == nil {
			t.Fatal("MatrixView with tombstones did not panic")
		}
	}()
	d.MatrixView()
}

func TestDynamicValidation(t *testing.T) {
	if _, err := NewDynamic(0, nil); err == nil {
		t.Error("NewDynamic(0, nil) accepted")
	}
	if _, err := NewDynamic(2, []geom.Point{{1}}); err == nil {
		t.Error("NewDynamic accepted mismatched initial dimension")
	}
	d, err := NewDynamic(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(geom.Point{1}); err == nil {
		t.Error("Insert accepted mismatched dimension")
	}
	if d.Delete(-1) || d.Delete(0) {
		t.Error("Delete accepted an out-of-range slot")
	}
	slot, err := d.Insert(geom.Point{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delete(slot) {
		t.Error("Delete(live slot) = false")
	}
	if d.Delete(slot) {
		t.Error("double Delete = true")
	}
}

func TestDynamicEmpty(t *testing.T) {
	d, err := NewDynamic(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Live() != 0 || d.Slots() != 0 {
		t.Fatalf("empty Dynamic: live=%d slots=%d", d.Live(), d.Slots())
	}
	if diff := Diff(d.MatrixView(), Build(nil)); diff != "" {
		t.Fatalf("empty MatrixView != Build(nil): %s", diff)
	}
	// Delete everything after some inserts: back to an empty matrix.
	for i := 0; i < 5; i++ {
		if _, err := d.Insert(geom.Point{float64(i), 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < d.Slots(); i++ {
		d.Delete(i)
	}
	d.Compact()
	if diff := Diff(d.MatrixView(), Build(nil)); diff != "" {
		t.Fatalf("all-deleted MatrixView != Build(nil): %s", diff)
	}
}
