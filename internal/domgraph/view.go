package domgraph

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"monoclass/internal/geom"
)

// View is the read-only face of a dominance relation over an indexed
// point set — the abstraction that lets consumers (internal/problem,
// audit streaming kernels) run against a fully materialized Matrix, a
// tile-cached Blocked view, or a rank-array Implicit view without
// caring which. Every implementation answers exactly the bits
// BuildNaive would produce over the same points: the closure ⪰ is
// reflexive (bit (i,i) is always set, NaN coordinates included) and
// the DAG relation follows DominanceEdge's duplicate tiebreak.
//
// All implementations are safe for concurrent readers.
type View interface {
	// N returns the number of points.
	N() int
	// Words returns the packed row width, ceil(N/64).
	Words() int
	// Dominates reports pts[i] ⪰ pts[j] (reflexive).
	Dominates(i, j int) bool
	// Edge reports the chain-DAG edge i -> j (see DominanceEdge).
	Edge(i, j int) bool
	// ReadDomRow fills dst (length >= Words()) with closure row i.
	ReadDomRow(dst []uint64, i int)
	// ReadDAGRow fills dst (length >= Words()) with DAG row i.
	ReadDAGRow(dst []uint64, i int)
	// Materialize returns the fully dense matrix of the relation —
	// bit-identical to Build over the same points. Implementations
	// that are not already dense pay the full O(n²/64) memory here;
	// callers gate it (see problem.Options.ExactDecomposeLimit).
	Materialize() *Matrix
}

// Matrix implements View trivially.

// ReadDomRow copies closure row i into dst.
func (m *Matrix) ReadDomRow(dst []uint64, i int) { copy(dst, m.DomRow(i)) }

// ReadDAGRow copies DAG row i into dst.
func (m *Matrix) ReadDAGRow(dst []uint64, i int) { copy(dst, m.DAGRow(i)) }

// Materialize returns the matrix itself (it is already dense).
func (m *Matrix) Materialize() *Matrix { return m }

// MatrixFromWords adopts raw packed rows (row-major, ceil(n/64) words
// per row) as a Matrix, copying both slices. It performs structural
// validation only — lengths, reflexive closure bits, no DAG
// self-loops, DAG ⊆ closure; callers adopting untrusted bits (the
// problem-artifact loader) must additionally spot-check the relation
// against the points.
func MatrixFromWords(n int, dom, dag []uint64) (*Matrix, error) {
	if n < 0 {
		return nil, fmt.Errorf("domgraph: negative point count %d", n)
	}
	m := newMatrix(n)
	if len(dom) != len(m.dom) || len(dag) != len(m.dag) {
		return nil, fmt.Errorf("domgraph: got %d+%d words for %d points, want %d per relation",
			len(dom), len(dag), n, len(m.dom))
	}
	copy(m.dom, dom)
	copy(m.dag, dag)
	for i := 0; i < n; i++ {
		if !m.Dominates(i, i) {
			return nil, fmt.Errorf("domgraph: closure bit (%d,%d) clear — relation not reflexive", i, i)
		}
		if m.Edge(i, i) {
			return nil, fmt.Errorf("domgraph: dag self-loop at %d", i)
		}
		dr, gr := m.DomRow(i), m.DAGRow(i)
		for w := range gr {
			if gr[w]&^dr[w] != 0 {
				j := w<<6 + bits.TrailingZeros64(gr[w]&^dr[w])
				return nil, fmt.Errorf("domgraph: dag bit (%d,%d) set outside the closure", i, j)
			}
		}
	}
	return m, nil
}

// scalarOnly reports whether the sweep/rank builders are unusable for
// the point set: NaN coordinates break the `<=` sweep comparisons (a
// NaN point dominates nothing, and nothing dominates it, but the
// running-bitset sweep would misplace it), and zero-dimensional
// points have no coordinate to sweep on. Views fall back to per-pair
// geom.Dominates/DominanceEdge — exactly BuildNaive's definition.
func scalarOnly(pts []geom.Point) bool {
	if len(pts) > 0 && len(pts[0]) == 0 {
		return true
	}
	for _, p := range pts {
		for _, x := range p {
			if math.IsNaN(x) {
				return true
			}
		}
	}
	return false
}

// scalarDomRow fills one closure row by the BuildNaive definition.
func scalarDomRow(pts []geom.Point, i int, dst []uint64) {
	for w := range dst {
		dst[w] = 0
	}
	for j := range pts {
		if i == j || geom.Dominates(pts[i], pts[j]) {
			dst[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// scalarDAGRow fills one DAG row by the DominanceEdge definition.
func scalarDAGRow(pts []geom.Point, i int, dst []uint64) {
	for w := range dst {
		dst[w] = 0
	}
	for j := range pts {
		if DominanceEdge(pts, i, j) {
			dst[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// Implicit answers dominance queries from per-dimension rank arrays
// without materializing any bitset: O(d·n) int32 words of memory
// total, O(d) per Dominates query, O(d·n) per row read. Ranks are
// dense over the sorted distinct values of each dimension, so
// rank[k][i] >= rank[k][j] ⇔ pts[i][k] >= pts[j][k] including ties
// and ±Inf; point sets containing NaN (or zero-dimensional points)
// drop to the scalar fallback per query.
type Implicit struct {
	pts    []geom.Point
	words  int
	scalar bool
	rank   [][]int32 // [dim][point], nil when scalar
}

// NewImplicit builds the rank arrays in O(d·n log n).
func NewImplicit(pts []geom.Point) *Implicit {
	v := &Implicit{pts: pts, words: (len(pts) + 63) / 64}
	if scalarOnly(pts) {
		v.scalar = true
		return v
	}
	if len(pts) == 0 {
		return v
	}
	d := len(pts[0])
	v.rank = make([][]int32, d)
	order := make([]int, len(pts))
	for k := 0; k < d; k++ {
		for i := range order {
			order[i] = i
		}
		kk := k
		sort.Slice(order, func(a, b int) bool { return pts[order[a]][kk] < pts[order[b]][kk] })
		rk := make([]int32, len(pts))
		r := int32(0)
		for pos, i := range order {
			if pos > 0 && pts[i][k] != pts[order[pos-1]][k] {
				r++
			}
			rk[i] = r
		}
		v.rank[k] = rk
	}
	return v
}

// N returns the number of points.
func (v *Implicit) N() int { return len(v.pts) }

// Words returns the packed row width.
func (v *Implicit) Words() int { return v.words }

// Dominates reports pts[i] ⪰ pts[j] via rank comparisons.
func (v *Implicit) Dominates(i, j int) bool {
	if i == j {
		return true
	}
	if v.scalar {
		return geom.Dominates(v.pts[i], v.pts[j])
	}
	for _, rk := range v.rank {
		if rk[i] < rk[j] {
			return false
		}
	}
	return true
}

// equal reports coordinate equality via ranks (dense ranks preserve
// ties exactly).
func (v *Implicit) equal(i, j int) bool {
	for _, rk := range v.rank {
		if rk[i] != rk[j] {
			return false
		}
	}
	return true
}

// Edge reports the chain-DAG edge i -> j.
func (v *Implicit) Edge(i, j int) bool {
	if i == j {
		return false
	}
	if v.scalar {
		return DominanceEdge(v.pts, i, j)
	}
	if !v.Dominates(i, j) {
		return false
	}
	if v.equal(i, j) {
		return i > j
	}
	return true
}

// ReadDomRow fills closure row i in O(d·n).
func (v *Implicit) ReadDomRow(dst []uint64, i int) {
	if v.scalar {
		scalarDomRow(v.pts, i, dst[:v.words])
		return
	}
	for w := 0; w < v.words; w++ {
		dst[w] = 0
	}
	for j := range v.pts {
		if v.Dominates(i, j) {
			dst[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// ReadDAGRow fills DAG row i in O(d·n).
func (v *Implicit) ReadDAGRow(dst []uint64, i int) {
	if v.scalar {
		scalarDAGRow(v.pts, i, dst[:v.words])
		return
	}
	for w := 0; w < v.words; w++ {
		dst[w] = 0
	}
	for j := range v.pts {
		if v.Edge(i, j) {
			dst[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// Materialize builds the full dense matrix: the parallel sweep kernel
// normally, the scalar oracle when the sweeps are unusable. Either
// way the bits equal BuildNaive's.
func (v *Implicit) Materialize() *Matrix {
	if v.scalar {
		return BuildNaive(v.pts)
	}
	return Build(v.pts)
}

// BlockedConfig tunes a Blocked view. The zero value picks defaults.
type BlockedConfig struct {
	// TileRows is the number of matrix rows materialized per tile
	// (default 256, the kernel's parallel block size).
	TileRows int
	// CacheBytes caps the resident tile cache; least-recently-used
	// tiles are evicted past it (default 64 MiB, minimum two tiles).
	CacheBytes int64
}

// Blocked materializes the dominance bitset in row tiles on demand
// with an LRU cache, so streaming word-level consumers (violation
// popcounts, row scans) run at dense-kernel speed while resident
// memory stays at O(tiles · TileRows · n/64) words instead of the
// dense n²/64 wall. Tile fills replay the per-dimension sorted sweeps
// of the dense builder restricted to the tile's rows — O(d·n) single
// bit inserts plus O(TileRows · n/64) word folds per tile — against
// precomputed sort orders; point sets with NaN coordinates fill tiles
// by the scalar BuildNaive definition instead.
//
// Point queries (Dominates/Edge) answer scalarly in O(d) without
// touching the cache; only row reads materialize tiles.
type Blocked struct {
	pts      []geom.Point
	n, words int
	tileRows int
	maxTiles int
	scalar   bool
	orders   [][]int32 // per-dimension ascending coordinate order
	dups     [][]int   // coordinate-equal groups, for the DAG tiebreak

	mu     sync.Mutex
	tiles  map[int]*tile
	clock  int64
	hits   int64
	misses int64
}

type tile struct {
	lo, hi   int
	dom, dag []uint64 // (hi-lo) rows × words
	lastUse  int64
}

// NewBlocked prepares the sort orders and duplicate groups in
// O(d·n log n); no tile is materialized until the first row read.
func NewBlocked(pts []geom.Point, cfg BlockedConfig) *Blocked {
	n := len(pts)
	b := &Blocked{
		pts:      pts,
		n:        n,
		words:    (n + 63) / 64,
		tileRows: cfg.TileRows,
		tiles:    make(map[int]*tile),
	}
	if b.tileRows <= 0 {
		b.tileRows = rowsPerBlock
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 64 << 20
	}
	tileBytes := int64(b.tileRows) * int64(b.words) * 16 // dom + dag words
	if tileBytes <= 0 {
		tileBytes = 1
	}
	b.maxTiles = int(cacheBytes / tileBytes)
	if b.maxTiles < 2 {
		b.maxTiles = 2
	}
	if scalarOnly(pts) {
		b.scalar = true
		return b
	}
	if n == 0 {
		return b
	}
	d := len(pts[0])
	b.orders = make([][]int32, d)
	order := make([]int, n)
	for k := 0; k < d; k++ {
		for i := range order {
			order[i] = i
		}
		kk := k
		sort.Slice(order, func(x, y int) bool { return pts[order[x]][kk] < pts[order[y]][kk] })
		ord := make([]int32, n)
		for pos, i := range order {
			ord[pos] = int32(i)
		}
		b.orders[k] = ord
	}
	b.dups = duplicateGroups(pts)
	return b
}

// N returns the number of points.
func (b *Blocked) N() int { return b.n }

// Words returns the packed row width.
func (b *Blocked) Words() int { return b.words }

// Dominates reports pts[i] ⪰ pts[j], answered scalarly.
func (b *Blocked) Dominates(i, j int) bool {
	if i == j {
		return true
	}
	return geom.Dominates(b.pts[i], b.pts[j])
}

// Edge reports the chain-DAG edge i -> j, answered scalarly.
func (b *Blocked) Edge(i, j int) bool {
	return DominanceEdge(b.pts, i, j)
}

// CacheStats reports tile cache hits, misses, and resident tiles.
func (b *Blocked) CacheStats() (hits, misses int64, resident int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.misses, len(b.tiles)
}

// tileFor returns the (filled) tile containing row i, materializing
// and LRU-evicting under the lock. Callers must hold b.mu.
func (b *Blocked) tileFor(i int) *tile {
	id := i / b.tileRows
	b.clock++
	if t := b.tiles[id]; t != nil {
		t.lastUse = b.clock
		b.hits++
		return t
	}
	b.misses++
	if len(b.tiles) >= b.maxTiles {
		oldID, oldUse := -1, int64(1<<62)
		for tid, t := range b.tiles {
			if t.lastUse < oldUse {
				oldID, oldUse = tid, t.lastUse
			}
		}
		delete(b.tiles, oldID)
	}
	lo := id * b.tileRows
	hi := lo + b.tileRows
	if hi > b.n {
		hi = b.n
	}
	t := &tile{
		lo: lo, hi: hi,
		dom:     make([]uint64, (hi-lo)*b.words),
		dag:     make([]uint64, (hi-lo)*b.words),
		lastUse: b.clock,
	}
	b.fillTile(t)
	b.tiles[id] = t
	return t
}

// fillTile materializes one tile's closure and DAG rows, bit-identical
// to the corresponding rows of Build/BuildNaive.
func (b *Blocked) fillTile(t *tile) {
	words := b.words
	if b.scalar {
		for i := t.lo; i < t.hi; i++ {
			scalarDomRow(b.pts, i, t.dom[(i-t.lo)*words:(i-t.lo+1)*words])
			scalarDAGRow(b.pts, i, t.dag[(i-t.lo)*words:(i-t.lo+1)*words])
		}
		return
	}
	// Closure: replay each per-dimension sweep over the whole order,
	// folding the running bitset only into the tile's rows.
	run := make([]uint64, words)
	for k, order := range b.orders {
		for w := range run {
			run[w] = 0
		}
		ptr := 0
		for pos := 0; pos < b.n; pos++ {
			i := int(order[pos])
			c := b.pts[i][k]
			for ptr < b.n && b.pts[order[ptr]][k] <= c {
				j := order[ptr]
				run[j>>6] |= 1 << (uint(j) & 63)
				ptr++
			}
			if i < t.lo || i >= t.hi {
				continue
			}
			row := t.dom[(i-t.lo)*words : (i-t.lo+1)*words]
			if k == 0 {
				copy(row, run)
			} else {
				for w := range row {
					row[w] &= run[w]
				}
			}
		}
	}
	// DAG: closure minus self-loops, with duplicate groups broken down
	// to the high-index -> low-index direction (fillDAG's rule).
	for i := t.lo; i < t.hi; i++ {
		row := t.dag[(i-t.lo)*words : (i-t.lo+1)*words]
		copy(row, t.dom[(i-t.lo)*words:(i-t.lo+1)*words])
		row[i>>6] &^= 1 << (uint(i) & 63)
	}
	for _, g := range b.dups {
		for gi, i := range g {
			if i < t.lo || i >= t.hi {
				continue
			}
			row := t.dag[(i-t.lo)*words : (i-t.lo+1)*words]
			for _, j := range g[gi+1:] {
				row[j>>6] &^= 1 << (uint(j) & 63)
			}
		}
	}
}

// ReadDomRow fills closure row i from the tile cache.
func (b *Blocked) ReadDomRow(dst []uint64, i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tileFor(i)
	copy(dst, t.dom[(i-t.lo)*b.words:(i-t.lo+1)*b.words])
}

// ReadDAGRow fills DAG row i from the tile cache.
func (b *Blocked) ReadDAGRow(dst []uint64, i int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tileFor(i)
	copy(dst, t.dag[(i-t.lo)*b.words:(i-t.lo+1)*b.words])
}

// Materialize builds the full dense matrix (bypassing the tile cache):
// the parallel kernel normally, the scalar oracle when NaN coordinates
// make the sweeps unusable.
func (b *Blocked) Materialize() *Matrix {
	if b.scalar {
		return BuildNaive(b.pts)
	}
	return Build(b.pts)
}

// ViewCountViolations is CountViolations for any View: ordered pairs
// (i, j) with pts[i] ⪰ pts[j], label(i)=0, label(j)=1, popcounted by
// streaming rows through the view (tile-cached for Blocked). Cost is
// O(n²/64) word operations over the negative rows.
func ViewCountViolations(v View, labels []geom.Label) int {
	n := v.N()
	if len(labels) != n {
		panic(fmt.Sprintf("domgraph: %d labels for %d points", len(labels), n))
	}
	words := v.Words()
	pos := make([]uint64, words)
	for i, li := range labels {
		if li == geom.Positive {
			pos[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	row := make([]uint64, words)
	count := 0
	for i, li := range labels {
		if li != geom.Negative {
			continue
		}
		v.ReadDomRow(row, i)
		for w, bw := range row {
			count += bits.OnesCount64(bw & pos[w])
		}
	}
	return count
}
