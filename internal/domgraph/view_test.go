package domgraph

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"monoclass/internal/geom"
)

// randomViewPoints draws a point set with deliberate ties (small
// coordinate alphabet) and, optionally, ±Inf coordinates and exact
// duplicate points.
func randomViewPoints(rng *rand.Rand, n, d int, withInf bool) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(7))
			if withInf && rng.Intn(11) == 0 {
				p[k] = math.Inf(1 - 2*rng.Intn(2))
			}
		}
		pts[i] = p
	}
	// Exact duplicates: copy earlier points over later slots.
	for i := range pts {
		if i > 0 && rng.Intn(5) == 0 {
			pts[i] = pts[rng.Intn(i)].Clone()
		}
	}
	return pts
}

// checkViewAgainstNaive holds one View to exact agreement with the
// BuildNaive oracle: per-pair queries, row reads, and Materialize.
func checkViewAgainstNaive(t *testing.T, tag string, v View, pts []geom.Point) {
	t.Helper()
	naive := BuildNaive(pts)
	n := len(pts)
	if v.N() != n || v.Words() != naive.Words() {
		t.Fatalf("%s: N/Words = %d/%d, want %d/%d", tag, v.N(), v.Words(), n, naive.Words())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got, want := v.Dominates(i, j), naive.Dominates(i, j); got != want {
				t.Fatalf("%s: Dominates(%d,%d) = %v, want %v (pts %v vs %v)", tag, i, j, got, want, pts[i], pts[j])
			}
			if got, want := v.Edge(i, j), naive.Edge(i, j); got != want {
				t.Fatalf("%s: Edge(%d,%d) = %v, want %v (pts %v vs %v)", tag, i, j, got, want, pts[i], pts[j])
			}
		}
	}
	row := make([]uint64, v.Words())
	for i := 0; i < n; i++ {
		v.ReadDomRow(row, i)
		for w, want := range naive.DomRow(i) {
			if row[w] != want {
				t.Fatalf("%s: dom row %d word %d = %#x, want %#x", tag, i, w, row[w], want)
			}
		}
		v.ReadDAGRow(row, i)
		for w, want := range naive.DAGRow(i) {
			if row[w] != want {
				t.Fatalf("%s: dag row %d word %d = %#x, want %#x", tag, i, w, row[w], want)
			}
		}
	}
	if diff := Diff(v.Materialize(), naive); diff != "" {
		t.Fatalf("%s: Materialize diverges from BuildNaive: %s", tag, diff)
	}
}

func TestViewsMatchNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(130)
		d := 1 + rng.Intn(4)
		pts := randomViewPoints(rng, n, d, trial%2 == 0)
		checkViewAgainstNaive(t, "implicit", NewImplicit(pts), pts)
		// Tiny tiles + a two-tile cache force fills and LRU evictions.
		checkViewAgainstNaive(t, "blocked",
			NewBlocked(pts, BlockedConfig{TileRows: 8, CacheBytes: 1}), pts)
		checkViewAgainstNaive(t, "dense", BuildNaive(pts), pts)
	}
}

func TestViewsMatchNaiveAdversarial(t *testing.T) {
	nan, pinf, ninf := math.NaN(), math.Inf(1), math.Inf(-1)
	cases := [][]geom.Point{
		// NaN everywhere it can hide: alone, with duplicates, mixed.
		{{nan, 1}, {1, 1}, {1, nan}, {nan, nan}, {1, 1}},
		{{nan}, {nan}, {0}},
		// ±Inf corners and duplicates.
		{{pinf, ninf}, {ninf, pinf}, {pinf, pinf}, {ninf, ninf}, {pinf, pinf}, {0, 0}},
		{{pinf}, {pinf}, {ninf}, {ninf}, {0}},
		// All-duplicate set: pure tiebreak territory.
		{{2, 3}, {2, 3}, {2, 3}, {2, 3}},
		// Zero-dimensional points: everything dominates everything.
		{{}, {}, {}},
		// Mixed NaN + Inf + duplicates.
		{{nan, pinf}, {pinf, nan}, {pinf, pinf}, {pinf, pinf}, {ninf, ninf}, {nan, nan}},
	}
	for ci, pts := range cases {
		tagI := "implicit case " + string(rune('A'+ci))
		checkViewAgainstNaive(t, tagI, NewImplicit(pts), pts)
		tagB := "blocked case " + string(rune('A'+ci))
		checkViewAgainstNaive(t, tagB,
			NewBlocked(pts, BlockedConfig{TileRows: 2, CacheBytes: 1}), pts)
	}
}

func TestViewCountViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(100)
		pts := randomViewPoints(rng, n, 1+rng.Intn(3), false)
		labels := make([]geom.Label, n)
		for i := range labels {
			labels[i] = geom.Label(rng.Intn(2))
		}
		want := BuildNaive(pts).CountViolations(labels)
		for _, v := range []View{NewImplicit(pts), NewBlocked(pts, BlockedConfig{TileRows: 16}), Build(pts)} {
			if got := ViewCountViolations(v, labels); got != want {
				t.Fatalf("trial %d: ViewCountViolations = %d, want %d", trial, got, want)
			}
		}
	}
}

func TestMatrixFromWords(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomViewPoints(rng, 70, 3, true)
	m := Build(pts)
	got, err := MatrixFromWords(m.N(), m.dom, m.dag)
	if err != nil {
		t.Fatalf("MatrixFromWords: %v", err)
	}
	if diff := Diff(got, m); diff != "" {
		t.Fatalf("round trip diverges: %s", diff)
	}
	// Corruptions must be rejected structurally.
	bad := append([]uint64(nil), m.dom...)
	bad[0] &^= 1 // clear the (0,0) reflexive bit
	if _, err := MatrixFromWords(m.N(), bad, m.dag); err == nil {
		t.Fatal("MatrixFromWords accepted a non-reflexive closure")
	}
	if _, err := MatrixFromWords(m.N(), m.dom[:len(m.dom)-1], m.dag); err == nil {
		t.Fatal("MatrixFromWords accepted short rows")
	}
	badDag := append([]uint64(nil), m.dag...)
	badDag[0] |= 1 // dag self-loop at 0
	if _, err := MatrixFromWords(m.N(), m.dom, badDag); err == nil {
		t.Fatal("MatrixFromWords accepted a dag self-loop")
	}
}

// TestBlockedMemoryGuard is the n=256k peak-memory regression guard:
// blocked row reads must stay orders of magnitude under the dense
// n²/64 footprint while answering the same bits.
func TestBlockedMemoryGuard(t *testing.T) {
	const n = 262144
	rng := rand.New(rand.NewSource(17))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	b := NewBlocked(pts, BlockedConfig{})
	row := make([]uint64, b.Words())
	// Touch rows across more tiles than the cache holds, so fills and
	// evictions both happen, then spot-check bits scalarly.
	stride := n / 24
	for i := 0; i < n; i += stride {
		b.ReadDomRow(row, i)
		for s := 0; s < 64; s++ {
			j := (i*31 + s*4099) % n
			got := row[j>>6]>>(uint(j)&63)&1 == 1
			want := i == j || geom.Dominates(pts[i], pts[j])
			if got != want {
				t.Fatalf("row %d bit %d = %v, want %v", i, j, got, want)
			}
		}
	}
	hits, misses, resident := b.CacheStats()
	if misses == 0 || resident == 0 {
		t.Fatalf("tile cache untouched: hits=%d misses=%d resident=%d", hits, misses, resident)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var grew uint64
	if after.HeapAlloc > before.HeapAlloc {
		grew = after.HeapAlloc - before.HeapAlloc
	}
	denseBytes := uint64(n) * uint64((n+63)/64) * 8 * 2 // dom+dag
	const guard = 512 << 20
	if grew >= guard {
		t.Fatalf("blocked mode retained %d bytes, want < %d (dense footprint would be %d)", grew, guard, denseBytes)
	}
	if denseBytes < 8*guard {
		t.Fatalf("guard not meaningful: dense footprint %d vs guard %d", denseBytes, guard)
	}
}
