package domgraph

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

// randomPoints draws n points in d dimensions from a small integer
// grid so that dominance relations, ties, and exact duplicates all
// occur with non-trivial probability.
func randomPoints(rng *rand.Rand, n, d, gridSide int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(gridSide))
		}
		pts[i] = p
	}
	return pts
}

// TestBuildMatchesNaivePairwise is the kernel's ground-truth property
// test: every bit of the parallel pruned build must match a scalar
// geom.Dominates / DominanceEdge evaluation, across dimensions and
// with duplicate points present.
func TestBuildMatchesNaivePairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(120)
			grid := 2 + rng.Intn(4) // tiny grid => many duplicates
			pts := randomPoints(rng, n, d, grid)
			m := Build(pts)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					wantDom := geom.Dominates(pts[i], pts[j])
					if got := m.Dominates(i, j); got != wantDom {
						t.Fatalf("d=%d n=%d: Dominates(%d,%d)=%v, want %v (p=%v q=%v)",
							d, n, i, j, got, wantDom, pts[i], pts[j])
					}
					wantEdge := DominanceEdge(pts, i, j)
					if got := m.Edge(i, j); got != wantEdge {
						t.Fatalf("d=%d n=%d: Edge(%d,%d)=%v, want %v (p=%v q=%v)",
							d, n, i, j, got, wantEdge, pts[i], pts[j])
					}
				}
			}
		}
	}
}

// TestBuildMatchesBuildNaive checks the two builders bit-for-bit,
// including at worker counts that do not divide the row count.
func TestBuildMatchesBuildNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 63, 64, 65, 200, 513} {
		pts := randomPoints(rng, n, 3, 5)
		want := BuildNaive(pts)
		for _, workers := range []int{1, 2, 3, 7} {
			got := build(pts, workers)
			if got.n != want.n || got.words != want.words {
				t.Fatalf("n=%d workers=%d: shape (%d,%d) != (%d,%d)",
					n, workers, got.n, got.words, want.n, want.words)
			}
			for w := range want.dom {
				if got.dom[w] != want.dom[w] {
					t.Fatalf("n=%d workers=%d: dom word %d: %#x != %#x", n, workers, w, got.dom[w], want.dom[w])
				}
				if got.dag[w] != want.dag[w] {
					t.Fatalf("n=%d workers=%d: dag word %d: %#x != %#x", n, workers, w, got.dag[w], want.dag[w])
				}
			}
		}
	}
}

// TestDAGAcyclicOnDuplicates: coordinate-equal points must chain by
// index, never both directions.
func TestDAGAcyclicOnDuplicates(t *testing.T) {
	pts := []geom.Point{{1, 1}, {1, 1}, {1, 1}, {0, 2}}
	m := Build(pts)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if !m.Dominates(i, j) {
				t.Fatalf("duplicate pair (%d,%d) must mutually dominate", i, j)
			}
			if m.Edge(i, j) != (i > j) {
				t.Fatalf("Edge(%d,%d)=%v, want index tiebreak %v", i, j, m.Edge(i, j), i > j)
			}
		}
	}
	if m.Edge(0, 3) || m.Edge(3, 0) {
		t.Fatal("incomparable points must have no DAG edge")
	}
}

func TestCountViolationsMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(150)
		pts := randomPoints(rng, n, d, 3)
		lab := make([]geom.LabeledPoint, n)
		labels := make([]geom.Label, n)
		for i := range lab {
			labels[i] = geom.Label(rng.Intn(2))
			lab[i] = geom.LabeledPoint{P: pts[i], Label: labels[i]}
		}
		m := Build(pts)
		if got, want := m.CountViolations(labels), geom.MonotoneViolations(lab); got != want {
			t.Fatalf("trial %d: CountViolations %d != MonotoneViolations %d", trial, got, want)
		}
	}
}

// violationPartiesNaive is the dense O(n²) contending-set scan of
// passive.Solve's Dense path, kept here as the oracle.
func violationPartiesNaive(pts []geom.Point, labels []geom.Label) []bool {
	out := make([]bool, len(pts))
	for i := range pts {
		if labels[i] != geom.Negative {
			continue
		}
		for j := range pts {
			if labels[j] != geom.Positive {
				continue
			}
			if geom.Dominates(pts[i], pts[j]) {
				out[i] = true
				out[j] = true
			}
		}
	}
	return out
}

func TestViolationPartiesMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(150)
		pts := randomPoints(rng, n, d, 3)
		labels := make([]geom.Label, n)
		for i := range labels {
			labels[i] = geom.Label(rng.Intn(2))
		}
		m := Build(pts)
		got := m.ViolationParties(labels)
		want := violationPartiesNaive(pts, labels)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: point %d contending=%v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestIsAntichain(t *testing.T) {
	pts := []geom.Point{{0, 3}, {1, 2}, {2, 1}, {3, 0}, {3, 3}, {1, 2}}
	m := Build(pts)
	if !m.IsAntichain([]int{0, 1, 2, 3}) {
		t.Fatal("staircase must be an antichain")
	}
	if m.IsAntichain([]int{0, 4}) {
		t.Fatal("(0,3) vs (3,3) are comparable")
	}
	if m.IsAntichain([]int{1, 5}) {
		t.Fatal("duplicate points are comparable")
	}
	if m.IsAntichain([]int{2, 2}) {
		t.Fatal("repeated index is not an antichain")
	}
	if !m.IsAntichain(nil) || !m.IsAntichain([]int{4}) {
		t.Fatal("empty and singleton sets are antichains")
	}
}

func TestCountEdges(t *testing.T) {
	pts := []geom.Point{{0}, {1}, {2}}
	m := Build(pts)
	// Total order: edges 2->1, 2->0, 1->0.
	if got := m.CountEdges(); got != 3 {
		t.Fatalf("CountEdges = %d, want 3", got)
	}
}
