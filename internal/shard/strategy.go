// Package shard is the horizontal scale-out layer: a consistent-hash
// router fronting N monoserve replicas, plus snapshot replication that
// propagates promoted models from a primary registry to every replica
// over the existing JSON /model endpoints with version-vector
// agreement.
//
// The paper's models are tiny immutable anchor sets (the model-size
// bounds reproduced in the Figure-1 golden test), which makes
// whole-model replication the natural distribution unit: every replica
// holds the complete model, so any replica can answer any request and
// the router's placement strategy is purely a load-spreading and
// cache-affinity decision, never a correctness one. Correctness lives
// in the replication protocol instead — a replica is never observed
// serving a version older than one it has already acknowledged, and
// every served version resolves to a primary version through the
// syncer's version vector. See DESIGN.md §14.
package shard

import (
	"fmt"
	"math"
	"sort"

	"monoclass/internal/geom"
)

// Strategy maps a classify request to replicas. Order fills dst with
// replica indices in preference order — every replica exactly once —
// and returns the filled slice. The router tries them in order,
// preferring healthy replicas, so a strategy never needs to know about
// health; it only decides affinity. Implementations must be safe for
// concurrent use and deterministic (same point, same order), so tests
// and the conformance check can predict placement.
type Strategy interface {
	// Name identifies the strategy in stats and CLI flags.
	Name() string
	// Replicas returns the replica count the strategy was built for.
	Replicas() int
	// Order writes the preference order for pt into dst (which must
	// have length ≥ Replicas()) and returns dst[:Replicas()].
	Order(dst []int, pt geom.Point) []int
}

// pointKey hashes a point's coordinates with FNV-1a over the float64
// bit patterns. NaN payload bits are canonicalized so every NaN keys
// identically, matching the dominance semantics where every NaN
// behaves the same.
func pointKey(pt geom.Point) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range pt {
		b := math.Float64bits(c)
		if c != c { // NaN: canonical bits
			b = 0x7ff8000000000001
		}
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// stringKey is pointKey's sibling for endpoint/vnode labels.
func stringKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ---------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------

// DefaultVNodes is the virtual-node count per replica: enough that the
// ring splits load within a few percent of even for small fleets,
// small enough that construction and the per-request walk stay
// trivial.
const DefaultVNodes = 64

// Ring is the consistent-hash strategy: each replica owns VNodes
// pseudo-random positions on a uint64 ring; a request's point hashes
// to a position and walks clockwise, yielding replicas in first-
// encounter order. Adding or removing a replica moves only ~1/N of
// the key space, so cache affinity survives fleet changes.
type Ring struct {
	n     int
	nodes []ringNode // sorted by pos
}

type ringNode struct {
	pos uint64
	idx int
}

// NewRing builds a ring over n replicas with vnodes virtual nodes each
// (DefaultVNodes when vnodes <= 0). Vnode positions derive from the
// replica index, not the endpoint string, so two routers over the same
// fleet agree on placement regardless of how endpoints are spelled.
func NewRing(n, vnodes int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 replica, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{n: n, nodes: make([]ringNode, 0, n*vnodes)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodes; v++ {
			pos := stringKey(fmt.Sprintf("replica-%d#%d", i, v))
			r.nodes = append(r.nodes, ringNode{pos: pos, idx: i})
		}
	}
	sort.Slice(r.nodes, func(a, b int) bool {
		if r.nodes[a].pos != r.nodes[b].pos {
			return r.nodes[a].pos < r.nodes[b].pos
		}
		return r.nodes[a].idx < r.nodes[b].idx
	})
	return r, nil
}

// Name implements Strategy.
func (r *Ring) Name() string { return "ring" }

// Replicas implements Strategy.
func (r *Ring) Replicas() int { return r.n }

// Order implements Strategy: clockwise walk from the point's hash
// position, collecting each replica on first encounter.
func (r *Ring) Order(dst []int, pt geom.Point) []int {
	dst = dst[:0]
	key := pointKey(pt)
	start := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].pos >= key })
	var seen uint64 // replica bitset; fleets are far below 64 in practice
	var seenBig map[int]bool
	if r.n > 64 {
		seenBig = make(map[int]bool, r.n)
	}
	for step := 0; step < len(r.nodes) && len(dst) < r.n; step++ {
		node := r.nodes[(start+step)%len(r.nodes)]
		if seenBig != nil {
			if seenBig[node.idx] {
				continue
			}
			seenBig[node.idx] = true
		} else {
			if seen&(1<<uint(node.idx)) != 0 {
				continue
			}
			seen |= 1 << uint(node.idx)
		}
		dst = append(dst, node.idx)
	}
	return dst
}

// ---------------------------------------------------------------------
// Dimension-space partitioning
// ---------------------------------------------------------------------

// DimPartition is the alternative placement strategy: the value space
// of one coordinate is cut into contiguous buckets by sorted
// boundaries, bucket i owning (bounds[i-1], bounds[i]]. It trades the
// ring's uniform spread for spatial locality — queries near each other
// on the split dimension land on the same replica, which keeps that
// replica's staircase-index search paths hot. Fallback order walks
// outward from the owning bucket, so a dead replica's load spills to
// its value-space neighbors.
type DimPartition struct {
	dim    int // coordinate index the partition splits on
	bounds []float64
}

// NewDimPartition partitions on coordinate dim with len(bounds)+1
// buckets (= replicas). bounds must be sorted ascending. NaN query
// coordinates route to bucket 0.
func NewDimPartition(dim int, bounds []float64) (*DimPartition, error) {
	if dim < 0 {
		return nil, fmt.Errorf("shard: partition dimension must be ≥ 0, got %d", dim)
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i-1] <= bounds[i]) { // also rejects NaN bounds
			return nil, fmt.Errorf("shard: partition bounds must be sorted, got %g before %g", bounds[i-1], bounds[i])
		}
	}
	for _, b := range bounds {
		if math.IsNaN(b) {
			return nil, fmt.Errorf("shard: partition bounds must not be NaN")
		}
	}
	return &DimPartition{dim: dim, bounds: append([]float64(nil), bounds...)}, nil
}

// DimBoundsFromSample computes n-1 quantile boundaries of coordinate
// dim over a sample, for an n-way partition that balances the sample's
// load. Non-finite sample coordinates are ignored; with too few
// distinct finite values the surplus boundaries repeat (those buckets
// then stay cold — the router's fallback order still covers them).
func DimBoundsFromSample(sample []geom.Point, dim, n int) []float64 {
	var vals []float64
	for _, p := range sample {
		if dim < len(p) && !math.IsNaN(p[dim]) && !math.IsInf(p[dim], 0) {
			vals = append(vals, p[dim])
		}
	}
	bounds := make([]float64, 0, n-1)
	if len(vals) == 0 {
		for i := 1; i < n; i++ {
			bounds = append(bounds, float64(i)) // arbitrary but sorted
		}
		return bounds
	}
	sort.Float64s(vals)
	for i := 1; i < n; i++ {
		bounds = append(bounds, vals[i*len(vals)/n])
	}
	return bounds
}

// Name implements Strategy.
func (d *DimPartition) Name() string { return "dims" }

// Replicas implements Strategy.
func (d *DimPartition) Replicas() int { return len(d.bounds) + 1 }

// Order implements Strategy: the owning bucket first, then alternating
// outward (right, left, right ...) until every bucket is listed.
func (d *DimPartition) Order(dst []int, pt geom.Point) []int {
	n := d.Replicas()
	dst = dst[:0]
	var v float64
	if d.dim < len(pt) {
		v = pt[d.dim]
	}
	// (lo, hi] semantics: the owning bucket is the index of the first
	// boundary ≥ v (a value equal to a boundary belongs to the bucket
	// below it); values above every boundary own the last bucket.
	bucket := 0
	if !math.IsNaN(v) {
		bucket = sort.SearchFloat64s(d.bounds, v)
	}
	if bucket >= n {
		bucket = n - 1
	}
	dst = append(dst, bucket)
	for step := 1; len(dst) < n; step++ {
		if r := bucket + step; r < n {
			dst = append(dst, r)
		}
		if l := bucket - step; l >= 0 && len(dst) < n {
			dst = append(dst, l)
		}
	}
	return dst
}
