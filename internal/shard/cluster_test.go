package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/serve"
	"monoclass/internal/testutil"
)

// TestClusterEndToEnd drives the packaged scale-out unit the way
// cmd/monoserve -replicas does: real listeners on loopback, classify
// and promote through the router's public listener, replication
// converging behind it.
func TestClusterEndToEnd(t *testing.T) {
	testutil.CheckGoroutines(t)
	c, err := NewCluster(thresholdModel(t, 1), ClusterConfig{
		Replicas:     3,
		Serve:        serve.Config{Batch: serve.BatcherConfig{MaxBatch: 8, MaxWait: -1, QueueCap: 256}},
		SyncInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	client := &http.Client{Timeout: 5 * time.Second}

	classify := func(x float64) (int64, bool) {
		t.Helper()
		resp, err := client.Post(base+"/classify", "application/json",
			strings.NewReader(fmt.Sprintf(`{"point":[%g]}`, x)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("classify(%g): status %d", x, resp.StatusCode)
		}
		var res struct {
			Label   int   `json:"label"`
			Version int64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res.Version, res.Label == 1
	}

	if _, pos := classify(5.5); !pos {
		t.Error("5.5 not positive under tau=1")
	}

	// Promote tau=10 through the router; the fleet must converge and
	// every subsequent classify must reflect it once acked everywhere.
	var buf strings.Builder
	if err := classifier.WriteModel(&buf, thresholdModel(t, 10)); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/model", "application/json", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	waitConverged(t, c.Syncer(), c.Addrs()[1:], 2, 10*time.Second)

	for _, x := range []float64{0.5, 3.5, 9.5, 10.5, 42.5} {
		_, pos := classify(x)
		if want := x >= 10; pos != want {
			t.Errorf("classify(%g) positive=%v after promotion to tau=10, want %v", x, pos, want)
		}
	}

	// Aggregate health: all replicas up, vector converged in /stats.
	var hz struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	if code := getJSON(t, base+"/healthz", &hz); code != 200 || hz.Status != "ok" || hz.Healthy != 3 {
		t.Errorf("healthz = %+v (code %d), want ok/3", hz, code)
	}
	var agg AggregateStats
	if code := getJSON(t, base+"/stats", &agg); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if len(agg.Sync) != 2 {
		t.Fatalf("vector has %d entries, want 2", len(agg.Sync))
	}
	for _, rs := range agg.Sync {
		if rs.Acked != 2 {
			t.Errorf("replica %s acked %d, want 2", rs.Endpoint, rs.Acked)
		}
	}
	if agg.Totals.Requests != 6 {
		t.Errorf("aggregate requests = %d, want exactly 6", agg.Totals.Requests)
	}
}
