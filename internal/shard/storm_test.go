package shard

// The cross-process swap-storm test: the distributed extension of the
// serve package's TestHotSwapStorm. Three replica servers run behind
// real HTTP listeners, a router spreads concurrent classify load over
// them while a promotion storm drives new model versions through the
// router's control plane, and the syncer replicates each promotion to
// the fleet. Model version v always carries threshold tau = v, so a
// response is checkable from its version alone once the version is
// resolved to primary coordinates.
//
// The invariant under test is the version-vector agreement: for every
// response served by replica R at R's local version L, the primary
// version P = Resolve(R, L) must satisfy
//
//	ackedAtSubmit(R) ≤ P ≤ primaryVersionAtResponse
//
// The lower bound is the "never observed older than acknowledged"
// guarantee (the syncer's per-replica pushes are serialized and
// strictly monotone; the replica's registry only swaps forward). The
// upper bound holds because P was the primary's version at some
// earlier push. The label check then pins the payload: the model
// serving P labels x positive iff x ≥ P.

import (
	"encoding/json"
	"fmt"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/serve"
	"monoclass/internal/testutil"
)

type stormObs struct {
	x        float64
	endpoint string
	localVer int64
	label    geom.Label
	vLo      int64 // acked (replica) / primary version (primary) at submit
	vHi      int64 // primary version after the response arrived
}

func TestShardSwapStorm(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		replicas   = 3
		workers    = 4
		perWorker  = 150
		promotions = 25
	)
	urls, srvs := testFleet(t, replicas, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 16, MaxWait: -1, QueueCap: 4096, Workers: 2},
	})
	primaryReg := srvs[0].Registry()

	syncer := NewSyncer(urls[0], urls[1:], SyncConfig{
		Interval:    2 * time.Millisecond,
		SeedVersion: 1,
		Client:      fastClient(),
	})
	router, err := NewRouter(urls, RouterConfig{
		Primary:        0,
		Syncer:         syncer,
		HealthInterval: -1, // deterministic routing: no background health flips
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	syncer.Start()
	defer syncer.Stop()

	hs := httptest.NewServer(router.Handler())
	defer hs.Close()
	rs := hs.URL
	client := &http.Client{Timeout: 10 * time.Second}

	// Promoter: drives the storm through the router's control plane.
	// Promotions serialize here, so version v+1 always carries tau v+1.
	var stormWG sync.WaitGroup
	var promoted atomic.Int64
	stormWG.Add(1)
	go func() {
		defer stormWG.Done()
		for i := 0; i < promotions; i++ {
			tau := float64(i + 2) // version 1 is the seed model
			var buf strings.Builder
			if err := classifier.WriteModel(&buf, thresholdModel(t, tau)); err != nil {
				t.Errorf("serialize model: %v", err)
				return
			}
			resp, err := client.Post(rs+"/model", "application/json", strings.NewReader(buf.String()))
			if err != nil {
				t.Errorf("promote tau=%g: %v", tau, err)
				return
			}
			var swap struct {
				Version int64 `json:"version"`
			}
			err = json.NewDecoder(resp.Body).Decode(&swap)
			resp.Body.Close()
			if err != nil || swap.Version != int64(tau) {
				t.Errorf("promote tau=%g: version %d, err %v (promotion/threshold pairing broken)", tau, swap.Version, err)
				return
			}
			promoted.Store(swap.Version)
			time.Sleep(500 * time.Microsecond) // spread the storm across the classify window
		}
	}()

	// Classify workers: predict the placement, record the version
	// window, submit through the router.
	obsCh := make(chan stormObs, workers*perWorker)
	var rejected atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				// Strictly-fractional points: every integer threshold
				// labels them unambiguously, and the fractional jitter
				// gives the ring enough distinct keys to spread load.
				x := float64(rng.Intn(promotions+6)) + 0.1 + 0.8*rng.Float64()
				pt := geom.Point{x}
				ep := router.Endpoint(pt)
				var vLo int64
				if ep == urls[0] {
					vLo = primaryReg.Version()
				} else {
					vLo = syncer.Acked(ep)
				}
				resp, err := client.Post(rs+"/classify", "application/json",
					strings.NewReader(fmt.Sprintf(`{"point":[%g]}`, x)))
				if err != nil {
					t.Errorf("classify: %v", err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					resp.Body.Close()
					rejected.Add(1)
					continue
				}
				var res struct {
					Label   geom.Label `json:"label"`
					Version int64      `json:"version"`
				}
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					t.Errorf("classify decode: %v", err)
					return
				}
				obsCh <- stormObs{
					x: x, endpoint: ep, localVer: res.Version, label: res.Label,
					vLo: vLo, vHi: primaryReg.Version(),
				}
			}
		}(w)
	}
	wg.Wait()
	stormWG.Wait()
	close(obsCh)

	// Quiesce: every replica must acknowledge the final primary version
	// — re-convergence is part of the protocol under test.
	finalVer := primaryReg.Version()
	if finalVer != int64(promotions)+1 {
		t.Fatalf("primary at version %d after storm, want %d", finalVer, promotions+1)
	}
	waitConverged(t, syncer, urls[1:], finalVer, 10*time.Second)

	// Every observation must resolve to a primary version inside its
	// live window, with the matching label.
	checked := 0
	for obs := range obsCh {
		var p int64
		if obs.endpoint == urls[0] {
			p = obs.localVer // primary serves primary versions directly
		} else {
			var ok bool
			p, ok = syncer.Resolve(obs.endpoint, obs.localVer)
			if !ok {
				t.Errorf("replica %s served unmapped local version %d (swap outside the syncer?)", obs.endpoint, obs.localVer)
				continue
			}
		}
		if p < obs.vLo || p > obs.vHi {
			t.Errorf("point %g: resolved primary version %d outside live window [%d,%d] (replica %s local %d)",
				obs.x, p, obs.vLo, obs.vHi, obs.endpoint, obs.localVer)
		}
		want := geom.Negative
		if obs.x >= float64(p) {
			want = geom.Positive
		}
		if obs.label != want {
			t.Errorf("point %g labeled %v by primary version %d, want %v", obs.x, obs.label, p, want)
		}
		checked++
	}
	if min := workers * perWorker / 2; checked < min {
		t.Errorf("only %d observations checked (%d rejected), want ≥ %d", checked, rejected.Load(), min)
	}

	// The storm must actually have spread: every replica served traffic
	// and every replica converged through multiple pushes.
	agg := router.AggregateStats(context.Background())
	for i, n := range agg.Router.Routed {
		if n == 0 {
			t.Errorf("replica %d served no routed traffic — storm did not spread", i)
		}
	}
	if _, pushes, _ := syncer.Stats(); pushes < int64(promotions) {
		t.Errorf("syncer recorded %d pushes for %d promotions × %d replicas", pushes, promotions, replicas-1)
	}
	t.Logf("storm: %d checked, %d rejected, routed %v, final version %d", checked, rejected.Load(), agg.Router.Routed, finalVer)
}

// waitConverged polls until every replica's acked version reaches want.
func waitConverged(t *testing.T, s *Syncer, replicas []string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		lagging := ""
		for _, r := range replicas {
			if s.Acked(r) < want {
				lagging = r
				break
			}
		}
		if lagging == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never acknowledged version %d (acked %d)", lagging, want, s.Acked(lagging))
		}
		time.Sleep(time.Millisecond)
	}
}
