package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"monoclass/internal/geom"
	"monoclass/internal/serve"
)

// RouterConfig tunes a Router. The zero value uses a consistent-hash
// ring, 250ms health polls, and a 10s per-attempt HTTP timeout.
type RouterConfig struct {
	// Strategy places requests on replicas (default: NewRing over the
	// endpoint count with DefaultVNodes).
	Strategy Strategy
	// Primary indexes the endpoint that owns promotions: POST /model,
	// POST /learn, and GET /model all go there (default 0).
	Primary int
	// HealthInterval is the background /healthz poll cadence; negative
	// disables the background checker (tests drive CheckHealth
	// directly). Default 250ms.
	HealthInterval time.Duration
	// Client overrides the HTTP client used for proxied requests and
	// health polls (tests inject short timeouts).
	Client *http.Client
	// Syncer, when non-nil, is kicked after each successful promotion
	// and contributes the version vector to /stats and /healthz.
	Syncer *Syncer
	// MaxBodyBytes caps buffered request bodies (default 8 MiB,
	// matching serve.Config).
	MaxBodyBytes int64
}

// Router fronts a fleet of replica endpoints serving the same model
// family: classify traffic spreads over healthy replicas by the
// placement strategy with transparent failover, control traffic
// (promotion, learning, model fetch) pins to the primary, and /stats
// aggregates exact totals across the fleet.
//
//	POST /classify        → strategy-placed replica (failover on 5xx/transport error)
//	POST /classify/batch  → strategy-placed replica (whole batch, one replica, one version)
//	POST /model           → primary, then Syncer.Kick
//	GET  /model           → primary
//	POST /learn           → primary
//	GET  /healthz         → aggregate fleet health + per-replica versions
//	GET  /stats           → per-replica serve snapshots + exact summed totals + shard counters
//
// Backpressure (429) passes through from the owning replica without
// failover: a full queue is a signal to the client, not a fault.
type Router struct {
	endpoints []string
	primary   int
	strategy  Strategy
	client    *http.Client
	syncer    *Syncer
	maxBody   int64

	healthy  []atomic.Bool
	lastVer  []atomic.Int64 // last version seen by a health poll
	routed   []atomic.Int64 // successful proxied data-plane calls per replica
	retries  atomic.Int64   // failover attempts after a replica failed
	failed   atomic.Int64   // requests answered 502 after exhausting the fleet
	healthUp atomic.Int64   // unhealthy→healthy transitions observed by polls
	healthDn atomic.Int64   // healthy→unhealthy transitions (polls or data-path faults)

	interval time.Duration
	mux      *http.ServeMux

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	loopDone  chan struct{}

	mu   sync.Mutex
	ln   net.Listener
	hsrv *http.Server
}

// NewRouter builds a router over replica base URLs ("http://host:port",
// no trailing slash). The background health loop starts with Start (or
// StartHealth for handler-only use); until the first poll every
// replica is presumed healthy.
func NewRouter(endpoints []string, cfg RouterConfig) (*Router, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one replica endpoint")
	}
	if cfg.Primary < 0 || cfg.Primary >= len(endpoints) {
		return nil, fmt.Errorf("shard: primary index %d out of range for %d endpoints", cfg.Primary, len(endpoints))
	}
	if cfg.Strategy == nil {
		ring, err := NewRing(len(endpoints), 0)
		if err != nil {
			return nil, err
		}
		cfg.Strategy = ring
	}
	if cfg.Strategy.Replicas() != len(endpoints) {
		return nil, fmt.Errorf("shard: strategy built for %d replicas, router has %d endpoints",
			cfg.Strategy.Replicas(), len(endpoints))
	}
	if cfg.Client == nil {
		// Dedicated transport: Shutdown closes its idle connections,
		// which must not disturb other http.DefaultTransport users.
		cfg.Client = &http.Client{
			Timeout:   10 * time.Second,
			Transport: http.DefaultTransport.(*http.Transport).Clone(),
		}
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	r := &Router{
		endpoints: append([]string(nil), endpoints...),
		primary:   cfg.Primary,
		strategy:  cfg.Strategy,
		client:    cfg.Client,
		syncer:    cfg.Syncer,
		maxBody:   cfg.MaxBodyBytes,
		healthy:   make([]atomic.Bool, len(endpoints)),
		lastVer:   make([]atomic.Int64, len(endpoints)),
		routed:    make([]atomic.Int64, len(endpoints)),
		interval:  cfg.HealthInterval,
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	for i := range r.healthy {
		r.healthy[i].Store(true)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /classify", r.handleData)
	r.mux.HandleFunc("POST /classify/batch", r.handleData)
	r.mux.HandleFunc("POST /model", r.handlePromote)
	r.mux.HandleFunc("GET /model", r.handlePrimaryGet)
	r.mux.HandleFunc("POST /learn", r.handlePrimaryPost)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /stats", r.handleStats)
	return r, nil
}

// Handler returns the router's HTTP handler tree for httptest or an
// external server.
func (r *Router) Handler() http.Handler { return r.mux }

// Endpoints returns the replica base URLs in index order.
func (r *Router) Endpoints() []string { return append([]string(nil), r.endpoints...) }

// Primary returns the promotion-owning endpoint.
func (r *Router) Primary() string { return r.endpoints[r.primary] }

// Endpoint predicts which replica a point routes to right now — the
// first healthy replica in strategy order (falling back to the
// strategy's first choice when the whole fleet looks down). Tests use
// it to read per-replica state before submitting a request.
func (r *Router) Endpoint(pt geom.Point) string {
	order := r.strategy.Order(make([]int, 0, len(r.endpoints)), pt)
	for _, idx := range order {
		if r.healthy[idx].Load() {
			return r.endpoints[idx]
		}
	}
	return r.endpoints[order[0]]
}

// Healthy reports the health flag of replica i.
func (r *Router) Healthy(i int) bool { return r.healthy[i].Load() }

// StartHealth launches the background health loop without a listener
// (handler-only deployments). No-op when disabled or already running.
func (r *Router) StartHealth() {
	if r.interval < 0 {
		return
	}
	r.startOnce.Do(func() { go r.healthLoop() })
}

// Start listens on addr, serves the router in a background goroutine,
// and launches the health loop. Returns the bound address.
func (r *Router) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.hsrv != nil {
		r.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("shard: router already started")
	}
	r.ln = ln
	r.hsrv = &http.Server{Handler: r.mux}
	hsrv := r.hsrv
	r.mu.Unlock()
	go hsrv.Serve(ln)
	r.StartHealth()
	return ln.Addr(), nil
}

// Shutdown stops the listener (if any) and the health loop. In-flight
// proxied requests finish within ctx.
func (r *Router) Shutdown(ctx context.Context) error {
	var err error
	r.mu.Lock()
	hsrv := r.hsrv
	r.hsrv = nil
	r.mu.Unlock()
	if hsrv != nil {
		err = hsrv.Shutdown(ctx)
	}
	r.stopOnce.Do(func() { close(r.stop) })
	r.startOnce.Do(func() { close(r.loopDone) }) // loop never ran
	<-r.loopDone
	// Release outbound keep-alive connections. The transport's dial
	// race can park a never-used spare in the idle pool; server-side
	// that connection is StateNew, which http.Server.Shutdown refuses
	// to reap for 5s — closing it here lets replicas drain instantly.
	r.client.CloseIdleConnections()
	return err
}

// Close is Shutdown with a short deadline, for defer convenience.
func (r *Router) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return r.Shutdown(ctx)
}

func (r *Router) healthLoop() {
	defer close(r.loopDone)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.CheckHealth()
		}
	}
}

// CheckHealth runs one health poll round over every replica, flipping
// health flags on /healthz reachability. Exported so tests and CLIs
// can force convergence instead of waiting out the interval.
func (r *Router) CheckHealth() {
	var wg sync.WaitGroup
	for i := range r.endpoints {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, ver := r.probe(i)
			was := r.healthy[i].Swap(ok)
			if ver > 0 {
				r.lastVer[i].Store(ver)
			}
			switch {
			case ok && !was:
				r.healthUp.Add(1)
			case !ok && was:
				r.healthDn.Add(1)
			}
		}(i)
	}
	wg.Wait()
}

// probe GETs one replica's /healthz, returning liveness and the
// version it reports.
func (r *Router) probe(i int) (bool, int64) {
	resp, err := r.client.Get(r.endpoints[i] + "/healthz")
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false, 0
	}
	var hz struct {
		Version int64 `json:"version"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	return true, hz.Version
}

// ---- data plane ----

// extractKey pulls the placement key out of a classify body without
// decoding it in full: a streaming prefix parse stops at the first
// point (a client batch routes whole to one replica, keyed by its
// first point, so the response carries one coherent (labels, version)
// pair exactly as direct serving does). Large batches therefore cost
// the router one point's decode, not the whole body's — the replica
// does the strict full parse. A body the router cannot key returns
// nil, and still gets forwarded (to the strategy's order for the
// empty point) so the error surface a client sees is the replica's,
// identical to serving without a router.
func extractKey(body []byte) geom.Point {
	dec := json.NewDecoder(bytes.NewReader(body))
	if t, err := dec.Token(); err != nil || t != json.Delim('{') {
		return nil
	}
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return nil
		}
		key, _ := kt.(string)
		switch key {
		case "point":
			var p []float64
			if dec.Decode(&p) == nil && len(p) > 0 {
				return p
			}
			return nil
		case "points":
			if t, err := dec.Token(); err != nil || t != json.Delim('[') {
				return nil
			}
			if !dec.More() {
				return nil
			}
			var p []float64
			if dec.Decode(&p) == nil && len(p) > 0 {
				return p
			}
			return nil
		default:
			var skip json.RawMessage
			if dec.Decode(&skip) != nil {
				return nil
			}
		}
	}
	return nil
}

// handleData proxies /classify and /classify/batch: buffer the body,
// key it, walk replicas in placement order (healthy first), pass the
// first non-faulty response through verbatim.
func (r *Router) handleData(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(http.MaxBytesReader(w, req.Body, r.maxBody), req.ContentLength)
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return
	}
	r.proxyOrdered(w, req, extractKey(body), body)
}

// readBody buffers a request/response body, sizing the buffer from the
// declared length when one is present (io.ReadAll's grow-and-copy is
// measurable on the per-batch hot path).
func readBody(rd io.Reader, declared int64) ([]byte, error) {
	if declared > 0 {
		buf := bytes.NewBuffer(make([]byte, 0, declared+1))
		if _, err := buf.ReadFrom(rd); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return io.ReadAll(rd)
}

// proxyOrdered tries replicas in placement order, healthy ones first,
// then (as a last resort) unhealthy ones — a wrongly-flagged replica
// is still better than a 502.
func (r *Router) proxyOrdered(w http.ResponseWriter, req *http.Request, key geom.Point, body []byte) {
	order := r.strategy.Order(make([]int, 0, len(r.endpoints)), key)
	attempts := make([]int, 0, len(order))
	for _, idx := range order {
		if r.healthy[idx].Load() {
			attempts = append(attempts, idx)
		}
	}
	for _, idx := range order {
		if !r.healthy[idx].Load() {
			attempts = append(attempts, idx)
		}
	}
	var lastErr string
	for n, idx := range attempts {
		if n > 0 {
			r.retries.Add(1)
		}
		status, hdr, respBody, err := r.forward(req.Context(), idx, req.URL.Path, body)
		if err != nil || status == http.StatusBadGateway || status == http.StatusServiceUnavailable || status == http.StatusGatewayTimeout {
			// Transport failure or fault-shaped status: mark and move on.
			// 503 from a draining/shutting-down replica is retryable by
			// construction — the request was not accepted.
			if r.healthy[idx].Swap(false) {
				r.healthDn.Add(1)
			}
			if err != nil {
				lastErr = err.Error()
			} else {
				lastErr = fmt.Sprintf("%s: status %d", r.endpoints[idx], status)
			}
			continue
		}
		r.routed[idx].Add(1)
		passThrough(w, status, hdr, respBody)
		return
	}
	r.failed.Add(1)
	writeRouterError(w, http.StatusBadGateway, fmt.Sprintf("no replica available: %s", lastErr))
}

// forward POSTs body to one replica and buffers the response.
func (r *Router) forward(ctx context.Context, idx int, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.endpoints[idx]+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := readBody(resp.Body, resp.ContentLength)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// ---- control plane ----

// handlePromote forwards POST /model to the primary and kicks the
// syncer on success, so a promotion propagates to the fleet
// immediately rather than on the next poll tick.
func (r *Router) handlePromote(w http.ResponseWriter, req *http.Request) {
	status := r.proxyPrimary(w, req)
	if status == http.StatusOK && r.syncer != nil {
		r.syncer.Kick()
	}
}

func (r *Router) handlePrimaryPost(w http.ResponseWriter, req *http.Request) {
	r.proxyPrimary(w, req)
}

// proxyPrimary forwards the request to the primary verbatim (method,
// path, body) and passes the response through, returning the status.
func (r *Router) proxyPrimary(w http.ResponseWriter, req *http.Request) int {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.maxBody))
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("reading body: %v", err))
		return http.StatusRequestEntityTooLarge
	}
	preq, err := http.NewRequestWithContext(req.Context(), req.Method, r.Primary()+req.URL.Path, bytes.NewReader(body))
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, err.Error())
		return http.StatusInternalServerError
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(preq)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, fmt.Sprintf("primary unreachable: %v", err))
		return http.StatusBadGateway
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		writeRouterError(w, http.StatusBadGateway, fmt.Sprintf("primary response: %v", err))
		return http.StatusBadGateway
	}
	passThrough(w, resp.StatusCode, resp.Header, respBody)
	return resp.StatusCode
}

func (r *Router) handlePrimaryGet(w http.ResponseWriter, req *http.Request) {
	r.proxyPrimary(w, req)
}

// ---- health + stats aggregation ----

// ReplicaHealth is one replica's row in the aggregate /healthz.
type ReplicaHealth struct {
	Endpoint string `json:"endpoint"`
	Healthy  bool   `json:"healthy"`
	Primary  bool   `json:"primary"`
	// Version is the model version the last successful health poll
	// observed (0 before the first poll).
	Version int64 `json:"version"`
	// Acked is the syncer's acknowledged primary version for this
	// replica (absent without a syncer; the primary acks itself).
	Acked int64 `json:"acked,omitempty"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	rows := make([]ReplicaHealth, len(r.endpoints))
	healthyN := 0
	for i, ep := range r.endpoints {
		rows[i] = ReplicaHealth{
			Endpoint: ep,
			Healthy:  r.healthy[i].Load(),
			Primary:  i == r.primary,
			Version:  r.lastVer[i].Load(),
		}
		if r.syncer != nil && i != r.primary {
			rows[i].Acked = r.syncer.Acked(ep)
		}
		if rows[i].Healthy {
			healthyN++
		}
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case healthyN == 0:
		status = "down"
		code = http.StatusServiceUnavailable
	case healthyN < len(rows):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"healthy":  healthyN,
		"replicas": rows,
	})
}

// ReplicaStats is one replica's row in the aggregate /stats.
type ReplicaStats struct {
	Endpoint string `json:"endpoint"`
	Healthy  bool   `json:"healthy"`
	// Routed counts data-plane calls this router successfully proxied
	// to the replica.
	Routed int64 `json:"routed"`
	// Stats is the replica's own /stats snapshot (absent when the
	// replica did not answer; Error says why).
	Stats *serve.StatsSnapshot `json:"stats,omitempty"`
	Error string               `json:"error,omitempty"`
}

// Totals is the exact cross-replica sum of the serve counter block.
// Each replica's snapshot is internally consistent (serve.Stats
// snapshots are linearized against updates), so the sums are exact for
// all traffic the fleet has finished processing.
type Totals struct {
	Requests    int64   `json:"requests"`
	Rejected    int64   `json:"rejected"`
	BadRequests int64   `json:"bad_requests"`
	Batches     int64   `json:"batches"`
	BatchPoints int64   `json:"batch_points"`
	MeanBatch   float64 `json:"mean_batch"`
	Swaps       int64   `json:"swaps"`
}

// RouterStats reports the router's own counters.
type RouterStats struct {
	Strategy  string  `json:"strategy"`
	Retries   int64   `json:"retries"`
	Failed    int64   `json:"failed"`
	HealthUps int64   `json:"health_ups"`
	HealthDns int64   `json:"health_downs"`
	Routed    []int64 `json:"routed"`
	// Sync counters (zero without a syncer).
	SyncRounds   int64 `json:"sync_rounds,omitempty"`
	SyncPushes   int64 `json:"sync_pushes,omitempty"`
	SyncFailures int64 `json:"sync_failures,omitempty"`
}

// AggregateStats is the router's /stats shape.
type AggregateStats struct {
	Replicas []ReplicaStats `json:"replicas"`
	Totals   Totals         `json:"totals"`
	Router   RouterStats    `json:"router"`
	// Sync is the version vector (absent without a syncer).
	Sync []ReplicaSync `json:"sync,omitempty"`
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	agg := r.AggregateStats(req.Context())
	writeJSON(w, http.StatusOK, agg)
}

// AggregateStats polls every replica's /stats in parallel and sums the
// counter totals.
func (r *Router) AggregateStats(ctx context.Context) AggregateStats {
	rows := make([]ReplicaStats, len(r.endpoints))
	var wg sync.WaitGroup
	for i, ep := range r.endpoints {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			rows[i] = ReplicaStats{Endpoint: ep, Healthy: r.healthy[i].Load(), Routed: r.routed[i].Load()}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+"/stats", nil)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				rows[i].Error = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			var snap serve.StatsSnapshot
			if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].Stats = &snap
		}(i, ep)
	}
	wg.Wait()

	agg := AggregateStats{Replicas: rows}
	for _, row := range rows {
		if row.Stats == nil {
			continue
		}
		agg.Totals.Requests += row.Stats.Requests
		agg.Totals.Rejected += row.Stats.Rejected
		agg.Totals.BadRequests += row.Stats.BadRequests
		agg.Totals.Batches += row.Stats.Batches
		agg.Totals.BatchPoints += row.Stats.BatchPoints
		agg.Totals.Swaps += row.Stats.Swaps
	}
	if agg.Totals.Batches > 0 {
		agg.Totals.MeanBatch = float64(agg.Totals.BatchPoints) / float64(agg.Totals.Batches)
	}
	agg.Router = RouterStats{
		Strategy:  r.strategy.Name(),
		Retries:   r.retries.Load(),
		Failed:    r.failed.Load(),
		HealthUps: r.healthUp.Load(),
		HealthDns: r.healthDn.Load(),
		Routed:    make([]int64, len(r.endpoints)),
	}
	for i := range r.endpoints {
		agg.Router.Routed[i] = r.routed[i].Load()
	}
	if r.syncer != nil {
		agg.Sync = r.syncer.Vector()
		agg.Router.SyncRounds, agg.Router.SyncPushes, agg.Router.SyncFailures = r.syncer.Stats()
	}
	return agg
}

// ---- helpers ----

// passThrough copies a buffered upstream response to the client,
// preserving status, content type, and the model metadata headers.
func passThrough(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After", "X-Model-Version", "X-Model-Width", "X-Model-Exact-Width", "X-Model-Decompose-Path"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

func writeRouterError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
