package shard

import (
	"context"
	"fmt"
	"net"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/serve"
)

// ClusterConfig tunes NewCluster.
type ClusterConfig struct {
	// Replicas is the fleet size (≥ 1). Replica 0 is the primary.
	Replicas int
	// Serve configures every replica's serving stack. Audit and Online
	// apply to the primary only: promotions are audited once at the
	// primary and replicas trust replication (a replica-side audit gate
	// could veto an already-promoted model and wedge the version
	// vector), and learning feeds the primary registry whose swaps the
	// syncer fans out.
	Serve serve.Config
	// Router tunes the fronting router (Strategy, health cadence).
	// Primary and Syncer are set by the cluster.
	Router RouterConfig
	// SyncInterval is the replication poll cadence (default 100ms);
	// promotions through the router also kick an immediate round.
	SyncInterval time.Duration
}

// Cluster is the in-process scale-out unit: N serve.Servers on
// loopback ports (real HTTP between every hop, so traffic is shaped
// exactly as the cross-process deployment), one Syncer replicating the
// primary's promotions, and one Router fronting the fleet. monoserve
// -replicas and loadgen's multi-replica rows are Clusters; the
// separate-process deployment wires the same Router+Syncer through
// cmd/monoshard instead.
type Cluster struct {
	servers []*serve.Server
	addrs   []string
	router  *Router
	syncer  *Syncer
}

// NewCluster starts replicas serving initial (all at local version 1,
// so the version vector begins seeded) plus the syncer and router.
// The router is not yet listening: use Handler, or Start for a
// managed listener. Call Close to tear everything down.
func NewCluster(initial *classifier.AnchorSet, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("shard: cluster needs ≥ 1 replica, got %d", cfg.Replicas)
	}
	c := &Cluster{}
	for i := 0; i < cfg.Replicas; i++ {
		scfg := cfg.Serve
		if i != 0 {
			scfg.Audit = nil
			scfg.Online = nil
		}
		srv, err := serve.NewServer(initial, scfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			srv.Close()
			c.Close()
			return nil, err
		}
		c.addrs = append(c.addrs, "http://"+addr.String())
	}
	c.syncer = NewSyncer(c.addrs[0], c.addrs[1:], SyncConfig{
		Interval:    cfg.SyncInterval,
		SeedVersion: 1, // every replica just started from initial
	})
	rcfg := cfg.Router
	rcfg.Primary = 0
	rcfg.Syncer = c.syncer
	router, err := NewRouter(c.addrs, rcfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router = router
	c.syncer.Start()
	return c, nil
}

// Router returns the fronting router.
func (c *Cluster) Router() *Router { return c.router }

// Syncer returns the replication loop.
func (c *Cluster) Syncer() *Syncer { return c.syncer }

// Primary returns the primary replica's server (registry access for
// CLIs and tests).
func (c *Cluster) Primary() *serve.Server { return c.servers[0] }

// Servers returns every replica server, primary first.
func (c *Cluster) Servers() []*serve.Server { return c.servers }

// Addrs returns every replica's base URL, primary first.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Start makes the router listen on addr (the fleet's public face).
func (c *Cluster) Start(addr string) (net.Addr, error) {
	bound, err := c.router.Start(addr)
	if err != nil {
		return nil, err
	}
	return bound, nil
}

// Close tears the cluster down: router first (no new traffic), then
// the syncer, then every replica (each drains its own queues).
func (c *Cluster) Close() error {
	var first error
	if c.router != nil {
		if err := c.router.Close(); err != nil && first == nil {
			first = err
		}
	}
	if c.syncer != nil {
		c.syncer.Stop()
	}
	for _, srv := range c.servers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Shutdown is Close bounded by ctx for the router drain.
func (c *Cluster) Shutdown(ctx context.Context) error {
	var first error
	if c.router != nil {
		if err := c.router.Shutdown(ctx); err != nil {
			first = err
		}
	}
	if c.syncer != nil {
		c.syncer.Stop()
	}
	for _, srv := range c.servers {
		if err := srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
