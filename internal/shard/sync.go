package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// SyncConfig tunes a Syncer. The zero value polls every 100ms with a
// 5s per-request timeout.
type SyncConfig struct {
	// Interval is the poll cadence; Kick forces an immediate round
	// (the router kicks after every successful promotion, making the
	// loop push-on-promote with poll as the catch-up path).
	Interval time.Duration
	// Client overrides the HTTP client (tests inject short timeouts).
	Client *http.Client
	// SeedVersion, when > 0, declares that every replica already
	// serves the primary's model of that version as its local version
	// 1 — the in-process Cluster starts all replicas from the same
	// initial model, so their vectors begin acknowledged. With
	// SeedVersion 0 the replicas' own initial models are unknown to
	// the vector (local version 1 unmapped) and the first sync round
	// pushes the primary's current model unconditionally.
	SeedVersion int64
	// OnError receives per-replica sync failures (nil: dropped).
	// Failures are retried on the next round, never fatal.
	OnError func(endpoint string, err error)
}

// ReplicaSync is one replica's entry in the version vector.
type ReplicaSync struct {
	// Endpoint is the replica's base URL.
	Endpoint string `json:"endpoint"`
	// Acked is the highest primary version the replica has
	// acknowledged (0: nothing replicated yet).
	Acked int64 `json:"acked"`
	// Local maps the replica's registry-assigned versions to the
	// primary versions they carry. Replica registries number their own
	// promotions independently (a replica that missed intermediate
	// versions during an outage re-converges with fewer local swaps),
	// so the mapping — not the raw local counter — is what gives a
	// served version process-global meaning.
	Local map[int64]int64 `json:"local"`
}

// Syncer replicates promoted models from a primary to N replicas over
// the existing JSON /model GET/POST endpoints: each round polls the
// primary once (GET /model, version from the X-Model-Version header)
// and pushes the body to every replica that has not yet acknowledged
// that version. Pushes to one replica are serialized and strictly
// monotone in primary version, which is the version-vector agreement
// the storm test leans on: once a replica acknowledges primary
// version P, it is never again observed serving a version older than
// P, because its registry only ever swaps forward and the syncer never
// re-pushes an older snapshot.
type Syncer struct {
	primary  string
	replicas []string
	interval time.Duration
	client   *http.Client
	onError  func(string, error)

	mu    sync.Mutex
	acked map[string]int64
	local map[string]map[int64]int64
	// per-replica push serialization, so a delayed push cannot be
	// overtaken by a newer one and regress the replica's version.
	pushMu map[string]*sync.Mutex

	rounds  int64
	pushes  int64
	failures int64

	startOnce sync.Once
	stopOnce  sync.Once
	kick      chan struct{}
	stop      chan struct{}
	done      chan struct{}
}

// NewSyncer builds a syncer from the primary's base URL to the given
// replica base URLs (the primary must not be in the list — it serves
// its own registry).
func NewSyncer(primary string, replicas []string, cfg SyncConfig) *Syncer {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Client == nil {
		// Dedicated transport: Stop closes its idle connections, which
		// must not disturb other http.DefaultTransport users.
		cfg.Client = &http.Client{
			Timeout:   5 * time.Second,
			Transport: http.DefaultTransport.(*http.Transport).Clone(),
		}
	}
	s := &Syncer{
		primary:  primary,
		replicas: append([]string(nil), replicas...),
		interval: cfg.Interval,
		client:   cfg.Client,
		onError:  cfg.OnError,
		acked:    make(map[string]int64, len(replicas)),
		local:    make(map[string]map[int64]int64, len(replicas)),
		pushMu:   make(map[string]*sync.Mutex, len(replicas)),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, r := range s.replicas {
		s.pushMu[r] = &sync.Mutex{}
		s.local[r] = make(map[int64]int64)
		if cfg.SeedVersion > 0 {
			s.acked[r] = cfg.SeedVersion
			s.local[r][1] = cfg.SeedVersion
		}
	}
	return s
}

// Start launches the background poll/push loop. Stop must be called to
// release it.
func (s *Syncer) Start() {
	s.startOnce.Do(func() {
		go s.loop()
	})
}

// Stop terminates the loop and waits for it to exit. Safe to call
// multiple times, and safe when Start was never called.
func (s *Syncer) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
	// Release outbound keep-alive connections (including never-used
	// spares from the transport's dial race, which would otherwise hold
	// replica-side StateNew connections open through their shutdown).
	s.client.CloseIdleConnections()
}

// Kick requests an immediate sync round (coalesced if one is already
// pending). Called by the router after each successful promotion so
// replication is push-shaped in the common case.
func (s *Syncer) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Syncer) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		case <-s.kick:
		}
		budget := s.client.Timeout + time.Second
		if s.client.Timeout <= 0 {
			budget = 15 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		s.SyncOnce(ctx)
		cancel()
	}
}

// SyncOnce runs one poll/push round: fetch the primary's current
// model, push it to every replica that is behind, record
// acknowledgements. Per-replica failures go to OnError and the next
// round retries; the returned error is the primary-poll failure, if
// any (nothing can proceed without it).
func (s *Syncer) SyncOnce(ctx context.Context) error {
	ver, body, err := s.fetchPrimary(ctx)
	if err != nil {
		s.reportError(s.primary, err)
		return err
	}
	s.mu.Lock()
	s.rounds++
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, r := range s.replicas {
		if s.Acked(r) >= ver {
			continue
		}
		wg.Add(1)
		go func(r string) {
			defer wg.Done()
			if err := s.pushTo(ctx, r, ver, body); err != nil {
				s.reportError(r, err)
			}
		}(r)
	}
	wg.Wait()
	return nil
}

// fetchPrimary GETs the primary's current model and its version.
func (s *Syncer) fetchPrimary(ctx context.Context) (int64, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.primary+"/model", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("poll primary: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, nil, fmt.Errorf("poll primary: status %d", resp.StatusCode)
	}
	ver, err := strconv.ParseInt(resp.Header.Get("X-Model-Version"), 10, 64)
	if err != nil || ver < 1 {
		return 0, nil, fmt.Errorf("poll primary: bad X-Model-Version %q", resp.Header.Get("X-Model-Version"))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("poll primary: %w", err)
	}
	return ver, body, nil
}

// pushTo replicates one primary snapshot to one replica. The
// per-replica mutex plus the re-check of acked under it guarantee
// pushes are strictly increasing in primary version per replica.
func (s *Syncer) pushTo(ctx context.Context, replica string, ver int64, body []byte) error {
	mu := s.pushMu[replica]
	mu.Lock()
	defer mu.Unlock()
	if s.Acked(replica) >= ver {
		return nil // a concurrent round already caught this replica up
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/model", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		s.countFailure()
		return fmt.Errorf("push model v%d: %w", ver, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.countFailure()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("push model v%d: status %d: %s", ver, resp.StatusCode, bytes.TrimSpace(data))
	}
	var swap struct {
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&swap); err != nil || swap.Version < 1 {
		s.countFailure()
		return fmt.Errorf("push model v%d: bad swap response (%v)", ver, err)
	}
	s.mu.Lock()
	s.local[replica][swap.Version] = ver
	s.acked[replica] = ver
	s.pushes++
	s.mu.Unlock()
	return nil
}

func (s *Syncer) countFailure() {
	s.mu.Lock()
	s.failures++
	s.mu.Unlock()
}

func (s *Syncer) reportError(endpoint string, err error) {
	if s.onError != nil {
		s.onError(endpoint, err)
	}
}

// Acked returns the highest primary version the replica has
// acknowledged (0 for unknown endpoints or nothing replicated).
func (s *Syncer) Acked(endpoint string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked[endpoint]
}

// Resolve maps a replica's registry-local version to the primary
// version it carries. ok is false when the local version is unknown —
// either it predates replication (unseeded initial model) or the
// replica was swapped outside the syncer, both of which the storm
// test treats as protocol violations.
func (s *Syncer) Resolve(endpoint string, local int64) (primary int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, found := s.local[endpoint]
	if !found {
		return 0, false
	}
	primary, ok = m[local]
	return primary, ok
}

// Vector snapshots the whole version vector, for /stats and tests.
func (s *Syncer) Vector() []ReplicaSync {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReplicaSync, 0, len(s.replicas))
	for _, r := range s.replicas {
		local := make(map[int64]int64, len(s.local[r]))
		for k, v := range s.local[r] {
			local[k] = v
		}
		out = append(out, ReplicaSync{Endpoint: r, Acked: s.acked[r], Local: local})
	}
	return out
}

// Stats reports the syncer's lifetime counters.
func (s *Syncer) Stats() (rounds, pushes, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds, s.pushes, s.failures
}
