package shard

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/serve"
	"monoclass/internal/testutil"
)

// thresholdModel is the 1-D threshold-at-tau classifier used across
// the serve and shard test suites: version-v models carry tau = v, so
// a label is checkable from the version alone.
func thresholdModel(t testing.TB, tau float64) *classifier.AnchorSet {
	t.Helper()
	h, err := classifier.NewAnchorSet(1, []geom.Point{{tau}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// testFleet spins n replica servers behind httptest and returns their
// base URLs plus a cleanup-registered teardown.
func testFleet(t *testing.T, n int, model *classifier.AnchorSet, cfg serve.Config) ([]string, []*serve.Server) {
	t.Helper()
	var urls []string
	var srvs []*serve.Server
	for i := 0; i < n; i++ {
		srv, err := serve.NewServer(model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(func() { srv.Close() })
		srvs = append(srvs, srv)
		urls = append(urls, hs.URL)
	}
	return urls, srvs
}

func TestRingOrderCoversAllReplicas(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		ring, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]int, 0, n)
		for trial := 0; trial < 50; trial++ {
			pt := geom.Point{float64(trial), float64(trial % 7)}
			order := ring.Order(buf, pt)
			if len(order) != n {
				t.Fatalf("n=%d: order has %d entries", n, len(order))
			}
			seen := make(map[int]bool, n)
			for _, idx := range order {
				if idx < 0 || idx >= n || seen[idx] {
					t.Fatalf("n=%d: bad order %v", n, order)
				}
				seen[idx] = true
			}
			// Deterministic: same point, same order.
			again := ring.Order(make([]int, 0, n), pt)
			for i := range order {
				if order[i] != again[i] {
					t.Fatalf("n=%d: order not deterministic: %v vs %v", n, order, again)
				}
			}
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	const n = 4
	ring, err := NewRing(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	buf := make([]int, 0, n)
	const trials = 4000
	for i := 0; i < trials; i++ {
		pt := geom.Point{float64(i) * 0.37, float64(i%13) - 6}
		counts[ring.Order(buf, pt)[0]]++
	}
	for i, c := range counts {
		if c < trials/n/4 {
			t.Errorf("replica %d got %d of %d first-choice placements (starved)", i, c, trials)
		}
	}
	t.Logf("first-choice spread: %v", counts)
}

func TestRingStability(t *testing.T) {
	// Growing the fleet by one must not move keys between the
	// surviving replicas' positions: a key keeps its old first choice
	// unless the new replica took it.
	r3, _ := NewRing(3, 0)
	r4, _ := NewRing(4, 0)
	moved, kept := 0, 0
	buf := make([]int, 0, 4)
	for i := 0; i < 2000; i++ {
		pt := geom.Point{float64(i), float64(i % 17)}
		was := r3.Order(buf, pt)[0]
		now := r4.Order(make([]int, 0, 4), pt)[0]
		switch {
		case now == was:
			kept++
		case now == 3:
			moved++ // claimed by the new replica — expected for ~1/4
		default:
			t.Fatalf("key %d moved between surviving replicas: %d → %d", i, was, now)
		}
	}
	if moved == 0 || moved > kept {
		t.Errorf("ring stability off: %d moved to the new replica, %d kept", moved, kept)
	}
}

func TestDimPartitionOrder(t *testing.T) {
	d, err := NewDimPartition(0, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Replicas() != 3 {
		t.Fatalf("Replicas() = %d, want 3", d.Replicas())
	}
	buf := make([]int, 0, 3)
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 1}, {10, 1}, {10.5, 2}, {1e308, 2},
		{math.Inf(-1), 0}, {math.Inf(1), 2}, {math.NaN(), 0},
	}
	for _, c := range cases {
		got := d.Order(buf, geom.Point{c.v})
		if got[0] != c.want {
			t.Errorf("Order(%g) primary = %d, want %d (order %v)", c.v, got[0], c.want, got)
		}
		seen := map[int]bool{}
		for _, idx := range got {
			seen[idx] = true
		}
		if len(got) != 3 || len(seen) != 3 {
			t.Errorf("Order(%g) = %v does not cover all buckets", c.v, got)
		}
	}
	if _, err := NewDimPartition(0, []float64{3, 1}); err == nil {
		t.Error("unsorted bounds accepted")
	}
	if _, err := NewDimPartition(0, []float64{math.NaN()}); err == nil {
		t.Error("NaN bound accepted")
	}
}

func TestDimBoundsFromSample(t *testing.T) {
	var sample []geom.Point
	for i := 0; i < 100; i++ {
		sample = append(sample, geom.Point{float64(i)})
	}
	sample = append(sample, geom.Point{math.NaN()}, geom.Point{math.Inf(1)})
	bounds := DimBoundsFromSample(sample, 0, 4)
	if len(bounds) != 3 {
		t.Fatalf("got %d bounds, want 3", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] > bounds[i] {
			t.Fatalf("bounds unsorted: %v", bounds)
		}
	}
	d, err := NewDimPartition(0, bounds)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	buf := make([]int, 0, 4)
	for _, p := range sample[:100] {
		counts[d.Order(buf, p)[0]]++
	}
	for b, c := range counts {
		if c < 10 {
			t.Errorf("bucket %d got %d of 100 sample points (quantiles off: %v)", b, c, bounds)
		}
	}
}

// TestRouterAggregateStatsExact drives a known number of points
// through the router and asserts the aggregate /stats totals are
// exact: requests across replicas sum to the points sent, every
// replica's snapshot is internally consistent (Σhist == batches), and
// the router's routed counters sum to the HTTP calls made. This is
// the cross-replica payoff of the serve.Stats consistency fix.
func TestRouterAggregateStatsExact(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, _ := testFleet(t, 3, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 8, MaxWait: -1, QueueCap: 1024, Workers: 2},
	})
	router, err := NewRouter(urls, RouterConfig{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rs := httptest.NewServer(router.Handler())
	defer rs.Close()

	const (
		singles   = 120
		batches   = 30
		batchSize = 16
	)
	client := rs.Client()
	for i := 0; i < singles; i++ {
		resp, err := client.Post(rs.URL+"/classify", "application/json",
			strings.NewReader(fmt.Sprintf(`{"point":[%g]}`, float64(i)+0.5)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("classify %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < batches; i++ {
		var pts []string
		for j := 0; j < batchSize; j++ {
			pts = append(pts, fmt.Sprintf("[%g]", float64(i*batchSize+j)+0.25))
		}
		resp, err := client.Post(rs.URL+"/classify/batch", "application/json",
			strings.NewReader(`{"points":[`+strings.Join(pts, ",")+`]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
	}

	var agg AggregateStats
	if code := getJSON(t, rs.URL+"/stats", &agg); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	wantPoints := int64(singles + batches*batchSize)
	if agg.Totals.Requests != wantPoints {
		t.Errorf("aggregate requests = %d, want exactly %d", agg.Totals.Requests, wantPoints)
	}
	if agg.Totals.BatchPoints != wantPoints {
		t.Errorf("aggregate batch_points = %d, want exactly %d", agg.Totals.BatchPoints, wantPoints)
	}
	if agg.Totals.Rejected != 0 || agg.Totals.BadRequests != 0 {
		t.Errorf("unexpected rejects/bad: %+v", agg.Totals)
	}
	var routedSum, perReplica int64
	for i, row := range agg.Replicas {
		if row.Stats == nil {
			t.Fatalf("replica %d: no stats (%s)", i, row.Error)
		}
		var histSum int64
		for _, n := range row.Stats.BatchSizeHist {
			histSum += n
		}
		if histSum != row.Stats.Batches {
			t.Errorf("replica %d: Σhist = %d, batches = %d", i, histSum, row.Stats.Batches)
		}
		perReplica += row.Stats.Requests
		routedSum += row.Routed
	}
	if perReplica != wantPoints {
		t.Errorf("per-replica requests sum to %d, want %d", perReplica, wantPoints)
	}
	if wantCalls := int64(singles + batches); routedSum != wantCalls {
		t.Errorf("routed counters sum to %d, want %d HTTP calls", routedSum, wantCalls)
	}
	if agg.Router.Retries != 0 || agg.Router.Failed != 0 {
		t.Errorf("healthy fleet saw retries=%d failed=%d", agg.Router.Retries, agg.Router.Failed)
	}
}

// TestRouterPassThrough checks the proxied error surface matches
// direct serving: bad bodies 400, oversized batches 413, wrong
// dimension 400 — and a valid model promotion through the router
// reaches the primary.
func TestRouterPassThrough(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, srvs := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch:          serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
		MaxClientBatch: 8,
	})
	router, err := NewRouter(urls, RouterConfig{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	rs := httptest.NewServer(router.Handler())
	defer rs.Close()
	client := rs.Client()

	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/classify", `{`, 400},
		{"/classify", `{"point":[1,2]}`, 400}, // dim mismatch
		{"/classify", `{"point":[5.5]}`, 200},
		{"/classify/batch", `{"points":[[1],[2],[3],[4],[5],[6],[7],[8],[9]]}`, 413},
		{"/classify/batch", `{"points":[[1],[2]]}`, 200},
	} {
		resp, err := client.Post(rs.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s %q: status %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
		}
	}

	// Promotion through the router lands on the primary, not replica 1.
	var buf strings.Builder
	if err := classifier.WriteModel(&buf, thresholdModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(rs.URL+"/model", "application/json", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if v := srvs[0].Registry().Version(); v != 2 {
		t.Errorf("primary version %d after promotion, want 2", v)
	}
	if v := srvs[1].Registry().Version(); v != 1 {
		t.Errorf("replica version %d, want 1 (no syncer attached)", v)
	}

	// GET /model proxies the primary's body and version header.
	mresp, err := client.Get(rs.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if got := mresp.Header.Get("X-Model-Version"); got != "2" {
		t.Errorf("GET /model X-Model-Version = %q, want 2", got)
	}
	if _, err := classifier.ReadModel(mresp.Body); err != nil {
		t.Errorf("GET /model body does not round-trip: %v", err)
	}
}

// TestRouterHealthzAggregate exercises the fleet-health endpoint
// degrading and recovering as replicas come and go.
func TestRouterHealthzAggregate(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, _ := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	// Third endpoint points nowhere: unhealthy after the first poll.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	router, err := NewRouter(append(urls, deadURL), RouterConfig{HealthInterval: -1, Client: fastClient()})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	router.CheckHealth()
	rs := httptest.NewServer(router.Handler())
	defer rs.Close()

	var hz struct {
		Status   string          `json:"status"`
		Healthy  int             `json:"healthy"`
		Replicas []ReplicaHealth `json:"replicas"`
	}
	if code := getJSON(t, rs.URL+"/healthz", &hz); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if hz.Status != "degraded" || hz.Healthy != 2 {
		t.Errorf("healthz = %+v, want degraded with 2 healthy", hz)
	}
	if len(hz.Replicas) != 3 || hz.Replicas[2].Healthy {
		t.Errorf("replica rows wrong: %+v", hz.Replicas)
	}
	if !hz.Replicas[0].Primary || hz.Replicas[0].Version != 1 {
		t.Errorf("primary row wrong: %+v", hz.Replicas[0])
	}
}
