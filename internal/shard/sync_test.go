package shard

// Fault-injection coverage for the replication loop and the router's
// health machinery: flaky replicas that 503, delay, or drop /model
// pushes must re-converge once the fault clears, and the router must
// route around an unhealthy replica without failing in-flight
// requests.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/serve"
	"monoclass/internal/testutil"
)

// faultProxy fronts one replica and injects faults on demand: refuse
// (503 everything), failPosts (503 the next N POST /model pushes),
// delay (sleep before forwarding). The zero state forwards verbatim.
type faultProxy struct {
	backend string
	client  *http.Client

	refuse    atomic.Bool
	failPosts atomic.Int64
	delayNs   atomic.Int64
}

func newFaultProxy(t *testing.T, backend string) (*faultProxy, string) {
	t.Helper()
	p := &faultProxy{backend: backend, client: &http.Client{Timeout: 5 * time.Second}}
	hs := httptest.NewServer(p)
	t.Cleanup(hs.Close)
	return p, hs.URL
}

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if p.refuse.Load() {
		http.Error(w, "injected outage", http.StatusServiceUnavailable)
		return
	}
	if req.Method == http.MethodPost && req.URL.Path == "/model" {
		if n := p.failPosts.Load(); n > 0 && p.failPosts.CompareAndSwap(n, n-1) {
			http.Error(w, "injected push failure", http.StatusServiceUnavailable)
			return
		}
	}
	if d := p.delayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	freq, err := http.NewRequestWithContext(req.Context(), req.Method, p.backend+req.URL.Path, bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	freq.Header = req.Header.Clone()
	resp, err := p.client.Do(freq)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
}

// promote swaps a new threshold model directly on the primary and
// returns the new primary version.
func promote(t *testing.T, primary *serve.Server, tau float64) int64 {
	t.Helper()
	ver, err := primary.Registry().Swap(thresholdModel(t, tau))
	if err != nil {
		t.Fatalf("promote tau=%g: %v", tau, err)
	}
	return ver
}

// TestSyncerReconvergesThroughPushFailures drops the first pushes to a
// flaky replica (503) and asserts the loop retries until the replica
// acknowledges, counting the failures.
func TestSyncerReconvergesThroughPushFailures(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, srvs := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	proxy, proxyURL := newFaultProxy(t, urls[1])
	proxy.failPosts.Store(3)

	var syncErrs atomic.Int64
	syncer := NewSyncer(urls[0], []string{proxyURL}, SyncConfig{
		Interval:    2 * time.Millisecond,
		SeedVersion: 1,
		Client:      fastClient(),
		OnError:     func(string, error) { syncErrs.Add(1) },
	})
	syncer.Start()
	defer syncer.Stop()

	want := promote(t, srvs[0], 2)
	waitConverged(t, syncer, []string{proxyURL}, want, 10*time.Second)

	if _, _, failures := syncer.Stats(); failures != 3 {
		t.Errorf("failure counter = %d, want exactly the 3 injected", failures)
	}
	if syncErrs.Load() != 3 {
		t.Errorf("OnError fired %d times, want 3", syncErrs.Load())
	}
	// The replica really serves the new model, mapped in the vector.
	var hz struct {
		Version int64 `json:"version"`
	}
	if code := getJSON(t, urls[1]+"/healthz", &hz); code != 200 {
		t.Fatalf("replica healthz status %d", code)
	}
	if p, ok := syncer.Resolve(proxyURL, hz.Version); !ok || p != want {
		t.Errorf("replica local version %d resolves to (%d,%v), want (%d,true)", hz.Version, p, ok, want)
	}
}

// TestSyncerReconvergesAfterOutage takes the replica fully offline
// across several promotions, then restores it: the replica must catch
// up to the latest version with a single push (snapshot replication,
// not a version-by-version replay).
func TestSyncerReconvergesAfterOutage(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, srvs := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	proxy, proxyURL := newFaultProxy(t, urls[1])
	syncer := NewSyncer(urls[0], []string{proxyURL}, SyncConfig{
		Interval:    2 * time.Millisecond,
		SeedVersion: 1,
		Client:      fastClient(),
	})
	syncer.Start()
	defer syncer.Stop()

	proxy.refuse.Store(true)
	var want int64
	for tau := 2; tau <= 5; tau++ {
		want = promote(t, srvs[0], float64(tau))
	}
	// Give the loop a few rounds against the dead replica.
	time.Sleep(20 * time.Millisecond)
	if got := syncer.Acked(proxyURL); got != 1 {
		t.Fatalf("replica acked %d during outage, want 1", got)
	}
	proxy.refuse.Store(false)
	waitConverged(t, syncer, []string{proxyURL}, want, 10*time.Second)

	// Snapshot semantics: the replica's registry moved forward once for
	// the catch-up (seed local 1 → catch-up local 2), skipping the
	// intermediate versions it never saw.
	if v := srvs[1].Registry().Version(); v != 2 {
		t.Errorf("replica local version %d after catch-up, want 2 (one push, not a replay)", v)
	}
	if p, ok := syncer.Resolve(proxyURL, 2); !ok || p != want {
		t.Errorf("local version 2 resolves to (%d,%v), want (%d,true)", p, ok, want)
	}
}

// TestSyncerDelayedPushStaysMonotone injects a long delay into one
// push while newer promotions land: per-replica serialization means
// the slow push completes first and the newer version follows, so the
// replica's acked version never regresses.
func TestSyncerDelayedPushStaysMonotone(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, srvs := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	proxy, proxyURL := newFaultProxy(t, urls[1])
	proxy.delayNs.Store(int64(10 * time.Millisecond))
	syncer := NewSyncer(urls[0], []string{proxyURL}, SyncConfig{
		Interval:    time.Millisecond,
		SeedVersion: 1,
		Client:      fastClient(),
	})
	syncer.Start()
	defer syncer.Stop()

	// Sample acked continuously while promotions race the delayed pushes.
	stop := make(chan struct{})
	var monoWG sync.WaitGroup
	var regressions atomic.Int64
	monoWG.Add(1)
	go func() {
		defer monoWG.Done()
		last := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := syncer.Acked(proxyURL)
			if a < last {
				regressions.Add(1)
			}
			last = a
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var want int64
	for tau := 2; tau <= 8; tau++ {
		want = promote(t, srvs[0], float64(tau))
		time.Sleep(3 * time.Millisecond)
	}
	waitConverged(t, syncer, []string{proxyURL}, want, 10*time.Second)
	close(stop)
	monoWG.Wait()
	if n := regressions.Load(); n != 0 {
		t.Errorf("acked version regressed %d times under delayed pushes", n)
	}
}

// TestRouterRoutesAroundOutage drives classify load while one replica
// goes down mid-flight: no request may fail (the router retries onto
// the surviving replicas), health polls must mark the replica down and
// back up, and traffic must return after recovery.
func TestRouterRoutesAroundOutage(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, _ := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 8, MaxWait: -1, QueueCap: 1024},
	})
	proxy, proxyURL := newFaultProxy(t, urls[1])
	router, err := NewRouter([]string{urls[0], proxyURL}, RouterConfig{
		HealthInterval: -1, // test drives CheckHealth explicitly
		Client:         fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()
	client := hs.Client()

	classifyOK := func(phase string, lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			resp, err := client.Post(hs.URL+"/classify", "application/json",
				strings.NewReader(fmt.Sprintf(`{"point":[%g]}`, float64(i)+0.5)))
			if err != nil {
				t.Fatalf("%s: classify %d: %v", phase, i, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("%s: classify %d: status %d", phase, i, resp.StatusCode)
			}
		}
	}

	classifyOK("healthy fleet", 0, 40)
	if !router.Healthy(1) {
		t.Fatal("replica 1 marked unhealthy before the outage")
	}

	// Outage: replica 1 refuses everything. In-flight and subsequent
	// requests must still all succeed via replica 0.
	proxy.refuse.Store(true)
	classifyOK("during outage", 40, 80)
	router.CheckHealth()
	if router.Healthy(1) {
		t.Error("health poll did not mark the refusing replica down")
	}
	classifyOK("marked down", 80, 120)

	// Recovery: poll flips it back and it serves again.
	proxy.refuse.Store(false)
	router.CheckHealth()
	if !router.Healthy(1) {
		t.Error("health poll did not mark the recovered replica up")
	}
	before := router.AggregateStats(context.Background()).Router.Routed[1]
	classifyOK("recovered", 120, 200)
	agg := router.AggregateStats(context.Background())
	if agg.Router.Routed[1] <= before {
		t.Error("recovered replica received no traffic")
	}
	if agg.Router.Failed != 0 {
		t.Errorf("router failed %d requests across the outage, want 0", agg.Router.Failed)
	}
	if agg.Router.Retries == 0 {
		t.Error("router recorded no retries despite the outage")
	}
	if agg.Router.HealthDns != 1 || agg.Router.HealthUps != 1 {
		t.Errorf("health transitions ups=%d downs=%d, want 1/1", agg.Router.HealthUps, agg.Router.HealthDns)
	}
	if agg.Totals.Requests != 200 {
		t.Errorf("aggregate requests = %d, want exactly 200 (every request served once)", agg.Totals.Requests)
	}
}

// TestRouterPrimaryDownFailsControlPlane: with the primary offline the
// data plane survives on replicas but promotions fail loudly — the
// control plane never silently reroutes to a non-primary.
func TestRouterPrimaryDownFailsControlPlane(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, _ := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	proxy, proxyURL := newFaultProxy(t, urls[0])
	router, err := NewRouter([]string{proxyURL, urls[1]}, RouterConfig{
		HealthInterval: -1,
		Client:         fastClient(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()
	client := hs.Client()

	proxy.refuse.Store(true)
	// Data plane: still fine.
	resp, err := client.Post(hs.URL+"/classify", "application/json", strings.NewReader(`{"point":[0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("classify with primary down: status %d", resp.StatusCode)
	}
	// Control plane: promotion must fail, not land elsewhere.
	var buf strings.Builder
	if err := classifier.WriteModel(&buf, thresholdModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	presp, err := client.Post(hs.URL+"/model", "application/json", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusServiceUnavailable && presp.StatusCode != http.StatusBadGateway {
		t.Fatalf("promotion with primary down: status %d, want 502/503", presp.StatusCode)
	}
}

// TestSyncerUnseeded covers SeedVersion 0: the first round pushes
// unconditionally and the replica's pre-replication local version 1
// stays unmapped (Resolve reports it as unknown).
func TestSyncerUnseeded(t *testing.T) {
	testutil.CheckGoroutines(t)
	urls, _ := testFleet(t, 2, thresholdModel(t, 1), serve.Config{
		Batch: serve.BatcherConfig{MaxBatch: 4, MaxWait: -1, QueueCap: 64},
	})
	syncer := NewSyncer(urls[0], []string{urls[1]}, SyncConfig{Client: fastClient()})
	if err := syncer.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer syncer.Stop()
	if got := syncer.Acked(urls[1]); got != 1 {
		t.Fatalf("acked = %d after unseeded round, want 1", got)
	}
	if _, ok := syncer.Resolve(urls[1], 1); ok {
		t.Error("pre-replication local version 1 resolved, want unmapped")
	}
	if p, ok := syncer.Resolve(urls[1], 2); !ok || p != 1 {
		t.Errorf("pushed local version 2 resolves to (%d,%v), want (1,true)", p, ok)
	}
	vec := syncer.Vector()
	if len(vec) != 1 || vec[0].Acked != 1 || vec[0].Local[2] != 1 {
		b, _ := json.Marshal(vec)
		t.Errorf("vector = %s, want one entry acked 1 with local 2→1", b)
	}
}
