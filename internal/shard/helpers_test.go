package shard

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// getJSON GETs url and decodes the JSON body into out, returning the
// status code (mirrors the serve test suite's helper).
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// fastClient is an HTTP client with a short timeout, so tests probing
// dead endpoints fail fast instead of waiting out the default.
func fastClient() *http.Client {
	return &http.Client{Timeout: 2 * time.Second}
}
