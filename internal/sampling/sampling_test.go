package sampling

import (
	"math"
	"math/rand"
	"testing"
)

func TestLemma5SampleSizeFormula(t *testing.T) {
	// phi = 1/2, delta = 1/2, mu = 1: t = ceil(max(4, 2) * 3 ln 4) = ceil(12 ln 4).
	want := int(math.Ceil(12 * math.Log(4)))
	if got := Lemma5SampleSize(0.5, 0.5, 1); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
	// Tighter muUpper shrinks the bound until the 1/phi term dominates.
	small := Lemma5SampleSize(0.5, 0.5, 0.1) // max(0.4, 2) = 2 -> ceil(6 ln 4)
	if want := int(math.Ceil(6 * math.Log(4))); small != want {
		t.Errorf("muUpper bound: got %d, want %d", small, want)
	}
	if Lemma5SampleSize(1, 1, 1) < 1 {
		t.Error("sample size must be at least 1")
	}
	// Out-of-range muUpper falls back to the worst case.
	if Lemma5SampleSize(0.5, 0.5, 2) != Lemma5SampleSize(0.5, 0.5, 1) {
		t.Error("muUpper > 1 should clamp to 1")
	}
}

func TestSampleSizeConstantScaling(t *testing.T) {
	a := SampleSize(0.1, 0.1, 1, 3)
	b := SampleSize(0.1, 0.1, 1, 1)
	if a != Lemma5SampleSize(0.1, 0.1, 1) {
		t.Error("SampleSize with c=3 must match Lemma5SampleSize")
	}
	if b >= a {
		t.Error("smaller constant must shrink the sample size")
	}
}

func TestSampleSizePanics(t *testing.T) {
	cases := []func(){
		func() { Lemma5SampleSize(0, 0.5, 1) },
		func() { Lemma5SampleSize(0.5, 0, 1) },
		func() { Lemma5SampleSize(1.5, 0.5, 1) },
		func() { SampleSize(0.5, 0.5, 1, 0) },
		func() { WithReplacement(rand.New(rand.NewSource(1)), 0, 1) },
		func() { WithReplacement(rand.New(rand.NewSource(1)), 5, -1) },
		func() { WithoutReplacement(rand.New(rand.NewSource(1)), 0, 1) },
		func() { WithoutReplacement(rand.New(rand.NewSource(1)), 3, -1) },
		func() { EstimateCount(1, 0, 10) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWithReplacementRangeAndDeterminism(t *testing.T) {
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	a := WithReplacement(r1, 10, 1000)
	b := WithReplacement(r2, 10, 1000)
	for i := range a {
		if a[i] < 0 || a[i] >= 10 {
			t.Fatalf("index %d out of range", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed must give same sample")
		}
	}
	if len(WithReplacement(r1, 5, 0)) != 0 {
		t.Error("t=0 should give empty sample")
	}
}

func TestWithReplacementIsUniformish(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, trials := 8, 80000
	counts := make([]int, n)
	for _, i := range WithReplacement(rng, n, trials) {
		counts[i]++
	}
	want := float64(trials) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %g", i, c, want)
		}
	}
}

func TestWithoutReplacementDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := WithoutReplacement(rng, 20, 12)
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 20 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	if len(got) != 12 {
		t.Fatalf("len = %d, want 12", len(got))
	}
	all := WithoutReplacement(rng, 5, 50)
	if len(all) != 5 {
		t.Error("t > n should clamp to n")
	}
}

// Empirical check of Lemma 5 itself: with t = Lemma5SampleSize(phi,
// delta), the empirical mean should be within phi of mu in well over a
// 1-delta fraction of repetitions.
func TestLemma5EmpiricalCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		mu    = 0.3
		phi   = 0.05
		delta = 0.1
		reps  = 300
	)
	size := Lemma5SampleSize(phi, delta, 1)
	bad := 0
	for r := 0; r < reps; r++ {
		hits := 0
		for i := 0; i < size; i++ {
			if rng.Float64() < mu {
				hits++
			}
		}
		if math.Abs(float64(hits)/float64(size)-mu) >= phi {
			bad++
		}
	}
	if frac := float64(bad) / reps; frac > delta {
		t.Errorf("deviation fraction %g exceeds delta %g", frac, delta)
	}
}

func TestEstimateCount(t *testing.T) {
	if got := EstimateCount(25, 100, 1000); got != 250 {
		t.Errorf("EstimateCount = %g, want 250", got)
	}
}

func TestSampleSizeEdgeCases(t *testing.T) {
	// Overflow clamp: microscopic phi with huge log factor.
	if got := SampleSize(1e-9, 1e-9, 1, 3); got != math.MaxInt32 {
		t.Errorf("overflowing sample size should clamp to MaxInt32, got %d", got)
	}
	if got := Lemma5SampleSize(1e-9, 1e-9, 1); got != math.MaxInt32 {
		t.Errorf("overflowing Lemma5 size should clamp, got %d", got)
	}
	// muUpper out of range clamps to worst case in SampleSize too.
	if SampleSize(0.5, 0.5, -1, 3) != SampleSize(0.5, 0.5, 1, 3) {
		t.Error("bad muUpper should clamp to 1")
	}
	// Valid muUpper tightens the bound when the mu/phi² branch wins.
	if SampleSize(0.5, 0.5, 0.1, 3) >= SampleSize(0.5, 0.5, 1, 3) {
		t.Error("muUpper should tighten the bound")
	}
	// phi/delta validation in SampleSize mirrors Lemma5SampleSize.
	for i, f := range []func(){
		func() { SampleSize(0, 0.5, 1, 3) },
		func() { SampleSize(0.5, 0, 1, 3) },
		func() { SampleSize(1.5, 0.5, 1, 3) },
		func() { SampleSize(0.5, 1.5, 1, 3) },
		func() { Lemma5SampleSize(0.5, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
