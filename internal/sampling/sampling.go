// Package sampling implements the estimation machinery of Section 2 of
// the paper: Lemma 5's sample-size bound for estimating a Bernoulli
// mean up to an absolute error, and uniform sampling with replacement
// from an index range.
//
// All functions are deterministic given the injected *rand.Rand, which
// keeps every experiment reproducible from its seed.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Lemma5SampleSize returns the number t of independent Bernoulli draws
// that Lemma 5 requires so that the empirical mean deviates from the
// true mean by at least phi with probability at most delta:
//
//	t >= ceil(max(mu/phi², 1/phi) · 3·ln(2/delta))
//
// The true mean mu is unknown to callers, so the bound is evaluated at
// the worst case mu = 1 unless muUpper in (0, 1] tightens it.
// Lemma5SampleSize panics when phi or delta fall outside (0, 1].
func Lemma5SampleSize(phi, delta, muUpper float64) int {
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("sampling: phi %g outside (0,1]", phi))
	}
	if delta <= 0 || delta > 1 {
		panic(fmt.Sprintf("sampling: delta %g outside (0,1]", delta))
	}
	if muUpper <= 0 || muUpper > 1 {
		muUpper = 1
	}
	factor := math.Max(muUpper/(phi*phi), 1/phi)
	t := math.Ceil(factor * 3 * math.Log(2/delta))
	if t < 1 {
		return 1
	}
	if t > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(t)
}

// SampleSize mirrors Lemma5SampleSize but allows the multiplicative
// constant (the paper's 3) to be overridden, which the active algorithm
// uses to expose "theory" vs "practical" parameterizations. The
// asymptotic form O(phi^-2 · log(1/delta)) is unchanged.
func SampleSize(phi, delta, muUpper, c float64) int {
	if c <= 0 {
		panic(fmt.Sprintf("sampling: non-positive constant %g", c))
	}
	if phi <= 0 || phi > 1 {
		panic(fmt.Sprintf("sampling: phi %g outside (0,1]", phi))
	}
	if delta <= 0 || delta > 1 {
		panic(fmt.Sprintf("sampling: delta %g outside (0,1]", delta))
	}
	if muUpper <= 0 || muUpper > 1 {
		muUpper = 1
	}
	factor := math.Max(muUpper/(phi*phi), 1/phi)
	t := math.Ceil(factor * c * math.Log(2/delta))
	if t < 1 {
		return 1
	}
	if t > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(t)
}

// WithReplacement draws t indices uniformly at random from [0, n) with
// replacement. It panics when n <= 0 or t < 0.
func WithReplacement(rng *rand.Rand, n, t int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("sampling: population size %d", n))
	}
	if t < 0 {
		panic(fmt.Sprintf("sampling: negative sample size %d", t))
	}
	out := make([]int, t)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// WithoutReplacement draws min(t, n) distinct indices uniformly at
// random from [0, n) via a partial Fisher–Yates shuffle.
func WithoutReplacement(rng *rand.Rand, n, t int) []int {
	if n <= 0 {
		panic(fmt.Sprintf("sampling: population size %d", n))
	}
	if t < 0 {
		panic(fmt.Sprintf("sampling: negative sample size %d", t))
	}
	if t > n {
		t = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < t; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:t]
}

// EstimateCount scales an observed sample hit count x out of t draws to
// the population size n, yielding the estimate (x/t)·n of the number of
// population members satisfying the predicate (Section 2's corollary of
// Lemma 5).
func EstimateCount(x, t, n int) float64 {
	if t <= 0 {
		panic("sampling: zero-sample estimate")
	}
	return float64(x) / float64(t) * float64(n)
}
