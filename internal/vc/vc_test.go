package vc

import (
	"math/rand"
	"testing"

	"monoclass/internal/dataset"
	"monoclass/internal/geom"
)

func TestShatterableBasics(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {0, 2}, {2, 0}}
	if Shatterable(pts, []int{0, 1}) {
		t.Error("a comparable pair must not be shatterable")
	}
	if !Shatterable(pts, []int{2, 3}) {
		t.Error("an incomparable pair must be shatterable")
	}
	if !Shatterable(pts, []int{1}) || !Shatterable(pts, nil) {
		t.Error("singletons and the empty set are trivially shatterable")
	}
}

// The antichain characterization must agree with first-principles
// shattering on random subsets.
func TestShatterableMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(8)
		d := 1 + rng.Intn(3)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, d)
			for k := range p {
				p[k] = float64(rng.Intn(4))
			}
			pts[i] = p
		}
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		idxs := rng.Perm(n)[:k]
		fast := Shatterable(pts, idxs)
		brute := ShatterableBrute(pts, idxs)
		if fast != brute {
			t.Fatalf("trial %d: antichain says %v, brute force says %v (pts %v idxs %v)",
				trial, fast, brute, pts, idxs)
		}
	}
}

func TestShatterableBruteLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ShatterableBrute(make([]geom.Point, 25), make([]int, 25))
}

// VC dimension equals the dominance width, with the antichain as the
// shattered witness — on the paper's own Figure 1, dimension 6.
func TestDimensionOnFigure1(t *testing.T) {
	lab := dataset.Figure1()
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	dim, witness := Dimension(pts)
	if dim != 6 {
		t.Errorf("VC dimension = %d, want 6 (the dominance width)", dim)
	}
	if len(witness) != dim {
		t.Errorf("witness size %d != dimension %d", len(witness), dim)
	}
	if !Shatterable(pts, witness) {
		t.Error("witness is not shatterable")
	}
	if !ShatterableBrute(pts, witness) {
		t.Error("witness fails first-principles shattering")
	}
}

// No subset larger than the reported dimension is shatterable
// (verified exhaustively on small instances).
func TestDimensionIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(7)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{float64(rng.Intn(4)), float64(rng.Intn(4))}
		}
		dim, witness := Dimension(pts)
		if !Shatterable(pts, witness) {
			t.Fatalf("trial %d: witness not shatterable", trial)
		}
		// Exhaust all subsets of size dim+1.
		var idxs []int
		var rec func(start int)
		found := false
		rec = func(start int) {
			if found {
				return
			}
			if len(idxs) == dim+1 {
				if Shatterable(pts, idxs) {
					found = true
				}
				return
			}
			for i := start; i < n; i++ {
				idxs = append(idxs, i)
				rec(i + 1)
				idxs = idxs[:len(idxs)-1]
			}
		}
		rec(0)
		if found {
			t.Fatalf("trial %d: found shatterable subset larger than reported dimension %d", trial, dim)
		}
	}
}
