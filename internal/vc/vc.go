// Package vc computes learning-theoretic quantities of the monotone
// classifier family H_mono on a finite point set, connecting the
// implementation to the Section 1.2 discussion: the probing cost of
// the A²-style algorithms is governed by the VC dimension λ and the
// disagreement coefficient θ of H_mono on P, both of which are Ω(w).
// On a finite set the first relation is exact:
//
//	VCdim(H_mono, P) = dominance width of P,
//
// because a subset is shatterable iff it is an antichain: a dominance
// pair p ⪰ q kills the labeling (h(p), h(q)) = (0, 1), while any
// labeling of an antichain extends monotonically by anchoring the
// positive members.
package vc

import (
	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

// Shatterable reports whether the subset of pts selected by idxs is
// shattered by H_mono, i.e. every one of the 2^k labelings is realized
// by some monotone classifier. By the antichain characterization this
// is an O(d·k²) pairwise check.
func Shatterable(pts []geom.Point, idxs []int) bool {
	for a := 0; a < len(idxs); a++ {
		for b := a + 1; b < len(idxs); b++ {
			if geom.Comparable(pts[idxs[a]], pts[idxs[b]]) {
				return false
			}
		}
	}
	return true
}

// ShatterableBrute verifies shatterability from first principles: for
// each of the 2^k labelings it asks whether a monotone classifier
// realizes it on the selected points (exponential; tests use it to
// validate the antichain characterization). It refuses subsets larger
// than 20.
func ShatterableBrute(pts []geom.Point, idxs []int) bool {
	k := len(idxs)
	if k > 20 {
		panic("vc: brute-force shattering limited to 20 points")
	}
	if k == 0 {
		return true
	}
	sub := make([]geom.Point, k)
	for i, idx := range idxs {
		sub[i] = pts[idx]
	}
	for mask := 0; mask < 1<<k; mask++ {
		assign := make([]geom.Label, k)
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				assign[i] = geom.Positive
			}
		}
		// A labeling is achievable iff it is monotone-consistent on
		// the subset, in which case the anchor extension realizes it.
		if _, err := classifier.FromAssignment(sub, assign); err != nil {
			return false
		}
	}
	return true
}

// Dimension returns VCdim(H_mono, P): the size of the largest
// shatterable subset of pts, which equals the dominance width. The
// maximum antichain produced by the chain decomposition is the witness
// subset.
func Dimension(pts []geom.Point) (dim int, witness []int) {
	dec := chains.Decompose(pts)
	return dec.Width, dec.Antichain
}
