package skyline

import (
	"math/rand"
	"testing"

	"monoclass/internal/geom"
)

// bruteMinimal is the definition, used as oracle.
func bruteMinimal(pts []geom.Point) []int {
	var out []int
	for i, p := range pts {
		minimal := true
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Equal(p) {
				if j < i {
					minimal = false
					break
				}
				continue
			}
			if geom.Dominates(p, q) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, i)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMinimalBasics(t *testing.T) {
	pts := []geom.Point{{2, 2}, {1, 3}, {3, 1}, {0, 0}}
	got := Minimal(pts)
	if !equalInts(got, []int{3}) {
		t.Errorf("Minimal = %v, want [3]", got)
	}
	max := Maximal(pts)
	if !equalInts(max, []int{0, 1, 2}) {
		// (2,2), (1,3), (3,1) are mutually incomparable tops.
		t.Errorf("Maximal = %v, want [0 1 2]", max)
	}
	if Minimal(nil) != nil || Maximal(nil) != nil {
		t.Error("empty sets should give nil")
	}
}

func TestMinimalDuplicates(t *testing.T) {
	pts := []geom.Point{{1, 1}, {1, 1}, {2, 2}, {1, 1}}
	got := Minimal(pts)
	if !equalInts(got, []int{0}) {
		t.Errorf("Minimal = %v, want [0] (duplicates reported once)", got)
	}
}

func TestMinimal2DMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		fast := Minimal(pts)
		want := bruteMinimal(pts)
		if !equalInts(fast, want) {
			t.Fatalf("trial %d: fast %v != brute %v (pts %v)", trial, fast, want, pts)
		}
	}
}

func TestMinimalHigherDims(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(25)
		d := 3 + rng.Intn(2)
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, d)
			for k := range p {
				p[k] = float64(rng.Intn(4))
			}
			pts[i] = p
		}
		if !equalInts(Minimal(pts), bruteMinimal(pts)) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestMaximalIsMinimalOfNegation(t *testing.T) {
	pts := []geom.Point{{0, 0}, {5, 5}, {2, 7}, {7, 2}}
	got := Maximal(pts)
	if !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("Maximal = %v, want [1 2 3]", got)
	}
}

func TestFilter(t *testing.T) {
	pts := []geom.Point{{1}, {2}, {3}}
	sub := Filter(pts, []int{2, 0})
	if len(sub) != 2 || !sub[0].Equal(geom.Point{3}) || !sub[1].Equal(geom.Point{1}) {
		t.Errorf("Filter wrong: %v", sub)
	}
}

func TestMinimal2DLargeScale(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 100000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	got := Minimal(pts)
	// Pairwise incomparability of the skyline.
	for a := 0; a < len(got); a++ {
		for b := a + 1; b < len(got); b++ {
			if geom.Comparable(pts[got[a]], pts[got[b]]) {
				t.Fatalf("skyline members %d and %d comparable", got[a], got[b])
			}
		}
	}
	if len(got) == 0 || len(got) > 200 {
		t.Errorf("suspicious skyline size %d for uniform data", len(got))
	}
}
