// Package skyline computes Pareto frontiers (skylines) under the
// dominance order: the maximal or minimal points of a set. Skylines
// are the classic database-query incarnation of dominance, and two
// spots of this library are built on them: anchor classifiers are
// exactly the upward closure of a minimal-point skyline, and the
// passive solver's positive region is reported through it.
//
// The 2-D case runs in O(n log n) by a sort-and-sweep; the general
// case is the standard O(d·n·s) scan (s = skyline size), quadratic
// only when the skyline itself is.
package skyline

import (
	"sort"

	"monoclass/internal/geom"
)

// Minimal returns the indices of the minimal points of pts: those not
// strictly dominating any other point... precisely, p is minimal when
// no q (distinct as a point; duplicates count as one) is strictly
// below it. Coordinate-equal duplicates are reported once (smallest
// index). Indices are returned in increasing order.
func Minimal(pts []geom.Point) []int {
	if len(pts) == 0 {
		return nil
	}
	if len(pts[0]) == 2 {
		return minimal2D(pts)
	}
	return minimalGeneric(pts)
}

// Maximal returns the indices of the maximal points of pts (the
// classic skyline): those not strictly dominated by any other point,
// duplicates reported once. Indices are returned in increasing order.
func Maximal(pts []geom.Point) []int {
	if len(pts) == 0 {
		return nil
	}
	neg := make([]geom.Point, len(pts))
	for i, p := range pts {
		q := make(geom.Point, len(p))
		for k, v := range p {
			q[k] = -v
		}
		neg[i] = q
	}
	return Minimal(neg)
}

// minimalGeneric is the dimension-agnostic scan.
func minimalGeneric(pts []geom.Point) []int {
	var out []int
	for i, p := range pts {
		minimal := true
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Equal(p) {
				if j < i {
					minimal = false // duplicate reported at j
					break
				}
				continue
			}
			if geom.Dominates(p, q) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, i)
		}
	}
	return out
}

// minimal2D sorts by (x asc, y asc, index asc) and sweeps: a point is
// minimal iff its y is strictly below every earlier point's minimum y
// — with care for duplicates and equal-x runs.
func minimal2D(pts []geom.Point) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		if pa[1] != pb[1] {
			return pa[1] < pb[1]
		}
		return order[a] < order[b]
	})
	var out []int
	bestY := 0.0
	haveBest := false
	var lastKept geom.Point
	for _, idx := range order {
		p := pts[idx]
		if haveBest {
			if lastKept.Equal(p) {
				continue // duplicate of a kept point: report once
			}
			if p[1] >= bestY {
				continue // dominates some earlier kept point
			}
		}
		out = append(out, idx)
		bestY = p[1]
		haveBest = true
		lastKept = p
	}
	sort.Ints(out)
	return out
}

// Filter returns the subset of pts selected by idxs.
func Filter(pts []geom.Point, idxs []int) []geom.Point {
	out := make([]geom.Point, len(idxs))
	for i, idx := range idxs {
		out[i] = pts[idx]
	}
	return out
}
