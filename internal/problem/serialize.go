package problem

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// problemFile is the on-disk JSON representation of a prepared
// Problem, versioned alongside the model format. It stores everything
// Prepare derives except the flow network (cheap to rebuild once the
// decomposition — the expensive part — is known): points, labels,
// weights, the chain decomposition with its antichain certificate, and
// optionally the dense matrix words, so a warm process skips Prepare
// entirely.
type problemFile struct {
	Format     string       `json:"format"`  // always "monoclass-problem"
	Version    int          `json:"version"` // currently 1
	Mode       string       `json:"mode"`
	Dim        int          `json:"dim"`
	Points     [][]jsonCoor `json:"points"`
	Labels     []int        `json:"labels"`
	Weights    []float64    `json:"weights"`
	Chains     [][]int      `json:"chains"`
	Antichain  []int        `json:"antichain,omitempty"`
	Width      int          `json:"width"`
	ExactWidth bool         `json:"exact_width"`
	// Matrix carries the dense bit-packed relation, included only for
	// small dense instances (n ≤ matrixBlobLimit); absent, a dense
	// reader rebuilds it with the kernel builder.
	Matrix *matrixBlob `json:"matrix,omitempty"`
}

// matrixBlob is the dense matrix's dom and dag words, little-endian
// uint64s, base64-encoded.
type matrixBlob struct {
	Dom string `json:"dom"`
	Dag string `json:"dag"`
}

// matrixBlobLimit caps the instance size whose matrix words are
// inlined into the file (4096 points ≈ 4 MiB of words before base64).
const matrixBlobLimit = 4096

// jsonCoor wraps a coordinate so ±Inf and NaN survive the round trip
// (same scheme as the model format, plus "nan" — problems may carry
// incomparable points that a classifier's anchors never do).
type jsonCoor struct {
	value float64
}

// MarshalJSON implements json.Marshaler.
func (c jsonCoor) MarshalJSON() ([]byte, error) {
	switch {
	case math.IsInf(c.value, -1):
		return []byte(`"-inf"`), nil
	case math.IsInf(c.value, 1):
		return []byte(`"+inf"`), nil
	case math.IsNaN(c.value):
		return []byte(`"nan"`), nil
	default:
		return json.Marshal(c.value)
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *jsonCoor) UnmarshalJSON(data []byte) error {
	var f float64
	if err := json.Unmarshal(data, &f); err == nil {
		c.value = f
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("problem: invalid coordinate %s", data)
	}
	switch s {
	case "-inf":
		c.value = math.Inf(-1)
	case "+inf":
		c.value = math.Inf(1)
	case "nan":
		c.value = math.NaN()
	default:
		return fmt.Errorf("problem: invalid coordinate string %q", s)
	}
	return nil
}

func encodeWords(words []uint64) string {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

func decodeWords(s string) ([]uint64, error) {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("problem: matrix blob length %d not word-aligned", len(buf))
	}
	words := make([]uint64, len(buf)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return words, nil
}

// Write serializes p as versioned JSON. The flow network is not
// stored; Read rebuilds it from the stored decomposition.
func Write(w io.Writer, p *Problem) error {
	pf := problemFile{
		Format:     "monoclass-problem",
		Version:    1,
		Mode:       p.mode.String(),
		Dim:        p.dim,
		Labels:     make([]int, len(p.ws)),
		Weights:    make([]float64, len(p.ws)),
		Chains:     p.dec.Chains,
		Antichain:  p.dec.Antichain,
		Width:      p.dec.Width,
		ExactWidth: p.exactWidth,
	}
	for _, pt := range p.pts {
		row := make([]jsonCoor, len(pt))
		for k, v := range pt {
			row[k] = jsonCoor{value: v}
		}
		pf.Points = append(pf.Points, row)
	}
	for i, wp := range p.ws {
		pf.Labels[i] = int(wp.Label)
		pf.Weights[i] = wp.Weight
	}
	if p.matrix != nil && p.matrix.N() <= matrixBlobLimit {
		n, words := p.matrix.N(), p.matrix.Words()
		dom := make([]uint64, 0, n*words)
		dag := make([]uint64, 0, n*words)
		for i := 0; i < n; i++ {
			dom = append(dom, p.matrix.DomRow(i)...)
			dag = append(dag, p.matrix.DAGRow(i)...)
		}
		pf.Matrix = &matrixBlob{Dom: encodeWords(dom), Dag: encodeWords(dag)}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(pf)
}

// Read deserializes a Problem written by Write, validating everything
// it trusts: format, version, mode, shapes, labels, weights, the chain
// decomposition (must be a valid partition in dominance order), the
// antichain certificate, and — when matrix words are present — the
// blob's structural invariants plus a deterministic sample of bits
// against the scalar dominance oracle. The flow network is rebuilt
// eagerly; the stored decomposition makes that the cheap part.
func Read(r io.Reader) (*Problem, error) {
	var pf problemFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("problem: decoding: %w", err)
	}
	if pf.Format != "monoclass-problem" {
		return nil, fmt.Errorf("problem: unknown format %q", pf.Format)
	}
	if pf.Version != 1 {
		return nil, fmt.Errorf("problem: unsupported version %d", pf.Version)
	}
	mode, err := ParseMode(pf.Mode)
	if err != nil {
		return nil, err
	}
	if mode == ModeAuto {
		return nil, fmt.Errorf("problem: serialized mode must be resolved, got auto")
	}
	n := len(pf.Points)
	if n == 0 {
		return nil, fmt.Errorf("problem: empty point set")
	}
	if len(pf.Labels) != n || len(pf.Weights) != n {
		return nil, fmt.Errorf("problem: %d points but %d labels, %d weights", n, len(pf.Labels), len(pf.Weights))
	}
	if pf.Dim <= 0 {
		return nil, fmt.Errorf("problem: dimension %d must be positive", pf.Dim)
	}

	ws := make(geom.WeightedSet, n)
	for i, row := range pf.Points {
		if len(row) != pf.Dim {
			return nil, fmt.Errorf("problem: point %d has dimension %d, want %d", i, len(row), pf.Dim)
		}
		pt := make(geom.Point, pf.Dim)
		for k, c := range row {
			pt[k] = c.value
		}
		if pf.Labels[i] != 0 && pf.Labels[i] != 1 {
			return nil, fmt.Errorf("problem: point %d has non-binary label %d", i, pf.Labels[i])
		}
		ws[i] = geom.WeightedPoint{P: pt, Label: geom.Label(pf.Labels[i]), Weight: pf.Weights[i]}
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	pts := pointsOf(ws)

	if pf.Width != len(pf.Chains) {
		return nil, fmt.Errorf("problem: width %d but %d chains", pf.Width, len(pf.Chains))
	}
	if err := chains.ValidateDecomposition(pts, pf.Chains); err != nil {
		return nil, fmt.Errorf("problem: stored decomposition: %w", err)
	}
	if len(pf.Antichain) > 0 {
		if err := chains.ValidateAntichain(pts, pf.Antichain); err != nil {
			return nil, fmt.Errorf("problem: stored antichain: %w", err)
		}
		if pf.ExactWidth && len(pf.Antichain) != pf.Width {
			return nil, fmt.Errorf("problem: antichain of %d points cannot certify width %d", len(pf.Antichain), pf.Width)
		}
	}
	decomp := chains.Decomposition{Chains: pf.Chains, Width: pf.Width, Antichain: pf.Antichain}

	var view domgraph.View
	var matrix *domgraph.Matrix
	switch mode {
	case ModeDense:
		if pf.Matrix != nil {
			dom, derr := decodeWords(pf.Matrix.Dom)
			if derr != nil {
				return nil, fmt.Errorf("problem: matrix dom words: %w", derr)
			}
			dag, derr := decodeWords(pf.Matrix.Dag)
			if derr != nil {
				return nil, fmt.Errorf("problem: matrix dag words: %w", derr)
			}
			matrix, derr = domgraph.MatrixFromWords(n, dom, dag)
			if derr != nil {
				return nil, fmt.Errorf("problem: matrix blob: %w", derr)
			}
			if err := spotCheckMatrix(matrix, pts); err != nil {
				return nil, err
			}
		} else {
			matrix = domgraph.Build(pts)
		}
		view = matrix
	case ModeBlocked:
		view = domgraph.NewBlocked(pts, domgraph.BlockedConfig{})
	case ModeImplicit:
		view = domgraph.NewImplicit(pts)
	}

	// A restored Problem keeps its stored decomposition verbatim;
	// PathLoaded with zero stage timings marks it as not freshly
	// prepared.
	st := PrepareStats{DecomposePath: PathLoaded}
	p, err := assemble(ws, pts, mode, view, matrix, matrix, decomp, pf.ExactWidth, st, time.Now())
	if err != nil {
		return nil, err
	}
	p.stats.NetworkNS, p.stats.TotalNS = 0, 0
	return p, nil
}

// spotCheckMatrix samples pairs with a deterministic splitmix64 stream
// and holds the adopted words to the scalar dominance oracle — cheap
// insurance against a blob that is structurally valid but belongs to
// different points.
func spotCheckMatrix(m *domgraph.Matrix, pts []geom.Point) error {
	n := len(pts)
	samples := 1024
	if n*n < samples {
		samples = n * n
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for s := 0; s < samples; s++ {
		i := int(next() % uint64(n))
		j := int(next() % uint64(n))
		wantDom := i == j || geom.Dominates(pts[i], pts[j])
		if m.Dominates(i, j) != wantDom {
			return fmt.Errorf("problem: matrix blob disagrees with points at closure pair (%d,%d)", i, j)
		}
		if m.Edge(i, j) != domgraph.DominanceEdge(pts, i, j) {
			return fmt.Errorf("problem: matrix blob disagrees with points at dag pair (%d,%d)", i, j)
		}
	}
	return nil
}
