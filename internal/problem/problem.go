// Package problem owns the prepared form of one monotone-classification
// instance: the points, their dominance representation, a chain
// decomposition, and the Section 5.1 flow network, built once by
// Prepare and shared by every solver layer — passive solves, audits,
// conformance differentials, the online updater, and serving gates all
// accept a *Problem instead of re-deriving the same structure from raw
// points.
//
// A Problem is immutable after Prepare: accessors never mutate it and
// repeated Solve calls are deterministic (the one mutable piece, the
// flow network's residual state, is reset under an internal mutex).
// The dominance representation is chosen by MatrixMode: dense keeps
// the full bit-packed matrix (the classic O(n²/64)-word layout),
// blocked materializes cache-sized row tiles on demand behind an LRU,
// and implicit answers dominance queries from per-dimension rank
// arrays without materializing anything. Auto picks dense up to
// DenseLimit points and blocked/implicit past it, so the n²/64 memory
// wall never stops Prepare.
package problem

import (
	"fmt"
	"sync"
	"time"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

// MatrixMode selects the dominance representation of a Problem.
type MatrixMode int

const (
	// ModeAuto picks dense while the matrix fits (n ≤ DenseLimit and
	// under MaxDenseBytes), then blocked for d ≥ 3 and implicit for
	// d ≤ 2.
	ModeAuto MatrixMode = iota
	// ModeDense materializes the full bit-packed matrix (domgraph.Build);
	// Prepare refuses when it would exceed MaxDenseBytes.
	ModeDense
	// ModeBlocked materializes the matrix in cache-sized row tiles on
	// demand, behind an LRU of tiles (domgraph.Blocked).
	ModeBlocked
	// ModeImplicit never materializes bits: dominance queries are
	// answered from per-dimension rank arrays (domgraph.Implicit).
	ModeImplicit
)

// String returns the mode's flag spelling: auto, dense, blocked,
// implicit.
func (m MatrixMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDense:
		return "dense"
	case ModeBlocked:
		return "blocked"
	case ModeImplicit:
		return "implicit"
	}
	return fmt.Sprintf("MatrixMode(%d)", int(m))
}

// ParseMode is String's inverse, for flags and the serialized format.
func ParseMode(s string) (MatrixMode, error) {
	switch s {
	case "auto":
		return ModeAuto, nil
	case "dense":
		return ModeDense, nil
	case "blocked":
		return ModeBlocked, nil
	case "implicit":
		return ModeImplicit, nil
	}
	return 0, fmt.Errorf("problem: unknown matrix mode %q (want auto, dense, blocked, or implicit)", s)
}

// Tuning defaults; zero Options fields resolve to these.
const (
	// DefaultDenseLimit is the auto-mode point-count threshold past
	// which Prepare stops materializing the dense matrix (1 GiB of
	// dom+dag words at the limit).
	DefaultDenseLimit = 65536
	// DefaultMaxDenseBytes caps the dense matrix footprint: explicit
	// ModeDense refuses past it, ModeAuto falls through to a
	// non-materializing mode.
	DefaultMaxDenseBytes = int64(2) << 30
	// DefaultExactDecomposeLimit is the largest n at which a
	// non-dense Problem at d ≥ 3 still materializes the matrix
	// transiently to compute an exact minimum chain decomposition;
	// past it (or past the dense-footprint guard), GreedyDecompose
	// supplies a valid (possibly wider) cover and Stats records the
	// fallback. Raised from 16384 once the matching was warm-started
	// from the greedy cover: exact width now costs only the
	// seed-to-optimum augmentation gap on top of the greedy cover
	// instead of O(√n) cold Hopcroft–Karp phases, so the transient
	// matrix build — not the matching — bounds the practical limit.
	DefaultExactDecomposeLimit = 65536
	// streamCountLimit is the largest n at which Violations streams
	// packed rows out of a non-dense view; past it the chain-counting
	// method avoids the O(n²) row scan entirely.
	streamCountLimit = 262144
)

// Options configures Prepare.
type Options struct {
	// Mode selects the dominance representation; ModeAuto (the zero
	// value) picks one by instance size.
	Mode MatrixMode
	// DenseLimit overrides the auto-mode dense threshold (points);
	// DefaultDenseLimit when zero.
	DenseLimit int
	// MaxDenseBytes overrides the dense footprint guard;
	// DefaultMaxDenseBytes when zero.
	MaxDenseBytes int64
	// ExactDecomposeLimit overrides the exact-decomposition threshold
	// for non-dense d ≥ 3 instances; DefaultExactDecomposeLimit when
	// zero.
	ExactDecomposeLimit int
	// Blocked tunes the tile cache in ModeBlocked (defaults apply
	// per-field, see domgraph.BlockedConfig).
	Blocked domgraph.BlockedConfig
}

func (o Options) withDefaults() Options {
	if o.DenseLimit == 0 {
		o.DenseLimit = DefaultDenseLimit
	}
	if o.MaxDenseBytes == 0 {
		o.MaxDenseBytes = DefaultMaxDenseBytes
	}
	if o.ExactDecomposeLimit == 0 {
		o.ExactDecomposeLimit = DefaultExactDecomposeLimit
	}
	return o
}

// Decomposition path names recorded in PrepareStats.DecomposePath.
const (
	// PathFast2D: the d ≤ 2 O(n log n) construction; always exact.
	PathFast2D = "fast-2d"
	// PathExactDense: warm-started matching over the retained dense
	// matrix; exact.
	PathExactDense = "exact-dense"
	// PathExactTransient: non-dense mode that materialized the matrix
	// transiently for the warm-started matching; exact.
	PathExactTransient = "exact-transient"
	// PathGreedyFallback: past ExactDecomposeLimit (or the dense
	// footprint guard) — first-fit cover, possibly wider than the true
	// width. The one path where ExactWidth is false.
	PathGreedyFallback = "greedy-fallback"
	// PathAdopted: decomposition computed from a caller-supplied matrix
	// (problem.Adopt); exact.
	PathAdopted = "adopted"
	// PathLoaded: decomposition restored verbatim from a serialized
	// Problem (problem.Read); exactness is whatever the writer recorded.
	PathLoaded = "loaded"
)

// PrepareStats records how Prepare built a Problem and how long each
// stage took; benchtab's problem table, monoclass prepare, and the
// serve /stats endpoint all surface it. The zero TotalNS of a loaded
// Problem distinguishes restored instances from freshly prepared ones.
type PrepareStats struct {
	// N and Dim echo the instance shape.
	N   int `json:"n"`
	Dim int `json:"d"`
	// Mode is the resolved matrix mode (never ModeAuto).
	Mode string `json:"mode"`
	// Width is the decomposition's chain count; ExactWidth reports
	// whether that is the true dominance width or a greedy upper bound.
	Width      int  `json:"width"`
	ExactWidth bool `json:"exact_width"`
	// DecomposePath names which decomposition route ran (Path*
	// constants) — the greedy fallback is no longer silent.
	DecomposePath string `json:"decompose_path"`
	// SeedChains, Augmentations, Phases, and CertEarlyExit mirror
	// chains.DecomposeStats for the exact matrix paths: the warm-start
	// seed's chain count, the augmenting paths needed on top of it
	// (exactly SeedChains − Width), the BFS phases run, and whether the
	// antichain certificate proved the seed optimal with no matching
	// work at all.
	SeedChains    int  `json:"seed_chains,omitempty"`
	Augmentations int  `json:"augmentations,omitempty"`
	Phases        int  `json:"phases,omitempty"`
	CertEarlyExit bool `json:"cert_early_exit,omitempty"`
	// Per-stage wall times: dominance representation build, chain
	// decomposition (including a transient materialization when the
	// path is exact-transient), flow-network construction, and the
	// whole Prepare call end to end.
	MatrixNS    int64 `json:"matrix_ns"`
	DecomposeNS int64 `json:"decompose_ns"`
	NetworkNS   int64 `json:"network_ns"`
	TotalNS     int64 `json:"total_ns"`
}

// SolveOptions configures one Solve call over a prepared Problem.
type SolveOptions struct {
	// Solver is the max-flow algorithm; the default workspace-pooled
	// push-relabel engine when nil (exactly passive.Solve's default,
	// so a Problem solve is bit-identical to the legacy path).
	Solver passive.FlowSolver
}

// Problem is one prepared instance. It is immutable after Prepare /
// Adopt / Read; Solve and Violations are safe for concurrent use.
type Problem struct {
	ws     geom.WeightedSet // owned (Prepare clones; Adopt documents aliasing)
	pts    []geom.Point     // ws[i].P, in input order
	dim    int
	mode   MatrixMode       // resolved, never ModeAuto
	view   domgraph.View    // the dominance representation
	matrix *domgraph.Matrix // non-nil iff mode is dense (same object as view)

	dec        chains.Decomposition
	exactWidth bool // dec is a minimum decomposition (width = dominance width)
	stats      PrepareStats

	prep *passive.Prepared

	mu           sync.Mutex // guards prep's network state and the lazy fields
	violations   int
	violationsOK bool
}

// Prepare validates ws, clones it, and builds the full prepared form:
// the dominance representation picked by opts, a chain decomposition
// (exact below the mode's limits, greedy above), and the passive flow
// network. The input set must be non-empty, dimensionally consistent,
// and carry positive finite weights.
//
// The profiles are chosen so that Solve over the result is
// bit-identical to passive.Solve(ws, passive.Options{}) whenever the
// decomposition is exact — the problem-prepared-vs-legacy conformance
// check holds it to that in all three modes.
func Prepare(ws geom.WeightedSet, opts Options) (*Problem, error) {
	start := time.Now()
	if len(ws) == 0 {
		return nil, fmt.Errorf("problem: empty input set")
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()

	owned := make(geom.WeightedSet, len(ws))
	for i, wp := range ws {
		owned[i] = geom.WeightedPoint{P: wp.P.Clone(), Label: wp.Label, Weight: wp.Weight}
	}
	pts := pointsOf(owned)
	n, d := len(owned), owned.Dim()

	mode, err := resolveMode(o, n)
	if err != nil {
		return nil, err
	}
	if mode == ModeAuto {
		if n <= o.DenseLimit && denseFootprint(n) <= o.MaxDenseBytes {
			mode = ModeDense
		} else if d >= 3 {
			mode = ModeBlocked
		} else {
			mode = ModeImplicit
		}
	}

	matrixStart := time.Now()
	var view domgraph.View
	var matrix *domgraph.Matrix
	switch mode {
	case ModeDense:
		matrix = domgraph.Build(pts)
		view = matrix
	case ModeBlocked:
		view = domgraph.NewBlocked(pts, o.Blocked)
	case ModeImplicit:
		view = domgraph.NewImplicit(pts)
	}
	var st PrepareStats
	st.MatrixNS = time.Since(matrixStart).Nanoseconds()

	decStart := time.Now()
	var dec chains.Decomposition
	var dst chains.DecomposeStats
	netMatrix := matrix
	exact := true
	switch {
	case d <= 2:
		// O(n log n) fast paths; never touch the matrix.
		dec = chains.Decompose(pts)
		st.DecomposePath = PathFast2D
	case matrix != nil:
		dec, dst = chains.DecomposeMatrixStats(pts, matrix)
		st.DecomposePath = PathExactDense
	case n <= o.ExactDecomposeLimit && denseFootprint(n) <= o.MaxDenseBytes:
		// Materialize transiently for the exact warm-started cover; the
		// matrix (== domgraph.Build's bits) is dropped right after the
		// network build in assemble.
		m := view.Materialize()
		dec, dst = chains.DecomposeMatrixStats(pts, m)
		st.DecomposePath = PathExactTransient
		netMatrix = m
	default:
		gc := chains.GreedyDecompose(pts)
		dec = chains.Decomposition{Chains: gc, Width: len(gc)}
		st.DecomposePath = PathGreedyFallback
		exact = false
	}
	st.DecomposeNS = time.Since(decStart).Nanoseconds()
	st.SeedChains, st.Augmentations = dst.SeedChains, dst.Augmentations
	st.Phases, st.CertEarlyExit = dst.Phases, dst.CertEarlyExit
	return assemble(owned, pts, mode, view, matrix, netMatrix, dec, exact, st, start)
}

// Adopt wraps an already-built dense matrix (domgraph.Build over ws's
// points, in input order — the online updater's dynamically patched
// relation qualifies) into a Problem without cloning ws or rebuilding
// anything: the decomposition comes from the matrix and the network
// from the kernel path, exactly what passive.Solve(ws,
// passive.Options{Matrix: m}) constructs. The caller must not mutate
// ws or m afterwards.
func Adopt(ws geom.WeightedSet, m *domgraph.Matrix) (*Problem, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("problem: empty input set")
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	if m.N() != len(ws) {
		return nil, fmt.Errorf("problem: matrix covers %d points, want %d", m.N(), len(ws))
	}
	pts := pointsOf(ws)
	decStart := time.Now()
	dec, dst := chains.DecomposeMatrixStats(pts, m)
	st := PrepareStats{
		DecomposePath: PathAdopted,
		DecomposeNS:   time.Since(decStart).Nanoseconds(),
		SeedChains:    dst.SeedChains,
		Augmentations: dst.Augmentations,
		Phases:        dst.Phases,
		CertEarlyExit: dst.CertEarlyExit,
	}
	return assemble(ws, pts, ModeDense, m, m, m, dec, true, st, decStart)
}

// assemble builds the passive network and finishes construction.
// netMatrix (possibly nil, possibly transient) drives the kernel edge
// builder; matrix is what the Problem retains. st carries the stage
// timings accumulated so far; assemble adds the network stage and the
// end-to-end total from start.
func assemble(ws geom.WeightedSet, pts []geom.Point, mode MatrixMode, view domgraph.View, matrix, netMatrix *domgraph.Matrix, dec chains.Decomposition, exact bool, st PrepareStats, start time.Time) (*Problem, error) {
	netStart := time.Now()
	popts := passive.Options{Chains: dec.Chains}
	if netMatrix != nil && ws.Dim() >= 3 {
		// Kernel path, mirroring passive.Solve's own d ≥ 3 dispatch so
		// the constructed network is bit-identical to the legacy one.
		// At d ≤ 2 legacy Solve never materializes a matrix, so neither
		// do we — the chain-index path is the reference there.
		popts.Matrix = netMatrix
	}
	prep, err := passive.Prepare(ws, popts)
	if err != nil {
		return nil, err
	}
	st.NetworkNS = time.Since(netStart).Nanoseconds()
	st.TotalNS = time.Since(start).Nanoseconds()
	st.N, st.Dim = len(ws), ws.Dim()
	st.Mode = mode.String()
	st.Width, st.ExactWidth = dec.Width, exact
	return &Problem{
		ws:         ws,
		pts:        pts,
		dim:        ws.Dim(),
		mode:       mode,
		view:       view,
		matrix:     matrix,
		dec:        dec,
		exactWidth: exact,
		stats:      st,
		prep:       prep,
	}, nil
}

func pointsOf(ws geom.WeightedSet) []geom.Point {
	pts := make([]geom.Point, len(ws))
	for i := range ws {
		pts[i] = ws[i].P
	}
	return pts
}

// denseFootprint returns the dom+dag byte cost of a dense matrix over
// n points.
func denseFootprint(n int) int64 {
	words := int64((n + 63) / 64)
	return 2 * int64(n) * words * 8
}

// resolveMode rejects an explicit dense request past the memory guard;
// ModeAuto passes through for the caller to resolve.
func resolveMode(o Options, n int) (MatrixMode, error) {
	if o.Mode == ModeDense {
		if fp := denseFootprint(n); fp > o.MaxDenseBytes {
			return 0, fmt.Errorf("problem: dense matrix over %d points needs %d bytes, above the %d-byte guard; use blocked or implicit mode", n, fp, o.MaxDenseBytes)
		}
	}
	return o.Mode, nil
}

// N returns the instance size.
func (p *Problem) N() int { return len(p.ws) }

// Dim returns the dimensionality.
func (p *Problem) Dim() int { return p.dim }

// Mode returns the resolved matrix mode (never ModeAuto).
func (p *Problem) Mode() MatrixMode { return p.mode }

// WeightedSet returns the instance's weighted point set, in input
// order. The caller must not modify it.
func (p *Problem) WeightedSet() geom.WeightedSet { return p.ws }

// Points returns the instance's points, in input order. The caller
// must not modify them.
func (p *Problem) Points() []geom.Point { return p.pts }

// Labels returns a copy of the instance's labels, in input order.
func (p *Problem) Labels() []geom.Label {
	labels := make([]geom.Label, len(p.ws))
	for i := range p.ws {
		labels[i] = p.ws[i].Label
	}
	return labels
}

// View returns the dominance representation. All modes answer exactly
// the bits of domgraph.BuildNaive over Points.
func (p *Problem) View() domgraph.View { return p.view }

// Matrix returns the dense matrix, or nil when the mode does not
// materialize one.
func (p *Problem) Matrix() *domgraph.Matrix { return p.matrix }

// Decomposition returns a deep copy of the chain decomposition.
func (p *Problem) Decomposition() chains.Decomposition {
	cp := chains.Decomposition{
		Chains:    make([][]int, len(p.dec.Chains)),
		Width:     p.dec.Width,
		Antichain: append([]int(nil), p.dec.Antichain...),
	}
	for i, c := range p.dec.Chains {
		cp.Chains[i] = append([]int(nil), c...)
	}
	return cp
}

// Width returns the decomposition's chain count; the dominance width
// when ExactWidth reports true.
func (p *Problem) Width() int { return p.dec.Width }

// ExactWidth reports whether the decomposition is minimum (Dilworth
// width) rather than a greedy valid cover.
func (p *Problem) ExactWidth() bool { return p.exactWidth }

// Stats returns the prepare instrumentation: per-stage wall times,
// the decomposition path taken (exact vs the greedy fallback), and the
// warm-start work counters. Loaded Problems carry PathLoaded with zero
// timings.
func (p *Problem) Stats() PrepareStats { return p.stats }

// Contending returns a copy of the contending-point mask.
func (p *Problem) Contending() []bool { return p.prep.Contending() }

// NumContending returns |P^con|.
func (p *Problem) NumContending() int { return p.prep.NumContending() }

// NumEdges returns the prepared flow network's edge count.
func (p *Problem) NumEdges() int { return p.prep.NumEdges() }

// Solve re-solves the prepared network with the default flow solver —
// bit-identical to passive.Solve(WeightedSet(), passive.Options{})
// when the decomposition is exact, at a fraction of the cost: the
// validation, contending scan, decomposition, and network build are
// all amortized into Prepare.
func (p *Problem) Solve() (passive.Solution, error) {
	return p.SolveWith(SolveOptions{})
}

// SolveWith is Solve with an explicit flow solver.
func (p *Problem) SolveWith(opts SolveOptions) (passive.Solution, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prep.Resolve(opts.Solver)
}

// Violations returns the number of (negative, positive) ordered pairs
// where the negative point dominates the positive one — the quantity
// domgraph.(*Matrix).CountViolations reports — computed by the
// cheapest route the mode allows and cached.
func (p *Problem) Violations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.violationsOK {
		return p.violations
	}
	labels := make([]geom.Label, len(p.ws))
	for i := range p.ws {
		labels[i] = p.ws[i].Label
	}
	switch {
	case p.matrix != nil:
		p.violations = p.matrix.CountViolations(labels)
	case len(p.ws) <= streamCountLimit:
		p.violations = domgraph.ViewCountViolations(p.view, labels)
	default:
		p.violations = chainCountViolations(p.pts, labels, p.dec.Chains)
	}
	p.violationsOK = true
	return p.violations
}

// chainCountViolations counts dominance violations through the chain
// decomposition instead of the O(n²) relation: along a chain (ascending
// dominance order) the members dominated by any fixed point form a
// prefix, by transitivity, so one binary search per (negative, chain)
// pair plus per-chain positive-prefix sums gives the exact pair count
// in O(n · w · d · log n).
func chainCountViolations(pts []geom.Point, labels []geom.Label, chainSets [][]int) int {
	prefixes := make([][]int32, len(chainSets))
	for c, ch := range chainSets {
		pre := make([]int32, len(ch)+1)
		for k, idx := range ch {
			pre[k+1] = pre[k]
			if labels[idx] == geom.Positive {
				pre[k+1]++
			}
		}
		prefixes[c] = pre
	}
	total := 0
	for i, lb := range labels {
		if lb != geom.Negative {
			continue
		}
		for c, ch := range chainSets {
			lo, hi := 0, len(ch)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if geom.Dominates(pts[i], pts[ch[mid]]) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			total += int(prefixes[c][lo])
		}
	}
	return total
}
