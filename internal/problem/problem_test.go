package problem

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

// randomSet draws a labeled weighted set with deliberate dominance
// structure: small coordinate alphabet, duplicate points, mixed
// labels, varied weights.
func randomSet(rng *rand.Rand, n, d int) geom.WeightedSet {
	ws := make(geom.WeightedSet, n)
	for i := range ws {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(6))
		}
		if i > 0 && rng.Intn(6) == 0 {
			p = ws[rng.Intn(i)].P.Clone()
		}
		ws[i] = geom.WeightedPoint{
			P:      p,
			Label:  geom.Label(rng.Intn(2)),
			Weight: 0.25 + rng.Float64(),
		}
	}
	return ws
}

func sameSolution(t *testing.T, tag string, got, want passive.Solution) {
	t.Helper()
	if got.WErr != want.WErr {
		t.Fatalf("%s: WErr = %v, want %v", tag, got.WErr, want.WErr)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Fatalf("%s: assignments differ", tag)
	}
	if !reflect.DeepEqual(got.Classifier.Anchors(), want.Classifier.Anchors()) {
		t.Fatalf("%s: anchors differ", tag)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats = %+v, want %+v", tag, got.Stats, want.Stats)
	}
}

func TestPrepareMatchesLegacyAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	modes := []MatrixMode{ModeAuto, ModeDense, ModeBlocked, ModeImplicit}
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(120)
		d := 1 + rng.Intn(4)
		ws := randomSet(rng, n, d)
		legacy, err := passive.Solve(ws, passive.Options{})
		if err != nil {
			t.Fatalf("legacy solve: %v", err)
		}
		pts := pointsOf(ws)
		legacyDec := chains.Decompose(pts)
		labels := make([]geom.Label, n)
		for i := range ws {
			labels[i] = ws[i].Label
		}
		wantViol := domgraph.Build(pts).CountViolations(labels)

		for _, mode := range modes {
			p, err := Prepare(ws, Options{Mode: mode})
			if err != nil {
				t.Fatalf("Prepare(%v): %v", mode, err)
			}
			if p.Mode() == ModeAuto {
				t.Fatalf("Prepare(%v): mode not resolved", mode)
			}
			sol, err := p.Solve()
			if err != nil {
				t.Fatalf("Solve(%v): %v", mode, err)
			}
			sameSolution(t, mode.String(), sol, legacy)
			again, err := p.Solve()
			if err != nil {
				t.Fatalf("re-Solve(%v): %v", mode, err)
			}
			sameSolution(t, mode.String()+" re-solve", again, sol)
			if got := p.Decomposition(); !reflect.DeepEqual(got, legacyDec) {
				t.Fatalf("Prepare(%v): decomposition diverges from chains.Decompose", mode)
			}
			if !p.ExactWidth() {
				t.Fatalf("Prepare(%v): width inexact at n=%d", mode, n)
			}
			if got := p.Violations(); got != wantViol {
				t.Fatalf("Prepare(%v): Violations = %d, want %d", mode, got, wantViol)
			}
		}
	}
}

func TestAdoptMatchesMatrixOption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(90)
		d := 1 + rng.Intn(4)
		ws := randomSet(rng, n, d)
		m := domgraph.Build(pointsOf(ws))
		legacy, err := passive.Solve(ws, passive.Options{Matrix: m})
		if err != nil {
			t.Fatalf("legacy solve: %v", err)
		}
		p, err := Adopt(ws, m)
		if err != nil {
			t.Fatalf("Adopt: %v", err)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		sameSolution(t, "adopt", sol, legacy)
		if p.Mode() != ModeDense || p.Matrix() != m {
			t.Fatalf("Adopt must retain the supplied matrix in dense mode")
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare(nil, Options{}); err == nil {
		t.Fatal("Prepare accepted an empty set")
	}
	ws := geom.WeightedSet{{P: geom.Point{1, 2}, Label: geom.Positive, Weight: 1}}
	if _, err := Prepare(ws, Options{Mode: ModeDense, MaxDenseBytes: 1}); err == nil {
		t.Fatal("dense mode ignored its memory guard")
	}
	// Auto must fall through the guard instead of failing.
	p, err := Prepare(ws, Options{MaxDenseBytes: 1})
	if err != nil {
		t.Fatalf("auto mode under a tiny guard: %v", err)
	}
	if p.Mode() == ModeDense {
		t.Fatal("auto mode materialized dense past the guard")
	}
	bad := geom.WeightedSet{{P: geom.Point{1}, Label: geom.Positive, Weight: -1}}
	if _, err := Prepare(bad, Options{}); err == nil {
		t.Fatal("Prepare accepted a negative weight")
	}
}

func TestAutoModeSelection(t *testing.T) {
	ws := randomSet(rand.New(rand.NewSource(9)), 50, 3)
	small, err := Prepare(ws, Options{})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if small.Mode() != ModeDense {
		t.Fatalf("small auto mode = %v, want dense", small.Mode())
	}
	// Shrinking the dense limit below n forces the large-instance arm.
	big3, err := Prepare(ws, Options{DenseLimit: 10})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if big3.Mode() != ModeBlocked {
		t.Fatalf("large d=3 auto mode = %v, want blocked", big3.Mode())
	}
	ws2 := randomSet(rand.New(rand.NewSource(10)), 50, 2)
	big2, err := Prepare(ws2, Options{DenseLimit: 10})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if big2.Mode() != ModeImplicit {
		t.Fatalf("large d=2 auto mode = %v, want implicit", big2.Mode())
	}
}

func TestGreedyFallbackPastExactLimit(t *testing.T) {
	ws := randomSet(rand.New(rand.NewSource(11)), 60, 3)
	p, err := Prepare(ws, Options{Mode: ModeBlocked, ExactDecomposeLimit: 8})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if p.ExactWidth() {
		t.Fatal("greedy fallback claimed an exact width")
	}
	if err := chains.ValidateDecomposition(p.Points(), p.Decomposition().Chains); err != nil {
		t.Fatalf("greedy decomposition invalid: %v", err)
	}
	// Even with the wider decomposition, the optimum is the optimum.
	legacy, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		t.Fatalf("legacy solve: %v", err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// A wider decomposition builds a different (equivalent) network, so
	// the flow value can differ by float summation order — not bits.
	if math.Abs(sol.WErr-legacy.WErr) > 1e-9*(1+math.Abs(legacy.WErr)) {
		t.Fatalf("greedy-path WErr = %v, want %v", sol.WErr, legacy.WErr)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(80)
		d := 1 + rng.Intn(4)
		ws := randomSet(rng, n, d)
		if trial%3 == 0 {
			// ±Inf coordinates must survive the encoding.
			ws[rng.Intn(n)].P[rng.Intn(d)] = math.Inf(1 - 2*rng.Intn(2))
		}
		for _, mode := range []MatrixMode{ModeDense, ModeBlocked, ModeImplicit} {
			p, err := Prepare(ws, Options{Mode: mode})
			if err != nil {
				t.Fatalf("Prepare(%v): %v", mode, err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, p); err != nil {
				t.Fatalf("Write(%v): %v", mode, err)
			}
			q, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Read(%v): %v", mode, err)
			}
			if q.N() != p.N() || q.Dim() != p.Dim() || q.Mode() != p.Mode() {
				t.Fatalf("round trip(%v): shape changed", mode)
			}
			if !reflect.DeepEqual(q.Decomposition(), p.Decomposition()) {
				t.Fatalf("round trip(%v): decomposition changed", mode)
			}
			want, err := p.Solve()
			if err != nil {
				t.Fatalf("Solve(%v): %v", mode, err)
			}
			got, err := q.Solve()
			if err != nil {
				t.Fatalf("reread Solve(%v): %v", mode, err)
			}
			sameSolution(t, "round trip "+mode.String(), got, want)
			if q.Violations() != p.Violations() {
				t.Fatalf("round trip(%v): violations changed", mode)
			}
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	ws := randomSet(rand.New(rand.NewSource(13)), 40, 3)
	p, err := Prepare(ws, Options{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	good := buf.String()

	cases := []struct{ name, from, to string }{
		{"format", `"format":"monoclass-problem"`, `"format":"bogus"`},
		{"version", `"version":1`, `"version":9`},
		{"mode", `"mode":"dense"`, `"mode":"auto"`},
		{"label", `"labels":[`, `"labels":[7,`},
	}
	for _, c := range cases {
		mutated := bytes.Replace([]byte(good), []byte(c.from), []byte(c.to), 1)
		if bytes.Equal(mutated, []byte(good)) {
			t.Fatalf("%s: mutation did not apply", c.name)
		}
		if _, err := Read(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("%s: corrupted file accepted", c.name)
		}
	}
}

func TestChainCountViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(120)
		d := 1 + rng.Intn(3)
		ws := randomSet(rng, n, d)
		pts := pointsOf(ws)
		labels := make([]geom.Label, n)
		for i := range ws {
			labels[i] = ws[i].Label
		}
		dec := chains.Decompose(pts)
		want := domgraph.Build(pts).CountViolations(labels)
		if got := chainCountViolations(pts, labels, dec.Chains); got != want {
			t.Fatalf("trial %d: chainCountViolations = %d, want %d", trial, got, want)
		}
	}
}

func FuzzProblemRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 4; i++ {
		ws := randomSet(rng, 1+rng.Intn(30), 1+rng.Intn(3))
		for _, mode := range []MatrixMode{ModeDense, ModeImplicit} {
			p, err := Prepare(ws, Options{Mode: mode})
			if err != nil {
				f.Fatalf("seed Prepare: %v", err)
			}
			var buf bytes.Buffer
			if err := Write(&buf, p); err != nil {
				f.Fatalf("seed Write: %v", err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte(`{"format":"monoclass-problem","version":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is the contract
		}
		// Anything Read accepts must solve and survive a second trip.
		want, err := p.Solve()
		if err != nil {
			t.Fatalf("accepted problem fails to solve: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		q, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reread of own output: %v", err)
		}
		got, err := q.Solve()
		if err != nil {
			t.Fatalf("reread solve: %v", err)
		}
		if got.WErr != want.WErr || !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatal("round trip changed the solution")
		}
	})
}
