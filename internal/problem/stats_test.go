package problem

import (
	"bytes"
	"math/rand"
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/passive"
)

// TestPrepareStatsPaths pins which DecomposePath each Prepare route
// records, that exact paths carry warm-start counters consistent with
// the width, and that stage timings are populated.
func TestPrepareStatsPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(17))

	t.Run("fast-2d", func(t *testing.T) {
		p, err := Prepare(randomSet(rng, 40, 2), Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.DecomposePath != PathFast2D || !st.ExactWidth {
			t.Fatalf("stats %+v", st)
		}
	})

	t.Run("exact-dense", func(t *testing.T) {
		p, err := Prepare(randomSet(rng, 60, 3), Options{Mode: ModeDense})
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.DecomposePath != PathExactDense || !st.ExactWidth {
			t.Fatalf("stats %+v", st)
		}
		if st.Width != p.Width() || st.Mode != "dense" || st.N != 60 || st.Dim != 3 {
			t.Fatalf("stats %+v disagree with problem (width %d)", st, p.Width())
		}
		if !st.CertEarlyExit && st.Augmentations != st.SeedChains-st.Width {
			t.Fatalf("augmentations %d != seed %d - width %d", st.Augmentations, st.SeedChains, st.Width)
		}
		if st.TotalNS <= 0 || st.TotalNS < st.NetworkNS {
			t.Fatalf("timing stats %+v", st)
		}
	})

	t.Run("exact-transient", func(t *testing.T) {
		p, err := Prepare(randomSet(rng, 50, 3), Options{Mode: ModeBlocked})
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.DecomposePath != PathExactTransient || !st.ExactWidth {
			t.Fatalf("stats %+v", st)
		}
		if p.Matrix() != nil {
			t.Fatal("transient matrix retained")
		}
	})

	t.Run("greedy-fallback", func(t *testing.T) {
		p, err := Prepare(randomSet(rng, 50, 3), Options{Mode: ModeBlocked, ExactDecomposeLimit: 10})
		if err != nil {
			t.Fatal(err)
		}
		st := p.Stats()
		if st.DecomposePath != PathGreedyFallback || st.ExactWidth || p.ExactWidth() {
			t.Fatalf("stats %+v exact %v", st, p.ExactWidth())
		}
		if st.SeedChains != 0 || st.Augmentations != 0 {
			t.Fatalf("greedy fallback reported matching work: %+v", st)
		}
	})

	t.Run("adopted", func(t *testing.T) {
		ws := randomSet(rng, 40, 3)
		m := domgraph.Build(pointsOf(ws))
		p, err := Adopt(ws, m)
		if err != nil {
			t.Fatal(err)
		}
		if st := p.Stats(); st.DecomposePath != PathAdopted || !st.ExactWidth {
			t.Fatalf("stats %+v", st)
		}
	})

	t.Run("loaded", func(t *testing.T) {
		p, err := Prepare(randomSet(rng, 30, 3), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatal(err)
		}
		q, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		st := q.Stats()
		if st.DecomposePath != PathLoaded {
			t.Fatalf("stats %+v", st)
		}
		if st.TotalNS != 0 {
			t.Fatalf("loaded problem claims prepare timing: %+v", st)
		}
		if st.Width != p.Width() || st.ExactWidth != p.ExactWidth() {
			t.Fatalf("loaded stats %+v disagree with source (width %d exact %v)", st, p.Width(), p.ExactWidth())
		}
	})
}

// TestRaisedExactLimitGuard: the raised DefaultExactDecomposeLimit must
// still respect the dense-footprint guard — a tiny MaxDenseBytes forces
// the greedy fallback even under the limit.
func TestRaisedExactLimitGuard(t *testing.T) {
	if DefaultExactDecomposeLimit < 65536 {
		t.Fatalf("DefaultExactDecomposeLimit = %d, want >= 65536", DefaultExactDecomposeLimit)
	}
	rng := rand.New(rand.NewSource(23))
	p, err := Prepare(randomSet(rng, 64, 3), Options{Mode: ModeBlocked, MaxDenseBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.DecomposePath != PathGreedyFallback {
		t.Fatalf("tiny guard did not force fallback: %+v", st)
	}
}

// TestPrepareWarmStartSmoke is the CI quick-smoke: one warm-started
// exact prepare on a d=3 instance big enough to run real matching
// phases, solved end to end. make ci-smoke runs it under -race.
func TestPrepareWarmStartSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ws := randomSet(rng, 512, 3)
	p, err := Prepare(ws, Options{Mode: ModeDense})
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.DecomposePath != PathExactDense || !st.ExactWidth {
		t.Fatalf("smoke prepare took path %q (exact %v)", st.DecomposePath, st.ExactWidth)
	}
	if !st.CertEarlyExit && st.Augmentations != st.SeedChains-st.Width {
		t.Fatalf("warm-start accounting broken: %+v", st)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.WErr != legacy.WErr {
		t.Fatalf("prepared WErr %v != legacy %v", sol.WErr, legacy.WErr)
	}
}
