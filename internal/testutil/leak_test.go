package testutil

import (
	"strings"
	"testing"
	"time"
)

// fakeTB captures the failure output of the checker without failing
// the real test.
type fakeTB struct {
	cleanups []func()
	failures []string
}

func (f *fakeTB) Helper()                           {}
func (f *fakeTB) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) { f.failures = append(f.failures, format) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckGoroutinesClean(t *testing.T) {
	fake := &fakeTB{}
	CheckGoroutines(fake)
	done := make(chan struct{})
	go func() { close(done) }() // starts and exits before cleanup
	<-done
	fake.runCleanups()
	if len(fake.failures) != 0 {
		t.Fatalf("clean test flagged as leaking: %v", fake.failures)
	}
}

func TestCheckGoroutinesDetectsLeak(t *testing.T) {
	old := leakGrace
	leakGrace = 200 * time.Millisecond // the leak is deliberate; don't sit out the full grace period
	defer func() { leakGrace = old }()
	fake := &fakeTB{}
	CheckGoroutines(fake)
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop // parks until after the cleanup has run
	}()
	<-started

	doneCh := make(chan struct{})
	go func() {
		fake.runCleanups()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("leak cleanup did not return")
	}
	close(stop)
	if len(fake.failures) == 0 {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(fake.failures[0], "goroutine leak") {
		t.Fatalf("unexpected failure message: %q", fake.failures[0])
	}
}

func TestInterestingGoroutinesFiltersHarness(t *testing.T) {
	for _, g := range interestingGoroutines() {
		if strings.Contains(g, "testing.tRunner") && !strings.Contains(g, "testutil") {
			t.Fatalf("harness goroutine not filtered:\n%s", g)
		}
	}
}
