// Package testutil holds small test-only helpers shared across the
// repository's packages. Nothing here is imported by production code.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of *testing.T the leak checker needs; declared
// locally so the package adds no import edge on "testing" for callers
// that only build it.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// CheckGoroutines snapshots the set of live goroutines and registers a
// cleanup that fails the test if, after the test body finishes, extra
// goroutines beyond the snapshot are still running. Call it at the top
// of any test that starts servers, batchers, or worker pools:
//
//	func TestServer(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
//
// Because goroutines wind down asynchronously (timer callbacks, closed
// connections), the cleanup polls for up to 5 seconds before declaring
// a leak. Known-forever runtime and testing goroutines are filtered by
// stack signature, so the checker needs no external dependencies and
// stays robust to unrelated test parallelism only as long as callers
// do not run leak-checked tests with t.Parallel().
// leakGrace is how long the cleanup waits for stragglers to exit; a
// variable so the package's own tests can shrink it.
var leakGrace = 5 * time.Second

func CheckGoroutines(t TB) {
	t.Helper()
	base := map[string]int{}
	for _, g := range interestingGoroutines() {
		base[g]++
	}
	t.Cleanup(func() {
		deadline := time.Now().Add(leakGrace)
		var leaked []string
		for {
			leaked = leaked[:0]
			now := map[string]int{}
			for _, g := range interestingGoroutines() {
				now[g]++
			}
			for g, n := range now {
				if n > base[g] {
					leaked = append(leaked, fmt.Sprintf("%d extra: %s", n-base[g], g))
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("goroutine leak: %d stack(s) survived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// interestingGoroutines returns one normalized stack per live
// goroutine, excluding the runtime/testing machinery that legitimately
// outlives any single test.
func interestingGoroutines() []string {
	buf := make([]byte, 2<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" || !strings.HasPrefix(g, "goroutine ") {
			continue
		}
		if isBoringGoroutine(g) {
			continue
		}
		// Drop the header line ("goroutine 7 [running]:") so the same
		// logical goroutine matches across snapshots, and drop argument
		// hex values and line offsets that vary between dumps.
		lines := strings.Split(g, "\n")
		var sig []string
		for _, ln := range lines[1:] {
			ln = strings.TrimSpace(ln)
			if i := strings.Index(ln, "("); i > 0 && strings.HasSuffix(ln, ")") {
				ln = ln[:i]
			}
			if i := strings.LastIndex(ln, " +0x"); i > 0 {
				ln = ln[:i]
			}
			sig = append(sig, ln)
		}
		out = append(out, strings.Join(sig, "\n"))
	}
	return out
}

// isBoringGoroutine reports whether a raw stack stanza belongs to the
// test harness or runtime rather than code under test.
func isBoringGoroutine(g string) bool {
	for _, marker := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*M).",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"created by runtime.gc",
		"created by runtime/trace",
		"runtime.MHeap_Scavenger",
		"runtime.bgscavenge",
		"runtime.bgsweep",
		"runtime.forcegchelper",
		"signal.signal_recv",
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ensureSigM",
		"interestingGoroutines",
		"net/http.(*persistConn)", // idle keep-alive conns wind down on their own
		"net/http.setRequestCancel",
	} {
		if strings.Contains(g, marker) {
			return true
		}
	}
	// A goroutine parked in the runtime with no user frames.
	return !strings.Contains(g, "\n")
}
