package geom

import "testing"

// threshold1D builds the 1-D classifier of Eq. (6): h(p) = 1 iff p > tau.
func threshold1D(tau float64) ClassifyFunc {
	return func(p Point) Label {
		if p[0] > tau {
			return Positive
		}
		return Negative
	}
}

func TestErr(t *testing.T) {
	pts := []LabeledPoint{
		{P: Point{1}, Label: Negative},
		{P: Point{2}, Label: Negative},
		{P: Point{3}, Label: Positive},
		{P: Point{4}, Label: Negative}, // out of order: violates monotonicity
		{P: Point{5}, Label: Positive},
	}
	if got := Err(pts, threshold1D(2)); got != 1 { // mis-classifies only point 4
		t.Errorf("err at tau=2: got %d, want 1", got)
	}
	if got := Err(pts, threshold1D(10)); got != 2 { // misses both positives
		t.Errorf("err at tau=10: got %d, want 2", got)
	}
	if got := Err(pts, threshold1D(0)); got != 3 { // all negatives wrong
		t.Errorf("err at tau=0: got %d, want 3", got)
	}
}

func TestWErrMatchesErrOnUnitWeights(t *testing.T) {
	pts := []LabeledPoint{
		{P: Point{1}, Label: Positive},
		{P: Point{2}, Label: Negative},
		{P: Point{3}, Label: Positive},
	}
	ld := &LabeledDataset{Points: pts}
	ws := ld.Weighted()
	for _, tau := range []float64{0, 1, 2, 3, 4} {
		h := threshold1D(tau)
		if float64(Err(pts, h)) != WErr(ws, h) {
			t.Errorf("tau=%g: WErr on unit weights disagrees with Err", tau)
		}
	}
}

func TestWErrWeights(t *testing.T) {
	ws := WeightedSet{
		{P: Point{1}, Label: Positive, Weight: 100}, // mis-classified by tau=1
		{P: Point{2}, Label: Negative, Weight: 60},  // correctly classified
	}
	if got := WErr(ws, threshold1D(1)); got != 160 {
		// tau=1: h(1)=0 (wrong, +100), h(2)=1 (wrong, +60)
		t.Errorf("WErr = %g, want 160", got)
	}
	if got := WErr(ws, threshold1D(0)); got != 60 {
		// tau=0: h(1)=1 (right), h(2)=1 (wrong, +60)
		t.Errorf("WErr = %g, want 60", got)
	}
	if got := WErr(ws, threshold1D(2)); got != 100 {
		// tau=2: h(1)=0 (wrong, +100), h(2)=0 (right)
		t.Errorf("WErr = %g, want 100", got)
	}
}

func TestMislabeled(t *testing.T) {
	pts := []LabeledPoint{
		{P: Point{1}, Label: Positive},
		{P: Point{2}, Label: Negative},
	}
	got := Mislabeled(pts, threshold1D(0)) // everything classified 1
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Mislabeled = %v, want [1]", got)
	}
}

func TestMonotoneViolations(t *testing.T) {
	clean := []LabeledPoint{
		{P: Point{0, 0}, Label: Negative},
		{P: Point{1, 1}, Label: Positive},
	}
	if got := MonotoneViolations(clean); got != 0 {
		t.Errorf("clean set: %d violations, want 0", got)
	}
	dirty := []LabeledPoint{
		{P: Point{1, 1}, Label: Negative}, // dominates a positive
		{P: Point{0, 0}, Label: Positive},
		{P: Point{2, 2}, Label: Negative}, // dominates the same positive
	}
	if got := MonotoneViolations(dirty); got != 2 {
		t.Errorf("dirty set: %d violations, want 2", got)
	}
}
