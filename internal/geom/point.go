// Package geom provides the geometric foundations of monotone
// classification: d-dimensional points, the dominance partial order,
// labeled and weighted point sets, and the error functionals err_P and
// w-err_P defined in Section 1.1 of the paper.
//
// All structures are plain values; none of them carry hidden state. The
// dominance order ⪰ is the coordinate-wise order: p dominates q when
// p[i] >= q[i] on every dimension i.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in R^d. The dimensionality is the slice length.
type Point []float64

// Label is a binary class label: 0 or 1.
type Label uint8

// The two possible labels.
const (
	Negative Label = 0 // label 0: non-match / reject
	Positive Label = 1 // label 1: match / accept
)

// String returns "0" or "1".
func (l Label) String() string {
	if l == Positive {
		return "1"
	}
	return "0"
}

// Valid reports whether l is one of the two legal labels.
func (l Label) Valid() bool { return l == Negative || l == Positive }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String formats p as "(x1, x2, ..., xd)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dominates reports whether p ⪰ q, i.e. p[i] >= q[i] for every
// dimension i. A point dominates itself. Dominates panics if the two
// points have different dimensionalities, which always indicates a bug
// in the caller.
func Dominates(p, q Point) bool {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch: %d vs %d", len(p), len(q)))
	}
	for i := range p {
		if p[i] < q[i] {
			return false
		}
	}
	return true
}

// StrictlyDominates reports whether p ⪰ q and p != q.
func StrictlyDominates(p, q Point) bool {
	return Dominates(p, q) && !p.Equal(q)
}

// Comparable reports whether p and q are related under dominance in
// either direction (p ⪰ q or q ⪰ p). Two points that are not comparable
// can live together in an anti-chain.
func Comparable(p, q Point) bool {
	return Dominates(p, q) || Dominates(q, p)
}

// LabeledPoint is a point together with its (revealed) binary label.
type LabeledPoint struct {
	P     Point
	Label Label
}

// WeightedPoint is a labeled point carrying a positive finite weight,
// the unit of the weighted error w-err_P in Eq. (3) of the paper.
type WeightedPoint struct {
	P      Point
	Label  Label
	Weight float64
}

// Validate reports an error when the weight is not positive and finite
// or the label is not binary.
func (wp WeightedPoint) Validate() error {
	if !wp.Label.Valid() {
		return fmt.Errorf("geom: invalid label %d", wp.Label)
	}
	if wp.Weight <= 0 || math.IsInf(wp.Weight, 0) || math.IsNaN(wp.Weight) {
		return fmt.Errorf("geom: weight must be positive and finite, got %g", wp.Weight)
	}
	return nil
}
