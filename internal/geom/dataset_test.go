package geom

import (
	"testing"
)

func TestNewDataset(t *testing.T) {
	ds, err := NewDataset([]Point{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d, want 2/2", ds.Len(), ds.Dim())
	}
	if !ds.Point(1).Equal(Point{3, 4}) {
		t.Error("Point(1) wrong")
	}
	if _, err := NewDataset([]Point{{1, 2}, {3}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewDataset([]Point{{}}); err == nil {
		t.Error("zero-dimensional point accepted")
	}
	empty, err := NewDataset(nil)
	if err != nil || empty.Len() != 0 || empty.Dim() != 0 {
		t.Error("empty dataset mishandled")
	}
}

func TestMustDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDataset([]Point{{1}, {1, 2}})
}

func TestLabeledDataset(t *testing.T) {
	ld, err := NewLabeledDataset([]LabeledPoint{
		{P: Point{1, 1}, Label: Positive},
		{P: Point{0, 0}, Label: Negative},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ld.Len() != 2 || ld.Dim() != 2 {
		t.Error("Len/Dim wrong")
	}
	un := ld.Unlabeled()
	if un.Len() != 2 || !un.Point(0).Equal(Point{1, 1}) {
		t.Error("Unlabeled wrong")
	}
	ws := ld.Weighted()
	for _, wp := range ws {
		if wp.Weight != 1 {
			t.Error("Weighted should assign unit weights")
		}
	}
	if _, err := NewLabeledDataset([]LabeledPoint{{P: Point{1}, Label: Label(9)}}); err == nil {
		t.Error("invalid label accepted")
	}
	if _, err := NewLabeledDataset([]LabeledPoint{{P: Point{1}}, {P: Point{1, 2}}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestWeightedSetValidateAndTotal(t *testing.T) {
	ws := WeightedSet{
		{P: Point{1, 2}, Label: Positive, Weight: 3},
		{P: Point{0, 0}, Label: Negative, Weight: 2},
	}
	if err := ws.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ws.TotalWeight(); got != 5 {
		t.Errorf("TotalWeight = %g, want 5", got)
	}
	bad := WeightedSet{{P: Point{1}, Label: Positive, Weight: -1}}
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	mixed := WeightedSet{{P: Point{1}, Label: Positive, Weight: 1}, {P: Point{1, 2}, Label: Positive, Weight: 1}}
	if err := mixed.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if ws.Dim() != 2 || (WeightedSet{}).Dim() != 0 {
		t.Error("Dim wrong")
	}
}

func TestCoalesce(t *testing.T) {
	ws := WeightedSet{
		{P: Point{1, 2}, Label: Positive, Weight: 1},
		{P: Point{1, 2}, Label: Positive, Weight: 2},
		{P: Point{1, 2}, Label: Negative, Weight: 4}, // same point, other label: kept separate
		{P: Point{3, 4}, Label: Positive, Weight: 8},
	}
	got := ws.Coalesce()
	if len(got) != 3 {
		t.Fatalf("Coalesce len = %d, want 3", len(got))
	}
	if got.TotalWeight() != ws.TotalWeight() {
		t.Error("Coalesce changed total weight")
	}
	// w-err of any classifier must be preserved; spot-check two.
	allPos := func(Point) Label { return Positive }
	allNeg := func(Point) Label { return Negative }
	if WErr(ws, allPos) != WErr(got, allPos) || WErr(ws, allNeg) != WErr(got, allNeg) {
		t.Error("Coalesce changed w-err")
	}
}

func TestSortLex(t *testing.T) {
	ws := WeightedSet{
		{P: Point{2, 0}, Label: Positive, Weight: 1},
		{P: Point{1, 5}, Label: Positive, Weight: 1},
		{P: Point{1, 3}, Label: Negative, Weight: 1},
		{P: Point{1, 3}, Label: Positive, Weight: 1},
	}
	ws.SortLex()
	want := []Point{{1, 3}, {1, 3}, {1, 5}, {2, 0}}
	for i := range want {
		if !ws[i].P.Equal(want[i]) {
			t.Fatalf("position %d: got %v, want %v", i, ws[i].P, want[i])
		}
	}
	if ws[0].Label != Negative || ws[1].Label != Positive {
		t.Error("ties must be broken by label")
	}
}
