package geom

import (
	"fmt"
	"sort"
)

// Dataset is an immutable-by-convention collection of unlabeled points
// sharing one dimensionality. It is the unlabeled input P of Problem 1
// before any probing has happened.
type Dataset struct {
	pts []Point
	dim int
}

// NewDataset builds a Dataset from pts. All points must share the same
// dimensionality, which must be at least 1; otherwise an error is
// returned. The slice is retained, not copied.
func NewDataset(pts []Point) (*Dataset, error) {
	if len(pts) == 0 {
		return &Dataset{pts: nil, dim: 0}, nil
	}
	d := len(pts[0])
	if d == 0 {
		return nil, fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	for i, p := range pts {
		if len(p) != d {
			return nil, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	return &Dataset{pts: pts, dim: d}, nil
}

// MustDataset is NewDataset that panics on error; intended for tests
// and fixtures with known-good data.
func MustDataset(pts []Point) *Dataset {
	ds, err := NewDataset(pts)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of points n = |P|.
func (d *Dataset) Len() int { return len(d.pts) }

// Dim returns the dimensionality of the points (0 for an empty set).
func (d *Dataset) Dim() int { return d.dim }

// Point returns the i-th point. The returned slice must not be
// modified.
func (d *Dataset) Point(i int) Point { return d.pts[i] }

// Points returns the backing slice. The caller must not modify it.
func (d *Dataset) Points() []Point { return d.pts }

// LabeledDataset is a fully labeled point set: the input of Problem 2
// with unit weights, or the ground truth behind an oracle in Problem 1.
type LabeledDataset struct {
	Points []LabeledPoint
}

// NewLabeledDataset validates dimensional consistency and label
// validity of pts and wraps them.
func NewLabeledDataset(pts []LabeledPoint) (*LabeledDataset, error) {
	if len(pts) > 0 {
		d := len(pts[0].P)
		if d == 0 {
			return nil, fmt.Errorf("geom: zero-dimensional point at index 0")
		}
		for i, p := range pts {
			if len(p.P) != d {
				return nil, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p.P), d)
			}
			if !p.Label.Valid() {
				return nil, fmt.Errorf("geom: point %d has invalid label %d", i, p.Label)
			}
		}
	}
	return &LabeledDataset{Points: pts}, nil
}

// Len returns the number of points.
func (d *LabeledDataset) Len() int { return len(d.Points) }

// Dim returns the dimensionality (0 for an empty set).
func (d *LabeledDataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0].P)
}

// Unlabeled strips the labels, producing the Dataset visible to an
// active-learning algorithm before probing.
func (d *LabeledDataset) Unlabeled() *Dataset {
	pts := make([]Point, len(d.Points))
	for i, lp := range d.Points {
		pts[i] = lp.P
	}
	return MustDataset(pts)
}

// Weighted converts the set to a WeightedSet with unit weights, under
// which w-err coincides with err (Eq. (3) specializes to Eq. (1)).
func (d *LabeledDataset) Weighted() WeightedSet {
	ws := make(WeightedSet, len(d.Points))
	for i, lp := range d.Points {
		ws[i] = WeightedPoint{P: lp.P, Label: lp.Label, Weight: 1}
	}
	return ws
}

// WeightedSet is a fully-labeled weighted set: the input of Problem 2.
// Duplicate points are allowed (the active algorithm's sample Σ is a
// multiset); their weights simply both count.
type WeightedSet []WeightedPoint

// Validate checks every member's weight and label, and dimensional
// consistency across the set.
func (ws WeightedSet) Validate() error {
	if len(ws) == 0 {
		return nil
	}
	d := len(ws[0].P)
	if d == 0 {
		return fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	for i, wp := range ws {
		if len(wp.P) != d {
			return fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(wp.P), d)
		}
		if err := wp.Validate(); err != nil {
			return fmt.Errorf("geom: point %d: %w", i, err)
		}
	}
	return nil
}

// Dim returns the dimensionality (0 for an empty set).
func (ws WeightedSet) Dim() int {
	if len(ws) == 0 {
		return 0
	}
	return len(ws[0].P)
}

// TotalWeight returns the sum of all weights.
func (ws WeightedSet) TotalWeight() float64 {
	var sum float64
	for _, wp := range ws {
		sum += wp.Weight
	}
	return sum
}

// Coalesce merges duplicate (point, label) entries by summing weights.
// It leaves ws untouched and returns a new set. Points are compared by
// exact coordinate equality. Coalescing can shrink the max-flow
// instance Problem 2 builds, without changing w-err of any classifier.
func (ws WeightedSet) Coalesce() WeightedSet {
	type key struct {
		s     string
		label Label
	}
	idx := make(map[key]int, len(ws))
	out := make(WeightedSet, 0, len(ws))
	for _, wp := range ws {
		k := key{s: wp.P.String(), label: wp.Label}
		if j, ok := idx[k]; ok {
			out[j].Weight += wp.Weight
			continue
		}
		idx[k] = len(out)
		out = append(out, wp)
	}
	return out
}

// SortLex sorts the set lexicographically by coordinates then label;
// useful for deterministic output and testing.
func (ws WeightedSet) SortLex() {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		for k := range a.P {
			if a.P[k] != b.P[k] {
				return a.P[k] < b.P[k]
			}
		}
		return a.Label < b.Label
	})
}
