package geom

// ClassifyFunc is the minimal view of a classifier that the error
// functionals need: a total function from points to labels. The
// classifier package provides monotone implementations.
type ClassifyFunc func(Point) Label

// Err computes err_P(h) of Eq. (1): the number of labeled points whose
// label differs from h's prediction.
func Err(pts []LabeledPoint, h ClassifyFunc) int {
	errs := 0
	for _, lp := range pts {
		if h(lp.P) != lp.Label {
			errs++
		}
	}
	return errs
}

// WErr computes w-err_P(h) of Eq. (3): the total weight of
// mis-classified points.
func WErr(ws WeightedSet, h ClassifyFunc) float64 {
	var sum float64
	for _, wp := range ws {
		if h(wp.P) != wp.Label {
			sum += wp.Weight
		}
	}
	return sum
}

// Mislabeled returns the indices of points mis-classified by h, in
// input order; useful for diagnostics and tests.
func Mislabeled(pts []LabeledPoint, h ClassifyFunc) []int {
	var out []int
	for i, lp := range pts {
		if h(lp.P) != lp.Label {
			out = append(out, i)
		}
	}
	return out
}

// MonotoneViolations counts ordered pairs (i, j) with point i
// dominating point j while label(i) < label(j). A labeled set admits a
// zero-error monotone classifier if and only if the count is zero.
func MonotoneViolations(pts []LabeledPoint) int {
	count := 0
	for i := range pts {
		if pts[i].Label != Negative {
			continue
		}
		for j := range pts {
			if i == j || pts[j].Label != Positive {
				continue
			}
			if Dominates(pts[i].P, pts[j].P) {
				count++
			}
		}
	}
	return count
}
