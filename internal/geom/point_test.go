package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},  // reflexive
		{Point{2, 3}, Point{1, 2}, true},  // strict on both dims
		{Point{2, 2}, Point{1, 2}, true},  // strict on one dim
		{Point{1, 3}, Point{2, 2}, false}, // incomparable
		{Point{0, 0}, Point{1, 1}, false}, // dominated instead
		{Point{5}, Point{4}, true},        // 1-D
		{Point{4}, Point{5}, false},       // 1-D reversed
		{Point{1, 1, 1}, Point{1, 1, 0}, true},
		{Point{1, 1, -1}, Point{1, 1, 0}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDominatesDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dominates(Point{1, 2}, Point{1})
}

func TestStrictlyDominates(t *testing.T) {
	if StrictlyDominates(Point{1, 2}, Point{1, 2}) {
		t.Error("a point must not strictly dominate itself")
	}
	if !StrictlyDominates(Point{2, 2}, Point{1, 2}) {
		t.Error("(2,2) should strictly dominate (1,2)")
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(Point{1, 2}, Point{3, 4}) {
		t.Error("(1,2) and (3,4) are comparable")
	}
	if Comparable(Point{1, 3}, Point{3, 1}) {
		t.Error("(1,3) and (3,1) are incomparable")
	}
}

// Dominance must be a partial order: reflexive, antisymmetric (up to
// coordinate equality), and transitive. We verify transitivity and
// antisymmetry with testing/quick over random triples.
func TestDominancePartialOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPoint := func() Point {
		p := make(Point, 3)
		for i := range p {
			p[i] = float64(rng.Intn(5)) // small grid to force relations
		}
		return p
	}
	transitive := func() bool {
		a, b, c := randPoint(), randPoint(), randPoint()
		if Dominates(a, b) && Dominates(b, c) {
			return Dominates(a, c)
		}
		return true
	}
	antisymmetric := func() bool {
		a, b := randPoint(), randPoint()
		if Dominates(a, b) && Dominates(b, a) {
			return a.Equal(b)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(func() bool { return transitive() }, cfg); err != nil {
		t.Errorf("transitivity violated: %v", err)
	}
	if err := quick.Check(func() bool { return antisymmetric() }, cfg); err != nil {
		t.Errorf("antisymmetry violated: %v", err)
	}
}

func TestLabel(t *testing.T) {
	if Negative.String() != "0" || Positive.String() != "1" {
		t.Error("label strings wrong")
	}
	if !Negative.Valid() || !Positive.Valid() || Label(2).Valid() {
		t.Error("label validity wrong")
	}
}

func TestPointCloneEqualString(t *testing.T) {
	p := Point{1.5, -2}
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if got, want := p.String(), "(1.5, -2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if p.Equal(Point{1.5}) {
		t.Error("points of different dims must not be equal")
	}
	if p.Dim() != 2 {
		t.Error("Dim wrong")
	}
}

func TestWeightedPointValidate(t *testing.T) {
	good := WeightedPoint{P: Point{1}, Label: Positive, Weight: 2.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	bad := []WeightedPoint{
		{P: Point{1}, Label: Positive, Weight: 0},
		{P: Point{1}, Label: Positive, Weight: -1},
		{P: Point{1}, Label: Label(3), Weight: 1},
	}
	for i, wp := range bad {
		if err := wp.Validate(); err == nil {
			t.Errorf("case %d: invalid point accepted", i)
		}
	}
}
