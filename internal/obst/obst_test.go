package obst

import (
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

func TestEmptyTree(t *testing.T) {
	tr := New(rand.New(rand.NewSource(1)))
	tau, werr := tr.Best()
	if !math.IsInf(tau, -1) || werr != 0 {
		t.Errorf("empty tree Best = (%g, %g), want (-Inf, 0)", tau, werr)
	}
	if tr.Len() != 0 || tr.TotalWeight() != 0 {
		t.Error("empty tree accounting wrong")
	}
	if tr.Err(5) != 0 {
		t.Error("empty Err should be 0")
	}
}

func TestSimpleScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// One positive at 1, one negative at 2 (inverted): best is one of
	// the two single-error options.
	tr := New(rng)
	tr.Insert(1, geom.Positive, 100)
	tr.Insert(2, geom.Negative, 60)
	_, werr := tr.Best()
	if werr != 60 {
		t.Errorf("werr = %g, want 60 (predict all positive except nothing)", werr)
	}
	// Clean monotone data: negative at 1, positive at 2.
	tr = New(rng)
	tr.Insert(1, geom.Negative, 5)
	tr.Insert(2, geom.Positive, 5)
	tau, werr := tr.Best()
	if werr != 0 || tau != 1 {
		t.Errorf("Best = (%g, %g), want (1, 0)", tau, werr)
	}
}

func TestErrEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := New(rng)
	tr.Insert(1, geom.Negative, 2)
	tr.Insert(2, geom.Positive, 3)
	tr.Insert(3, geom.Negative, 4)
	// tau = -inf: negatives mis-classified: 2+4 = 6.
	if got := tr.Err(math.Inf(-1)); got != 6 {
		t.Errorf("Err(-inf) = %g, want 6", got)
	}
	// tau = 1: negative at 1 fixed -> 4.
	if got := tr.Err(1); got != 4 {
		t.Errorf("Err(1) = %g, want 4", got)
	}
	// tau = 2: also lose the positive -> 4+3 = 7.
	if got := tr.Err(2); got != 7 {
		t.Errorf("Err(2) = %g, want 7", got)
	}
	// tau = 3: all predicted negative -> 3.
	if got := tr.Err(3); got != 3 {
		t.Errorf("Err(3) = %g, want 3", got)
	}
	tau, werr := tr.Best()
	if werr != 3 || tau != 3 {
		t.Errorf("Best = (%g, %g), want (3, 3)", tau, werr)
	}
}

func TestDuplicateKeysMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New(rng)
	for i := 0; i < 10; i++ {
		tr.Insert(7, geom.Positive, 1)
		tr.Insert(7, geom.Negative, 1)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1 (equal keys merge)", tr.Len())
	}
	if tr.TotalWeight() != 20 {
		t.Errorf("TotalWeight = %g, want 20", tr.TotalWeight())
	}
	// Any threshold mis-classifies exactly one side: werr = 10.
	if _, werr := tr.Best(); werr != 10 {
		t.Errorf("werr = %g, want 10", werr)
	}
}

func TestInsertPanics(t *testing.T) {
	tr := New(rand.New(rand.NewSource(1)))
	for i, f := range []func(){
		func() { tr.Insert(1, geom.Positive, 0) },
		func() { tr.Insert(1, geom.Positive, -1) },
		func() { tr.Insert(1, geom.Positive, math.Inf(1)) },
		func() { tr.Insert(math.NaN(), geom.Positive, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// The tree must agree with the exact O(n log n) sweep solver on random
// instances, after every single insertion (the incremental guarantee).
func TestMatchesBestThreshold1DIncrementally(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tr := New(rng)
		var ws geom.WeightedSet
		for step := 0; step < 60; step++ {
			key := float64(rng.Intn(20))
			label := geom.Label(rng.Intn(2))
			weight := float64(1 + rng.Intn(5))
			tr.Insert(key, label, weight)
			ws = append(ws, geom.WeightedPoint{P: geom.Point{key}, Label: label, Weight: weight})

			_, wantErr := classifier.BestThreshold1D(ws)
			gotTau, gotErr := tr.Best()
			if math.Abs(gotErr-wantErr) > 1e-9 {
				t.Fatalf("trial %d step %d: tree err %g, sweep err %g", trial, step, gotErr, wantErr)
			}
			// The returned threshold must actually achieve the error.
			h := classifier.Threshold1D{Tau: gotTau}
			if math.Abs(geom.WErr(ws, h.Classify)-gotErr) > 1e-9 {
				t.Fatalf("trial %d step %d: tau %g does not achieve err %g", trial, step, gotTau, gotErr)
			}
		}
	}
}

// Float weights: agreement within tolerance.
func TestMatchesSweepFloatWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := New(rng)
	var ws geom.WeightedSet
	for step := 0; step < 3000; step++ {
		key := rng.Float64()
		label := geom.Label(rng.Intn(2))
		weight := rng.Float64() + 0.01
		tr.Insert(key, label, weight)
		ws = append(ws, geom.WeightedPoint{P: geom.Point{key}, Label: label, Weight: weight})
	}
	_, wantErr := classifier.BestThreshold1D(ws)
	_, gotErr := tr.Best()
	if math.Abs(gotErr-wantErr) > 1e-6*wantErr {
		t.Fatalf("tree err %g, sweep err %g", gotErr, wantErr)
	}
}

func TestLargeSortedInsertStaysBalanced(t *testing.T) {
	// Sorted insertion order is the classic BST killer; the treap must
	// stay logarithmic (this test times out badly if it degrades to a
	// path).
	rng := rand.New(rand.NewSource(7))
	tr := New(rng)
	const n = 200000
	for i := 0; i < n; i++ {
		label := geom.Negative
		if i > n/2 {
			label = geom.Positive
		}
		tr.Insert(float64(i), label, 1)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	tau, werr := tr.Best()
	if werr != 0 {
		t.Errorf("clean split should have zero error, got %g at tau=%g", werr, tau)
	}
}
