// Package obst implements the augmented binary search tree that
// footnote 2 of the paper invokes for the Õ(1/ε²)-time implementation
// of the 1-D algorithm: a balanced tree over weighted labeled keys
// that maintains, under insertion, the best 1-D monotone threshold and
// its weighted error in O(log n) per update.
//
// The classifier h^τ(x) = 1 iff x > τ mis-classifies positives at keys
// ≤ τ and negatives at keys > τ, so
//
//	w-err(h^τ) = W₀(total) + Σ_{key ≤ τ} (label==1 ? +w : -w).
//
// Writing g(τ) for the signed prefix sum, the optimum over all
// thresholds is W₀ + min(0, min_τ g(τ)) — a prefix-minimum query. The
// tree is a treap keyed by coordinate whose nodes carry their
// subtree's signed sum and minimum prefix, the standard augmentation
// that answers the query (and recovers the argmin) in O(log n).
package obst

import (
	"math"
	"math/rand"

	"monoclass/internal/geom"
)

// ThresholdTree maintains a dynamic weighted 1-D labeled set and its
// optimal monotone threshold. The zero value is not usable; construct
// with New.
type ThresholdTree struct {
	rng       *rand.Rand
	root      *node
	zeroTotal float64 // total weight of label-0 points
	total     float64 // total weight
	size      int
}

// node is one treap node. Equal keys are merged into one node
// (weights accumulate), keeping the tree a strict search tree.
type node struct {
	key      float64
	priority int64
	// signed holds this key's own contribution: +w per label-1 unit,
	// -w per label-0 unit.
	signed float64
	// sum and minPrefix are the subtree aggregates: the total signed
	// weight, and the minimum over all prefixes of the subtree's
	// in-order signed sequence.
	sum       float64
	minPrefix float64
	left      *node
	right     *node
}

// New creates an empty tree; rng drives treap priorities (determinism
// follows from the seed).
func New(rng *rand.Rand) *ThresholdTree {
	return &ThresholdTree{rng: rng}
}

// Len returns the number of distinct keys stored.
func (t *ThresholdTree) Len() int { return t.size }

// TotalWeight returns the summed weight of all inserted points.
func (t *ThresholdTree) TotalWeight() float64 { return t.total }

// update recomputes a node's aggregates from its children.
func (n *node) update() {
	n.sum = n.signed
	if n.left != nil {
		n.sum += n.left.sum
	}
	if n.right != nil {
		n.sum += n.right.sum
	}
	// Prefixes end inside the left subtree, at this node, or inside
	// the right subtree.
	leftSum := 0.0
	n.minPrefix = math.Inf(1)
	if n.left != nil {
		n.minPrefix = n.left.minPrefix
		leftSum = n.left.sum
	}
	atSelf := leftSum + n.signed
	if atSelf < n.minPrefix {
		n.minPrefix = atSelf
	}
	if n.right != nil {
		if v := atSelf + n.right.minPrefix; v < n.minPrefix {
			n.minPrefix = v
		}
	}
}

// Insert adds a point with the given key, label and positive weight.
func (t *ThresholdTree) Insert(key float64, label geom.Label, weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic("obst: weight must be positive and finite")
	}
	if math.IsNaN(key) {
		panic("obst: NaN key")
	}
	signed := weight
	if label == geom.Negative {
		signed = -weight
		t.zeroTotal += weight
	}
	t.total += weight
	t.root = t.insert(t.root, key, signed)
}

func (t *ThresholdTree) insert(n *node, key float64, signed float64) *node {
	if n == nil {
		t.size++
		nn := &node{key: key, priority: t.rng.Int63(), signed: signed}
		nn.update()
		return nn
	}
	switch {
	case key == n.key:
		n.signed += signed
	case key < n.key:
		n.left = t.insert(n.left, key, signed)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		}
	default:
		n.right = t.insert(n.right, key, signed)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		}
	}
	n.update()
	return n
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	n.update()
	l.right = n
	l.update()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	n.update()
	r.left = n
	r.update()
	return r
}

// Best returns an optimal threshold and its weighted error over the
// inserted points, in O(log n). The threshold is -Inf when predicting
// everything positive is optimal; ties prefer the smaller threshold.
func (t *ThresholdTree) Best() (tau float64, werr float64) {
	// err(-Inf) corresponds to the empty prefix (g = 0).
	if t.root == nil || t.root.minPrefix >= 0 {
		return math.Inf(-1), t.zeroTotal
	}
	tau = descend(t.root, 0)
	return tau, t.Err(tau)
}

// descend walks towards the in-order prefix of minimum signed sum,
// choosing at each node among (left subtree, this node, right subtree)
// by comparing the stored aggregates; acc is the signed sum of
// everything left of subtree n. Ties prefer the leftmost (smallest
// threshold). Comparisons use the same stored values the aggregates
// were built from, so no exact-equality on recomputed floats is
// needed.
func descend(n *node, acc float64) float64 {
	leftSum := 0.0
	leftBest := math.Inf(1)
	if n.left != nil {
		leftSum = n.left.sum
		leftBest = acc + n.left.minPrefix
	}
	atSelf := acc + leftSum + n.signed
	rightBest := math.Inf(1)
	if n.right != nil {
		rightBest = atSelf + n.right.minPrefix
	}
	switch {
	case leftBest <= atSelf && leftBest <= rightBest:
		return descend(n.left, acc)
	case atSelf <= rightBest:
		return n.key
	default:
		return descend(n.right, atSelf)
	}
}

// Err evaluates w-err(h^tau) of the current point set in O(log n).
func (t *ThresholdTree) Err(tau float64) float64 {
	return t.zeroTotal + prefixSumLE(t.root, tau)
}

// prefixSumLE returns the signed sum over keys <= tau.
func prefixSumLE(n *node, tau float64) float64 {
	var sum float64
	for n != nil {
		if n.key <= tau {
			sum += n.signed
			if n.left != nil {
				sum += n.left.sum
			}
			n = n.right
		} else {
			n = n.left
		}
	}
	return sum
}
