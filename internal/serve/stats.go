package serve

import (
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"monoclass/internal/online"
	"monoclass/internal/problem"
)

// histBuckets is the number of power-of-two batch-size histogram
// buckets: bucket i counts batches of size in (2^(i-1), 2^i], so
// bucket 0 is size 1, bucket 1 is size 2, bucket 2 is sizes 3–4, and
// the last bucket absorbs everything ≥ 2^(histBuckets-1)+1.
const histBuckets = 11

// Stats is the server's shared counter block. Every field is updated
// with atomics, and every update additionally holds mu in read mode —
// an inverted-RWMutex seqlock: concurrent writers share the read lock
// (two atomic ops of overhead, no contention between them), while
// snapshotCounters takes the write lock, excluding all in-flight
// updates. A snapshot is therefore internally consistent: it observes
// every multi-counter update (ObserveBatch touches batches,
// batchPoints, and a histogram bucket together) entirely or not at
// all, so invariants like Σhist == batches hold exactly in every
// snapshot, not just at quiescence. The shard router's /stats
// aggregation sums these snapshots across replicas and asserts exact
// totals.
type Stats struct {
	mu          sync.RWMutex // writers RLock, snapshot Lock (see above)
	requests    atomic.Int64 // points accepted for classification
	rejected    atomic.Int64 // points turned away with 429 (queue full)
	badRequests atomic.Int64 // malformed/oversized requests (4xx other than 429)
	batches     atomic.Int64 // dispatched batches (micro-batcher + client batches)
	batchPoints atomic.Int64 // points across all dispatched batches
	hist        [histBuckets]atomic.Int64
}

// ObserveBatch records one dispatched batch of the given size.
func (s *Stats) ObserveBatch(size int) {
	if size <= 0 {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.batches.Add(1)
	s.batchPoints.Add(int64(size))
	b := bits.Len(uint(size - 1)) // ceil(log2(size)); 0 for size 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	s.hist[b].Add(1)
}

// AddRequests counts n accepted classification points.
func (s *Stats) AddRequests(n int) {
	s.mu.RLock()
	s.requests.Add(int64(n))
	s.mu.RUnlock()
}

// AddRejected counts n points rejected for backpressure.
func (s *Stats) AddRejected(n int) {
	s.mu.RLock()
	s.rejected.Add(int64(n))
	s.mu.RUnlock()
}

// AddBadRequest counts one malformed request.
func (s *Stats) AddBadRequest() {
	s.mu.RLock()
	s.badRequests.Add(1)
	s.mu.RUnlock()
}

// StatsSnapshot is the JSON shape of /stats. BatchSizeHist maps the
// inclusive upper bound of each power-of-two bucket ("1", "2", "4",
// ...) to the number of batches that landed in it; empty buckets are
// omitted.
type StatsSnapshot struct {
	Requests      int64            `json:"requests"`
	Rejected      int64            `json:"rejected"`
	BadRequests   int64            `json:"bad_requests"`
	Batches       int64            `json:"batches"`
	BatchPoints   int64            `json:"batch_points"`
	MeanBatch     float64          `json:"mean_batch"`
	BatchSizeHist map[string]int64 `json:"batch_size_hist"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCap      int              `json:"queue_cap"`
	ModelVersion  int64            `json:"model_version"`
	ModelAnchors  int              `json:"model_anchors"`
	Swaps         int64            `json:"swaps"`
	AuditRejects  int64            `json:"audit_rejects"`
	UptimeMillis  int64            `json:"uptime_ms"`
	// Online reports the incremental learning pipeline; omitted when
	// online learning is not enabled.
	Online *OnlineStats `json:"online,omitempty"`
	// Prepare echoes Config.Prepare — how the served model's training
	// instance was prepared (stage timings, decomposition path,
	// warm-start counters); omitted when the server was handed a model
	// without its provenance.
	Prepare *problem.PrepareStats `json:"prepare,omitempty"`
}

// OnlineStats is the /stats section for the learning pipeline: the
// updater counters plus the intake queue gauges.
type OnlineStats struct {
	online.StatsSnapshot
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
}

// snapshotCounters fills the counter-derived fields of a snapshot.
// Taking mu exclusively makes the read a linearization point: every
// completed update is visible, no partially applied one is.
func (s *Stats) snapshotCounters(out *StatsSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Requests = s.requests.Load()
	out.Rejected = s.rejected.Load()
	out.BadRequests = s.badRequests.Load()
	out.Batches = s.batches.Load()
	out.BatchPoints = s.batchPoints.Load()
	if out.Batches > 0 {
		out.MeanBatch = float64(out.BatchPoints) / float64(out.Batches)
	}
	out.BatchSizeHist = map[string]int64{}
	for i := range s.hist {
		if n := s.hist[i].Load(); n > 0 {
			out.BatchSizeHist[bucketLabel(i)] = n
		}
	}
}

// bucketLabel renders the inclusive upper bound of histogram bucket i.
func bucketLabel(i int) string {
	if i == histBuckets-1 {
		return strconv.Itoa(1<<(histBuckets-2)+1) + "+"
	}
	return strconv.Itoa(1 << i)
}
