package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/problem"
)

// thresholdModel returns the 1-D anchor model h(x)=1 iff x >= tau.
func thresholdModel(t testing.TB, tau float64) *classifier.AnchorSet {
	t.Helper()
	h, err := classifier.NewAnchorSet(1, []geom.Point{{tau}})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRegistryInitialSnapshot(t *testing.T) {
	reg, err := NewRegistry(thresholdModel(t, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Version != 1 {
		t.Errorf("initial version = %d, want 1", snap.Version)
	}
	if reg.Dim() != 1 {
		t.Errorf("Dim = %d, want 1", reg.Dim())
	}
	if got := snap.Model.Classify(geom.Point{7}); got != geom.Positive {
		t.Errorf("initial model misclassifies: %v", got)
	}
	if reg.Swaps() != 0 || reg.AuditRejects() != 0 {
		t.Errorf("fresh registry has counters swaps=%d rejects=%d", reg.Swaps(), reg.AuditRejects())
	}
}

func TestRegistryNilModels(t *testing.T) {
	if _, err := NewRegistry(nil, nil); err == nil {
		t.Error("NewRegistry(nil) accepted")
	}
	reg, _ := NewRegistry(thresholdModel(t, 0), nil)
	if _, err := reg.Swap(nil); err == nil {
		t.Error("Swap(nil) accepted")
	}
}

func TestRegistrySwapAssignsSequentialVersions(t *testing.T) {
	reg, _ := NewRegistry(thresholdModel(t, 0), nil)
	for want := int64(2); want <= 6; want++ {
		v, err := reg.Swap(thresholdModel(t, float64(want)))
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("swap assigned version %d, want %d", v, want)
		}
		if reg.Version() != want {
			t.Fatalf("Version() = %d after swap to %d", reg.Version(), want)
		}
	}
	if reg.Swaps() != 5 {
		t.Errorf("Swaps = %d, want 5", reg.Swaps())
	}
}

func TestRegistryRejectsDimensionMismatch(t *testing.T) {
	reg, _ := NewRegistry(thresholdModel(t, 0), nil)
	bad, err := classifier.NewAnchorSet(3, []geom.Point{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Swap(bad); err == nil {
		t.Fatal("dimension-mismatched swap accepted")
	}
	if reg.Version() != 1 {
		t.Errorf("failed swap advanced the version to %d", reg.Version())
	}
}

func TestRegistryAuditGate(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	audit := func(old, next *classifier.AnchorSet) error {
		calls++
		if old == nil {
			t.Error("audit called with nil old model")
		}
		if len(next.Anchors()) > 1 {
			return boom
		}
		return nil
	}
	reg, _ := NewRegistry(thresholdModel(t, 0), audit)

	if _, err := reg.Swap(thresholdModel(t, 1)); err != nil {
		t.Fatalf("clean swap rejected: %v", err)
	}
	multi, _ := classifier.NewAnchorSet(1, nil) // 0 anchors: fine
	if _, err := reg.Swap(multi); err != nil {
		t.Fatalf("const-negative swap rejected: %v", err)
	}

	// Anchor sets prune to antichains, so a >1-anchor model needs 2-D;
	// use a fresh 2-D registry to exercise the veto path.
	reg2d, _ := NewRegistry(classifier.MustAnchorSet(2, []geom.Point{{0, 0}}), audit)
	wide := classifier.MustAnchorSet(2, []geom.Point{{0, 5}, {5, 0}})
	_, err := reg2d.Swap(wide)
	if !errors.Is(err, boom) {
		t.Fatalf("audit veto not propagated: %v", err)
	}
	if reg2d.Version() != 1 {
		t.Errorf("vetoed swap advanced version to %d", reg2d.Version())
	}
	if reg2d.AuditRejects() != 1 {
		t.Errorf("AuditRejects = %d, want 1", reg2d.AuditRejects())
	}
	if calls == 0 {
		t.Error("audit gate never ran")
	}
}

func TestSpotAuditAcceptsAnchorSets(t *testing.T) {
	audit := SpotAudit([]geom.Point{{0, 0}, {1, 1}, {2, 0}})
	old := classifier.MustAnchorSet(2, []geom.Point{{1, 1}})
	next := classifier.MustAnchorSet(2, []geom.Point{{0, 2}, {2, 0}})
	if err := audit(old, next); err != nil {
		t.Errorf("SpotAudit rejected a valid anchor model: %v", err)
	}
}

func TestHoldoutAudit(t *testing.T) {
	holdout := geom.WeightedSet{
		{P: geom.Point{0}, Label: geom.Negative, Weight: 1},
		{P: geom.Point{10}, Label: geom.Positive, Weight: 3},
	}
	audit := HoldoutAudit(holdout, 0.5)
	good := thresholdModel(t, 5) // classifies both correctly
	if err := audit(nil, good); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
	bad := thresholdModel(t, 100) // misses the weight-3 positive
	if err := audit(nil, bad); err == nil {
		t.Error("over-budget model accepted")
	}
}

func TestProblemAudits(t *testing.T) {
	ws := geom.WeightedSet{
		{P: geom.Point{0}, Label: geom.Negative, Weight: 1},
		{P: geom.Point{10}, Label: geom.Positive, Weight: 3},
	}
	p, err := problem.Prepare(ws, problem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spot := ProblemSpotAudit(p)
	old := thresholdModel(t, 5)
	if err := spot(old, thresholdModel(t, 3)); err != nil {
		t.Errorf("ProblemSpotAudit rejected a valid model: %v", err)
	}

	budget := ProblemHoldoutAudit(p, 0.5)
	if err := budget(nil, thresholdModel(t, 5)); err != nil {
		t.Errorf("in-budget model rejected: %v", err)
	}
	if err := budget(nil, thresholdModel(t, 100)); err == nil {
		t.Error("over-budget model accepted")
	}

	// Negative budget: "no worse than the instance optimum" — here the
	// instance is separable, so k* = 0 and any miss must be vetoed.
	opt := ProblemHoldoutAudit(p, -1)
	if err := opt(nil, thresholdModel(t, 5)); err != nil {
		t.Errorf("optimal model rejected against k*: %v", err)
	}
	if err := opt(nil, thresholdModel(t, 100)); err == nil {
		t.Error("suboptimal model accepted against k*")
	}
}

func TestChainAudits(t *testing.T) {
	var order []string
	mk := func(name string, fail bool) AuditFunc {
		return func(_, _ *classifier.AnchorSet) error {
			order = append(order, name)
			if fail {
				return fmt.Errorf("%s failed", name)
			}
			return nil
		}
	}
	chain := ChainAudits(mk("a", false), nil, mk("b", true), mk("c", false))
	err := chain(nil, nil)
	if err == nil || err.Error() != "b failed" {
		t.Fatalf("chain error = %v, want b's", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("chain ran %v, want [a b]", order)
	}
}

// TestRegistrySwapStorm races many swappers against many readers under
// the race detector: versions must stay monotone per reader, every
// snapshot must be internally coherent (version v serves threshold v),
// and the final swap count must match successes.
func TestRegistrySwapStorm(t *testing.T) {
	reg, _ := NewRegistry(thresholdModel(t, 1), nil)
	const (
		swappers = 4
		readers  = 8
		perSwap  = 50
	)
	var wrong atomic.Int64
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(readers)
	for i := 0; i < readers; i++ {
		go func() {
			defer readerWG.Done()
			lastVersion := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				if snap.Version < lastVersion {
					wrong.Add(1) // versions must never run backwards
				}
				lastVersion = snap.Version
				// Coherence: version v's model is the threshold at v, so
				// v-0.5 is negative and v+0.5 positive.
				if snap.Model.Classify(geom.Point{float64(snap.Version) - 0.5}) != geom.Negative ||
					snap.Model.Classify(geom.Point{float64(snap.Version) + 0.5}) != geom.Positive {
					wrong.Add(1)
				}
			}
		}()
	}

	// Swappers keep the version→threshold correspondence exact by
	// serializing the read-version/build/swap step through a test-side
	// mutex (the registry itself orders publications, but the model for
	// version v+1 must be built against the version read as v).
	var swapWG sync.WaitGroup
	swapWG.Add(swappers)
	var successes atomic.Int64
	var buildMu sync.Mutex
	for i := 0; i < swappers; i++ {
		go func() {
			defer swapWG.Done()
			for k := 0; k < perSwap; k++ {
				buildMu.Lock()
				v := reg.Version()
				got, err := reg.Swap(thresholdModel(t, float64(v+1)))
				buildMu.Unlock()
				if err != nil || got != v+1 {
					wrong.Add(1)
					continue
				}
				successes.Add(1)
			}
		}()
	}
	swapWG.Wait()
	close(stop)
	readerWG.Wait()

	if wrong.Load() != 0 {
		t.Fatalf("%d coherence violations during the storm", wrong.Load())
	}
	if reg.Swaps() != successes.Load() {
		t.Errorf("Swaps = %d but %d swaps succeeded", reg.Swaps(), successes.Load())
	}
	if reg.Version() != successes.Load()+1 {
		t.Errorf("final version %d, want %d", reg.Version(), successes.Load()+1)
	}
}
