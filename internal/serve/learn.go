package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/online"
)

// OnlineConfig enables the incremental learning pipeline: a POST
// /learn endpoint feeding an online.Updater whose models are promoted
// through the registry behind the configured Audit gate.
type OnlineConfig struct {
	// Initial is the training multiset the updater starts from —
	// normally the set the server's initial model was trained on, so
	// the updater's internal state matches what is being served. May
	// be empty for a cold start (the initial model — ConstNegative for
	// a blank slate — still fixes the dimensionality).
	Initial geom.WeightedSet
	// RebuildEvery, MaxDrift, DisableInterim tune the rebuild policy
	// (see online.Config).
	RebuildEvery   int
	MaxDrift       float64
	DisableInterim bool
	// QueueCap and MaxBatch tune the delta intake queue (see
	// online.PipelineConfig).
	QueueCap int
	MaxBatch int
}

// newLearner builds the updater and pipeline for a server whose
// registry already exists; every model the updater produces is offered
// to the registry, so the Audit gate vets interim and exact models
// alike.
func (s *Server) newLearner(oc *OnlineConfig) error {
	dim := s.reg.Dim()
	for i, wp := range oc.Initial {
		if len(wp.P) != dim {
			return fmt.Errorf("serve: online initial point %d has dimension %d, model serves %d", i, len(wp.P), dim)
		}
	}
	u, err := online.NewUpdater(dim, oc.Initial, online.Config{
		RebuildEvery:   oc.RebuildEvery,
		MaxDrift:       oc.MaxDrift,
		DisableInterim: oc.DisableInterim,
		Publish: func(m *classifier.AnchorSet) error {
			_, err := s.reg.Swap(m)
			return err
		},
	})
	if err != nil {
		return err
	}
	s.pipe = online.NewPipeline(u, online.PipelineConfig{QueueCap: oc.QueueCap, MaxBatch: oc.MaxBatch})
	return nil
}

// Learner exposes the online pipeline (nil when OnlineConfig was not
// set), for CLI wiring and tests.
func (s *Server) Learner() *online.Pipeline { return s.pipe }

// ---- wire types ----

type learnDelta struct {
	Op     string    `json:"op"` // "insert" or "delete"
	Point  []float64 `json:"point"`
	Label  int       `json:"label"`
	Weight float64   `json:"weight,omitempty"` // insert only
}

type learnRequest struct {
	Deltas []learnDelta `json:"deltas"`
}

type learnResponse struct {
	Accepted   int `json:"accepted"`
	QueueDepth int `json:"queue_depth"`
}

// handleLearn enqueues a batch of deltas for asynchronous application:
// 202 when everything was queued, 400 on the first malformed delta
// (none queued — validation is all-or-nothing), 429 with the accepted
// count when the bounded queue filled mid-batch, 404 when online
// learning is not enabled.
func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	if s.pipe == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "online learning not enabled"})
		return
	}
	var req learnRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Deltas) == 0 {
		s.badRequest(w, "empty delta list")
		return
	}
	if len(req.Deltas) > s.cfg.MaxClientBatch {
		s.stats.AddBadRequest()
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d deltas exceeds limit %d", len(req.Deltas), s.cfg.MaxClientBatch)})
		return
	}
	ds := make([]online.Delta, len(req.Deltas))
	for i, ld := range req.Deltas {
		var op online.Op
		switch ld.Op {
		case "insert":
			op = online.OpInsert
		case "delete":
			op = online.OpDelete
		default:
			s.badRequest(w, fmt.Sprintf("delta %d: unknown op %q", i, ld.Op))
			return
		}
		ds[i] = online.Delta{Op: op, Point: geom.Point(ld.Point), Label: geom.Label(ld.Label), Weight: ld.Weight}
	}
	accepted, err := s.pipe.EnqueueBatch(ds)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, learnResponse{Accepted: accepted, QueueDepth: s.pipe.QueueDepth()})
	case errors.Is(err, online.ErrQueueFull):
		s.stats.AddRejected(len(ds) - accepted)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.Batch.MaxWait)))
		writeJSON(w, http.StatusTooManyRequests, learnResponse{Accepted: accepted, QueueDepth: s.pipe.QueueDepth()})
	case errors.Is(err, online.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		var be *online.BatchError
		if errors.As(err, &be) {
			s.badRequest(w, fmt.Sprintf("delta %d: %v", be.Index, be.Err))
			return
		}
		s.badRequest(w, err.Error())
	}
}
