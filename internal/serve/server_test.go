package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/testutil"
)

// newTestServer builds a Server over the 1-D threshold-5 model and
// mounts it under httptest, tearing both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(thresholdModel(t, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv, hs
}

// postJSON posts body to url and decodes the JSON response into out,
// returning the status code.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestServerClassify(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, hs := newTestServer(t, Config{})
	var res classifyResponse
	if code := postJSON(t, hs.URL+"/classify", `{"point":[7]}`, &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if res.Label != 1 || res.Version != 1 {
		t.Errorf("classify(7) = %+v, want label 1 version 1", res)
	}
	if code := postJSON(t, hs.URL+"/classify", `{"point":[3]}`, &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if res.Label != 0 {
		t.Errorf("classify(3) label = %d, want 0", res.Label)
	}
}

func TestServerClassifyBatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, hs := newTestServer(t, Config{})
	var res batchResponse
	if code := postJSON(t, hs.URL+"/classify/batch", `{"points":[[1],[5],[9]]}`, &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(res.Labels) != 3 || res.Labels[0] != 0 || res.Labels[1] != 1 || res.Labels[2] != 1 {
		t.Errorf("batch labels = %v, want [0 1 1]", res.Labels)
	}
	if res.Version != 1 {
		t.Errorf("batch version = %d", res.Version)
	}
}

func TestServerBadRequests(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, hs := newTestServer(t, Config{MaxClientBatch: 4})
	cases := []struct {
		name, path, body string
		wantCode         int
	}{
		{"garbage", "/classify", `{`, 400},
		{"unknown field", "/classify", `{"pt":[1]}`, 400},
		{"wrong dim", "/classify", `{"point":[1,2]}`, 400},
		{"empty point", "/classify", `{"point":[]}`, 400},
		{"empty batch", "/classify/batch", `{"points":[]}`, 400},
		{"dim mismatch inside batch", "/classify/batch", `{"points":[[1],[1,2]]}`, 400},
		{"oversized batch", "/classify/batch", `{"points":[[1],[2],[3],[4],[5]]}`, 413},
		{"model garbage", "/model", `{"format":"nope"}`, 400},
	}
	for _, tc := range cases {
		var eresp errorResponse
		if code := postJSON(t, hs.URL+tc.path, tc.body, &eresp); code != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.wantCode)
		}
		if eresp.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.BadRequests != int64(len(cases)) {
		t.Errorf("bad_requests = %d, want %d", snap.BadRequests, len(cases))
	}
	// GET on a POST-only route must 405 under the method-aware mux.
	resp, err := http.Get(hs.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /classify status %d, want 405", resp.StatusCode)
	}
	_ = srv
}

func TestServerModelRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, hs := newTestServer(t, Config{})

	// GET returns the serving model with its version header.
	resp, err := http.Get(hs.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Model-Version"); got != "1" {
		t.Errorf("X-Model-Version = %q, want 1", got)
	}
	m, err := classifier.ReadModel(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET /model body does not parse: %v", err)
	}
	if m.Dim() != 1 || len(m.Anchors()) != 1 || m.Anchors()[0][0] != 5 {
		t.Errorf("served model = %v", m)
	}

	// POST a new model; classifies must flip over to it.
	var buf bytes.Buffer
	if err := classifier.WriteModel(&buf, thresholdModel(t, 100)); err != nil {
		t.Fatal(err)
	}
	var swap swapResponse
	if code := postJSON(t, hs.URL+"/model", buf.String(), &swap); code != 200 {
		t.Fatalf("swap status %d", code)
	}
	if swap.Version != 2 || swap.Dim != 1 || swap.Anchors != 1 {
		t.Errorf("swap response = %+v", swap)
	}
	var res classifyResponse
	postJSON(t, hs.URL+"/classify", `{"point":[7]}`, &res)
	if res.Label != 0 || res.Version != 2 {
		t.Errorf("after swap classify(7) = %+v, want label 0 version 2", res)
	}
	if srv.Registry().Swaps() != 1 {
		t.Errorf("Swaps = %d", srv.Registry().Swaps())
	}

	// Dimension mismatch → 422, version unchanged.
	buf.Reset()
	classifier.WriteModel(&buf, classifier.MustAnchorSet(2, []geom.Point{{1, 1}}))
	var eresp errorResponse
	if code := postJSON(t, hs.URL+"/model", buf.String(), &eresp); code != 422 {
		t.Fatalf("mismatched swap status %d, want 422", code)
	}
	if srv.Registry().Version() != 2 {
		t.Errorf("failed swap moved version to %d", srv.Registry().Version())
	}
}

func TestServerAuditGateOverHTTP(t *testing.T) {
	testutil.CheckGoroutines(t)
	holdout := geom.WeightedSet{
		{P: geom.Point{0}, Label: geom.Negative, Weight: 1},
		{P: geom.Point{10}, Label: geom.Positive, Weight: 1},
	}
	srv, hs := newTestServer(t, Config{Audit: HoldoutAudit(holdout, 0)})

	var buf bytes.Buffer
	classifier.WriteModel(&buf, thresholdModel(t, 50)) // misclassifies the positive
	var eresp errorResponse
	if code := postJSON(t, hs.URL+"/model", buf.String(), &eresp); code != 422 {
		t.Fatalf("audit-failing swap status %d, want 422", code)
	}
	if !strings.Contains(eresp.Error, "audit gate") {
		t.Errorf("error %q does not mention the audit gate", eresp.Error)
	}
	if srv.Registry().AuditRejects() != 1 {
		t.Errorf("AuditRejects = %d", srv.Registry().AuditRejects())
	}

	buf.Reset()
	classifier.WriteModel(&buf, thresholdModel(t, 5)) // classifies holdout perfectly
	if code := postJSON(t, hs.URL+"/model", buf.String(), nil); code != 200 {
		t.Fatalf("audit-passing swap status %d", code)
	}
}

func TestServerHealthzAndStats(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, hs := newTestServer(t, Config{})
	var health struct {
		Status  string `json:"status"`
		Version int64  `json:"version"`
	}
	if code := getJSON(t, hs.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if health.Status != "ok" || health.Version != 1 {
		t.Errorf("healthz = %+v", health)
	}

	for i := 0; i < 5; i++ {
		postJSON(t, hs.URL+"/classify", fmt.Sprintf(`{"point":[%d]}`, i), nil)
	}
	postJSON(t, hs.URL+"/classify/batch", `{"points":[[1],[2],[3]]}`, nil)

	var snap StatsSnapshot
	if code := getJSON(t, hs.URL+"/stats", &snap); code != 200 {
		t.Fatalf("stats status %d", code)
	}
	if snap.Requests != 8 {
		t.Errorf("requests = %d, want 8", snap.Requests)
	}
	if snap.Batches < 2 { // ≥1 micro-batch + 1 client batch
		t.Errorf("batches = %d, want ≥ 2", snap.Batches)
	}
	if snap.BatchPoints != 8 {
		t.Errorf("batch_points = %d, want 8", snap.BatchPoints)
	}
	if snap.ModelVersion != 1 || snap.QueueCap == 0 {
		t.Errorf("snapshot = %+v", snap)
	}
}

// TestServerBackpressure parks the single worker behind a blocking
// snapshot source, fills the one-slot queue, and checks the
// 429 + Retry-After contract on the HTTP surface deterministically.
func TestServerBackpressure(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(thresholdModel(t, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Replace the server's batcher (tests are in-package) with one whose
	// source parks the worker until released: the first request wedges
	// the worker, the second fills the queue, the third must bounce.
	release := make(chan struct{})
	parked := make(chan struct{})
	var once sync.Once
	reg := srv.Registry()
	parkingSrc := func() (classifier.Classifier, int64) {
		once.Do(func() { close(parked) })
		<-release
		snap := reg.Snapshot()
		return snap.Model, snap.Version
	}
	srv.bat.Close()
	srv.bat = NewBatcher(parkingSrc, BatcherConfig{MaxBatch: 1, MaxWait: -1, QueueCap: 1, Workers: 1}, srv.stats)

	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	codes := make(chan int, 2)
	send := func() {
		resp, err := http.Post(hs.URL+"/classify", "application/json", strings.NewReader(`{"point":[9]}`))
		if err != nil {
			codes <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	go send() // wedges the worker
	<-parked
	go send() // sits in the queue
	deadline := time.Now().Add(5 * time.Second)
	for srv.bat.QueueDepth() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.bat.QueueDepth() != 1 {
		t.Fatal("second request never queued")
	}

	// Queue full: this one must be rejected with 429 + Retry-After ≥ 1.
	resp, err := http.Post(hs.URL+"/classify", "application/json", strings.NewReader(`{"point":[9]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status %d (body %s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 without a positive Retry-After (%q)", ra)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != 200 {
			t.Errorf("parked request finished with %d, want 200", code)
		}
	}
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.Rejected != 1 {
		t.Errorf("stats rejected = %d, want 1", snap.Rejected)
	}
	if snap.Requests != 2 {
		t.Errorf("stats requests = %d, want 2", snap.Requests)
	}
}

// TestServerStartShutdown exercises the real listener path: Start on
// an ephemeral port, serve traffic, shut down gracefully, and verify
// no goroutines outlive Shutdown.
func TestServerStartShutdown(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(thresholdModel(t, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("double Start accepted")
	}
	url := "http://" + addr.String()
	var res classifyResponse
	if code := postJSON(t, url+"/classify", `{"point":[9]}`, &res); code != 200 || res.Label != 1 {
		t.Fatalf("classify over real listener: code %d res %+v", code, res)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The listener must be gone.
	if _, err := http.Post(url+"/classify", "application/json", strings.NewReader(`{"point":[9]}`)); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
	// Shutdown again is a no-op.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}
