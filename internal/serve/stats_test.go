package serve

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsSnapshotConsistent hammers the counter block from many
// writers while a snapshotter reads mid-storm, asserting every
// snapshot is internally consistent — not merely eventually right.
// Each writer counts 3 requests and then records one size-3 batch per
// iteration, so a consistent snapshot must satisfy, exactly:
//
//	Σ batch_size_hist == batches
//	batch_points      == 3 · batches
//
// and, because AddRequests happens-before the matching ObserveBatch,
//
//	batch_points ≤ requests ≤ batch_points + 3·writers
//
// With the pre-fix independent atomics, a snapshot taken between the
// batches.Add and batchPoints.Add of one ObserveBatch violates the
// exact equalities; the inverted-RWMutex seqlock makes each update
// atomic with respect to snapshotCounters.
func TestStatsSnapshotConsistent(t *testing.T) {
	stats := &Stats{}
	const (
		writers = 8
		perW    = 5000
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				stats.AddRequests(3)
				stats.ObserveBatch(3)
			}
		}()
	}

	var snaps int
	for !stop.Load() {
		var snap StatsSnapshot
		stats.snapshotCounters(&snap)
		snaps++
		var histSum int64
		for _, n := range snap.BatchSizeHist {
			histSum += n
		}
		if histSum != snap.Batches {
			t.Fatalf("snapshot %d: Σhist = %d, batches = %d", snaps, histSum, snap.Batches)
		}
		if snap.BatchPoints != 3*snap.Batches {
			t.Fatalf("snapshot %d: batch_points = %d, want 3·batches = %d", snaps, snap.BatchPoints, 3*snap.Batches)
		}
		if snap.Requests < snap.BatchPoints || snap.Requests > snap.BatchPoints+3*writers {
			t.Fatalf("snapshot %d: requests = %d outside [batch_points, batch_points+3·writers] = [%d, %d]",
				snaps, snap.Requests, snap.BatchPoints, snap.BatchPoints+3*writers)
		}
		if snap.Batches == writers*perW {
			stop.Store(true)
		}
	}
	wg.Wait()

	// Final totals are exact.
	var snap StatsSnapshot
	stats.snapshotCounters(&snap)
	if snap.Batches != writers*perW || snap.BatchPoints != 3*writers*perW || snap.Requests != 3*writers*perW {
		t.Fatalf("final totals: batches=%d points=%d requests=%d, want %d/%d/%d",
			snap.Batches, snap.BatchPoints, snap.Requests, writers*perW, 3*writers*perW, 3*writers*perW)
	}
	t.Logf("%d mid-storm snapshots, all consistent", snaps)
}

// TestStatsMeanBatchConsistent checks the derived mean is computed
// from one coherent (batches, batchPoints) pair: with every observed
// batch of size 4, the mean must be exactly 4 in every snapshot.
func TestStatsMeanBatchConsistent(t *testing.T) {
	stats := &Stats{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			stats.ObserveBatch(4)
		}
	}()
	for {
		var snap StatsSnapshot
		stats.snapshotCounters(&snap)
		if snap.Batches > 0 && snap.MeanBatch != 4 {
			t.Fatalf("mean batch %g over %d batches, want exactly 4", snap.MeanBatch, snap.Batches)
		}
		select {
		case <-done:
			return
		default:
		}
	}
}
