package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/testutil"
)

// stressN scales the stress workloads: the acceptance floor is 10k
// classifies against ≥10 swaps; SERVE_STRESS_N raises it for soaks.
func stressN() int {
	if s := os.Getenv("SERVE_STRESS_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 10000
}

// TestHotSwapStorm is the acceptance-criteria stress test: 64
// classifier goroutines push ≥10k points through the micro-batcher
// while a swapper hot-swaps ≥10 model versions. Model for version v is
// the 1-D threshold at v, so a response is correct iff its label
// matches its claimed version's model — and the claimed version must
// lie inside the [version-before-submit, version-after-response]
// window. Zero tolerance on both, plus zero goroutine leaks after
// shutdown. Run under -race (make race covers ./...).
func TestHotSwapStorm(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg, err := NewRegistry(thresholdModel(t, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := &Stats{}
	src := func() (classifier.Classifier, int64) {
		snap := reg.Snapshot()
		return snap.Model, snap.Version
	}
	b := NewBatcher(src, BatcherConfig{MaxBatch: 64, MaxWait: 200 * time.Microsecond, QueueCap: 4096, Workers: 4}, stats)

	const (
		classifiers = 64
		minSwaps    = 10
	)
	total := stressN()
	perWorker := (total + classifiers - 1) / classifiers

	var (
		classified atomic.Int64
		violations atomic.Int64
		rejects    atomic.Int64
		stopSwaps  = make(chan struct{})
		swapsDone  atomic.Int64
	)

	// Swapper: version v+1 always carries threshold v+1, so readers can
	// verify labels against the claimed version alone.
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopSwaps:
				return
			default:
			}
			v := reg.Version()
			if _, err := reg.Swap(thresholdModel(t, float64(v+1))); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
			swapsDone.Add(1)
			time.Sleep(200 * time.Microsecond) // spread swaps across the classify window
		}
	}()

	var wg sync.WaitGroup
	wg.Add(classifiers)
	for w := 0; w < classifiers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				// Query points at half-integers so every version labels
				// them unambiguously: expected = x > threshold(v).
				x := float64(rng.Intn(2*minSwaps)) + 0.5
				vLo := reg.Version()
				res, err := b.Submit(context.Background(), geom.Point{x})
				if err == ErrQueueFull {
					rejects.Add(1)
					continue
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				vHi := reg.Version()
				classified.Add(1)
				if res.Version < vLo || res.Version > vHi {
					violations.Add(1)
					t.Errorf("response version %d outside live window [%d,%d]", res.Version, vLo, vHi)
				}
				want := geom.Negative
				if x >= float64(res.Version) {
					want = geom.Positive
				}
				if res.Label != want {
					violations.Add(1)
					t.Errorf("point %g labeled %v by version %d, want %v", x, res.Label, res.Version, want)
				}
			}
		}(w)
	}
	wg.Wait()
	// Keep swapping until the floor is met (it virtually always is
	// already), then stop; bail rather than hang if the swapper died.
	for bail := time.Now().Add(10 * time.Second); swapsDone.Load() < minSwaps && time.Now().Before(bail); {
		time.Sleep(time.Millisecond)
	}
	close(stopSwaps)
	swapWG.Wait()
	b.Close()

	if violations.Load() != 0 {
		t.Fatalf("%d incorrect responses", violations.Load())
	}
	if got := classified.Load(); got < int64(total)-rejects.Load() {
		t.Errorf("classified %d of %d (rejects %d)", got, total, rejects.Load())
	}
	if swapsDone.Load() < minSwaps {
		t.Errorf("only %d swaps completed, want ≥ %d", swapsDone.Load(), minSwaps)
	}
	if reg.Swaps() != swapsDone.Load() {
		t.Errorf("registry counted %d swaps, swapper did %d", reg.Swaps(), swapsDone.Load())
	}
	var snap StatsSnapshot
	stats.snapshotCounters(&snap)
	if snap.BatchPoints != classified.Load() {
		t.Errorf("batcher processed %d points, %d were answered", snap.BatchPoints, classified.Load())
	}
	t.Logf("storm: %d classified, %d swaps, %d rejects, %d batches (mean %.1f)",
		classified.Load(), swapsDone.Load(), rejects.Load(), snap.Batches, snap.MeanBatch)
}

// TestHTTPSoak mirrors the conformance harness's seeded style on the
// HTTP surface: a seeded mixed workload of classifies, client batches,
// hot swaps, stats polls, and malformed requests, with invariant
// checks at the end. SERVE_SOAK_SECONDS extends the default
// short-mode-friendly duration.
func TestHTTPSoak(t *testing.T) {
	testutil.CheckGoroutines(t)
	seconds := 2
	if s := os.Getenv("SERVE_SOAK_SECONDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			seconds = v
		}
	} else if testing.Short() {
		seconds = 1
	}

	srv, err := NewServer(thresholdModel(t, 1), Config{
		Batch: BatcherConfig{MaxBatch: 32, MaxWait: time.Millisecond, QueueCap: 2048, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	deadline := time.Now().Add(time.Duration(seconds) * time.Second)
	const clients = 16
	var (
		ok200    atomic.Int64
		ok429    atomic.Int64
		bad4xx   atomic.Int64
		swapOK   atomic.Int64
		protocol atomic.Int64 // violations of the response contract
	)
	reg := srv.Registry()

	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) * 7919))
			client := &http.Client{}
			for time.Now().Before(deadline) {
				switch op := rng.Intn(10); {
				case op < 5: // single classify
					x := float64(rng.Intn(40)) + 0.5
					vLo := reg.Version()
					resp, err := client.Post(hs.URL+"/classify", "application/json",
						strings.NewReader(fmt.Sprintf(`{"point":[%g]}`, x)))
					if err != nil {
						protocol.Add(1)
						continue
					}
					var res classifyResponse
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case 200:
						ok200.Add(1)
						if json.Unmarshal(data, &res) != nil {
							protocol.Add(1)
							continue
						}
						vHi := reg.Version()
						if res.Version < vLo || res.Version > vHi {
							protocol.Add(1)
						}
						want := 0
						if x >= float64(res.Version) {
							want = 1
						}
						if res.Label != want {
							protocol.Add(1)
						}
					case 429:
						ok429.Add(1)
					default:
						protocol.Add(1)
					}
				case op < 7: // client batch
					var pts []string
					for i := 0; i < 1+rng.Intn(8); i++ {
						pts = append(pts, fmt.Sprintf("[%g]", float64(rng.Intn(40))+0.5))
					}
					resp, err := client.Post(hs.URL+"/classify/batch", "application/json",
						strings.NewReader(`{"points":[`+strings.Join(pts, ",")+`]}`))
					if err != nil {
						protocol.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == 200 {
						ok200.Add(1)
					} else {
						protocol.Add(1)
					}
				case op < 8: // hot swap, keeping threshold == version
					// The label contract needs the claimed version's
					// threshold to be knowable, so swaps are serialized
					// and always promote threshold v+1 as version v+1.
					swapMu.Lock()
					v := reg.Version()
					var body bytes.Buffer
					classifier.WriteModel(&body, thresholdModel(t, float64(v+1)))
					resp, err := client.Post(hs.URL+"/model", "application/json", &body)
					swapMu.Unlock()
					if err != nil {
						protocol.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == 200 {
						swapOK.Add(1)
					} else {
						protocol.Add(1)
					}
				case op < 9: // stats / healthz poll
					url := hs.URL + "/stats"
					if rng.Intn(2) == 0 {
						url = hs.URL + "/healthz"
					}
					resp, err := client.Get(url)
					if err != nil {
						protocol.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						protocol.Add(1)
					}
				default: // hostile input must 4xx, never 5xx
					bodies := []string{`{`, `{"point":"x"}`, `{"point":[1,2,3]}`, `{"points":[]}`, `null`}
					resp, err := client.Post(hs.URL+"/classify", "application/json",
						strings.NewReader(bodies[rng.Intn(len(bodies))]))
					if err != nil {
						protocol.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode < 400 || resp.StatusCode >= 500 {
						protocol.Add(1)
					} else {
						bad4xx.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	if protocol.Load() != 0 {
		t.Fatalf("%d protocol violations during soak", protocol.Load())
	}
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.Swaps != swapOK.Load() {
		t.Errorf("stats swaps = %d, clients completed %d", snap.Swaps, swapOK.Load())
	}
	if snap.Rejected != ok429.Load() {
		t.Errorf("stats rejected = %d, clients saw %d", snap.Rejected, ok429.Load())
	}
	if snap.BadRequests < bad4xx.Load() {
		t.Errorf("stats bad_requests = %d < observed %d", snap.BadRequests, bad4xx.Load())
	}
	t.Logf("soak %ds: %d ok, %d rejected, %d bad, %d swaps, final version %d, mean batch %.2f",
		seconds, ok200.Load(), ok429.Load(), bad4xx.Load(), swapOK.Load(), snap.ModelVersion, snap.MeanBatch)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after soak: %v", err)
	}
}

// swapMu serializes soak-test swaps so the version→threshold
// correspondence stays exact while swaps still race classifies.
var swapMu sync.Mutex
