package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

// Batcher errors surfaced to callers (and mapped to HTTP statuses by
// the server: ErrQueueFull → 429, ErrClosed → 503).
var (
	// ErrQueueFull means the bounded intake queue was full; the caller
	// should back off and retry.
	ErrQueueFull = errors.New("serve: classify queue full")
	// ErrClosed means the batcher has begun (or finished) shutdown.
	ErrClosed = errors.New("serve: batcher closed")
)

// Source supplies the classifier snapshot a batch runs against. Each
// dispatched batch reads the source exactly once, so every point in a
// batch is classified by the same model version.
type Source func() (classifier.Classifier, int64)

// BatcherConfig tunes the micro-batching pipeline. The zero value
// gets sensible defaults from normalize.
type BatcherConfig struct {
	// MaxBatch is the largest batch dispatched to the classifier
	// (default 32).
	MaxBatch int
	// MaxWait bounds how long the dispatcher holds an under-full batch
	// open waiting for more requests (default 2ms). A negative value
	// selects greedy mode: take whatever is already queued and dispatch
	// immediately.
	MaxWait time.Duration
	// QueueCap bounds the intake queue; Submit fails fast with
	// ErrQueueFull beyond it (default 1024).
	QueueCap int
	// Workers is the number of dispatcher goroutines, each building and
	// executing batches independently (default GOMAXPROCS).
	Workers int
}

// normalize fills config defaults in place.
func (c *BatcherConfig) normalize() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	} else if c.MaxWait < 0 {
		c.MaxWait = -1 // greedy
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Result is one classified point: the label plus the model version
// that produced it.
type Result struct {
	Label   geom.Label
	Version int64
}

// request is one queued point with its reply channel (buffered, so
// workers never block on a caller that gave up).
type request struct {
	pt   geom.Point
	resp chan Result
}

// Batcher coalesces single-point classification requests into batches.
// Amortizing the snapshot load and scheduling across a batch is what
// lets the service keep throughput under swap storms: the hot path per
// batch is one atomic snapshot read plus a tight classify loop.
type Batcher struct {
	cfg   BatcherConfig
	src   Source
	stats *Stats

	queue chan *request
	stop  chan struct{} // closed by Close; workers drain then exit
	done  chan struct{} // closed when the last worker exits
	// mu guards the Submit-vs-Close race: Submit sends on queue only
	// while closed=false under the read lock, so Close can safely close
	// the channel under the write lock.
	mu     sync.RWMutex
	closed bool
}

// NewBatcher starts cfg.Workers dispatcher goroutines reading from a
// bounded queue. stats may be nil.
func NewBatcher(src Source, cfg BatcherConfig, stats *Stats) *Batcher {
	cfg.normalize()
	b := &Batcher{
		cfg:   cfg,
		src:   src,
		stats: stats,
		queue: make(chan *request, cfg.QueueCap),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer wg.Done()
			b.worker()
		}()
	}
	go func() {
		wg.Wait()
		close(b.done)
	}()
	return b
}

// QueueDepth reports how many requests are waiting (a gauge for
// /stats).
func (b *Batcher) QueueDepth() int { return len(b.queue) }

// QueueCap reports the bounded queue's capacity.
func (b *Batcher) QueueCap() int { return b.cfg.QueueCap }

// Submit enqueues one point and waits for its result. It fails fast
// with ErrQueueFull when the queue is at capacity (backpressure) and
// with ErrClosed after Close. ctx cancellation abandons the wait; the
// point may still be classified, but the reply is discarded.
func (b *Batcher) Submit(ctx context.Context, pt geom.Point) (Result, error) {
	req := &request{pt: pt, resp: make(chan Result, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return Result{}, ErrQueueFull
	}
	select {
	case res := <-req.resp:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close stops intake and drains: every request already queued is still
// classified and answered before Close returns. Safe to call more than
// once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	// No Submit can be sending now (they check closed under RLock while
	// holding the send), so closing queue is safe; workers drain the
	// buffered remainder before exiting.
	close(b.stop)
	close(b.queue)
	<-b.done
}

// worker is one dispatcher loop: block for a first request, hold the
// batch open for up to MaxWait (or until MaxBatch), classify against a
// single snapshot, reply. Multi-point batches route through the
// model's batch kernel (classifier.BatchClassifier) when it has one;
// the worker-local pts/labels scratch keeps the hot loop allocation
// free.
func (b *Batcher) worker() {
	batch := make([]*request, 0, b.cfg.MaxBatch)
	pts := make([]geom.Point, 0, b.cfg.MaxBatch)
	labels := make([]geom.Label, b.cfg.MaxBatch)
	var timer *time.Timer
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)

		if b.cfg.MaxWait > 0 {
			timer = time.NewTimer(b.cfg.MaxWait)
		}
	fill:
		for len(batch) < b.cfg.MaxBatch {
			if b.cfg.MaxWait <= 0 {
				// Greedy mode: only take what is already queued.
				select {
				case r, ok := <-b.queue:
					if !ok {
						break fill
					}
					batch = append(batch, r)
				default:
					break fill
				}
				continue
			}
			select {
			case r, ok := <-b.queue:
				if !ok {
					break fill
				}
				batch = append(batch, r)
			case <-timer.C:
				timer = nil // fired and drained; nothing to stop below
				break fill
			case <-b.stop:
				// Shutdown: stop waiting for stragglers, flush what we
				// have, then keep draining the closed queue.
				break fill
			}
		}
		if timer != nil && !timer.Stop() {
			<-timer.C
		}
		timer = nil

		h, version := b.src()
		if b.stats != nil {
			b.stats.ObserveBatch(len(batch))
		}
		if bk, ok := h.(classifier.BatchClassifier); ok && len(batch) > 1 {
			pts = pts[:0]
			for _, r := range batch {
				pts = append(pts, r.pt)
			}
			dst := labels[:len(batch)]
			bk.ClassifyBatchInto(dst, pts)
			for i, r := range batch {
				r.resp <- Result{Label: dst[i], Version: version}
			}
			continue
		}
		for _, r := range batch {
			r.resp <- Result{Label: h.Classify(r.pt), Version: version}
		}
	}
}
