package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/online"
	"monoclass/internal/testutil"
)

// waitOnlineStats polls /stats until pred is satisfied or the
// deadline passes, returning the last snapshot.
func waitOnlineStats(t *testing.T, url string, pred func(*OnlineStats) bool) *OnlineStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var snap StatsSnapshot
		getJSON(t, url+"/stats", &snap)
		if snap.Online == nil {
			t.Fatal("/stats has no online section")
		}
		if pred(snap.Online) || time.Now().After(deadline) {
			return snap.Online
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLearnEndToEnd drives the full loop over HTTP: POST /learn
// inserts shift the decision boundary, the updater republishes through
// the registry, and /classify starts answering with the new model at a
// bumped version.
func TestLearnEndToEnd(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(classifier.ConstNegative(2), Config{
		Online: &OnlineConfig{RebuildEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Before learning: everything classifies negative.
	var cr classifyResponse
	if code := postJSON(t, hs.URL+"/classify", `{"point":[5,5]}`, &cr); code != 200 || cr.Label != 0 {
		t.Fatalf("pre-learn classify = (%d, %+v)", code, cr)
	}

	var lr learnResponse
	code := postJSON(t, hs.URL+"/learn",
		`{"deltas":[{"op":"insert","point":[2,2],"label":1,"weight":3},
		            {"op":"insert","point":[4,1],"label":0,"weight":1}]}`, &lr)
	if code != 202 || lr.Accepted != 2 {
		t.Fatalf("/learn = (%d, %+v), want (202, accepted 2)", code, lr)
	}
	st := waitOnlineStats(t, hs.URL, func(o *OnlineStats) bool { return o.Inserts == 2 && o.QueueDepth == 0 })
	if st.Inserts != 2 || st.ExactSolves < 2 {
		t.Fatalf("after drain: %+v", st)
	}

	// The learned anchor (2,2) must now classify positive, at a version
	// above the initial 1.
	if code := postJSON(t, hs.URL+"/classify", `{"point":[5,5]}`, &cr); code != 200 {
		t.Fatalf("post-learn classify status %d", code)
	}
	if cr.Label != 1 || cr.Version < 2 {
		t.Fatalf("post-learn classify = %+v, want label 1 at version ≥ 2", cr)
	}
	if code := postJSON(t, hs.URL+"/classify", `{"point":[1,1]}`, &cr); code != 200 || cr.Label != 0 {
		t.Fatalf("below-anchor classify = (%d, %+v), want label 0", code, cr)
	}

	// Deleting the positive point retracts the boundary.
	if code := postJSON(t, hs.URL+"/learn",
		`{"deltas":[{"op":"delete","point":[2,2],"label":1}]}`, &lr); code != 202 {
		t.Fatalf("/learn delete status %d", code)
	}
	waitOnlineStats(t, hs.URL, func(o *OnlineStats) bool { return o.Deletes == 1 && o.QueueDepth == 0 })
	if code := postJSON(t, hs.URL+"/classify", `{"point":[5,5]}`, &cr); code != 200 || cr.Label != 0 {
		t.Fatalf("post-delete classify = (%d, %+v), want label 0", code, cr)
	}
}

// TestLearnValidation covers the 4xx surface of /learn.
func TestLearnValidation(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(classifier.ConstNegative(2), Config{
		MaxClientBatch: 4,
		Online:         &OnlineConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"garbage", `{`, 400},
		{"empty", `{"deltas":[]}`, 400},
		{"unknown op", `{"deltas":[{"op":"upsert","point":[1,2],"label":1,"weight":1}]}`, 400},
		{"wrong dim", `{"deltas":[{"op":"insert","point":[1],"label":1,"weight":1}]}`, 400},
		{"bad label", `{"deltas":[{"op":"insert","point":[1,2],"label":3,"weight":1}]}`, 400},
		{"zero weight", `{"deltas":[{"op":"insert","point":[1,2],"label":1}]}`, 400},
		{"negative weight", `{"deltas":[{"op":"insert","point":[1,2],"label":1,"weight":-1}]}`, 400},
		{"oversized", `{"deltas":[` + strings.Repeat(`{"op":"insert","point":[1,2],"label":1,"weight":1},`, 4) +
			`{"op":"insert","point":[1,2],"label":1,"weight":1}]}`, 413},
	}
	for _, tc := range cases {
		var er errorResponse
		if code := postJSON(t, hs.URL+"/learn", tc.body, &er); code != tc.wantCode {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, er.Error, tc.wantCode)
		}
	}
	// A bad delta anywhere in the batch rejects the whole batch: the
	// valid first delta must not have been applied.
	var er errorResponse
	if code := postJSON(t, hs.URL+"/learn",
		`{"deltas":[{"op":"insert","point":[1,2],"label":1,"weight":1},
		            {"op":"insert","point":[1],"label":1,"weight":1}]}`, &er); code != 400 {
		t.Fatalf("mixed batch status %d", code)
	}
	if !strings.Contains(er.Error, "delta 1") {
		t.Errorf("mixed-batch error does not name the bad delta: %q", er.Error)
	}
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.Online.Inserts != 0 {
		t.Errorf("rejected batches still applied %d inserts", snap.Online.Inserts)
	}
	// Delete of an absent point is accepted (202) and surfaces as a
	// counted miss, not an HTTP error.
	var lr learnResponse
	if code := postJSON(t, hs.URL+"/learn",
		`{"deltas":[{"op":"delete","point":[9,9],"label":1}]}`, &lr); code != 202 {
		t.Fatalf("delete-of-absent status %d", code)
	}
	st := waitOnlineStats(t, hs.URL, func(o *OnlineStats) bool { return o.DeleteMisses == 1 })
	if st.DeleteMisses != 1 {
		t.Fatalf("delete miss not counted: %+v", st)
	}
}

// TestLearnDisabled: servers without OnlineConfig answer 404 and show
// no online stats section.
func TestLearnDisabled(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(classifier.ConstNegative(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if code := postJSON(t, hs.URL+"/learn", `{"deltas":[{"op":"insert","point":[1],"label":1,"weight":1}]}`, nil); code != 404 {
		t.Fatalf("/learn without online config: status %d, want 404", code)
	}
	var snap StatsSnapshot
	getJSON(t, hs.URL+"/stats", &snap)
	if snap.Online != nil {
		t.Error("online stats present without online config")
	}
}

// TestLearnAuditGate wires a holdout audit that rejects any model
// mislabeling the holdout: learned promotions that violate it are
// rejected, the served model stays put, and the rejection is counted
// on both the registry and updater sides.
func TestLearnAuditGate(t *testing.T) {
	testutil.CheckGoroutines(t)
	holdout := geom.WeightedSet{{P: geom.Point{5}, Label: geom.Negative, Weight: 1}}
	srv, err := NewServer(classifier.ConstNegative(1), Config{
		Audit:  HoldoutAudit(holdout, 0),
		Online: &OnlineConfig{RebuildEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	// Learning (1,Positive) yields a model that labels 5 positive —
	// exactly what the holdout forbids.
	if code := postJSON(t, hs.URL+"/learn", `{"deltas":[{"op":"insert","point":[1],"label":1,"weight":1}]}`, nil); code != 202 {
		t.Fatalf("/learn status %d", code)
	}
	st := waitOnlineStats(t, hs.URL, func(o *OnlineStats) bool { return o.PublishRejects == 1 })
	if st.PublishRejects != 1 {
		t.Fatalf("audit rejection not counted: %+v", st)
	}
	var cr classifyResponse
	if code := postJSON(t, hs.URL+"/classify", `{"point":[5]}`, &cr); code != 200 || cr.Label != 0 || cr.Version != 1 {
		t.Fatalf("audited-out model leaked: (%d, %+v)", code, cr)
	}
}

// TestLearnChurnStorm is the race/churn satellite: a concurrent delta
// stream, a classify storm, and external registry swaps all running
// against one server (extending the PR 4 swap-storm pattern). The
// assertions are structural — versions only move forward, every
// accepted delta is eventually accounted for, and the updater's
// maintained error matches an independent rescore after the dust
// settles — with the race detector and the goroutine-leak checker
// doing the memory-model work. Run under make race.
func TestLearnChurnStorm(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, err := NewServer(classifier.ConstNegative(2), Config{
		Batch:  BatcherConfig{MaxBatch: 32, MaxWait: 200 * time.Microsecond, QueueCap: 4096, Workers: 2},
		Online: &OnlineConfig{RebuildEvery: 16, QueueCap: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	pipe := srv.Learner()
	reg := srv.Registry()

	const (
		learners    = 4
		perLearner  = 150
		classifiers = 8
		perClassify = 200
		swappers    = 1
		swapCount   = 25
	)
	var (
		wg       sync.WaitGroup
		accepted atomic.Int64
		versionV atomic.Int64 // watermark: versions must never regress
	)

	// Delta stream: mostly inserts on a small grid, some deletes that
	// may miss — both must be survivable at full concurrency.
	wg.Add(learners)
	for l := 0; l < learners; l++ {
		go func(l int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(l) + 101))
			for i := 0; i < perLearner; i++ {
				d := online.Delta{
					Op:     online.OpInsert,
					Point:  geom.Point{float64(rng.Intn(6)), float64(rng.Intn(6))},
					Label:  geom.Label(rng.Intn(2)),
					Weight: float64(1 + rng.Intn(3)),
				}
				if rng.Intn(4) == 0 {
					d.Op, d.Weight = online.OpDelete, 0
				}
				for {
					err := pipe.Enqueue(d)
					if err == nil {
						accepted.Add(1)
						break
					}
					if !errors.Is(err, online.ErrQueueFull) {
						t.Errorf("enqueue: %v", err)
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(l)
	}

	// Classify storm over HTTP, checking only protocol-level sanity
	// (any label is legal while models churn, but versions move one
	// way and 5xx is never acceptable).
	wg.Add(classifiers)
	for c := 0; c < classifiers; c++ {
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 201))
			for i := 0; i < perClassify; i++ {
				var cr classifyResponse
				body := fmt.Sprintf(`{"point":[%d,%d]}`, rng.Intn(6), rng.Intn(6))
				resp, err := http.Post(hs.URL+"/classify", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("classify: %v", err)
					return
				}
				code := resp.StatusCode
				if code == 200 {
					if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
						t.Errorf("classify decode: %v", err)
					}
				}
				resp.Body.Close()
				switch {
				case code == 200:
					for {
						old := versionV.Load()
						if cr.Version >= old {
							if versionV.CompareAndSwap(old, cr.Version) {
								break
							}
							continue
						}
						// A version below a previously observed one is only
						// legal if it was read before that observation — the
						// batcher guarantees per-batch snapshots, not global
						// ordering across goroutines. Registry-level
						// monotonicity is asserted via reg.Version below.
						break
					}
				case code == 429 || code == 503:
					// Backpressure/shutdown race: legal.
				default:
					t.Errorf("classify status %d", code)
				}
			}
		}(c)
	}

	// External swapper racing the updater's own publishes through the
	// same mutex-serialized registry.
	wg.Add(swappers)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(301))
		last := reg.Version()
		for i := 0; i < swapCount; i++ {
			m := classifier.MustAnchorSet(2, []geom.Point{{float64(rng.Intn(6)), float64(rng.Intn(6))}})
			if _, err := reg.Swap(m); err != nil {
				t.Errorf("external swap: %v", err)
				return
			}
			if v := reg.Version(); v <= last {
				t.Errorf("registry version regressed: %d after %d", v, last)
			} else {
				last = v
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	// Drain the learn queue, then verify global accounting and the
	// updater's werr invariant on the settled state.
	u := pipe.Updater()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := u.Stats()
	if got := int64(st.Inserts + st.Deletes + st.DeleteMisses); got != accepted.Load() {
		t.Errorf("accounted for %d deltas, accepted %d", got, accepted.Load())
	}
	if rescore := geom.WErr(u.Live(), u.Model().Classify); !almostEqServe(rescore, u.WErr()) {
		t.Errorf("maintained werr %g, rescore %g", u.WErr(), rescore)
	}
	if st.ExactSolves == 0 {
		t.Error("storm ran no exact solves")
	}
	t.Logf("churn: %d deltas (%d misses), %d exact solves, %d interim, %d swaps, final version %d, live %d",
		accepted.Load(), st.DeleteMisses, st.ExactSolves, st.InterimAdoptions, reg.Swaps(), reg.Version(), st.Live)
}

func almostEqServe(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
