package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/testutil"
)

// fixedSource serves one classifier at a fixed version.
func fixedSource(h classifier.Classifier, version int64) Source {
	return func() (classifier.Classifier, int64) { return h, version }
}

// funcClassifier adapts a function to the Classifier interface, for
// slow/blocking classifiers in backpressure tests.
type funcClassifier func(geom.Point) geom.Label

func (f funcClassifier) Classify(p geom.Point) geom.Label { return f(p) }

func TestBatcherClassifiesCorrectly(t *testing.T) {
	testutil.CheckGoroutines(t)
	h := thresholdModel(t, 5)
	b := NewBatcher(fixedSource(h, 7), BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond}, nil)
	defer b.Close()
	for _, tc := range []struct {
		x    float64
		want geom.Label
	}{{4.9, geom.Negative}, {5, geom.Positive}, {100, geom.Positive}, {-3, geom.Negative}} {
		res, err := b.Submit(context.Background(), geom.Point{tc.x})
		if err != nil {
			t.Fatal(err)
		}
		if res.Label != tc.want {
			t.Errorf("Submit(%g) = %v, want %v", tc.x, res.Label, tc.want)
		}
		if res.Version != 7 {
			t.Errorf("Submit(%g) version = %d, want 7", tc.x, res.Version)
		}
	}
}

// TestBatcherCoalesces: park the single worker on a plug request, pile
// a backlog into the queue, release — the backlog must drain in full
// MaxBatch-sized batches, visible in the size histogram.
func TestBatcherCoalesces(t *testing.T) {
	testutil.CheckGoroutines(t)
	stats := &Stats{}
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	h := funcClassifier(func(p geom.Point) geom.Label {
		once.Do(func() { close(started) })
		<-release
		return geom.Negative
	})
	b := NewBatcher(fixedSource(h, 1), BatcherConfig{
		MaxBatch: 8, MaxWait: 5 * time.Millisecond, QueueCap: 64, Workers: 1,
	}, stats)
	defer b.Close()

	var wg sync.WaitGroup
	submit := func() {
		defer wg.Done()
		if _, err := b.Submit(context.Background(), geom.Point{0}); err != nil {
			t.Errorf("Submit: %v", err)
		}
	}
	// Plug: the queue is empty when the worker picks this up, so after
	// MaxWait it classifies a batch of exactly 1 and parks on release.
	wg.Add(1)
	go submit()
	<-started

	const backlog = 16
	wg.Add(backlog)
	for i := 0; i < backlog; i++ {
		go submit()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueDepth() < backlog && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.QueueDepth() != backlog {
		t.Fatalf("queue depth = %d, want %d", b.QueueDepth(), backlog)
	}
	close(release)
	wg.Wait()

	var snap StatsSnapshot
	stats.snapshotCounters(&snap)
	if snap.BatchPoints != backlog+1 {
		t.Fatalf("batch points = %d, want %d", snap.BatchPoints, backlog+1)
	}
	// 1 plug + 16 queued = batches of 1, 8, 8.
	if snap.Batches != 3 {
		t.Errorf("batches = %d (hist %v), want 3", snap.Batches, snap.BatchSizeHist)
	}
	if snap.BatchSizeHist["8"] != 2 || snap.BatchSizeHist["1"] != 1 {
		t.Errorf("histogram %v, want {1:1 8:2}", snap.BatchSizeHist)
	}
	if snap.MeanBatch < 5 || snap.MeanBatch > 6 {
		t.Errorf("mean batch = %g, want 17/3", snap.MeanBatch)
	}
}

// TestBatcherBatchKernel: when the model implements
// classifier.BatchClassifier (AnchorSet does), a coalesced batch must
// be scored through the batch kernel with per-slot answers intact. A
// generous MaxWait lets the single worker gather the full batch.
func TestBatcherBatchKernel(t *testing.T) {
	testutil.CheckGoroutines(t)
	stats := &Stats{}
	h := thresholdModel(t, 5)
	const n = 8
	b := NewBatcher(fixedSource(h, 3), BatcherConfig{
		MaxBatch: n, MaxWait: time.Second, QueueCap: 64, Workers: 1,
	}, stats)
	defer b.Close()

	xs := []float64{4.9, 5, 100, -3, 5.1, 0, 4.999, 7}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			res, err := b.Submit(context.Background(), geom.Point{x})
			if err != nil {
				t.Errorf("Submit(%g): %v", x, err)
				return
			}
			if want := h.Classify(geom.Point{x}); res.Label != want || res.Version != 3 {
				t.Errorf("Submit(%g) = (%v, v%d), want (%v, v3)", x, res.Label, res.Version, want)
			}
		}(xs[i])
	}
	wg.Wait()

	var snap StatsSnapshot
	stats.snapshotCounters(&snap)
	if snap.BatchPoints != n {
		t.Errorf("batch points = %d, want %d", snap.BatchPoints, n)
	}
	// All n submitters were in flight before the first dispatch could
	// complete its MaxWait gather, so at least one batch coalesced —
	// that batch went through ClassifyBatchInto.
	if snap.Batches >= n {
		t.Errorf("batches = %d (hist %v): nothing coalesced, kernel path never ran", snap.Batches, snap.BatchSizeHist)
	}
}

// TestBatcherMaxWaitFires: a lone request must not wait for a full
// batch — the MaxWait timer has to flush it.
func TestBatcherMaxWaitFires(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBatcher(fixedSource(thresholdModel(t, 0), 1), BatcherConfig{
		MaxBatch: 1024, MaxWait: 10 * time.Millisecond, Workers: 1,
	}, nil)
	defer b.Close()
	start := time.Now()
	if _, err := b.Submit(context.Background(), geom.Point{1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("lone request took %s; MaxWait timer did not fire", elapsed)
	}
}

func TestBatcherQueueFull(t *testing.T) {
	testutil.CheckGoroutines(t)
	release := make(chan struct{})
	h := funcClassifier(func(geom.Point) geom.Label { <-release; return geom.Negative })
	b := NewBatcher(fixedSource(h, 1), BatcherConfig{
		MaxBatch: 1, MaxWait: 0, QueueCap: 2, Workers: 1,
	}, nil)
	defer b.Close()

	// One request occupies the worker; two fill the queue; the next
	// must be rejected, not block.
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := b.Submit(context.Background(), geom.Point{0})
			results <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.QueueDepth() != 2 {
		t.Fatalf("queue depth = %d, want 2", b.QueueDepth())
	}
	if _, err := b.Submit(context.Background(), geom.Point{0}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit returned %v, want ErrQueueFull", err)
	}
	close(release)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued Submit failed: %v", err)
		}
	}
}

// TestBatcherDrainOnClose: requests accepted before Close must all be
// answered, and Submits racing with Close must either be answered or
// fail cleanly with ErrClosed — never hang, never panic.
func TestBatcherDrainOnClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	var classified atomic.Int64
	h := funcClassifier(func(geom.Point) geom.Label {
		classified.Add(1)
		return geom.Positive
	})
	b := NewBatcher(fixedSource(h, 1), BatcherConfig{
		MaxBatch: 4, MaxWait: 20 * time.Millisecond, QueueCap: 256, Workers: 2,
	}, nil)

	const n = 100
	var accepted atomic.Int64
	var answered atomic.Int64
	var closedErrs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			_, err := b.Submit(context.Background(), geom.Point{1})
			switch {
			case err == nil:
				accepted.Add(1)
				answered.Add(1)
			case errors.Is(err, ErrClosed):
				closedErrs.Add(1)
			case errors.Is(err, ErrQueueFull):
				t.Errorf("queue full with capacity 256 and %d requests", n)
			default:
				t.Errorf("unexpected Submit error: %v", err)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let some requests land mid-flight
	b.Close()
	wg.Wait()

	if got := answered.Load() + closedErrs.Load(); got != n {
		t.Fatalf("accounted for %d of %d submits", got, n)
	}
	// Everything answered must actually have been classified.
	if classified.Load() < answered.Load() {
		t.Errorf("classified %d < answered %d", classified.Load(), answered.Load())
	}
	// Close must be idempotent.
	b.Close()
	if _, err := b.Submit(context.Background(), geom.Point{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestBatcherContextCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	release := make(chan struct{})
	h := funcClassifier(func(geom.Point) geom.Label { <-release; return geom.Negative })
	b := NewBatcher(fixedSource(h, 1), BatcherConfig{MaxBatch: 1, MaxWait: 0, QueueCap: 8, Workers: 1}, nil)
	defer func() {
		close(release)
		b.Close()
	}()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, geom.Point{0})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit after cancel = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Submit did not return")
	}
}

// TestBatcherDefaults: zero config must normalize to usable values.
func TestBatcherDefaults(t *testing.T) {
	testutil.CheckGoroutines(t)
	b := NewBatcher(fixedSource(thresholdModel(t, 0), 1), BatcherConfig{}, nil)
	defer b.Close()
	if b.cfg.MaxBatch != 32 || b.cfg.QueueCap != 1024 || b.cfg.Workers < 1 || b.cfg.MaxWait != 2*time.Millisecond {
		t.Errorf("normalized config = %+v", b.cfg)
	}
	if _, err := b.Submit(context.Background(), geom.Point{1}); err != nil {
		t.Fatal(err)
	}
}
