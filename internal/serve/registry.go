// Package serve is the online serving layer: a hot-swappable model
// registry plus a micro-batching HTTP classification service over
// trained AnchorSet models.
//
// The registry holds immutable model snapshots behind an
// atomic.Pointer, so the classify hot path is a single atomic load —
// model promotion never blocks an in-flight request, and a request
// observes exactly one coherent (model, version) pair. Swaps are
// serialized through a mutex that only writers touch and can be gated
// by an audit hook (monotonicity spot-check, holdout error budget)
// before a candidate model is promoted.
//
// The batcher coalesces single-point requests into micro-batches
// (bounded by MaxBatch and MaxWait), classifies each batch against one
// snapshot, and applies backpressure by rejecting work when its
// bounded queue is full. See DESIGN.md §9 for the architecture
// rationale.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/problem"
)

// Snapshot is one immutable registry entry: a trained model and the
// version the registry assigned at promotion. Snapshots are never
// mutated after publication — hot-swap replaces the pointer, so any
// goroutine still holding an old snapshot keeps serving it coherently.
type Snapshot struct {
	// Version is the registry-assigned promotion counter, starting at 1
	// for the initial model and increasing by exactly 1 per successful
	// swap.
	Version int64
	// Model is the immutable classifier. Callers must not mutate it.
	Model *classifier.AnchorSet
	// PromotedAt records when the snapshot became current.
	PromotedAt time.Time
}

// AuditFunc inspects a candidate model before promotion; a non-nil
// error vetoes the swap. old is the currently-serving model (never
// nil), next the candidate.
type AuditFunc func(old, next *classifier.AnchorSet) error

// Registry publishes the current model snapshot to a fleet of
// concurrent readers. Reads are wait-free (one atomic pointer load);
// writes go through Swap, which serializes on an internal mutex,
// runs the audit gate, and then publishes atomically.
type Registry struct {
	cur   atomic.Pointer[Snapshot]
	dim   int
	audit AuditFunc

	mu           sync.Mutex // serializes Swap: audit + version assignment + publish
	swaps        atomic.Int64
	auditRejects atomic.Int64

	// now is stubbed in tests; production uses time.Now.
	now func() time.Time
}

// NewRegistry creates a registry serving initial as version 1. The
// audit gate may be nil (every dimension-compatible swap is accepted).
func NewRegistry(initial *classifier.AnchorSet, audit AuditFunc) (*Registry, error) {
	if initial == nil {
		return nil, fmt.Errorf("serve: initial model must not be nil")
	}
	r := &Registry{dim: initial.Dim(), audit: audit, now: time.Now}
	r.cur.Store(&Snapshot{Version: 1, Model: initial, PromotedAt: r.now()})
	return r, nil
}

// Snapshot returns the current model snapshot. The result is immutable
// and never nil; it stays valid (and coherent) even if a swap lands
// immediately after the load.
func (r *Registry) Snapshot() *Snapshot { return r.cur.Load() }

// Version returns the currently-served model version.
func (r *Registry) Version() int64 { return r.cur.Load().Version }

// Dim returns the dimensionality the registry serves; every swapped
// model must match it.
func (r *Registry) Dim() int { return r.dim }

// Swaps returns how many successful promotions have happened (the
// initial model does not count).
func (r *Registry) Swaps() int64 { return r.swaps.Load() }

// AuditRejects returns how many candidate models the audit gate has
// vetoed.
func (r *Registry) AuditRejects() int64 { return r.auditRejects.Load() }

// Swap audits next and, on success, promotes it as the new current
// model, returning the assigned version. In-flight readers are never
// blocked: they keep their old snapshot until their next Snapshot
// call. Dimension mismatches are rejected before the audit gate runs.
func (r *Registry) Swap(next *classifier.AnchorSet) (int64, error) {
	if next == nil {
		return 0, fmt.Errorf("serve: candidate model must not be nil")
	}
	if next.Dim() != r.dim {
		return 0, fmt.Errorf("serve: candidate model dimension %d does not match registry dimension %d", next.Dim(), r.dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	if r.audit != nil {
		if err := r.audit(old.Model, next); err != nil {
			r.auditRejects.Add(1)
			return 0, fmt.Errorf("serve: audit gate rejected candidate model: %w", err)
		}
	}
	snap := &Snapshot{Version: old.Version + 1, Model: next, PromotedAt: r.now()}
	r.cur.Store(snap)
	r.swaps.Add(1)
	return snap.Version, nil
}

// SpotAudit returns an audit gate that rechecks monotonicity of the
// candidate over a fixed probe set plus both models' anchor points —
// the Chen–Servedio–Tan-style cheap spot-check on the promotion path.
// AnchorSet models are monotone by construction, so for them this
// guards against corrupted or hand-edited models; the probe set keeps
// the check O(|probes|²) rather than dataset-sized.
func SpotAudit(probes []geom.Point) AuditFunc {
	return func(old, next *classifier.AnchorSet) error {
		pts := make([]geom.Point, 0, len(probes)+len(old.Anchors())+len(next.Anchors()))
		for _, p := range probes {
			if len(p) == next.Dim() {
				pts = append(pts, p)
			}
		}
		pts = append(pts, old.Anchors()...)
		pts = append(pts, next.Anchors()...)
		if ok, p, q := classifier.IsMonotoneOn(pts, next); !ok {
			return fmt.Errorf("monotonicity violation on probe set: h(%v)=0 but it dominates %v with h=1", p, q)
		}
		return nil
	}
}

// HoldoutAudit returns an audit gate that rejects any candidate whose
// weighted error on a labeled holdout set exceeds maxWErr — the "new
// model must not be worse than this budget" promotion rule.
func HoldoutAudit(holdout geom.WeightedSet, maxWErr float64) AuditFunc {
	return func(_, next *classifier.AnchorSet) error {
		werr := geom.WErr(holdout, next.Classify)
		if werr > maxWErr {
			return fmt.Errorf("holdout weighted error %g exceeds budget %g", werr, maxWErr)
		}
		return nil
	}
}

// ProblemSpotAudit is SpotAudit probing the points of a prepared
// Problem — the training (or holdout) instance the candidate was
// solved against, already resident in memory, with no re-derivation
// of anything.
func ProblemSpotAudit(p *problem.Problem) AuditFunc {
	return SpotAudit(p.Points())
}

// ProblemHoldoutAudit is HoldoutAudit over a prepared Problem's
// weighted set, with one extra lever the raw-set gate cannot offer:
// a negative maxWErr budget means "no worse than the instance's own
// optimum" — the prepared network re-solves (cheaply, it is already
// built) and the candidate must match k* on the instance.
func ProblemHoldoutAudit(p *problem.Problem, maxWErr float64) AuditFunc {
	if maxWErr >= 0 {
		return HoldoutAudit(p.WeightedSet(), maxWErr)
	}
	return func(_, next *classifier.AnchorSet) error {
		sol, err := p.Solve()
		if err != nil {
			return fmt.Errorf("re-solving prepared problem: %w", err)
		}
		werr := geom.WErr(p.WeightedSet(), next.Classify)
		if werr > sol.WErr {
			return fmt.Errorf("candidate weighted error %g exceeds the instance optimum %g", werr, sol.WErr)
		}
		return nil
	}
}

// ChainAudits composes audit gates; the first rejection wins.
func ChainAudits(fns ...AuditFunc) AuditFunc {
	return func(old, next *classifier.AnchorSet) error {
		for _, fn := range fns {
			if fn == nil {
				continue
			}
			if err := fn(old, next); err != nil {
				return err
			}
		}
		return nil
	}
}
