package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/online"
	"monoclass/internal/problem"
)

// Config tunes a Server. The zero value is serviceable: default
// batching, no audit gate, 4096-point client batches.
type Config struct {
	// Batch configures the micro-batching pipeline.
	Batch BatcherConfig
	// Audit optionally gates POST /model promotions.
	Audit AuditFunc
	// MaxClientBatch caps the number of points accepted by a single
	// /classify/batch call (default 4096); larger requests get 413.
	MaxClientBatch int
	// MaxBodyBytes caps request body sizes (default 8 MiB).
	MaxBodyBytes int64
	// Online, when non-nil, enables the incremental learning pipeline
	// and the POST /learn endpoint (see OnlineConfig).
	Online *OnlineConfig
	// Prepare, when non-nil, records how the initial model's training
	// instance was prepared (problem.PrepareStats): /stats serves it
	// under "prepare" and GET /model answers X-Model-Width and
	// X-Model-Exact-Width headers, so clients can tell an exact-width
	// model from one trained on a greedy fallback cover.
	Prepare *problem.PrepareStats
}

// Server is the HTTP serving layer: a Registry for hot-swappable
// models, a Batcher for single-point micro-batching, and JSON
// endpoints:
//
//	POST /classify        {"point":[...]}          → {"label":L,"version":V}
//	POST /classify/batch  {"points":[[...],...]}   → {"labels":[...],"version":V}
//	POST /learn           {"deltas":[...]}         → {"accepted":N,"queue_depth":D} (with Config.Online)
//	GET  /model                                    → current model JSON (X-Model-Version header)
//	POST /model           model JSON               → {"version":V,"dim":D,"anchors":N}
//	GET  /healthz                                  → {"status":"ok","version":V,...}
//	GET  /stats                                    → StatsSnapshot
//
// Backpressure: when the batcher queue is full, /classify answers
// 429 with a Retry-After header instead of queuing unboundedly; the
// learn queue behaves the same way.
type Server struct {
	cfg     Config
	reg     *Registry
	bat     *Batcher
	pipe    *online.Pipeline // nil unless Config.Online is set
	stats   *Stats
	mux     *http.ServeMux
	started time.Time

	mu   sync.Mutex
	ln   net.Listener
	hsrv *http.Server
}

// NewServer builds a server over an initial model. It starts the
// batcher's worker goroutines immediately (so the Handler is usable
// with httptest without Start); call Shutdown or Close to release
// them.
func NewServer(initial *classifier.AnchorSet, cfg Config) (*Server, error) {
	if cfg.MaxClientBatch <= 0 {
		cfg.MaxClientBatch = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	reg, err := NewRegistry(initial, cfg.Audit)
	if err != nil {
		return nil, err
	}
	stats := &Stats{}
	src := func() (classifier.Classifier, int64) {
		snap := reg.Snapshot()
		return snap.Model, snap.Version
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		bat:     NewBatcher(src, cfg.Batch, stats),
		stats:   stats,
		started: time.Now(),
	}
	if cfg.Online != nil {
		if err := s.newLearner(cfg.Online); err != nil {
			s.bat.Close()
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /learn", s.handleLearn)
	s.mux.HandleFunc("POST /classify", s.handleClassify)
	s.mux.HandleFunc("POST /classify/batch", s.handleClassifyBatch)
	s.mux.HandleFunc("GET /model", s.handleModelGet)
	s.mux.HandleFunc("POST /model", s.handleModelPost)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

// Registry exposes the model registry (for CLI wiring and tests).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler tree, for mounting under httptest
// or an external server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in a background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.hsrv != nil {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("serve: server already started")
	}
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.mux}
	hsrv := s.hsrv
	s.mu.Unlock()
	go hsrv.Serve(ln) // Serve returns ErrServerClosed after Shutdown
	return ln.Addr(), nil
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests finish (bounded by ctx), then the batcher drains and its
// workers exit. Safe when Start was never called (handler-only use):
// it then just drains the batcher.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.mu.Lock()
	hsrv := s.hsrv
	s.hsrv = nil
	s.mu.Unlock()
	if hsrv != nil {
		err = hsrv.Shutdown(ctx)
	}
	// In-flight handlers are done (or abandoned at ctx deadline);
	// draining the queues now applies every delta and answers every
	// classify already accepted. The learner drains first so its final
	// model promotion is visible to the batcher's remaining work.
	if s.pipe != nil {
		s.pipe.Close()
	}
	s.bat.Close()
	return err
}

// Close is Shutdown with a short deadline, for defer convenience.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// ---- wire types ----

type classifyRequest struct {
	Point []float64 `json:"point"`
}

type classifyResponse struct {
	Label   int   `json:"label"`
	Version int64 `json:"version"`
}

type batchRequest struct {
	Points [][]float64 `json:"points"`
}

type batchResponse struct {
	Labels  []int `json:"labels"`
	Version int64 `json:"version"`
}

type swapResponse struct {
	Version int64 `json:"version"`
	Dim     int   `json:"dim"`
	Anchors int   `json:"anchors"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- handlers ----

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	pt, ok := s.checkPoint(w, req.Point)
	if !ok {
		return
	}
	res, err := s.bat.Submit(r.Context(), pt)
	if err != nil {
		s.classifyError(w, r, err, 1)
		return
	}
	s.stats.AddRequests(1)
	writeJSON(w, http.StatusOK, classifyResponse{Label: int(res.Label), Version: res.Version})
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		s.badRequest(w, "empty batch")
		return
	}
	if len(req.Points) > s.cfg.MaxClientBatch {
		s.stats.AddBadRequest()
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Points), s.cfg.MaxClientBatch)})
		return
	}
	pts := make([]geom.Point, len(req.Points))
	for i, c := range req.Points {
		pt, ok := s.checkPoint(w, c)
		if !ok {
			return
		}
		pts[i] = pt
	}
	// A client batch is already a batch: classify it inline against one
	// snapshot through the model's batch kernel instead of re-queuing
	// point by point.
	snap := s.reg.Snapshot()
	out := make([]geom.Label, len(pts))
	snap.Model.ClassifyBatchInto(out, pts)
	labels := make([]int, len(pts))
	for i, l := range out {
		labels[i] = int(l)
	}
	s.stats.ObserveBatch(len(pts))
	s.stats.AddRequests(len(pts))
	writeJSON(w, http.StatusOK, batchResponse{Labels: labels, Version: snap.Version})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Model-Version", strconv.FormatInt(snap.Version, 10))
	if p := s.cfg.Prepare; p != nil {
		// Metadata travels in headers so the body bytes stay exactly
		// classifier.WriteModel's output (round-trip goldens depend on
		// that).
		w.Header().Set("X-Model-Width", strconv.Itoa(p.Width))
		w.Header().Set("X-Model-Exact-Width", strconv.FormatBool(p.ExactWidth))
		w.Header().Set("X-Model-Decompose-Path", p.DecomposePath)
	}
	classifier.WriteModel(w, snap.Model)
}

func (s *Server) handleModelPost(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	next, err := classifier.ReadModel(body)
	if err != nil {
		s.badRequest(w, fmt.Sprintf("invalid model: %v", err))
		return
	}
	version, err := s.reg.Swap(next)
	if err != nil {
		s.stats.AddBadRequest()
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, swapResponse{Version: version, Dim: next.Dim(), Anchors: len(next.Anchors())})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"version":   s.reg.Version(),
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var snap StatsSnapshot
	s.stats.snapshotCounters(&snap)
	cur := s.reg.Snapshot()
	snap.QueueDepth = s.bat.QueueDepth()
	snap.QueueCap = s.bat.QueueCap()
	snap.ModelVersion = cur.Version
	snap.ModelAnchors = len(cur.Model.Anchors())
	snap.Swaps = s.reg.Swaps()
	snap.AuditRejects = s.reg.AuditRejects()
	snap.UptimeMillis = time.Since(s.started).Milliseconds()
	if s.pipe != nil {
		snap.Online = &OnlineStats{
			StatsSnapshot: s.pipe.Updater().Stats(),
			QueueDepth:    s.pipe.QueueDepth(),
			QueueCap:      s.pipe.QueueCap(),
		}
	}
	snap.Prepare = s.cfg.Prepare
	writeJSON(w, http.StatusOK, snap)
}

// ---- helpers ----

// decodeJSON parses the body into dst, answering 400 on garbage.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.badRequest(w, fmt.Sprintf("invalid request body: %v", err))
		return false
	}
	return true
}

// checkPoint validates one coordinate vector against the registry
// dimension, answering 400 on mismatch.
func (s *Server) checkPoint(w http.ResponseWriter, coords []float64) (geom.Point, bool) {
	if len(coords) != s.reg.Dim() {
		s.badRequest(w, fmt.Sprintf("point has dimension %d, model serves dimension %d", len(coords), s.reg.Dim()))
		return nil, false
	}
	return geom.Point(coords), true
}

// classifyError maps batcher errors to HTTP statuses; n is how many
// points the failed call carried (for the reject counter).
func (s *Server) classifyError(w http.ResponseWriter, r *http.Request, err error, n int) {
	switch {
	case errors.Is(err, ErrQueueFull):
		s.stats.AddRejected(n)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.Batch.MaxWait)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client went away; 499-style. StatusRequestTimeout is the
		// closest standard code.
		writeJSON(w, http.StatusRequestTimeout, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// retryAfterSeconds suggests a backoff of at least one second, scaled
// to the batching window.
func retryAfterSeconds(maxWait time.Duration) int {
	sec := int((maxWait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.stats.AddBadRequest()
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
