package passive

import (
	"fmt"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
)

// Prepared is one passive instance with its Section 5.1 flow network
// already constructed: the expensive half of Solve (validation,
// contending scan, chain decomposition, CSR network build) done once,
// so each Resolve call pays only a flow computation plus the cut
// decode. The prepared-problem artifact (internal/problem) caches one
// of these per Problem and re-solves it warm.
//
// A Prepared is not safe for concurrent Resolve calls: each call
// resets and re-saturates the one underlying network.
type Prepared struct {
	ws geom.WeightedSet // aliased from Prepare's caller; must not mutate
	bg builtGraph
}

// Prepare validates ws and builds its flow network without solving,
// honoring the same Options as Solve (the Solver field is ignored —
// it is Resolve's argument instead).
func Prepare(ws geom.WeightedSet, opts Options) (*Prepared, error) {
	bg, err := buildGraph(ws, opts)
	if err != nil {
		return nil, err
	}
	return &Prepared{ws: ws, bg: bg}, nil
}

// N returns the instance size.
func (pp *Prepared) N() int { return len(pp.ws) }

// NumContending returns |P^con| — the vertex count of the network
// minus source and sink.
func (pp *Prepared) NumContending() int { return pp.bg.numContending }

// NumEdges returns the edge count of the prepared network (0 when no
// points contend and no network exists).
func (pp *Prepared) NumEdges() int {
	if pp.bg.g == nil {
		return 0
	}
	return pp.bg.g.NumEdges()
}

// Contending returns a copy of the contending-point mask, in input
// order.
func (pp *Prepared) Contending() []bool {
	return append([]bool(nil), pp.bg.contending...)
}

// Resolve runs one max-flow computation over the prepared network
// (resetting residual capacities first, so repeated calls are
// idempotent) and decodes the min cut into a Solution — bit-identical
// to what Solve would return for the same instance and solver. A nil
// solver uses the default workspace-pooled push-relabel engine.
func (pp *Prepared) Resolve(solver FlowSolver) (Solution, error) {
	solverName := "custom"
	if solver == nil {
		solver = maxflow.PushRelabelHLPooled
		solverName = "pushrelabelhl-pooled"
	}

	n := len(pp.ws)
	// Assignment starts as the points' own labels; only contending
	// points can change (Lemma 15).
	assign := make([]geom.Label, n)
	for i := range pp.ws {
		assign[i] = pp.ws[i].Label
	}

	var flowValue float64
	graphEdges := 0
	if pp.bg.g != nil {
		graphEdges = pp.bg.g.NumEdges()
		pp.bg.g.Reset()
		res := solver(pp.bg.g)
		flowValue = res.Value
		for _, cut := range res.CutEdges() {
			if cut.ID >= len(pp.bg.owner) {
				// CutEdges already panics on ∞ edges; reaching here
				// would mean a finite type-3 edge, which cannot exist.
				return Solution{}, fmt.Errorf("passive: cut contains unexpected edge %d", cut.ID)
			}
			// Cutting a point's own edge flips its assignment.
			assign[pp.bg.owner[cut.ID]] ^= 1
		}
	}

	pts := make([]geom.Point, n)
	for i := range pp.ws {
		pts[i] = pp.ws[i].P
	}
	h, err := classifier.FromAssignment(pts, assign)
	if err != nil {
		// Lemma 16 guarantees the cut assignment is monotone; failure
		// indicates a solver bug and must surface loudly.
		return Solution{}, fmt.Errorf("passive: cut assignment not monotone: %w", err)
	}
	return Solution{
		Classifier: h,
		WErr:       flowValue,
		Assignment: assign,
		Stats: Stats{
			N:          n,
			Contending: pp.bg.numContending,
			GraphEdges: graphEdges,
			FlowValue:  flowValue,
			Solver:     solverName,
		},
	}, nil
}
