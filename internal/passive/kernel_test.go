package passive

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

func randomWeightedSet(rng *rand.Rand, n, d, gridSide int) geom.WeightedSet {
	ws := make(geom.WeightedSet, n)
	for i := range ws {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(gridSide))
		}
		ws[i] = geom.WeightedPoint{
			P:      p,
			Label:  geom.Label(rng.Intn(2)),
			Weight: 1 + rng.Float64()*4,
		}
	}
	return ws
}

// TestKernelSolveMatchesDense: for d >= 3 inputs (where the kernel
// path engages) the objective value must equal the dense literal
// Section 5.1 construction, including on duplicate-heavy grids.
func TestKernelSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := 3 + rng.Intn(3)
		n := 1 + rng.Intn(80)
		ws := randomWeightedSet(rng, n, d, 2+rng.Intn(3))
		fast, err := Solve(ws, Options{})
		if err != nil {
			t.Fatalf("trial %d: kernel solve: %v", trial, err)
		}
		dense, err := Solve(ws, Options{Dense: true})
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if math.Abs(fast.WErr-dense.WErr) > 1e-9 {
			t.Fatalf("trial %d (n=%d d=%d): kernel WErr %g != dense %g", trial, n, d, fast.WErr, dense.WErr)
		}
		if fast.Stats.Contending != dense.Stats.Contending {
			t.Fatalf("trial %d: kernel contending %d != dense %d", trial, fast.Stats.Contending, dense.Stats.Contending)
		}
		// The kernel assignment must itself achieve its objective.
		var got float64
		for i, wp := range ws {
			if fast.Assignment[i] != wp.Label {
				got += wp.Weight
			}
		}
		if math.Abs(got-fast.WErr) > 1e-9 {
			t.Fatalf("trial %d: assignment weight %g != WErr %g", trial, got, fast.WErr)
		}
	}
}

// TestSparseEdgesMatrixMatchesScalar: the kernel ∞-edge builder must
// emit exactly the same edge set as the scalar chain-index builder
// when both run over the same decomposition.
func TestSparseEdgesMatrixMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(5)
		n := 1 + rng.Intn(90)
		ws := randomWeightedSet(rng, n, d, 2+rng.Intn(3))
		pts := make([]geom.Point, n)
		labels := make([]geom.Label, n)
		for i := range ws {
			pts[i] = ws[i].P
			labels[i] = ws[i].Label
		}
		m := domgraph.Build(pts)
		dec := chains.DecomposeMatrix(pts, m)

		ci := buildChainIndex(ws, dec.Chains)
		contending := contendingPoints(ws, &ci)

		scalar := sparseInfinityEdges(ws, &ci, contending)
		kernel := sparseInfinityEdgesMatrix(m, dec, contending)

		sortEdges := func(e []sparseEdge) {
			sort.Slice(e, func(a, b int) bool {
				if e[a].from != e[b].from {
					return e[a].from < e[b].from
				}
				return e[a].to < e[b].to
			})
		}
		sortEdges(scalar)
		sortEdges(kernel)
		if len(scalar) != len(kernel) {
			t.Fatalf("trial %d (n=%d d=%d): %d scalar edges != %d kernel edges", trial, n, d, len(scalar), len(kernel))
		}
		for k := range scalar {
			if scalar[k] != kernel[k] {
				t.Fatalf("trial %d: edge %d: scalar %v != kernel %v", trial, k, scalar[k], kernel[k])
			}
		}
		// The kernel contending scan must agree with the chain-index scan.
		kc := m.ViolationParties(labels)
		for i := range contending {
			if kc[i] != contending[i] {
				t.Fatalf("trial %d: contending[%d] kernel=%v scalar=%v", trial, i, kc[i], contending[i])
			}
		}
	}
}
