// Package passive solves Problem 2 (passive weighted monotone
// classification) in polynomial time, implementing Theorem 4 of the
// paper: O(dn²) to build a flow network over the contending points,
// plus one max-flow computation; the minimum cut-edge set encodes an
// optimal monotone classifier.
//
// The construction (Section 5.1):
//
//	source --w(p)--> p        for each contending label-0 point p
//	q --w(q)--> sink          for each contending label-1 point q
//	p --∞--> q                for each contending pair p ⪰ q with
//	                          label(p)=0, label(q)=1
//
// A minimum cut never uses an ∞ edge (Lemma 18); cutting (source, p)
// means mis-classifying p as 1, cutting (q, sink) means mis-classifying
// q as 0. Lemmas 16 and 17 prove the resulting assignment is monotone
// and optimal. Non-contending points keep their own labels (Lemma 15).
package passive

import (
	"fmt"
	"math"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
)

// FlowSolver is a max-flow algorithm; any of the solvers in the
// maxflow package qualifies.
type FlowSolver func(*maxflow.Network) maxflow.Result

// Options configures Solve.
type Options struct {
	// Solver is the max-flow algorithm to use; the workspace-pooled
	// highest-label push-relabel engine (maxflow.PushRelabelHLPooled)
	// when nil.
	Solver FlowSolver
	// Dense forces the literal Section 5.1 construction with one
	// ∞ edge per dominating pair (Θ(n²) edges worst case). The
	// default sparse construction (see sparse.go) is exactly
	// equivalent but uses O(n·w) edges; Dense exists for tests and
	// the E9 ablation.
	Dense bool
	// Chains optionally supplies a precomputed chain decomposition of
	// the input points (index slices in ascending dominance order,
	// jointly partitioning the input) for the sparse construction,
	// saving the O(dn²)–O(n log n) decomposition when the caller
	// already has one. Ignored when Dense is set. The decomposition
	// need not be minimum — any valid one works; a wider one only
	// costs edges.
	Chains [][]int
	// Matrix optionally supplies the precomputed dominance matrix of
	// the input points (domgraph.Build over ws's points, in input
	// order), skipping the O(dn²) relation build. When set it drives
	// the kernel path at every dimension, so two Solve calls over the
	// same multiset with the same Matrix construct bit-identical
	// networks. When Chains is also set, the supplied decomposition is
	// adopted instead of re-deriving one from the matrix. Ignored when
	// Dense is set; Matrix.N() must equal len(ws).
	//
	// Deprecated: build a problem.Problem (internal/problem) with
	// problem.Prepare or problem.Adopt instead — it owns the matrix
	// lifecycle, the chain decomposition, and the prepared network,
	// and re-solves without re-deriving any of them. This field stays
	// for compatibility and is what problem.Adopt routes through.
	Matrix *domgraph.Matrix
}

// Stats reports instance measurements from a Solve call, used by the
// experiment harness.
type Stats struct {
	N          int     // input points
	Contending int     // |P^con|
	GraphEdges int     // edges of the constructed network
	FlowValue  float64 // max-flow value == optimal weighted error
	Solver     string  // flow solver used: "pushrelabelhl-pooled" (default) or "custom"
}

// Solution is the result of solving Problem 2.
type Solution struct {
	// Classifier is an optimal monotone classifier, represented by its
	// minimal positive anchors; it is total on R^d.
	Classifier *classifier.AnchorSet
	// WErr is the optimal weighted error w-err_P(Classifier).
	WErr float64
	// Assignment holds the classifier's value on each input point, in
	// input order.
	Assignment []geom.Label
	// Stats carries instance measurements.
	Stats Stats
}

// builtGraph is the Section 5.1 network of one instance, with the
// decoding metadata Solve needs to turn a min cut back into an
// assignment.
type builtGraph struct {
	contending    []bool
	numContending int
	g             *maxflow.Network // nil when no points contend
	// owner maps finite edge ids back to input indices. Finite
	// source/sink edges are added before every ∞ edge, so their ids
	// are exactly 0..len(owner)-1 — a dense slice, not a map, because
	// the lookup sits on the cut-decode path.
	owner []int32
}

// buildGraph validates ws and constructs its flow network.
func buildGraph(ws geom.WeightedSet, opts Options) (builtGraph, error) {
	if len(ws) == 0 {
		return builtGraph{}, fmt.Errorf("passive: empty input set")
	}
	if err := ws.Validate(); err != nil {
		return builtGraph{}, err
	}

	n := len(ws)
	// Contending points (Section 5.1): a label-0 point dominating some
	// label-1 point, or a label-1 point dominated by some label-0
	// point. The dense path is the paper's literal O(dn²) scan; the
	// sparse path answers the same question through a chain index.
	var contending []bool
	var ci chainIndex
	var km *domgraph.Matrix       // non-nil on the kernel path
	var kdec chains.Decomposition // its chain decomposition
	switch {
	case opts.Dense:
		contending = make([]bool, n)
		for i := range ws {
			if ws[i].Label != geom.Negative {
				continue
			}
			for j := range ws {
				if ws[j].Label != geom.Positive {
					continue
				}
				if geom.Dominates(ws[i].P, ws[j].P) {
					contending[i] = true
					contending[j] = true
				}
			}
		}
	case opts.Matrix != nil:
		// Caller-supplied relation: same kernel path as below, minus
		// the Build. Used by problem.Adopt (and historically by the
		// online updater directly), whose dynamically patched matrix
		// equals Build over the live points.
		if opts.Matrix.N() != n {
			return builtGraph{}, fmt.Errorf("passive: supplied matrix covers %d points, want %d", opts.Matrix.N(), n)
		}
		pts := make([]geom.Point, n)
		labels := make([]geom.Label, n)
		for i := range ws {
			pts[i] = ws[i].P
			labels[i] = ws[i].Label
		}
		km = opts.Matrix
		if opts.Chains != nil {
			// Adopt the caller's decomposition (problem.Prepare hands
			// back the one it derived from this very matrix) instead of
			// repeating the O(n^2.5) matching.
			if err := chains.ValidateDecomposition(pts, opts.Chains); err != nil {
				panic(fmt.Sprintf("passive: supplied decomposition invalid: %v", err))
			}
			kdec = chains.Decomposition{Chains: opts.Chains, Width: len(opts.Chains)}
		} else {
			kdec = chains.DecomposeMatrix(pts, km)
		}
		contending = km.ViolationParties(labels)
	case opts.Chains == nil && ws.Dim() >= 3:
		// Kernel path: the generic decomposition needs the O(dn²)
		// dominance relation anyway, so build it once as a bit-packed
		// matrix and reuse it for the chain decomposition, the
		// contending scan (word-level, O(n²/64)), and the ∞-edge
		// builder. Dimensions 1 and 2 keep the O(n log n) chain fast
		// paths below, which never materialize the relation at all.
		pts := make([]geom.Point, n)
		labels := make([]geom.Label, n)
		for i := range ws {
			pts[i] = ws[i].P
			labels[i] = ws[i].Label
		}
		km = domgraph.Build(pts)
		kdec = chains.DecomposeMatrix(pts, km)
		contending = km.ViolationParties(labels)
	default:
		ci = buildChainIndex(ws, opts.Chains)
		contending = contendingPoints(ws, &ci)
	}

	// Vertex numbering: 0 = source, 1 = sink, contending points at 2+.
	vertex := make([]int, n)
	nextV := 2
	for i := range ws {
		if contending[i] {
			vertex[i] = nextV
			nextV++
		} else {
			vertex[i] = -1
		}
	}
	numContending := nextV - 2
	if numContending == 0 {
		return builtGraph{contending: contending}, nil
	}

	const source, sink = 0, 1
	g := maxflow.New(nextV, source, sink)
	owner := make([]int32, 0, numContending)
	for i := range ws {
		if !contending[i] {
			continue
		}
		switch ws[i].Label {
		case geom.Negative:
			g.AddEdge(source, vertex[i], ws[i].Weight)
		case geom.Positive:
			g.AddEdge(vertex[i], sink, ws[i].Weight)
		}
		owner = append(owner, int32(i))
	}
	if opts.Dense {
		// Literal type-3 edges: one per dominating pair.
		for i := range ws {
			if !contending[i] || ws[i].Label != geom.Negative {
				continue
			}
			for j := range ws {
				if !contending[j] || ws[j].Label != geom.Positive {
					continue
				}
				if geom.Dominates(ws[i].P, ws[j].P) {
					g.AddEdge(vertex[i], vertex[j], math.Inf(1))
				}
			}
		}
	} else if km != nil {
		// Sparsified reachability network on the kernel matrix.
		for _, e := range sparseInfinityEdgesMatrix(km, kdec, contending) {
			g.AddEdge(vertex[e.from], vertex[e.to], math.Inf(1))
		}
	} else {
		// Sparsified reachability network (see sparse.go).
		for _, e := range sparseInfinityEdges(ws, &ci, contending) {
			g.AddEdge(vertex[e.from], vertex[e.to], math.Inf(1))
		}
	}
	return builtGraph{contending: contending, numContending: numContending, g: g, owner: owner}, nil
}

// BuildNetwork constructs the Section 5.1 flow network of ws without
// solving it: exactly the instance Solve hands its max-flow solver.
// It returns nil (and no error) when no points contend — then the
// input is already monotone-consistent and there is nothing to cut.
// Benchmarks and tools use this to exercise flow solvers on genuine
// passive-construction topologies.
func BuildNetwork(ws geom.WeightedSet, opts Options) (*maxflow.Network, error) {
	bg, err := buildGraph(ws, opts)
	if err != nil {
		return nil, err
	}
	return bg.g, nil
}

// Solve computes an optimal monotone classifier for the fully-labeled
// weighted set ws. The input must be non-empty, dimensionally
// consistent, and carry positive finite weights. Solve is exactly
// Prepare followed by one Resolve; callers that re-solve the same
// instance keep the Prepared (or a problem.Problem wrapping one) and
// skip the network reconstruction.
func Solve(ws geom.WeightedSet, opts Options) (Solution, error) {
	pp, err := Prepare(ws, opts)
	if err != nil {
		return Solution{}, err
	}
	return pp.Resolve(opts.Solver)
}

// OptimalError returns just the optimal weighted error k* of ws,
// i.e. min over monotone h of w-err_P(h).
func OptimalError(ws geom.WeightedSet) (float64, error) {
	sol, err := Solve(ws, Options{})
	if err != nil {
		return 0, err
	}
	return sol.WErr, nil
}
