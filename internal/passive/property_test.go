package passive

import (
	"math/rand"
	"testing"
	"testing/quick"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

// Property (testing/quick): on any random weighted instance, the
// solver's reported optimum is a true lower bound — no randomly drawn
// monotone anchor classifier beats it — and a true achieved value —
// its own classifier attains exactly that weighted error.
func TestQuickSolveOptimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	property := func() bool {
		n := 1 + rng.Intn(15)
		d := 1 + rng.Intn(3)
		ws := randWeightedSet(rng, n, d, 4, true)
		sol, err := Solve(ws, Options{})
		if err != nil {
			return false
		}
		if geom.WErr(ws, sol.Classifier.Classify) != sol.WErr {
			return false
		}
		for probe := 0; probe < 10; probe++ {
			na := 1 + rng.Intn(3)
			anchors := make([]geom.Point, na)
			for a := range anchors {
				p := make(geom.Point, d)
				for k := range p {
					p[k] = float64(rng.Intn(5))
				}
				anchors[a] = p
			}
			h := classifier.MustAnchorSet(d, anchors)
			if geom.WErr(ws, h.Classify) < sol.WErr-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): scaling all weights by a positive constant
// scales the optimum by the same constant, and the optimal assignment
// is invariant.
func TestQuickSolveWeightScalingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	property := func() bool {
		n := 2 + rng.Intn(12)
		ws := randWeightedSet(rng, n, 2, 4, true)
		scale := 1 + rng.Float64()*9
		scaled := make(geom.WeightedSet, n)
		for i, wp := range ws {
			scaled[i] = geom.WeightedPoint{P: wp.P, Label: wp.Label, Weight: wp.Weight * scale}
		}
		a, err := Solve(ws, Options{})
		if err != nil {
			return false
		}
		b, err := Solve(scaled, Options{})
		if err != nil {
			return false
		}
		diff := b.WErr - a.WErr*scale
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): flipping every label and mirroring every
// coordinate (negating) leaves the optimal error unchanged — the
// problem's order-reversal symmetry.
func TestQuickSolveMirrorSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	property := func() bool {
		n := 1 + rng.Intn(12)
		ws := randWeightedSet(rng, n, 2, 4, true)
		mirror := make(geom.WeightedSet, n)
		for i, wp := range ws {
			neg := make(geom.Point, len(wp.P))
			for k, v := range wp.P {
				neg[k] = -v
			}
			mirror[i] = geom.WeightedPoint{P: neg, Label: wp.Label ^ 1, Weight: wp.Weight}
		}
		a, err := Solve(ws, Options{})
		if err != nil {
			return false
		}
		b, err := Solve(mirror, Options{})
		if err != nil {
			return false
		}
		diff := a.WErr - b.WErr
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(func() bool { return property() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
