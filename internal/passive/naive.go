package passive

import (
	"fmt"
	"math"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
)

// NaiveLimit is the largest input NaiveSolve accepts; the 2^n subset
// enumeration makes anything bigger impractical. Cross-checking
// harnesses gate their naive comparisons on it.
const NaiveLimit = 25

// NaiveSolve is the exponential-time reference solver sketched in
// Section 1.2 of the paper: enumerate every subset S ⊆ P, check whether
// mapping S to 1 and P \ S to 0 is monotone-consistent, and keep the
// assignment of minimum weighted error. It exists to cross-check Solve
// on small inputs and to anchor experiment E5's exponential-vs-
// polynomial comparison. It refuses inputs larger than NaiveLimit
// points.
func NaiveSolve(ws geom.WeightedSet) (Solution, error) {
	n := len(ws)
	if n == 0 {
		return Solution{}, fmt.Errorf("passive: empty input set")
	}
	if n > NaiveLimit {
		return Solution{}, fmt.Errorf("passive: naive solver limited to %d points, got %d", NaiveLimit, n)
	}
	if err := ws.Validate(); err != nil {
		return Solution{}, err
	}

	// Precompute dominance pairs once.
	type pair struct{ hi, lo int }
	var pairs []pair
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && geom.Dominates(ws[i].P, ws[j].P) {
				pairs = append(pairs, pair{hi: i, lo: j})
			}
		}
	}

	bestErr := math.Inf(1)
	var bestMask uint32
	for mask := uint32(0); mask < 1<<n; mask++ {
		ok := true
		for _, pr := range pairs {
			// hi assigned 0 while dominated lo assigned 1 breaks
			// monotonicity.
			if mask&(1<<pr.hi) == 0 && mask&(1<<pr.lo) != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var e float64
		for i := 0; i < n; i++ {
			assigned := geom.Label(0)
			if mask&(1<<i) != 0 {
				assigned = geom.Positive
			}
			if assigned != ws[i].Label {
				e += ws[i].Weight
			}
		}
		if e < bestErr {
			bestErr = e
			bestMask = mask
		}
	}

	assign := make([]geom.Label, n)
	pts := make([]geom.Point, n)
	for i := range ws {
		pts[i] = ws[i].P
		if bestMask&(1<<i) != 0 {
			assign[i] = geom.Positive
		}
	}
	h, err := classifier.FromAssignment(pts, assign)
	if err != nil {
		return Solution{}, fmt.Errorf("passive: naive assignment not monotone: %w", err)
	}
	return Solution{
		Classifier: h,
		WErr:       bestErr,
		Assignment: assign,
		Stats:      Stats{N: n, FlowValue: bestErr},
	}, nil
}
