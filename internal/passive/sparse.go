package passive

import (
	"fmt"
	"sort"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// The flow network of Section 5.1 nominally contains one ∞-capacity
// edge per dominating pair (p, q) ∈ P0^con × P1^con — Θ(n²) edges on
// adversarial inputs, which dominates both memory and max-flow time.
// This file builds an equivalent sparse network: ∞ edges follow a
// chain decomposition of the contending points (consecutive links
// inside each chain, plus, for every point and every other chain, one
// link to the highest chain member it dominates). Two facts make the
// substitution exact:
//
//  1. soundness — every ∞ edge (a, b) added satisfies a ⪰ b, so any
//     source→sink path still witnesses a dominating pair
//     (label-0 point) ⪰ (label-1 point) by transitivity;
//  2. completeness — if a ⪰ b then b is reachable from a through ∞
//     edges: within a chain via consecutive links, across chains via
//     the binary-searched link plus the target chain's internal links
//     (the dominated set within a chain is always a prefix).
//
// Hence the two networks admit exactly the same source-sink cuts made
// of finite edges, and the min cut — which never uses ∞ edges
// (Lemma 18) — is unchanged. Edge count drops to O(n·w).

// chainIndex locates points within a chain decomposition.
type chainIndex struct {
	dec      chains.Decomposition
	chainOf  []int   // chain id per point index
	posInCh  []int   // position within its chain
	labelOne [][]int // per chain: prefix counts of label-1 members
	labelZer [][]int // per chain: prefix counts of label-0 members
}

// buildChainIndex decomposes the points of ws into chains (or adopts
// the caller's decomposition) and precomputes per-chain prefix label
// counts.
func buildChainIndex(ws geom.WeightedSet, preset [][]int) chainIndex {
	pts := make([]geom.Point, len(ws))
	for i := range ws {
		pts[i] = ws[i].P
	}
	var dec chains.Decomposition
	if preset != nil {
		if err := chains.ValidateDecomposition(pts, preset); err != nil {
			panic(fmt.Sprintf("passive: supplied decomposition invalid: %v", err))
		}
		dec = chains.Decomposition{Chains: preset, Width: len(preset)}
	} else {
		dec = chains.Decompose(pts)
	}
	ci := chainIndex{
		dec:      dec,
		chainOf:  make([]int, len(ws)),
		posInCh:  make([]int, len(ws)),
		labelOne: make([][]int, len(dec.Chains)),
		labelZer: make([][]int, len(dec.Chains)),
	}
	for c, chain := range dec.Chains {
		ones := make([]int, len(chain)+1)
		zeros := make([]int, len(chain)+1)
		for k, idx := range chain {
			ci.chainOf[idx] = c
			ci.posInCh[idx] = k
			ones[k+1] = ones[k]
			zeros[k+1] = zeros[k]
			if ws[idx].Label == geom.Positive {
				ones[k+1]++
			} else {
				zeros[k+1]++
			}
		}
		ci.labelOne[c] = ones
		ci.labelZer[c] = zeros
	}
	return ci
}

// dominatedPrefix returns the number of members of chain c dominated
// by point p (they always form a prefix of the ascending chain).
// Point p itself, when it lies in chain c, is part of that prefix
// (a point dominates itself); callers that need strictly-other points
// subtract it out via the label counts.
func (ci *chainIndex) dominatedPrefix(ws geom.WeightedSet, p geom.Point, c int) int {
	chain := ci.dec.Chains[c]
	return sort.Search(len(chain), func(k int) bool {
		return !geom.Dominates(p, ws[chain[k]].P)
	})
}

// dominatingSuffix returns the start position of the members of chain
// c that dominate point p (they always form a suffix).
func (ci *chainIndex) dominatingSuffix(ws geom.WeightedSet, p geom.Point, c int) int {
	chain := ci.dec.Chains[c]
	return sort.Search(len(chain), func(k int) bool {
		return geom.Dominates(ws[chain[k]].P, p)
	})
}

// contendingPoints computes the contending set of Section 5.1 in
// O(n·w·(d + log n)) time using the chain index: a label-0 point is
// contending iff some dominated chain prefix contains a label-1
// point; a label-1 point iff some dominating chain suffix contains a
// label-0 point.
func contendingPoints(ws geom.WeightedSet, ci *chainIndex) []bool {
	out := make([]bool, len(ws))
	for i := range ws {
		p := ws[i].P
		switch ws[i].Label {
		case geom.Negative:
			for c := range ci.dec.Chains {
				pre := ci.dominatedPrefix(ws, p, c)
				if ci.labelOne[c][pre] > 0 {
					out[i] = true
					break
				}
			}
		case geom.Positive:
			for c := range ci.dec.Chains {
				suf := ci.dominatingSuffix(ws, p, c)
				if ci.labelZer[c][len(ci.dec.Chains[c])]-ci.labelZer[c][suf] > 0 {
					out[i] = true
					break
				}
			}
		}
	}
	return out
}

// sparseEdge is one ∞ edge of the sparsified reachability network.
type sparseEdge struct{ from, to int } // point indices

// sparseInfinityEdges emits the O(m·w) ∞ edges connecting the
// contending points so that reachability equals dominance restricted
// to the contending set.
func sparseInfinityEdges(ws geom.WeightedSet, ci *chainIndex, contending []bool) []sparseEdge {
	// Restrict each chain to its contending members, preserving order.
	restricted := make([][]int, len(ci.dec.Chains))
	for c, chain := range ci.dec.Chains {
		for _, idx := range chain {
			if contending[idx] {
				restricted[c] = append(restricted[c], idx)
			}
		}
	}
	var edges []sparseEdge
	// Consecutive links within each restricted chain (higher → lower).
	// Coordinate-equal neighbours dominate each other in *both*
	// directions, so they also get the forward link; without it a
	// label-0 point could not reach its label-1 duplicate.
	for _, chain := range restricted {
		for k := 1; k < len(chain); k++ {
			edges = append(edges, sparseEdge{from: chain[k], to: chain[k-1]})
			if ws[chain[k]].P.Equal(ws[chain[k-1]].P) {
				edges = append(edges, sparseEdge{from: chain[k-1], to: chain[k]})
			}
		}
	}
	// Cross-chain links: each contending point links to the highest
	// contending member it dominates in every other chain.
	for i := range ws {
		if !contending[i] {
			continue
		}
		p := ws[i].P
		home := ci.chainOf[i]
		for c, chain := range restricted {
			if c == home || len(chain) == 0 {
				continue
			}
			// Dominated contending members form a prefix.
			pre := sort.Search(len(chain), func(k int) bool {
				return !geom.Dominates(p, ws[chain[k]].P)
			})
			if pre > 0 {
				edges = append(edges, sparseEdge{from: i, to: chain[pre-1]})
			}
		}
	}
	return edges
}

// sparseInfinityEdgesMatrix is sparseInfinityEdges driven by the
// bit-packed dominance kernel instead of scalar geom.Dominates calls:
// the same transitive-reduction-style ∞-edge set (consecutive links
// inside each restricted chain, one cross-chain link to the highest
// dominated member, duplicate forward links), with every dominance and
// equality query answered by an O(1) bit test on the prebuilt matrix.
// The two builders emit exactly the same edge set; tests assert it.
func sparseInfinityEdgesMatrix(m *domgraph.Matrix, dec chains.Decomposition, contending []bool) []sparseEdge {
	chainOf := make([]int, m.N())
	restricted := make([][]int, len(dec.Chains))
	for c, chain := range dec.Chains {
		for _, idx := range chain {
			chainOf[idx] = c
			if contending[idx] {
				restricted[c] = append(restricted[c], idx)
			}
		}
	}
	var edges []sparseEdge
	// Consecutive links within each restricted chain (higher → lower),
	// plus the forward link between coordinate-equal neighbours (equal
	// points dominate each other in both directions; see the scalar
	// builder above).
	for _, chain := range restricted {
		for k := 1; k < len(chain); k++ {
			edges = append(edges, sparseEdge{from: chain[k], to: chain[k-1]})
			if m.Equal(chain[k], chain[k-1]) {
				edges = append(edges, sparseEdge{from: chain[k-1], to: chain[k]})
			}
		}
	}
	// Cross-chain links: the dominated members of an ascending chain
	// always form a prefix (transitivity), so a binary search over
	// O(1) bit lookups finds the highest one.
	for i := range contending {
		if !contending[i] {
			continue
		}
		home := chainOf[i]
		for c, chain := range restricted {
			if c == home || len(chain) == 0 {
				continue
			}
			pre := sort.Search(len(chain), func(k int) bool {
				return !m.Dominates(i, chain[k])
			})
			if pre > 0 {
				edges = append(edges, sparseEdge{from: i, to: chain[pre-1]})
			}
		}
	}
	return edges
}
