package passive

import (
	"math"
	"math/rand"
	"testing"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
)

func randWeightedSet(rng *rand.Rand, n, d, grid int, intWeights bool) geom.WeightedSet {
	ws := make(geom.WeightedSet, n)
	for i := range ws {
		p := make(geom.Point, d)
		for k := range p {
			p[k] = float64(rng.Intn(grid))
		}
		w := 1.0
		if intWeights {
			w = float64(1 + rng.Intn(9))
		} else {
			w = rng.Float64() + 0.1
		}
		ws[i] = geom.WeightedPoint{P: p, Label: geom.Label(rng.Intn(2)), Weight: w}
	}
	return ws
}

// checkSolution verifies internal consistency of a solution: the
// classifier is monotone on the input points, reproduces its own
// assignment, and its measured w-err equals the reported optimum.
func checkSolution(t *testing.T, ws geom.WeightedSet, sol Solution) {
	t.Helper()
	pts := make([]geom.Point, len(ws))
	for i := range ws {
		pts[i] = ws[i].P
	}
	if ok, p, q := classifier.IsMonotoneOn(pts, sol.Classifier); !ok {
		t.Fatalf("solution classifier not monotone: %v vs %v", p, q)
	}
	measured := geom.WErr(ws, sol.Classifier.Classify)
	if math.Abs(measured-sol.WErr) > 1e-9 {
		t.Fatalf("reported WErr %g but classifier achieves %g", sol.WErr, measured)
	}
	for i := range ws {
		if sol.Classifier.Classify(ws[i].P) != sol.Assignment[i] {
			t.Fatalf("assignment[%d] inconsistent with classifier", i)
		}
	}
}

func TestSolveTrivialCases(t *testing.T) {
	// Already monotone: zero error.
	ws := geom.WeightedSet{
		{P: geom.Point{0, 0}, Label: geom.Negative, Weight: 1},
		{P: geom.Point{2, 2}, Label: geom.Positive, Weight: 1},
	}
	sol, err := Solve(ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, ws, sol)
	if sol.WErr != 0 {
		t.Errorf("WErr = %g, want 0", sol.WErr)
	}
	if sol.Stats.Contending != 0 {
		t.Errorf("Contending = %d, want 0", sol.Stats.Contending)
	}

	// Single conflicting pair: cheaper side flips.
	ws = geom.WeightedSet{
		{P: geom.Point{1, 1}, Label: geom.Negative, Weight: 5},
		{P: geom.Point{0, 0}, Label: geom.Positive, Weight: 2},
	}
	sol, err = Solve(ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, ws, sol)
	if sol.WErr != 2 {
		t.Errorf("WErr = %g, want 2 (flip the weight-2 point)", sol.WErr)
	}
	if sol.Stats.Contending != 2 {
		t.Errorf("Contending = %d, want 2", sol.Stats.Contending)
	}
}

func TestSolveEmptyRejected(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := NaiveSolve(nil); err == nil {
		t.Error("empty input accepted by naive")
	}
	if _, err := Solve(geom.WeightedSet{{P: geom.Point{1}, Label: 0, Weight: -1}}, Options{}); err == nil {
		t.Error("invalid weight accepted")
	}
}

func TestSolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(10)
		d := 1 + rng.Intn(3)
		ws := randWeightedSet(rng, n, d, 4, true)
		sol, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, ws, sol)
		naive, err := NaiveSolve(ws)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sol.WErr-naive.WErr) > 1e-9 {
			t.Fatalf("trial %d: flow %g != naive %g (ws=%v)", trial, sol.WErr, naive.WErr, ws)
		}
	}
}

func TestSolveMatchesBestThreshold1D(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		ws := randWeightedSet(rng, n, 1, 10, false)
		sol, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, ws, sol)
		_, want := classifier.BestThreshold1D(ws)
		if math.Abs(sol.WErr-want) > 1e-9 {
			t.Fatalf("trial %d: flow %g != threshold sweep %g", trial, sol.WErr, want)
		}
	}
}

func TestSolveAllSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	// Every registered max-flow implementation must yield the same
	// optimum; new registry entries are covered automatically.
	impls := maxflow.Solvers()
	for trial := 0; trial < 40; trial++ {
		ws := randWeightedSet(rng, 3+rng.Intn(20), 2, 5, true)
		var vals []float64
		for _, name := range maxflow.SolverNames() {
			sol, err := Solve(ws, Options{Solver: FlowSolver(impls[name])})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkSolution(t, ws, sol)
			vals = append(vals, sol.WErr)
		}
		for i := 1; i < len(vals); i++ {
			if math.Abs(vals[0]-vals[i]) > 1e-9 {
				t.Fatalf("trial %d: solver disagreement %v", trial, vals)
			}
		}
	}
}

// No monotone classifier can beat the optimum: sample random anchor
// classifiers and verify none does better than the reported WErr.
func TestSolveOptimalityAgainstRandomClassifiers(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 30; trial++ {
		ws := randWeightedSet(rng, 20, 2, 6, true)
		sol, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 50; probe++ {
			na := 1 + rng.Intn(4)
			anchors := make([]geom.Point, na)
			for a := range anchors {
				anchors[a] = geom.Point{float64(rng.Intn(7)), float64(rng.Intn(7))}
			}
			h := classifier.MustAnchorSet(2, anchors)
			if got := geom.WErr(ws, h.Classify); got < sol.WErr-1e-9 {
				t.Fatalf("trial %d: random classifier beats 'optimal' (%g < %g)", trial, got, sol.WErr)
			}
		}
	}
}

func TestSolveDuplicateConflictingPoints(t *testing.T) {
	// The same coordinates with both labels force an error of the
	// lighter weight.
	ws := geom.WeightedSet{
		{P: geom.Point{1, 1}, Label: geom.Negative, Weight: 3},
		{P: geom.Point{1, 1}, Label: geom.Positive, Weight: 7},
	}
	sol, err := Solve(ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkSolution(t, ws, sol)
	if sol.WErr != 3 {
		t.Errorf("WErr = %g, want 3", sol.WErr)
	}
}

func TestSolveAllSameLabel(t *testing.T) {
	for _, label := range []geom.Label{geom.Negative, geom.Positive} {
		ws := geom.WeightedSet{
			{P: geom.Point{0, 0}, Label: label, Weight: 1},
			{P: geom.Point{1, 1}, Label: label, Weight: 1},
			{P: geom.Point{2, 0}, Label: label, Weight: 1},
		}
		sol, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkSolution(t, ws, sol)
		if sol.WErr != 0 {
			t.Errorf("label %v: WErr = %g, want 0", label, sol.WErr)
		}
	}
}

func TestNaiveSolveSizeLimit(t *testing.T) {
	ws := randWeightedSet(rand.New(rand.NewSource(1)), 26, 2, 4, true)
	if _, err := NaiveSolve(ws); err == nil {
		t.Error("oversized naive input accepted")
	}
}

func TestOptimalError(t *testing.T) {
	ws := geom.WeightedSet{
		{P: geom.Point{1}, Label: geom.Positive, Weight: 4},
		{P: geom.Point{2}, Label: geom.Negative, Weight: 9},
	}
	got, err := OptimalError(ws)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("OptimalError = %g, want 4", got)
	}
	if _, err := OptimalError(nil); err == nil {
		t.Error("empty input accepted")
	}
}

// Unweighted k* on a larger random instance must match the naive
// solver run on the same instance (unit weights), exercising the
// integer special case the active algorithm relies on.
func TestSolveUnitWeightsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(12)
		ws := randWeightedSet(rng, n, 2, 3, true)
		for i := range ws {
			ws[i].Weight = 1
		}
		sol, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NaiveSolve(ws)
		if err != nil {
			t.Fatal(err)
		}
		if sol.WErr != naive.WErr {
			t.Fatalf("trial %d: %g != %g", trial, sol.WErr, naive.WErr)
		}
	}
}

// The sparse reachability network (default) and the paper's literal
// dense construction must produce identical optima on random
// instances of every dimension.
func TestSolveSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(40)
		d := 1 + rng.Intn(4)
		ws := randWeightedSet(rng, n, d, 4, true)
		sparse, err := Solve(ws, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dense, err := Solve(ws, Options{Dense: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sparse.WErr-dense.WErr) > 1e-9 {
			t.Fatalf("trial %d: sparse %g != dense %g (ws=%v)", trial, sparse.WErr, dense.WErr, ws)
		}
		checkSolution(t, ws, sparse)
		checkSolution(t, ws, dense)
	}
}

// The sparse construction must stay small: O(n·w) edges where the
// dense graph would need Θ(n²).
func TestSolveSparseEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	// A worst case for the dense graph: one long noisy chain, where
	// almost every pair is comparable and contending.
	n := 4000
	ws := make(geom.WeightedSet, n)
	for i := 0; i < n; i++ {
		label := geom.Label(0)
		if i >= n/2 {
			label = geom.Positive
		}
		if rng.Float64() < 0.2 {
			label ^= 1
		}
		ws[i] = geom.WeightedPoint{P: geom.Point{float64(i), float64(i)}, Label: label, Weight: 1}
	}
	sol, err := Solve(ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Width is 1: the sparse graph should hold ~n finite + ~n infinite
	// edges, nowhere near the ~n²/8 dense pairs.
	if sol.Stats.GraphEdges > 5*n {
		t.Errorf("sparse graph has %d edges on a width-1 instance of %d points", sol.Stats.GraphEdges, n)
	}
	// And it must still be exactly optimal (cross-check via 1-D sweep:
	// width-1 chains are a 1-D problem in disguise).
	oneD := make(geom.WeightedSet, n)
	for i, wp := range ws {
		oneD[i] = geom.WeightedPoint{P: geom.Point{wp.P[0]}, Label: wp.Label, Weight: wp.Weight}
	}
	_, want := classifier.BestThreshold1D(oneD)
	if math.Abs(sol.WErr-want) > 1e-9 {
		t.Errorf("sparse optimum %g != 1-D sweep %g", sol.WErr, want)
	}
}
