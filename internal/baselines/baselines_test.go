package baselines

import (
	"math/rand"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

func split(lab []geom.LabeledPoint) ([]geom.Point, *oracle.Static) {
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	return pts, oracle.FromLabeled(lab)
}

func TestFullProbeIsExactOptimal(t *testing.T) {
	lab := dataset.Figure1()
	pts, o := split(lab)
	out, err := FullProbe(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != len(pts) {
		t.Errorf("probes = %d, want %d", out.Probes, len(pts))
	}
	if got := geom.Err(lab, out.Classifier.Classify); got != 3 {
		t.Errorf("err = %d, want the optimum 3", got)
	}
}

func TestUniformERMFullSampleIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lab := dataset.Figure1()
	pts, o := split(lab)
	out, err := UniformERM(pts, o, len(pts), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != len(pts) {
		t.Errorf("probes = %d, want %d", out.Probes, len(pts))
	}
	if got := geom.Err(lab, out.Classifier.Classify); got != 3 {
		t.Errorf("err = %d, want 3", got)
	}
	// Oversized m clamps to n.
	out2, err := UniformERM(pts, oracle.FromLabeled(lab), 10*len(pts), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Probes != len(pts) {
		t.Errorf("clamped probes = %d, want %d", out2.Probes, len(pts))
	}
}

func TestUniformERMSubsampleReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 3000, D: 2, Noise: 0})
	pts, o := split(lab)
	out, err := UniformERM(pts, o, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Probes != 300 {
		t.Errorf("probes = %d, want 300", out.Probes)
	}
	// On a noiseless planted set the ERM on 10% should still be a good
	// classifier: additive error well below 10% of n.
	if got := geom.Err(lab, out.Classifier.Classify); got > 300 {
		t.Errorf("err = %d, too high for a noiseless input", got)
	}
	if ok, p, q := classifier.IsMonotoneOn(pts, out.Classifier); !ok {
		t.Errorf("ERM classifier not monotone: %v vs %v", p, q)
	}
}

func TestRBSNoiselessFindsBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 2000, W: 4, Noise: 0})
	pts, o := split(lab)
	out, err := RBS(pts, o, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless chains: binary search finds each boundary exactly, and
	// the passive solve on exact segment labels is optimal: error 0.
	if got := geom.Err(lab, out.Classifier.Classify); got != 0 {
		t.Errorf("noiseless RBS err = %d, want 0", got)
	}
	// Probes should be around w · log(n/w), far below n.
	if out.Probes > 400 {
		t.Errorf("probes = %d, expected O(w log n)", out.Probes)
	}
}

func TestRBSNoisyStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ratios []float64
	for trial := 0; trial < 10; trial++ {
		lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 1500, W: 3, Noise: 0.1})
		pts, o := split(lab)
		ld := geom.LabeledDataset{Points: lab}
		kstar, err := passive.OptimalError(ld.Weighted())
		if err != nil {
			t.Fatal(err)
		}
		if kstar == 0 {
			continue
		}
		out, err := RBS(pts, o, rng)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(geom.Err(lab, out.Classifier.Classify))/kstar)
	}
	if len(ratios) == 0 {
		t.Fatal("no usable trials")
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	// The reconstruction targets ~2k* in expectation; allow slack but
	// catch wild regressions.
	if mean := sum / float64(len(ratios)); mean > 3.5 {
		t.Errorf("mean RBS error ratio %g, expected around 2", mean)
	}
}

func TestBaselineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	o := oracle.NewStatic([]geom.Label{0})
	pts := []geom.Point{{1, 1}}
	if _, err := FullProbe(nil, o); err == nil {
		t.Error("FullProbe empty accepted")
	}
	if _, err := FullProbe(pts, oracle.NewStatic(nil)); err == nil {
		t.Error("FullProbe size mismatch accepted")
	}
	if _, err := UniformERM(nil, o, 1, rng); err == nil {
		t.Error("UniformERM empty accepted")
	}
	if _, err := UniformERM(pts, o, 0, rng); err == nil {
		t.Error("UniformERM zero sample accepted")
	}
	if _, err := UniformERM(pts, oracle.NewStatic(nil), 1, rng); err == nil {
		t.Error("UniformERM size mismatch accepted")
	}
	if _, err := RBS(nil, o, rng); err == nil {
		t.Error("RBS empty accepted")
	}
	if _, err := RBS(pts, oracle.NewStatic(nil), rng); err == nil {
		t.Error("RBS size mismatch accepted")
	}
}

func TestBaselinesPropagateOracleErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lab := dataset.Planted(rng, dataset.PlantedParams{N: 100, D: 2, Noise: 0})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	mk := func() oracle.Oracle { return oracle.NewBudgeted(oracle.FromLabeled(lab), 3) }
	if _, err := FullProbe(pts, mk()); err == nil {
		t.Error("FullProbe budget error not propagated")
	}
	if _, err := UniformERM(pts, mk(), 50, rng); err == nil {
		t.Error("UniformERM budget error not propagated")
	}
	if _, err := RBS(pts, mk(), rng); err == nil {
		t.Error("RBS budget error not propagated")
	}
}

func TestRBSWeightsCoverChains(t *testing.T) {
	// The weighted probe set must account for every chain position
	// exactly once: total weight == n.
	rng := rand.New(rand.NewSource(11))
	lab := dataset.WidthControlled(rng, dataset.WidthParams{N: 500, W: 5, Noise: 0.2})
	pts := make([]geom.Point, len(lab))
	for i, lp := range lab {
		pts[i] = lp.P
	}
	cache := oracle.NewCaching(oracle.FromLabeled(lab))
	// Reach into the construction by replicating it: run RBS and
	// verify via its public outcome that probes > 0, then check the
	// weight invariant through a direct chain run.
	dec := chains.Decompose(pts)
	var total float64
	for _, chain := range dec.Chains {
		probed, err := binarySearchChain(cache, chain, rng)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for k, pr := range probed {
			w := float64(pr.pos - prev)
			if k == len(probed)-1 {
				w += float64(len(chain) - 1 - pr.pos)
			}
			total += w
			prev = pr.pos
		}
	}
	if total != float64(len(pts)) {
		t.Errorf("total RBS weight %g, want %d", total, len(pts))
	}
}
