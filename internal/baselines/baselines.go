// Package baselines implements the comparison algorithms the paper
// discusses in Section 1.2, metered through the same oracle interface
// as the core algorithm so experiment E7 can compare probing cost and
// error like-for-like:
//
//   - FullProbe: reveal every label, then solve Problem 2 exactly — the
//     Θ(n)-probe optimal learner Theorem 1 proves unavoidable for exact
//     answers.
//   - UniformERM: probe a uniform sample of m points and return the
//     empirical-risk minimizer over monotone classifiers (our passive
//     solver on the sample). This is the passive-sampling core that
//     A²-style bounds build on; it guarantees an additive εn error with
//     m = O(w/ε²) samples, which is much weaker than a multiplicative
//     (1+ε)k* guarantee when k* ≪ n.
//   - RBS: a reconstruction of the Tao'18-style learner (that paper's
//     text is not available here; see DESIGN.md §2.3): a randomized
//     binary search per chain localizes each chain's label boundary
//     with O(log|C_i|) probes, probed points stand in for their chain
//     segments with proportional weights, and a weighted passive solve
//     stitches the chains into a monotone classifier. Expected error
//     tracks ~2k* rather than (1+ε)k*.
package baselines

import (
	"fmt"
	"math/rand"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// Outcome is the common result shape of every baseline.
type Outcome struct {
	// Classifier is the learned monotone classifier.
	Classifier *classifier.AnchorSet
	// Probes is the number of distinct points revealed.
	Probes int
}

// FullProbe reveals all n labels and solves Problem 2 exactly.
func FullProbe(pts []geom.Point, o oracle.Oracle) (Outcome, error) {
	if len(pts) == 0 {
		return Outcome{}, fmt.Errorf("baselines: empty input")
	}
	if o.Len() != len(pts) {
		return Outcome{}, fmt.Errorf("baselines: oracle covers %d points, input has %d", o.Len(), len(pts))
	}
	cache := oracle.NewCaching(o)
	ws := make(geom.WeightedSet, len(pts))
	for i, p := range pts {
		label, err := cache.Probe(i)
		if err != nil {
			return Outcome{}, fmt.Errorf("baselines: probing %d: %w", i, err)
		}
		ws[i] = geom.WeightedPoint{P: p, Label: label, Weight: 1}
	}
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Classifier: sol.Classifier, Probes: cache.Distinct()}, nil
}

// UniformERM probes a uniform without-replacement sample of m points
// and returns the optimal monotone classifier on the sample, each
// sampled point weighted n/m.
func UniformERM(pts []geom.Point, o oracle.Oracle, m int, rng *rand.Rand) (Outcome, error) {
	n := len(pts)
	if n == 0 {
		return Outcome{}, fmt.Errorf("baselines: empty input")
	}
	if o.Len() != n {
		return Outcome{}, fmt.Errorf("baselines: oracle covers %d points, input has %d", o.Len(), n)
	}
	if m <= 0 {
		return Outcome{}, fmt.Errorf("baselines: sample size %d must be positive", m)
	}
	if m > n {
		m = n
	}
	cache := oracle.NewCaching(o)
	idxs := samplePerm(rng, n, m)
	ws := make(geom.WeightedSet, 0, m)
	for _, i := range idxs {
		label, err := cache.Probe(i)
		if err != nil {
			return Outcome{}, fmt.Errorf("baselines: probing %d: %w", i, err)
		}
		ws = append(ws, geom.WeightedPoint{P: pts[i], Label: label, Weight: float64(n) / float64(m)})
	}
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Classifier: sol.Classifier, Probes: cache.Distinct()}, nil
}

// samplePerm draws m distinct indices from [0, n) uniformly.
func samplePerm(rng *rand.Rand, n, m int) []int {
	perm := rng.Perm(n)
	return perm[:m]
}

// RBS runs the randomized-binary-search baseline: decompose into w
// chains, localize each chain's boundary with a randomized binary
// search (expected O(log |C_i|) probes), weight each probed point by
// the chain segment it stands for, and solve Problem 2 on the weighted
// probe set.
func RBS(pts []geom.Point, o oracle.Oracle, rng *rand.Rand) (Outcome, error) {
	n := len(pts)
	if n == 0 {
		return Outcome{}, fmt.Errorf("baselines: empty input")
	}
	if o.Len() != n {
		return Outcome{}, fmt.Errorf("baselines: oracle covers %d points, input has %d", o.Len(), n)
	}
	cache := oracle.NewCaching(o)
	dec := chains.Decompose(pts)

	var ws geom.WeightedSet
	for _, chain := range dec.Chains {
		probed, err := binarySearchChain(cache, chain, rng)
		if err != nil {
			return Outcome{}, err
		}
		// Attribute every chain position to the nearest probed
		// position at or after it; the tail after the last probe goes
		// to the last probe. Total weight = chain length.
		prev := -1
		for k, pr := range probed {
			weight := float64(pr.pos - prev)
			if k == len(probed)-1 {
				weight += float64(len(chain) - 1 - pr.pos)
			}
			ws = append(ws, geom.WeightedPoint{P: pts[chain[pr.pos]], Label: pr.label, Weight: weight})
			prev = pr.pos
		}
	}
	sol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Classifier: sol.Classifier, Probes: cache.Distinct()}, nil
}

// probeRecord is one revealed label at a chain position.
type probeRecord struct {
	pos   int
	label geom.Label
}

// binarySearchChain localizes the 0→1 boundary of one chain, assuming
// (as the expectation analysis does) that labels are mostly monotone
// along the chain: a revealed 1 sends the search below the pivot, a 0
// above. Pivots are uniform in the remaining range, the randomization
// that yields the 2k* expected-error behaviour on noisy chains.
// Returned records are sorted by position.
func binarySearchChain(o oracle.Oracle, chain []int, rng *rand.Rand) ([]probeRecord, error) {
	lo, hi := 0, len(chain)-1
	var probed []probeRecord
	for lo <= hi {
		pivot := lo + rng.Intn(hi-lo+1)
		label, err := o.Probe(chain[pivot])
		if err != nil {
			return nil, fmt.Errorf("baselines: probing %d: %w", chain[pivot], err)
		}
		probed = append(probed, probeRecord{pos: pivot, label: label})
		if label == geom.Positive {
			hi = pivot - 1
		} else {
			lo = pivot + 1
		}
	}
	sortRecords(probed)
	return probed, nil
}

// sortRecords sorts probe records by chain position (insertion sort;
// binary search yields O(log n) records).
func sortRecords(rs []probeRecord) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].pos < rs[j-1].pos; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
