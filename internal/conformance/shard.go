package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/serve"
	"monoclass/internal/shard"
)

// shardMaxQueries bounds the per-instance HTTP round trips of the
// routed-vs-direct check: each query costs two real requests per
// strategy, so the check samples rather than sweeps large instances.
const shardMaxQueries = 32

// shardMaxAnchors bounds the anchor pool handed to the fleet's model;
// NewAnchorSet prunes to the minimal antichain anyway, this just caps
// the pruning cost on big instances.
const shardMaxAnchors = 200

// classifyWire is the /classify response shape shared by router and
// replica.
type classifyWire struct {
	Label   geom.Label `json:"label"`
	Version int64      `json:"version"`
}

// CheckShardRouted holds the shard router to exact agreement with
// direct primary serving: a fleet of three replicas starts from one
// model, and every sampled query must come back with the same label
// and version whether it is POSTed straight to the primary or through
// the router — under both placement strategies (consistent-hash ring
// and dimension-space partition), one point at a time and as a client
// batch. Queries are restricted to finite coordinates because the JSON
// wire format has no encoding for NaN or ±Inf in request bodies (the
// model codec escapes infinities; requests do not).
func CheckShardRouted(in Instance) error {
	rng := rand.New(rand.NewSource(in.Seed ^ 0x73686172))
	d := in.Dim()
	if d == 0 {
		d = 1 + rng.Intn(3)
	}

	// Model: the instance's finite positive points (NaN anchors are
	// rejected by the model codec; ±Inf would be legal but the instance
	// generators only emit them as query stress, not anchors).
	var anchors []geom.Point
	for i, p := range in.Pts() {
		if in.Labels[i] != 1 || !finitePoint(p) {
			continue
		}
		anchors = append(anchors, p)
		if len(anchors) == shardMaxAnchors {
			break
		}
	}
	model, err := classifier.NewAnchorSet(d, anchors)
	if err != nil {
		return fmt.Errorf("building fleet model: %w", err)
	}

	// Queries: the instance's finite points, topped up with seeded
	// random finite points so even an all-special instance exercises
	// the wire.
	var queries []geom.Point
	for _, p := range in.Pts() {
		if finitePoint(p) {
			queries = append(queries, p)
		}
		if len(queries) == shardMaxQueries {
			break
		}
	}
	for len(queries) < 8 {
		q := make(geom.Point, d)
		for k := range q {
			q[k] = math.Floor(rng.Float64()*16) - 8
		}
		queries = append(queries, q)
	}

	const replicas = 3
	fleet := make([]*serve.Server, replicas)
	urls := make([]string, replicas)
	var hss []*httptest.Server
	defer func() {
		for _, hs := range hss {
			hs.Close()
		}
		for _, srv := range fleet {
			if srv != nil {
				srv.Close()
			}
		}
	}()
	for i := range fleet {
		srv, err := serve.NewServer(model, serve.Config{
			Batch: serve.BatcherConfig{MaxBatch: 16, MaxWait: -1, QueueCap: 256, Workers: 1},
		})
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		fleet[i] = srv
		hs := httptest.NewServer(srv.Handler())
		hss = append(hss, hs)
		urls[i] = hs.URL
	}
	client := &http.Client{Timeout: 10 * time.Second}

	ring, err := shard.NewRing(replicas, 0)
	if err != nil {
		return err
	}
	dims, err := shard.NewDimPartition(0, shard.DimBoundsFromSample(queries, 0, replicas))
	if err != nil {
		return err
	}
	for _, strat := range []shard.Strategy{ring, dims} {
		router, err := shard.NewRouter(urls, shard.RouterConfig{
			Strategy:       strat,
			HealthInterval: -1,
			Client:         client,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", strat.Name(), err)
		}
		rhs := httptest.NewServer(router.Handler())
		err = shardCompare(client, strat.Name(), rhs.URL, urls[0], queries)
		rhs.Close()
		router.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// shardCompare runs the routed-vs-direct differential for one strategy.
func shardCompare(client *http.Client, strat, routed, direct string, queries []geom.Point) error {
	for _, q := range queries {
		viaRouter, err := postClassify(client, routed, q)
		if err != nil {
			return fmt.Errorf("%s: routed classify(%v): %w", strat, q, err)
		}
		viaPrimary, err := postClassify(client, direct, q)
		if err != nil {
			return fmt.Errorf("%s: direct classify(%v): %w", strat, q, err)
		}
		if viaRouter != viaPrimary {
			return fmt.Errorf("%s: classify(%v) routed (label %v, version %d) != direct (label %v, version %d)",
				strat, q, viaRouter.Label, viaRouter.Version, viaPrimary.Label, viaPrimary.Version)
		}
	}

	// Whole set as one client batch: the router must hand the batch to
	// a single replica and return one coherent (labels, version) pair.
	routedLabels, routedVer, err := postBatch(client, routed, queries)
	if err != nil {
		return fmt.Errorf("%s: routed batch: %w", strat, err)
	}
	directLabels, directVer, err := postBatch(client, direct, queries)
	if err != nil {
		return fmt.Errorf("%s: direct batch: %w", strat, err)
	}
	if routedVer != directVer {
		return fmt.Errorf("%s: batch version routed %d != direct %d", strat, routedVer, directVer)
	}
	for i := range queries {
		if routedLabels[i] != directLabels[i] {
			return fmt.Errorf("%s: batch slot %d (%v) routed label %v != direct %v",
				strat, i, queries[i], routedLabels[i], directLabels[i])
		}
	}
	return nil
}

// postClassify POSTs one point to base/classify.
func postClassify(client *http.Client, base string, q geom.Point) (classifyWire, error) {
	body, err := json.Marshal(map[string]any{"point": []float64(q)})
	if err != nil {
		return classifyWire{}, err
	}
	resp, err := client.Post(base+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return classifyWire{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return classifyWire{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out classifyWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return classifyWire{}, err
	}
	return out, nil
}

// postBatch POSTs the whole query set to base/classify/batch.
func postBatch(client *http.Client, base string, qs []geom.Point) ([]geom.Label, int64, error) {
	pts := make([][]float64, len(qs))
	for i, q := range qs {
		pts[i] = q
	}
	body, err := json.Marshal(map[string]any{"points": pts})
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Post(base+"/classify/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Labels  []geom.Label `json:"labels"`
		Version int64        `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	if len(out.Labels) != len(qs) {
		return nil, 0, fmt.Errorf("%d labels for %d points", len(out.Labels), len(qs))
	}
	return out.Labels, out.Version, nil
}

// finitePoint reports whether every coordinate is finite (no NaN, no
// ±Inf) — the subset of points the JSON request wire can carry.
func finitePoint(p geom.Point) bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
