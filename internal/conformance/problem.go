package conformance

import (
	"bytes"
	"fmt"
	"math"
	"reflect"

	"monoclass/internal/audit"
	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
	"monoclass/internal/problem"
)

// Problem-artifact conformance: a shared prepared Problem must be
// observationally identical to the legacy rebuild-from-points paths —
// same passive solution bits, same chain decomposition, same audit
// report — in all three matrix modes, and must survive a serialization
// round trip without changing any of it. The legacy computations are
// replicated inline (matrix build, decomposition, chain-routed solve)
// rather than called through the refactored packages, so this check
// pins the pre-refactor semantics even as the packages migrate onto
// the Problem API.

// legacyAuditReport recomputes audit.Report exactly the way the
// pre-Problem audit package did: fresh domgraph.Build, popcount
// violation count, dimension-dispatched decomposition, chain-routed
// passive solve.
func legacyAuditReport(ws geom.WeightedSet) (audit.Report, error) {
	r := audit.Report{
		N:         len(ws),
		Dim:       ws.Dim(),
		WeightMin: math.Inf(1),
		WeightMax: math.Inf(-1),
	}
	for _, wp := range ws {
		if wp.Label == geom.Positive {
			r.Positives++
		} else {
			r.Negatives++
		}
		r.WeightTotal += wp.Weight
		if wp.Weight < r.WeightMin {
			r.WeightMin = wp.Weight
		}
		if wp.Weight > r.WeightMax {
			r.WeightMax = wp.Weight
		}
	}
	type groupInfo struct{ pos, neg bool }
	groups := make(map[string]*groupInfo, len(ws))
	for _, wp := range ws {
		key := wp.P.String()
		g := groups[key]
		if g == nil {
			g = &groupInfo{}
			groups[key] = g
		}
		if wp.Label == geom.Positive {
			g.pos = true
		} else {
			g.neg = true
		}
	}
	for _, g := range groups {
		if g.pos && g.neg {
			r.DuplicateConflicts++
		}
	}
	pts := make([]geom.Point, len(ws))
	labels := make([]geom.Label, len(ws))
	for i, wp := range ws {
		pts[i] = wp.P
		labels[i] = wp.Label
	}
	m := domgraph.Build(pts)
	r.ViolationPairs = m.CountViolations(labels)
	var dec chains.Decomposition
	if ws.Dim() >= 3 {
		dec = chains.DecomposeMatrix(pts, m)
	} else {
		dec = chains.Decompose(pts)
	}
	r.Width = dec.Width
	r.ChainLenMin, r.ChainLenMax = len(ws), 0
	for _, c := range dec.Chains {
		if len(c) < r.ChainLenMin {
			r.ChainLenMin = len(c)
		}
		if len(c) > r.ChainLenMax {
			r.ChainLenMax = len(c)
		}
	}
	sol, err := passive.Solve(ws, passive.Options{Chains: dec.Chains})
	if err != nil {
		return audit.Report{}, err
	}
	r.KStar = sol.WErr
	r.KStarFraction = sol.WErr / r.WeightTotal
	r.Contending = sol.Stats.Contending
	return r, nil
}

func sameSolutions(tag string, got, want passive.Solution) error {
	if got.WErr != want.WErr {
		return fmt.Errorf("%s: WErr %v, legacy %v", tag, got.WErr, want.WErr)
	}
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		return fmt.Errorf("%s: assignment diverges from legacy", tag)
	}
	if !reflect.DeepEqual(got.Classifier.Anchors(), want.Classifier.Anchors()) {
		return fmt.Errorf("%s: anchors diverge from legacy", tag)
	}
	if got.Stats != want.Stats {
		return fmt.Errorf("%s: stats %+v, legacy %+v", tag, got.Stats, want.Stats)
	}
	return nil
}

// CheckProblemPrepared is the problem-prepared-vs-legacy differential.
func CheckProblemPrepared(in Instance) error {
	ws := in.WeightedSet()
	if len(ws) == 0 {
		if _, err := problem.Prepare(ws, problem.Options{}); err == nil {
			return fmt.Errorf("Prepare accepted an empty set")
		}
		return nil
	}
	if hasNonFinite(in) {
		// The legacy kernel builder and the scalar view fallback may
		// legitimately disagree on NaN inputs; the view property tests
		// own that territory.
		return nil
	}

	legacySol, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return fmt.Errorf("legacy solve: %w", err)
	}
	legacyDec := chains.Decompose(in.Pts())
	legacyRep, err := legacyAuditReport(ws)
	if err != nil {
		return fmt.Errorf("legacy audit: %w", err)
	}

	for _, mode := range []problem.MatrixMode{problem.ModeDense, problem.ModeBlocked, problem.ModeImplicit} {
		p, err := problem.Prepare(ws, problem.Options{Mode: mode})
		if err != nil {
			return fmt.Errorf("%v: Prepare: %w", mode, err)
		}
		sol, err := p.Solve()
		if err != nil {
			return fmt.Errorf("%v: Solve: %w", mode, err)
		}
		if err := sameSolutions(mode.String(), sol, legacySol); err != nil {
			return err
		}
		again, err := p.Solve()
		if err != nil {
			return fmt.Errorf("%v: re-solve: %w", mode, err)
		}
		if err := sameSolutions(mode.String()+" re-solve", again, sol); err != nil {
			return err
		}
		if got := p.Decomposition(); !reflect.DeepEqual(got, legacyDec) {
			return fmt.Errorf("%v: decomposition diverges from chains.Decompose", mode)
		}
		rep, err := audit.AuditProblem(p)
		if err != nil {
			return fmt.Errorf("%v: audit: %w", mode, err)
		}
		if rep != legacyRep {
			return fmt.Errorf("%v: audit report %+v, legacy %+v", mode, rep, legacyRep)
		}

		var buf bytes.Buffer
		if err := problem.Write(&buf, p); err != nil {
			return fmt.Errorf("%v: serialize: %w", mode, err)
		}
		q, err := problem.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return fmt.Errorf("%v: deserialize: %w", mode, err)
		}
		rsol, err := q.Solve()
		if err != nil {
			return fmt.Errorf("%v: reread solve: %w", mode, err)
		}
		if err := sameSolutions(mode.String()+" round trip", rsol, legacySol); err != nil {
			return err
		}
		if q.Violations() != p.Violations() {
			return fmt.Errorf("%v: round trip changed violations %d -> %d", mode, p.Violations(), q.Violations())
		}
	}
	return nil
}
