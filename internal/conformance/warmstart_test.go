package conformance

import "testing"

// TestWarmStartCornerFixtures replays the static NaN/±Inf shapes
// through the warm-start differential: the views' scalar-fallback
// materializations must still give warm == cold widths and valid
// certificates.
func TestWarmStartCornerFixtures(t *testing.T) {
	for _, in := range warmStartCornerFixtures() {
		if err := Safe(CheckDecomposeWarmStart, in); err != nil {
			t.Errorf("%s: %v", in.Family, err)
		}
	}
}

// TestWarmStartCheckRegistered pins the check into the deterministic
// suite so repro replay and benchtab -conformance can address it by
// name.
func TestWarmStartCheckRegistered(t *testing.T) {
	if CheckByName("decompose-warmstart-vs-cold") == nil {
		t.Fatal("decompose-warmstart-vs-cold not registered")
	}
}
