package conformance

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"monoclass/internal/classifier"
	"monoclass/internal/geom"
	"monoclass/internal/serve"
)

// TestCheckShardRoutedOnWorkloads runs the routed-vs-direct check
// standalone over a few generated instances, including the empty and
// special-coordinate families the generator rotates through.
func TestCheckShardRoutedOnWorkloads(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		in := GenerateWorkload(0xd15c0, trial, false)
		if err := Safe(CheckShardRouted, in); err != nil {
			t.Errorf("trial %d (%s): %v", trial, in.Family, err)
		}
	}
}

// TestShardCompareDetectsDivergence points the comparator at two
// fleets serving different models: it must flag the label mismatch
// (mutation-style negative control for the differential).
func TestShardCompareDetectsDivergence(t *testing.T) {
	mkServer := func(tau float64) string {
		model, err := classifier.NewAnchorSet(1, []geom.Point{{tau}})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(model, serve.Config{
			Batch: serve.BatcherConfig{MaxBatch: 8, MaxWait: -1, QueueCap: 64, Workers: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		return hs.URL
	}
	low, high := mkServer(1), mkServer(10)
	client := &http.Client{Timeout: 5 * time.Second}
	// Point 5.5 is positive under tau=1 and negative under tau=10.
	err := shardCompare(client, "negative-control", low, high, []geom.Point{{5.5}})
	if err == nil {
		t.Fatal("comparator accepted fleets serving different models")
	}
	if !strings.Contains(err.Error(), "routed") {
		t.Errorf("divergence message %q does not describe the routed/direct split", err)
	}
}
