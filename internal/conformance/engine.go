package conformance

import (
	"fmt"
	"math/rand"
	"sort"

	"monoclass/internal/core"
	"monoclass/internal/geom"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// Config parameterizes one engine run.
type Config struct {
	// Seed drives the whole run; the same (Seed, Trials, Long) triple
	// reproduces the identical trial sequence.
	Seed int64
	// Trials is the number of generated instances; each one passes
	// through the full deterministic check suite.
	Trials int
	// Long enables the larger size schedule for soak runs.
	Long bool
	// ReproDir, when non-empty, receives a shrunken repro-*.json file
	// for every divergence.
	ReproDir string
	// ActiveEvery audits the active algorithm's (1+ε) guarantee on
	// every k-th trial (default 8; negative disables). The audit is
	// statistical, so it is aggregated over the whole run rather than
	// judged per instance.
	ActiveEvery int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Divergence records one conformance failure.
type Divergence struct {
	Check     string // check name ("active-approx-audit" for the aggregate audit)
	Family    string // workload family of the failing instance
	Trial     int    // trial index within the run
	Err       string // divergence message
	ReproPath string // written repro file, if any
	ShrunkN   int    // point count after shrinking
}

// ActiveAudit aggregates the statistical (1+ε) audit: every audited
// instance runs the sampling pipeline Repeats times against the exact
// passive optimum k*, counting repeats with err_P(h) > (1+Eps)·k*.
// The per-repeat failure probability is bounded by Delta, so the run
// fails only when violations exceed the generous aggregate thresholds
// in auditVerdict (majority failures on >1/16 of instances, or >20% of
// all repeats).
type ActiveAudit struct {
	Eps              float64
	Delta            float64
	Repeats          int
	Instances        int
	Violations       int // repeats exceeding the bound
	MajorityFailures int // instances where a strict majority of repeats exceeded it
}

// Report is the outcome of an engine run.
type Report struct {
	Trials      int
	ChecksRun   int
	PerCheck    map[string]int
	Active      ActiveAudit
	Divergences []Divergence
}

// Summary renders the report as a small markdown table plus the
// divergence list, in the style of the repo's bench tables.
func (r Report) Summary() string {
	out := fmt.Sprintf("| check | runs |\n|---|---|\n")
	names := make([]string, 0, len(r.PerCheck))
	for name := range r.PerCheck {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out += fmt.Sprintf("| %s | %d |\n", name, r.PerCheck[name])
	}
	out += fmt.Sprintf("| active-approx-audit | %d instances × %d repeats, %d violations |\n",
		r.Active.Instances, r.Active.Repeats, r.Active.Violations)
	out += fmt.Sprintf("\ntrials: %d, checks run: %d, divergences: %d\n",
		r.Trials, r.ChecksRun, len(r.Divergences))
	for _, d := range r.Divergences {
		out += fmt.Sprintf("DIVERGENCE %s on %s (trial %d, shrunk to %d points): %s",
			d.Check, d.Family, d.Trial, d.ShrunkN, d.Err)
		if d.ReproPath != "" {
			out += fmt.Sprintf(" [repro: %s]", d.ReproPath)
		}
		out += "\n"
	}
	return out
}

// Run executes the conformance engine: Trials seeded workloads, the
// full deterministic differential + metamorphic suite on each, the
// aggregated active-approximation audit on a subsample, shrinking and
// repro persistence on any divergence.
func Run(cfg Config) Report {
	rep := Report{PerCheck: make(map[string]int)}
	if cfg.Trials <= 0 {
		return rep
	}
	activeEvery := cfg.ActiveEvery
	if activeEvery == 0 {
		activeEvery = 8
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	suite := Checks()
	for trial := 0; trial < cfg.Trials; trial++ {
		in := GenerateWorkload(cfg.Seed, trial, cfg.Long)
		rep.Trials++
		for _, c := range suite {
			rep.ChecksRun++
			rep.PerCheck[c.Name]++
			err := Safe(c.Fn, in)
			if err == nil {
				continue
			}
			logf("divergence in %s on %s (trial %d): %v — shrinking", c.Name, in.Family, trial, err)
			shrunk := Shrink(in, c.Fn)
			shrunk.Check = c.Name
			finalErr := Safe(c.Fn, shrunk)
			if finalErr == nil {
				// Cannot happen (Shrink preserves failure), but never
				// report a repro that does not reproduce.
				shrunk, finalErr = in, err
				shrunk.Check = c.Name
			}
			shrunk.Note = finalErr.Error()
			d := Divergence{
				Check:   c.Name,
				Family:  in.Family,
				Trial:   trial,
				Err:     finalErr.Error(),
				ShrunkN: shrunk.N(),
			}
			if cfg.ReproDir != "" {
				if path, werr := WriteRepro(cfg.ReproDir, shrunk); werr == nil {
					d.ReproPath = path
				} else {
					logf("writing repro failed: %v", werr)
				}
			}
			rep.Divergences = append(rep.Divergences, d)
		}
		if activeEvery > 0 && trial%activeEvery == 0 {
			auditActiveApprox(&rep.Active, in)
		}
		if trial > 0 && trial%50 == 0 {
			logf("%d/%d trials, %d checks, %d divergences", trial, cfg.Trials, rep.ChecksRun, len(rep.Divergences))
		}
	}

	if msg := auditVerdict(rep.Active); msg != "" {
		rep.Divergences = append(rep.Divergences, Divergence{
			Check: "active-approx-audit",
			Err:   msg,
		})
	}
	return rep
}

// auditActiveApprox runs the sampling pipeline on one instance (unit
// weights — the guarantee is stated for err_P) and tallies repeats
// whose classifier error exceeds (1+ε)·k*.
func auditActiveApprox(a *ActiveAudit, in Instance) {
	const (
		eps     = 0.5
		delta   = 0.05
		repeats = 3
		minN    = 16
	)
	a.Eps, a.Delta, a.Repeats = eps, delta, repeats
	n := in.N()
	if n < minN || n > activeMaxN {
		return
	}
	pts := in.Pts()
	labels := in.GeomLabels()
	lab := in.Labeled()
	unit := make(geom.WeightedSet, n)
	for i := range unit {
		unit[i] = geom.WeightedPoint{P: pts[i], Label: labels[i], Weight: 1}
	}
	opt, err := passive.Solve(unit, passive.Options{})
	if err != nil {
		return
	}
	kstar := opt.WErr

	a.Instances++
	bad := 0
	for r := 0; r < repeats; r++ {
		rng := rand.New(rand.NewSource(in.Seed ^ int64(0x617564697400+r)))
		res, err := core.ActiveLearn(pts, oracle.NewStatic(labels), core.PracticalParams(eps, delta), rng)
		if err != nil {
			bad++ // a failing run counts against the guarantee
			continue
		}
		if float64(geom.Err(lab, res.Classifier.Classify)) > (1+eps)*kstar+1e-9 {
			bad++
		}
	}
	a.Violations += bad
	if 2*bad > repeats {
		a.MajorityFailures++
	}
}

// auditVerdict converts the aggregate audit tallies into a divergence
// message, or "" when within tolerance. Thresholds are deliberately
// loose: each repeat may fail with probability Delta by design, so
// only systematic violation — most repeats wrong on many instances —
// indicts the implementation.
func auditVerdict(a ActiveAudit) string {
	if a.Instances == 0 {
		return ""
	}
	if allowed := 1 + a.Instances/16; a.MajorityFailures > allowed {
		return fmt.Sprintf("(1+ε) audit: majority of repeats violated the bound on %d of %d instances (allowed %d)",
			a.MajorityFailures, a.Instances, allowed)
	}
	total := a.Instances * a.Repeats
	if a.Violations*5 > total {
		return fmt.Sprintf("(1+ε) audit: %d of %d repeats violated the bound (>20%%)", a.Violations, total)
	}
	return ""
}
