package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"monoclass/internal/geom"
	"monoclass/internal/online"
	"monoclass/internal/problem"
)

// Online-learning conformance: the incremental updater replayed over a
// seeded insert/delete trace derived from the instance, differentially
// compared against full retrains of the surviving multiset.
//
// Two checks:
//
//   - online-incremental-vs-retrain runs the updater in exact mode
//     (rebuild on every delta) and demands, at sampled steps and at the
//     end, that its maintained weighted error equals a from-scratch
//     passive solve on the live points, and that the maintained error
//     matches rescoring the published model over the live multiset.
//   - online-drift-bound runs the updater in lazy mode (rebuild every
//     K deltas with interim models between) and demands the paper-side
//     soundness contract: maintained werr ≤ k* + DriftBound at every
//     sampled step, with exact equality restored by a forced Resolve.
//
// Traces are pure functions of (instance, Instance.Seed): the points
// are inserted in order with their instance weights, interleaved with
// deletes of random live points, then roughly half the survivors are
// deleted. Instances with non-finite coordinates are skipped — the
// updater's intake validation rejects them by contract (NaN breaks the
// dominance order), which FuzzOnlineTrace covers separately.

// buildOnlineTrace derives the deterministic delta trace for an
// instance: ordered inserts interleaved with deletes of random live
// points, then a churn-down phase deleting about half the survivors.
func buildOnlineTrace(in Instance, rng *rand.Rand) []online.Delta {
	ws := in.WeightedSet()
	var trace []online.Delta
	var live []geom.WeightedPoint
	insertNext := 0
	for insertNext < len(ws) {
		if len(live) > 0 && rng.Intn(4) == 0 {
			k := rng.Intn(len(live))
			wp := live[k]
			live = append(live[:k], live[k+1:]...)
			trace = append(trace, online.Delta{Op: online.OpDelete, Point: wp.P.Clone(), Label: wp.Label})
		} else {
			wp := ws[insertNext]
			insertNext++
			live = append(live, wp)
			trace = append(trace, online.Delta{Op: online.OpInsert, Point: wp.P.Clone(), Label: wp.Label, Weight: wp.Weight})
		}
	}
	// Churn down: delete about half of what survived.
	for len(live) > len(ws)/2 {
		k := rng.Intn(len(live))
		wp := live[k]
		live = append(live[:k], live[k+1:]...)
		trace = append(trace, online.Delta{Op: online.OpDelete, Point: wp.P.Clone(), Label: wp.Label})
	}
	return trace
}

// hasNonFinite reports whether any coordinate is NaN or ±Inf; such
// instances are outside the updater's intake contract.
func hasNonFinite(in Instance) bool {
	for _, row := range in.Points {
		for _, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
	}
	return false
}

// retrainWErr solves the live multiset from scratch through a shared
// prepared Problem — the same artifact the updater adopts internally,
// so the differential covers the problem layer too. ok is false when
// the multiset is empty (nothing to compare against).
func retrainWErr(live []geom.WeightedPoint) (float64, bool, error) {
	if len(live) == 0 {
		return 0, false, nil
	}
	p, err := problem.Prepare(geom.WeightedSet(live), problem.Options{})
	if err != nil {
		return 0, false, fmt.Errorf("retrain: %w", err)
	}
	sol, err := p.Solve()
	if err != nil {
		return 0, false, fmt.Errorf("retrain: %w", err)
	}
	return sol.WErr, true, nil
}

// rescore recomputes the weighted error of the updater's published
// model over its live multiset — the invariant the updater claims to
// maintain incrementally.
func rescore(u *online.Updater) float64 {
	model := u.Model()
	var werr float64
	for _, wp := range u.Live() {
		if model.Classify(wp.P) != wp.Label {
			werr += wp.Weight
		}
	}
	return werr
}

// cmpStride picks how often to retrain from scratch along the trace:
// every step for small instances, sparser for big ones so the check
// stays sub-quadratic, always including the final step.
func cmpStride(n int) int {
	if n <= 64 {
		return 1
	}
	return n / 32
}

// CheckOnlineIncremental is the online-incremental-vs-retrain check:
// in exact mode (RebuildEvery 1) the incrementally maintained optimum
// must match a full retrain of the live multiset at every sampled step.
func CheckOnlineIncremental(in Instance) error {
	if in.N() == 0 || hasNonFinite(in) {
		return nil
	}
	rng := rand.New(rand.NewSource(in.Seed ^ 0x6f6e6c696e65)) // "online"
	trace := buildOnlineTrace(in, rng)
	u, err := online.NewUpdater(in.Dim(), nil, online.Config{RebuildEvery: 1})
	if err != nil {
		return fmt.Errorf("NewUpdater: %w", err)
	}
	stride := cmpStride(in.N())
	for i, d := range trace {
		if err := u.Apply(d); err != nil {
			return fmt.Errorf("step %d (%s): %w", i, d.Op, err)
		}
		if i%stride != 0 && i != len(trace)-1 {
			continue
		}
		kstar, ok, err := retrainWErr(u.Live())
		if err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
		if ok && !almostEq(u.WErr(), kstar) {
			return fmt.Errorf("step %d (%s): incremental werr %g, retrain optimum %g (live %d)",
				i, d.Op, u.WErr(), kstar, len(u.Live()))
		}
		if got := rescore(u); !almostEq(u.WErr(), got) {
			return fmt.Errorf("step %d: maintained werr %g, rescored model werr %g", i, u.WErr(), got)
		}
		if u.DriftBound() != 0 {
			return fmt.Errorf("step %d: drift bound %g in exact mode, want 0", i, u.DriftBound())
		}
	}
	return nil
}

// CheckOnlineDriftBound is the online-drift-bound check: in lazy mode
// the maintained error may trail the optimum, but never by more than
// the advertised drift bound, and a forced exact re-solve must land on
// the optimum precisely.
func CheckOnlineDriftBound(in Instance) error {
	if in.N() == 0 || hasNonFinite(in) {
		return nil
	}
	rng := rand.New(rand.NewSource(in.Seed ^ 0x6472696674)) // "drift"
	trace := buildOnlineTrace(in, rng)
	u, err := online.NewUpdater(in.Dim(), nil, online.Config{RebuildEvery: 7})
	if err != nil {
		return fmt.Errorf("NewUpdater: %w", err)
	}
	stride := cmpStride(in.N())
	for i, d := range trace {
		if err := u.Apply(d); err != nil {
			return fmt.Errorf("step %d (%s): %w", i, d.Op, err)
		}
		if got := rescore(u); !almostEq(u.WErr(), got) {
			return fmt.Errorf("step %d: maintained werr %g, rescored model werr %g", i, u.WErr(), got)
		}
		if i%stride != 0 && i != len(trace)-1 {
			continue
		}
		kstar, ok, err := retrainWErr(u.Live())
		if err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
		if !ok {
			continue
		}
		if u.WErr() < kstar-1e-9 {
			return fmt.Errorf("step %d: maintained werr %g below optimum %g — impossible fit", i, u.WErr(), kstar)
		}
		if u.WErr() > kstar+u.DriftBound()+1e-9 {
			return fmt.Errorf("step %d: maintained werr %g exceeds optimum %g + drift bound %g",
				i, u.WErr(), kstar, u.DriftBound())
		}
	}
	if err := u.Resolve(); err != nil {
		return fmt.Errorf("final resolve: %w", err)
	}
	kstar, ok, err := retrainWErr(u.Live())
	if err != nil {
		return err
	}
	if ok && !almostEq(u.WErr(), kstar) {
		return fmt.Errorf("after resolve: werr %g, retrain optimum %g", u.WErr(), kstar)
	}
	if u.DriftBound() != 0 {
		return fmt.Errorf("after resolve: drift bound %g, want 0", u.DriftBound())
	}
	return nil
}
