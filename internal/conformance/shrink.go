package conformance

// Shrinking: given an instance on which a check diverges, greedily
// minimize it while the divergence persists, so the repro file a human
// opens is a handful of small-integer points rather than hundreds of
// 17-digit floats. The strategy is delta debugging over points
// followed by structural simplification (drop dimensions, unit
// weights, rank-compressed coordinates); every candidate is re-run
// through the failing check, and panics count as still-failing.

// shrinkBudget caps the number of check evaluations one shrink may
// spend; shrinking is best-effort, not optimal.
const shrinkBudget = 400

// Shrink returns a minimized instance that still fails fn, or the
// input unchanged if it does not fail in the first place. The result
// always fails fn (shrinking never loses the divergence).
func Shrink(in Instance, fn CheckFunc) Instance {
	if Safe(fn, in) == nil {
		return in
	}
	cur := in
	evals := 0
	fails := func(cand Instance) bool {
		if evals >= shrinkBudget {
			return false
		}
		evals++
		return Safe(fn, cand) != nil
	}

	// Phase 1: delta debugging over points — remove progressively
	// smaller contiguous chunks while the check still fails.
	for chunk := (cur.N() + 1) / 2; chunk >= 1; chunk /= 2 {
		removed := true
		for removed && evals < shrinkBudget {
			removed = false
			for start := 0; start+chunk <= cur.N(); {
				cand := cur.removeRange(start, chunk)
				if fails(cand) {
					cur = cand
					removed = true
					// Same start now addresses the next chunk.
				} else {
					start += chunk
				}
			}
		}
		if chunk > cur.N() {
			chunk = cur.N()
		}
	}

	// Phase 2: drop whole dimensions.
	for k := cur.Dim() - 1; k >= 0 && cur.Dim() > 1; k-- {
		if cand := cur.dropDim(k); fails(cand) {
			cur = cand
		}
	}

	// Phase 3: normalize weights, then compress coordinates to small
	// integer ranks (both only kept when the failure survives).
	if cand := cur.unitWeights(); fails(cand) {
		cur = cand
	}
	if cand := cur.rankCoords(); fails(cand) {
		cur = cand
	}
	return cur
}
