package conformance

import (
	"fmt"
	"math/rand"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/passive"
)

// Metamorphic invariants: transformations of an instance with a known
// effect on the quantities the paper's theorems speak about. Every
// transform here is exact in floating point (rank remap, power-of-two
// scale, negation, duplication, permutation), so the expected
// relations hold with no modeling slack — any deviation is a bug, not
// rounding.

// metaMaxN bounds the instance size the metamorphic checks process
// (each one recomputes width + optimum on two instances).
const metaMaxN = 512

// profile is the invariant fingerprint of an instance: the quantities
// Theorems 2–4 are stated over.
type profile struct {
	width      int
	violations int
	optimum    float64
	contending int
	solveErr   bool // true when the instance is unsolvable (empty)
}

// fingerprint computes the profile.
func fingerprint(in Instance) (profile, error) {
	var p profile
	pts := in.Pts()
	p.width = chains.Width(pts)
	if in.N() > 0 {
		p.violations = domgraph.Build(pts).CountViolations(in.GeomLabels())
	}
	sol, err := passive.Solve(in.WeightedSet(), passive.Options{})
	if err != nil {
		if in.N() > 0 {
			return p, fmt.Errorf("fingerprint solve: %w", err)
		}
		p.solveErr = true
		return p, nil
	}
	p.optimum = sol.WErr
	p.contending = sol.Stats.Contending
	return p, nil
}

// expectEqualProfiles compares two profiles that must be identical.
func expectEqualProfiles(tag string, a, b profile) error {
	if a.width != b.width {
		return fmt.Errorf("%s: width %d -> %d", tag, a.width, b.width)
	}
	if a.violations != b.violations {
		return fmt.Errorf("%s: violations %d -> %d", tag, a.violations, b.violations)
	}
	if a.contending != b.contending {
		return fmt.Errorf("%s: contending %d -> %d", tag, a.contending, b.contending)
	}
	if !almostEq(a.optimum, b.optimum) {
		return fmt.Errorf("%s: optimum %g -> %g", tag, a.optimum, b.optimum)
	}
	return nil
}

// CheckMetaMonotoneTransform applies strictly increasing per-dimension
// coordinate maps — a rank remap (arbitrary monotone reparameterization,
// exact by construction) and a power-of-two affine map — and requires
// the dominance-derived quantities to be untouched: width, violation
// count, contending count, and the passive optimum.
func CheckMetaMonotoneTransform(in Instance) error {
	if in.N() == 0 || in.N() > metaMaxN {
		return nil
	}
	base, err := fingerprint(in)
	if err != nil {
		return err
	}

	ranked := in.rankCoords()
	rp, err := fingerprint(ranked)
	if err != nil {
		return err
	}
	if err := expectEqualProfiles("rank remap", base, rp); err != nil {
		return err
	}

	scaled := in.Clone()
	rng := rand.New(rand.NewSource(in.Seed ^ 0x7363616c))
	for k := 0; k < scaled.Dim(); k++ {
		// Per-dimension y = a·x + b with a a power of two and b an
		// integer: both operations are exact for the coordinate ranges
		// in play, so order and ties are preserved bit for bit.
		a := []float64{0.5, 2, 4}[rng.Intn(3)]
		b := float64(rng.Intn(17) - 8)
		for _, row := range scaled.Points {
			row[k] = a*row[k] + b
		}
	}
	sp, err := fingerprint(scaled)
	if err != nil {
		return err
	}
	return expectEqualProfiles("affine scale", base, sp)
}

// CheckMetaDuality negates every coordinate and flips every label.
// Dominance reverses direction, violating pairs map one-to-one, and a
// classifier h for the original corresponds to x -> 1 - h(-x) for the
// transform, so width, violations, contending count, and optimum are
// all preserved.
func CheckMetaDuality(in Instance) error {
	if in.N() == 0 || in.N() > metaMaxN {
		return nil
	}
	base, err := fingerprint(in)
	if err != nil {
		return err
	}
	dual := in.Clone()
	for i, row := range dual.Points {
		for k := range row {
			row[k] = -row[k]
		}
		dual.Labels[i] = 1 - dual.Labels[i]
	}
	dp, err := fingerprint(dual)
	if err != nil {
		return err
	}
	return expectEqualProfiles("negate+flip duality", base, dp)
}

// CheckMetaDuplication appends an exact copy of every point (same
// label, same weight). Duplicates are mutually comparable, so the
// width is unchanged; every violating pair becomes four; and the
// optimal classifier is unchanged while each point's weight is
// effectively doubled, so the optimum exactly doubles.
func CheckMetaDuplication(in Instance) error {
	if in.N() == 0 || 2*in.N() > metaMaxN {
		return nil
	}
	base, err := fingerprint(in)
	if err != nil {
		return err
	}
	doubled := in.Clone()
	src := in.Clone()
	doubled.Points = append(doubled.Points, src.Points...)
	doubled.Labels = append(doubled.Labels, src.Labels...)
	doubled.Weights = append(doubled.Weights, src.Weights...)
	dp, err := fingerprint(doubled)
	if err != nil {
		return err
	}
	if dp.width != base.width {
		return fmt.Errorf("duplication: width %d -> %d", base.width, dp.width)
	}
	if dp.violations != 4*base.violations {
		return fmt.Errorf("duplication: violations %d -> %d, want x4", base.violations, dp.violations)
	}
	if dp.contending != 2*base.contending {
		return fmt.Errorf("duplication: contending %d -> %d, want x2", base.contending, dp.contending)
	}
	if !almostEq(dp.optimum, 2*base.optimum) {
		return fmt.Errorf("duplication: optimum %g -> %g, want x2", base.optimum, dp.optimum)
	}
	return nil
}

// CheckMetaWeightScale multiplies every weight by two (exact in
// floating point); the optimal assignment is unchanged and the optimum
// must scale by exactly the same factor. Width and violations do not
// involve weights at all.
func CheckMetaWeightScale(in Instance) error {
	if in.N() == 0 || in.N() > metaMaxN {
		return nil
	}
	base, err := fingerprint(in)
	if err != nil {
		return err
	}
	scaled := in.Clone()
	for i := range scaled.Weights {
		scaled.Weights[i] *= 2
	}
	sp, err := fingerprint(scaled)
	if err != nil {
		return err
	}
	if sp.width != base.width || sp.violations != base.violations || sp.contending != base.contending {
		return fmt.Errorf("weight scale: structure changed (width %d->%d, violations %d->%d, contending %d->%d)",
			base.width, sp.width, base.violations, sp.violations, base.contending, sp.contending)
	}
	if !almostEq(sp.optimum, 2*base.optimum) {
		return fmt.Errorf("weight scale: optimum %g -> %g, want x2", base.optimum, sp.optimum)
	}
	return nil
}

// CheckMetaPermutation shuffles the input order; every reported
// quantity is a function of the multiset, so nothing may change.
func CheckMetaPermutation(in Instance) error {
	if in.N() == 0 || in.N() > metaMaxN {
		return nil
	}
	base, err := fingerprint(in)
	if err != nil {
		return err
	}
	perm := in.Clone()
	rng := rand.New(rand.NewSource(in.Seed ^ 0x7065726d))
	rng.Shuffle(perm.N(), func(i, j int) {
		perm.Points[i], perm.Points[j] = perm.Points[j], perm.Points[i]
		perm.Labels[i], perm.Labels[j] = perm.Labels[j], perm.Labels[i]
		perm.Weights[i], perm.Weights[j] = perm.Weights[j], perm.Weights[i]
	})
	pp, err := fingerprint(perm)
	if err != nil {
		return err
	}
	return expectEqualProfiles("permutation", base, pp)
}
