package conformance

import (
	"path/filepath"
	"testing"
)

// TestReplayRepros replays every repro-*.json under testdata/. Files
// land there when the engine catches a divergence; once the underlying
// bug is fixed, the replays pass and the file serves as a pinned
// regression test. Run a single file with:
//
//	go test ./internal/conformance -run 'TestReplayRepros/<file>'
func TestReplayRepros(t *testing.T) {
	paths, err := ListRepros("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no repro files recorded")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in, err := LoadRepro(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if err := Replay(in); err != nil {
				t.Errorf("%s (family %s, seed %d, n=%d): %v\noriginal note: %s",
					in.Check, in.Family, in.Seed, in.N(), err, in.Note)
			}
		})
	}
}
