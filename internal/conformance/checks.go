package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/core"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
	"monoclass/internal/maxflow"
	"monoclass/internal/oracle"
	"monoclass/internal/passive"
)

// CheckFunc is one deterministic conformance check over an instance.
// A nil return means every invariant held; an error describes the
// first divergence. Checks must be pure functions of the instance
// (randomness only through generators seeded from Instance.Seed), so
// the shrinker and the replay runner see the same behavior.
type CheckFunc func(Instance) error

// Check pairs a stable name with its implementation. The name appears
// in reports and repro files.
type Check struct {
	Name string
	Fn   CheckFunc
}

// Checks returns the full deterministic suite in fixed order:
// differential checks first, metamorphic invariants second. The
// statistical (1+ε) audit of the active algorithm is not listed here —
// it is probabilistic, so the engine runs and aggregates it separately
// (see ActiveAudit).
func Checks() []Check {
	return []Check{
		{"maxflow-differential", CheckMaxflowDifferential},
		{"domgraph-kernel-vs-naive", CheckDomgraphKernel},
		{"chains-kernel-vs-scalar", CheckChainsDecompose},
		{"decompose-warmstart-vs-cold", CheckDecomposeWarmStart},
		{"classifier-indexed-vs-scalar", CheckClassifierIndexed},
		{"passive-differential", CheckPassiveDifferential},
		{"active-exhaustive-exact", CheckActiveExhaustive},
		{"online-incremental-vs-retrain", CheckOnlineIncremental},
		{"online-drift-bound", CheckOnlineDriftBound},
		{"problem-prepared-vs-legacy", CheckProblemPrepared},
		{"shard-routed-vs-direct", CheckShardRouted},
		{"meta-monotone-transform", CheckMetaMonotoneTransform},
		{"meta-duality", CheckMetaDuality},
		{"meta-duplication", CheckMetaDuplication},
		{"meta-weight-scale", CheckMetaWeightScale},
		{"meta-permutation", CheckMetaPermutation},
	}
}

// CheckByName resolves a check name from a repro file; nil when
// unknown.
func CheckByName(name string) CheckFunc {
	for _, c := range Checks() {
		if c.Name == name {
			return c.Fn
		}
	}
	return nil
}

// RunAll runs the full deterministic suite and returns the first
// divergence, prefixed with its check name.
func RunAll(in Instance) error {
	for _, c := range Checks() {
		if err := Safe(c.Fn, in); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
	}
	return nil
}

// Safe runs a check, converting panics (how kernel-internal invariant
// failures surface) into ordinary divergence errors so the engine can
// shrink and report them.
func Safe(fn CheckFunc, in Instance) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn(in)
}

// almostEq compares float values with a tolerance scaled to their
// magnitude; all capacities in play are modest, so 1e-9 absolute plus
// 1e-9 relative covers legitimate summation-order differences between
// solvers while still catching any off-by-one-weight divergence.
func almostEq(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9+1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// ---------------------------------------------------------------------
// Max-flow differential
// ---------------------------------------------------------------------

// netEdge records one edge of a constructed test network so invariants
// can be audited from outside the solver.
type netEdge struct {
	id   int
	u, v int
	cap  float64
	inf  bool
}

// testNetwork is a rebuildable network: the conformance checks run
// every solver on a fresh clone.
type testNetwork struct {
	name  string
	g     *maxflow.Network
	edges []netEdge
}

// addEdge adds and records an edge.
func (tn *testNetwork) addEdge(u, v int, cap float64) {
	id := tn.g.AddEdge(u, v, cap)
	tn.edges = append(tn.edges, netEdge{id: id, u: u, v: v, cap: cap, inf: math.IsInf(cap, 1)})
}

// passiveNetwork builds the literal Section 5.1 flow network of the
// instance (source 0, sink 1, one vertex per contending point, ∞ type-3
// edges), independently of the passive package's construction, so the
// solvers are exercised on the exact topology Theorem 4 relies on.
// Returns nil when no points contend.
func passiveNetwork(in Instance) *testNetwork {
	pts := in.Pts()
	n := in.N()
	contending := make([]bool, n)
	for i := 0; i < n; i++ {
		if in.Labels[i] != 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if in.Labels[j] != 1 {
				continue
			}
			if geom.Dominates(pts[i], pts[j]) {
				contending[i] = true
				contending[j] = true
			}
		}
	}
	vertex := make([]int, n)
	next := 2
	for i := range vertex {
		if contending[i] {
			vertex[i] = next
			next++
		} else {
			vertex[i] = -1
		}
	}
	if next == 2 {
		return nil
	}
	tn := &testNetwork{name: "passive", g: maxflow.New(next, 0, 1)}
	for i := 0; i < n; i++ {
		if !contending[i] {
			continue
		}
		if in.Labels[i] == 0 {
			tn.addEdge(0, vertex[i], in.Weights[i])
		} else {
			tn.addEdge(vertex[i], 1, in.Weights[i])
		}
	}
	for i := 0; i < n; i++ {
		if !contending[i] || in.Labels[i] != 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if !contending[j] || in.Labels[j] != 1 {
				continue
			}
			if geom.Dominates(pts[i], pts[j]) {
				tn.addEdge(vertex[i], vertex[j], math.Inf(1))
			}
		}
	}
	return tn
}

// randomTestNetwork draws a small arbitrary network; withInf sprinkles
// infinite capacities in, covering the unbounded-instance contract the
// passive topology never reaches.
func randomTestNetwork(rng *rand.Rand, name string, withInf bool) *testNetwork {
	n := 3 + rng.Intn(9)
	tn := &testNetwork{name: name, g: maxflow.New(n, 0, n-1)}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() >= 0.35 {
				continue
			}
			cap := float64(1 + rng.Intn(12))
			if withInf && rng.Intn(6) == 0 {
				cap = math.Inf(1)
			}
			tn.addEdge(u, v, cap)
		}
	}
	return tn
}

// cutEdgesChecked extracts the min cut, converting the Lemma 18 panic
// (an infinite-capacity edge in the cut) into an error.
func cutEdgesChecked(r maxflow.Result) (cut []maxflow.CutEdge, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	return r.CutEdges(), nil
}

// auditSolverResult checks one solver's result against the recorded
// edge list: capacity bounds, flow conservation, and (on bounded
// instances) min-cut duality with no infinite cut edge.
func auditSolverResult(tn *testNetwork, solver string, r maxflow.Result) error {
	excess := make([]float64, tn.g.NumVertices())
	for _, e := range tn.edges {
		f := r.Flow(e.id)
		if f < -1e-9 {
			return fmt.Errorf("%s/%s: edge %d carries negative flow %g", tn.name, solver, e.id, f)
		}
		if !e.inf && f > e.cap+1e-9 {
			return fmt.Errorf("%s/%s: edge %d flow %g exceeds capacity %g", tn.name, solver, e.id, f, e.cap)
		}
		excess[e.v] += f
		excess[e.u] -= f
	}
	for v := range excess {
		want := 0.0
		switch v {
		case tn.g.Source():
			want = -r.Value
		case tn.g.Sink():
			want = r.Value
		}
		if !almostEq(excess[v], want) {
			return fmt.Errorf("%s/%s: vertex %d violates conservation: excess %g, want %g",
				tn.name, solver, v, excess[v], want)
		}
	}
	if r.IsInfinite() {
		return nil
	}
	cut, err := cutEdgesChecked(r)
	if err != nil {
		return fmt.Errorf("%s/%s: Lemma 18 violated on bounded instance: %v", tn.name, solver, err)
	}
	var cutWeight float64
	for _, e := range cut {
		if math.IsInf(e.Capacity, 1) {
			return fmt.Errorf("%s/%s: infinite edge %d reported in cut", tn.name, solver, e.ID)
		}
		cutWeight += e.Capacity
	}
	if !almostEq(cutWeight, r.Value) {
		return fmt.Errorf("%s/%s: cut weight %g != flow value %g (duality)", tn.name, solver, cutWeight, r.Value)
	}
	return nil
}

// CheckMaxflowDifferential runs all four solvers on the instance's
// Section 5.1 network and on seeded random networks (with and without
// infinite edges), asserting equal flow values, consistent
// boundedness, valid cuts, Lemma 18, and flow conservation.
func CheckMaxflowDifferential(in Instance) error {
	rng := rand.New(rand.NewSource(in.Seed ^ 0x6d61786670))
	var nets []*testNetwork
	if tn := passiveNetwork(in); tn != nil {
		nets = append(nets, tn)
	}
	nets = append(nets,
		randomTestNetwork(rng, "random", false),
		randomTestNetwork(rng, "random-inf", true),
	)
	for _, tn := range nets {
		ref := maxflow.Dinic(tn.g.Clone())
		if err := auditSolverResult(tn, "dinic", ref); err != nil {
			return err
		}
		if tn.name == "passive" && ref.IsInfinite() {
			return fmt.Errorf("passive network reports unbounded flow (Lemma 18 precondition broken)")
		}
		for _, name := range maxflow.SolverNames() {
			if name == "dinic" {
				continue
			}
			r := maxflow.Solvers()[name](tn.g.Clone())
			if r.IsInfinite() != ref.IsInfinite() {
				return fmt.Errorf("%s: %s boundedness %v != dinic %v", tn.name, name, r.IsInfinite(), ref.IsInfinite())
			}
			if !r.IsInfinite() && !almostEq(r.Value, ref.Value) {
				return fmt.Errorf("%s: %s flow value %g != dinic %g", tn.name, name, r.Value, ref.Value)
			}
			if err := auditSolverResult(tn, name, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Dominance kernel differential
// ---------------------------------------------------------------------

// CheckDomgraphKernel holds the bit-packed parallel builder to exact
// agreement with the scalar oracle, then cross-checks the word-level
// kernels (violation counting, contending extraction, antichain test)
// against direct scalar computation.
func CheckDomgraphKernel(in Instance) error {
	pts := in.Pts()
	labels := in.GeomLabels()
	fast := domgraph.Build(pts)
	naive := domgraph.BuildNaive(pts)
	if d := domgraph.Diff(fast, naive); d != "" {
		return fmt.Errorf("Build vs BuildNaive: %s", d)
	}

	if got, want := fast.CountViolations(labels), geom.MonotoneViolations(in.Labeled()); got != want {
		return fmt.Errorf("CountViolations %d != scalar MonotoneViolations %d", got, want)
	}

	parties := fast.ViolationParties(labels)
	n := in.N()
	for i := 0; i < n; i++ {
		want := false
		for j := 0; j < n && !want; j++ {
			if labels[i] == geom.Negative && labels[j] == geom.Positive && geom.Dominates(pts[i], pts[j]) {
				want = true
			}
			if labels[i] == geom.Positive && labels[j] == geom.Negative && geom.Dominates(pts[j], pts[i]) {
				want = true
			}
		}
		if parties[i] != want {
			return fmt.Errorf("ViolationParties[%d] = %v, scalar says %v", i, parties[i], want)
		}
	}

	// Antichain kernel vs scalar pairwise scan on seeded subsets.
	rng := rand.New(rand.NewSource(in.Seed ^ 0x616e7469))
	for trial := 0; trial < 4 && n > 0; trial++ {
		k := 1 + rng.Intn(minInt(n, 10))
		idx := rng.Perm(n)[:k]
		got := fast.IsAntichain(idx)
		want := chains.ValidateAntichain(pts, idx) == nil
		if got != want {
			return fmt.Errorf("IsAntichain(%v) = %v, scalar says %v", idx, got, want)
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// Indexed classifier differential
// ---------------------------------------------------------------------

// classidxSpecials are the coordinate values that exercise every edge
// of the dominance comparison the classification index must reproduce:
// infinities (the ConstPositive bottom anchor is all -Inf), NaN (which
// passes every anchor test as a query coordinate and acts as -Inf as an
// anchor coordinate), zero, and extreme finite magnitudes.
var classidxSpecials = []float64{math.Inf(-1), math.Inf(1), math.NaN(), 0, 1, -1, 1e308, -1e308}

// classidxCoord draws a coordinate from a small integer grid (dense
// ties and duplicates), special with probability 1/4.
func classidxCoord(rng *rand.Rand) float64 {
	if rng.Intn(4) == 0 {
		return classidxSpecials[rng.Intn(len(classidxSpecials))]
	}
	return math.Floor(rng.Float64()*16) - 8
}

// CheckClassifierIndexed holds AnchorSet's indexed classification paths
// (sorted 1-D/2-D fast paths, bit-packed anchor matrix, batch sweep
// kernel) to exact agreement with the scalar anchor scan
// (ClassifyScalar): anchor sets are derived from the instance and from
// seeded random pools with ±Inf and duplicate coordinates, queried with
// points that include NaN, infinities, and the anchors themselves, both
// point-by-point and through ClassifyBatchInto.
func CheckClassifierIndexed(in Instance) error {
	rng := rand.New(rand.NewSource(in.Seed ^ 0x636c7378))
	pts := in.Pts()
	d := in.Dim()
	if d == 0 {
		d = 1 + rng.Intn(5)
	}

	// Anchor pools: the instance's positive points, all instance points,
	// the constant-positive bottom anchor, and random pools with special
	// coordinates. NewAnchorSet prunes each pool to its minimal
	// antichain; the differential runs on whatever survives.
	var pos []geom.Point
	for i, p := range pts {
		if in.Labels[i] == 1 {
			pos = append(pos, p)
		}
	}
	bottom := make(geom.Point, d)
	for k := range bottom {
		bottom[k] = math.Inf(-1)
	}
	pools := [][]geom.Point{pos, pts, nil, {bottom}}
	for trial := 0; trial < 2; trial++ {
		raw := make([]geom.Point, 1+rng.Intn(60))
		for i := range raw {
			q := make(geom.Point, d)
			for k := range q {
				q[k] = classidxCoord(rng)
			}
			raw[i] = q
		}
		pools = append(pools, raw)
	}

	for pi, anchors := range pools {
		h, err := classifier.NewAnchorSet(d, anchors)
		if err != nil {
			return fmt.Errorf("pool %d: NewAnchorSet: %w", pi, err)
		}
		queries := make([]geom.Point, 0, 32+len(h.Anchors()))
		for i := 0; i < 32; i++ {
			q := make(geom.Point, d)
			for k := range q {
				q[k] = classidxCoord(rng)
			}
			queries = append(queries, q)
		}
		queries = append(queries, h.Anchors()...) // exact anchor hits
		for _, q := range queries {
			if got, want := h.Classify(q), h.ClassifyScalar(q); got != want {
				return fmt.Errorf("pool %d (m=%d): indexed Classify(%v) = %v, scalar says %v",
					pi, len(h.Anchors()), q, got, want)
			}
		}
		dst := make([]geom.Label, len(queries))
		h.ClassifyBatchInto(dst, queries)
		for i, q := range queries {
			if want := h.ClassifyScalar(q); dst[i] != want {
				return fmt.Errorf("pool %d (m=%d): batch slot %d (%v) = %v, scalar says %v",
					pi, len(h.Anchors()), i, q, dst[i], want)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Chain decomposition differential
// ---------------------------------------------------------------------

// validateDecomposition asserts a decomposition is a valid minimum
// certificate pair: a chain partition of the right cardinality plus an
// antichain of matching size.
func validateDecomposition(tag string, pts []geom.Point, dec chains.Decomposition) error {
	if err := chains.ValidateDecomposition(pts, dec.Chains); err != nil {
		return fmt.Errorf("%s: %w", tag, err)
	}
	if err := chains.ValidateAntichain(pts, dec.Antichain); err != nil {
		return fmt.Errorf("%s: %w", tag, err)
	}
	if dec.Width != len(dec.Chains) {
		return fmt.Errorf("%s: width %d != %d chains", tag, dec.Width, len(dec.Chains))
	}
	if len(dec.Antichain) != dec.Width {
		return fmt.Errorf("%s: antichain size %d != width %d", tag, len(dec.Antichain), dec.Width)
	}
	return nil
}

// CheckChainsDecompose cross-checks every decomposition path: the
// bit-packed generic construction, its scalar oracle, the dimension
// dispatcher with its 1-D/2-D fast paths, the O(n log n) 2-D width,
// and the greedy baseline (valid but possibly wider).
func CheckChainsDecompose(in Instance) error {
	pts := in.Pts()
	gen := chains.DecomposeGeneric(pts)
	if err := validateDecomposition("generic-kernel", pts, gen); err != nil {
		return err
	}
	sc := chains.DecomposeGenericScalar(pts)
	if err := validateDecomposition("generic-scalar", pts, sc); err != nil {
		return err
	}
	if gen.Width != sc.Width {
		return fmt.Errorf("kernel width %d != scalar width %d", gen.Width, sc.Width)
	}

	disp := chains.Decompose(pts)
	if err := validateDecomposition("dispatcher", pts, disp); err != nil {
		return err
	}
	if disp.Width != gen.Width {
		return fmt.Errorf("dispatcher width %d != generic width %d", disp.Width, gen.Width)
	}
	if w := chains.Width(pts); w != gen.Width {
		return fmt.Errorf("Width %d != generic width %d", w, gen.Width)
	}
	if in.Dim() == 2 {
		if w := chains.Width2D(pts); w != gen.Width {
			return fmt.Errorf("Width2D %d != generic width %d", w, gen.Width)
		}
	}

	greedy := chains.GreedyDecompose(pts)
	if err := chains.ValidateDecomposition(pts, greedy); err != nil && in.N() > 0 {
		return fmt.Errorf("greedy: %w", err)
	}
	if len(greedy) < gen.Width {
		return fmt.Errorf("greedy produced %d chains, below the width %d (impossible)", len(greedy), gen.Width)
	}
	return nil
}

// ---------------------------------------------------------------------
// Passive solver differential
// ---------------------------------------------------------------------

// solveVariant runs passive.Solve with one configuration.
type solveVariant struct {
	name string
	opts passive.Options
}

// auditSolution checks a solution's internal consistency: the
// assignment's weighted disagreement equals the reported optimum, the
// returned classifier reproduces the assignment on the inputs, and the
// classifier is monotone over the inputs.
func auditSolution(tag string, ws geom.WeightedSet, sol passive.Solution) error {
	var disagree float64
	for i, wp := range ws {
		if sol.Assignment[i] != wp.Label {
			disagree += wp.Weight
		}
	}
	if !almostEq(disagree, sol.WErr) {
		return fmt.Errorf("%s: assignment disagreement %g != reported optimum %g", tag, disagree, sol.WErr)
	}
	pts := make([]geom.Point, len(ws))
	for i, wp := range ws {
		pts[i] = wp.P
	}
	for i, p := range pts {
		if got := sol.Classifier.Classify(p); got != sol.Assignment[i] {
			return fmt.Errorf("%s: classifier(%v) = %v, assignment says %v", tag, p, got, sol.Assignment[i])
		}
	}
	if ok, p, q := classifier.IsMonotoneOn(pts, sol.Classifier); !ok {
		return fmt.Errorf("%s: classifier not monotone: h(%v) < h(%v)", tag, p, q)
	}
	return nil
}

// CheckPassiveDifferential solves the instance through every redundant
// configuration — sparse construction under all four max-flow solvers,
// the literal dense construction, a caller-supplied chain
// decomposition — and requires identical optima and contending counts;
// small instances are additionally checked against the exponential
// NaiveSolve.
func CheckPassiveDifferential(in Instance) error {
	ws := in.WeightedSet()
	if len(ws) == 0 {
		if _, err := passive.Solve(ws, passive.Options{}); err == nil {
			return fmt.Errorf("Solve accepted an empty set")
		}
		if _, err := passive.NaiveSolve(ws); err == nil {
			return fmt.Errorf("NaiveSolve accepted an empty set")
		}
		return nil
	}

	base, err := passive.Solve(ws, passive.Options{})
	if err != nil {
		return fmt.Errorf("base solve: %w", err)
	}
	if err := auditSolution("base", ws, base); err != nil {
		return err
	}

	variants := []solveVariant{
		{"dense", passive.Options{Dense: true}},
		{"chains", passive.Options{Chains: chains.Decompose(in.Pts()).Chains}},
	}
	// Every registered max-flow solver drives the sparse construction;
	// registry additions are covered without touching this file.
	for name, solver := range maxflow.Solvers() {
		variants = append(variants, solveVariant{name, passive.Options{Solver: passive.FlowSolver(solver)}})
	}
	for _, v := range variants {
		sol, err := passive.Solve(ws, v.opts)
		if err != nil {
			return fmt.Errorf("%s solve: %w", v.name, err)
		}
		if !almostEq(sol.WErr, base.WErr) {
			return fmt.Errorf("%s optimum %g != base optimum %g", v.name, sol.WErr, base.WErr)
		}
		if sol.Stats.Contending != base.Stats.Contending {
			return fmt.Errorf("%s contending %d != base contending %d", v.name, sol.Stats.Contending, base.Stats.Contending)
		}
		if err := auditSolution(v.name, ws, sol); err != nil {
			return err
		}
	}

	if n := len(ws); n <= 15 && n <= passive.NaiveLimit {
		naive, err := passive.NaiveSolve(ws)
		if err != nil {
			return fmt.Errorf("naive solve: %w", err)
		}
		if !almostEq(naive.WErr, base.WErr) {
			return fmt.Errorf("naive optimum %g != flow optimum %g", naive.WErr, base.WErr)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Active pipeline, exhaustive mode (deterministic, exact)
// ---------------------------------------------------------------------

// activeMaxN bounds the instance size the active checks run on;
// larger instances are legal but redundant for this check and slow
// under -race.
const activeMaxN = 400

// exhaustiveParams requests exact probing (Epsilon <= 0): every point
// is revealed, Σ equals P with unit weights, and the result must match
// the passive optimum exactly.
func exhaustiveParams() core.Params {
	return core.Params{Epsilon: 0, Delta: 0.5, SampleConstant: 3, PhiDivisor: 256, BaseCase: 7}
}

// CheckActiveExhaustive runs the Theorem 2+3 pipeline with exhaustive
// probing and requires exact agreement with the passive optimum on
// unit weights: same error, same width as the decomposition oracle,
// every point probed exactly once.
func CheckActiveExhaustive(in Instance) error {
	n := in.N()
	if n == 0 {
		if _, err := core.ActiveLearn(nil, oracle.NewStatic(nil), exhaustiveParams(), rand.New(rand.NewSource(1))); err == nil {
			return fmt.Errorf("ActiveLearn accepted an empty set")
		}
		return nil
	}
	if n > activeMaxN {
		return nil
	}
	pts := in.Pts()
	labels := in.GeomLabels()
	lab := in.Labeled()

	unit := make(geom.WeightedSet, n)
	for i := range unit {
		unit[i] = geom.WeightedPoint{P: pts[i], Label: labels[i], Weight: 1}
	}
	opt, err := passive.Solve(unit, passive.Options{})
	if err != nil {
		return fmt.Errorf("passive optimum: %w", err)
	}

	rng := rand.New(rand.NewSource(in.Seed ^ 0x61637469))
	res, err := core.ActiveLearn(pts, oracle.NewStatic(labels), exhaustiveParams(), rng)
	if err != nil {
		return fmt.Errorf("exhaustive active run: %w", err)
	}
	if res.Probes != n {
		return fmt.Errorf("exhaustive mode probed %d of %d points", res.Probes, n)
	}
	if w := chains.Width(pts); res.Width != w {
		return fmt.Errorf("active pipeline width %d != decomposition width %d", res.Width, w)
	}
	if !almostEq(res.SigmaWErr, opt.WErr) {
		return fmt.Errorf("exhaustive surrogate optimum %g != passive optimum %g", res.SigmaWErr, opt.WErr)
	}
	if errP := float64(geom.Err(lab, res.Classifier.Classify)); !almostEq(errP, opt.WErr) {
		return fmt.Errorf("exhaustive classifier error %g != passive optimum %g", errP, opt.WErr)
	}
	return nil
}
