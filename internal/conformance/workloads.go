package conformance

import (
	"math/rand"

	"monoclass/internal/dataset"
	"monoclass/internal/geom"
)

// Workload generation: every trial draws one instance from a rotating
// schedule of dataset families and adversarial/degenerate shapes, with
// the size, dimensionality, noise, and weight scheme varied by trial
// index. Each trial owns an independent seed, so any instance can be
// regenerated (and any divergence replayed) without re-running the
// trials before it.

// quickSizes and longSizes are the point-count schedules. They start
// at the degenerate end (n = 0, 1, 2) on purpose: empty and singleton
// inputs are where wrapper error paths and fast-path dispatches live.
var (
	quickSizes = []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}
	longSizes  = []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 512}
)

// noiseSchedule cycles label-flip rates from clean to adversarial.
var noiseSchedule = []float64{0, 0.05, 0.2, 0.45}

// familyNames lists the generator families in rotation order.
var familyNames = []string{
	"planted", "width2d", "uniform1d", "noisychain", "antidiagonal",
	"labelinversion", "figure1", "dupgrid", "onelabel", "singlechain",
	"antichain", "duplicates",
}

// trialSeed derives an independent seed for one trial from the engine
// seed via a splitmix64 step, so trials are decorrelated and each
// instance is regenerable in isolation.
func trialSeed(engineSeed int64, trial int) int64 {
	z := uint64(engineSeed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// GenerateWorkload produces the instance for one trial. The same
// (engineSeed, trial, long) triple always yields the same instance.
func GenerateWorkload(engineSeed int64, trial int, long bool) Instance {
	seed := trialSeed(engineSeed, trial)
	rng := rand.New(rand.NewSource(seed))

	sizes := quickSizes
	if long {
		sizes = longSizes
	}
	n := sizes[trial%len(sizes)]
	d := 1 + (trial/len(sizes))%6
	noise := noiseSchedule[rng.Intn(len(noiseSchedule))]
	family := familyNames[trial%len(familyNames)]

	var lab []geom.LabeledPoint
	switch family {
	case "planted":
		lab = dataset.Planted(rng, dataset.PlantedParams{N: n, D: d, Noise: noise})
	case "width2d":
		if n == 0 {
			lab = nil
		} else {
			w := 1 + rng.Intn(n)
			lab = dataset.WidthControlled(rng, dataset.WidthParams{N: n, W: w, Noise: noise})
		}
	case "uniform1d":
		lab = dataset.Uniform1D(rng, n, rng.Float64(), noise)
	case "noisychain":
		lab = dataset.NoisyChain(rng, n, noise)
	case "antidiagonal":
		lab = dataset.AntiDiagonal(rng, n)
	case "labelinversion":
		lab = dataset.LabelInversion(n)
	case "figure1":
		return FromWeightedSet(family, seed, dataset.Figure1Weighted())
	case "dupgrid":
		// Tiny integer grid: masses of exact duplicates and per-
		// dimension ties, the regime the DAG tiebreak and duplicate-
		// group logic exist for.
		lab = gridPoints(rng, n, d, 1+rng.Intn(3))
	case "onelabel":
		lab = dataset.Planted(rng, dataset.PlantedParams{N: n, D: d})
		one := geom.Label(rng.Intn(2))
		for i := range lab {
			lab[i].Label = one
		}
	case "singlechain":
		// One maximal chain along the diagonal in d dimensions with a
		// noisy threshold: width 1, every pair comparable.
		lab = make([]geom.LabeledPoint, n)
		threshold := 0
		if n > 0 {
			threshold = rng.Intn(n + 1)
		}
		for i := range lab {
			pt := make(geom.Point, d)
			for k := range pt {
				pt[k] = float64(i)
			}
			label := geom.Negative
			if i >= threshold {
				label = geom.Positive
			}
			if rng.Float64() < noise {
				label ^= 1
			}
			lab[i] = geom.LabeledPoint{P: pt, Label: label}
		}
	case "antichain":
		// Pure antichain in any d >= 2: the first two coordinates are
		// anti-correlated, the rest random. Width n, every labeling
		// monotone-consistent.
		dd := d
		if dd < 2 {
			dd = 2
		}
		lab = make([]geom.LabeledPoint, n)
		for i := range lab {
			pt := make(geom.Point, dd)
			pt[0] = float64(i)
			pt[1] = float64(n - 1 - i)
			for k := 2; k < dd; k++ {
				pt[k] = float64(rng.Intn(8))
			}
			lab[i] = geom.LabeledPoint{P: pt, Label: geom.Label(rng.Intn(2))}
		}
	case "duplicates":
		// A handful of distinct points, each repeated many times with
		// independently noisy labels — coordinate-equal points carrying
		// conflicting labels.
		distinct := 1 + n/8
		protos := dataset.Planted(rng, dataset.PlantedParams{N: distinct, D: d, Noise: 0})
		lab = make([]geom.LabeledPoint, n)
		for i := range lab {
			p := protos[rng.Intn(distinct)]
			label := p.Label
			if rng.Float64() < noise {
				label ^= 1
			}
			lab[i] = geom.LabeledPoint{P: p.P.Clone(), Label: label}
		}
		if n == 0 {
			lab = nil
		}
	}

	ws := make(geom.WeightedSet, len(lab))
	for i, lp := range lab {
		ws[i] = geom.WeightedPoint{P: lp.P, Label: lp.Label, Weight: pickWeight(rng, trial)}
	}
	return FromWeightedSet(family, seed, ws)
}

// gridPoints draws n points from the integer grid {0..levels}^d with
// random labels.
func gridPoints(rng *rand.Rand, n, d, levels int) []geom.LabeledPoint {
	out := make([]geom.LabeledPoint, n)
	for i := range out {
		pt := make(geom.Point, d)
		for k := range pt {
			pt[k] = float64(rng.Intn(levels + 1))
		}
		out[i] = geom.LabeledPoint{P: pt, Label: geom.Label(rng.Intn(2))}
	}
	return out
}

// pickWeight rotates weight schemes by trial: unit weights, small
// mixed weights, and heavy-tailed weights (the Figure 1(b) regime
// where one point outweighs entire neighborhoods).
func pickWeight(rng *rand.Rand, trial int) float64 {
	switch trial % 3 {
	case 0:
		return 1
	case 1:
		return []float64{0.5, 1, 2, 3.25}[rng.Intn(4)]
	default:
		if rng.Intn(8) == 0 {
			return 100
		}
		return 1
	}
}
