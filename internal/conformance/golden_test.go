package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"monoclass/internal/chains"
	"monoclass/internal/classifier"
	"monoclass/internal/dataset"
	"monoclass/internal/geom"
	"monoclass/internal/passive"
)

// TestGoldenFigure1 pins the paper's Figure 1 worked example end to
// end: the chain structure, the unweighted and weighted passive
// optima, the exact positive set of the weighted solution, and the
// serialized model bytes. Regenerate the byte golden with
// UPDATE_GOLDEN=1 after an intentional format change.
func TestGoldenFigure1(t *testing.T) {
	lps := dataset.Figure1()
	pts := make([]geom.Point, len(lps))
	for i, lp := range lps {
		pts[i] = lp.P
	}

	// Structure: width 6, the paper's antichain and 6-chain
	// decomposition are both valid, and our decomposition achieves the
	// width.
	if w := chains.Width(pts); w != 6 {
		t.Errorf("width = %d, want 6", w)
	}
	antichain := []int{9, 10, 11, 12, 13, 15} // {p10,p11,p12,p13,p14,p16}
	if err := chains.ValidateAntichain(pts, antichain); err != nil {
		t.Errorf("paper antichain invalid: %v", err)
	}
	if err := chains.ValidateDecomposition(pts, dataset.Figure1Chains()); err != nil {
		t.Errorf("paper decomposition invalid: %v", err)
	}
	dec := chains.Decompose(pts)
	if len(dec.Chains) != 6 {
		t.Errorf("Decompose produced %d chains, want 6", len(dec.Chains))
	}
	if err := chains.ValidateDecomposition(pts, dec.Chains); err != nil {
		t.Errorf("Decompose output invalid: %v", err)
	}

	// Unweighted optimum k* = 3, |P^con| = 10.
	unit := make(geom.WeightedSet, len(lps))
	for i, lp := range lps {
		unit[i] = geom.WeightedPoint{P: lp.P, Label: lp.Label, Weight: 1}
	}
	usol, err := passive.Solve(unit, passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if usol.WErr != 3 {
		t.Errorf("unweighted optimum = %g, want 3", usol.WErr)
	}
	if usol.Stats.Contending != 10 {
		t.Errorf("|P^con| = %d, want 10", usol.Stats.Contending)
	}

	// Weighted (Figure 1(b)): optimum 104, positives exactly
	// {p10, p12, p16}.
	wsol, err := passive.Solve(dataset.Figure1Weighted(), passive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wsol.WErr != 104 {
		t.Errorf("weighted optimum = %g, want 104", wsol.WErr)
	}
	wantPos := map[int]bool{9: true, 11: true, 15: true}
	for i, lab := range wsol.Assignment {
		if (lab == geom.Positive) != wantPos[i] {
			t.Errorf("assignment[p%d] = %v, want positive=%v", i+1, lab, wantPos[i])
		}
	}

	// Serialized model bytes.
	var buf bytes.Buffer
	if err := classifier.WriteModel(&buf, wsol.Classifier); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "figure1-model.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized model drifted from %s:\ngot:\n%s\nwant:\n%s", goldenPath, buf.Bytes(), want)
	}
	// The golden bytes must also load back into a classifier that
	// reproduces the optimal assignment.
	h, err := classifier.ReadModel(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden model does not load: %v", err)
	}
	for i, lp := range lps {
		if got := h.Classify(lp.P); got != wsol.Assignment[i] {
			t.Errorf("golden model classifies p%d as %v, want %v", i+1, got, wsol.Assignment[i])
		}
	}
}
