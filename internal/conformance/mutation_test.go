//go:build conformance_mutation

package conformance

import (
	"fmt"
	"math"
	"testing"

	"monoclass/internal/domgraph"
	"monoclass/internal/maxflow"
)

// Mutation self-test: the harness is only trustworthy if it actually
// fires on a broken solver. This file (built with -tags
// conformance_mutation, wired as `make conformance-mutate`) runs a
// deliberately miscompiled solver copy through the engine's detect →
// shrink → persist → replay path and asserts every stage works.

// mutantMaxflow is a copy of the Edmonds–Karp solver over the
// conformance edge list with an injected off-by-one: the BFS treats a
// residual capacity as traversable only when it exceeds 1 instead of
// 0, so augmenting paths through unit-capacity edges are never found
// and the reported value undershoots.
func mutantMaxflow(tn *testNetwork) float64 {
	nv := tn.g.NumVertices()
	type arc struct {
		to  int
		cap float64
		rev int
	}
	adj := make([][]arc, nv)
	add := func(u, v int, c float64) {
		adj[u] = append(adj[u], arc{to: v, cap: c, rev: len(adj[v])})
		adj[v] = append(adj[v], arc{to: u, cap: 0, rev: len(adj[u]) - 1})
	}
	for _, e := range tn.edges {
		add(e.u, e.v, e.cap)
	}
	source, sink := 0, 1
	total := 0.0
	for {
		prevV := make([]int, nv)
		prevA := make([]int, nv)
		for i := range prevV {
			prevV[i] = -1
		}
		prevV[source] = source
		queue := []int{source}
		for len(queue) > 0 && prevV[sink] < 0 {
			u := queue[0]
			queue = queue[1:]
			for ai, a := range adj[u] {
				// BUG (off-by-one): must be a.cap > 0.
				if prevV[a.to] < 0 && a.cap > 1 {
					prevV[a.to] = u
					prevA[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if prevV[sink] < 0 {
			return total
		}
		bottleneck := math.Inf(1)
		for v := sink; v != source; v = prevV[v] {
			if c := adj[prevV[v]][prevA[v]].cap; c < bottleneck {
				bottleneck = c
			}
		}
		for v := sink; v != source; v = prevV[v] {
			a := &adj[prevV[v]][prevA[v]]
			a.cap -= bottleneck
			adj[v][a.rev].cap += bottleneck
		}
		total += bottleneck
	}
}

// mutantCheck is the differential check the engine would run if the
// mutant were wired in as a solver: its value must match Dinic on the
// instance's passive network.
func mutantCheck(in Instance) error {
	tn := passiveNetwork(in)
	if tn == nil {
		return nil
	}
	want := maxflow.Dinic(tn.g.Clone())
	if want.IsInfinite() {
		return nil
	}
	got := mutantMaxflow(tn)
	if !almostEq(got, want.Value) {
		return fmt.Errorf("mutant maxflow = %g, dinic = %g", got, want.Value)
	}
	return nil
}

// TestMutationMaxflowDetected drives the full pipeline against the
// mutant: the workload schedule must expose it, the shrinker must
// minimize the witness without losing it, and the persisted repro must
// still reproduce after a JSON round trip.
func TestMutationMaxflowDetected(t *testing.T) {
	const maxTrials = 200
	found := -1
	var witness Instance
	for trial := 0; trial < maxTrials; trial++ {
		in := GenerateWorkload(1, trial, false)
		if Safe(mutantCheck, in) != nil {
			found, witness = trial, in
			break
		}
	}
	if found < 0 {
		t.Fatalf("injected off-by-one survived %d trials undetected", maxTrials)
	}
	t.Logf("mutant detected on trial %d (family %s, n=%d)", found, witness.Family, witness.N())

	shrunk := Shrink(witness, mutantCheck)
	err := Safe(mutantCheck, shrunk)
	if err == nil {
		t.Fatal("shrinking lost the mutant divergence")
	}
	if shrunk.N() > witness.N() {
		t.Errorf("shrink grew the instance: %d -> %d", witness.N(), shrunk.N())
	}
	t.Logf("shrunk witness: n=%d, d=%d: %v", shrunk.N(), shrunk.Dim(), err)

	shrunk.Check = "maxflow-differential"
	shrunk.Note = err.Error()
	path, werr := WriteRepro(t.TempDir(), shrunk)
	if werr != nil {
		t.Fatal(werr)
	}
	loaded, lerr := LoadRepro(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if Safe(mutantCheck, loaded) == nil {
		t.Error("persisted repro no longer reproduces the mutant divergence")
	}
	// The healthy solvers must pass the same witness: the divergence
	// indicts the mutant, not the instance.
	if err := Safe(CheckMaxflowDifferential, loaded); err != nil {
		t.Errorf("healthy solvers fail the shrunk witness: %v", err)
	}
}

// TestMutationDomgraphBitFlip flips a single closure bit in a built
// dominance matrix and asserts the differ the kernel comparison rests
// on reports it.
func TestMutationDomgraphBitFlip(t *testing.T) {
	in := GenerateWorkload(1, 9, false)
	if in.N() < 2 {
		t.Fatalf("workload too small: n=%d", in.N())
	}
	a := domgraph.Build(in.Pts())
	b := domgraph.Build(in.Pts())
	row := b.DomRow(0)
	row[0] ^= 1 << 1 // flip dominance bit (0,1)
	if msg := domgraph.Diff(a, b); msg == "" {
		t.Error("single flipped closure bit went undetected")
	} else {
		t.Logf("differ reported: %s", msg)
	}
}
