package conformance

import (
	"fmt"
	"math"

	"monoclass/internal/chains"
	"monoclass/internal/domgraph"
	"monoclass/internal/geom"
)

// CheckDecomposeWarmStart holds the warm-started chain decomposition
// to the cold Hopcroft–Karp oracle across every dominance
// representation a Problem can carry. For each of the dense, blocked,
// and implicit materializations it requires: bit-identical width to a
// cold run over the same matrix, a valid decomposition and a
// certifying antichain of exactly that width, warm-start accounting
// that balances (augmentations = seed chains − width), and convergence
// from a caller-supplied greedy cover through DecomposeMatrixSeeded.
// ±Inf instances exercise the full differential; NaN coordinates are
// outside the decomposition domain — geom.Dominates makes NaN points
// mutually dominating without being Equal (NaN != NaN), so the "DAG"
// acquires 2-cycles and no chain partition exists — and are skipped,
// matching the problem/online checks' hasNonFinite gates. The NaN
// corner fixtures still run the check to pin that it declines
// gracefully instead of panicking.
func CheckDecomposeWarmStart(in Instance) error {
	if in.N() == 0 {
		return nil
	}
	pts := in.Pts()
	if hasNaNPoints(pts) {
		return nil
	}

	type matSource struct {
		name string
		m    *domgraph.Matrix
	}
	// BuildNaive is the views' scalar fallback for non-sweepable
	// coordinates; ±Inf inputs exercise it through the blocked and
	// implicit materializations below, and it must agree with the
	// parallel sweep builder here regardless.
	sources := []matSource{
		{"dense", domgraph.Build(pts)},
		{"dense-naive", domgraph.BuildNaive(pts)},
		{"blocked", domgraph.NewBlocked(pts, domgraph.BlockedConfig{}).Materialize()},
		{"implicit", domgraph.NewImplicit(pts).Materialize()},
	}

	var refWidth = -1
	for _, src := range sources {
		cold := chains.DecomposeMatrixCold(pts, src.m)
		warm, st := chains.DecomposeMatrixStats(pts, src.m)
		if warm.Width != cold.Width {
			return fmt.Errorf("%s: warm width %d != cold width %d", src.name, warm.Width, cold.Width)
		}
		if err := validateDecomposition(src.name+"-warm", pts, warm); err != nil {
			return err
		}
		if err := validateDecomposition(src.name+"-cold", pts, cold); err != nil {
			return err
		}
		if st.Width != warm.Width {
			return fmt.Errorf("%s: stats width %d != decomposition width %d", src.name, st.Width, warm.Width)
		}
		if st.Augmentations != st.SeedChains-st.Width {
			return fmt.Errorf("%s: %d augmentations for seed %d -> width %d",
				src.name, st.Augmentations, st.SeedChains, st.Width)
		}
		if st.CertEarlyExit && (st.Phases != 0 || st.Augmentations != 0) {
			return fmt.Errorf("%s: certificate early exit still ran matching: %+v", src.name, st)
		}
		if refWidth == -1 {
			refWidth = warm.Width
		} else if warm.Width != refWidth {
			return fmt.Errorf("%s: width %d != dense width %d", src.name, warm.Width, refWidth)
		}

		// A caller-supplied greedy cover must converge identically, with
		// the augmentation count bounded by its seed gap.
		greedy := chains.GreedyDecompose(pts)
		seeded, sst := chains.DecomposeMatrixSeeded(pts, src.m, greedy)
		if seeded.Width != cold.Width {
			return fmt.Errorf("%s: greedy-seeded width %d != cold width %d", src.name, seeded.Width, cold.Width)
		}
		if sst.Augmentations > sst.SeedChains-seeded.Width {
			return fmt.Errorf("%s: greedy-seeded %d augmentations exceed seed gap %d",
				src.name, sst.Augmentations, sst.SeedChains-seeded.Width)
		}
		if err := validateDecomposition(src.name+"-seeded", pts, seeded); err != nil {
			return err
		}
	}

	// The generic entry point (what Prepare's exact paths call) must
	// agree with the per-matrix runs.
	if gen := chains.DecomposeGeneric(pts); gen.Width != refWidth {
		return fmt.Errorf("DecomposeGeneric width %d != matrix width %d", gen.Width, refWidth)
	}
	return nil
}

// hasNaNPoints reports whether any coordinate is NaN — the one case
// the sweep-based dominance builders do not define (±Inf is fine).
func hasNaNPoints(pts []geom.Point) bool {
	for _, p := range pts {
		for _, x := range p {
			if math.IsNaN(x) {
				return true
			}
		}
	}
	return false
}

// warmStartCornerFixtures are the static NaN/±Inf shapes the check
// must survive beyond what the random generators produce; the engine's
// corner-case pass and TestWarmStartCornerFixtures both run them.
func warmStartCornerFixtures() []Instance {
	nan, pinf, ninf := math.NaN(), math.Inf(1), math.Inf(-1)
	return []Instance{
		{
			Family:  "corner-nan-mixed",
			Points:  [][]float64{{nan, 1, 2}, {0, 1, 2}, {3, 4, 5}, {nan, nan, nan}, {3, 4, 5}},
			Labels:  []int{0, 1, 0, 1, 0},
			Weights: []float64{1, 1, 1, 1, 1},
		},
		{
			Family:  "corner-inf-chain",
			Points:  [][]float64{{ninf, ninf, ninf}, {0, 0, 0}, {pinf, pinf, pinf}, {pinf, 0, ninf}},
			Labels:  []int{0, 0, 1, 1},
			Weights: []float64{1, 2, 1, 2},
		},
		{
			Family:  "corner-inf-nan",
			Points:  [][]float64{{pinf, nan, 0}, {ninf, 0, nan}, {nan, pinf, ninf}, {0, 0, 0}},
			Labels:  []int{1, 0, 1, 0},
			Weights: []float64{1, 1, 1, 1},
		},
	}
}
