// Package conformance is the repo's machine-checkable equivalence net:
// a seeded, self-shrinking differential + metamorphic test engine that
// cross-checks every deliberately redundant implementation pair against
// the paper's guarantees (Theorems 2–4).
//
// The redundancy it polices:
//
//   - four max-flow solvers (Dinic, push-relabel, Edmonds–Karp,
//     capacity scaling) on identical networks — equal value, valid cut,
//     Lemma 18's no-infinite-cut-edge invariant, flow conservation;
//   - the bit-packed dominance kernel (domgraph.Build) against its
//     scalar oracle (domgraph.BuildNaive), bit for bit;
//   - the kernel chain decomposition (chains.DecomposeGeneric) against
//     the scalar construction and the 1-D/2-D fast paths — equal width,
//     valid partitions, valid antichain certificates;
//   - the passive optimum across sparse/dense network constructions and
//     all solvers, against the exponential NaiveSolve on small inputs;
//   - the active pipeline in exhaustive mode against the passive
//     optimum (exact), and with sampling parameters against the (1+ε)
//     guarantee over repeated trials (statistical audit).
//
// On top sit metamorphic invariants: strictly monotone per-dimension
// coordinate transforms preserve width/optimum/violations; label-flip +
// coordinate-negation duality; point duplication scales the weighted
// error; weight scaling scales it linearly; input permutation changes
// nothing.
//
// Workloads come from every internal/dataset family plus adversarial
// and degenerate shapes (duplicates, grid ties, all-one-label,
// antichains, single chains, d = 1..6, n = 0 and 1). On divergence the
// engine greedily shrinks the failing instance (drop point chunks, drop
// dimensions, normalize weights, rank-compress coordinates) and writes
// a replay file testdata/repro-*.json that the TestReplayRepros runner
// and `benchtab -conformance` both load. See DESIGN.md §7 for the
// invariant catalog.
package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"monoclass/internal/geom"
)

// Instance is one self-contained workload: a weighted labeled point
// set plus the provenance needed to regenerate or replay it. It is the
// unit the checks consume, the shrinker minimizes, and the repro files
// serialize.
type Instance struct {
	// Family names the generator that produced the instance.
	Family string `json:"family"`
	// Seed is the per-trial seed; checks that need randomness (random
	// networks, permutations, active runs) derive their generators from
	// it, so a replayed instance exercises identical randomness.
	Seed int64 `json:"seed"`
	// Check optionally names the check that diverged; replay runs just
	// that check when set, the full suite otherwise.
	Check string `json:"check,omitempty"`
	// Note carries the human-readable divergence message.
	Note string `json:"note,omitempty"`

	Points  [][]float64 `json:"points"`
	Labels  []int       `json:"labels"`
	Weights []float64   `json:"weights"`
}

// N returns the number of points.
func (in Instance) N() int { return len(in.Points) }

// Dim returns the dimensionality (0 when empty).
func (in Instance) Dim() int {
	if len(in.Points) == 0 {
		return 0
	}
	return len(in.Points[0])
}

// Validate checks internal consistency: aligned slices, consistent
// dimensionality (at least 1 when non-empty), binary labels, positive
// finite weights. Repro files pass through it before replay.
func (in Instance) Validate() error {
	if len(in.Labels) != len(in.Points) || len(in.Weights) != len(in.Points) {
		return fmt.Errorf("conformance: %d points, %d labels, %d weights",
			len(in.Points), len(in.Labels), len(in.Weights))
	}
	for i, l := range in.Labels {
		if l != 0 && l != 1 {
			return fmt.Errorf("conformance: label %d at index %d", l, i)
		}
	}
	return in.WeightedSet().Validate()
}

// Pts converts the coordinate rows to geom points.
func (in Instance) Pts() []geom.Point {
	pts := make([]geom.Point, len(in.Points))
	for i, row := range in.Points {
		pts[i] = geom.Point(row)
	}
	return pts
}

// GeomLabels converts the labels.
func (in Instance) GeomLabels() []geom.Label {
	labels := make([]geom.Label, len(in.Labels))
	for i, l := range in.Labels {
		labels[i] = geom.Label(l)
	}
	return labels
}

// Labeled returns the instance as a labeled point set.
func (in Instance) Labeled() []geom.LabeledPoint {
	out := make([]geom.LabeledPoint, len(in.Points))
	for i := range in.Points {
		out[i] = geom.LabeledPoint{P: geom.Point(in.Points[i]), Label: geom.Label(in.Labels[i])}
	}
	return out
}

// WeightedSet returns the instance as the passive problem's input.
func (in Instance) WeightedSet() geom.WeightedSet {
	ws := make(geom.WeightedSet, len(in.Points))
	for i := range in.Points {
		ws[i] = geom.WeightedPoint{
			P:      geom.Point(in.Points[i]),
			Label:  geom.Label(in.Labels[i]),
			Weight: in.Weights[i],
		}
	}
	return ws
}

// Clone deep-copies the instance.
func (in Instance) Clone() Instance {
	cp := in
	cp.Points = make([][]float64, len(in.Points))
	for i, row := range in.Points {
		cp.Points[i] = append([]float64(nil), row...)
	}
	cp.Labels = append([]int(nil), in.Labels...)
	cp.Weights = append([]float64(nil), in.Weights...)
	return cp
}

// FromWeightedSet builds an instance from a weighted set.
func FromWeightedSet(family string, seed int64, ws geom.WeightedSet) Instance {
	in := Instance{
		Family:  family,
		Seed:    seed,
		Points:  make([][]float64, len(ws)),
		Labels:  make([]int, len(ws)),
		Weights: make([]float64, len(ws)),
	}
	for i, wp := range ws {
		in.Points[i] = append([]float64(nil), wp.P...)
		in.Labels[i] = int(wp.Label)
		in.Weights[i] = wp.Weight
	}
	return in
}

// removeRange returns a copy with points [start, start+count) removed.
func (in Instance) removeRange(start, count int) Instance {
	cp := in.Clone()
	cp.Points = append(cp.Points[:start], cp.Points[start+count:]...)
	cp.Labels = append(cp.Labels[:start], cp.Labels[start+count:]...)
	cp.Weights = append(cp.Weights[:start], cp.Weights[start+count:]...)
	return cp
}

// dropDim returns a copy with coordinate k projected out.
func (in Instance) dropDim(k int) Instance {
	cp := in.Clone()
	for i, row := range cp.Points {
		cp.Points[i] = append(row[:k], row[k+1:]...)
	}
	return cp
}

// unitWeights returns a copy with every weight set to 1.
func (in Instance) unitWeights() Instance {
	cp := in.Clone()
	for i := range cp.Weights {
		cp.Weights[i] = 1
	}
	return cp
}

// rankCoords returns a copy with every coordinate replaced by its rank
// among the distinct values of its dimension — an exactly
// order-preserving compression that makes repro files small and
// readable without changing the dominance relation.
func (in Instance) rankCoords() Instance {
	cp := in.Clone()
	d := cp.Dim()
	for k := 0; k < d; k++ {
		vals := make([]float64, 0, len(cp.Points))
		for _, row := range cp.Points {
			vals = append(vals, row[k])
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, v := range vals {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		for _, row := range cp.Points {
			row[k] = float64(sort.SearchFloat64s(uniq, row[k]))
		}
	}
	return cp
}

// WriteRepro serializes the instance into dir as repro-*.json and
// returns the file path. The name is a stable function of the failing
// check, family, and seed, so re-running the same divergence overwrites
// rather than accumulating duplicates.
func WriteRepro(dir string, in Instance) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	check := in.Check
	if check == "" {
		check = "all"
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-%s-%s-%d.json", check, in.Family, in.Seed))
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro parses one repro file.
func LoadRepro(path string) (Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Instance{}, err
	}
	var in Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return Instance{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if err := in.Validate(); err != nil {
		return Instance{}, fmt.Errorf("conformance: %s: %w", path, err)
	}
	return in, nil
}

// ListRepros returns the sorted repro-*.json paths under dir; a
// missing directory is an empty list, not an error.
func ListRepros(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "repro-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// Replay runs the instance's named check, or the full deterministic
// suite when no check is recorded. A nil return means the divergence
// no longer reproduces.
func Replay(in Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Check != "" {
		fn := CheckByName(in.Check)
		if fn == nil {
			return fmt.Errorf("conformance: unknown check %q", in.Check)
		}
		return Safe(fn, in)
	}
	return RunAll(in)
}
