package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// envInt reads an integer override from the environment.
func envInt(key string, def int) int {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// TestConformance is the gate `make conformance` runs: a seeded engine
// pass over every implementation pair and invariant. Environment
// overrides: CONFORMANCE_TRIALS, CONFORMANCE_SEED, CONFORMANCE_LONG=1
// (larger size schedule for soak runs).
func TestConformance(t *testing.T) {
	trials := envInt("CONFORMANCE_TRIALS", 200)
	seed := int64(envInt("CONFORMANCE_SEED", 1))
	long := os.Getenv("CONFORMANCE_LONG") != ""
	if testing.Short() {
		trials = minInt(trials, 36)
	}

	rep := Run(Config{
		Seed:     seed,
		Trials:   trials,
		Long:     long,
		ReproDir: "testdata",
		Logf:     t.Logf,
	})
	t.Logf("\n%s", rep.Summary())

	for _, c := range Checks() {
		if rep.PerCheck[c.Name] != trials {
			t.Errorf("check %s ran %d times, want %d", c.Name, rep.PerCheck[c.Name], trials)
		}
	}
	if rep.Active.Instances == 0 {
		t.Error("active (1+ε) audit never ran")
	}
	for _, d := range rep.Divergences {
		t.Errorf("divergence: %s on %s (trial %d): %s [repro: %s]",
			d.Check, d.Family, d.Trial, d.Err, d.ReproPath)
	}
}

// TestWorkloadDeterminism: the same (seed, trial) pair must always
// regenerate the identical instance — the property replaying and
// shrinking depend on.
func TestWorkloadDeterminism(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		a := GenerateWorkload(7, trial, false)
		b := GenerateWorkload(7, trial, false)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("trial %d not deterministic", trial)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("trial %d generates invalid instance: %v", trial, err)
		}
	}
}

// TestWorkloadCoverage: the schedule must actually produce the shapes
// the harness advertises — degenerate sizes, duplicates, every
// dimension 1..6.
func TestWorkloadCoverage(t *testing.T) {
	sawN := map[int]bool{}
	sawD := map[int]bool{}
	families := map[string]bool{}
	for trial := 0; trial < 400; trial++ {
		in := GenerateWorkload(1, trial, false)
		sawN[in.N()] = true
		sawD[in.Dim()] = true
		families[in.Family] = true
	}
	for _, n := range []int{0, 1, 2} {
		if !sawN[n] {
			t.Errorf("size schedule never produced n=%d", n)
		}
	}
	for d := 1; d <= 6; d++ {
		if !sawD[d] {
			t.Errorf("schedule never produced dimension %d", d)
		}
	}
	for _, f := range familyNames {
		if !families[f] {
			t.Errorf("family %s never generated", f)
		}
	}
}

// TestShrinkMinimizes: a synthetic predicate that fails whenever the
// instance contains a marked point must shrink to (nearly) just that
// point, and the result must still fail.
func TestShrinkMinimizes(t *testing.T) {
	in := GenerateWorkload(3, 9, false) // a mid-sized planted instance
	if in.N() < 20 {
		t.Fatalf("unexpectedly small workload: n=%d", in.N())
	}
	// Mark one point by an out-of-band coordinate value.
	in.Points[in.N()/2][0] = 1e6
	pred := func(cand Instance) error {
		for _, row := range cand.Points {
			if row[0] == 1e6 {
				return fmt.Errorf("marked point present")
			}
		}
		return nil
	}
	shrunk := Shrink(in, pred)
	if Safe(pred, shrunk) == nil {
		t.Fatal("shrink lost the failure")
	}
	if shrunk.N() > 2 {
		t.Errorf("shrunk to %d points, want <= 2", shrunk.N())
	}
	if shrunk.Dim() != 1 {
		t.Errorf("shrunk to %d dims, want 1", shrunk.Dim())
	}
}

// TestShrinkOnPassingInstanceIsIdentity: shrinking a non-failing
// instance returns it unchanged.
func TestShrinkOnPassingInstanceIsIdentity(t *testing.T) {
	in := GenerateWorkload(1, 5, false)
	out := Shrink(in, func(Instance) error { return nil })
	if out.N() != in.N() {
		t.Errorf("shrink changed a passing instance: %d -> %d points", in.N(), out.N())
	}
}

// TestReproRoundTrip: write, list, load, replay.
func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := GenerateWorkload(11, 13, false)
	in.Check = "passive-differential"
	in.Note = "synthetic round-trip fixture"
	path, err := WriteRepro(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ListRepros(dir)
	if err != nil || len(paths) != 1 || paths[0] != path {
		t.Fatalf("ListRepros = %v, %v; want [%s]", paths, err, path)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", in) {
		t.Fatal("repro round trip changed the instance")
	}
	// The stored instance is healthy, so replaying its check passes.
	if err := Replay(back); err != nil {
		t.Errorf("replay of healthy instance failed: %v", err)
	}
}

// TestLoadReproRejectsGarbage: malformed or inconsistent repro files
// must be rejected, not replayed.
func TestLoadReproRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"repro-bad-json.json":   "{not json",
		"repro-bad-label.json":  `{"family":"x","points":[[1]],"labels":[7],"weights":[1]}`,
		"repro-bad-weight.json": `{"family":"x","points":[[1]],"labels":[1],"weights":[-1]}`,
		"repro-misaligned.json": `{"family":"x","points":[[1],[2]],"labels":[1],"weights":[1]}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadRepro(p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReplayUnknownCheck: an unknown check name is an error, not a
// silent pass.
func TestReplayUnknownCheck(t *testing.T) {
	in := GenerateWorkload(1, 3, false)
	in.Check = "no-such-check"
	if err := Replay(in); err == nil {
		t.Error("replay accepted an unknown check name")
	}
}

// TestDomgraphDiffDetectsBitFlip: the matrix differ (the primitive
// every kernel comparison rests on) must catch a single flipped bit.
func TestDomgraphDiffDetectsBitFlip(t *testing.T) {
	in := GenerateWorkload(5, 21, false)
	if in.N() < 3 {
		t.Skip("workload too small")
	}
	if err := Safe(CheckDomgraphKernel, in); err != nil {
		t.Fatalf("healthy instance diverges: %v", err)
	}
}
