package matching

import (
	"math/rand"
	"testing"
)

// randomPair builds the same random graph in both representations.
func randomPair(rng *rand.Rand, nLeft, nRight int, p float64) (*Bipartite, *BitsetBipartite) {
	b := NewBipartite(nLeft, nRight)
	bb := NewBitsetBipartite(nLeft, nRight)
	for u := 0; u < nLeft; u++ {
		for v := 0; v < nRight; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
				bb.SetEdge(u, v)
			}
		}
	}
	return b, bb
}

func checkMatchingConsistent(t *testing.T, bb *BitsetBipartite, m Matching) {
	t.Helper()
	size := 0
	for u, v := range m.MatchLeft {
		if v == unmatched {
			continue
		}
		size++
		if !bb.HasEdge(u, v) {
			t.Fatalf("matched pair (%d,%d) is not an edge", u, v)
		}
		if m.MatchRight[v] != u {
			t.Fatalf("MatchRight[%d]=%d, want %d", v, m.MatchRight[v], u)
		}
	}
	if size != m.Size {
		t.Fatalf("Size=%d but %d left vertices matched", m.Size, size)
	}
}

// TestMaxMatchingBitsetMatchesSlice: same maximum matching size as the
// adjacency-list solver on random graphs across densities, and the
// returned matching is itself consistent.
func TestMaxMatchingBitsetMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nLeft := rng.Intn(90)
		nRight := rng.Intn(90)
		p := []float64{0.02, 0.1, 0.5, 0.9}[rng.Intn(4)]
		b, bb := randomPair(rng, nLeft, nRight, p)
		want := MaxMatching(b)
		got := MaxMatchingBitset(bb)
		if got.Size != want.Size {
			t.Fatalf("trial %d (%dx%d p=%g): bitset size %d != slice size %d",
				trial, nLeft, nRight, p, got.Size, want.Size)
		}
		checkMatchingConsistent(t, bb, got)
	}
}

// TestMinVertexCoverBitset: König — cover size equals matching size
// and every edge is covered.
func TestMinVertexCoverBitset(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		nLeft := rng.Intn(70)
		nRight := rng.Intn(70)
		p := []float64{0.05, 0.3, 0.8}[rng.Intn(3)]
		_, bb := randomPair(rng, nLeft, nRight, p)
		m := MaxMatchingBitset(bb)
		coverL, coverR := MinVertexCoverBitset(bb, m)
		size := 0
		for _, c := range coverL {
			if c {
				size++
			}
		}
		for _, c := range coverR {
			if c {
				size++
			}
		}
		if size != m.Size {
			t.Fatalf("trial %d: cover size %d != matching size %d", trial, size, m.Size)
		}
		for u := 0; u < nLeft; u++ {
			for v := 0; v < nRight; v++ {
				if bb.HasEdge(u, v) && !coverL[u] && !coverR[v] {
					t.Fatalf("trial %d: edge (%d,%d) uncovered", trial, u, v)
				}
			}
		}
	}
}

// TestBitsetWordBoundaries exercises right-side sizes around the
// 64-bit word edges, where the tail masking lives.
func TestBitsetWordBoundaries(t *testing.T) {
	for _, nRight := range []int{1, 63, 64, 65, 127, 128, 129} {
		// Perfect matching on a permutation graph.
		bb := NewBitsetBipartite(nRight, nRight)
		for u := 0; u < nRight; u++ {
			bb.SetEdge(u, (u+3)%nRight)
		}
		m := MaxMatchingBitset(bb)
		if m.Size != nRight {
			t.Fatalf("nRight=%d: permutation matching size %d, want %d", nRight, m.Size, nRight)
		}
		checkMatchingConsistent(t, bb, m)
	}
}

func TestBitsetFromRowsAdoptsBacking(t *testing.T) {
	// 2x2 complete graph, rows packed by hand.
	rows := []uint64{0b11, 0b11}
	bb := BitsetFromRows(2, 2, rows)
	if m := MaxMatchingBitset(bb); m.Size != 2 {
		t.Fatalf("complete 2x2: size %d, want 2", m.Size)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length rows must panic")
		}
	}()
	BitsetFromRows(3, 2, rows)
}

func TestBitsetEmptyGraphs(t *testing.T) {
	if m := MaxMatchingBitset(NewBitsetBipartite(0, 0)); m.Size != 0 {
		t.Fatal("empty graph must have empty matching")
	}
	if m := MaxMatchingBitset(NewBitsetBipartite(5, 0)); m.Size != 0 {
		t.Fatal("no right vertices must give empty matching")
	}
	bb := NewBitsetBipartite(3, 4)
	m := MaxMatchingBitset(bb) // edgeless
	if m.Size != 0 {
		t.Fatal("edgeless graph must give empty matching")
	}
	coverL, coverR := MinVertexCoverBitset(bb, m)
	for _, c := range append(coverL, coverR...) {
		if c {
			t.Fatal("edgeless graph must have empty cover")
		}
	}
}
