// Package matching implements maximum matching in bipartite graphs via
// the Hopcroft–Karp algorithm [16], which runs in O(E·√V) time. The
// chain-decomposition substrate (Lemma 6 of the paper) reduces minimum
// path cover of the dominance DAG to exactly this problem.
package matching

import "fmt"

// Bipartite is a bipartite graph with nLeft left vertices and nRight
// right vertices, represented by left-side adjacency lists.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int
}

// NewBipartite creates an empty bipartite graph. Vertex counts must be
// non-negative.
func NewBipartite(nLeft, nRight int) *Bipartite {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("matching: negative vertex count (%d, %d)", nLeft, nRight))
	}
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// AddEdge adds the edge (u, v) where u indexes the left side and v the
// right side. Parallel edges are allowed and harmless.
func (b *Bipartite) AddEdge(u, v int) {
	if u < 0 || u >= b.nLeft {
		panic(fmt.Sprintf("matching: left vertex %d out of range [0,%d)", u, b.nLeft))
	}
	if v < 0 || v >= b.nRight {
		panic(fmt.Sprintf("matching: right vertex %d out of range [0,%d)", v, b.nRight))
	}
	b.adj[u] = append(b.adj[u], v)
}

// NumLeft returns the number of left vertices.
func (b *Bipartite) NumLeft() int { return b.nLeft }

// NumRight returns the number of right vertices.
func (b *Bipartite) NumRight() int { return b.nRight }

// Matching is the result of a maximum-matching computation.
type Matching struct {
	// MatchLeft[u] is the right vertex matched to left vertex u, or -1.
	MatchLeft []int
	// MatchRight[v] is the left vertex matched to right vertex v, or -1.
	MatchRight []int
	// Size is the number of matched pairs.
	Size int
}

const unmatched = -1

// MaxMatching computes a maximum matching with Hopcroft–Karp: repeat
// BFS layering from free left vertices followed by DFS augmentation
// along shortest augmenting paths, until no augmenting path exists.
// Each phase multiplies the shortest augmenting path length, bounding
// phases by O(√V).
func MaxMatching(b *Bipartite) Matching {
	matchL := make([]int, b.nLeft)
	matchR := make([]int, b.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, b.nLeft)
	queue := make([]int, 0, b.nLeft)

	// bfs layers free left vertices at distance 0 and alternates
	// unmatched/matched edges; it reports whether any augmenting path
	// exists, leaving dist as the layering for the DFS phase.
	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range b.adj[u] {
				w := matchR[v]
				if w == unmatched {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	// dfs searches for an augmenting path from u along the BFS
	// layering, flipping matched edges on success.
	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range b.adj[u] {
			w := matchR[v]
			if w == unmatched || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf // dead end: prune for the rest of this phase
		return false
	}

	size := 0
	for bfs() {
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
			}
		}
	}
	return Matching{MatchLeft: matchL, MatchRight: matchR, Size: size}
}

// MinVertexCover computes a minimum vertex cover from a maximum
// matching via König's theorem. It returns boolean membership masks
// for the left and right sides. The complement of the cover is a
// maximum independent set, which the chain package uses to extract a
// maximum antichain (Dilworth's theorem).
//
// Construction: let Z be the set of vertices reachable by alternating
// paths from free left vertices (unmatched edges left→right, matched
// edges right→left). The cover is (L \ Z) ∪ (R ∩ Z).
func MinVertexCover(b *Bipartite, m Matching) (coverLeft, coverRight []bool) {
	visitedL := make([]bool, b.nLeft)
	visitedR := make([]bool, b.nRight)
	var queue []int
	for u := 0; u < b.nLeft; u++ {
		if m.MatchLeft[u] == unmatched {
			visitedL[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range b.adj[u] {
			if visitedR[v] {
				continue
			}
			if m.MatchLeft[u] == v {
				continue // must leave the left side via an unmatched edge
			}
			visitedR[v] = true
			w := m.MatchRight[v]
			if w != unmatched && !visitedL[w] {
				visitedL[w] = true
				queue = append(queue, w)
			}
		}
	}
	coverLeft = make([]bool, b.nLeft)
	coverRight = make([]bool, b.nRight)
	for u := 0; u < b.nLeft; u++ {
		coverLeft[u] = !visitedL[u]
	}
	for v := 0; v < b.nRight; v++ {
		coverRight[v] = visitedR[v]
	}
	return coverLeft, coverRight
}
