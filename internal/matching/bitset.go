package matching

import (
	"fmt"
	"math/bits"
)

// BitsetBipartite is a bipartite graph whose left-side adjacency is a
// packed bit matrix: row u holds one bit per right vertex. It is the
// dense-graph companion of Bipartite, built for the chain
// decomposition's dominance DAG, where the adjacency is produced as a
// bit matrix by the domgraph kernel and materializing O(n²) adjacency
// lists would dwarf every other cost.
type BitsetBipartite struct {
	nLeft, nRight int
	words         int // words per row: ceil(nRight/64)
	adj           []uint64
}

// NewBitsetBipartite creates an empty packed bipartite graph.
func NewBitsetBipartite(nLeft, nRight int) *BitsetBipartite {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("matching: negative vertex count (%d, %d)", nLeft, nRight))
	}
	words := (nRight + 63) / 64
	return &BitsetBipartite{nLeft: nLeft, nRight: nRight, words: words, adj: make([]uint64, nLeft*words)}
}

// BitsetFromRows adopts a flat row-major adjacency bitset (nLeft rows
// of ceil(nRight/64) words) without copying; the caller must not
// mutate it while the graph is in use. Bits at positions >= nRight
// within a row's tail word must be zero.
func BitsetFromRows(nLeft, nRight int, rows []uint64) *BitsetBipartite {
	words := (nRight + 63) / 64
	if len(rows) != nLeft*words {
		panic(fmt.Sprintf("matching: adjacency has %d words, want %d×%d", len(rows), nLeft, words))
	}
	return &BitsetBipartite{nLeft: nLeft, nRight: nRight, words: words, adj: rows}
}

// SetEdge adds the edge (u, v); setting it twice is harmless.
func (b *BitsetBipartite) SetEdge(u, v int) {
	if u < 0 || u >= b.nLeft {
		panic(fmt.Sprintf("matching: left vertex %d out of range [0,%d)", u, b.nLeft))
	}
	if v < 0 || v >= b.nRight {
		panic(fmt.Sprintf("matching: right vertex %d out of range [0,%d)", v, b.nRight))
	}
	b.adj[u*b.words+v>>6] |= 1 << uint(v&63)
}

// HasEdge reports whether the edge (u, v) is present.
func (b *BitsetBipartite) HasEdge(u, v int) bool {
	return b.adj[u*b.words+v>>6]>>(uint(v)&63)&1 == 1
}

// NumLeft returns the number of left vertices.
func (b *BitsetBipartite) NumLeft() int { return b.nLeft }

// NumRight returns the number of right vertices.
func (b *BitsetBipartite) NumRight() int { return b.nRight }

func (b *BitsetBipartite) row(u int) []uint64 {
	return b.adj[u*b.words : (u+1)*b.words]
}

// MatchingStats reports the work one matching computation performed.
// Warm-started calls use it to verify the width-bounded augmentation
// claim: a matching seeded from a valid chain cover of c chains needs
// exactly c − w further augmentations to reach the optimum cover of
// w chains, independent of the O(√V) cold-start phase bound.
type MatchingStats struct {
	// SeedSize is the number of matched pairs adopted from the seed.
	SeedSize int
	// Phases counts BFS layerings run, including the final empty one
	// that certifies maximality (so a perfect seed still costs 1).
	Phases int
	// Augmentations counts augmenting paths applied on top of the
	// seed; always the final size minus SeedSize.
	Augmentations int
}

// MaxMatchingBitset is Hopcroft–Karp over the packed adjacency from an
// empty matching. The phase structure (and therefore the O(√V) phase
// bound) is identical to MaxMatching; the BFS layering additionally
// keeps an unvisited-right bitset so each row scan is one AND per word
// and every right vertex is expanded at most once per phase, making a
// BFS O(V²/64) instead of O(E).
func MaxMatchingBitset(b *BitsetBipartite) Matching {
	m, _ := MaxMatchingBitsetWarm(b, nil)
	return m
}

// MaxMatchingBitsetWarm is MaxMatchingBitset warm-started from a seed
// matching: seedL[u] is the right vertex initially matched to left
// vertex u, or -1. A nil seedL means a cold start. Every seeded pair
// must be an edge of b and no right vertex may be seeded twice (the
// function panics otherwise — seeds come from trusted chain covers,
// not user input). Hopcroft–Karp converges to a maximum matching from
// any valid initial matching; since each phase augments at least once,
// the whole run costs at most (max − |seed|) + 1 BFS phases.
func MaxMatchingBitsetWarm(b *BitsetBipartite, seedL []int) (Matching, MatchingStats) {
	matchL := make([]int, b.nLeft)
	matchR := make([]int, b.nRight)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	var st MatchingStats
	if seedL != nil {
		if len(seedL) != b.nLeft {
			panic(fmt.Sprintf("matching: seed covers %d left vertices, want %d", len(seedL), b.nLeft))
		}
		for u, v := range seedL {
			if v == unmatched {
				continue
			}
			if v < 0 || v >= b.nRight {
				panic(fmt.Sprintf("matching: seed right vertex %d out of range [0,%d)", v, b.nRight))
			}
			if !b.HasEdge(u, v) {
				panic(fmt.Sprintf("matching: seed pair (%d,%d) is not an edge", u, v))
			}
			if matchR[v] != unmatched {
				panic(fmt.Sprintf("matching: seed matches right vertex %d twice", v))
			}
			matchL[u] = v
			matchR[v] = u
			st.SeedSize++
		}
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, b.nLeft)
	queue := make([]int, 0, b.nLeft)
	unvis := make([]uint64, b.words)

	bfs := func() bool {
		queue = queue[:0]
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		for w := range unvis {
			unvis[w] = ^uint64(0)
		}
		if tail := b.nRight & 63; tail != 0 && b.words > 0 {
			unvis[b.words-1] = 1<<uint(tail) - 1
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			row := b.row(u)
			for w, bitsW := range row {
				cand := bitsW & unvis[w]
				if cand == 0 {
					continue
				}
				unvis[w] &^= cand
				for cand != 0 {
					v := w<<6 + bits.TrailingZeros64(cand)
					cand &= cand - 1
					x := matchR[v]
					if x == unmatched {
						found = true
					} else if dist[x] == inf {
						dist[x] = dist[u] + 1
						queue = append(queue, x)
					}
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		row := b.row(u)
		for w, bitsW := range row {
			for bitsW != 0 {
				v := w<<6 + bits.TrailingZeros64(bitsW)
				bitsW &= bitsW - 1
				x := matchR[v]
				if x == unmatched || (dist[x] == dist[u]+1 && dfs(x)) {
					matchL[u] = v
					matchR[v] = u
					return true
				}
			}
		}
		dist[u] = inf // dead end: prune for the rest of this phase
		return false
	}

	size := st.SeedSize
	for {
		st.Phases++
		if !bfs() {
			break
		}
		for u := 0; u < b.nLeft; u++ {
			if matchL[u] == unmatched && dfs(u) {
				size++
				st.Augmentations++
			}
		}
	}
	return Matching{MatchLeft: matchL, MatchRight: matchR, Size: size}, st
}

// MinVertexCoverBitset is MinVertexCover over the packed adjacency:
// König alternating reachability from free left vertices, with the
// same visited-right bitset trick as the matching BFS.
func MinVertexCoverBitset(b *BitsetBipartite, m Matching) (coverLeft, coverRight []bool) {
	visitedL := make([]bool, b.nLeft)
	visitedR := make([]bool, b.nRight)
	unvis := make([]uint64, b.words)
	for w := range unvis {
		unvis[w] = ^uint64(0)
	}
	if tail := b.nRight & 63; tail != 0 && b.words > 0 {
		unvis[b.words-1] = 1<<uint(tail) - 1
	}
	var queue []int
	for u := 0; u < b.nLeft; u++ {
		if m.MatchLeft[u] == unmatched {
			visitedL[u] = true
			queue = append(queue, u)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		row := b.row(u)
		for w, bitsW := range row {
			cand := bitsW & unvis[w]
			if cand == 0 {
				continue
			}
			// Must leave the left side via an unmatched edge; the
			// matched partner stays reachable through other lefts.
			if mv := m.MatchLeft[u]; mv != unmatched && mv>>6 == w {
				cand &^= 1 << uint(mv&63)
			}
			unvis[w] &^= cand
			for cand != 0 {
				v := w<<6 + bits.TrailingZeros64(cand)
				cand &= cand - 1
				visitedR[v] = true
				x := m.MatchRight[v]
				if x != unmatched && !visitedL[x] {
					visitedL[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
	coverLeft = make([]bool, b.nLeft)
	coverRight = make([]bool, b.nRight)
	for u := 0; u < b.nLeft; u++ {
		coverLeft[u] = !visitedL[u]
	}
	for v := 0; v < b.nRight; v++ {
		coverRight[v] = visitedR[v]
	}
	return coverLeft, coverRight
}
