package matching

import (
	"math/rand"
	"testing"
)

// randomBitsetGraph builds a random packed bipartite graph with edge
// probability p.
func randomBitsetGraph(rng *rand.Rand, nLeft, nRight int, p float64) *BitsetBipartite {
	b := NewBitsetBipartite(nLeft, nRight)
	for u := 0; u < nLeft; u++ {
		for v := 0; v < nRight; v++ {
			if rng.Float64() < p {
				b.SetEdge(u, v)
			}
		}
	}
	return b
}

// greedySeed builds a maximal-ish matching by first-fit, as a stand-in
// for the chain-cover seeds the decomposition layer supplies.
func greedySeed(b *BitsetBipartite) []int {
	seed := make([]int, b.NumLeft())
	used := make([]bool, b.NumRight())
	for u := range seed {
		seed[u] = -1
		for v := 0; v < b.NumRight(); v++ {
			if !used[v] && b.HasEdge(u, v) {
				seed[u] = v
				used[v] = true
				break
			}
		}
	}
	return seed
}

// TestWarmMatchesColdSize: warm-started Hopcroft–Karp must reach
// exactly the cold maximum-matching size from any valid seed, and the
// augmentation count must equal the size gap.
func TestWarmMatchesColdSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nL, nR := 1+rng.Intn(60), 1+rng.Intn(60)
		b := randomBitsetGraph(rng, nL, nR, []float64{0.02, 0.1, 0.4}[trial%3])
		cold := MaxMatchingBitset(b)
		seed := greedySeed(b)
		warm, st := MaxMatchingBitsetWarm(b, seed)
		if warm.Size != cold.Size {
			t.Fatalf("trial %d: warm size %d, cold size %d", trial, warm.Size, cold.Size)
		}
		if st.Augmentations != warm.Size-st.SeedSize {
			t.Fatalf("trial %d: %d augmentations for size gap %d", trial, st.Augmentations, warm.Size-st.SeedSize)
		}
		if st.Phases > st.Augmentations+1 {
			t.Fatalf("trial %d: %d phases exceed augmentations+1 = %d", trial, st.Phases, st.Augmentations+1)
		}
		// The warm result must be a consistent matching over real edges.
		for u, v := range warm.MatchLeft {
			if v == -1 {
				continue
			}
			if !b.HasEdge(u, v) {
				t.Fatalf("trial %d: matched non-edge (%d,%d)", trial, u, v)
			}
			if warm.MatchRight[v] != u {
				t.Fatalf("trial %d: asymmetric match at (%d,%d)", trial, u, v)
			}
		}
	}
}

// TestWarmPerfectSeedOnePhase: seeding with an already-maximum
// matching must terminate after the single certifying BFS with zero
// augmentations.
func TestWarmPerfectSeedOnePhase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := randomBitsetGraph(rng, 50, 50, 0.2)
	cold := MaxMatchingBitset(b)
	warm, st := MaxMatchingBitsetWarm(b, cold.MatchLeft)
	if warm.Size != cold.Size {
		t.Fatalf("warm size %d != cold size %d", warm.Size, cold.Size)
	}
	if st.Augmentations != 0 || st.Phases != 1 {
		t.Fatalf("perfect seed ran %d phases, %d augmentations; want 1, 0", st.Phases, st.Augmentations)
	}
	if st.SeedSize != cold.Size {
		t.Fatalf("seed size %d != cold size %d", st.SeedSize, cold.Size)
	}
}

// TestWarmNilSeedIsCold: a nil seed must reproduce the cold result
// bit for bit.
func TestWarmNilSeedIsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := randomBitsetGraph(rng, 40, 35, 0.15)
	cold := MaxMatchingBitset(b)
	warm, st := MaxMatchingBitsetWarm(b, nil)
	if warm.Size != cold.Size || st.SeedSize != 0 {
		t.Fatalf("nil seed diverged: size %d vs %d, seed %d", warm.Size, cold.Size, st.SeedSize)
	}
	for u := range cold.MatchLeft {
		if cold.MatchLeft[u] != warm.MatchLeft[u] {
			t.Fatalf("nil seed changed MatchLeft[%d]: %d vs %d", u, warm.MatchLeft[u], cold.MatchLeft[u])
		}
	}
}

// TestWarmSeedValidation: invalid seeds must panic loudly rather than
// silently corrupt the matching invariants.
func TestWarmSeedValidation(t *testing.T) {
	b := NewBitsetBipartite(3, 3)
	b.SetEdge(0, 1)
	b.SetEdge(2, 1)
	cases := map[string][]int{
		"wrong length":    {1, -1},
		"out of range":    {3, -1, -1},
		"non-edge":        {0, -1, -1},
		"right used twice": {1, -1, 1},
	}
	for name, seed := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			MaxMatchingBitsetWarm(b, seed)
		}()
	}
}
