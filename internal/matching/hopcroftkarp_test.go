package matching

import (
	"math/rand"
	"testing"
)

// bruteMaxMatching finds the maximum matching size by exhaustive
// search; usable for small graphs only.
func bruteMaxMatching(b *Bipartite) int {
	usedR := make([]bool, b.nRight)
	var rec func(u int) int
	rec = func(u int) int {
		if u == b.nLeft {
			return 0
		}
		best := rec(u + 1) // leave u unmatched
		for _, v := range b.adj[u] {
			if !usedR[v] {
				usedR[v] = true
				if got := 1 + rec(u+1); got > best {
					best = got
				}
				usedR[v] = false
			}
		}
		return best
	}
	return rec(0)
}

// validMatching checks structural consistency of a matching.
func validMatching(t *testing.T, b *Bipartite, m Matching) {
	t.Helper()
	count := 0
	for u, v := range m.MatchLeft {
		if v == unmatched {
			continue
		}
		count++
		if m.MatchRight[v] != u {
			t.Fatalf("MatchRight[%d] = %d, want %d", v, m.MatchRight[v], u)
		}
		found := false
		for _, w := range b.adj[u] {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", u, v)
		}
	}
	if count != m.Size {
		t.Fatalf("Size = %d but %d pairs matched", m.Size, count)
	}
}

func TestMaxMatchingSmall(t *testing.T) {
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(2, 2)
	m := MaxMatching(b)
	if m.Size != 3 {
		t.Errorf("Size = %d, want 3", m.Size)
	}
	validMatching(t, b, m)
}

func TestMaxMatchingNeedsAugmentation(t *testing.T) {
	// A graph where greedy matching is suboptimal: 0-0, then 1 must
	// displace it through an augmenting path.
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	m := MaxMatching(b)
	if m.Size != 2 {
		t.Errorf("Size = %d, want 2", m.Size)
	}
	validMatching(t, b, m)
}

func TestMaxMatchingEmptyAndEdgeless(t *testing.T) {
	if m := MaxMatching(NewBipartite(0, 0)); m.Size != 0 {
		t.Error("empty graph should have empty matching")
	}
	if m := MaxMatching(NewBipartite(4, 4)); m.Size != 0 {
		t.Error("edgeless graph should have empty matching")
	}
}

func TestMaxMatchingPerfectBipartite(t *testing.T) {
	// Complete bipartite K_{5,5}: perfect matching of size 5.
	b := NewBipartite(5, 5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.AddEdge(u, v)
		}
	}
	m := MaxMatching(b)
	if m.Size != 5 {
		t.Errorf("Size = %d, want 5", m.Size)
	}
	validMatching(t, b, m)
}

func TestMaxMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(7)
		nr := 1 + rng.Intn(7)
		b := NewBipartite(nl, nr)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(u, v)
				}
			}
		}
		m := MaxMatching(b)
		validMatching(t, b, m)
		if want := bruteMaxMatching(b); m.Size != want {
			t.Fatalf("trial %d: Size = %d, want %d", trial, m.Size, want)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	b := NewBipartite(2, 2)
	for _, f := range []func(){
		func() { b.AddEdge(-1, 0) },
		func() { b.AddEdge(2, 0) },
		func() { b.AddEdge(0, -1) },
		func() { b.AddEdge(0, 2) },
		func() { NewBipartite(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAccessors(t *testing.T) {
	b := NewBipartite(3, 5)
	if b.NumLeft() != 3 || b.NumRight() != 5 {
		t.Error("accessors wrong")
	}
}

// König's theorem: |min vertex cover| == |max matching|, and the cover
// must touch every edge.
func TestMinVertexCoverKoenig(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		nl := 1 + rng.Intn(8)
		nr := 1 + rng.Intn(8)
		b := NewBipartite(nl, nr)
		type edge struct{ u, v int }
		var edges []edge
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.35 {
					b.AddEdge(u, v)
					edges = append(edges, edge{u, v})
				}
			}
		}
		m := MaxMatching(b)
		cl, cr := MinVertexCover(b, m)
		size := 0
		for _, c := range cl {
			if c {
				size++
			}
		}
		for _, c := range cr {
			if c {
				size++
			}
		}
		if size != m.Size {
			t.Fatalf("trial %d: cover size %d != matching size %d", trial, size, m.Size)
		}
		for _, e := range edges {
			if !cl[e.u] && !cr[e.v] {
				t.Fatalf("trial %d: edge (%d,%d) uncovered", trial, e.u, e.v)
			}
		}
	}
}

func TestMaxMatchingLargeRandom(t *testing.T) {
	// Sanity at larger scale: matching size must equal n on a graph
	// that contains a planted perfect matching.
	rng := rand.New(rand.NewSource(5))
	n := 500
	b := NewBipartite(n, n)
	perm := rng.Perm(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, perm[u]) // planted perfect matching
		for k := 0; k < 3; k++ {
			b.AddEdge(u, rng.Intn(n)) // noise edges
		}
	}
	m := MaxMatching(b)
	if m.Size != n {
		t.Errorf("Size = %d, want %d", m.Size, n)
	}
	validMatching(t, b, m)
}
