# Developer entry points for the monoclass reproduction.
#
#   make check           build + vet + full test suite
#   make race            race-detector pass over internal packages
#   make bench-domkernel regenerate BENCH_domkernel.json (kernel vs scalar)
#   make verify          everything CI gates on, in order

GO ?= go

.PHONY: all build vet test race bench-domkernel verify clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

check: build vet test

race:
	$(GO) test -race ./internal/...

# Machine-readable before/after numbers for the bit-packed dominance
# kernel (cmd/benchtab -domkernel). Takes ~30s; add QUICK=1 for a
# seconds-scale smoke run that overwrites nothing.
bench-domkernel:
ifdef QUICK
	$(GO) run ./cmd/benchtab -domkernel /tmp/BENCH_domkernel.quick.json -seed 42 -quick
else
	$(GO) run ./cmd/benchtab -domkernel BENCH_domkernel.json -seed 42
endif

verify: build vet test race bench-domkernel

clean:
	$(GO) clean ./...
